//! Exact cost attribution for the canonical workload: prints the
//! golden-gated explain report and writes the profile artifacts —
//! an inferno-format flamegraph (`flamegraph.folded`) and roofline
//! tables (`roofline.json`, `roofline.csv`) — for plotting.
//!
//! Run with `cargo run --release --example explain`. Optional:
//! `--out-dir PATH` (default `target/profile`) for the artifacts.
//! Render the flamegraph with any folded-stacks consumer, e.g.
//! `inferno-flamegraph < target/profile/flamegraph.folded > flame.svg`.
//!
//! Everything is seeded and wall-clock-free: two runs produce
//! byte-identical output and byte-identical artifacts.

use fusemax::eval::explain::explain;
use fusemax::model::ModelParams;
use fusemax::telemetry::{roofline_csv, roofline_json, validate_folded_stacks};
use std::path::PathBuf;

fn main() {
    let mut out_dir = PathBuf::from("target/profile");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--out-dir" {
            out_dir = PathBuf::from(args.next().expect("--out-dir expects a path"));
        } else if let Some(v) = a.strip_prefix("--out-dir=") {
            out_dir = PathBuf::from(v);
        } else {
            eprintln!("usage: explain [--out-dir PATH]");
            std::process::exit(2);
        }
    }

    let artifacts = explain(&ModelParams::default());
    print!("{}", artifacts.text);

    let stacks = validate_folded_stacks(&artifacts.folded).unwrap_or_else(|e| {
        eprintln!("INVALID folded stacks: {e}");
        std::process::exit(1);
    });

    std::fs::create_dir_all(&out_dir).expect("create output directory");
    let folded_path = out_dir.join("flamegraph.folded");
    std::fs::write(&folded_path, &artifacts.folded).expect("write folded stacks");
    let json_path = out_dir.join("roofline.json");
    std::fs::write(&json_path, roofline_json(&artifacts.roofline)).expect("write roofline json");
    let csv_path = out_dir.join("roofline.csv");
    std::fs::write(&csv_path, roofline_csv(&artifacts.roofline)).expect("write roofline csv");

    println!(
        "\nWrote {stacks} flamegraph stacks to {} and {} roofline points to {} / {}.",
        folded_path.display(),
        artifacts.roofline.len(),
        json_path.display(),
        csv_path.display(),
    );
}
