//! The binding in action (Figures 4–5): simulate Cascade 5 on a toy
//! spatial array under the serialized and pipelined bindings, print the
//! waterfall, and verify the numerics against the reference kernel.
//!
//! Run with `cargo run --example binding_pipeline`.

use fusemax::core::kernels::attention_reference;
use fusemax::spatial::{simulate, Binding, SpatialConfig};
use fusemax::tensor::{max_abs_diff, Shape, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let (e, f, m, p) = (8usize, 8usize, 64usize, 8usize);
    let mut rng = StdRng::seed_from_u64(7);
    let q = Tensor::<f64>::random_uniform(Shape::of(&[("E", e), ("P", p)]), -1.0, 1.0, &mut rng);
    let k = Tensor::<f64>::random_uniform(Shape::of(&[("E", e), ("M", m)]), -1.0, 1.0, &mut rng);
    let v = Tensor::<f64>::random_uniform(Shape::of(&[("F", f), ("M", m)]), -1.0, 1.0, &mut rng);

    let cfg = SpatialConfig::toy(4, 4);
    println!(
        "Toy array: {}x{} 2D PEs, {} 1D lanes; E={e}, F={f}, M={m} (M1={} tiles), P={p}\n",
        cfg.rows,
        cfg.cols,
        cfg.vector_pes,
        m / cfg.rows
    );

    let reference = attention_reference(&q, &k, &v)?;
    let serial = simulate(&q, &k, &v, &cfg, Binding::Serialized)?;
    let piped = simulate(&q, &k, &v, &cfg, Binding::Pipelined)?;

    for (name, r) in [("serialized (+Architecture)", &serial), ("pipelined (+Binding)", &piped)] {
        println!(
            "{name}: {} cycles, util2D={:.2}, util1D={:.2}, max|Δ| vs reference = {:.2e}",
            r.cycles,
            r.util_2d(),
            r.util_1d(),
            max_abs_diff(&r.av, &reference)
        );
    }
    println!(
        "\nSame work on both schedules (2D busy {} / 1D busy {}); the binding alone\n\
         buys a {:.2}x speedup — Fig 4's software pipelining.\n",
        piped.busy_2d,
        piped.busy_1d,
        serial.cycles as f64 / piped.cycles as f64
    );

    println!("First pipelined-schedule records (the Fig 4 waterfall):");
    print!("{}", piped.waterfall(24));
    Ok(())
}
