//! Baseline diff for the parallel-eval bench summary: compares the
//! *deterministic* telemetry keys of `target/bench_summary.json`
//! against the checked-in `tests/golden/bench_baseline.json` and fails
//! (exit 1) on any unexplained drift beyond the tolerance.
//!
//! Only seeded, event-derived quantities are gated — cache hit ratio,
//! flush batch mean, serve batch mean, event count, and the
//! search-budget attribution counters. Wall-clock fields (`*_ns`,
//! `speedup`) and `threads` vary by machine and are never compared.
//!
//! Usage:
//!   bench_diff [--current PATH] [--baseline PATH] [--tolerance FRAC] [--bless]
//!
//! `--bless` (or env `FUSEMAX_UPDATE_GOLDEN=1`) rewrites the baseline
//! from the current summary instead of diffing.

use std::path::PathBuf;
use std::process::exit;

/// The deterministic keys gated by this diff, in report order. Every
/// key names a number that appears exactly once in the summary's
/// telemetry block.
const KEYS: &[&str] = &[
    "search_cache_hit_ratio",
    "search_flush_batch_mean",
    "serve_batch_mean",
    "serve_retries",
    "serve_sheds",
    "events",
    "staged",
    "screened_out",
    "cache_hits",
    "full_evals",
    "flushes",
    "chains",
];

/// Extract `"key":<number>` from a JSON document without a parser,
/// returning the raw substring and its parsed value.
fn extract(doc: &str, key: &str) -> Option<(String, f64)> {
    let needle = format!("\"{key}\":");
    let start = doc.find(&needle)? + needle.len();
    let rest = &doc[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    let raw = rest[..end].trim();
    raw.parse::<f64>().ok().map(|v| (raw.to_string(), v))
}

fn read(path: &PathBuf, role: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {role} {}: {e}", path.display());
        exit(1);
    })
}

fn main() {
    let mut current = PathBuf::from("target/bench_summary.json");
    let mut baseline = PathBuf::from("tests/golden/bench_baseline.json");
    let mut tolerance = 0.10_f64;
    let mut bless = std::env::var_os("FUSEMAX_UPDATE_GOLDEN").is_some();

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut take = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} expects a value");
                exit(2);
            })
        };
        match a.as_str() {
            "--current" => current = PathBuf::from(take("--current")),
            "--baseline" => baseline = PathBuf::from(take("--baseline")),
            "--tolerance" => {
                tolerance = take("--tolerance").parse().unwrap_or_else(|e| {
                    eprintln!("--tolerance expects a fraction: {e}");
                    exit(2);
                })
            }
            "--bless" => bless = true,
            _ => {
                eprintln!(
                    "usage: bench_diff [--current PATH] [--baseline PATH] \
                     [--tolerance FRAC] [--bless]"
                );
                exit(2);
            }
        }
    }

    let doc = read(&current, "current summary");
    let mut extracted = Vec::new();
    for key in KEYS {
        match extract(&doc, key) {
            Some(pair) => extracted.push((*key, pair)),
            None => {
                eprintln!("current summary {} is missing key {key:?}", current.display());
                exit(1);
            }
        }
    }

    if bless {
        let body: Vec<String> =
            extracted.iter().map(|(k, (raw, _))| format!("\"{k}\":{raw}")).collect();
        let rendered = format!("{{{}}}\n", body.join(","));
        std::fs::write(&baseline, rendered).unwrap_or_else(|e| {
            eprintln!("cannot write baseline {}: {e}", baseline.display());
            exit(1);
        });
        println!("blessed {} keys into {}", extracted.len(), baseline.display());
        return;
    }

    let base_doc = read(&baseline, "baseline");
    let mut failures = 0usize;
    for (key, (_, cur)) in &extracted {
        let Some((_, base)) = extract(&base_doc, key) else {
            eprintln!("FAIL {key}: missing from baseline {}", baseline.display());
            failures += 1;
            continue;
        };
        // Relative tolerance against the baseline magnitude; exact-zero
        // baselines only accept exact-zero currents.
        let limit = tolerance * base.abs();
        let drift = (cur - base).abs();
        if drift > limit {
            eprintln!(
                "FAIL {key}: baseline {base} -> current {cur} \
                 (drift {drift:.6} > allowed {limit:.6})"
            );
            failures += 1;
        } else {
            println!("ok   {key}: {base} -> {cur}");
        }
    }

    if failures > 0 {
        eprintln!(
            "{failures} deterministic bench key(s) drifted beyond {:.0}%.\n\
             If the change is intentional, re-bless with\n\
             cargo run --release --example bench_diff -- --bless",
            tolerance * 100.0
        );
        exit(1);
    }
    println!("bench summary matches the baseline on all {} deterministic keys.", extracted.len());
}
