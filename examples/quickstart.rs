//! Quickstart: the paper's story in five steps.
//!
//! Run with `cargo run --example quickstart`.

use fusemax::core::cascades::attention;
use fusemax::core::footprint::live_footprints;
use fusemax::core::kernels::{attention_reference, Algorithm};
use fusemax::core::passes::analyze_passes;
use fusemax::model::{attention_report, ConfigKind, ModelParams};
use fusemax::tensor::{max_abs_diff, Shape, Tensor};
use fusemax::workloads::{seq_label, TransformerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // 1. Write attention as cascades of Einsums (§IV) and count the passes
    //    each must make over the softmax rank (§III).
    println!("1) Pass analysis of the attention cascades (rank family M):");
    for cascade in [attention::three_pass(), attention::two_pass(), attention::one_pass()] {
        let analysis = analyze_passes(&cascade, "M")?;
        println!("   {:<34} {} pass(es)", cascade.name, analysis.num_passes);
    }

    // 2. Passes imply live footprints (§III-B): the 3-pass cascade must
    //    keep O(M) fibers live; the 1-pass cascade streams O(M0) tiles.
    let three = live_footprints(&attention::three_pass(), "M")?;
    let one = live_footprints(&attention::one_pass(), "M")?;
    println!(
        "\n2) Live footprints: 3-pass QK needs {}, 1-pass BQK needs {}",
        three.of("QK"),
        one.of("BQK")
    );

    // 3. All stable cascades compute the same attention. Run the kernels.
    let mut rng = StdRng::seed_from_u64(42);
    let q = Tensor::<f64>::random_uniform(Shape::of(&[("E", 16), ("P", 32)]), -1.0, 1.0, &mut rng);
    let k = Tensor::<f64>::random_uniform(Shape::of(&[("E", 16), ("M", 64)]), -1.0, 1.0, &mut rng);
    let v = Tensor::<f64>::random_uniform(Shape::of(&[("F", 16), ("M", 64)]), -1.0, 1.0, &mut rng);
    let reference = attention_reference(&q, &k, &v)?;
    println!("\n3) Kernel equivalence and measured op counts (E=16, M=64, P=32):");
    for alg in [
        Algorithm::ThreePass { deferred_div: false },
        Algorithm::ThreePass { deferred_div: true },
        Algorithm::TwoPass { tile_m0: 16, deferred_div: false },
        Algorithm::OnePass { tile_m0: 16 },
    ] {
        let run = alg.run(&q, &k, &v)?;
        println!(
            "   {:<26} max|Δ|={:.2e}  divs={:<5} exps={}",
            alg.name(),
            max_abs_diff(&run.av, &reference),
            run.ops.div,
            run.ops.exp
        );
    }

    // 4. Model the accelerators at one operating point.
    let bert = TransformerConfig::bert();
    let params = ModelParams::default();
    let l = 1 << 16;
    println!("\n4) Modeled BERT attention at {} tokens:", seq_label(l));
    for kind in ConfigKind::all() {
        let r = attention_report(kind, &bert, l, None, &params);
        println!(
            "   {:<14} cycles={:.3e}  util2D={:.2}  util1D={:.2}  dram={:.2e} B",
            kind.label(),
            r.cycles,
            r.util_2d(),
            r.util_1d(),
            r.dram_bytes
        );
    }

    // 5. The headline.
    let h = fusemax::eval::summary::headline(&params);
    println!("\n5) Headline (avg over 4 models x 6 lengths):\n{h}");
    println!("   (paper: 6.7x at 79% energy on attention; 5.3x at 83% end-to-end)");
    Ok(())
}
