//! The paper's motivating scenario: attention at very long sequence
//! lengths (up to 1M tokens), where FLAT becomes memory-bandwidth bound
//! while FuseMax stays compute bound at ~100 % utilization.
//!
//! Run with `cargo run --example long_context_attention [MODEL]` where
//! MODEL is one of BERT, TrXL, T5, XLM (default BERT).

use fusemax::arch::ArchConfig;
use fusemax::model::{attention_report, ConfigKind, ModelParams};
use fusemax::workloads::{seq_label, TransformerConfig, SEQ_LENGTHS};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "BERT".to_string());
    let cfg = TransformerConfig::all()
        .into_iter()
        .find(|c| c.name.eq_ignore_ascii_case(&name))
        .ok_or_else(|| format!("unknown model `{name}` (try BERT, TrXL, T5, XLM)"))?;
    let params = ModelParams::default();
    let arch = ArchConfig::fusemax_cloud();

    println!("Attention scaling for {} (B=64, H={}, E=F={}):\n", cfg.name, cfg.heads, cfg.head_dim);
    println!(
        "{:<7} {:>12} {:>12} {:>9} {:>10} {:>10} {:>12} {:>12}",
        "L", "FLAT (s)", "FuseMax (s)", "speedup", "FLAT u1D", "FM u2D", "FLAT DRAM", "FM DRAM"
    );
    for &l in &SEQ_LENGTHS {
        let flat = attention_report(ConfigKind::Flat, &cfg, l, None, &params);
        let fm = attention_report(ConfigKind::FuseMaxBinding, &cfg, l, None, &params);
        let layers = cfg.layers as f64;
        println!(
            "{:<7} {:>12.3e} {:>12.3e} {:>8.1}x {:>10.2} {:>10.2} {:>11.2e}B {:>11.2e}B",
            seq_label(l),
            arch.cycles_to_seconds(flat.cycles * layers),
            arch.cycles_to_seconds(fm.cycles * layers),
            flat.cycles / fm.cycles,
            flat.util_1d(),
            fm.util_2d(),
            flat.dram_bytes * layers,
            fm.dram_bytes * layers,
        );
    }

    println!("\nEnergy relative to the unfused baseline:");
    println!("{:<7} {:>8} {:>9}", "L", "FLAT", "FuseMax");
    for &l in &SEQ_LENGTHS {
        let unf = attention_report(ConfigKind::Unfused, &cfg, l, None, &params);
        let flat = attention_report(ConfigKind::Flat, &cfg, l, None, &params);
        let fm = attention_report(ConfigKind::FuseMaxBinding, &cfg, l, None, &params);
        println!(
            "{:<7} {:>7.0}% {:>8.0}%",
            seq_label(l),
            100.0 * flat.energy.total_pj() / unf.energy.total_pj(),
            100.0 * fm.energy.total_pj() / unf.energy.total_pj(),
        );
    }

    let fm_1m = attention_report(ConfigKind::FuseMaxBinding, &cfg, 1 << 20, None, &params);
    println!(
        "\nAt 1M tokens FuseMax keeps {:.0}% of its energy in the 2D MACC units\n\
         and its on-chip footprint stays O(M0) — no spills at any length (§V).",
        100.0 * fm_1m.energy.macc_2d_pj / fm_1m.energy.total_pj()
    );
    Ok(())
}
