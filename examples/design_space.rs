//! Design-space exploration with the `fusemax-dse` engine: sweep
//! architectures × configurations × workloads, report the per-model
//! area/latency/energy Pareto frontiers, demonstrate pruning and the
//! evaluation cache, and replay the winners on the spatial simulator.
//!
//! Run with `cargo run --example design_space`.

use fusemax::arch::{ArchConfig, AreaModel};
use fusemax::dse::{frontier_json, validate_top_k, DesignSpace, Sweeper, ARRAY_DIMS};
use fusemax::eval::fig12;
use fusemax::model::{ConfigKind, ModelParams};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // --- 1. The classic Fig 12 view, now a slice of the DSE sweep. ---
    let params = ModelParams::default();
    let curves = fig12::fig12(&params);
    print!("{}", fig12::render(&curves));

    // The iso-area comparison backing the headline numbers (§VI-A).
    let area = AreaModel::default();
    let fusemax = area.chip_area_mm2(&ArchConfig::fusemax_cloud());
    let flat = area.chip_area_mm2(&ArchConfig::flat_cloud());
    println!("\nIso-area check: FuseMax cloud = {:.0} mm², FLAT cloud = {:.0} mm²", fusemax, flat);
    println!("FuseMax is {:.1}% smaller (paper reports 6.4%).", 100.0 * (1.0 - fusemax / flat));

    // --- 2. The full search: four configurations, four models, six chip
    //        sizes, two sequence lengths. ---
    let space = DesignSpace::new()
        .with_array_dims(ARRAY_DIMS)
        .with_kinds([
            ConfigKind::Unfused,
            ConfigKind::Flat,
            ConfigKind::FuseMaxArch,
            ConfigKind::FuseMaxBinding,
        ])
        .with_seq_lens([1 << 16, 1 << 18]);
    println!("\nSweeping {} candidate designs (rayon-parallel)...", space.len());

    let sweeper = Sweeper::new(params.clone());
    let outcome = sweeper.sweep(&space);
    println!(
        "evaluated {} points in {:.2?} ({:.0} points/s); {} Pareto-optimal survive",
        outcome.stats.evaluated,
        outcome.stats.elapsed,
        outcome.stats.points_per_sec(),
        outcome.frontier_points().len(),
    );
    for group in &outcome.frontiers {
        let by_kind = |kind: ConfigKind| {
            group.frontier.points().iter().filter(|e| e.point.kind == kind).count()
        };
        println!(
            "  {:<5} @ {:>7} tokens: frontier {:>2}/{} (+Binding holds {}, FLAT {}, unfused {})",
            group.model,
            group.seq_len,
            group.frontier.len(),
            outcome.stats.candidates / outcome.frontiers.len(),
            by_kind(ConfigKind::FuseMaxBinding),
            by_kind(ConfigKind::Flat),
            by_kind(ConfigKind::Unfused),
        );
    }

    // --- 3. Pruning: the same space searched with dominance cutoffs. ---
    let pruning_sweeper = Sweeper::new(params.clone());
    let pruned = pruning_sweeper.sweep_pruned(&space);
    println!(
        "\nPruned search: {} evaluated, {} skipped by dominance bounds (of {}).",
        pruned.stats.evaluated, pruned.stats.pruned, pruned.stats.candidates
    );

    // --- 4. The cache: re-sweeping is free. ---
    let again = sweeper.sweep(&space);
    println!(
        "Re-sweep: {} cache hits, {} evaluations, {:.2?}.",
        again.stats.cache_hits, again.stats.evaluated, again.stats.elapsed
    );

    // --- 5. Replay the analytical winners on the spatial simulator. ---
    println!("\nValidating 3 top frontier designs (per-group winners first) on the simulator:");
    for validation in validate_top_k(&outcome, 3) {
        println!("  {validation}");
    }

    // --- 6. Export the frontier for plotting / bench trajectories. ---
    let json = frontier_json(&outcome);
    let path = std::path::Path::new("target").join("dse_frontier.json");
    if std::fs::create_dir_all("target").and_then(|_| std::fs::write(&path, &json)).is_ok() {
        println!("\nFrontier JSON ({} bytes) written to {}.", json.len(), path.display());
    } else {
        println!("\nFrontier JSON ({} bytes) follows:\n{json}", json.len());
    }
    Ok(())
}
