//! Design-space exploration (Fig 12): sweep the PE array from 16×16 to
//! 512×512 and report the area/latency Pareto family at 256K tokens.
//!
//! Run with `cargo run --example design_space`.

use fusemax::arch::{ArchConfig, AreaModel};
use fusemax::eval::fig12;
use fusemax::model::ModelParams;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let params = ModelParams::default();
    let curves = fig12::fig12(&params);
    print!("{}", fig12::render(&curves));

    // The iso-area comparison backing the headline numbers (§VI-A).
    let area = AreaModel::default();
    let fusemax = area.chip_area_mm2(&ArchConfig::fusemax_cloud());
    let flat = area.chip_area_mm2(&ArchConfig::flat_cloud());
    println!("\nIso-area check: FuseMax cloud = {:.0} mm², FLAT cloud = {:.0} mm²", fusemax, flat);
    println!(
        "FuseMax is {:.1}% smaller (paper reports 6.4%).",
        100.0 * (1.0 - fusemax / flat)
    );

    // Log-log slope between successive points (Fig 12 is near a straight
    // line of slope −1: latency ∝ 1/area in the compute-bound regime).
    if let Some((name, points)) = curves.first() {
        println!("\n{name} log-log slope between successive design points:");
        for w in points.windows(2) {
            let slope = (w[1].latency_s / w[0].latency_s).ln()
                / (w[1].area_cm2 / w[0].area_cm2).ln();
            println!(
                "  {:>3}x{:<3} -> {:>3}x{:<3}  slope {:.2}",
                w[0].array_dim, w[0].array_dim, w[1].array_dim, w[1].array_dim, slope
            );
        }
    }
    Ok(())
}
