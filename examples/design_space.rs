//! Design-space exploration with the `fusemax-dse` engine: sweep
//! architectures × configurations × workloads, report the per-model
//! area/latency/energy Pareto frontiers, demonstrate pruning and the
//! evaluation cache, and replay the winners on the spatial simulator.
//!
//! Run with `cargo run --example design_space`. Pass
//! `--cache-file <path>` (or set `FUSEMAX_DSE_CACHE`) to persist the
//! evaluation cache across runs — the second invocation regenerates every
//! figure without a single model evaluation.

use fusemax::arch::{ArchConfig, AreaModel};
use fusemax::dse::{
    frontier_json, frontiers_only_json, validate_top_k, DesignSpace, Sweeper, ARRAY_DIMS,
};
use fusemax::eval::fig12;
use fusemax::model::{ConfigKind, ModelParams};
use std::error::Error;
use std::path::PathBuf;

/// `--cache-file <path>` from argv, falling back to `FUSEMAX_DSE_CACHE`.
fn cache_file_arg() -> Option<PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--cache-file" {
            return args.next().map(PathBuf::from);
        }
        if let Some(path) = arg.strip_prefix("--cache-file=") {
            return Some(PathBuf::from(path));
        }
    }
    std::env::var_os("FUSEMAX_DSE_CACHE").map(PathBuf::from)
}

fn main() -> Result<(), Box<dyn Error>> {
    // --- 0. Warm the cache from disk if a cache file was given. ---
    let params = ModelParams::default();
    let sweeper = Sweeper::new(params.clone());
    let cache_file = cache_file_arg();
    if let Some(path) = &cache_file {
        match sweeper.load_cache(path) {
            Ok(n) => println!("Loaded {n} cached evaluations from {}.\n", path.display()),
            // A missing file is the expected first run; any other I/O
            // error (permissions, bad path) would also sink the save at
            // exit, so fail fast instead of sweeping for nothing.
            Err(fusemax::dse::PersistError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {
                println!("No cache at {} yet; it will be written on exit.\n", path.display())
            }
            Err(e @ fusemax::dse::PersistError::Io(_)) => return Err(Box::new(e)),
            // A corrupt file is a cold start, not a fatal error — it gets
            // overwritten with a fresh cache on exit.
            Err(fusemax::dse::PersistError::Parse(msg)) => {
                println!(
                    "Ignoring unreadable cache at {} ({msg}); starting cold.\n",
                    path.display()
                )
            }
        }
    }

    // --- 1. The classic Fig 12 view, now a slice of the DSE sweep. ---
    let curves = fig12::fig12(&params);
    print!("{}", fig12::render(&curves));

    // The iso-area comparison backing the headline numbers (§VI-A).
    let area = AreaModel::default();
    let fusemax = area.chip_area_mm2(&ArchConfig::fusemax_cloud());
    let flat = area.chip_area_mm2(&ArchConfig::flat_cloud());
    println!("\nIso-area check: FuseMax cloud = {:.0} mm², FLAT cloud = {:.0} mm²", fusemax, flat);
    println!("FuseMax is {:.1}% smaller (paper reports 6.4%).", 100.0 * (1.0 - fusemax / flat));

    // --- 2. The full search: four configurations, four models, six chip
    //        sizes, two sequence lengths. ---
    let space = DesignSpace::new()
        .with_array_dims(ARRAY_DIMS)
        .with_kinds([
            ConfigKind::Unfused,
            ConfigKind::Flat,
            ConfigKind::FuseMaxArch,
            ConfigKind::FuseMaxBinding,
        ])
        .with_seq_lens([1 << 16, 1 << 18]);
    println!("\nSweeping {} candidate designs (rayon-parallel)...", space.len());

    let outcome = sweeper.sweep(&space);
    println!(
        "evaluated {} points in {:.2?} ({:.0} points/s); {} Pareto-optimal survive",
        outcome.stats.evaluated,
        outcome.stats.elapsed,
        outcome.stats.points_per_sec(),
        outcome.frontier_points().len(),
    );
    for group in &outcome.frontiers {
        let by_kind = |kind: ConfigKind| {
            group.frontier.points().iter().filter(|e| e.point.kind == kind).count()
        };
        println!(
            "  {:<5} @ {:>7} tokens: frontier {:>2}/{} (+Binding holds {}, FLAT {}, unfused {})",
            group.model,
            group.seq_len,
            group.frontier.len(),
            outcome.stats.candidates / outcome.frontiers.len(),
            by_kind(ConfigKind::FuseMaxBinding),
            by_kind(ConfigKind::Flat),
            by_kind(ConfigKind::Unfused),
        );
    }

    // --- 3. Pruning: the same space searched with dominance cutoffs. ---
    let pruning_sweeper = Sweeper::new(params.clone());
    let pruned = pruning_sweeper.sweep_pruned(&space);
    println!(
        "\nPruned search: {} evaluated, {} skipped by dominance bounds (of {}).",
        pruned.stats.evaluated, pruned.stats.pruned, pruned.stats.candidates
    );

    // --- 4. The cache: re-sweeping is free. ---
    let again = sweeper.sweep(&space);
    println!(
        "Re-sweep: {} cache hits, {} evaluations, {:.2?}.",
        again.stats.cache_hits, again.stats.evaluated, again.stats.elapsed
    );

    // --- 5. Replay the analytical winners on the spatial simulator. ---
    println!("\nValidating 3 top frontier designs (per-group winners first) on the simulator:");
    for validation in validate_top_k(&outcome, 3) {
        println!("  {validation}");
    }

    // --- 6. Export the frontiers for plotting / bench trajectories, and
    //        the deterministic Fig 12 frontier CI diffs against the
    //        checked-in golden (tests/golden/fig12_frontier.json). ---
    let json = frontier_json(&outcome);
    let path = std::path::Path::new("target").join("dse_frontier.json");
    if std::fs::create_dir_all("target").and_then(|_| std::fs::write(&path, &json)).is_ok() {
        println!("\nFrontier JSON ({} bytes) written to {}.", json.len(), path.display());
    } else {
        println!("\nFrontier JSON ({} bytes) follows:\n{json}", json.len());
    }
    let fig12_json = frontiers_only_json(&sweeper.sweep(&DesignSpace::new()));
    let fig12_path = std::path::Path::new("target").join("fig12_frontier.json");
    if std::fs::write(&fig12_path, &fig12_json).is_ok() {
        println!("Fig 12 golden frontier written to {}.", fig12_path.display());
    }

    // --- 7. Persist the cache so the next run is free. ---
    if let Some(path) = &cache_file {
        sweeper.save_cache(path)?;
        println!(
            "Cache ({} evaluations) saved to {}; rerun with the same flag for a free pass.",
            sweeper.cache().len(),
            path.display()
        );
    }
    Ok(())
}
