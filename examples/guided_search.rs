//! Guided design-space search with the `fusemax-dse` search subsystem:
//! random sampling, genetic search, and simulated annealing explore the
//! extended Fig 12 space on a quarter of the exhaustive budget, share one
//! evaluation cache, and are scored by the hypervolume convergence
//! harness against the exhaustive Pareto frontier.
//!
//! Run with `cargo run --example guided_search`. Pass `--continuous` to
//! let the annealer and the genetic searcher evaluate genuinely off-grid
//! designs (non-power-of-two arrays, arbitrary buffer bytes), and
//! `--screen` to reject provably-dominated candidates through the
//! zero-cost lower bound before the model runs. Pass `--trace-out PATH`
//! (or set the `FUSEMAX_TRACE` environment variable) to export each
//! strategy's staging/cache/frontier/convergence events as a
//! Chrome-trace/Perfetto JSON timeline (open at
//! <https://ui.perfetto.dev> or chrome://tracing) plus a metrics
//! snapshot at `target/telemetry_summary.json`.

use fusemax::dse::search::{
    convergence, hypervolume_fraction, record_convergence, GeneticSearch, RandomSearch,
    SearchBudget, SearchStrategy, SimulatedAnnealing, SnapPolicy,
};
use fusemax::dse::{record_cache_metrics, DesignSpace, Sweeper};
use fusemax::model::{ConfigKind, ModelParams};
use fusemax::telemetry::{search_trace_json, Event, Metrics, VecSink};
use fusemax::workloads::TransformerConfig;

/// `--flag <value>` from argv as a string, falling back to `env`.
fn str_arg(name: &str, env: &str) -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == name {
            if let Some(v) = args.next() {
                return Some(v);
            }
        } else if let Some(v) = a.strip_prefix(&format!("{name}=")) {
            return Some(v.to_string());
        }
    }
    std::env::var(env).ok().filter(|v| !v.is_empty())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let continuous = args.iter().any(|a| a == "--continuous");
    let screen = args.iter().any(|a| a == "--screen");
    let trace_out = str_arg("--trace-out", "FUSEMAX_TRACE");
    let snap = if continuous { SnapPolicy::Continuous } else { SnapPolicy::Grid };
    // The extended Fig 12 space: the paper's six array dims at 256K
    // tokens, widened with all five configurations and frequency/buffer
    // knobs — 180 candidates instead of 6.
    let space = DesignSpace::new()
        .with_kinds(ConfigKind::all())
        .with_workloads([TransformerConfig::bert()])
        .with_frequencies_hz([None, Some(470e6)])
        .with_buffer_scales([0.5, 1.0, 2.0]);

    // Ground truth: the exhaustive sweep (what Fig 12 would have cost).
    let sweeper = Sweeper::new(ModelParams::default());
    let exhaustive = sweeper.sweep(&space);
    println!(
        "Exhaustive: {} evaluations -> {} Pareto-optimal designs in {:.2?}.\n",
        exhaustive.stats.evaluated,
        exhaustive.frontier_points().len(),
        exhaustive.stats.elapsed,
    );

    // Guided: a quarter of the budget, cold caches — each strategy pays
    // for exactly what it explores.
    let budget = SearchBudget::fraction(&space, 0.25);
    println!(
        "Guided runs at {} of {} evaluations{}{}:",
        budget.evaluations,
        space.len(),
        if continuous { ", off-grid (--continuous)" } else { "" },
        if screen { ", lower-bound screened (--screen)" } else { "" },
    );
    let strategies: Vec<Box<dyn SearchStrategy>> = vec![
        Box::new(RandomSearch::new(7).with_screening(screen)),
        Box::new(GeneticSearch::new(7).with_snap_policy(snap).with_screening(screen)),
        Box::new(SimulatedAnnealing::new(7).with_snap_policy(snap).with_screening(screen)),
    ];
    let mut tracks: Vec<(String, Vec<Event>)> = Vec::new();
    for strategy in &strategies {
        let mut cold = Sweeper::new(ModelParams::default());
        if trace_out.is_some() {
            // An enabled recorder makes sessions buffer their event
            // streams into the outcome; results are unchanged.
            let (recorder, _sink) = VecSink::recorder();
            cold = cold.with_recorder(recorder);
        }
        let outcome = strategy.search(&cold, &space, budget);
        let fraction = hypervolume_fraction(&outcome.frontiers, &exhaustive);
        let curve = convergence(&outcome, &exhaustive, 9);
        if trace_out.is_some() {
            let mut stream = outcome.events.clone();
            let (recorder, sink) = VecSink::recorder();
            record_convergence(&curve, &recorder);
            stream.extend(sink.events());
            tracks.push((strategy.name().to_string(), stream));
        }
        println!(
            "  {:>10}: {:5.1}% of the exhaustive hypervolume ({} evaluations, {:.2?})",
            strategy.name(),
            fraction * 100.0,
            outcome.stats.requested,
            outcome.stats.elapsed,
        );
        if screen {
            println!(
                "             lower-bound filter rejected {} candidates before the model ran",
                outcome.stats.screened,
            );
        }
        if continuous {
            let off_grid =
                outcome.evaluations.iter().filter(|e| !space.is_on_grid(&e.point)).count();
            println!(
                "             {} of {} evaluated designs are off-grid",
                off_grid, outcome.stats.requested,
            );
        }
        let bars: Vec<String> = curve
            .samples
            .iter()
            .map(|s| format!("{:>3}:{:3.0}%", s.evaluations, s.fraction * 100.0))
            .collect();
        println!("             convergence  {}", bars.join("  "));
    }

    // Shared cache: a guided run over the already-swept sweeper touches
    // the model zero times.
    println!("\nShared-cache replay (after the exhaustive sweep):");
    for strategy in &strategies {
        let outcome = strategy.search(&sweeper, &space, budget);
        println!(
            "  {:>10}: {} requested, {} fresh evaluations, {} cache hits",
            strategy.name(),
            outcome.stats.requested,
            outcome.stats.evaluated,
            outcome.stats.cache_hits,
        );
    }

    // Export one convergence track per strategy plus a metrics snapshot.
    if let Some(path) = &trace_out {
        let refs: Vec<(&str, &[Event])> =
            tracks.iter().map(|(name, events)| (name.as_str(), events.as_slice())).collect();
        std::fs::write(path, search_trace_json(&refs)).expect("write trace file");
        let all: Vec<Event> = tracks.iter().flat_map(|(_, events)| events.clone()).collect();
        let mut metrics = Metrics::from_events(&all);
        record_cache_metrics(sweeper.cache(), &mut metrics);
        let summary = std::path::Path::new("target").join("telemetry_summary.json");
        std::fs::create_dir_all("target").expect("create target/");
        std::fs::write(&summary, metrics.summary_json()).expect("write telemetry summary");
        println!(
            "\nWrote {} search events to {path} (open at https://ui.perfetto.dev) and metrics \
             to {}.",
            all.len(),
            summary.display(),
        );
    }

    // What the search actually found: the best designs by latency.
    let group = &exhaustive.frontiers[0];
    println!("\nExhaustive frontier of {} @ {} tokens:", group.model, group.seq_len);
    for e in group.frontier.sorted_by(0).into_iter().take(5) {
        println!(
            "  {:<22} {:<14} area {:6.2} cm²  latency {:9.3e} s  energy {:9.3e} J",
            e.point.arch.name,
            e.point.kind.label(),
            e.area_cm2,
            e.latency_s,
            e.energy_j,
        );
    }
}
