//! Guided design-space search with the `fusemax-dse` search subsystem:
//! random sampling, genetic search, and simulated annealing explore the
//! extended Fig 12 space on a quarter of the exhaustive budget, share one
//! evaluation cache, and are scored by the hypervolume convergence
//! harness against the exhaustive Pareto frontier.
//!
//! Run with `cargo run --example guided_search`. Pass `--continuous` to
//! let the annealer and the genetic searcher evaluate genuinely off-grid
//! designs (non-power-of-two arrays, arbitrary buffer bytes), and
//! `--screen` to reject provably-dominated candidates through the
//! zero-cost lower bound before the model runs.

use fusemax::dse::search::{
    convergence, hypervolume_fraction, GeneticSearch, RandomSearch, SearchBudget, SearchStrategy,
    SimulatedAnnealing, SnapPolicy,
};
use fusemax::dse::{DesignSpace, Sweeper};
use fusemax::model::{ConfigKind, ModelParams};
use fusemax::workloads::TransformerConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let continuous = args.iter().any(|a| a == "--continuous");
    let screen = args.iter().any(|a| a == "--screen");
    let snap = if continuous { SnapPolicy::Continuous } else { SnapPolicy::Grid };
    // The extended Fig 12 space: the paper's six array dims at 256K
    // tokens, widened with all five configurations and frequency/buffer
    // knobs — 180 candidates instead of 6.
    let space = DesignSpace::new()
        .with_kinds(ConfigKind::all())
        .with_workloads([TransformerConfig::bert()])
        .with_frequencies_hz([None, Some(470e6)])
        .with_buffer_scales([0.5, 1.0, 2.0]);

    // Ground truth: the exhaustive sweep (what Fig 12 would have cost).
    let sweeper = Sweeper::new(ModelParams::default());
    let exhaustive = sweeper.sweep(&space);
    println!(
        "Exhaustive: {} evaluations -> {} Pareto-optimal designs in {:.2?}.\n",
        exhaustive.stats.evaluated,
        exhaustive.frontier_points().len(),
        exhaustive.stats.elapsed,
    );

    // Guided: a quarter of the budget, cold caches — each strategy pays
    // for exactly what it explores.
    let budget = SearchBudget::fraction(&space, 0.25);
    println!(
        "Guided runs at {} of {} evaluations{}{}:",
        budget.evaluations,
        space.len(),
        if continuous { ", off-grid (--continuous)" } else { "" },
        if screen { ", lower-bound screened (--screen)" } else { "" },
    );
    let strategies: Vec<Box<dyn SearchStrategy>> = vec![
        Box::new(RandomSearch::new(7).with_screening(screen)),
        Box::new(GeneticSearch::new(7).with_snap_policy(snap).with_screening(screen)),
        Box::new(SimulatedAnnealing::new(7).with_snap_policy(snap).with_screening(screen)),
    ];
    for strategy in &strategies {
        let cold = Sweeper::new(ModelParams::default());
        let outcome = strategy.search(&cold, &space, budget);
        let fraction = hypervolume_fraction(&outcome.frontiers, &exhaustive);
        let curve = convergence(&outcome, &exhaustive, 9);
        println!(
            "  {:>10}: {:5.1}% of the exhaustive hypervolume ({} evaluations, {:.2?})",
            strategy.name(),
            fraction * 100.0,
            outcome.stats.requested,
            outcome.stats.elapsed,
        );
        if screen {
            println!(
                "             lower-bound filter rejected {} candidates before the model ran",
                outcome.stats.screened,
            );
        }
        if continuous {
            let off_grid =
                outcome.evaluations.iter().filter(|e| !space.is_on_grid(&e.point)).count();
            println!(
                "             {} of {} evaluated designs are off-grid",
                off_grid, outcome.stats.requested,
            );
        }
        let bars: Vec<String> = curve
            .samples
            .iter()
            .map(|s| format!("{:>3}:{:3.0}%", s.evaluations, s.fraction * 100.0))
            .collect();
        println!("             convergence  {}", bars.join("  "));
    }

    // Shared cache: a guided run over the already-swept sweeper touches
    // the model zero times.
    println!("\nShared-cache replay (after the exhaustive sweep):");
    for strategy in &strategies {
        let outcome = strategy.search(&sweeper, &space, budget);
        println!(
            "  {:>10}: {} requested, {} fresh evaluations, {} cache hits",
            strategy.name(),
            outcome.stats.requested,
            outcome.stats.evaluated,
            outcome.stats.cache_hits,
        );
    }

    // What the search actually found: the best designs by latency.
    let group = &exhaustive.frontiers[0];
    println!("\nExhaustive frontier of {} @ {} tokens:", group.model, group.seq_len);
    for e in group.frontier.sorted_by(0).into_iter().take(5) {
        println!(
            "  {:<22} {:<14} area {:6.2} cm²  latency {:9.3e} s  energy {:9.3e} J",
            e.point.arch.name,
            e.point.kind.label(),
            e.area_cm2,
            e.latency_s,
            e.energy_j,
        );
    }
}
