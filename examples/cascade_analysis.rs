//! Cascade analysis walkthrough: §III's pedagogical cascades, the
//! reassociation trade-offs, and Table I's taxonomy — all computed.
//!
//! Run with `cargo run --example cascade_analysis`.

use fusemax::core::cascades::pedagogical;
use fusemax::core::passes::analyze_passes;
use fusemax::einsum::Evaluator;
use fusemax::eval::table1;
use fusemax::tensor::{Shape, Tensor};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // §III: three cascades that compute the same Z = (Σ A·B)(Σ A).
    let k = 64usize;
    let a = Tensor::from_fn(Shape::of(&[("K", k)]), |c| 0.25 + (c[0] % 7) as f64 * 0.125);
    let b = Tensor::from_fn(Shape::of(&[("K", k)]), |c| 1.0 - (c[0] % 5) as f64 * 0.0625);
    let a_i = Tensor::from_vec(Shape::of(&[("I", k)]), a.data().to_vec())?;
    let b_i = Tensor::from_vec(Shape::of(&[("I", k)]), b.data().to_vec())?;

    println!("Cascade          passes  total ops  Z");
    let evaluator = Evaluator::new();
    for (cascade, family, inputs) in [
        (pedagogical::cascade1(), "K", [("A", a.clone()), ("B", b.clone())]),
        (pedagogical::cascade2(), "K", [("A", a.clone()), ("B", b.clone())]),
        (pedagogical::cascade3(), "I", [("A", a_i), ("B", b_i)]),
    ] {
        let analysis = analyze_passes(&cascade, family)?;
        let result = evaluator.evaluate(&cascade, &inputs, &[])?;
        println!(
            "{:<18} {:>4}  {:>9}  {:.4}",
            cascade.name,
            analysis.num_passes,
            result.total_counts().total(),
            result.tensor("Z")?.item()
        );
    }
    println!("\n(§III-C: reassociation removes a pass; the iterative variant");
    println!(" removes the pass at the cost of extra compute.)\n");

    // Detailed per-Einsum pass placement for the attention cascades.
    for cascade in [
        fusemax::core::cascades::attention::three_pass(),
        fusemax::core::cascades::attention::two_pass(),
        fusemax::core::cascades::attention::one_pass(),
    ] {
        println!("--- {} ---", cascade.name);
        println!("{}", analyze_passes(&cascade, "M")?);
    }

    // Table I, computed from the cascades.
    let rows = table1::table1()?;
    print!("{}", table1::render(&rows));
    Ok(())
}
