//! Validates exported telemetry artifacts.
//!
//! Default mode checks a Chrome-trace/Perfetto JSON file: well-formed
//! `traceEvents` envelope, at least one timestamped event, and
//! non-decreasing timestamps in file order (what the exporters guarantee
//! by stable-sorting timed records). With `--folded`, the argument is
//! instead checked as inferno folded-stack output: every line
//! `stack COUNT` with a positive integer count, well-formed frames, and
//! strictly sorted stacks (what `folded_stack_text` guarantees).
//!
//! Run with `cargo run --example validate_trace -- <trace.json>` or
//! `cargo run --example validate_trace -- --folded <stacks.folded>`;
//! exits non-zero on an invalid file, so CI can gate on it.

use fusemax::telemetry::{validate_chrome_trace, validate_folded_stacks};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (folded, path) = match args.as_slice() {
        [path] => (false, path.clone()),
        [flag, path] if flag == "--folded" => (true, path.clone()),
        _ => {
            eprintln!("usage: validate_trace [--folded] <file>");
            std::process::exit(2);
        }
    };
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("{path}: {e}");
        std::process::exit(2);
    });
    let outcome = if folded {
        validate_folded_stacks(&text)
            .map(|n| format!("valid folded stacks, {n} sorted stack lines"))
    } else {
        validate_chrome_trace(&text)
            .map(|n| format!("valid Chrome trace, {n} timestamped events in monotone file order"))
    };
    match outcome {
        Ok(msg) => println!("{path}: {msg}"),
        Err(e) => {
            eprintln!("{path}: INVALID: {e}");
            std::process::exit(1);
        }
    }
}
