//! Validates an exported Chrome-trace/Perfetto JSON file: well-formed
//! `traceEvents` envelope, at least one timestamped event, and
//! non-decreasing timestamps in file order (what the exporters guarantee
//! by stable-sorting timed records).
//!
//! Run with `cargo run --example validate_trace -- <trace.json>`; exits
//! non-zero on an invalid trace, so CI can gate on it.

use fusemax::telemetry::validate_chrome_trace;

fn main() {
    let path = std::env::args().nth(1).unwrap_or_else(|| {
        eprintln!("usage: validate_trace <trace.json>");
        std::process::exit(2);
    });
    let json = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("{path}: {e}");
        std::process::exit(2);
    });
    match validate_chrome_trace(&json) {
        Ok(n) => {
            println!("{path}: valid Chrome trace, {n} timestamped events in monotone file order")
        }
        Err(e) => {
            eprintln!("{path}: INVALID trace: {e}");
            std::process::exit(1);
        }
    }
}
