//! Traffic-driven serving: drive design points with a seeded request
//! trace and pick the best *server* instead of the best single-point
//! latency.
//!
//! Run with `cargo run --release --example serve`. Optional flags:
//! `--requests N` (trace size, default 60), `--rate R` (requests/s,
//! default 150), `--seed S` (trace seed, default 7), `--sla MS`
//! (p99 TTFT ceiling in milliseconds, default 250),
//! `--chunk-tokens N` (prefill chunk budget per iteration; 0 = whole
//! prompt, the default), `--queue-order fcfs|spf` (waiting-queue
//! admission order, default FCFS), and `--trace-out PATH` (or the
//! `FUSEMAX_TRACE` environment variable) to export the +Binding serving
//! run as a Chrome-trace/Perfetto JSON timeline — open it at
//! <https://ui.perfetto.dev> or chrome://tracing — plus a metrics
//! snapshot at `target/telemetry_summary.json`.
//!
//! Fleet flags: `--replicas N` serves the trace on N data-parallel
//! copies of the +Binding chip, `--router rr|ll|sp` picks the routing
//! policy (round-robin, least-loaded, shortest-prompt), and
//! `--disaggregate P:D` dedicates P prefill chips feeding D decode
//! chips with the K/V handoff charged at DRAM bandwidth.
//! `--fleet-trace-out PATH` (or `FUSEMAX_FLEET_TRACE`) exports the
//! fleet run as a Perfetto timeline with one process per chip plus a
//! router track (and a fault track when faults are injected).
//!
//! Fault-injection flags (apply to the fleet run):
//! `--fault "t=2.5:replica=1:down"` injects a scripted fault timeline
//! (`;`-separated events; kinds: `down`, `up`, `throttle=X`,
//! `brownout=X`), `--fault-seed S` generates a seeded
//! single-failure-plus-recovery scenario instead, and
//! `--shed-watermark W` sheds displaced waiting work when surviving
//! capacity drops below fraction `W`. The run prints a fault-and-retry
//! summary (retries, sheds, availability).

use fusemax::dse::{DesignSpace, FleetSpec, RouterPolicy, Sweeper};
use fusemax::model::{ConfigKind, ModelParams};
use fusemax::serve::{
    Arrivals, FaultSpec, Fleet, LengthMix, QueueOrder, SchedulerPolicy, ServeObjective, ServeSim,
    Sla, TrafficSpec,
};
use fusemax::telemetry::{fleet_trace_json, serve_trace_json, Event, Metrics, VecSink};
use fusemax::workloads::TransformerConfig;

/// `--flag <value>` from argv, with a default.
fn arg(name: &str, default: f64) -> f64 {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == name {
            if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                return v;
            }
        } else if let Some(v) = a.strip_prefix(&format!("{name}=")) {
            if let Ok(v) = v.parse() {
                return v;
            }
        }
    }
    default
}

/// `--flag <value>` from argv as a string, falling back to `env`.
fn str_arg(name: &str, env: &str) -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == name {
            if let Some(v) = args.next() {
                return Some(v);
            }
        } else if let Some(v) = a.strip_prefix(&format!("{name}=")) {
            return Some(v.to_string());
        }
    }
    std::env::var(env).ok().filter(|v| !v.is_empty())
}

fn main() {
    let requests = arg("--requests", 60.0) as usize;
    let rate = arg("--rate", 150.0);
    let seed = arg("--seed", 7.0) as u64;
    let sla_s = arg("--sla", 250.0) / 1e3;
    let trace_out = str_arg("--trace-out", "FUSEMAX_TRACE");
    let chunk_tokens = arg("--chunk-tokens", 0.0) as usize;
    let queue_order = match str_arg("--queue-order", "FUSEMAX_QUEUE_ORDER").as_deref() {
        Some("spf") | Some("shortest-prompt-first") => QueueOrder::ShortestPromptFirst,
        Some("fcfs") | None => QueueOrder::Fcfs,
        Some(other) => panic!("unknown --queue-order {other:?} (expected fcfs or spf)"),
    };
    let policy = if chunk_tokens > 0 {
        SchedulerPolicy::chunked(chunk_tokens)
    } else {
        SchedulerPolicy::unbounded()
    }
    .with_queue_order(queue_order);
    let params = ModelParams::default();

    // --- 1. A mixed interactive trace: mostly short prompts, a long tail. ---
    let spec = TrafficSpec {
        arrivals: Arrivals::Poisson { rate_per_s: rate },
        prompt_mix: LengthMix::new([(512, 3.0), (4096, 1.0)]),
        output_mix: LengthMix::uniform([8, 32]),
        requests,
    };
    let trace = spec.generate(seed);
    println!(
        "Trace: {} requests over {:.2}s ({:.0} req/s offered), {} prompt + {} output tokens",
        trace.len(),
        trace.last_arrival_s(),
        trace.offered_rate_rps(),
        trace.total_prompt_tokens(),
        trace.total_output_tokens(),
    );
    println!("Scheduler: {policy}");

    // --- 2. Iso-area cloud shoot-out: FLAT vs FuseMax+Binding on BERT. ---
    let bert = TransformerConfig::bert();
    let mean_tokens = spec.prompt_mix.mean() + spec.output_mix.mean();
    let mean_request_bytes =
        (mean_tokens * (bert.kv_bytes_per_token(2) / bert.layers as u64) as f64) as u64;
    for kind in [ConfigKind::Flat, ConfigKind::FuseMaxBinding] {
        let arch = kind.default_arch();
        println!(
            "\n[{}] buffer fits ~{} mean-size requests",
            kind.label(),
            arch.max_resident_requests(mean_request_bytes),
        );
        let builder = ServeSim::builder(kind, arch, bert.clone(), params.clone()).policy(policy);
        // Instrument the +Binding run when a trace path was requested;
        // telemetry is write-only, so the printed report is unchanged.
        let (sim, sink) = if trace_out.is_some() && kind == ConfigKind::FuseMaxBinding {
            let (recorder, sink) = VecSink::recorder();
            (builder.recorder(recorder).build(), Some(sink))
        } else {
            (builder.build(), None)
        };
        println!("{}", sim.run(&trace));
        if let (Some(path), Some(sink)) = (&trace_out, sink) {
            let events = sink.events();
            std::fs::write(path, serve_trace_json(&events)).expect("write trace file");
            let summary = std::path::Path::new("target").join("telemetry_summary.json");
            std::fs::create_dir_all("target").expect("create target/");
            std::fs::write(&summary, Metrics::from_events(&events).summary_json())
                .expect("write telemetry summary");
            println!(
                "Wrote {} serve events to {path} (open at https://ui.perfetto.dev) \
                 and metrics to {}.",
                events.len(),
                summary.display(),
            );
        }
    }

    // --- 3. Fleet serving: data-parallel replicas / disaggregation. ---
    let replicas = arg("--replicas", 1.0) as usize;
    let router = match str_arg("--router", "FUSEMAX_ROUTER").as_deref() {
        Some(tok) => RouterPolicy::parse(tok)
            .unwrap_or_else(|| panic!("unknown --router {tok:?} (expected rr, ll, or sp)")),
        None => RouterPolicy::RoundRobin,
    };
    let fleet_spec = match str_arg("--disaggregate", "FUSEMAX_DISAGGREGATE") {
        Some(pd) => {
            let (p, d) = pd.split_once(':').expect("--disaggregate expects P:D, e.g. 1:3");
            FleetSpec::disaggregated(
                p.parse().expect("prefill chip count"),
                d.parse().expect("decode chip count"),
            )
        }
        None => FleetSpec::replicated(replicas),
    }
    .with_router(router);
    if let Err(e) = fleet_spec.validate() {
        panic!("invalid fleet spec: {e}");
    }
    // Fault injection: a scripted timeline (--fault) or a seeded
    // single-failure-plus-recovery scenario (--fault-seed), validated
    // against the trace horizon before the fleet ever runs.
    let horizon_s = trace.last_arrival_s();
    let mut faults = match str_arg("--fault", "FUSEMAX_FAULT") {
        Some(text) => {
            FaultSpec::parse_events(&text).unwrap_or_else(|e| panic!("invalid --fault events: {e}"))
        }
        None => match str_arg("--fault-seed", "FUSEMAX_FAULT_SEED") {
            Some(s) => FaultSpec::seeded(
                s.parse().expect("--fault-seed expects an integer"),
                fleet_spec.chips(),
                horizon_s.max(f64::MIN_POSITIVE),
            ),
            None => FaultSpec::none(),
        },
    };
    if let Some(w) = str_arg("--shed-watermark", "FUSEMAX_SHED_WATERMARK") {
        faults = faults.with_shed_watermark(w.parse().expect("--shed-watermark expects a number"));
    }
    if let Err(e) = faults.validate(horizon_s) {
        panic!("invalid fault spec: {e}");
    }
    if !faults.is_empty() && fleet_spec.is_single() {
        println!("\nNote: fault injection needs a fleet — add --replicas N or --disaggregate P:D.");
    }
    let fleet_trace_out = str_arg("--fleet-trace-out", "FUSEMAX_FLEET_TRACE");
    if !fleet_spec.is_single() {
        let kind = ConfigKind::FuseMaxBinding;
        let replica = ServeSim::builder(kind, kind.default_arch(), bert.clone(), params.clone())
            .policy(policy)
            .build();
        let mut fleet = Fleet::new(fleet_spec, replica).with_faults(faults.clone());
        let fleet_sink = if fleet_trace_out.is_some() {
            let (recorder, sink) = VecSink::recorder();
            fleet = fleet.with_recorder(recorder);
            Some(sink)
        } else {
            None
        };
        let detailed = fleet.run_detailed(&trace);
        println!("\n[{} fleet {fleet_spec}] merged report:", kind.label());
        println!("{}", detailed.merged);
        if detailed.kv_transfer_bytes > 0 {
            println!(
                "K/V handoff: {:.1} MiB over the wire, {:.4}s at DRAM bandwidth",
                detailed.kv_transfer_bytes as f64 / (1 << 20) as f64,
                detailed.kv_transfer_s,
            );
        }
        println!("Per-chip breakdown:");
        for (k, r) in detailed.replicas.iter().enumerate() {
            println!(
                "  chip {k}: {} completed, {:.2} req/s goodput, {:.0}% busy, p99 TTFT {:.4}s",
                r.completed,
                r.goodput_rps,
                r.utilization * 100.0,
                r.ttft.p99,
            );
        }
        if !faults.is_empty() {
            println!(
                "Fault injection ({} scripted events: {}): {}",
                faults.events.len(),
                faults.render_events(),
                detailed.faults,
            );
            if !detailed.shed_ids.is_empty() {
                println!("  shed request ids: {:?}", detailed.shed_ids);
            }
        }
        if let (Some(path), Some(sink)) = (&fleet_trace_out, fleet_sink) {
            let router_events = sink.events();
            let mut streams: Vec<(&str, &[Event])> = vec![("router", &router_events)];
            for (name, events) in &detailed.replica_events {
                streams.push((name.as_str(), events));
            }
            std::fs::write(path, fleet_trace_json(&streams)).expect("write fleet trace file");
            println!(
                "Wrote fleet trace ({} router events, {} chip tracks) to {path}.",
                router_events.len(),
                streams.len() - 1,
            );
        }
    }

    // --- 4. SLA-aware design selection over the Fig 12 chip family. ---
    let space = DesignSpace::new().with_workloads([bert.clone()]);
    let outcome = Sweeper::new(params.clone()).sweep(&space);
    let group = outcome.frontier_for("BERT", 1 << 18).expect("BERT group swept");
    let evaluations: Vec<_> = group.frontier.points().to_vec();

    let objective = ServeObjective::new(trace, Sla::p99_ttft(sla_s));
    let ranked = objective.rank(&evaluations, &params);
    println!("\nFig 12 BERT family re-ranked by served-traffic merit (SLA: p99 TTFT <= {sla_s}s):");
    println!(
        "{:<22} {:>8} {:>12} {:>12} {:>10} {:>6}",
        "design", "area cm2", "goodput r/s", "p99 TTFT s", "r/s/cm2", "SLA"
    );
    for (e, score) in &ranked {
        println!(
            "{:<22} {:>8.2} {:>12.2} {:>12.4} {:>10.3} {:>6}",
            e.point.arch.name,
            e.area_cm2,
            score.report.goodput_rps,
            score.report.ttft.p99,
            score.goodput_per_cm2,
            if score.meets_sla { "yes" } else { "NO" },
        );
    }

    // --- 5. The punchline: serving merit vs single-point latency. ---
    let latency_best = evaluations
        .iter()
        .min_by(|a, b| a.latency_s.total_cmp(&b.latency_s))
        .expect("non-empty frontier");
    let (serve_best, _) = &ranked[0];
    println!(
        "\nLatency ranking (fixed 256K tokens) picks {}; serving ranking picks {}.",
        latency_best.point.arch.name, serve_best.point.arch.name
    );
    if latency_best.point.array_dim != serve_best.point.array_dim {
        println!(
            "Once a chip keeps up with the offered load inside the SLA, extra silicon \
             only costs area — the serving winner is the smaller design."
        );
    }
}
