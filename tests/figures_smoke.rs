//! Smoke tests: every figure/table generator produces well-formed output
//! with the paper's qualitative shapes (the quantitative record lives in
//! EXPERIMENTS.md).

use fusemax::eval::fig8_9::{figure, Metric, Scope};
use fusemax::eval::{fig12, fig1b, fig6, fig7, summary, table1};
use fusemax::model::ModelParams;
use fusemax::workloads::TransformerConfig;

#[test]
fn fig1b_all_models() {
    for cfg in TransformerConfig::all() {
        let g = fig1b::fig1b(&cfg);
        assert_eq!(g.rows.len(), 3);
        assert_eq!(g.cols.len(), 6);
        assert!(g.get("Attn", "1M").unwrap() > 0.9, "{}", cfg.name);
        assert!(!g.to_csv().is_empty());
    }
}

#[test]
fn fig6_both_arrays_have_four_panels_of_five_configs() {
    let params = ModelParams::default();
    for array in [fig6::Array::OneD, fig6::Array::TwoD] {
        let panels = fig6::fig6(array, &params);
        assert_eq!(panels.len(), 4);
        for p in &panels {
            assert_eq!(p.rows.len(), 5);
            assert_eq!(p.cols.len(), 6);
        }
    }
}

#[test]
fn fig7_active_shares_are_shaped_like_the_paper() {
    let params = ModelParams::default();
    let panels = fig7::fig7(&params);
    assert_eq!(panels.len(), 6);
    // At every length, +B's idle share is the smallest of the four configs.
    for panel in &panels {
        let idle_row = panel.rows.iter().position(|r| r == "idle").unwrap();
        let idle = &panel.values[idle_row];
        let b = idle[3];
        assert!(idle[..3].iter().all(|&x| x >= b - 1e-9), "{}: {idle:?}", panel.title);
    }
}

#[test]
fn figs_8_through_11_have_correct_shape() {
    let params = ModelParams::default();
    for (scope, metric) in [
        (Scope::Attention, Metric::Speedup),
        (Scope::Attention, Metric::EnergyUse),
        (Scope::EndToEnd, Metric::Speedup),
        (Scope::EndToEnd, Metric::EnergyUse),
    ] {
        let panels = figure(scope, metric, &params);
        assert_eq!(panels.len(), 4);
        for p in &panels {
            assert_eq!(p.rows.len(), 4); // FLAT, +C, +A, +B
            assert_eq!(p.cols.len(), 6);
            for row in &p.values {
                assert!(row.iter().all(|v| v.is_finite() && *v > 0.0), "{}", p.title);
            }
        }
    }
}

#[test]
fn fig12_has_pareto_structure_for_all_models() {
    let params = ModelParams::default();
    let curves = fig12::fig12(&params);
    assert_eq!(curves.len(), 4);
    for (name, points) in &curves {
        assert_eq!(points.len(), fig12::ARRAY_DIMS.len());
        for w in points.windows(2) {
            assert!(w[1].area_cm2 > w[0].area_cm2, "{name}");
            assert!(w[1].latency_s < w[0].latency_s, "{name}");
        }
    }
}

#[test]
fn table1_classifications_all_verified() {
    let rows = table1::table1().unwrap();
    assert_eq!(rows.len(), 9);
    assert!(rows.iter().all(|r| r.computed == r.expected));
}

#[test]
fn headline_matches_paper_bands() {
    // Paper §VI: 6.7× @ 79% (attention) and 5.3× @ 83% (e2e) vs FLAT;
    // 10× @ 77% and 7.6× @ 82% vs unfused. Our reproduction's bands:
    let h = summary::headline(&ModelParams::default());
    assert!((4.0..14.0).contains(&h.attention_speedup_vs_flat), "{h}");
    assert!((6.0..16.0).contains(&h.attention_speedup_vs_unfused), "{h}");
    assert!((0.5..0.95).contains(&h.attention_energy_vs_flat), "{h}");
    assert!((3.0..12.0).contains(&h.e2e_speedup_vs_flat), "{h}");
    assert!(h.e2e_energy_vs_flat < 1.0 && h.e2e_energy_vs_unfused < 1.0, "{h}");
}

#[test]
fn exp_cost_ablation_changes_fusemax_but_not_baselines() {
    // Sensitivity knob from DESIGN.md §1.9: the baselines charge 1-op
    // softmax Einsums regardless of exp_maccs; FuseMax pays for its MACC
    // chain.
    use fusemax::model::{attention_report, ConfigKind};
    let bert = TransformerConfig::bert();
    let cheap = ModelParams { exp_maccs: 1.0, ..ModelParams::default() };
    let default = ModelParams::default();
    let l = 1 << 16;

    let flat_a = attention_report(ConfigKind::Flat, &bert, l, None, &default);
    let flat_b = attention_report(ConfigKind::Flat, &bert, l, None, &cheap);
    assert_eq!(flat_a.cycles, flat_b.cycles);

    let fm_a = attention_report(ConfigKind::FuseMaxBinding, &bert, l, None, &default);
    let fm_b = attention_report(ConfigKind::FuseMaxBinding, &bert, l, None, &cheap);
    assert!(fm_b.cycles < fm_a.cycles, "cheaper exp must speed FuseMax up");
}
