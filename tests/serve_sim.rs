//! Acceptance and invariant tests for the serving subsystem (ISSUE 4):
//!
//! * conservation proptests — every generated request completes exactly
//!   once, residency never exceeds the buffer-derived capacity, and
//!   identical seeds yield bit-identical [`ServeReport`]s;
//! * the tentpole acceptance — on a seeded mixed prefill/decode trace
//!   over the Fig 12 design space, `ServeObjective` ranking selects a
//!   *different* best design than fixed-sequence-length latency ranking,
//!   and replaying the same trace twice reproduces the report exactly
//!   (p99 included);
//! * the scheduler-policy acceptance (ISSUE 7) — a seeded search over
//!   the policy-extended Fig 12 space finds a (hardware, scheduler) pair
//!   whose SLA-feasible goodput per area beats the best fixed
//!   whole-prompt/FCFS configuration, chunked replays conserve requests
//!   and respect the per-iteration token budget, and an explicit
//!   `SchedulerPolicy::unbounded()` reproduces the checked-in golden
//!   serve trace byte for byte.

use fusemax::dse::search::{GeneticSearch, SearchBudget, SearchStrategy};
use fusemax::dse::{DesignSpace, Sweeper};
use fusemax::model::{ConfigKind, ModelParams};
use fusemax::serve::{
    Arrivals, LengthMix, QueueOrder, SchedulerPolicy, ServeObjective, ServeSim, Sla, TrafficSpec,
};
use fusemax::telemetry::{serve_trace_json, Event, ServeEvent, VecSink};
use fusemax::workloads::TransformerConfig;
use proptest::prelude::*;

fn mixed_spec(rate: f64, requests: usize) -> TrafficSpec {
    TrafficSpec {
        arrivals: Arrivals::Poisson { rate_per_s: rate },
        prompt_mix: LengthMix::new([(512, 3.0), (4096, 1.0)]),
        output_mix: LengthMix::uniform([8, 32]),
        requests,
    }
}

/// The Fig 12 BERT frontier, the acceptance criterion's design space.
fn bert_frontier() -> Vec<std::sync::Arc<fusemax::dse::Evaluation>> {
    let space = DesignSpace::new().with_workloads([TransformerConfig::bert()]);
    let outcome = Sweeper::new(ModelParams::default()).sweep(&space);
    outcome.frontier_for("BERT", 1 << 18).expect("BERT group").frontier.points().to_vec()
}

#[test]
fn serving_ranking_differs_from_latency_ranking_on_a_mixed_trace() {
    let params = ModelParams::default();
    let evaluations = bert_frontier();
    assert_eq!(evaluations.len(), 6, "the Fig 12 family is entirely Pareto-optimal");

    // Fixed-sequence-length ranking: the biggest chip always wins.
    let latency_best =
        evaluations.iter().min_by(|a, b| a.latency_s.total_cmp(&b.latency_s)).unwrap();
    assert_eq!(latency_best.point.array_dim, 512);

    // Served-traffic ranking under an interactive mix and a p99 TTFT SLA:
    // the winner is the *smallest* chip that keeps up with the load —
    // a genuinely different selection.
    let trace = mixed_spec(150.0, 60).generate(7);
    let objective = ServeObjective::new(trace, Sla::p99_ttft(0.25));
    let (serve_best, best_score) = objective.rank(&evaluations, &params).remove(0);
    assert!(best_score.meets_sla, "some design must meet the SLA");
    assert_ne!(
        serve_best.point.array_dim, latency_best.point.array_dim,
        "the serving winner must differ from the latency winner on this mix"
    );

    // Sanity on the ordering semantics: every SLA-meeting design ranks
    // above every SLA-missing one, and the winner has the best
    // goodput-per-area among the feasible set.
    let ranked = objective.rank(&evaluations, &params);
    let feasible: Vec<_> = ranked.iter().filter(|(_, s)| s.meets_sla).collect();
    assert!(!feasible.is_empty());
    for (_, s) in &feasible {
        assert!(best_score.goodput_per_cm2 >= s.goodput_per_cm2 - 1e-12);
    }
}

#[test]
fn replaying_the_same_trace_is_bit_identical_including_p99() {
    let params = ModelParams::default();
    let evaluations = bert_frontier();
    let trace = mixed_spec(150.0, 60).generate(7);

    // The trace itself regenerates identically...
    assert_eq!(trace, mixed_spec(150.0, 60).generate(7));

    // ...and every design's report replays bit-for-bit, exact quantiles
    // included.
    for e in &evaluations {
        let sim = ServeSim::for_point(&e.point, &params);
        let a = sim.run(&trace);
        let b = sim.run(&trace);
        assert_eq!(a, b, "replay diverged on {}", e.point.arch.name);
        assert_eq!(a.ttft.p99.to_bits(), b.ttft.p99.to_bits(), "p99 TTFT bits");
        assert_eq!(a.tpot.p99.to_bits(), b.tpot.p99.to_bits(), "p99 TPOT bits");
    }

    // The full objective ranking is reproducible too.
    let objective = ServeObjective::new(trace, Sla::p99_ttft(0.25));
    let x = objective.rank(&evaluations, &params);
    let y = objective.rank(&evaluations, &params);
    for ((ex, sx), (ey, sy)) in x.iter().zip(&y) {
        assert_eq!(ex.point, ey.point);
        assert_eq!(sx, sy);
    }
}

#[test]
fn service_time_table_replay_is_bit_identical_with_zero_in_loop_model_calls() {
    // The ISSUE-5 serve acceptance: a replay through a precomputed
    // ServiceTimeTable must reproduce the existing reports bit-for-bit
    // (p99 included) while performing zero e2e_report_on calls inside the
    // iteration loop — every model call happens at table build time.
    let params = ModelParams::default();
    let trace = mixed_spec(150.0, 60).generate(7);
    for e in &bert_frontier() {
        let sim = ServeSim::for_point(&e.point, &params);
        let table = sim.service_times(&trace);
        assert!(table.model_evaluations() > 0, "table must precompute something");

        let via_table = sim.run_with(&table, &trace);
        assert_eq!(
            table.misses(),
            0,
            "{}: the iteration loop fell back to the model",
            e.point.arch.name
        );

        // Bit-identical to the plain run (which builds its own table) —
        // the golden serving behavior is unchanged.
        let plain = sim.run(&trace);
        assert_eq!(via_table, plain, "{}", e.point.arch.name);
        assert_eq!(via_table.ttft.p99.to_bits(), plain.ttft.p99.to_bits());
        assert_eq!(via_table.tpot.p99.to_bits(), plain.tpot.p99.to_bits());
        assert_eq!(via_table.e2e.p99.to_bits(), plain.e2e.p99.to_bits());

        // Replaying through the same table again is free and identical.
        assert_eq!(sim.run_with(&table, &trace), via_table);
        assert_eq!(table.misses(), 0);
    }
}

#[test]
fn parallel_objective_ranking_matches_the_serial_path_bit_for_bit() {
    let params = ModelParams::default();
    let evaluations = bert_frontier();
    let trace = mixed_spec(150.0, 60).generate(7);
    let parallel = ServeObjective::new(trace.clone(), Sla::p99_ttft(0.25));
    let serial = parallel.clone().with_parallelism(false);
    let a = parallel.rank(&evaluations, &params);
    let b = serial.rank(&evaluations, &params);
    assert_eq!(a.len(), b.len());
    for ((ea, sa), (eb, sb)) in a.iter().zip(&b) {
        assert_eq!(ea.point, eb.point, "ranking order diverged");
        assert_eq!(sa, sb, "scores diverged");
        assert_eq!(sa.report.ttft.p99.to_bits(), sb.report.ttft.p99.to_bits());
    }
}

#[test]
fn bursty_traffic_stresses_the_tail_harder_than_poisson() {
    // Same mean rate, same lengths: bursts must not change *what*
    // completes, only the tail latency.
    let params = ModelParams::default();
    let sim = ServeSim::builder(
        ConfigKind::FuseMaxBinding,
        ConfigKind::FuseMaxBinding.default_arch(),
        TransformerConfig::bert(),
        params.clone(),
    )
    .build();
    let poisson = mixed_spec(120.0, 80).generate(3);
    let bursty = TrafficSpec {
        arrivals: Arrivals::Bursty { rate_per_s: 120.0, burst: 16 },
        ..mixed_spec(120.0, 80)
    }
    .generate(3);
    let p = sim.run(&poisson);
    let b = sim.run(&bursty);
    assert_eq!(p.completed, 80);
    assert_eq!(b.completed, 80);
    assert!(
        b.ttft.p99 > p.ttft.p99 * 0.5,
        "burst p99 {} collapsed below half the Poisson p99 {}",
        b.ttft.p99,
        p.ttft.p99
    );
}

#[test]
fn explicit_unbounded_policy_reproduces_the_golden_serve_trace_byte_for_byte() {
    // The chunk-size = ∞ replay contract: setting the policy explicitly
    // (rather than relying on the default) must reproduce the checked-in
    // pre-policy golden trace byte for byte — the scheduler rewrite is
    // invisible until a finite chunk budget or non-FCFS order opts in.
    let trace = TrafficSpec {
        arrivals: Arrivals::Poisson { rate_per_s: 400.0 },
        prompt_mix: LengthMix::new([(256, 3.0), (1024, 1.0)]),
        output_mix: LengthMix::uniform([2, 6]),
        requests: 12,
    }
    .generate(7);
    let (recorder, sink) = VecSink::recorder();
    ServeSim::builder(
        ConfigKind::FuseMaxBinding,
        ConfigKind::FuseMaxBinding.default_arch(),
        TransformerConfig::bert(),
        ModelParams::default(),
    )
    .policy(SchedulerPolicy::unbounded())
    .recorder(recorder)
    .build()
    .run(&trace);

    let golden_path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/serve_trace.json");
    let golden = std::fs::read_to_string(&golden_path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e}", golden_path.display()));
    assert_eq!(
        serve_trace_json(&sink.events()),
        golden,
        "explicit SchedulerPolicy::unbounded() drifted from the pre-policy golden trace"
    );
}

/// The ISSUE-7 scheduler policies the co-design acceptance searches over:
/// the whole-prompt baseline plus chunked / reordered / admission-gated
/// variants.
fn policy_axis() -> [SchedulerPolicy; 6] {
    [
        SchedulerPolicy::unbounded(),
        SchedulerPolicy::chunked(256),
        SchedulerPolicy::chunked(512),
        SchedulerPolicy::chunked(512).with_queue_order(QueueOrder::ShortestPromptFirst),
        SchedulerPolicy::unbounded().with_queue_order(QueueOrder::ShortestPromptFirst),
        SchedulerPolicy::chunked(512).with_waiting_served_ratio(1.5),
    ]
}

#[test]
fn codesigned_scheduler_beats_the_best_whole_prompt_fcfs_configuration() {
    // The ISSUE-7 tentpole acceptance. Under a 300 req/s mixed 512/4096
    // trace and a 45 ms p99 TTFT SLA, whole-prompt prefill on the
    // goodput-optimal dim-256 chip lets long prompts block short ones
    // just past the SLA, so a fixed-FCFS whole-prompt design must retreat
    // to the dim-512 chip (~4x the area) to stay feasible. A seeded
    // search that co-designs hardware AND scheduler keeps the small chip
    // and fixes the tail with a chunked prefill budget instead.
    let params = ModelParams::default();
    let trace = mixed_spec(300.0, 60).generate(7);
    let objective = ServeObjective::new(trace, Sla::p99_ttft(0.045));

    // Baseline: exhaustively sweep the whole-prompt/FCFS Fig 12 space,
    // so the co-designed winner is measured against the *true* best
    // fixed-scheduler configuration, not a search artifact.
    let fixed_space =
        DesignSpace::new().with_workloads([TransformerConfig::bert()]).with_seq_lens([1 << 18]);
    let fixed = Sweeper::new(params.clone()).sweep(&fixed_space);
    let (fixed_best, fixed_score) = objective.rank(&fixed.evaluations, &params).remove(0);
    assert!(fixed_score.meets_sla, "some whole-prompt design must be feasible");
    assert!(fixed_best.point.policy.is_unbounded());
    assert_eq!(fixed_best.point.array_dim, 512, "whole-prompt must retreat to the big chip");

    // Co-design: a seeded guided search over the policy-extended space.
    let space = fixed_space.clone().with_policies(policy_axis());
    let outcome = GeneticSearch::new(7).search(
        &Sweeper::new(params.clone()),
        &space,
        SearchBudget::evaluations(60),
    );
    let (best, score) = objective.rank(&outcome.evaluations, &params).remove(0);

    assert!(score.meets_sla, "the co-designed winner must be SLA-feasible");
    assert!(
        !best.point.policy.is_unbounded(),
        "the winner must use a chunked policy, got {}",
        best.point.policy
    );
    assert_eq!(best.point.array_dim, 256, "chunking must keep the small chip feasible");
    assert!(
        score.goodput_per_cm2 > 2.0 * fixed_score.goodput_per_cm2,
        "co-design ({:.2} gp/cm2) must beat the best whole-prompt/FCFS config ({:.2} gp/cm2)",
        score.goodput_per_cm2,
        fixed_score.goodput_per_cm2
    );

    // The mechanism, pinned: on the winner's chip the *same hardware*
    // with whole-prompt FCFS misses the SLA.
    let mut whole = best.point.clone();
    whole.policy = SchedulerPolicy::unbounded();
    let whole_score = objective.score_point(&whole, best.area_cm2, &params);
    assert!(
        !whole_score.meets_sla,
        "whole-prompt on dim 256 must miss the SLA (p99 {:.4})",
        whole_score.report.ttft.p99
    );
    assert!(whole_score.report.ttft.p99 > score.report.ttft.p99);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Conservation: every request completes exactly once, residency
    /// never exceeds the buffer-derived capacity (oversized singletons
    /// excepted by construction), and the report's totals add up.
    #[test]
    fn serve_sim_conserves_requests(
        seed in 0u64..1_000_000_000,
        rate in 5.0f64..2000.0,
        requests in 1usize..60,
        dim_choice in 0usize..3,
        kind_choice in 0usize..2,
        short in 64usize..1024,
        long in 1024usize..8192,
        out_a in 1usize..64,
        out_b in 1usize..64,
    ) {
        let spec = TrafficSpec {
            arrivals: Arrivals::Poisson { rate_per_s: rate },
            prompt_mix: LengthMix::new([(short, 2.0), (long, 1.0)]),
            output_mix: LengthMix::uniform([out_a, out_b]),
            requests,
        };
        let trace = spec.generate(seed);
        prop_assert_eq!(trace.len(), requests);

        let kind = [ConfigKind::Flat, ConfigKind::FuseMaxBinding][kind_choice];
        let dim = [64usize, 128, 256][dim_choice];
        let space = DesignSpace::new()
            .with_array_dims([dim])
            .with_kinds([kind])
            .with_workloads([TransformerConfig::bert()]);
        let point = space.points().remove(0);
        let sim = ServeSim::for_point(&point, &ModelParams::default());
        let report = sim.run(&trace);

        // Every request completes exactly once.
        prop_assert_eq!(report.completed, requests);
        prop_assert_eq!(report.ttft.samples, requests);
        prop_assert_eq!(report.e2e.samples, requests);
        prop_assert_eq!(report.output_tokens, trace.total_output_tokens());

        // Residency never exceeds the buffer-derived capacity; a single
        // oversized request is the only sanctioned excursion.
        let per_token = TransformerConfig::bert().kv_bytes_per_token(2)
            / TransformerConfig::bert().layers as u64;
        let largest = trace
            .requests
            .iter()
            .map(|r| (r.prompt_tokens + r.output_tokens) as u64 * per_token)
            .max()
            .unwrap_or(0);
        prop_assert!(
            report.peak_resident_bytes <= report.buffer_bytes.max(largest),
            "peak {} exceeds buffer {} (largest request {})",
            report.peak_resident_bytes,
            report.buffer_bytes,
            largest
        );

        // Time accounting is sane.
        prop_assert!(report.makespan_s >= trace.last_arrival_s() - 1e-12);
        prop_assert!(report.busy_s <= report.makespan_s + 1e-9);
        prop_assert!(report.utilization > 0.0 && report.utilization <= 1.0 + 1e-12);

        // Identical seed: bit-identical report.
        prop_assert_eq!(report, sim.run(&spec.generate(seed)));
    }

    /// Chunked-trace conservation (ISSUE 7): under arbitrary scheduler
    /// policies every request still completes exactly once, each
    /// request's prefill chunks sum to exactly its prompt, no iteration
    /// grants more prefill tokens than the chunk budget, and residency
    /// stays within the buffer-derived bound.
    #[test]
    fn chunked_serve_sim_conserves_requests_and_respects_the_budget(
        seed in 0u64..1_000_000_000,
        rate in 20.0f64..1500.0,
        requests in 1usize..40,
        dim_choice in 0usize..3,
        chunk in 128usize..2048,
        ratio in 0.0f64..2.0,
        spf in 0usize..2,
    ) {
        let spec = TrafficSpec {
            arrivals: Arrivals::Poisson { rate_per_s: rate },
            prompt_mix: LengthMix::new([(512, 3.0), (4096, 1.0)]),
            output_mix: LengthMix::uniform([8, 32]),
            requests,
        };
        let trace = spec.generate(seed);

        let order = if spf == 1 { QueueOrder::ShortestPromptFirst } else { QueueOrder::Fcfs };
        let policy = SchedulerPolicy::chunked(chunk)
            .with_waiting_served_ratio(ratio)
            .with_queue_order(order);
        let dim = [64usize, 128, 256][dim_choice];
        let space = DesignSpace::new()
            .with_array_dims([dim])
            .with_workloads([TransformerConfig::bert()]);
        let point = space.points().remove(0);
        let (recorder, sink) = VecSink::recorder();
        let sim = ServeSim::builder_for_point(&point, &ModelParams::default())
            .policy(policy)
            .recorder(recorder)
            .build();
        let report = sim.run(&trace);

        // Every request completes exactly once, all tokens accounted for.
        prop_assert_eq!(report.completed, requests);
        prop_assert_eq!(report.ttft.samples, requests);
        prop_assert_eq!(report.output_tokens, trace.total_output_tokens());

        // Residency never exceeds the buffer-derived capacity (one
        // oversized request is the only sanctioned excursion).
        let per_token = TransformerConfig::bert().kv_bytes_per_token(2)
            / TransformerConfig::bert().layers as u64;
        let largest = trace
            .requests
            .iter()
            .map(|r| (r.prompt_tokens + r.output_tokens) as u64 * per_token)
            .max()
            .unwrap_or(0);
        prop_assert!(report.peak_resident_bytes <= report.buffer_bytes.max(largest));

        // Walk the event stream: per-request chunk sums must equal the
        // prompt, and no iteration may grant more than the chunk budget.
        let mut prefilled = std::collections::HashMap::new();
        let mut iter_tokens = 0usize;
        let mut completions = 0usize;
        for event in sink.events() {
            match event {
                Event::Serve { kind: ServeEvent::PrefillChunk { req, tokens, remaining }, .. } => {
                    prop_assert!(tokens <= chunk, "chunk {} exceeds budget {}", tokens, chunk);
                    iter_tokens += tokens;
                    let total = prefilled.entry(req).or_insert(0usize);
                    *total += tokens;
                    let prompt = trace.requests[req as usize].prompt_tokens;
                    prop_assert_eq!(prompt - *total, remaining, "remaining counter drifted");
                }
                Event::Serve { kind: ServeEvent::DecodeIter { .. }, .. } => {
                    prop_assert!(
                        iter_tokens <= chunk,
                        "iteration granted {} prefill tokens over budget {}",
                        iter_tokens,
                        chunk
                    );
                    iter_tokens = 0;
                }
                Event::Serve { kind: ServeEvent::Complete { .. }, .. } => completions += 1,
                _ => {}
            }
        }
        prop_assert_eq!(completions, requests, "every request completes exactly once");
        for (req, total) in prefilled {
            prop_assert_eq!(
                total,
                trace.requests[req as usize].prompt_tokens,
                "request {}'s chunks must sum to its prompt",
                req
            );
        }

        // Identical seed and policy: bit-identical report.
        let replay = ServeSim::builder_for_point(&point, &ModelParams::default())
            .policy(
                SchedulerPolicy::chunked(chunk).with_waiting_served_ratio(ratio).with_queue_order(order),
            )
            .build()
            .run(&spec.generate(seed));
        prop_assert_eq!(report, replay);
    }
}
