//! Fault-injection gates (ISSUE 10):
//!
//! * conservation proptests — under any fault timeline, router policy,
//!   and topology (replicated or disaggregated), every request either
//!   completes or is shed **exactly once**, retry attempts stay within
//!   the budget, K/V residency stays within every survivor's buffer,
//!   retried attributions still fold bit-exactly, and faulted replays
//!   are bit-identical;
//! * the no-op contract — an empty [`FaultSpec`] reproduces the legacy
//!   fleet run byte for byte, topology by topology;
//! * the tentpole acceptance — the same seeded guided search that picks
//!   a lone big chip under the fault-free objective picks an N+1
//!   redundant fleet once a single-failure scenario enters the
//!   objective, at iso-area, with a test-asserted worst-case merit
//!   margin, bit-identically across replays and the parallel/serial
//!   switch;
//! * the fault golden — a seeded fail-stop-plus-recovery run renders a
//!   checked-in report (regenerate with
//!   `FUSEMAX_UPDATE_GOLDEN=1 cargo test --test fault`).

use fusemax::dse::search::{GeneticSearch, SearchBudget, SearchStrategy};
use fusemax::dse::{DesignSpace, FleetSpec, RouterPolicy, Sweeper};
use fusemax::model::{ConfigKind, ModelParams};
use fusemax::serve::{
    Arrivals, FaultSpec, Fleet, LengthMix, RetryPolicy, ScenarioRanking, ServeObjective, ServeSim,
    Sla, TrafficSpec,
};
use fusemax::telemetry::{Event, ServeEvent, VecSink};
use fusemax::workloads::TransformerConfig;
use proptest::prelude::*;
use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

/// The acceptance trace family: mostly short prompts, a long tail.
fn mixed_spec(rate: f64, requests: usize) -> TrafficSpec {
    TrafficSpec {
        arrivals: Arrivals::Poisson { rate_per_s: rate },
        prompt_mix: LengthMix::new([(512, 3.0), (4096, 1.0)]),
        output_mix: LengthMix::uniform([8, 32]),
        requests,
    }
}

fn binding_replica() -> ServeSim {
    let kind = ConfigKind::FuseMaxBinding;
    ServeSim::builder(kind, kind.default_arch(), TransformerConfig::bert(), ModelParams::default())
        .build()
}

const ROUTERS: [RouterPolicy; 3] =
    [RouterPolicy::RoundRobin, RouterPolicy::LeastLoaded, RouterPolicy::ShortestPrompt];

/// Replicated and disaggregated shapes the fault proptests sweep.
fn topologies() -> [FleetSpec; 4] {
    [
        FleetSpec::replicated(2),
        FleetSpec::replicated(3),
        FleetSpec::disaggregated(1, 2),
        FleetSpec::disaggregated(2, 2),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Conservation under failure: whatever the fault timeline, router,
    /// and topology, every request completes XOR is shed exactly once;
    /// retry attempts never exceed the budget; K/V residency stays
    /// within every chip's buffer; every attribution (retry bucket
    /// included) folds bit-exactly; and the faulted replay is
    /// bit-identical.
    #[test]
    fn faulted_fleets_conserve_and_bound_retries(
        seed in 0u64..1_000_000_000,
        rate in 300.0f64..2000.0,
        requests in 6usize..40,
        topology in 0usize..4,
        router_choice in 0usize..3,
        frac in 0.1f64..0.9,
        budget in 1usize..4,
        victim_pick in 0usize..8,
    ) {
        let trace = mixed_spec(rate, requests).generate(seed);
        let spec = topologies()[topology].with_router(ROUTERS[router_choice]);
        let victim = victim_pick % spec.chips();
        let faults = FaultSpec::none()
            .down(frac * trace.last_arrival_s(), victim)
            .with_retry(RetryPolicy { budget, ..RetryPolicy::default() })
            .with_shed_watermark(0.25);
        prop_assert!(faults.validate(trace.last_arrival_s()).is_ok());

        let fleet = Fleet::new(spec, binding_replica()).with_faults(faults.clone());
        let a = fleet.run_detailed(&trace);

        // Complete XOR shed, exactly once — ids partition the trace.
        let mut ids: Vec<usize> = a.attributions.iter().map(|t| t.req).collect();
        ids.extend(&a.shed_ids);
        ids.sort_unstable();
        prop_assert_eq!(ids, (0..requests).collect::<Vec<_>>());
        prop_assert_eq!(a.merged.completed + a.faults.shed, requests);
        prop_assert_eq!(a.faults.shed, a.shed_ids.len());

        // Residency stays within every chip's admission bound.
        for r in &a.replicas {
            prop_assert!(r.peak_resident_bytes <= r.buffer_bytes);
        }

        // Every attribution still folds bit-exactly, retry bucket and all.
        for t in &a.attributions {
            prop_assert!(t.validate().is_ok(), "attribution broke: {:?}", t);
        }

        // Faulted replays are bit-identical.
        let b = Fleet::new(spec, binding_replica()).with_faults(faults.clone()).run_detailed(&trace);
        prop_assert_eq!(&a, &b, "faulted replay drifted for {}", spec);

        // Retry attempts stay within the budget — checked on the
        // narrated events, per request — and instrumentation never
        // changes the report.
        let (recorder, sink) = VecSink::recorder();
        let traced = Fleet::new(spec, binding_replica())
            .with_recorder(recorder)
            .with_faults(faults)
            .run_detailed(&trace);
        prop_assert_eq!(&traced.merged, &a.merged);
        prop_assert_eq!(traced.faults, a.faults);
        let mut attempts: HashMap<u64, usize> = HashMap::new();
        for event in sink.events() {
            if let Event::Serve { kind: ServeEvent::Retry { req, attempt, delay_s }, .. } = event {
                prop_assert!(attempt <= budget, "attempt {} over budget {}", attempt, budget);
                prop_assert!(delay_s > 0.0);
                let seen = attempts.entry(req).or_insert(0);
                *seen += 1;
                prop_assert!(*seen <= budget, "request {} retried {} times", req, seen);
            }
        }
        prop_assert!(a.faults.retries <= requests * budget);
    }

    /// The no-op contract: an empty fault spec reproduces the legacy
    /// fleet run byte for byte — replicated and disaggregated alike.
    #[test]
    fn an_empty_fault_spec_is_byte_identical_to_legacy(
        seed in 0u64..1_000_000_000,
        requests in 1usize..32,
        topology in 0usize..4,
        router_choice in 0usize..3,
    ) {
        let trace = mixed_spec(400.0, requests).generate(seed);
        let spec = topologies()[topology].with_router(ROUTERS[router_choice]);
        let legacy = Fleet::new(spec, binding_replica()).run_detailed(&trace);
        let faulted = Fleet::new(spec, binding_replica())
            .with_faults(FaultSpec::none())
            .run_detailed(&trace);
        prop_assert_eq!(legacy, faulted, "empty FaultSpec changed the run for {}", spec);
    }

    /// Degraded modes (clock throttle, DRAM brownout) slow the fleet
    /// down without losing anything: every request still completes, and
    /// the degraded makespan is never shorter than the healthy one.
    #[test]
    fn degradation_slows_but_conserves(
        seed in 0u64..1_000_000_000,
        requests in 4usize..24,
        slowdown in 1.5f64..6.0,
    ) {
        let trace = mixed_spec(600.0, requests).generate(seed);
        let spec = FleetSpec::replicated(2);
        let healthy = Fleet::new(spec, binding_replica()).run_detailed(&trace);
        let faults = FaultSpec::none()
            .throttle(0.0, 0, slowdown)
            .brownout(0.0, 1, slowdown);
        let degraded = Fleet::new(spec, binding_replica())
            .with_faults(faults)
            .run_detailed(&trace);
        prop_assert_eq!(degraded.merged.completed, requests);
        prop_assert_eq!(degraded.faults.shed, 0);
        prop_assert!(
            degraded.merged.makespan_s >= healthy.merged.makespan_s,
            "degrading the fleet shortened the run: {} < {}",
            degraded.merged.makespan_s, healthy.merged.makespan_s
        );
    }
}

/// The ISSUE 10 acceptance criterion: the fault-free serving objective
/// crowns one big chip; adding a single-failure scenario to the same
/// seeded in-loop search makes it pick the N+1 redundant fleet at
/// iso-area, with a worst-case merit margin the test asserts — and the
/// whole trajectory is bit-identical across replays and the
/// parallel/serial switch.
#[test]
fn availability_aware_search_prefers_redundancy_at_iso_area() {
    let params = ModelParams::default();
    let trace = mixed_spec(300.0, 60).generate(7);
    let sla = Sla::p99_ttft(0.02);

    // One 512 chip (~8.7 cm2) vs four 256 chips (~9.4 cm2): the two
    // ways to spend the area budget. The lone 256 chip misses the SLA
    // at this load, so the fault-free contest is big-chip vs fleet.
    let space = DesignSpace::new()
        .with_workloads([TransformerConfig::bert()])
        .with_seq_lens([1 << 18])
        .with_array_dims([256, 512])
        .with_fleets([FleetSpec::single(), FleetSpec::replicated(4)]);

    // The failure scenario: replica 0 fail-stops mid-trace and never
    // recovers. Fast retry so surviving chips can still absorb the
    // displaced work inside the SLA.
    let kill = FaultSpec::single_failure(0.5 * trace.last_arrival_s(), 0)
        .with_retry(RetryPolicy { base_backoff_s: 0.002, multiplier: 2.0, budget: 3 })
        .with_shed_watermark(0.1);
    let scenarios = vec![FaultSpec::none(), kill];

    let run = |parallel: bool, scenarios: Vec<FaultSpec>| {
        let mut objective = ServeObjective::new(trace.clone(), sla).with_params(params.clone());
        if !scenarios.is_empty() {
            objective = objective.with_fault_scenarios(scenarios, ScenarioRanking::WorstCase);
        }
        let sweeper = Sweeper::new(params.clone())
            .with_parallelism(parallel)
            .with_objective(Arc::new(objective));
        GeneticSearch::new(11).search(&sweeper, &space, SearchBudget::evaluations(16))
    };

    // Fault-free: the single big chip wins on silicon efficiency.
    let clean = run(true, Vec::new());
    let (clean_winner, clean_merit) = clean.objective_best.expect("objective tracked in the loop");
    assert!(clean_merit.feasible, "the fault-free winner must meet the SLA");
    assert!(
        clean_winner.point.fleet.is_single(),
        "fault-free, one big chip must win, got {}",
        clean_winner.point.fleet
    );

    // Availability-aware: the same search now prefers N+1 redundancy.
    let aware = run(true, scenarios.clone());
    let (aware_winner, aware_merit) = aware.objective_best.expect("objective tracked in the loop");
    assert!(
        aware_merit.feasible,
        "the availability-aware winner must meet the SLA in every scenario"
    );
    assert!(
        !aware_winner.point.fleet.is_single(),
        "under a single-failure scenario the winner must be a redundant fleet, got {}",
        aware_winner.point.fleet
    );

    // Iso-area: redundancy may not cost more than the grid granularity
    // allows (4x256 vs 1x512 is within 8%).
    assert!(
        aware_winner.area_cm2 <= clean_winner.area_cm2 * 1.10,
        "iso-area violated: {:.2} cm2 vs {:.2} cm2",
        aware_winner.area_cm2,
        clean_winner.area_cm2
    );

    // The margin: under the failure scenarios, the redundant winner's
    // worst-case merit beats the fault-free winner's by at least 20%.
    let judge = ServeObjective::new(trace.clone(), sla)
        .with_params(params.clone())
        .with_fault_scenarios(scenarios.clone(), ScenarioRanking::WorstCase);
    let aware_worst = judge.score_point(&aware_winner.point, aware_winner.area_cm2, &params);
    let clean_worst = judge.score_point(&clean_winner.point, clean_winner.area_cm2, &params);
    assert!(
        aware_worst.goodput_per_cm2 >= 1.2 * clean_worst.goodput_per_cm2,
        "worst-case margin too thin: redundant {:.3} vs single {:.3} r/s/cm2",
        aware_worst.goodput_per_cm2,
        clean_worst.goodput_per_cm2
    );

    // Bit-identical replays, and parallel ≡ serial trajectories.
    for (label, replay) in
        [("replay", run(true, scenarios.clone())), ("serial", run(false, scenarios))]
    {
        let (w, m) = replay.objective_best.expect("objective tracked");
        assert_eq!(aware_winner.point, w.point, "{label} found a different winner");
        assert_eq!(aware_merit, m, "{label} merit drifted");
    }
}

/// Renders the canonical seeded fault runs as a deterministic report.
fn fault_acceptance_report() -> String {
    let trace = mixed_spec(800.0, 48).generate(7);
    let horizon = trace.last_arrival_s();
    let mut out = String::new();
    let runs: [(FleetSpec, FaultSpec); 2] = [
        (
            // Fail-stop plus recovery on a replicated trio.
            FleetSpec::replicated(3).with_router(RouterPolicy::LeastLoaded),
            FaultSpec::none().down(0.3 * horizon, 1).up(0.7 * horizon, 1),
        ),
        (
            // A decode-chip death on a disaggregated quad, with shedding.
            FleetSpec::disaggregated(2, 2),
            FaultSpec::none()
                .down(0.4 * horizon, 3)
                .with_retry(RetryPolicy { base_backoff_s: 0.01, multiplier: 2.0, budget: 2 })
                .with_shed_watermark(0.5),
        ),
    ];
    for (spec, faults) in runs {
        let detailed =
            Fleet::new(spec, binding_replica()).with_faults(faults.clone()).run_detailed(&trace);
        out.push_str(&format!(
            "== fleet {spec} | faults {} ==\n{}",
            faults.render_events(),
            detailed.merged
        ));
        out.push_str(&format!("faults: {}\n", detailed.faults));
        if !detailed.shed_ids.is_empty() {
            out.push_str(&format!("shed ids: {:?}\n", detailed.shed_ids));
        }
        for (k, r) in detailed.replicas.iter().enumerate() {
            out.push_str(&format!(
                "chip {k}: completed={} iters={} busy={:.6}s p99_ttft={:.6}s\n",
                r.completed, r.iterations, r.busy_s, r.ttft.p99
            ));
        }
    }
    out
}

/// The fault golden gate: the seeded fault-injected report must match
/// the checked-in artifact byte for byte.
#[test]
fn seeded_fault_report_matches_the_checked_in_golden() {
    const GOLDEN_PATH: &str = "tests/golden/fault_report.txt";
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join(GOLDEN_PATH);
    let current = fault_acceptance_report();

    if std::env::var_os("FUSEMAX_UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &current).expect("write golden");
        eprintln!("golden updated at {}", path.display());
        return;
    }

    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()));
    assert_eq!(
        current, golden,
        "fault report drifted from {GOLDEN_PATH}.\n\
         If the change is intentional, regenerate with\n\
         FUSEMAX_UPDATE_GOLDEN=1 cargo test --test fault"
    );
}
