//! Fleet-serving gates (ISSUE 8):
//!
//! * conservation proptests — every request is routed exactly once
//!   under every router policy, merged fleet quantiles equal the
//!   quantiles of the concatenated per-request samples, and
//!   seed-identical fleet replays are bit-identical (disaggregation
//!   included);
//! * the tentpole acceptance — a seeded guided search with the serving
//!   objective **in the loop** over the fleet-extended Fig 12 space
//!   finds, at fixed total silicon, a multi-chip configuration whose
//!   SLA-feasible goodput strictly beats the best single-chip
//!   whole-area design on a mixed 512/4096 trace, bit-identically
//!   across replays and across the parallel/serial switch;
//! * the fleet golden — a seeded replicated + disaggregated run renders
//!   a checked-in report (regenerate with
//!   `FUSEMAX_UPDATE_GOLDEN=1 cargo test --test fleet`).

use fusemax::dse::search::{GeneticSearch, SearchBudget, SearchStrategy};
use fusemax::dse::{DesignSpace, FleetSpec, RouterPolicy, Sweeper};
use fusemax::model::{ConfigKind, ModelParams};
use fusemax::serve::{
    Arrivals, Fleet, LatencyStats, LengthMix, ServeObjective, ServeSim, Sla, Trace, TrafficSpec,
};
use fusemax::workloads::TransformerConfig;
use proptest::prelude::*;
use std::path::Path;
use std::sync::Arc;

/// The acceptance trace family: mostly short prompts, a long tail.
fn mixed_spec(rate: f64, requests: usize) -> TrafficSpec {
    TrafficSpec {
        arrivals: Arrivals::Poisson { rate_per_s: rate },
        prompt_mix: LengthMix::new([(512, 3.0), (4096, 1.0)]),
        output_mix: LengthMix::uniform([8, 32]),
        requests,
    }
}

fn binding_replica() -> ServeSim {
    let kind = ConfigKind::FuseMaxBinding;
    ServeSim::builder(kind, kind.default_arch(), TransformerConfig::bert(), ModelParams::default())
        .build()
}

const ROUTERS: [RouterPolicy; 3] =
    [RouterPolicy::RoundRobin, RouterPolicy::LeastLoaded, RouterPolicy::ShortestPrompt];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Conservation: whatever the trace, replica count, and router,
    /// every request lands on exactly one in-range replica, and routing
    /// is a pure function of (trace, fleet).
    #[test]
    fn every_request_is_routed_exactly_once(
        seed in 0u64..1_000_000_000,
        rate in 50.0f64..1200.0,
        requests in 1usize..48,
        replicas in 1usize..6,
        router_choice in 0usize..3,
    ) {
        let trace = mixed_spec(rate, requests).generate(seed);
        let spec = FleetSpec::replicated(replicas).with_router(ROUTERS[router_choice]);
        let fleet = Fleet::new(spec, binding_replica());
        let routes = fleet.route(&trace);
        prop_assert_eq!(routes.len(), trace.len(), "one route per request");
        prop_assert!(routes.iter().all(|&k| k < replicas), "route out of range");
        prop_assert_eq!(routes.clone(), fleet.route(&trace), "routing must replay identically");
        // The run itself conserves requests: completions across the
        // fleet equal the trace, with every latency sample present.
        let detailed = fleet.run_detailed(&trace);
        prop_assert_eq!(detailed.merged.completed, requests);
        prop_assert_eq!(detailed.replicas.iter().map(|r| r.completed).sum::<usize>(), requests);
        prop_assert_eq!(detailed.merged.ttft.samples, requests);
        prop_assert_eq!(detailed.merged.e2e.samples, requests);
    }

    /// Merged fleet quantiles are **exact**: identical to quantiles of
    /// the concatenation of each replica's raw per-request samples
    /// (never an average of per-replica summaries).
    #[test]
    fn merged_quantiles_equal_concatenated_sample_quantiles(
        seed in 0u64..1_000_000_000,
        requests in 2usize..40,
        replicas in 2usize..5,
        router_choice in 0usize..3,
    ) {
        let trace = mixed_spec(400.0, requests).generate(seed);
        let spec = FleetSpec::replicated(replicas).with_router(ROUTERS[router_choice]);
        let fleet = Fleet::new(spec, binding_replica());
        let detailed = fleet.run_detailed(&trace);

        let routes = fleet.route(&trace);
        let costs = binding_replica().service_times(&trace);
        let (mut ttft, mut tpot, mut e2e) = (Vec::new(), Vec::new(), Vec::new());
        for k in 0..replicas {
            let sub = Trace {
                requests: trace
                    .requests
                    .iter()
                    .zip(&routes)
                    .filter(|(_, &r)| r == k)
                    .map(|(q, _)| *q)
                    .collect(),
            };
            let (_, samples) = binding_replica().run_sampled_with(&costs, &sub);
            ttft.extend(samples.ttft);
            tpot.extend(samples.tpot);
            e2e.extend(samples.e2e);
        }
        prop_assert_eq!(LatencyStats::of(&mut ttft), detailed.merged.ttft);
        prop_assert_eq!(LatencyStats::of(&mut tpot), detailed.merged.tpot);
        prop_assert_eq!(LatencyStats::of(&mut e2e), detailed.merged.e2e);
    }

    /// Seed-identical fleet replays are bit-identical, for replicated
    /// and disaggregated topologies alike — and a 1-chip fleet IS the
    /// plain simulator, bit for bit.
    #[test]
    fn fleet_replays_are_bit_identical(
        seed in 0u64..1_000_000_000,
        requests in 1usize..32,
        topology in 0usize..4,
    ) {
        let trace = mixed_spec(300.0, requests).generate(seed);
        let spec = [
            FleetSpec::single(),
            FleetSpec::replicated(3),
            FleetSpec::disaggregated(1, 2),
            FleetSpec::disaggregated(2, 2).with_router(RouterPolicy::LeastLoaded),
        ][topology];
        let fleet = Fleet::new(spec, binding_replica());
        let a = fleet.run_detailed(&trace);
        let b = Fleet::new(spec, binding_replica()).run_detailed(&trace);
        prop_assert_eq!(&a, &b, "fleet replay drifted for {}", spec);
        if spec.is_single() {
            prop_assert_eq!(a.merged, binding_replica().run(&trace));
        }
    }
}

/// The ISSUE 8 acceptance criterion: with the serving objective inside
/// the search loop, a seeded guided search over the fleet-extended
/// Fig 12 space finds — at fixed total silicon — a multi-chip
/// configuration whose SLA-feasible goodput strictly beats the best
/// single-chip whole-area design, and the whole trajectory is
/// bit-identical across replays and the parallel/serial switch.
#[test]
fn in_loop_fleet_search_beats_the_best_single_chip_at_iso_area() {
    let params = ModelParams::default();
    let trace = mixed_spec(500.0, 80).generate(7);
    // Tight enough that no single small chip survives: the feasible set
    // is the big chip and the fleets, so the merit comparison really is
    // "one big chip vs N small ones".
    let sla = Sla::p99_ttft(0.05);

    // The fleet axis enumerates ways to spend the whole ~9 cm2 area
    // budget: one 512 chip, four 256 chips (either router), or a
    // 1-prefill + 3-decode disaggregated quad.
    let fleet_axis = [
        FleetSpec::single(),
        FleetSpec::replicated(4),
        FleetSpec::replicated(4).with_router(RouterPolicy::LeastLoaded),
        FleetSpec::disaggregated(1, 3),
    ];
    let space = DesignSpace::new()
        .with_workloads([TransformerConfig::bert()])
        .with_seq_lens([1 << 18])
        .with_array_dims([128, 256, 512])
        .with_fleets(fleet_axis);

    let run = |parallel: bool| {
        let objective =
            Arc::new(ServeObjective::new(trace.clone(), sla).with_params(params.clone()));
        let sweeper =
            Sweeper::new(params.clone()).with_parallelism(parallel).with_objective(objective);
        GeneticSearch::new(11).search(&sweeper, &space, SearchBudget::evaluations(45))
    };

    let outcome = run(true);
    let (winner, merit) =
        outcome.objective_best.clone().expect("the objective is tracked in the loop");
    assert!(merit.feasible, "the in-loop winner must meet the SLA");
    assert!(
        !winner.point.fleet.is_single(),
        "under heavy mixed traffic the winner must be a fleet, got {}",
        winner.point.fleet
    );

    // Bit-identical replay, and parallel ≡ serial trajectories.
    for (label, replay) in [("replay", run(true)), ("serial", run(false))] {
        let (w, m) = replay.objective_best.expect("objective tracked");
        assert_eq!(winner.point, w.point, "{label} found a different winner");
        assert_eq!(merit, m, "{label} merit drifted");
    }

    // The iso-area shoot-out: the best single chip may spend the whole
    // area budget; the fleet winner must not exceed it by more than the
    // design-space granularity allows (4x256 vs 1x512 is within 8%) —
    // and must still complete strictly more requests per second.
    let single_space = DesignSpace::new()
        .with_workloads([TransformerConfig::bert()])
        .with_seq_lens([1 << 18])
        .with_array_dims([128, 256, 512]);
    let sweep = Sweeper::new(params.clone()).sweep(&single_space);
    let objective = ServeObjective::new(trace.clone(), sla).with_params(params.clone());
    let (single_best, single_score) = objective.rank(&sweep.evaluations, &params).remove(0);
    assert!(single_best.point.fleet.is_single());

    let winner_score = objective.score_point(&winner.point, winner.area_cm2, &params);
    assert!(
        winner.area_cm2 <= single_best.area_cm2 * 1.10,
        "iso-area violated: fleet spends {:.2} cm2 vs the single chip's {:.2} cm2",
        winner.area_cm2,
        single_best.area_cm2
    );
    assert!(
        winner_score.report.goodput_rps > single_score.report.goodput_rps,
        "fleet goodput {:.1} r/s must strictly beat the single chip's {:.1} r/s",
        winner_score.report.goodput_rps,
        single_score.report.goodput_rps
    );
    assert!(
        winner_score.goodput_per_cm2 > single_score.goodput_per_cm2,
        "per-silicon merit must favor the fleet at iso-area"
    );
}

/// Renders the canonical seeded fleet runs as a deterministic report.
fn fleet_acceptance_report() -> String {
    let trace = mixed_spec(300.0, 40).generate(7);
    let mut out = String::new();
    for spec in [
        FleetSpec::replicated(3).with_router(RouterPolicy::LeastLoaded),
        FleetSpec::disaggregated(1, 2),
    ] {
        let detailed = Fleet::new(spec, binding_replica()).run_detailed(&trace);
        out.push_str(&format!("== fleet {spec} ==\n{}", detailed.merged));
        if detailed.kv_transfer_bytes > 0 {
            out.push_str(&format!(
                "kv transfer: {} bytes, {:.6}s\n",
                detailed.kv_transfer_bytes, detailed.kv_transfer_s
            ));
        }
        for (k, r) in detailed.replicas.iter().enumerate() {
            out.push_str(&format!(
                "chip {k}: completed={} iters={} busy={:.6}s p99_ttft={:.6}s\n",
                r.completed, r.iterations, r.busy_s, r.ttft.p99
            ));
        }
    }
    out
}

/// The fleet golden gate: the seeded replicated + disaggregated report
/// must match the checked-in artifact byte for byte.
#[test]
fn seeded_fleet_report_matches_the_checked_in_golden() {
    const GOLDEN_PATH: &str = "tests/golden/fleet_report.txt";
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join(GOLDEN_PATH);
    let current = fleet_acceptance_report();

    if std::env::var_os("FUSEMAX_UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &current).expect("write golden");
        eprintln!("golden updated at {}", path.display());
        return;
    }

    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()));
    assert_eq!(
        current, golden,
        "fleet report drifted from {GOLDEN_PATH}.\n\
         If the change is intentional, regenerate with\n\
         FUSEMAX_UPDATE_GOLDEN=1 cargo test --test fleet"
    );
}
