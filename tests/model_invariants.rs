//! Property-style invariants of the analytical model across every
//! configuration, workload, and sequence length.

use fusemax::model::{attention_report, e2e_report, ConfigKind, ModelParams};
use fusemax::workloads::{TransformerConfig, SEQ_LENGTHS};
use proptest::prelude::*;

#[test]
fn utilizations_and_busy_cycles_are_well_formed_everywhere() {
    let params = ModelParams::default();
    for cfg in TransformerConfig::all() {
        for &l in &SEQ_LENGTHS {
            for kind in ConfigKind::all() {
                let r = attention_report(kind, &cfg, l, None, &params);
                let ctx = format!("{} {} @ {l}", cfg.name, kind.label());
                assert!(r.cycles > 0.0, "{ctx}: cycles");
                assert!(r.busy_2d <= r.cycles * (1.0 + 1e-9), "{ctx}: 2D busy > total");
                assert!(r.busy_1d <= r.cycles * (1.0 + 1e-9), "{ctx}: 1D busy > total");
                assert!((0.0..=1.0 + 1e-9).contains(&r.util_2d()), "{ctx}: util2d");
                assert!((0.0..=1.0 + 1e-9).contains(&r.util_1d()), "{ctx}: util1d");
                assert!(r.dram_bytes > 0.0 && r.gbuf_bytes >= r.dram_bytes, "{ctx}: traffic");
                assert!(r.energy.total_pj() > 0.0, "{ctx}: energy");
            }
        }
    }
}

#[test]
fn cycles_are_monotone_in_sequence_length() {
    let params = ModelParams::default();
    for cfg in TransformerConfig::all() {
        for kind in ConfigKind::all() {
            let mut last = 0.0;
            for &l in &SEQ_LENGTHS {
                let c = attention_report(kind, &cfg, l, None, &params).cycles;
                assert!(c > last, "{} {}: not monotone at {l}", cfg.name, kind.label());
                last = c;
            }
        }
    }
}

#[test]
fn fusemax_wins_everywhere_it_should() {
    // +Binding is the fastest configuration at every point; the unfused
    // baseline is never faster than +Binding.
    let params = ModelParams::default();
    for cfg in TransformerConfig::all() {
        for &l in &SEQ_LENGTHS {
            let best = attention_report(ConfigKind::FuseMaxBinding, &cfg, l, None, &params);
            for kind in [
                ConfigKind::Unfused,
                ConfigKind::Flat,
                ConfigKind::FuseMaxCascade,
                ConfigKind::FuseMaxArch,
            ] {
                let other = attention_report(kind, &cfg, l, None, &params);
                assert!(
                    best.cycles <= other.cycles,
                    "{} @ {l}: +Binding ({:.3e}) slower than {} ({:.3e})",
                    cfg.name,
                    best.cycles,
                    kind.label(),
                    other.cycles
                );
            }
        }
    }
}

#[test]
fn fusemax_is_never_memory_bound() {
    // §V: "our dataflow is never forced to spill any of its intermediates"
    // and the workload is never memory-bandwidth limited.
    let params = ModelParams::default();
    let arch = fusemax::arch::ArchConfig::fusemax_cloud();
    for cfg in TransformerConfig::all() {
        for &l in &SEQ_LENGTHS {
            let r = attention_report(ConfigKind::FuseMaxBinding, &cfg, l, None, &params);
            let mem_cycles = r.dram_bytes / arch.dram_bytes_per_cycle();
            assert!(
                mem_cycles < 0.5 * r.cycles,
                "{} @ {l}: memory {} vs cycles {}",
                cfg.name,
                mem_cycles,
                r.cycles
            );
        }
    }
}

#[test]
fn fusemax_traffic_scales_linearly_while_flat_scales_superlinearly() {
    let params = ModelParams::default();
    let bert = TransformerConfig::bert();
    let fm_64k = attention_report(ConfigKind::FuseMaxBinding, &bert, 1 << 16, None, &params);
    let fm_1m = attention_report(ConfigKind::FuseMaxBinding, &bert, 1 << 20, None, &params);
    // 16× the tokens → exactly 16× the input traffic.
    let ratio = fm_1m.dram_bytes / fm_64k.dram_bytes;
    assert!((ratio - 16.0).abs() < 0.1, "FuseMax traffic ratio = {ratio}");

    let flat_64k = attention_report(ConfigKind::Flat, &bert, 1 << 16, None, &params);
    let flat_1m = attention_report(ConfigKind::Flat, &bert, 1 << 20, None, &params);
    assert!(flat_1m.dram_bytes / flat_64k.dram_bytes > 100.0, "FLAT must blow up");
}

#[test]
fn e2e_is_attention_plus_linear_exactly() {
    let params = ModelParams::default();
    for cfg in TransformerConfig::all() {
        let r = e2e_report(ConfigKind::FuseMaxBinding, &cfg, 1 << 14, &params);
        let expect = (r.attention.cycles + r.linear.cycles) * cfg.layers as f64;
        assert!((r.cycles - expect).abs() < 1e-6 * expect);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The model accepts any power-of-two length and stays well-formed.
    #[test]
    fn model_handles_arbitrary_lengths(exp in 10u32..21, model_idx in 0usize..4) {
        let params = ModelParams::default();
        let cfg = TransformerConfig::all()[model_idx].clone();
        let l = 1usize << exp;
        for kind in ConfigKind::all() {
            let r = attention_report(kind, &cfg, l, None, &params);
            prop_assert!(r.cycles.is_finite() && r.cycles > 0.0);
            prop_assert!(r.util_2d() <= 1.0 + 1e-9);
            prop_assert!(r.energy.total_pj().is_finite());
        }
    }

    /// Speedup of +Binding over FLAT never falls below 2× and never
    /// explodes past 100× for the evaluated family of workloads.
    #[test]
    fn speedup_band_is_sane(exp in 10u32..21, model_idx in 0usize..4) {
        let params = ModelParams::default();
        let cfg = TransformerConfig::all()[model_idx].clone();
        let l = 1usize << exp;
        let flat = attention_report(ConfigKind::Flat, &cfg, l, None, &params);
        let fm = attention_report(ConfigKind::FuseMaxBinding, &cfg, l, None, &params);
        let s = flat.cycles / fm.cycles;
        prop_assert!((2.0..100.0).contains(&s), "speedup {s} at L={l} on {}", cfg.name);
    }
}
