//! Telemetry gates: instrumentation must be *free* (bit-identical
//! results with and without a recorder), *deterministic* (byte-identical
//! event streams across replays and across the parallel/serial switch),
//! and *exportable* (the seeded serve trace round-trips the checked-in
//! golden Chrome-trace JSON byte for byte).
//!
//! To bless an intentional engine change, regenerate the golden with
//! `FUSEMAX_UPDATE_GOLDEN=1 cargo test --test telemetry` and commit the
//! diff.

use fusemax::dse::search::{SearchBudget, SearchStrategy, SimulatedAnnealing};
use fusemax::dse::{DesignSpace, FrontierGroup, Sweeper};
use fusemax::model::{ConfigKind, ModelParams};
use fusemax::serve::{Arrivals, LengthMix, ServeSim, TrafficSpec};
use fusemax::telemetry::{
    event_json, serve_trace_json, validate_chrome_trace, Event, Metrics, VecSink,
};
use fusemax::workloads::TransformerConfig;
use proptest::prelude::*;
use std::path::Path;

const GOLDEN_PATH: &str = "tests/golden/serve_trace.json";

/// The canonical seeded serving run: a small bursty BERT trace on the
/// +Binding design, instrumented end to end.
fn seeded_serve_events() -> Vec<Event> {
    let trace = TrafficSpec {
        arrivals: Arrivals::Poisson { rate_per_s: 400.0 },
        prompt_mix: LengthMix::new([(256, 3.0), (1024, 1.0)]),
        output_mix: LengthMix::uniform([2, 6]),
        requests: 12,
    }
    .generate(7);
    let (recorder, sink) = VecSink::recorder();
    ServeSim::builder(
        ConfigKind::FuseMaxBinding,
        ConfigKind::FuseMaxBinding.default_arch(),
        TransformerConfig::bert(),
        ModelParams::default(),
    )
    .recorder(recorder)
    .build()
    .run(&trace);
    sink.events()
}

#[test]
fn seeded_serve_trace_matches_the_checked_in_golden() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let path = root.join(GOLDEN_PATH);
    let current = serve_trace_json(&seeded_serve_events());

    if std::env::var_os("FUSEMAX_UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &current).expect("write golden");
        eprintln!("golden updated at {}", path.display());
        return;
    }

    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()));
    assert_eq!(
        current, golden,
        "serve trace drifted from {GOLDEN_PATH}.\n\
         If the engine change is intentional, regenerate with\n\
         FUSEMAX_UPDATE_GOLDEN=1 cargo test --test telemetry"
    );
}

#[test]
fn golden_serve_trace_passes_the_validity_gate() {
    let events = seeded_serve_events();
    let n = validate_chrome_trace(&serve_trace_json(&events)).expect("exported trace is valid");
    assert!(n > 0, "trace must carry timestamped events");
    // And the export is a pure function of the event stream.
    assert_eq!(serve_trace_json(&events), serve_trace_json(&seeded_serve_events()));
}

#[test]
fn serve_metrics_agree_with_the_event_stream() {
    let events = seeded_serve_events();
    let metrics = Metrics::from_events(&events);
    assert_eq!(metrics.counter("serve.arrivals"), 12);
    assert_eq!(metrics.counter("serve.admissions"), 12);
    assert_eq!(metrics.counter("serve.completions"), 12);
    assert!(metrics.counter("serve.iterations") >= 12 / 2);
    assert!(metrics.gauge("serve.batch_mean").expect("derived gauge present") >= 1.0);
}

/// Collapses frontiers to comparable bits: instrumentation must not move
/// a single ULP anywhere.
fn fingerprint(frontiers: &[FrontierGroup]) -> Vec<(String, usize, String, u64, u64, u64)> {
    frontiers
        .iter()
        .flat_map(|g| {
            g.frontier.sorted_by(0).into_iter().map(|e| {
                (
                    g.model.clone(),
                    g.seq_len,
                    e.point.arch.name.clone(),
                    e.area_cm2.to_bits(),
                    e.latency_s.to_bits(),
                    e.energy_j.to_bits(),
                )
            })
        })
        .collect()
}

fn small_space() -> DesignSpace {
    DesignSpace::new().with_kinds(ConfigKind::all()).with_workloads([TransformerConfig::bert()])
}

#[test]
fn instrumented_guided_search_is_bit_identical_to_uninstrumented() {
    let space = small_space();
    let budget = SearchBudget::fraction(&space, 0.5);
    let strategy = SimulatedAnnealing::new(7).with_screening(true);

    let plain = strategy.search(&Sweeper::new(ModelParams::default()), &space, budget);
    let (recorder, sink) = VecSink::recorder();
    let traced = strategy.search(
        &Sweeper::new(ModelParams::default()).with_recorder(recorder),
        &space,
        budget,
    );

    assert_eq!(fingerprint(&plain.frontiers), fingerprint(&traced.frontiers));
    assert_eq!(plain.stats.requested, traced.stats.requested);
    assert_eq!(plain.stats.evaluated, traced.stats.evaluated);
    assert!(plain.events.is_empty(), "no recorder, no buffered events");
    assert!(!traced.events.is_empty(), "instrumented search must emit events");
    assert_eq!(sink.len(), traced.events.len(), "root session publishes its whole stream");
}

fn render(events: &[Event]) -> String {
    events.iter().map(event_json).collect::<Vec<_>>().join("\n")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The headline determinism contract: for any seed, the parallel
    /// annealing run (strided chains, rayon-evaluated flushes) emits the
    /// byte-identical event stream of its serial reference.
    #[test]
    fn parallel_and_serial_event_streams_are_identical(seed in 0u64..1024) {
        let space = small_space();
        let budget = SearchBudget::fraction(&space, 0.4);
        let strategy = SimulatedAnnealing::new(seed).with_screening(true);

        let run = |parallel: bool| {
            let (recorder, _sink) = VecSink::recorder();
            let sweeper = Sweeper::new(ModelParams::default())
                .with_parallelism(parallel)
                .with_recorder(recorder);
            strategy.search(&sweeper, &space, budget)
        };
        let par = run(true);
        let ser = run(false);

        prop_assert!(!par.events.is_empty());
        prop_assert_eq!(render(&par.events), render(&ser.events));
        prop_assert_eq!(fingerprint(&par.frontiers), fingerprint(&ser.frontiers));
    }

    /// Serve event streams are a pure function of the trace seed.
    #[test]
    fn serve_event_streams_replay_byte_identically(seed in 0u64..1024) {
        let trace = TrafficSpec {
            arrivals: Arrivals::Poisson { rate_per_s: 300.0 },
            prompt_mix: LengthMix::fixed(256),
            output_mix: LengthMix::uniform([2, 4]),
            requests: 8,
        }
        .generate(seed);
        let run = || {
            let (recorder, sink) = VecSink::recorder();
            ServeSim::builder(
                ConfigKind::FuseMaxBinding,
                ConfigKind::FuseMaxBinding.default_arch(),
                TransformerConfig::bert(),
                ModelParams::default(),
            )
            .recorder(recorder)
            .build()
            .run(&trace);
            sink.events()
        };
        prop_assert_eq!(render(&run()), render(&run()));
    }
}
