//! Cross-crate integration: the §III analysis pipeline — cascade spec →
//! pass count → live footprint → taxonomy — is internally consistent, and
//! its conclusions drive the modeled behavior in `fusemax-model`.

use fusemax::core::cascades::attention;
use fusemax::core::footprint::{live_footprints, Footprint};
use fusemax::core::passes::analyze_passes;
use fusemax::core::taxonomy::{classify, literature};
use fusemax::model::{attention_report, ConfigKind, ModelParams};
use fusemax::workloads::TransformerConfig;

#[test]
fn footprint_severity_tracks_pass_count() {
    // More passes ⇒ at least as severe footprints: 1-pass has no
    // full-fiber tensors, multi-pass cascades do.
    let one = live_footprints(&attention::one_pass(), "M").unwrap();
    let two = live_footprints(&attention::two_pass(), "M").unwrap();
    let three = live_footprints(&attention::three_pass(), "M").unwrap();
    assert!(!one.any_full_fiber());
    assert!(two.any_full_fiber());
    assert!(three.any_full_fiber());

    let full_fibers = |r: &fusemax::core::footprint::FootprintReport| {
        r.per_tensor.values().filter(|f| **f == Footprint::FullFiber).count()
    };
    assert!(full_fibers(&three) >= full_fibers(&two));
}

#[test]
fn taxonomy_is_consistent_with_raw_pass_analysis() {
    for entry in literature() {
        let direct = analyze_passes(&entry.cascade, "M").unwrap().num_passes;
        let class = classify(&entry.cascade).unwrap();
        assert_eq!(direct, class.passes(), "{}", entry.name);
    }
}

#[test]
fn pass_bound_explains_flat_memory_behavior() {
    // The 3-pass cascade's O(M) footprint (QK/SN fibers) is what forces
    // FLAT to either buffer rows or spill; the 1-pass cascade's O(M0)
    // footprint is why +Cascade's DRAM traffic is inputs-only. Check the
    // model honors the analysis conclusions.
    let bert = TransformerConfig::bert();
    let params = ModelParams::default();
    let l = 1 << 20;

    let three_pass_fp = live_footprints(&attention::three_pass(), "M").unwrap();
    assert_eq!(three_pass_fp.of("QK"), Footprint::FullFiber);
    let flat = attention_report(ConfigKind::Flat, &bert, l, None, &params);

    let one_pass_fp = live_footprints(&attention::one_pass(), "M").unwrap();
    assert!(!one_pass_fp.any_full_fiber());
    let cascade = attention_report(ConfigKind::FuseMaxCascade, &bert, l, None, &params);

    // FLAT pays for the footprint in traffic; +Cascade does not.
    assert!(
        flat.dram_bytes > 10.0 * cascade.dram_bytes,
        "FLAT {} vs +Cascade {}",
        flat.dram_bytes,
        cascade.dram_bytes
    );
}

#[test]
fn division_optimization_is_orthogonal_to_pass_reduction() {
    // §IV-D: the deferral applies to the 3-pass cascade independently of
    // going 1-pass, reducing both divisions and (it turns out) a pass.
    let plain = analyze_passes(&attention::three_pass(), "M").unwrap();
    let deferred = analyze_passes(&attention::three_pass_deferred_div(), "M").unwrap();
    assert_eq!(plain.num_passes, 3);
    assert_eq!(deferred.num_passes, 2);
}

#[test]
fn analysis_is_deterministic() {
    for _ in 0..3 {
        let a = analyze_passes(&attention::one_pass(), "M").unwrap();
        let b = analyze_passes(&attention::one_pass(), "M").unwrap();
        assert_eq!(a.num_passes, b.num_passes);
        assert_eq!(a.einsums, b.einsums);
    }
}

#[test]
fn pretty_printed_cascades_reparse_and_reanalyze_identically() {
    for cascade in [
        attention::naive_unstable(),
        attention::three_pass(),
        attention::three_pass_deferred_div(),
        attention::two_pass(),
        attention::one_pass(),
    ] {
        let shown = cascade.to_string();
        let reparsed = fusemax::einsum::Cascade::parse(&shown)
            .unwrap_or_else(|e| panic!("{} failed to re-parse: {e}\n{shown}", cascade.name));
        let a = analyze_passes(&cascade, "M").unwrap().num_passes;
        let b = analyze_passes(&reparsed, "M").unwrap().num_passes;
        assert_eq!(a, b, "{} pass count changed after round-trip", cascade.name);
    }
}
