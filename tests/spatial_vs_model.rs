//! Cross-validation: the discrete-event spatial simulator and the
//! analytical model agree on the binding's qualitative behavior, and the
//! simulator's per-tile busy cycles match the model's tile-cost formulas.

use fusemax::core::kernels::attention_reference;
use fusemax::spatial::{simulate, Binding, SpatialConfig, TaskKind, Unit};
use fusemax::tensor::{assert_tensors_close, Shape, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn qkv(e: usize, f: usize, m: usize, p: usize, seed: u64) -> [Tensor<f64>; 3] {
    let mut rng = StdRng::seed_from_u64(seed);
    [
        Tensor::random_uniform(Shape::of(&[("E", e), ("P", p)]), -1.0, 1.0, &mut rng),
        Tensor::random_uniform(Shape::of(&[("E", e), ("M", m)]), -1.0, 1.0, &mut rng),
        Tensor::random_uniform(Shape::of(&[("F", f), ("M", m)]), -1.0, 1.0, &mut rng),
    ]
}

#[test]
fn simulated_busy_cycles_match_analytic_tile_costs() {
    // The analytical model charges the 2D array E+1+(1+exp)+1+F cycles per
    // tile and the 1D array 3+(1+exp)+2F per (m1, p)-tile. The simulator
    // must measure exactly that.
    let (e, f, m, p) = (8usize, 8usize, 64usize, 4usize);
    let cfg = SpatialConfig::toy(4, 4);
    let [q, k, v] = qkv(e, f, m, p, 1);
    let r = simulate(&q, &k, &v, &cfg, Binding::Pipelined).unwrap();
    let m1 = m / cfg.rows;
    let exp = cfg.exp_cycles();
    let t2d_tile = e as u64 + 1 + exp + 1 + f as u64;
    let t1d_tile = 1 + exp + 2 + 2 * f as u64;
    assert_eq!(r.busy_2d, t2d_tile * m1 as u64);
    assert_eq!(r.busy_1d, t1d_tile * m1 as u64 + f as u64);
}

#[test]
fn binding_speedup_direction_matches_the_model() {
    // The analytical model predicts serialized (+Architecture) is slower
    // than pipelined (+Binding) by the epoch ratio
    // (t2d + t1d + fill/drain) / max(t2d, t1d); the simulator should land
    // in the same neighborhood once warm.
    let (e, f, m, p) = (8usize, 8usize, 256usize, 4usize);
    let cfg = SpatialConfig::toy(4, 4);
    let [q, k, v] = qkv(e, f, m, p, 2);
    let serial = simulate(&q, &k, &v, &cfg, Binding::Serialized).unwrap();
    let piped = simulate(&q, &k, &v, &cfg, Binding::Pipelined).unwrap();

    let t2d = (e + 1 + 7 + 1 + f) as f64;
    let t1d = (1 + 7 + 2 + 2 * f) as f64;
    let fill_drain = (cfg.rows + cfg.cols) as f64;
    let predicted = (t2d + t1d + fill_drain) / t2d.max(t1d);
    let measured = serial.cycles as f64 / piped.cycles as f64;
    assert!(
        (measured / predicted - 1.0).abs() < 0.25,
        "predicted {predicted:.2}x, simulated {measured:.2}x"
    );
}

#[test]
fn utilization_grows_with_m1_like_the_models_warmup_term() {
    // The model's utilization factor is tiles/(tiles + warmup); the
    // simulator's pipeline ramp should show the same direction and
    // approach 1 as M1 grows.
    let cfg = SpatialConfig::toy(4, 4);
    let mut last = 0.0;
    for m in [16usize, 64, 256] {
        let [q, k, v] = qkv(8, 8, m, 4, 3);
        let r = simulate(&q, &k, &v, &cfg, Binding::Pipelined).unwrap();
        let u = r.util_2d().max(r.util_1d());
        assert!(u > last, "utilization should grow with M1: {u} after {last}");
        last = u;
    }
    assert!(last > 0.9, "long-M utilization = {last}");
}

#[test]
fn exp_cost_ablation_shifts_the_bottleneck() {
    // With single-cycle exponentials the 1D array's correction work
    // shrinks; with 6-MACC exponentials both arrays balance (the paper's
    // design point). The tile-work ratio moves accordingly.
    let [q, k, v] = qkv(8, 8, 64, 4, 4);
    let mut cheap = SpatialConfig::toy(4, 4);
    cheap.exp_maccs = 0; // 1-cycle exp
    let expensive = SpatialConfig::toy(4, 4);

    let r_cheap = simulate(&q, &k, &v, &cheap, Binding::Pipelined).unwrap();
    let r_exp = simulate(&q, &k, &v, &expensive, Binding::Pipelined).unwrap();
    assert!(r_cheap.busy_2d < r_exp.busy_2d);
    assert!(r_cheap.busy_1d < r_exp.busy_1d);
    assert!(r_cheap.cycles < r_exp.cycles);
}

#[test]
fn waterfall_shows_cross_tile_software_pipelining() {
    // Fig 4's signature: tile m1+1's BQK starts before tile m1's RNV ends.
    let [q, k, v] = qkv(8, 8, 32, 4, 5);
    let r = simulate(&q, &k, &v, &SpatialConfig::toy(4, 4), Binding::Pipelined).unwrap();
    let bqk_next = r
        .records
        .iter()
        .find(|t| t.kind == TaskKind::Bqk && t.m1 == 1)
        .expect("BQK(m1=1) scheduled");
    let rnv_prev = r
        .records
        .iter()
        .find(|t| t.kind == TaskKind::Rnv && t.m1 == 0)
        .expect("RNV(m1=0) scheduled");
    assert!(
        bqk_next.start < rnv_prev.end,
        "no pipelining: BQK(1) at {} vs RNV(0) end {}",
        bqk_next.start,
        rnv_prev.end
    );
    assert_eq!(bqk_next.unit, Unit::Array2D);
    assert_eq!(rnv_prev.unit, Unit::Array1D);
}

#[test]
fn cloud_scale_simulation_matches_reference_numerics() {
    // A short cloud-shaped run (256-wide tiles): still bit-faithful.
    let (e, f, m, p) = (16usize, 16usize, 512usize, 256usize);
    let cfg = SpatialConfig {
        rows: 256,
        cols: 256,
        vector_pes: 256,
        exp_maccs: 6,
        charge_fill_drain: true,
    };
    let [q, k, v] = qkv(e, f, m, p, 6);
    let r = simulate(&q, &k, &v, &cfg, Binding::Pipelined).unwrap();
    let want = attention_reference(&q, &k, &v).unwrap();
    assert_tensors_close(&r.av, &want, 1e-9);
    assert_eq!(r.records.iter().filter(|t| t.kind == TaskKind::Bqk).count(), 2);
}
