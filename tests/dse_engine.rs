//! Cross-crate integration of the design-space exploration engine: the
//! issue's acceptance criteria, end to end — a ≥500-point space across four
//! configurations and four workloads, a non-empty three-objective Pareto
//! frontier whose Fig 12 slice matches the legacy curve exactly,
//! serial/parallel equivalence, bit-identical cache replays, and the
//! simulator validation hook.

use fusemax::dse::{
    dominates, validate_top_k, DesignSpace, Objectives, Sweeper, ValidationStatus, ARRAY_DIMS,
};
use fusemax::eval::fig12;
use fusemax::model::{ConfigKind, ModelParams};
use fusemax::workloads::{TransformerConfig, SEQ_LENGTHS};

/// The four-configuration sweep the issue specifies: unfused, FLAT,
/// FuseMax serialized (+Architecture), FuseMax pipelined (+Binding).
const SWEPT_KINDS: [ConfigKind; 4] =
    [ConfigKind::Unfused, ConfigKind::Flat, ConfigKind::FuseMaxArch, ConfigKind::FuseMaxBinding];

/// 6 dims × 4 kinds × 4 workloads × 6 lengths = 576 candidate designs.
fn big_space() -> DesignSpace {
    DesignSpace::new()
        .with_array_dims(ARRAY_DIMS)
        .with_kinds(SWEPT_KINDS)
        .with_workloads(TransformerConfig::all())
        .with_seq_lens(SEQ_LENGTHS)
}

#[test]
fn sweeps_over_500_points_across_four_kinds_and_workloads() {
    let space = big_space();
    assert!(space.len() >= 500, "space has only {} points", space.len());

    let sweeper = Sweeper::new(ModelParams::default());
    let outcome = sweeper.sweep(&space);
    assert_eq!(outcome.evaluations.len(), space.len());
    assert_eq!(outcome.stats.evaluated, space.len());

    // Every kind and every workload really got evaluated.
    for kind in SWEPT_KINDS {
        assert!(outcome.evaluations.iter().any(|e| e.point.kind == kind), "{kind} missing");
    }
    for workload in TransformerConfig::all() {
        assert!(
            outcome.evaluations.iter().any(|e| e.point.workload.name == workload.name),
            "{} missing",
            workload.name
        );
    }

    // A non-empty three-objective frontier, internally consistent.
    let frontier = outcome.frontier_points();
    assert!(!frontier.is_empty());
    for point in &frontier {
        let [area, latency, energy] = point.objectives();
        assert!(area > 0.0 && latency > 0.0 && energy > 0.0);
    }
    // Frontier members of one group never dominate each other.
    for group in &outcome.frontiers {
        let pts = group.frontier.points();
        for a in pts {
            for b in pts {
                if !std::ptr::eq(a, b) {
                    assert!(!dominates(&a.objectives(), &b.objectives()));
                }
            }
        }
    }
}

#[test]
fn fig12_slice_of_the_sweep_matches_the_legacy_curve_exactly() {
    let params = ModelParams::default();
    let sweeper = Sweeper::new(params.clone());
    let seq_len = 1 << 18;

    for cfg in TransformerConfig::all() {
        // The engine's fig12-equivalent slice…
        let slice = sweeper
            .sweep(&DesignSpace::new().with_workloads([cfg.clone()]).with_seq_lens([seq_len]));
        // …must equal the published fig12_curve output point for point.
        let legacy = fig12::fig12_curve(&cfg, seq_len, &params);
        assert_eq!(slice.evaluations.len(), legacy.len());
        for (evaluation, point) in slice.evaluations.iter().zip(&legacy) {
            assert_eq!(evaluation.point.array_dim, point.array_dim, "{}", cfg.name);
            assert_eq!(
                evaluation.area_cm2.to_bits(),
                point.area_cm2.to_bits(),
                "{} area at {}",
                cfg.name,
                point.array_dim
            );
            assert_eq!(
                evaluation.latency_s.to_bits(),
                point.latency_s.to_bits(),
                "{} latency at {}",
                cfg.name,
                point.array_dim
            );
        }

        // All six legacy ARRAY_DIMS points are Pareto-optimal (bigger chips
        // are strictly faster), so the frontier holds every one of them.
        let group = &slice.frontiers[0];
        assert_eq!(group.frontier.len(), ARRAY_DIMS.len(), "{}", cfg.name);
        for &dim in &ARRAY_DIMS {
            assert!(
                group.frontier.points().iter().any(|e| e.point.array_dim == dim),
                "{}: {dim}x{dim} missing from the frontier",
                cfg.name
            );
        }
    }
}

#[test]
fn parallel_and_serial_sweeps_are_bit_identical() {
    let space = big_space();
    let serial = Sweeper::new(ModelParams::default()).with_parallelism(false).sweep(&space);
    let parallel = Sweeper::new(ModelParams::default()).with_parallelism(true).sweep(&space);

    assert_eq!(serial.evaluations.len(), parallel.evaluations.len());
    for (a, b) in serial.evaluations.iter().zip(&parallel.evaluations) {
        assert_eq!(a.point, b.point);
        assert_eq!(a.area_cm2.to_bits(), b.area_cm2.to_bits());
        assert_eq!(a.latency_s.to_bits(), b.latency_s.to_bits());
        assert_eq!(a.energy_j.to_bits(), b.energy_j.to_bits());
        assert_eq!(a.report.cycles.to_bits(), b.report.cycles.to_bits());
        assert_eq!(a.report.busy_2d.to_bits(), b.report.busy_2d.to_bits());
        assert_eq!(a.report.busy_1d.to_bits(), b.report.busy_1d.to_bits());
        assert_eq!(a.report.dram_bytes.to_bits(), b.report.dram_bytes.to_bits());
        assert_eq!(a.report.gbuf_bytes.to_bits(), b.report.gbuf_bytes.to_bits());
        assert_eq!(a.report.energy.total_pj().to_bits(), b.report.energy.total_pj().to_bits());
    }
    // Same frontiers either way.
    assert_eq!(serial.frontiers.len(), parallel.frontiers.len());
    for (a, b) in serial.frontiers.iter().zip(&parallel.frontiers) {
        assert_eq!(a.model, b.model);
        assert_eq!(a.frontier.len(), b.frontier.len());
    }
}

#[test]
fn repeated_sweeps_serve_bit_identical_reports_from_the_cache() {
    let space = big_space();
    let sweeper = Sweeper::new(ModelParams::default());
    let first = sweeper.sweep(&space);
    let second = sweeper.sweep(&space);

    assert_eq!(second.stats.cache_hits, space.len());
    assert_eq!(second.stats.evaluated, 0);
    assert_eq!(sweeper.cache().len(), space.len());
    for (a, b) in first.evaluations.iter().zip(&second.evaluations) {
        // Same allocation, hence bit-identical by construction…
        assert!(std::sync::Arc::ptr_eq(a, b));
        // …and verifiably so on the wire format.
        assert_eq!(a.latency_s.to_bits(), b.latency_s.to_bits());
        assert_eq!(a.energy_j.to_bits(), b.energy_j.to_bits());
        assert_eq!(a.report.cycles.to_bits(), b.report.cycles.to_bits());
    }
}

#[test]
fn pruned_search_agrees_with_the_exhaustive_frontier() {
    let space = big_space();
    let exhaustive = Sweeper::new(ModelParams::default()).sweep(&space);
    let pruned = Sweeper::new(ModelParams::default()).sweep_pruned(&space);

    // Pruning must skip work (that is its point) without changing any
    // frontier.
    assert!(pruned.stats.pruned > 0, "no candidate was pruned");
    assert!(pruned.stats.evaluated < space.len());
    for group in &exhaustive.frontiers {
        let other = pruned
            .frontier_for(&group.model, group.seq_len)
            .unwrap_or_else(|| panic!("missing group {} @ {}", group.model, group.seq_len));
        let mut a: Vec<[f64; 3]> = group.frontier.points().iter().map(|p| p.objectives()).collect();
        let mut b: Vec<[f64; 3]> = other.frontier.points().iter().map(|p| p.objectives()).collect();
        a.sort_by(|x, y| x.partial_cmp(y).unwrap());
        b.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert_eq!(a, b, "{} @ {}", group.model, group.seq_len);
    }
}

#[test]
fn parallel_sweep_has_higher_throughput_on_multicore_hosts() {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    if cores < 4 {
        eprintln!("skipping throughput comparison on a {cores}-core host");
        return;
    }
    // Three sweep repetitions with fresh sweepers (no cache reuse) of the
    // 576-point space; keep the best time for each mode to damp scheduler
    // noise.
    let space = big_space();
    let best = |parallel: bool| {
        (0..3)
            .map(|_| {
                let sweeper = Sweeper::new(ModelParams::default()).with_parallelism(parallel);
                sweeper.sweep(&space).stats.elapsed
            })
            .min()
            .unwrap()
    };
    let serial = best(false);
    let parallel = best(true);
    assert!(
        parallel < serial,
        "parallel sweep ({parallel:?}) not faster than serial ({serial:?}) on {cores} cores"
    );
}

#[test]
fn top_designs_survive_simulator_replay() {
    let outcome = Sweeper::new(ModelParams::default()).sweep(&big_space());
    let validations = validate_top_k(&outcome, 3);
    assert_eq!(validations.len(), 3);
    for validation in &validations {
        assert!(validation.passed(), "{validation}");
        // The fastest designs are FuseMax designs, which have a real
        // spatial binding — so they are simulated, not waved through.
        assert_eq!(validation.status, ValidationStatus::Confirmed, "{validation}");
    }
}

#[test]
fn frontier_json_round_trips_key_facts() {
    let outcome = Sweeper::new(ModelParams::default()).sweep(
        &DesignSpace::new()
            .with_array_dims([64, 256])
            .with_kinds([ConfigKind::Flat, ConfigKind::FuseMaxBinding])
            .with_seq_lens([1 << 16]),
    );
    let json = fusemax::dse::frontier_json(&outcome);
    for model in ["BERT", "TrXL", "T5", "XLM"] {
        assert!(json.contains(&format!("\"model\":\"{model}\"")), "{model} missing");
    }
    assert!(json.contains("\"seq_len\":65536"));
    assert!(json.contains("\"candidates\":16"));
}
