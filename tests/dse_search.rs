//! Acceptance suite for the guided design-space search subsystem: every
//! strategy is deterministic given a seed, shares the exhaustive sweep's
//! [`EvalCache`] (a guided run after a full sweep performs **zero** new
//! model evaluations), and recovers ≥90% of the exhaustive Pareto
//! hypervolume on the Fig 12 space within a 25% evaluation budget.
//!
//! Set `FUSEMAX_DSE_CACHE=<path>` to persist the suite's evaluations
//! across test processes (the cache-on-disk ROADMAP item): the first run
//! writes the file, later runs start warm.

use fusemax::dse::search::{
    convergence, hypervolume_fraction, GeneticSearch, RandomSearch, SearchBudget, SearchStrategy,
    SimulatedAnnealing, SnapPolicy,
};
use fusemax::dse::{dominates, DesignSpace, EvalCache, Objectives, Sweeper};
use fusemax::model::{ConfigKind, ModelParams};
use fusemax::workloads::TransformerConfig;

/// The Fig 12 acceptance space: the paper's six array dimensions at 256K
/// tokens, widened with the full configuration axis and the
/// frequency/buffer knobs so a guided search has real decisions to make.
/// 6 dims × 5 kinds × 2 frequencies × 3 buffer scales = 180 candidates,
/// one `(BERT, 256K)` frontier group.
fn fig12_space() -> DesignSpace {
    DesignSpace::new()
        .with_kinds(ConfigKind::all())
        .with_workloads([TransformerConfig::bert()])
        .with_frequencies_hz([None, Some(470e6)])
        .with_buffer_scales([0.5, 1.0, 2.0])
}

/// A multi-group space (2 workloads × 2 lengths) for the group-handling
/// tests.
fn multi_group_space() -> DesignSpace {
    DesignSpace::new()
        .with_kinds([
            ConfigKind::Unfused,
            ConfigKind::Flat,
            ConfigKind::FuseMaxArch,
            ConfigKind::FuseMaxBinding,
        ])
        .with_workloads([TransformerConfig::bert(), TransformerConfig::xlm()])
        .with_seq_lens([1 << 14, 1 << 18])
}

/// A sweeper warmed from `FUSEMAX_DSE_CACHE` when the env var names a
/// cache file (see the module docs).
fn sweeper() -> Sweeper {
    let sweeper = Sweeper::new(ModelParams::default());
    if let Some(path) = std::env::var_os("FUSEMAX_DSE_CACHE") {
        let _ = sweeper.load_cache(std::path::Path::new(&path));
    }
    sweeper
}

/// The three strategies under test, seeded identically.
fn strategies(seed: u64) -> Vec<Box<dyn SearchStrategy>> {
    vec![
        Box::new(RandomSearch::new(seed)),
        Box::new(GeneticSearch::new(seed)),
        Box::new(SimulatedAnnealing::new(seed)),
    ]
}

#[test]
fn every_strategy_recovers_90pct_hypervolume_at_quarter_budget() {
    let space = fig12_space();
    let sweeper = sweeper();
    let exhaustive = sweeper.sweep(&space);
    let budget = SearchBudget::fraction(&space, 0.25);
    assert_eq!(budget.evaluations, 45);

    for strategy in strategies(7) {
        // Fresh sweeper per strategy: no help from the exhaustive cache,
        // the budget is all the strategy gets.
        let cold = Sweeper::new(ModelParams::default());
        let outcome = strategy.search(&cold, &space, budget);
        assert!(outcome.stats.requested <= budget.evaluations, "{} overspent", strategy.name());
        assert_eq!(
            outcome.stats.evaluated,
            outcome.stats.requested,
            "{} had no cache to draw from",
            strategy.name()
        );
        let fraction = hypervolume_fraction(&outcome.frontiers, &exhaustive);
        assert!(
            fraction >= 0.90,
            "{} recovered only {:.1}% of the exhaustive hypervolume with {} evaluations",
            strategy.name(),
            fraction * 100.0,
            outcome.stats.requested
        );
    }

    if let Some(path) = std::env::var_os("FUSEMAX_DSE_CACHE") {
        let _ = sweeper.save_cache(std::path::Path::new(&path));
    }
}

#[test]
fn guided_run_after_a_full_sweep_performs_zero_new_evaluations() {
    let space = fig12_space();
    let sweeper = sweeper();
    sweeper.sweep(&space);
    let cached = sweeper.cache().len();

    for strategy in strategies(3) {
        let outcome = strategy.search(&sweeper, &space, SearchBudget::fraction(&space, 0.25));
        assert!(outcome.stats.requested > 0);
        assert_eq!(
            outcome.stats.evaluated,
            0,
            "{} re-ran the model despite a fully warmed shared cache",
            strategy.name()
        );
        assert_eq!(outcome.stats.cache_hits, outcome.stats.requested, "{}", strategy.name());
    }
    assert_eq!(sweeper.cache().len(), cached, "guided runs must not grow a complete cache");
}

#[test]
fn exhaustive_sweep_reuses_guided_evaluations() {
    // Sharing goes both ways: a full sweep after a guided run gets the
    // guided evaluations for free.
    let space = fig12_space();
    let sweeper = Sweeper::new(ModelParams::default());
    let guided =
        GeneticSearch::new(11).search(&sweeper, &space, SearchBudget::fraction(&space, 0.25));
    let outcome = sweeper.sweep(&space);
    assert_eq!(outcome.stats.cache_hits, guided.stats.requested);
    assert_eq!(outcome.stats.evaluated, space.len() - guided.stats.requested);
}

#[test]
fn strategies_are_deterministic_given_a_seed() {
    let space = fig12_space();
    for strategy in ["random", "genetic", "annealing"] {
        let run = |seed: u64| {
            let sweeper = Sweeper::new(ModelParams::default());
            let s: Box<dyn SearchStrategy> = match strategy {
                "random" => Box::new(RandomSearch::new(seed)),
                "genetic" => Box::new(GeneticSearch::new(seed)),
                _ => Box::new(SimulatedAnnealing::new(seed)),
            };
            s.search(&sweeper, &space, SearchBudget::evaluations(30))
        };
        let a = run(5);
        let b = run(5);
        assert_eq!(a.evaluations.len(), b.evaluations.len(), "{strategy}");
        for (x, y) in a.evaluations.iter().zip(&b.evaluations) {
            assert_eq!(x.point, y.point, "{strategy} diverged");
            assert_eq!(x.latency_s.to_bits(), y.latency_s.to_bits(), "{strategy}");
        }
        let c = run(6);
        assert!(
            a.evaluations.iter().zip(&c.evaluations).any(|(x, y)| x.point != y.point),
            "{strategy}: different seeds explored identically"
        );
    }
}

#[test]
fn multi_group_spaces_get_per_group_frontiers() {
    let space = multi_group_space();
    let sweeper = Sweeper::new(ModelParams::default());
    let exhaustive = sweeper.sweep(&space);
    assert_eq!(exhaustive.frontiers.len(), 4);

    for strategy in strategies(7) {
        let cold = Sweeper::new(ModelParams::default());
        let outcome = strategy.search(&cold, &space, SearchBudget::fraction(&space, 0.25));
        let fraction = hypervolume_fraction(&outcome.frontiers, &exhaustive);
        assert!(
            fraction >= 0.80,
            "{}: {:.1}% over {} groups",
            strategy.name(),
            fraction * 100.0,
            outcome.frontiers.len()
        );
    }
}

#[test]
fn convergence_harness_tracks_hypervolume_vs_evaluations() {
    let space = fig12_space();
    let sweeper = Sweeper::new(ModelParams::default());
    let exhaustive = sweeper.sweep(&space);

    for strategy in strategies(7) {
        let outcome = strategy.search(&sweeper, &space, SearchBudget::fraction(&space, 0.25));
        let curve = convergence(&outcome, &exhaustive, 9);
        assert_eq!(curve.strategy, strategy.name());
        assert!(!curve.samples.is_empty());
        for w in curve.samples.windows(2) {
            assert!(w[0].evaluations < w[1].evaluations);
            assert!(
                w[0].fraction <= w[1].fraction + 1e-12,
                "{}: hypervolume shrank",
                strategy.name()
            );
        }
        let final_fraction = curve.final_fraction();
        assert_eq!(final_fraction, hypervolume_fraction(&outcome.frontiers, &exhaustive));
        let to_90 = curve.evaluations_to_reach(0.9);
        assert!(
            to_90.is_some_and(|n| n <= outcome.stats.requested),
            "{} never reached 90% (final {:.3})",
            strategy.name(),
            final_fraction
        );
    }
}

#[test]
fn cache_file_round_trip_feeds_guided_search() {
    // The persistence path end to end: exhaust a space, save the cache,
    // load it into a brand-new process-like sweeper, and run a guided
    // search that should evaluate nothing.
    let space = fig12_space();
    let warm = Sweeper::new(ModelParams::default());
    warm.sweep(&space);

    let dir = std::env::temp_dir().join(format!("fusemax-dse-search-{}", std::process::id()));
    let path = dir.join("fig12_cache.json");
    warm.save_cache(&path).expect("save cache");

    let fresh = Sweeper::new(ModelParams::default());
    assert_eq!(fresh.load_cache(&path).expect("load cache"), space.len());
    let outcome =
        SimulatedAnnealing::new(9).search(&fresh, &space, SearchBudget::fraction(&space, 0.25));
    assert_eq!(outcome.stats.evaluated, 0, "disk cache must make the guided run free");
    assert_eq!(outcome.stats.cache_hits, outcome.stats.requested);

    // Loaded evaluations are bit-identical to freshly computed ones.
    let reference = Sweeper::new(ModelParams::default());
    for evaluation in &outcome.evaluations {
        let recomputed = reference.evaluate(&evaluation.point);
        assert_eq!(evaluation.latency_s.to_bits(), recomputed.latency_s.to_bits());
        assert_eq!(evaluation.energy_j.to_bits(), recomputed.energy_j.to_bits());
        assert_eq!(evaluation.area_cm2.to_bits(), recomputed.area_cm2.to_bits());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn continuous_annealing_dominates_the_grid_frontier_off_grid() {
    // The tentpole acceptance: a SnapPolicy::Continuous annealing run on
    // the Fig 12 space must find at least one genuinely off-grid design
    // that Pareto-dominates a point on the exhaustive *grid* frontier —
    // proof that the grid cannot express the true frontier.
    let space = fig12_space();
    let sweeper = sweeper();
    let exhaustive = sweeper.sweep(&space);
    let grid_frontier = exhaustive.frontier_points();

    let cold = Sweeper::new(ModelParams::default());
    let outcome = SimulatedAnnealing::new(1).with_snap_policy(SnapPolicy::Continuous).search(
        &cold,
        &space,
        SearchBudget::fraction(&space, 0.25),
    );

    let off_grid: Vec<_> =
        outcome.evaluations.iter().filter(|e| !space.is_on_grid(&e.point)).collect();
    assert!(!off_grid.is_empty(), "a continuous run never left the grid");

    let dominators = off_grid
        .iter()
        .filter(|e| grid_frontier.iter().any(|g| dominates(&e.objectives(), &g.objectives())))
        .count();
    assert!(
        dominators >= 1,
        "no off-grid design dominated a grid frontier point ({} off-grid evaluations)",
        off_grid.len()
    );

    // And the run still scores against the exhaustive grid baseline.
    let fraction = hypervolume_fraction(&outcome.frontiers, &exhaustive);
    assert!(
        fraction >= 0.90,
        "continuous run recovered only {:.1}% of the grid hypervolume",
        fraction * 100.0
    );
    let curve = convergence(&outcome, &exhaustive, 9);
    assert_eq!(curve.final_fraction(), fraction, "convergence must use the same scoring");
}

#[test]
fn continuous_genetic_search_evaluates_off_grid_children() {
    let space = fig12_space();
    let cold = Sweeper::new(ModelParams::default());
    let outcome = GeneticSearch::new(7).with_snap_policy(SnapPolicy::Continuous).search(
        &cold,
        &space,
        SearchBudget::fraction(&space, 0.5),
    );
    let off_grid = outcome.evaluations.iter().filter(|e| !space.is_on_grid(&e.point)).count();
    assert!(off_grid > 0, "no jittered child was evaluated off-grid");
}

#[test]
fn continuous_strategies_are_deterministic_per_seed() {
    let space = fig12_space();
    let run = |seed: u64| {
        let sweeper = Sweeper::new(ModelParams::default());
        SimulatedAnnealing::new(seed).with_snap_policy(SnapPolicy::Continuous).search(
            &sweeper,
            &space,
            SearchBudget::evaluations(30),
        )
    };
    let a = run(5);
    let b = run(5);
    assert_eq!(a.evaluations.len(), b.evaluations.len());
    for (x, y) in a.evaluations.iter().zip(&b.evaluations) {
        assert_eq!(x.point, y.point, "continuous annealing diverged");
        assert_eq!(x.latency_s.to_bits(), y.latency_s.to_bits());
    }
    let c = run(6);
    assert!(
        a.evaluations.iter().zip(&c.evaluations).any(|(x, y)| x.point != y.point),
        "different seeds explored identically"
    );
}

#[test]
fn screening_cuts_full_evaluations_at_equal_hypervolume() {
    // The multi-fidelity acceptance: with the lower-bound screen on, a
    // budget 20% below the unscreened PR-2 baseline (45 evaluations at
    // 25%) must still recover ≥90% of the exhaustive hypervolume — the
    // screen spends cheap bound checks instead of model evaluations on
    // provably-dominated candidates.
    let space = fig12_space();
    let sweeper = sweeper();
    let exhaustive = sweeper.sweep(&space);
    let baseline = SearchBudget::fraction(&space, 0.25);
    assert_eq!(baseline.evaluations, 45);
    let reduced = SearchBudget::evaluations(baseline.evaluations * 4 / 5);
    assert_eq!(reduced.evaluations, 36);

    let screened: Vec<Box<dyn SearchStrategy>> = vec![
        Box::new(RandomSearch::new(7).with_screening(true)),
        Box::new(GeneticSearch::new(7).with_screening(true)),
        Box::new(SimulatedAnnealing::new(7).with_screening(true)),
    ];
    for strategy in screened {
        let cold = Sweeper::new(ModelParams::default());
        let outcome = strategy.search(&cold, &space, reduced);
        // The cut itself: the run may not exceed the reduced budget (so
        // relative to the 45-evaluation PR-2 baseline it spent ≥20%
        // less), and — the non-vacuous half — the screen must have
        // absorbed real load: the proposals it rejected, had they been
        // evaluated instead, would have overflowed the reduced budget.
        assert!(
            outcome.stats.evaluated <= reduced.evaluations,
            "{}: overspent the reduced budget",
            strategy.name()
        );
        assert!(
            outcome.stats.evaluated + outcome.stats.screened > reduced.evaluations,
            "{}: the screen diverted nothing ({} evaluated + {} screened ≤ {} budget)",
            strategy.name(),
            outcome.stats.evaluated,
            outcome.stats.screened,
            reduced.evaluations
        );
        assert!(
            outcome.stats.screened > 0,
            "{}: the lower-bound screen never rejected anything",
            strategy.name()
        );
        assert!(
            outcome.stats.screened <= reduced.cheap,
            "{}: screening overspent the cheap budget",
            strategy.name()
        );
        let fraction = hypervolume_fraction(&outcome.frontiers, &exhaustive);
        assert!(
            fraction >= 0.90,
            "{}: only {:.1}% of the exhaustive hypervolume with screening on",
            strategy.name(),
            fraction * 100.0
        );
    }
}

#[test]
fn screened_rejections_never_evict_real_frontier_points() {
    // Soundness: screening only rejects candidates whose *optimistic*
    // bound is dominated, so every design on the unscreened frontier
    // is either found or dominated by the screened run's frontier...
    // but with a reduced trajectory the screened run may simply not
    // visit a point. What must hold unconditionally: every screened
    // run's frontier point is a real evaluation, and the screen itself
    // charged no model evaluations.
    let space = fig12_space();
    let cold = Sweeper::new(ModelParams::default());
    let outcome = RandomSearch::new(3).with_screening(true).search(
        &cold,
        &space,
        SearchBudget::evaluations(30),
    );
    assert_eq!(
        outcome.stats.evaluated + outcome.stats.cache_hits,
        outcome.stats.requested,
        "screened rejections must not be charged as requests"
    );
    for group in &outcome.frontiers {
        for point in group.frontier.points() {
            assert!(outcome.evaluations.iter().any(|e| std::sync::Arc::ptr_eq(e, point)));
        }
    }
}

#[test]
fn off_grid_evaluations_round_trip_through_the_cache_file() {
    // Off-grid entries must persist exactly like grid entries: same
    // canonical keys, same bit-exact JSON, and a reloaded cache makes a
    // continuous replay free.
    let space = fig12_space();
    let warm = Sweeper::new(ModelParams::default());
    let run = || {
        SimulatedAnnealing::new(1).with_snap_policy(SnapPolicy::Continuous).search(
            &warm,
            &space,
            SearchBudget::evaluations(25),
        )
    };
    let first = run();
    assert!(first.evaluations.iter().any(|e| !space.is_on_grid(&e.point)));

    let dir = std::env::temp_dir().join(format!("fusemax-dse-offgrid-{}", std::process::id()));
    let path = dir.join("offgrid_cache.json");
    warm.save_cache(&path).expect("save cache with off-grid entries");

    let fresh = Sweeper::new(ModelParams::default());
    assert_eq!(fresh.load_cache(&path).expect("load"), warm.cache().len());
    let replay = SimulatedAnnealing::new(1).with_snap_policy(SnapPolicy::Continuous).search(
        &fresh,
        &space,
        SearchBudget::evaluations(25),
    );
    assert_eq!(replay.stats.evaluated, 0, "off-grid replay must be free from the disk cache");
    for (a, b) in first.evaluations.iter().zip(&replay.evaluations) {
        assert_eq!(a.point, b.point);
        assert_eq!(a.latency_s.to_bits(), b.latency_s.to_bits());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The ISSUE-5 determinism contract: the batched/parallel evaluation path
/// must be bit-identical to the serial path per seed — same evaluations in
/// the same order (latency bits included), same budget accounting, same
/// frontiers. `Sweeper::with_parallelism(false)` is the serial reference;
/// the default sweeper fans batches and annealing chains across all cores.
#[test]
fn parallel_runs_are_bit_identical_to_serial_per_seed() {
    type StrategyMaker = Box<dyn Fn() -> Box<dyn SearchStrategy>>;
    let space = fig12_space();
    let multi = multi_group_space();
    let configs: Vec<(&str, StrategyMaker)> = vec![
        ("random", Box::new(|| Box::new(RandomSearch::new(7)))),
        ("random+screen", Box::new(|| Box::new(RandomSearch::new(7).with_screening(true)))),
        ("genetic", Box::new(|| Box::new(GeneticSearch::new(7)))),
        ("genetic+screen", Box::new(|| Box::new(GeneticSearch::new(7).with_screening(true)))),
        (
            "genetic+continuous",
            Box::new(|| Box::new(GeneticSearch::new(7).with_snap_policy(SnapPolicy::Continuous))),
        ),
        ("annealing", Box::new(|| Box::new(SimulatedAnnealing::new(7)))),
        (
            "annealing+continuous+clockbw",
            Box::new(|| {
                Box::new(
                    SimulatedAnnealing::new(7)
                        .with_snap_policy(SnapPolicy::Continuous)
                        .with_clock_bw_relaxation(true),
                )
            }),
        ),
    ];
    for space in [&space, &multi] {
        for (name, make) in &configs {
            let serial_sweeper = Sweeper::new(ModelParams::default()).with_parallelism(false);
            let parallel_sweeper = Sweeper::new(ModelParams::default());
            let budget = SearchBudget::evaluations(40);
            let serial = make().search(&serial_sweeper, space, budget);
            let parallel = make().search(&parallel_sweeper, space, budget);

            assert_eq!(serial.stats.requested, parallel.stats.requested, "{name}: budget");
            assert_eq!(serial.stats.evaluated, parallel.stats.evaluated, "{name}: evaluated");
            assert_eq!(serial.stats.screened, parallel.stats.screened, "{name}: screened");
            assert_eq!(serial.stats.revisits, parallel.stats.revisits, "{name}: revisits");
            assert_eq!(serial.evaluations.len(), parallel.evaluations.len(), "{name}: length");
            for (a, b) in serial.evaluations.iter().zip(&parallel.evaluations) {
                assert_eq!(a.point, b.point, "{name}: evaluation order diverged");
                assert_eq!(a.latency_s.to_bits(), b.latency_s.to_bits(), "{name}: latency bits");
                assert_eq!(a.energy_j.to_bits(), b.energy_j.to_bits(), "{name}: energy bits");
            }
            assert_eq!(serial.frontiers.len(), parallel.frontiers.len(), "{name}: groups");
            for (ga, gb) in serial.frontiers.iter().zip(&parallel.frontiers) {
                assert_eq!(ga.model, gb.model, "{name}: group order");
                assert_eq!(ga.seq_len, gb.seq_len, "{name}: group order");
                assert_eq!(ga.frontier.len(), gb.frontier.len(), "{name}: frontier size");
            }
        }
    }
}

/// Without screening, the random searcher's batch size is invisible in
/// results (samples are drawn, charged, and recorded in draw order for
/// any batch size) — and parallel ≡ serial holds at every batch size.
/// With screening, batch size is a documented configuration knob.
#[test]
fn random_batch_size_is_invisible_without_screening() {
    let space = fig12_space();
    let budget = SearchBudget::evaluations(40);
    let reference = RandomSearch::new(7).with_batch(1).search(
        &Sweeper::new(ModelParams::default()).with_parallelism(false),
        &space,
        budget,
    );
    for batch in [2usize, 5, 16, 64] {
        for parallel in [false, true] {
            let sweeper = Sweeper::new(ModelParams::default()).with_parallelism(parallel);
            let run = RandomSearch::new(7).with_batch(batch).search(&sweeper, &space, budget);
            assert_eq!(run.evaluations.len(), reference.evaluations.len(), "batch {batch}");
            for (a, b) in reference.evaluations.iter().zip(&run.evaluations) {
                assert_eq!(a.point, b.point, "batch {batch} parallel {parallel}");
                assert_eq!(a.latency_s.to_bits(), b.latency_s.to_bits());
            }
            assert_eq!(run.stats.requested, reference.stats.requested);
        }
    }
}

/// The batched genetic searcher must actually batch: at least one
/// multi-point flush per generation (seed generation included), visible
/// through the new batch counters.
#[test]
fn genetic_search_issues_multi_point_batches_every_generation() {
    let space = fig12_space();
    let sweeper = Sweeper::new(ModelParams::default());
    let outcome = GeneticSearch::new(1).search(&sweeper, &space, SearchBudget::evaluations(60));
    // 60 evaluations at population 16 is a seed batch plus ≥ 2 breeding
    // generations; every one must have flushed as a single multi-point
    // batch.
    assert!(
        outcome.stats.multi_point_batches >= 3,
        "only {} multi-point batches across the run",
        outcome.stats.multi_point_batches
    );
    assert!(outcome.stats.batches >= outcome.stats.multi_point_batches);
}

#[test]
fn eval_cache_type_is_exported_for_external_tools() {
    // The cache is part of the public API surface (external plotting
    // tools absorb saved caches directly).
    let cache = EvalCache::new();
    assert!(cache.is_empty());
    assert_eq!(cache.absorb(Vec::new()), 0);
}
