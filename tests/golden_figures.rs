//! Golden gates for every reproduced figure beyond Fig 12: the Fig 1b,
//! Fig 6, Fig 7, Fig 8/9, Fig 10/11, and Table 1 render outputs must
//! match their checked-in goldens byte for byte, so drift anywhere in the
//! analytical model, the energy tables, or the renderers fails the build
//! instead of silently shipping wrong curves (the Fig 12 frontier gate
//! lives in `tests/golden_frontier.rs`).
//!
//! To bless an *intentional* model change, regenerate every golden with
//! `FUSEMAX_UPDATE_GOLDEN=1 cargo test --test golden_figures` and commit
//! the diff.
//!
//! Each test also writes the *current* render to `target/figures/` so CI
//! can upload the artifacts whether or not the diff passes.

use fusemax::eval::fig8_9::{figure, Metric, Scope};
use fusemax::eval::{fig1b, fig6, fig7, table1};
use fusemax::model::ModelParams;
use fusemax::workloads::TransformerConfig;
use std::path::{Path, PathBuf};

/// CSV renders are used for the grids: `Grid::to_csv` formats every value
/// with Rust's shortest-round-trip `f64` formatting, so the bytes are a
/// deterministic function of the model — exactly what a golden diff needs.
fn panels_csv(panels: &[fusemax::eval::render::Grid]) -> String {
    panels.iter().map(|g| g.to_csv()).collect::<Vec<_>>().join("\n")
}

/// The current bytes of one gated render.
fn current(name: &str) -> String {
    let params = ModelParams::default();
    match name {
        "fig1b_compute.csv" => {
            let grids: Vec<fusemax::eval::render::Grid> =
                TransformerConfig::all().iter().map(fig1b::fig1b).collect();
            panels_csv(&grids)
        }
        "fig10_11_e2e.csv" => format!(
            "{}\n{}",
            panels_csv(&figure(Scope::EndToEnd, Metric::Speedup, &params)),
            panels_csv(&figure(Scope::EndToEnd, Metric::EnergyUse, &params)),
        ),
        "fig6_utilization.csv" => format!(
            "{}\n{}",
            panels_csv(&fig6::fig6(fig6::Array::OneD, &params)),
            panels_csv(&fig6::fig6(fig6::Array::TwoD, &params)),
        ),
        "fig7_einsum_share.csv" => panels_csv(&fig7::fig7(&params)),
        "fig8_9_attention.csv" => format!(
            "{}\n{}",
            panels_csv(&figure(Scope::Attention, Metric::Speedup, &params)),
            panels_csv(&figure(Scope::Attention, Metric::EnergyUse, &params)),
        ),
        "table1.txt" => table1::render(&table1::table1().expect("pass analysis")),
        other => panic!("no golden render named {other:?}"),
    }
}

/// Diffs `name` against its golden, blessing it when
/// `FUSEMAX_UPDATE_GOLDEN` is set, and always leaving the current render
/// under `target/figures/` for artifact upload.
fn gate(name: &str) {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let golden_path = root.join("tests/golden").join(name);
    let rendered = current(name);

    let out_dir: PathBuf = root.join("target/figures");
    std::fs::create_dir_all(&out_dir).expect("create target/figures");
    std::fs::write(out_dir.join(name), &rendered).expect("write current render");

    if std::env::var_os("FUSEMAX_UPDATE_GOLDEN").is_some() {
        std::fs::write(&golden_path, &rendered).expect("write golden");
        eprintln!("golden updated at {}", golden_path.display());
        return;
    }

    let golden = std::fs::read_to_string(&golden_path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e}", golden_path.display()));
    assert_eq!(
        rendered, golden,
        "{name} drifted from tests/golden/{name}.\n\
         If the model change is intentional, regenerate with\n\
         FUSEMAX_UPDATE_GOLDEN=1 cargo test --test golden_figures"
    );
}

#[test]
fn fig1b_compute_matches_the_golden() {
    gate("fig1b_compute.csv");
}

#[test]
fn fig10_11_e2e_matches_the_golden() {
    gate("fig10_11_e2e.csv");
}

#[test]
fn fig6_utilization_matches_the_golden() {
    gate("fig6_utilization.csv");
}

#[test]
fn fig7_einsum_share_matches_the_golden() {
    gate("fig7_einsum_share.csv");
}

#[test]
fn fig8_9_attention_matches_the_golden() {
    gate("fig8_9_attention.csv");
}

#[test]
fn table1_matches_the_golden() {
    gate("table1.txt");
}

#[test]
fn golden_renders_are_reproducible_within_a_run() {
    // Two independent renders are byte-identical — the property the CI
    // diff relies on.
    for name in [
        "fig1b_compute.csv",
        "fig6_utilization.csv",
        "fig7_einsum_share.csv",
        "fig8_9_attention.csv",
        "fig10_11_e2e.csv",
        "table1.txt",
    ] {
        assert_eq!(current(name), current(name), "{name} is not deterministic");
    }
}

#[test]
fn golden_files_are_wellformed() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    for (name, needles) in [
        ("fig1b_compute.csv", &["Fig 1b", "BERT", "XLM", "Attn", "Linear"][..]),
        ("fig6_utilization.csv", &["Fig 6a", "Fig 6b", "BERT", "XLM"][..]),
        ("fig7_einsum_share.csv", &["Fig 7", "QK", "idle"][..]),
        ("fig8_9_attention.csv", &["Fig 8", "Fig 9", "T5"][..]),
        ("fig10_11_e2e.csv", &["Fig 10", "Fig 11", "TrXL"][..]),
        ("table1.txt", &["Table I", "3-pass", "1-pass", "FlashAttention-2"][..]),
    ] {
        let golden = std::fs::read_to_string(root.join("tests/golden").join(name))
            .unwrap_or_else(|e| panic!("missing golden {name}: {e}"));
        for needle in needles {
            assert!(golden.contains(needle), "{name} lacks {needle:?}");
        }
    }
}
