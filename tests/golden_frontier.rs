//! The golden-frontier gate: the Fig 12 Pareto frontier serialized by the
//! DSE engine must match the checked-in golden byte for byte, so any
//! drift in the analytical model, the area/energy tables, or the JSON
//! layer fails the build instead of silently shipping wrong figures.
//!
//! To bless an *intentional* model change, regenerate the golden with
//! `FUSEMAX_UPDATE_GOLDEN=1 cargo test --test golden_frontier` and commit
//! the diff.

use fusemax::dse::{frontiers_only_json, DesignSpace, Sweeper};
use fusemax::model::ModelParams;
use std::path::Path;

const GOLDEN_PATH: &str = "tests/golden/fig12_frontier.json";

/// The exact JSON the current model produces for the paper's Fig 12
/// space (`DesignSpace::new()`: six array dims × +Binding × four models
/// × 256K tokens).
fn current_fig12_json() -> String {
    let sweeper = Sweeper::new(ModelParams::default());
    frontiers_only_json(&sweeper.sweep(&DesignSpace::new()))
}

#[test]
fn fig12_frontier_matches_the_checked_in_golden() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let path = root.join(GOLDEN_PATH);
    let current = current_fig12_json();

    if std::env::var_os("FUSEMAX_UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &current).expect("write golden");
        eprintln!("golden updated at {}", path.display());
        return;
    }

    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()));
    assert_eq!(
        current, golden,
        "Fig 12 frontier drifted from {GOLDEN_PATH}.\n\
         If the model change is intentional, regenerate with\n\
         FUSEMAX_UPDATE_GOLDEN=1 cargo test --test golden_frontier"
    );
}

#[test]
fn golden_serialization_is_reproducible_within_a_run() {
    // Two independent sweeps (fresh caches) serialize byte-identically —
    // the property the CI diff relies on.
    assert_eq!(current_fig12_json(), current_fig12_json());
}

#[test]
fn golden_file_is_stat_free_and_wellformed() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let golden = std::fs::read_to_string(root.join(GOLDEN_PATH)).expect("golden present");
    assert!(golden.starts_with("{\"frontiers\":["));
    assert!(!golden.contains("elapsed_s"), "timings would break determinism");
    for model in ["BERT", "TrXL", "T5", "XLM"] {
        assert!(golden.contains(&format!("\"model\":\"{model}\"")), "{model} missing");
    }
}
