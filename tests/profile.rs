//! Profile gates: exact cost attribution must stay *exact* — every
//! [`fusemax::model::CostNode`] tree folds bit-identically to its total,
//! every serve [`LatencyAttribution`] folds bit-identically to its
//! request's measured TTFT and end-to-end latency (across scheduler
//! policies, replicated fleets, and disaggregated P:D topologies), and
//! the `explain` report reproduces its checked-in golden byte for byte.
//!
//! To bless an intentional model/engine change, regenerate with
//! `FUSEMAX_UPDATE_GOLDEN=1 cargo test --test profile` and commit the
//! diff.

use fusemax::eval::explain::explain;
use fusemax::model::{attention_report, e2e_report, ConfigKind, ModelParams};
use fusemax::serve::{
    Arrivals, FaultSpec, Fleet, FleetSpec, LatencyAttribution, LatencyStats, LengthMix, QueueOrder,
    RouterPolicy, SchedulerPolicy, ServeSim, SlaForensics, TrafficSpec,
};
use fusemax::telemetry::{roofline_csv, roofline_json, validate_folded_stacks};
use fusemax::workloads::TransformerConfig;
use proptest::prelude::*;
use std::path::Path;

const GOLDEN_PATH: &str = "tests/golden/explain.txt";

#[test]
fn explain_report_matches_the_checked_in_golden() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let path = root.join(GOLDEN_PATH);
    let artifacts = explain(&ModelParams::default());

    // Always leave the current render (and the profile artifacts) under
    // target/profile for CI upload, pass or fail.
    let out_dir = root.join("target/profile");
    std::fs::create_dir_all(&out_dir).expect("create target/profile");
    std::fs::write(out_dir.join("explain.txt"), &artifacts.text).expect("write explain");
    std::fs::write(out_dir.join("flamegraph.folded"), &artifacts.folded).expect("write folded");
    std::fs::write(out_dir.join("roofline.json"), roofline_json(&artifacts.roofline))
        .expect("write roofline json");
    std::fs::write(out_dir.join("roofline.csv"), roofline_csv(&artifacts.roofline))
        .expect("write roofline csv");

    if std::env::var_os("FUSEMAX_UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &artifacts.text).expect("write golden");
        eprintln!("golden updated at {}", path.display());
        return;
    }

    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()));
    assert_eq!(
        artifacts.text, golden,
        "explain report drifted from {GOLDEN_PATH}.\n\
         If the change is intentional, regenerate with\n\
         FUSEMAX_UPDATE_GOLDEN=1 cargo test --test profile"
    );
}

#[test]
fn explain_flamegraph_and_roofline_artifacts_are_valid() {
    let artifacts = explain(&ModelParams::default());
    let stacks = validate_folded_stacks(&artifacts.folded).expect("valid folded stacks");
    assert!(stacks >= 2, "the e2e tree must yield several leaf stacks");
    assert!(artifacts.folded.contains("e2e;attention;compute_2d;QK"));
    assert_eq!(artifacts.roofline.len(), 5);
    let json = roofline_json(&artifacts.roofline);
    assert!(json.contains("\"machine_balance\""));
    assert_eq!(roofline_csv(&artifacts.roofline).lines().count(), 6);
}

/// The bit-exactness contract every attribution must satisfy, plus the
/// cross-check against the run's own sample vectors: attribution e2e
/// values (an unordered multiset — attributions retire in completion
/// order, sample vectors are sorted) must reproduce the report's exact
/// quantiles bit for bit.
fn check_attributions(
    attributions: &[LatencyAttribution],
    expected_completed: usize,
    expected_e2e: &LatencyStats,
    expected_ttft: &LatencyStats,
) {
    assert_eq!(attributions.len(), expected_completed);
    for a in attributions {
        a.validate().expect("attribution folds bit-exactly");
    }
    let mut e2e: Vec<f64> = attributions.iter().map(|a| a.e2e_s).collect();
    assert_eq!(&LatencyStats::of(&mut e2e), expected_e2e, "e2e multiset drifted");
    let mut ttft: Vec<f64> = attributions.iter().filter_map(|a| a.ttft_s).collect();
    assert_eq!(&LatencyStats::of(&mut ttft), expected_ttft, "ttft multiset drifted");
}

fn mixed_trace(rate: f64, requests: usize, seed: u64) -> fusemax::serve::Trace {
    TrafficSpec {
        arrivals: Arrivals::Poisson { rate_per_s: rate },
        prompt_mix: LengthMix::new([(512, 3.0), (4096, 1.0)]),
        output_mix: LengthMix::uniform([4, 16]),
        requests,
    }
    .generate(seed)
}

fn replica() -> ServeSim {
    let kind = ConfigKind::FuseMaxBinding;
    ServeSim::builder(kind, kind.default_arch(), TransformerConfig::bert(), ModelParams::default())
        .build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Cost trees fold bit-exactly for every dataflow kind, workload,
    /// and sequence length — attention and end-to-end alike.
    #[test]
    fn cost_breakdowns_sum_exactly_across_kinds(
        seq_exp in 10usize..16,
        widx in 0usize..4,
    ) {
        let params = ModelParams::default();
        let cfg = TransformerConfig::all()[widx].clone();
        let seq_len = 1 << seq_exp;
        for kind in ConfigKind::all() {
            let arch = kind.default_arch();
            let att = attention_report(kind, &cfg, seq_len, None, &params);
            att.cost_breakdown(&arch).validate().expect("attention tree folds bit-exactly");
            let e2e = e2e_report(kind, &cfg, seq_len, &params);
            e2e.cost_breakdown(&arch).validate().expect("e2e tree folds bit-exactly");
        }
    }

    /// Latency attributions fold bit-exactly under every scheduler
    /// policy, and their multiset reproduces the run's exact quantiles.
    #[test]
    fn latency_attribution_sums_exactly_across_policies(
        seed in 0u64..256,
        rate in 100.0f64..600.0,
        chunk in prop_oneof![Just(0usize), 256usize..2048],
        spf in prop_oneof![Just(false), Just(true)],
    ) {
        let trace = mixed_trace(rate, 30, seed);
        let order = if spf { QueueOrder::ShortestPromptFirst } else { QueueOrder::Fcfs };
        let policy = if chunk > 0 {
            SchedulerPolicy::chunked(chunk)
        } else {
            SchedulerPolicy::unbounded()
        }
        .with_queue_order(order);
        let kind = ConfigKind::FuseMaxBinding;
        let sim = ServeSim::builder(
            kind,
            kind.default_arch(),
            TransformerConfig::bert(),
            ModelParams::default(),
        )
        .policy(policy)
        .build();
        let (report, samples) = sim.run_sampled_with(&sim.service_times(&trace), &trace);
        check_attributions(&samples.attributions, report.completed, &report.e2e, &report.ttft);
    }

    /// Fleet attributions fold bit-exactly across replicated fleets and
    /// every router policy.
    #[test]
    fn fleet_attribution_sums_exactly_across_routers(
        seed in 0u64..256,
        n in 1usize..5,
        router in prop_oneof![
            Just(RouterPolicy::RoundRobin),
            Just(RouterPolicy::LeastLoaded),
            Just(RouterPolicy::ShortestPrompt),
        ],
    ) {
        let trace = mixed_trace(400.0, 30, seed);
        let fleet = Fleet::new(FleetSpec::replicated(n).with_router(router), replica());
        let detailed = fleet.run_detailed(&trace);
        check_attributions(
            &detailed.attributions,
            detailed.merged.completed,
            &detailed.merged.e2e,
            &detailed.merged.ttft,
        );
        // Imbalance attribution conserves busy time: shares sum to 1.
        let shares: f64 = detailed.imbalance().iter().map(|r| r.busy_share).sum();
        prop_assert!((shares - 1.0).abs() < 1e-9);
        prop_assert!(detailed.imbalance_ratio() >= 1.0 - 1e-12);
    }

    /// Disaggregated P:D attributions fold bit-exactly: TTFT buckets come
    /// from the prefill stage, the K/V wire is charged explicitly, and
    /// the decode residual closes the end-to-end sum.
    #[test]
    fn disaggregated_attribution_sums_exactly(
        seed in 0u64..256,
        p in 1usize..3,
        d in 1usize..4,
    ) {
        let trace = mixed_trace(300.0, 24, seed);
        let fleet = Fleet::new(FleetSpec::disaggregated(p, d), replica());
        let detailed = fleet.run_detailed(&trace);
        check_attributions(
            &detailed.attributions,
            detailed.merged.completed,
            &detailed.merged.e2e,
            &detailed.merged.ttft,
        );
        // Multi-token requests must carry the explicit K/V wire charge.
        let charged: f64 = detailed.attributions.iter().map(|a| a.kv_handoff_s).sum();
        prop_assert!(charged > 0.0);
    }

    /// Faulted fleet attributions still fold bit-exactly: retry wait and
    /// re-prefill time land in the named `retry` bucket (never inflating
    /// `queue_wait`), and the attribution multiset reproduces the faulted
    /// run's exact quantiles.
    #[test]
    fn faulted_fleet_attribution_folds_the_retry_bucket_exactly(
        seed in 0u64..256,
        n in 2usize..5,
        frac in 0.2f64..0.8,
    ) {
        let trace = mixed_trace(1500.0, 40, seed);
        let faults = FaultSpec::single_failure(frac * trace.last_arrival_s(), 1);
        let fleet = Fleet::new(FleetSpec::replicated(n), replica()).with_faults(faults);
        let detailed = fleet.run_detailed(&trace);
        check_attributions(
            &detailed.attributions,
            detailed.merged.completed,
            &detailed.merged.e2e,
            &detailed.merged.ttft,
        );
        // The retry bucket is always present in the fold; a run that
        // actually retried must attribute nonzero seconds to it.
        for a in &detailed.attributions {
            prop_assert!(a.retry_s >= 0.0);
            prop_assert!(a.e2e_components().iter().any(|(name, _)| *name == "retry"));
        }
        if detailed.faults.retries > 0 {
            prop_assert!(
                detailed.attributions.iter().any(|a| a.retry_s > 0.0),
                "retries fired but no completion carries retry seconds"
            );
        }
    }

    /// SLA forensics name a dominant bucket for every violator, and the
    /// dominant bucket's seconds never exceed the violator's TTFT.
    #[test]
    fn sla_forensics_name_a_dominant_bucket(seed in 0u64..256) {
        let trace = mixed_trace(500.0, 30, seed);
        let sim = replica();
        let (report, samples) = sim.run_sampled_with(&sim.service_times(&trace), &trace);
        let forensics = SlaForensics::over_ttft(&samples.attributions, report.ttft.p50);
        for v in &forensics.violators {
            prop_assert!(v.ttft_s > report.ttft.p50);
            prop_assert!(v.dominant_s <= v.ttft_s + 1e-12);
            prop_assert!(["queue_wait", "prefill", "stall"].contains(&v.dominant));
        }
        let rendered = forensics.render();
        prop_assert!(rendered.contains("violator"));
    }
}
