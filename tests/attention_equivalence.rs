//! Cross-crate integration: every attention implementation in the
//! workspace — the Einsum-evaluated cascades, the hand-written kernels, and
//! the spatial-array simulation — computes the same function, and measured
//! operation counts agree between the evaluator and the kernels.

use fusemax::core::cascades::attention;
use fusemax::core::kernels::{attention_reference, Algorithm};
use fusemax::einsum::Evaluator;
use fusemax::spatial::{simulate, Binding, SpatialConfig};
use fusemax::tensor::{assert_tensors_close, Shape, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn qkv(e: usize, f: usize, m: usize, p: usize, seed: u64) -> [Tensor<f64>; 3] {
    let mut rng = StdRng::seed_from_u64(seed);
    [
        Tensor::random_uniform(Shape::of(&[("E", e), ("P", p)]), -2.0, 2.0, &mut rng),
        Tensor::random_uniform(Shape::of(&[("E", e), ("M", m)]), -2.0, 2.0, &mut rng),
        Tensor::random_uniform(Shape::of(&[("F", f), ("M", m)]), -2.0, 2.0, &mut rng),
    ]
}

#[test]
fn evaluated_cascades_match_kernels_and_reference() {
    let (e, f, m, p, m0) = (8, 6, 24, 10, 4);
    let [q, k, v] = qkv(e, f, m, p, 99);
    let reference = attention_reference(&q, &k, &v).unwrap();
    let evaluator = Evaluator::new();

    for (cascade, alg) in [
        (attention::three_pass(), Algorithm::ThreePass { deferred_div: false }),
        (attention::three_pass_deferred_div(), Algorithm::ThreePass { deferred_div: true }),
        (attention::two_pass(), Algorithm::TwoPass { tile_m0: m0, deferred_div: false }),
        (
            attention::two_pass_deferred_div(),
            Algorithm::TwoPass { tile_m0: m0, deferred_div: true },
        ),
        (attention::one_pass(), Algorithm::OnePass { tile_m0: m0 }),
    ] {
        let eval = evaluator
            .evaluate(
                &cascade,
                &[("Q", q.clone()), ("K", k.clone()), ("V", v.clone())],
                &[("M0", m0)],
            )
            .unwrap();
        let kernel = alg.run(&q, &k, &v).unwrap();

        assert_tensors_close(eval.tensor("AV").unwrap(), &reference, 1e-9);
        assert_tensors_close(&kernel.av, &reference, 1e-9);

        // The evaluator and the kernel measure identical logical work.
        let ec = eval.total_counts();
        let kc = kernel.ops;
        assert_eq!(ec.div, kc.div, "{}: div", cascade.name);
        assert_eq!(ec.exp, kc.exp, "{}: exp", cascade.name);
        assert_eq!(ec.mul, kc.mul, "{}: mul", cascade.name);
        assert_eq!(ec.max, kc.max, "{}: max", cascade.name);
    }
}

#[test]
fn spatial_simulation_matches_evaluated_cascade() {
    let [q, k, v] = qkv(8, 8, 32, 8, 7);
    let sim = simulate(&q, &k, &v, &SpatialConfig::toy(4, 4), Binding::Pipelined).unwrap();
    let eval = Evaluator::new()
        .evaluate(
            &attention::one_pass(),
            &[("Q", q.clone()), ("K", k.clone()), ("V", v.clone())],
            &[("M0", 4)],
        )
        .unwrap();
    assert_tensors_close(&sim.av, eval.tensor("AV").unwrap(), 1e-9);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Property: all stable algorithms agree with the reference on random
    /// shapes, tilings, and data.
    #[test]
    fn kernels_agree_on_random_problems(
        e in 1usize..8,
        f in 1usize..8,
        m1 in 1usize..6,
        m0 in 1usize..6,
        p in 1usize..8,
        seed in 0u64..1000,
    ) {
        let m = m1 * m0;
        let [q, k, v] = qkv(e, f, m, p, seed);
        let reference = attention_reference(&q, &k, &v).unwrap();
        for alg in [
            Algorithm::ThreePass { deferred_div: false },
            Algorithm::ThreePass { deferred_div: true },
            Algorithm::TwoPass { tile_m0: m0, deferred_div: false },
            Algorithm::TwoPass { tile_m0: m0, deferred_div: true },
            Algorithm::OnePass { tile_m0: m0 },
        ] {
            let run = alg.run(&q, &k, &v).unwrap();
            assert_tensors_close(&run.av, &reference, 1e-8);
        }
    }

    /// Property: attention outputs are convex combinations of V rows, so
    /// every output element lies within V's value range.
    #[test]
    fn attention_output_is_bounded_by_v(
        e in 1usize..6,
        m in 1usize..12,
        p in 1usize..6,
        seed in 0u64..1000,
    ) {
        let [q, k, v] = qkv(e, 4, m, p, seed);
        let run = Algorithm::OnePass { tile_m0: 1 }.run(&q, &k, &v).unwrap();
        let lo = v.data().iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = v.data().iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for &x in run.av.data() {
            prop_assert!(x >= lo - 1e-9 && x <= hi + 1e-9, "{x} outside [{lo}, {hi}]");
        }
    }

    /// Property: attention is linear in V — scaling V scales the output.
    #[test]
    fn attention_is_linear_in_v(seed in 0u64..1000, scale in 0.25f64..4.0) {
        let [q, k, v] = qkv(4, 4, 8, 4, seed);
        let base = Algorithm::OnePass { tile_m0: 4 }.run(&q, &k, &v).unwrap();
        let v_scaled = v.map(|x| x * scale);
        let scaled = Algorithm::OnePass { tile_m0: 4 }.run(&q, &k, &v_scaled).unwrap();
        let expect = base.av.map(|x| x * scale);
        assert_tensors_close(&scaled.av, &expect, 1e-9);
    }

    /// Property: logit shift invariance — shifting every QK logit by a
    /// constant (via a rank-1 update `K += s·u` with `Q ⟂`-free emulation
    /// using E=1, Q=1 so QK[m,p] = K[m]) leaves the output unchanged. This
    /// is exactly the trick the stable cascades exploit (§IV-C1).
    #[test]
    fn attention_is_shift_invariant(seed in 0u64..1000, shift in -50.0f64..50.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let q = Tensor::full(Shape::of(&[("E", 1), ("P", 3)]), 1.0_f64);
        let k = Tensor::random_uniform(Shape::of(&[("E", 1), ("M", 8)]), -2.0, 2.0, &mut rng);
        let v = Tensor::random_uniform(Shape::of(&[("F", 4), ("M", 8)]), -2.0, 2.0, &mut rng);
        let base = Algorithm::ThreePass { deferred_div: false }.run(&q, &k, &v).unwrap();
        let k_shifted = k.map(|x| x + shift);
        let shifted = Algorithm::ThreePass { deferred_div: false }.run(&q, &k_shifted, &v).unwrap();
        assert_tensors_close(&shifted.av, &base.av, 1e-8);
    }
}
