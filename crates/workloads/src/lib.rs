#![warn(missing_docs)]

//! Transformer workload definitions and compute accounting (§IV-A, §VI-A).
//!
//! The four encoder models FuseMax evaluates (following FLAT): BERT-Base,
//! TrXL-wt103, T5-small, and XLM, all with batch size 64, over sequence
//! lengths 1K–1M. [`LayerOps`] counts the multiply–accumulate-class work in
//! one encoder layer split into attention / linear / other — the Fig 1b
//! breakdown.
//!
//! # Example
//!
//! ```
//! use fusemax_workloads::{TransformerConfig, SEQ_LENGTHS};
//!
//! let bert = TransformerConfig::bert();
//! // At short sequence lengths the linear layers dominate; at 1M tokens
//! // attention dominates (Fig 1b).
//! let short = bert.layer_ops(SEQ_LENGTHS[0]);
//! let long = bert.layer_ops(SEQ_LENGTHS[5]);
//! assert!(short.attention_fraction() < 0.5);
//! assert!(long.attention_fraction() > 0.9);
//! ```

mod flops;
mod models;

pub use flops::LayerOps;
pub use models::{seq_label, TransformerConfig, SEQ_LENGTHS};
