//! Per-layer operation accounting (Fig 1b's compute breakdown).

use crate::models::TransformerConfig;

/// MACC-class operations in one encoder layer, split the way Fig 1b splits
/// them: attention (QK, softmax, AV), linear (projections, deprojection,
/// FFN), and other (normalization, residuals, activation).
///
/// Counts are `f64` because 1M-token layers exceed 10¹⁵ operations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerOps {
    /// Attention operations (per layer, all heads, full batch).
    pub attention: f64,
    /// Weight-times-activation "linear" operations.
    pub linear: f64,
    /// Everything else (layer norms, residual adds, ReLU).
    pub other: f64,
}

impl LayerOps {
    /// Counts operations for one layer of `cfg` at sequence length `l`.
    pub fn for_layer(cfg: &TransformerConfig, l: usize) -> Self {
        let b = cfg.batch as f64;
        let h = cfg.heads as f64;
        let e = cfg.head_dim as f64;
        let d = cfg.d_model as f64;
        let dff = cfg.ffn_dim as f64;
        let l = l as f64;

        // Attention per head: QK (E·L²) + softmax (≈4 ops per point: max,
        // sub-exp, sum, divide) + AV (F·L², F = E).
        let attention = b * h * (2.0 * e * l * l + 4.0 * l * l);

        // Linear: Q/K/V projections (3·D²·L), deprojection (D²·L), and the
        // two FFN matmuls (2·D·Dff·L), per batch element.
        let linear = b * l * (4.0 * d * d + 2.0 * d * dff);

        // Other: two layer norms (≈5 ops/element), two residual adds, and
        // the FFN ReLU — all linear in L·D.
        let other = b * l * (2.0 * 5.0 * d + 2.0 * d + dff);

        Self { attention, linear, other }
    }

    /// Total operations.
    pub fn total(&self) -> f64 {
        self.attention + self.linear + self.other
    }

    /// Attention's share of the layer's compute.
    pub fn attention_fraction(&self) -> f64 {
        self.attention / self.total()
    }

    /// The linear layers' share.
    pub fn linear_fraction(&self) -> f64 {
        self.linear / self.total()
    }

    /// The non-matmul remainder's share.
    pub fn other_fraction(&self) -> f64 {
        self.other / self.total()
    }
}

#[cfg(test)]
mod tests {

    use crate::models::{TransformerConfig, SEQ_LENGTHS};

    #[test]
    fn fractions_sum_to_one() {
        let cfg = TransformerConfig::bert();
        for &l in &SEQ_LENGTHS {
            let ops = cfg.layer_ops(l);
            let s = ops.attention_fraction() + ops.linear_fraction() + ops.other_fraction();
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn attention_share_grows_with_sequence_length() {
        // Fig 1b: attention's share grows monotonically with L.
        let cfg = TransformerConfig::bert();
        let mut last = 0.0;
        for &l in &SEQ_LENGTHS {
            let f = cfg.layer_ops(l).attention_fraction();
            assert!(f > last, "attention fraction must grow: {f} after {last}");
            last = f;
        }
        assert!(last > 0.95, "attention dominates at 1M tokens: {last}");
    }

    #[test]
    fn crossover_lands_near_4k_for_bert() {
        // Fig 1b: attention and linear cross between 1K and 16K.
        let cfg = TransformerConfig::bert();
        let at_1k = cfg.layer_ops(1 << 10);
        let at_16k = cfg.layer_ops(1 << 14);
        assert!(at_1k.attention < at_1k.linear);
        assert!(at_16k.attention > at_16k.linear);
    }

    #[test]
    fn other_ops_are_negligible() {
        // §IV-A: "the additional non-linearities have negligible impact".
        for cfg in TransformerConfig::all() {
            for &l in &SEQ_LENGTHS {
                let ops = cfg.layer_ops(l);
                assert!(ops.other_fraction() < 0.02, "{} at {l}", cfg.name);
            }
        }
    }

    #[test]
    fn attention_count_matches_manual_formula() {
        let cfg = TransformerConfig::t5();
        let l = 2048usize;
        let ops = cfg.layer_ops(l);
        let manual = (cfg.batch * cfg.heads) as f64
            * ((2 * cfg.head_dim * l * l) as f64 + (4 * l * l) as f64);
        assert_eq!(ops.attention, manual);
    }

    #[test]
    fn xlm_has_the_largest_layers() {
        let l = 4096;
        let xlm = TransformerConfig::xlm().layer_ops(l).total();
        for cfg in [TransformerConfig::bert(), TransformerConfig::trxl(), TransformerConfig::t5()] {
            assert!(xlm > cfg.layer_ops(l).total(), "{}", cfg.name);
        }
    }
}
