//! The evaluated transformer encoder configurations (§VI-A).

use crate::flops::LayerOps;

/// The sequence lengths evaluated throughout the paper's figures.
pub const SEQ_LENGTHS: [usize; 6] = [1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20];

/// Human-readable label for a sequence length (`1K` … `1M`).
///
/// # Example
///
/// ```
/// assert_eq!(fusemax_workloads::seq_label(1 << 18), "256K");
/// ```
pub fn seq_label(l: usize) -> String {
    if l >= 1 << 20 {
        format!("{}M", l >> 20)
    } else if l >= 1 << 10 {
        format!("{}K", l >> 10)
    } else {
        format!("{l}")
    }
}

/// A transformer encoder configuration.
///
/// Hyperparameters follow the public model cards (the paper inherits
/// FLAT's workload set; see DESIGN.md §1.9 note 5): `d_model = heads ×
/// head_dim`, and `head_dim` is the paper's `E = F` embedding per head
/// ("for the networks we evaluate, E = 64 or 128", §V).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransformerConfig {
    /// Model name as used in the figures.
    pub name: &'static str,
    /// Encoder layers.
    pub layers: usize,
    /// Attention heads (`H`).
    pub heads: usize,
    /// Per-head embedding (`E = F`).
    pub head_dim: usize,
    /// Model width (`D = H·E`).
    pub d_model: usize,
    /// Feed-forward inner dimension.
    pub ffn_dim: usize,
    /// Batch size (`B`, 64 throughout the paper).
    pub batch: usize,
}

impl TransformerConfig {
    /// BERT-Base: 12 layers, 12 heads × 64, FFN 3072.
    pub fn bert() -> Self {
        Self {
            name: "BERT",
            layers: 12,
            heads: 12,
            head_dim: 64,
            d_model: 768,
            ffn_dim: 3072,
            batch: 64,
        }
    }

    /// TrXL-wt103: 18 layers, 16 heads × 64, FFN 4096.
    pub fn trxl() -> Self {
        Self {
            name: "TrXL",
            layers: 18,
            heads: 16,
            head_dim: 64,
            d_model: 1024,
            ffn_dim: 4096,
            batch: 64,
        }
    }

    /// T5-small (encoder only, as the paper evaluates): 6 layers,
    /// 8 heads × 64, FFN 2048.
    pub fn t5() -> Self {
        Self {
            name: "T5",
            layers: 6,
            heads: 8,
            head_dim: 64,
            d_model: 512,
            ffn_dim: 2048,
            batch: 64,
        }
    }

    /// XLM: 12 layers, 16 heads × 128 (the larger `E/F` the paper calls
    /// out), FFN 8192.
    pub fn xlm() -> Self {
        Self {
            name: "XLM",
            layers: 12,
            heads: 16,
            head_dim: 128,
            d_model: 2048,
            ffn_dim: 8192,
            batch: 64,
        }
    }

    /// All four evaluated models, in the figures' order.
    pub fn all() -> Vec<Self> {
        vec![Self::bert(), Self::trxl(), Self::t5(), Self::xlm()]
    }

    /// Attention instances per layer (`B × H`).
    pub fn batch_heads(&self) -> usize {
        self.batch * self.heads
    }

    /// The same model at a different batch size. Serving simulators model
    /// *per-request* service times, so they evaluate at `batch = 1` and
    /// let the scheduler decide how many requests share the chip.
    pub fn with_batch(&self, batch: usize) -> Self {
        Self { batch, ..self.clone() }
    }

    /// Bytes of K/V cache one token occupies across all layers and heads
    /// (`2 tensors × layers × H × E × word_bytes`) — what bounds how many
    /// requests can stay resident in an accelerator's global buffer
    /// during decode.
    pub fn kv_bytes_per_token(&self, word_bytes: u64) -> u64 {
        2 * self.layers as u64 * (self.heads * self.head_dim) as u64 * word_bytes
    }

    /// MACC-class operation counts for one encoder layer at sequence
    /// length `seq_len` (see [`LayerOps`]).
    pub fn layer_ops(&self, seq_len: usize) -> LayerOps {
        LayerOps::for_layer(self, seq_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn d_model_is_heads_times_head_dim() {
        for cfg in TransformerConfig::all() {
            assert_eq!(cfg.d_model, cfg.heads * cfg.head_dim, "{}", cfg.name);
        }
    }

    #[test]
    fn head_dims_match_the_papers_e_values() {
        // §V: "For the networks we evaluate, E = 64 or 128."
        for cfg in TransformerConfig::all() {
            assert!(cfg.head_dim == 64 || cfg.head_dim == 128, "{}", cfg.name);
        }
        assert_eq!(TransformerConfig::xlm().head_dim, 128);
    }

    #[test]
    fn batch_is_64_everywhere() {
        for cfg in TransformerConfig::all() {
            assert_eq!(cfg.batch, 64);
        }
    }

    #[test]
    fn sequence_lengths_are_the_figures_sweep() {
        assert_eq!(SEQ_LENGTHS.len(), 6);
        assert_eq!(SEQ_LENGTHS[0], 1024);
        assert_eq!(SEQ_LENGTHS[5], 1048576);
        for w in SEQ_LENGTHS.windows(2) {
            assert_eq!(w[1], w[0] * 4, "lengths step by 4x");
        }
    }

    #[test]
    fn labels() {
        assert_eq!(seq_label(1024), "1K");
        assert_eq!(seq_label(65536), "64K");
        assert_eq!(seq_label(1048576), "1M");
        assert_eq!(seq_label(512), "512");
    }

    #[test]
    fn with_batch_changes_only_the_batch() {
        let one = TransformerConfig::bert().with_batch(1);
        assert_eq!(one.batch, 1);
        assert_eq!(one.batch_heads(), 12);
        assert_eq!(TransformerConfig { batch: 64, ..one }, TransformerConfig::bert());
    }

    #[test]
    fn kv_bytes_count_both_tensors_across_layers() {
        // BERT fp16: 2 × 12 layers × 768 model width × 2 bytes = 36 KiB/token.
        assert_eq!(TransformerConfig::bert().kv_bytes_per_token(2), 2 * 12 * 768 * 2);
        // XLM's wider heads cost proportionally more.
        assert_eq!(TransformerConfig::xlm().kv_bytes_per_token(2), 2 * 12 * 2048 * 2);
    }

    #[test]
    fn four_models_in_order() {
        let names: Vec<&str> = TransformerConfig::all().iter().map(|c| c.name).collect();
        assert_eq!(names, vec!["BERT", "TrXL", "T5", "XLM"]);
    }
}
