//! Dependency-free JSON export of sweep results, feeding the
//! `BENCH_*.json` bench-trajectory files and any external plotting.

use crate::sweep::{Evaluation, SweepOutcome};
use std::fmt::Write as _;

/// A finite `f64` as a JSON number (`null` for non-finite values, which
/// JSON cannot represent).
fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:e}")
    } else {
        "null".into()
    }
}

/// A string as a JSON string literal (the workspace's names are plain
/// ASCII, but escape the JSON-special characters anyway).
fn quoted(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn evaluation_object(e: &Evaluation) -> String {
    format!(
        concat!(
            "{{\"model\":{},\"kind\":{},\"seq_len\":{},\"array_dim\":{},",
            "\"arch\":{},\"frequency_hz\":{},\"buffer_bytes\":{},",
            "\"area_cm2\":{},\"latency_s\":{},\"energy_j\":{},",
            "\"cycles_per_layer\":{},\"util_2d\":{},\"util_1d\":{}}}"
        ),
        quoted(e.point.workload.name),
        quoted(e.point.kind.label()),
        e.point.seq_len,
        e.point.array_dim,
        quoted(&e.point.arch.name),
        num(e.point.arch.frequency_hz),
        e.point.arch.global_buffer_bytes,
        num(e.area_cm2),
        num(e.latency_s),
        num(e.energy_j),
        num(e.report.cycles),
        num(e.report.util_2d()),
        num(e.report.util_1d()),
    )
}

/// Serializes an outcome's per-group Pareto frontiers (points sorted by
/// area, Fig 12 style) plus the sweep stats.
///
/// # Example
///
/// ```
/// use fusemax_dse::{frontier_json, DesignSpace, Sweeper};
/// use fusemax_model::ModelParams;
///
/// let outcome = Sweeper::new(ModelParams::default())
///     .sweep(&DesignSpace::new().with_array_dims([64, 128]));
/// let json = frontier_json(&outcome);
/// assert!(json.starts_with('{') && json.contains("\"frontiers\""));
/// ```
pub fn frontier_json(outcome: &SweepOutcome) -> String {
    let mut groups = Vec::with_capacity(outcome.frontiers.len());
    for group in &outcome.frontiers {
        let points: Vec<String> =
            group.frontier.sorted_by(0).into_iter().map(|e| evaluation_object(e)).collect();
        groups.push(format!(
            "{{\"model\":{},\"seq_len\":{},\"points\":[{}]}}",
            quoted(&group.model),
            group.seq_len,
            points.join(",")
        ));
    }
    let stats = &outcome.stats;
    format!(
        concat!(
            "{{\"frontiers\":[{}],\"stats\":{{\"candidates\":{},\"evaluated\":{},",
            "\"pruned\":{},\"cache_hits\":{},\"elapsed_s\":{},\"points_per_sec\":{}}}}}"
        ),
        groups.join(","),
        stats.candidates,
        stats.evaluated,
        stats.pruned,
        stats.cache_hits,
        num(stats.elapsed.as_secs_f64()),
        num(stats.points_per_sec()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::DesignSpace;
    use crate::sweep::Sweeper;
    use fusemax_model::{ConfigKind, ModelParams};
    use fusemax_workloads::TransformerConfig;

    fn sample() -> SweepOutcome {
        Sweeper::new(ModelParams::default()).sweep(
            &DesignSpace::new()
                .with_array_dims([64, 128])
                .with_kinds([ConfigKind::FuseMaxBinding])
                .with_workloads([TransformerConfig::bert()]),
        )
    }

    #[test]
    fn json_shape_is_plausible() {
        let json = frontier_json(&sample());
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert_eq!(json.matches("\"model\":\"BERT\"").count(), 3, "group + 2 points");
        assert!(json.contains("\"points_per_sec\""));
        assert!(!json.contains("NaN") && !json.contains("inf"));
    }

    #[test]
    fn braces_and_brackets_balance() {
        let json = frontier_json(&sample());
        let balance = |open: char, close: char| {
            json.chars().filter(|&c| c == open).count()
                == json.chars().filter(|&c| c == close).count()
        };
        assert!(balance('{', '}'));
        assert!(balance('[', ']'));
        assert_eq!(json.chars().filter(|&c| c == '"').count() % 2, 0);
    }

    #[test]
    fn quoting_escapes_specials() {
        assert_eq!(quoted("plain"), "\"plain\"");
        assert_eq!(quoted("a\"b"), "\"a\\\"b\"");
        assert_eq!(quoted("a\\b"), "\"a\\\\b\"");
        assert_eq!(quoted("a\nb"), "\"a\\u000ab\"");
    }

    #[test]
    fn numbers_render_as_json() {
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(f64::INFINITY), "null");
        assert!(num(2.5).contains('e'));
    }
}
