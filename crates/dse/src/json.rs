//! Dependency-free JSON layer: export of sweep results (feeding the
//! `BENCH_*.json` bench-trajectory files and any external plotting) and
//! the [`EvalCache`] disk format that makes figure regeneration free
//! *across processes*, not just within one.
//!
//! The cache format round-trips every model-visible field bit-exactly:
//! floats are written with Rust's shortest-round-trip formatting and
//! parsed back with [`str::parse`], so a loaded evaluation is
//! indistinguishable from a fresh one.

use crate::cache::EvalCache;
use crate::space::{DesignPoint, FleetSpec, QueueOrder, RouterPolicy, SchedulerPolicy};
use crate::sweep::{Evaluation, SweepOutcome};
use fusemax_arch::{ArchConfig, EnergyBreakdown, ExpCost, PeKind};
use fusemax_model::{AttentionReport, ConfigKind};
use fusemax_workloads::TransformerConfig;
use std::fmt::Write as _;
use std::sync::Arc;

/// A finite `f64` as a JSON number (`null` for non-finite values, which
/// JSON cannot represent).
fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:e}")
    } else {
        "null".into()
    }
}

/// A string as a JSON string literal (the workspace's names are plain
/// ASCII, but escape the JSON-special characters anyway).
fn quoted(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn evaluation_object(e: &Evaluation) -> String {
    format!(
        concat!(
            "{{\"model\":{},\"kind\":{},\"seq_len\":{},\"array_dim\":{},",
            "\"arch\":{},\"frequency_hz\":{},\"buffer_bytes\":{},",
            "\"area_cm2\":{},\"latency_s\":{},\"energy_j\":{},",
            "\"cycles_per_layer\":{},\"util_2d\":{},\"util_1d\":{}}}"
        ),
        quoted(e.point.workload.name),
        quoted(e.point.kind.label()),
        e.point.seq_len,
        e.point.array_dim,
        quoted(&e.point.arch.name),
        num(e.point.arch.frequency_hz),
        e.point.arch.global_buffer_bytes,
        num(e.area_cm2),
        num(e.latency_s),
        num(e.energy_j),
        num(e.report.cycles),
        num(e.report.util_2d()),
        num(e.report.util_1d()),
    )
}

/// Serializes an outcome's per-group Pareto frontiers (points sorted by
/// area, Fig 12 style) plus the sweep stats.
///
/// # Example
///
/// ```
/// use fusemax_dse::{frontier_json, DesignSpace, Sweeper};
/// use fusemax_model::ModelParams;
///
/// let outcome = Sweeper::new(ModelParams::default())
///     .sweep(&DesignSpace::new().with_array_dims([64, 128]));
/// let json = frontier_json(&outcome);
/// assert!(json.starts_with('{') && json.contains("\"frontiers\""));
/// ```
pub fn frontier_json(outcome: &SweepOutcome) -> String {
    let groups = frontier_groups_json(outcome);
    let stats = &outcome.stats;
    format!(
        concat!(
            "{{\"frontiers\":[{}],\"stats\":{{\"candidates\":{},\"evaluated\":{},",
            "\"pruned\":{},\"cache_hits\":{},\"elapsed_s\":{},\"points_per_sec\":{}}}}}"
        ),
        groups.join(","),
        stats.candidates,
        stats.evaluated,
        stats.pruned,
        stats.cache_hits,
        num(stats.elapsed.as_secs_f64()),
        num(stats.points_per_sec()),
    )
}

/// Serializes *only* the per-group frontiers — no stats, no timings — so
/// two sweeps of the same space produce byte-identical output. This is
/// the format of the checked-in golden frontier
/// (`tests/golden/fig12_frontier.json`) that CI diffs to catch
/// analytical-model drift.
pub fn frontiers_only_json(outcome: &SweepOutcome) -> String {
    format!("{{\"frontiers\":[{}]}}", frontier_groups_json(outcome).join(","))
}

/// The per-group frontier objects shared by both exports.
fn frontier_groups_json(outcome: &SweepOutcome) -> Vec<String> {
    let mut groups = Vec::with_capacity(outcome.frontiers.len());
    for group in &outcome.frontiers {
        let points: Vec<String> =
            group.frontier.sorted_by(0).into_iter().map(|e| evaluation_object(e)).collect();
        groups.push(format!(
            "{{\"model\":{},\"seq_len\":{},\"points\":[{}]}}",
            quoted(&group.model),
            group.seq_len,
            points.join(",")
        ));
    }
    groups
}

// ---------------------------------------------------------------------------
// EvalCache persistence
// ---------------------------------------------------------------------------

/// Why a cache file failed to save or load.
#[derive(Debug)]
pub enum PersistError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Malformed or semantically invalid cache JSON.
    Parse(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "cache file I/O error: {e}"),
            PersistError::Parse(msg) => write!(f, "cache file parse error: {msg}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

fn arch_object(arch: &ArchConfig) -> String {
    let (exp_kind, exp_maccs) = match arch.exp_cost {
        ExpCost::SingleOp => ("single", 0),
        ExpCost::ChainedMaccs(n) => ("chained", n),
    };
    format!(
        concat!(
            "{{\"name\":{},\"array_rows\":{},\"array_cols\":{},\"vector_pes\":{},",
            "\"global_buffer_bytes\":{},\"dram_bw_bytes_per_sec\":{},\"frequency_hz\":{},",
            "\"word_bytes\":{},\"pe_2d\":{},\"exp_kind\":{},\"exp_maccs\":{}}}"
        ),
        quoted(&arch.name),
        arch.array_rows,
        arch.array_cols,
        arch.vector_pes,
        arch.global_buffer_bytes,
        num(arch.dram_bw_bytes_per_sec),
        num(arch.frequency_hz),
        arch.word_bytes,
        quoted(pe_kind_name(arch.pe_2d)),
        quoted(exp_kind),
        exp_maccs,
    )
}

fn policy_object(policy: &SchedulerPolicy) -> String {
    format!(
        "{{\"chunk_tokens\":{},\"waiting_served_ratio\":{},\"queue_order\":{}}}",
        policy.chunk_tokens.map_or("null".to_string(), |c| c.to_string()),
        num(policy.waiting_served_ratio),
        quoted(policy.queue_order.token()),
    )
}

fn fleet_object(fleet: &FleetSpec) -> String {
    let (prefill, decode) = match fleet.prefill_decode {
        Some((p, d)) => (p.to_string(), d.to_string()),
        None => ("null".to_string(), "null".to_string()),
    };
    format!(
        "{{\"replicas\":{},\"router\":{},\"prefill\":{},\"decode\":{}}}",
        fleet.replicas,
        quoted(fleet.router.token()),
        prefill,
        decode,
    )
}

fn point_object(point: &DesignPoint) -> String {
    let w = &point.workload;
    format!(
        concat!(
            "{{\"kind\":{},\"seq_len\":{},\"array_dim\":{},\"workload\":{{\"name\":{},",
            "\"layers\":{},\"heads\":{},\"head_dim\":{},\"d_model\":{},\"ffn_dim\":{},",
            "\"batch\":{}}},\"arch\":{},\"policy\":{},\"fleet\":{}}}"
        ),
        quoted(point.kind.label()),
        point.seq_len,
        point.array_dim,
        quoted(w.name),
        w.layers,
        w.heads,
        w.head_dim,
        w.d_model,
        w.ffn_dim,
        w.batch,
        arch_object(&point.arch),
        policy_object(&point.policy),
        fleet_object(&point.fleet),
    )
}

fn report_object(report: &AttentionReport) -> String {
    let e = &report.energy;
    let einsum: Vec<String> = report
        .einsum_2d
        .iter()
        .map(|(label, cycles)| format!("[{},{}]", quoted(label), num(*cycles)))
        .collect();
    format!(
        concat!(
            "{{\"kind\":{},\"cycles\":{},\"busy_2d\":{},\"busy_1d\":{},\"dram_bytes\":{},",
            "\"gbuf_bytes\":{},\"energy\":{{\"macc_2d_pj\":{},\"vector_1d_pj\":{},\"rf_pj\":{},",
            "\"gbuf_pj\":{},\"dram_pj\":{}}},\"einsum_2d\":[{}]}}"
        ),
        quoted(report.kind.label()),
        num(report.cycles),
        num(report.busy_2d),
        num(report.busy_1d),
        num(report.dram_bytes),
        num(report.gbuf_bytes),
        num(e.macc_2d_pj),
        num(e.vector_1d_pj),
        num(e.rf_pj),
        num(e.gbuf_pj),
        num(e.dram_pj),
        einsum.join(","),
    )
}

fn cache_entry_object(evaluation: &Evaluation) -> String {
    format!(
        "{{\"point\":{},\"area_cm2\":{},\"latency_s\":{},\"energy_j\":{},\"report\":{}}}",
        point_object(&evaluation.point),
        num(evaluation.area_cm2),
        num(evaluation.latency_s),
        num(evaluation.energy_j),
        report_object(&evaluation.report),
    )
}

/// `true` when every float in the evaluation is finite — i.e. the entry
/// can round-trip through the cache format (`num` writes non-finite
/// values as `null`, which no parse can recover).
fn round_trips(evaluation: &Evaluation) -> bool {
    let r = &evaluation.report;
    let e = &r.energy;
    [
        evaluation.area_cm2,
        evaluation.latency_s,
        evaluation.energy_j,
        evaluation.point.arch.dram_bw_bytes_per_sec,
        evaluation.point.arch.frequency_hz,
        r.cycles,
        r.busy_2d,
        r.busy_1d,
        r.dram_bytes,
        r.gbuf_bytes,
        e.macc_2d_pj,
        e.vector_1d_pj,
        e.rf_pj,
        e.gbuf_pj,
        e.dram_pj,
    ]
    .iter()
    .all(|v| v.is_finite())
        && r.einsum_2d.iter().all(|(_, c)| c.is_finite())
}

/// Serializes every cached evaluation. Entries are sorted by their JSON
/// text, so two caches holding the same evaluations serialize
/// byte-identically regardless of insertion order.
///
/// Evaluations containing non-finite values (e.g. a degenerate
/// zero-frequency architecture) are omitted: they cannot round-trip, and
/// a file that saves cleanly must always load cleanly.
pub fn cache_json(cache: &EvalCache) -> String {
    let mut entries: Vec<String> =
        cache.snapshot().iter().filter(|e| round_trips(e)).map(|e| cache_entry_object(e)).collect();
    entries.sort();
    format!("{{\"version\":1,\"entries\":[{}]}}", entries.join(","))
}

/// Parses a [`cache_json`] document back into evaluations.
///
/// Unknown `pe_2d` / `kind` names are errors (they would silently change
/// what the cache key means); unknown workload or Einsum label strings
/// are interned as needed, so custom workloads round-trip too.
pub fn parse_cache_json(json: &str) -> Result<Vec<Evaluation>, PersistError> {
    let doc = parse::document(json).map_err(PersistError::Parse)?;
    let version = doc.u64_field("version")?;
    if version != 1 {
        return Err(PersistError::Parse(format!("unsupported cache version {version}")));
    }
    let mut interner = Interner::new();
    doc.arr_field("entries")?.iter().map(|e| parse_entry(e, &mut interner)).collect()
}

/// Interns strings that must become `&'static str` (workload names,
/// Einsum labels). Known names resolve without allocation; novel names
/// are leaked once per load call — bounded by the file's content.
struct Interner {
    known: Vec<&'static str>,
}

impl Interner {
    fn new() -> Self {
        Interner { known: vec!["BERT", "TrXL", "T5", "XLM", "QK", "LM", "SLN", "SLD", "SLNV/AV"] }
    }

    fn intern(&mut self, s: &str) -> &'static str {
        if let Some(k) = self.known.iter().find(|k| **k == s) {
            return k;
        }
        let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
        self.known.push(leaked);
        leaked
    }
}

fn pe_kind_name(pe: PeKind) -> &'static str {
    match pe {
        PeKind::TpuMacc => "TpuMacc",
        PeKind::FlatMacc => "FlatMacc",
        PeKind::FuseMaxPe => "FuseMaxPe",
        PeKind::Vector1D => "Vector1D",
    }
}

fn pe_kind_of(name: &str) -> Result<PeKind, PersistError> {
    match name {
        "TpuMacc" => Ok(PeKind::TpuMacc),
        "FlatMacc" => Ok(PeKind::FlatMacc),
        "FuseMaxPe" => Ok(PeKind::FuseMaxPe),
        "Vector1D" => Ok(PeKind::Vector1D),
        other => Err(PersistError::Parse(format!("unknown PE kind {other:?}"))),
    }
}

fn config_kind_of(label: &str) -> Result<ConfigKind, PersistError> {
    ConfigKind::all()
        .into_iter()
        .find(|k| k.label() == label)
        .ok_or_else(|| PersistError::Parse(format!("unknown configuration {label:?}")))
}

fn parse_arch(v: &parse::Value) -> Result<ArchConfig, PersistError> {
    let exp_cost = match v.str_field("exp_kind")? {
        "single" => ExpCost::SingleOp,
        "chained" => ExpCost::ChainedMaccs(
            v.u64_field("exp_maccs")?.try_into().map_err(|_| bad("exp_maccs out of range"))?,
        ),
        other => return Err(PersistError::Parse(format!("unknown exp cost {other:?}"))),
    };
    Ok(ArchConfig {
        name: v.str_field("name")?.to_string(),
        array_rows: v.usize_field("array_rows")?,
        array_cols: v.usize_field("array_cols")?,
        vector_pes: v.usize_field("vector_pes")?,
        global_buffer_bytes: v.u64_field("global_buffer_bytes")?,
        dram_bw_bytes_per_sec: v.f64_field("dram_bw_bytes_per_sec")?,
        frequency_hz: v.f64_field("frequency_hz")?,
        word_bytes: v.u64_field("word_bytes")?,
        pe_2d: pe_kind_of(v.str_field("pe_2d")?)?,
        exp_cost,
    })
}

/// The scheduler policy of a point object. Cache files written before
/// the policy axis existed have no `"policy"` field; they parse to the
/// legacy [`SchedulerPolicy::unbounded`], which is exactly the engine
/// those evaluations ran under.
fn parse_policy(v: &parse::Value) -> Result<SchedulerPolicy, PersistError> {
    let Some(p) = v.get("policy") else {
        return Ok(SchedulerPolicy::unbounded());
    };
    let chunk_tokens = match p.get("chunk_tokens") {
        None | Some(parse::Value::Null) => None,
        Some(_) => Some(p.usize_field("chunk_tokens")?),
    };
    let token = p.str_field("queue_order")?;
    let queue_order = QueueOrder::parse(token)
        .ok_or_else(|| PersistError::Parse(format!("unknown queue order {token:?}")))?;
    Ok(SchedulerPolicy {
        chunk_tokens,
        waiting_served_ratio: p.f64_field("waiting_served_ratio")?,
        queue_order,
    })
}

/// The fleet topology of a point object. Cache files written before the
/// fleet axis existed have no `"fleet"` field; they parse to the legacy
/// [`FleetSpec::single`], which is exactly the topology those
/// evaluations were costed under.
fn parse_fleet(v: &parse::Value) -> Result<FleetSpec, PersistError> {
    let Some(g) = v.get("fleet") else {
        return Ok(FleetSpec::single());
    };
    let token = g.str_field("router")?;
    let router = RouterPolicy::parse(token)
        .ok_or_else(|| PersistError::Parse(format!("unknown router policy {token:?}")))?;
    let stage = |key: &str| -> Result<Option<usize>, PersistError> {
        match g.get(key) {
            None | Some(parse::Value::Null) => Ok(None),
            Some(_) => Ok(Some(g.usize_field(key)?)),
        }
    };
    let prefill_decode = match (stage("prefill")?, stage("decode")?) {
        (Some(p), Some(d)) => Some((p, d)),
        (None, None) => None,
        _ => return Err(bad("fleet prefill/decode must be both set or both null")),
    };
    Ok(FleetSpec { replicas: g.usize_field("replicas")?, router, prefill_decode })
}

fn parse_point(v: &parse::Value, interner: &mut Interner) -> Result<DesignPoint, PersistError> {
    let w = v.obj_field("workload")?;
    let workload = TransformerConfig {
        name: interner.intern(w.str_field("name")?),
        layers: w.usize_field("layers")?,
        heads: w.usize_field("heads")?,
        head_dim: w.usize_field("head_dim")?,
        d_model: w.usize_field("d_model")?,
        ffn_dim: w.usize_field("ffn_dim")?,
        batch: w.usize_field("batch")?,
    };
    Ok(DesignPoint {
        arch: parse_arch(v.obj_field("arch")?)?,
        kind: config_kind_of(v.str_field("kind")?)?,
        workload,
        seq_len: v.usize_field("seq_len")?,
        array_dim: v.usize_field("array_dim")?,
        policy: parse_policy(v)?,
        fleet: parse_fleet(v)?,
    })
}

fn parse_report(
    v: &parse::Value,
    interner: &mut Interner,
) -> Result<AttentionReport, PersistError> {
    let e = v.obj_field("energy")?;
    let mut einsum_2d = Vec::new();
    for pair in v.arr_field("einsum_2d")? {
        let items = pair.as_arr().ok_or_else(|| bad("einsum_2d entry is not an array"))?;
        let [label, cycles] = items else {
            return Err(bad("einsum_2d entry is not a [label, cycles] pair"));
        };
        let label = label.as_str().ok_or_else(|| bad("einsum_2d label is not a string"))?;
        let cycles = cycles.as_f64().ok_or_else(|| bad("einsum_2d cycles is not a number"))?;
        einsum_2d.push((interner.intern(label), cycles));
    }
    Ok(AttentionReport {
        kind: config_kind_of(v.str_field("kind")?)?,
        cycles: v.f64_field("cycles")?,
        busy_2d: v.f64_field("busy_2d")?,
        busy_1d: v.f64_field("busy_1d")?,
        dram_bytes: v.f64_field("dram_bytes")?,
        gbuf_bytes: v.f64_field("gbuf_bytes")?,
        energy: EnergyBreakdown {
            macc_2d_pj: e.f64_field("macc_2d_pj")?,
            vector_1d_pj: e.f64_field("vector_1d_pj")?,
            rf_pj: e.f64_field("rf_pj")?,
            gbuf_pj: e.f64_field("gbuf_pj")?,
            dram_pj: e.f64_field("dram_pj")?,
        },
        einsum_2d,
    })
}

fn parse_entry(v: &parse::Value, interner: &mut Interner) -> Result<Evaluation, PersistError> {
    Ok(Evaluation {
        point: parse_point(v.obj_field("point")?, interner)?,
        area_cm2: v.f64_field("area_cm2")?,
        latency_s: v.f64_field("latency_s")?,
        energy_j: v.f64_field("energy_j")?,
        report: parse_report(v.obj_field("report")?, interner)?,
    })
}

fn bad(msg: &str) -> PersistError {
    PersistError::Parse(msg.to_string())
}

/// Saves `cache` to `path`, creating parent directories as needed.
pub fn save_cache_file(cache: &EvalCache, path: &std::path::Path) -> Result<(), PersistError> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    // Write-then-rename so a crash or full disk mid-write can never leave
    // a truncated (unparseable) cache behind. The temp name carries the
    // pid so concurrent savers (two processes sharing FUSEMAX_DSE_CACHE)
    // cannot promote each other's half-written files.
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp.{}", std::process::id()));
    let tmp = std::path::PathBuf::from(tmp);
    std::fs::write(&tmp, cache_json(cache))?;
    if let Err(e) = std::fs::rename(&tmp, path) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e.into());
    }
    Ok(())
}

/// Loads a cache file into `cache`, returning how many entries were
/// absorbed (already-present keys keep their in-memory evaluation).
pub fn load_cache_file(cache: &EvalCache, path: &std::path::Path) -> Result<usize, PersistError> {
    let json = std::fs::read_to_string(path)?;
    let evaluations = parse_cache_json(&json)?;
    Ok(cache.absorb(evaluations.into_iter().map(Arc::new)))
}

/// A minimal recursive-descent JSON parser — just enough for the cache
/// format, with numbers kept as raw text so integers and shortest-repr
/// floats both round-trip exactly.
mod parse {
    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub(crate) enum Value {
        Null,
        Bool(bool),
        /// Raw number text, parsed on demand.
        Num(String),
        Str(String),
        Arr(Vec<Value>),
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        pub(crate) fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        pub(crate) fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        pub(crate) fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Num(raw) => raw.parse().ok(),
                _ => None,
            }
        }

        pub(crate) fn as_arr(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(items) => Some(items),
                _ => None,
            }
        }

        fn field(&self, key: &str) -> Result<&Value, super::PersistError> {
            self.get(key).ok_or_else(|| super::bad(&format!("missing field {key:?}")))
        }

        pub(crate) fn str_field(&self, key: &str) -> Result<&str, super::PersistError> {
            self.field(key)?
                .as_str()
                .ok_or_else(|| super::bad(&format!("field {key:?} is not a string")))
        }

        pub(crate) fn f64_field(&self, key: &str) -> Result<f64, super::PersistError> {
            self.field(key)?
                .as_f64()
                .ok_or_else(|| super::bad(&format!("field {key:?} is not a number")))
        }

        pub(crate) fn u64_field(&self, key: &str) -> Result<u64, super::PersistError> {
            match self.field(key)? {
                Value::Num(raw) => raw
                    .parse()
                    .map_err(|_| super::bad(&format!("field {key:?} is not a u64: {raw}"))),
                _ => Err(super::bad(&format!("field {key:?} is not a number"))),
            }
        }

        pub(crate) fn usize_field(&self, key: &str) -> Result<usize, super::PersistError> {
            self.u64_field(key)?
                .try_into()
                .map_err(|_| super::bad(&format!("field {key:?} out of usize range")))
        }

        pub(crate) fn arr_field(&self, key: &str) -> Result<&[Value], super::PersistError> {
            self.field(key)?
                .as_arr()
                .ok_or_else(|| super::bad(&format!("field {key:?} is not an array")))
        }

        pub(crate) fn obj_field(&self, key: &str) -> Result<&Value, super::PersistError> {
            let v = self.field(key)?;
            match v {
                Value::Obj(_) => Ok(v),
                _ => Err(super::bad(&format!("field {key:?} is not an object"))),
            }
        }
    }

    /// Parses one complete JSON document (trailing whitespace allowed).
    pub(crate) fn document(input: &str) -> Result<Value, String> {
        let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn skip_ws(&mut self) {
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }

        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn expect(&mut self, b: u8) -> Result<(), String> {
            if self.peek() == Some(b) {
                self.pos += 1;
                Ok(())
            } else {
                Err(format!("expected {:?} at byte {}", b as char, self.pos))
            }
        }

        fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
            if self.bytes[self.pos..].starts_with(word.as_bytes()) {
                self.pos += word.len();
                Ok(value)
            } else {
                Err(format!("invalid literal at byte {}", self.pos))
            }
        }

        fn value(&mut self) -> Result<Value, String> {
            match self.peek() {
                Some(b'{') => self.object(),
                Some(b'[') => self.array(),
                Some(b'"') => Ok(Value::Str(self.string()?)),
                Some(b't') => self.literal("true", Value::Bool(true)),
                Some(b'f') => self.literal("false", Value::Bool(false)),
                Some(b'n') => self.literal("null", Value::Null),
                Some(b'-' | b'0'..=b'9') => self.number(),
                _ => Err(format!("unexpected byte at {}", self.pos)),
            }
        }

        fn object(&mut self) -> Result<Value, String> {
            self.expect(b'{')?;
            let mut fields = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Value::Obj(fields));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.expect(b':')?;
                self.skip_ws();
                fields.push((key, self.value()?));
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Value::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
                }
            }
        }

        fn array(&mut self) -> Result<Value, String> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                self.skip_ws();
                items.push(self.value()?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
                }
            }
        }

        /// Four hex digits at `at`, as one UTF-16 code unit.
        fn hex4(&self, at: usize) -> Result<u32, String> {
            let hex = self.bytes.get(at..at + 4).ok_or("truncated \\u escape")?;
            let hex = std::str::from_utf8(hex).map_err(|_| "non-ASCII \\u escape")?;
            u32::from_str_radix(hex, 16).map_err(|_| format!("invalid \\u escape {hex:?}"))
        }

        fn string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                match self.peek() {
                    None => return Err("unterminated string".into()),
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        match self.peek() {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'n') => out.push('\n'),
                            Some(b't') => out.push('\t'),
                            Some(b'r') => out.push('\r'),
                            Some(b'b') => out.push('\u{8}'),
                            Some(b'f') => out.push('\u{c}'),
                            Some(b'u') => {
                                let unit = self.hex4(self.pos + 1)?;
                                self.pos += 4;
                                let code = match unit {
                                    // UTF-16 surrogate pair: conformant
                                    // writers encode astral chars as
                                    // \uD8xx\uDCxx; combine the halves.
                                    0xD800..=0xDBFF => {
                                        if self.bytes.get(self.pos + 1..self.pos + 3)
                                            != Some(&b"\\u"[..])
                                        {
                                            return Err("unpaired high surrogate".into());
                                        }
                                        let low = self.hex4(self.pos + 3)?;
                                        if !(0xDC00..=0xDFFF).contains(&low) {
                                            return Err("invalid low surrogate".into());
                                        }
                                        self.pos += 6;
                                        0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00)
                                    }
                                    0xDC00..=0xDFFF => return Err("unpaired low surrogate".into()),
                                    scalar => scalar,
                                };
                                out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                            }
                            _ => return Err(format!("bad escape at byte {}", self.pos)),
                        }
                        self.pos += 1;
                    }
                    Some(b) => {
                        let len = match b {
                            0x00..=0x7F => 1,
                            0xC0..=0xDF => 2,
                            0xE0..=0xEF => 3,
                            _ => 4,
                        };
                        let chunk = self
                            .bytes
                            .get(self.pos..self.pos + len)
                            .ok_or("truncated UTF-8 sequence")?;
                        let s =
                            std::str::from_utf8(chunk).map_err(|_| "invalid UTF-8 in string")?;
                        out.push_str(s);
                        self.pos += len;
                    }
                }
            }
        }

        fn number(&mut self) -> Result<Value, String> {
            let start = self.pos;
            if self.peek() == Some(b'-') {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
                self.pos += 1;
            }
            if self.pos == start {
                return Err(format!("empty number at byte {start}"));
            }
            let raw = std::str::from_utf8(&self.bytes[start..self.pos])
                .map_err(|_| "non-ASCII number")?;
            raw.parse::<f64>().map_err(|_| format!("invalid number {raw:?}"))?;
            Ok(Value::Num(raw.to_string()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::DesignSpace;
    use crate::sweep::Sweeper;
    use fusemax_model::{ConfigKind, ModelParams};
    use fusemax_workloads::TransformerConfig;

    fn sample() -> SweepOutcome {
        Sweeper::new(ModelParams::default()).sweep(
            &DesignSpace::new()
                .with_array_dims([64, 128])
                .with_kinds([ConfigKind::FuseMaxBinding])
                .with_workloads([TransformerConfig::bert()]),
        )
    }

    #[test]
    fn json_shape_is_plausible() {
        let json = frontier_json(&sample());
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert_eq!(json.matches("\"model\":\"BERT\"").count(), 3, "group + 2 points");
        assert!(json.contains("\"points_per_sec\""));
        assert!(!json.contains("NaN") && !json.contains("inf"));
    }

    #[test]
    fn braces_and_brackets_balance() {
        let json = frontier_json(&sample());
        let balance = |open: char, close: char| {
            json.chars().filter(|&c| c == open).count()
                == json.chars().filter(|&c| c == close).count()
        };
        assert!(balance('{', '}'));
        assert!(balance('[', ']'));
        assert_eq!(json.chars().filter(|&c| c == '"').count() % 2, 0);
    }

    #[test]
    fn quoting_escapes_specials() {
        assert_eq!(quoted("plain"), "\"plain\"");
        assert_eq!(quoted("a\"b"), "\"a\\\"b\"");
        assert_eq!(quoted("a\\b"), "\"a\\\\b\"");
        assert_eq!(quoted("a\nb"), "\"a\\u000ab\"");
    }

    #[test]
    fn numbers_render_as_json() {
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(f64::INFINITY), "null");
        assert!(num(2.5).contains('e'));
    }

    #[test]
    fn frontiers_only_json_is_deterministic_and_stat_free() {
        let a = frontiers_only_json(&sample());
        let b = frontiers_only_json(&sample());
        assert_eq!(a, b, "same space must serialize byte-identically");
        assert!(!a.contains("elapsed_s") && !a.contains("stats"));
        assert!(a.contains("\"model\":\"BERT\""));
    }

    fn warm_sweeper() -> (Sweeper, DesignSpace) {
        let space = DesignSpace::new()
            .with_array_dims([64, 256])
            .with_kinds([ConfigKind::Flat, ConfigKind::FuseMaxBinding])
            .with_workloads([TransformerConfig::bert(), TransformerConfig::xlm()])
            .with_seq_lens([1 << 14])
            .with_buffer_scales([0.5, 1.0]);
        let sweeper = Sweeper::new(ModelParams::default());
        sweeper.sweep(&space);
        (sweeper, space)
    }

    #[test]
    fn cache_json_round_trips_bit_exactly() {
        let (sweeper, _space) = warm_sweeper();
        let json = cache_json(sweeper.cache());
        let parsed = parse_cache_json(&json).expect("parse back");
        assert_eq!(parsed.len(), sweeper.cache().len());
        for entry in &parsed {
            let original = sweeper.evaluate(&entry.point);
            assert_eq!(entry.area_cm2.to_bits(), original.area_cm2.to_bits());
            assert_eq!(entry.latency_s.to_bits(), original.latency_s.to_bits());
            assert_eq!(entry.energy_j.to_bits(), original.energy_j.to_bits());
            assert_eq!(entry.report.cycles.to_bits(), original.report.cycles.to_bits());
            assert_eq!(
                entry.report.energy.total_pj().to_bits(),
                original.report.energy.total_pj().to_bits()
            );
            assert_eq!(entry.report.einsum_2d, original.report.einsum_2d);
            assert_eq!(entry.point, original.point);
        }
        // Serialization is canonical: dumping the parsed entries again is
        // byte-identical.
        let cache = EvalCache::new();
        cache.absorb(parsed.into_iter().map(Arc::new));
        assert_eq!(cache_json(&cache), json);
    }

    #[test]
    fn loaded_cache_makes_a_fresh_sweeper_evaluation_free() {
        let (sweeper, space) = warm_sweeper();
        let dir = std::env::temp_dir().join(format!("fusemax-dse-cache-{}", std::process::id()));
        let path = dir.join("cache.json");
        sweeper.save_cache(&path).expect("save");

        let fresh = Sweeper::new(ModelParams::default());
        let absorbed = fresh.load_cache(&path).expect("load");
        assert_eq!(absorbed, space.len());
        let outcome = fresh.sweep(&space);
        assert_eq!(outcome.stats.evaluated, 0, "regeneration must be free across processes");
        assert_eq!(outcome.stats.cache_hits, space.len());

        // And the frontier JSON built from the loaded cache is identical.
        let original = frontier_json(&sweeper.sweep(&space));
        let reloaded = frontier_json(&outcome);
        let strip = |s: &str| s.split("\"stats\"").next().unwrap().to_string();
        assert_eq!(strip(&original), strip(&reloaded));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mixed_on_and_off_grid_caches_round_trip_bit_identically() {
        // The off-grid persistence contract: a cache holding both grid
        // and off-grid evaluations saves, loads, and re-saves to the
        // exact same bytes, and every reloaded entry keeps its key.
        use crate::space::Candidate;
        let space = DesignSpace::new()
            .with_array_dims([64, 256])
            .with_kinds([ConfigKind::Flat, ConfigKind::FuseMaxBinding])
            .with_workloads([TransformerConfig::bert()])
            .with_seq_lens([1 << 14]);
        let sweeper = Sweeper::new(ModelParams::default());
        sweeper.sweep(&space);
        for (dim, buf) in [(200usize, 9_999_999u64), (67, 1 << 20), (256, (16 << 20) - 1)] {
            let point = space.materialize(&Candidate::OffGrid {
                workload: 0,
                seq_len: 0,
                kind: 1,
                frequency: 0,
                array_dim: dim,
                buffer_bytes: buf,
                frequency_hz: None,
                dram_bw_bytes_per_sec: None,
                policy: 0,
                fleet: 0,
            });
            sweeper.evaluate(&point);
        }
        assert_eq!(sweeper.cache().len(), 4 + 3);

        let first = cache_json(sweeper.cache());
        let reloaded = EvalCache::new();
        let parsed = parse_cache_json(&first).expect("parse mixed cache");
        assert_eq!(reloaded.absorb(parsed.into_iter().map(Arc::new)), 7);
        let second = cache_json(&reloaded);
        assert_eq!(first, second, "save -> load -> save must be bit-identical");

        // Reloaded off-grid entries answer for their original keys.
        let fresh = Sweeper::new(ModelParams::default());
        fresh.cache().absorb(parse_cache_json(&second).unwrap().into_iter().map(Arc::new));
        let outcome = fresh.sweep(&space);
        assert_eq!(outcome.stats.evaluated, 0);
    }

    #[test]
    fn absorb_keeps_existing_entries() {
        let (sweeper, space) = warm_sweeper();
        let json = cache_json(sweeper.cache());
        let parsed = parse_cache_json(&json).unwrap();
        let before: Vec<_> = sweeper.cache().snapshot();
        assert_eq!(sweeper.cache().absorb(parsed.into_iter().map(Arc::new)), 0);
        // Live Arc identities are untouched.
        let outcome = sweeper.sweep(&space);
        for e in &outcome.evaluations {
            assert!(before.iter().any(|b| Arc::ptr_eq(b, e)));
        }
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{\"version\":1",
            "{\"version\":2,\"entries\":[]}",
            "{\"entries\":[]}",
            "[1,2,]",
            "{\"version\":1,\"entries\":[]} trailing",
        ] {
            assert!(parse_cache_json(bad).is_err(), "accepted {bad:?}");
        }
        assert!(parse_cache_json("{\"version\":1,\"entries\":[]}").unwrap().is_empty());
    }

    #[test]
    fn parser_handles_escapes_and_unicode() {
        let doc = super::parse::document("{\"k\":\"a\\\"b\\u0041ü\",\"n\":[1.5e3,-2]}").unwrap();
        assert_eq!(doc.str_field("k").unwrap(), "a\"bAü");
        let arr = doc.arr_field("n").unwrap();
        assert_eq!(arr[0].as_f64(), Some(1500.0));
        assert_eq!(arr[1].as_f64(), Some(-2.0));
    }

    #[test]
    fn parser_combines_surrogate_pairs() {
        // \uD83D\uDE80 is the standard JSON encoding of U+1F680 (🚀).
        let doc = super::parse::document("{\"k\":\"\\uD83D\\uDE80\"}").unwrap();
        assert_eq!(doc.str_field("k").unwrap(), "\u{1F680}");
        // Unpaired halves are rejected, not silently mangled.
        assert!(super::parse::document("{\"k\":\"\\uD83D\"}").is_err());
        assert!(super::parse::document("{\"k\":\"\\uD83Dx\"}").is_err());
        assert!(super::parse::document("{\"k\":\"\\uDE80\"}").is_err());
    }

    #[test]
    fn non_finite_evaluations_are_not_saved() {
        // A zero-frequency architecture produces infinite latency; the
        // writer must drop it so a file that saves always loads.
        let sweeper = Sweeper::new(ModelParams::default());
        let space = DesignSpace::new()
            .with_array_dims([64])
            .with_workloads([TransformerConfig::bert()])
            .with_frequencies_hz([Some(0.0)]);
        let outcome = sweeper.sweep(&space);
        assert!(outcome.evaluations[0].latency_s.is_infinite());
        let json = cache_json(sweeper.cache());
        assert!(!json.contains("null"));
        assert!(parse_cache_json(&json).unwrap().is_empty());
    }

    #[test]
    fn save_leaves_no_temp_file_behind() {
        let (sweeper, _space) = warm_sweeper();
        let dir = std::env::temp_dir().join(format!("fusemax-dse-atomic-{}", std::process::id()));
        let path = dir.join("cache.json");
        sweeper.save_cache(&path).expect("save");
        assert!(path.exists());
        // Only the renamed cache remains — no .tmp.<pid> stragglers.
        let entries: Vec<_> = std::fs::read_dir(&dir).unwrap().collect();
        assert_eq!(entries.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
