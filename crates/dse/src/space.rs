//! The design space: the cartesian product of architecture and workload
//! knobs, enumerated into concrete [`DesignPoint`]s.

use fusemax_arch::ArchConfig;
use fusemax_model::ConfigKind;
use fusemax_workloads::TransformerConfig;
use std::fmt;

/// A design point addressed by per-axis indices, in enumeration order:
/// `[workload, seq_len, kind, array_dim, frequency, buffer_scale,
/// scheduler_policy, fleet]`.
///
/// This is the genome representation of the guided search strategies in
/// [`crate::search`]: crossover and mutation act on these indices, and
/// [`DesignSpace::point_at`] materializes the concrete [`DesignPoint`].
pub type AxisIndex = [usize; 8];

/// How the serving scheduler orders its waiting queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum QueueOrder {
    /// First come, first served — arrival order, the classic router.
    #[default]
    Fcfs,
    /// Shortest prompt first: short interactive requests jump long
    /// batch-style prompts (ties break by arrival order, so the order is
    /// still deterministic).
    ShortestPromptFirst,
}

impl QueueOrder {
    /// The stable lowercase token used in JSON persistence, CLI flags,
    /// and report labels (`"fcfs"` / `"spf"`).
    pub fn token(self) -> &'static str {
        match self {
            QueueOrder::Fcfs => "fcfs",
            QueueOrder::ShortestPromptFirst => "spf",
        }
    }

    /// Parses the [`QueueOrder::token`] form (case-insensitive; accepts
    /// the long names too).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "fcfs" => Some(QueueOrder::Fcfs),
            "spf" | "shortest" | "shortest-prompt-first" => Some(QueueOrder::ShortestPromptFirst),
            _ => None,
        }
    }
}

/// Why a [`SchedulerPolicy`] or [`FleetSpec`] is not a valid
/// configuration. Returned by the `validate` constructors so callers
/// (builders, CLI flag parsing) can reject bad specs with a typed,
/// printable reason instead of a panic deep inside a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecError {
    /// `chunk_tokens == Some(0)`: a prefill chunk must hold ≥ 1 token.
    EmptyPrefillChunk,
    /// The waiting/served admission ratio is negative, NaN, or infinite.
    BadAdmissionRatio,
    /// A replicated fleet with zero replicas.
    NoReplicas,
    /// A disaggregated fleet with zero prefill or zero decode chips.
    EmptyDisaggregatedStage,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::EmptyPrefillChunk => {
                write!(f, "prefill chunk must hold at least one token")
            }
            SpecError::BadAdmissionRatio => {
                write!(f, "waiting/served admission ratio must be finite and non-negative")
            }
            SpecError::NoReplicas => write!(f, "a fleet needs at least one replica"),
            SpecError::EmptyDisaggregatedStage => {
                write!(f, "both disaggregated stages need at least one chip")
            }
        }
    }
}

impl std::error::Error for SpecError {}

/// The serving-scheduler configuration co-searched with the hardware: how
/// prefill is chunked, how eagerly the waiting queue is drained, and in
/// what order.
///
/// [`SchedulerPolicy::unbounded`] (the [`Default`]) reproduces the
/// pre-policy engine bit-for-bit: whole-prompt prefill, FCFS, admission
/// limited only by K/V residency. It is the sole value on the default
/// [`DesignSpace`] policy axis, so existing sweeps, caches, and golden
/// traces are unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SchedulerPolicy {
    /// Per-iteration prefill token budget. `None` is the unbounded
    /// whole-prompt legacy behavior; `Some(c)` splits every prompt into
    /// `ceil(prompt / c)` chunks interleaved with decode iterations, and
    /// caps the *total* prefill tokens any iteration schedules at `c`.
    pub chunk_tokens: Option<usize>,
    /// Waiting/served admission ratio (the TGI `waiting_served_ratio`
    /// shape): with `r > 0`, a non-empty engine only admits from the
    /// waiting queue once `waiting >= r × resident`, batching admissions
    /// instead of trickling them. `0.0` admits greedily (legacy).
    pub waiting_served_ratio: f64,
    /// Waiting-queue discipline.
    pub queue_order: QueueOrder,
}

impl SchedulerPolicy {
    /// The legacy scheduler: whole-prompt prefill, greedy FCFS admission.
    pub fn unbounded() -> Self {
        SchedulerPolicy::default()
    }

    /// A chunked-prefill FCFS policy with greedy admission.
    pub fn chunked(chunk_tokens: usize) -> Self {
        assert!(chunk_tokens > 0, "prefill chunk must hold at least one token");
        SchedulerPolicy { chunk_tokens: Some(chunk_tokens), ..SchedulerPolicy::default() }
    }

    /// Replaces the waiting/served admission ratio.
    pub fn with_waiting_served_ratio(mut self, ratio: f64) -> Self {
        assert!(ratio >= 0.0 && ratio.is_finite(), "admission ratio must be non-negative");
        self.waiting_served_ratio = ratio;
        self
    }

    /// Replaces the queue discipline.
    pub fn with_queue_order(mut self, order: QueueOrder) -> Self {
        self.queue_order = order;
        self
    }

    /// `true` when this policy is the legacy engine
    /// ([`SchedulerPolicy::unbounded`]).
    pub fn is_unbounded(&self) -> bool {
        *self == SchedulerPolicy::unbounded()
    }

    /// Checks the policy's invariants, returning the first violation: a
    /// chunked policy must budget ≥ 1 prefill token per iteration, and
    /// the admission ratio must be finite and non-negative. The asserting
    /// constructors ([`SchedulerPolicy::chunked`],
    /// [`SchedulerPolicy::with_waiting_served_ratio`]) uphold the same
    /// invariants; `validate` is the non-panicking form for specs built
    /// field-by-field (CLI flags, JSON).
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.chunk_tokens == Some(0) {
            return Err(SpecError::EmptyPrefillChunk);
        }
        if !self.waiting_served_ratio.is_finite() || self.waiting_served_ratio < 0.0 {
            return Err(SpecError::BadAdmissionRatio);
        }
        Ok(())
    }
}

impl fmt::Display for SchedulerPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.chunk_tokens {
            None => write!(f, "whole-prompt")?,
            Some(c) => write!(f, "chunk{c}")?,
        }
        write!(f, "/{}", self.queue_order.token())?;
        if self.waiting_served_ratio > 0.0 {
            write!(f, "/r{:.2}", self.waiting_served_ratio)?;
        }
        Ok(())
    }
}

/// How a fleet router assigns arriving requests to replicas. Every policy
/// is a deterministic (seeded where randomness is involved) function of
/// the trace, so fleet replays are bit-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RouterPolicy {
    /// Request `id mod N` — the classic stateless spray.
    #[default]
    RoundRobin,
    /// Greedy least-estimated-load: each request goes to the replica with
    /// the smallest accumulated estimated service seconds (ties break by
    /// lowest replica index).
    LeastLoaded,
    /// Length-class affinity: prompts are binned by length rank and each
    /// bin sticks to one replica, so short interactive requests never
    /// queue behind long batch prompts.
    ShortestPrompt,
}

impl RouterPolicy {
    /// The stable lowercase token used in JSON persistence, CLI flags,
    /// and report labels (`"rr"` / `"ll"` / `"sp"`).
    pub fn token(self) -> &'static str {
        match self {
            RouterPolicy::RoundRobin => "rr",
            RouterPolicy::LeastLoaded => "ll",
            RouterPolicy::ShortestPrompt => "sp",
        }
    }

    /// Parses the [`RouterPolicy::token`] form (case-insensitive; accepts
    /// the long names too).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "rr" | "round-robin" | "roundrobin" => Some(RouterPolicy::RoundRobin),
            "ll" | "least-loaded" | "leastloaded" => Some(RouterPolicy::LeastLoaded),
            "sp" | "shortest-prompt" | "shortestprompt" => Some(RouterPolicy::ShortestPrompt),
            _ => None,
        }
    }
}

/// The fleet topology a design point ships as: how many identical chips
/// serve the trace and how requests are routed among them, or a
/// disaggregated split dedicating prefill chips that feed decode chips.
///
/// [`FleetSpec::single`] (the [`Default`]) is one chip serving the whole
/// trace — the pre-fleet engine bit-for-bit. It is the sole value on the
/// default [`DesignSpace`] fleet axis, so existing sweeps, caches, and
/// golden traces are unchanged. The fixed-sequence-length objectives
/// model one chip regardless; the fleet only multiplies **area** (total
/// silicon = per-chip area × [`FleetSpec::chips`]) and drives
/// `fusemax_serve::Fleet` when the point is served.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FleetSpec {
    /// Number of identical data-parallel replicas (≥ 1). Ignored when
    /// `prefill_decode` is set.
    pub replicas: usize,
    /// How the router shards the trace across replicas.
    pub router: RouterPolicy,
    /// `Some((p, d))` dedicates `p` prefill chips feeding `d` decode
    /// chips, with each request's K/V state transferred between stages at
    /// DRAM bandwidth. `None` is the replicated (or single-chip)
    /// topology.
    pub prefill_decode: Option<(usize, usize)>,
}

impl Default for FleetSpec {
    fn default() -> Self {
        FleetSpec::single()
    }
}

impl FleetSpec {
    /// One chip serving the whole trace — the legacy topology.
    pub fn single() -> Self {
        FleetSpec { replicas: 1, router: RouterPolicy::RoundRobin, prefill_decode: None }
    }

    /// `n` identical data-parallel replicas behind a round-robin router.
    pub fn replicated(n: usize) -> Self {
        assert!(n > 0, "a fleet needs at least one replica");
        FleetSpec { replicas: n, router: RouterPolicy::RoundRobin, prefill_decode: None }
    }

    /// A disaggregated fleet: `prefill` chips run prompt processing and
    /// stream each request's K/V state to one of `decode` chips.
    pub fn disaggregated(prefill: usize, decode: usize) -> Self {
        assert!(prefill > 0 && decode > 0, "both disaggregated stages need at least one chip");
        FleetSpec {
            replicas: prefill + decode,
            router: RouterPolicy::RoundRobin,
            prefill_decode: Some((prefill, decode)),
        }
    }

    /// Replaces the router policy.
    pub fn with_router(mut self, router: RouterPolicy) -> Self {
        self.router = router;
        self
    }

    /// Total chips in the fleet — the factor on per-chip area.
    pub fn chips(&self) -> usize {
        match self.prefill_decode {
            Some((p, d)) => p + d,
            None => self.replicas,
        }
    }

    /// `true` when this is the legacy single-chip topology.
    pub fn is_single(&self) -> bool {
        *self == FleetSpec::single()
    }

    /// Checks the topology's invariants, returning the first violation:
    /// a replicated fleet needs ≥ 1 replica, and a disaggregated fleet
    /// needs ≥ 1 chip in each stage. The asserting constructors
    /// ([`FleetSpec::replicated`], [`FleetSpec::disaggregated`]) uphold
    /// the same invariants; `validate` is the non-panicking form for
    /// specs built field-by-field (CLI flags, JSON).
    pub fn validate(&self) -> Result<(), SpecError> {
        match self.prefill_decode {
            Some((p, d)) if p == 0 || d == 0 => Err(SpecError::EmptyDisaggregatedStage),
            Some(_) => Ok(()),
            None if self.replicas == 0 => Err(SpecError::NoReplicas),
            None => Ok(()),
        }
    }
}

impl fmt::Display for FleetSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.prefill_decode {
            Some((p, d)) => write!(f, "{p}p+{d}d/{}", self.router.token()),
            None if self.replicas == 1 => write!(f, "1x"),
            None => write!(f, "{}x/{}", self.replicas, self.router.token()),
        }
    }
}

/// One fully-specified candidate design: an architecture, the dataflow
/// configuration running on it, and the workload it is evaluated against.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignPoint {
    /// The concrete accelerator instance.
    pub arch: ArchConfig,
    /// Which of the paper's configurations runs on it.
    pub kind: ConfigKind,
    /// The transformer model evaluated.
    pub workload: TransformerConfig,
    /// Sequence length in tokens.
    pub seq_len: usize,
    /// The `n` of the `n×n` array this point was scaled from (kept for
    /// reports and the Fig 12 x-axis grouping).
    pub array_dim: usize,
    /// The serving-scheduler policy co-designed with the hardware
    /// (ignored by the fixed-sequence-length objectives; it drives
    /// `fusemax_serve::ServeSim` when the point is served).
    pub policy: SchedulerPolicy,
    /// The fleet topology the design ships as: multiplies
    /// [`crate::Evaluation::area_cm2`] by [`FleetSpec::chips`] and drives
    /// `fusemax_serve::Fleet` when the point is served. The default
    /// single-chip fleet changes nothing.
    pub fleet: FleetSpec,
}

/// How a candidate design addresses its [`DesignSpace`]: by per-axis grid
/// indices (the PR-2 genome), or **off-grid** — the categorical axes
/// (workload, sequence length, kind, frequency) still index the grid, but
/// the hardware knobs are concrete values the grid need not contain: any
/// positive array dimension and any global-buffer capacity in bytes.
///
/// Off-grid candidates are what the continuous search strategies
/// ([`crate::search::SnapPolicy::Continuous`]) evaluate: the analytical
/// model accepts any [`ArchConfig`], so nothing forces a walker onto the
/// paper's power-of-two grid. [`DesignSpace::materialize`] turns either
/// variant into a concrete [`DesignPoint`]; the [`crate::PointKey`] of
/// that point is derived from the *materialized* architecture
/// field-by-field, so off-grid entries get canonical bit-exact cache keys
/// and round-trip through the cache's JSON persistence exactly like
/// on-grid ones.
#[derive(Debug, Clone, PartialEq)]
pub enum Candidate {
    /// On-grid: per-axis indices in [`AxisIndex`] order.
    Grid(AxisIndex),
    /// Off-grid: concrete hardware knobs, no array-dim / buffer axis
    /// index.
    OffGrid {
        /// Workload axis index (categorical — always on-grid).
        workload: usize,
        /// Sequence-length axis index.
        seq_len: usize,
        /// Configuration axis index.
        kind: usize,
        /// Frequency axis index.
        frequency: usize,
        /// Concrete array dimension `n` (an `n×n` 2D array with `n` 1D
        /// PEs) — any positive integer, not just the grid's values.
        array_dim: usize,
        /// Concrete global-buffer capacity in bytes, replacing the
        /// dimension-scaled default outright.
        buffer_bytes: u64,
        /// Concrete clock override in hertz. `None` keeps whatever the
        /// indexed `frequency` axis value yields; `Some(hz)` frees the
        /// clock from the grid entirely, letting continuous runs trade
        /// clock rate against memory bandwidth.
        frequency_hz: Option<f64>,
        /// Concrete off-chip bandwidth override in bytes per second
        /// (`None` keeps the family's stock bandwidth).
        dram_bw_bytes_per_sec: Option<f64>,
        /// Scheduler-policy axis index (categorical — always on-grid,
        /// like workload and kind).
        policy: usize,
        /// Fleet-topology axis index (categorical — always on-grid, like
        /// the scheduler policy).
        fleet: usize,
    },
}

/// Builds the architecture a configuration family uses at array dimension
/// `n`: the FuseMax-scaled chip for the FuseMax kinds, a FLAT-cloud chip
/// scaled the same way (array `n×n`, `n` 1D PEs, proportionally scaled
/// 22 MB-class buffer) for the baselines — mirroring how
/// [`ConfigKind::default_arch`] splits the families at cloud scale.
pub fn arch_for(kind: ConfigKind, n: usize) -> ArchConfig {
    assert!(n > 0, "array dimension must be positive");
    match kind {
        ConfigKind::FuseMaxArch | ConfigKind::FuseMaxBinding => ArchConfig::fusemax_scaled(n),
        ConfigKind::Unfused | ConfigKind::Flat | ConfigKind::FuseMaxCascade => {
            let base = ArchConfig::flat_cloud();
            let scale = (n as f64 / 256.0).powi(2);
            ArchConfig {
                name: format!("flat-{n}x{n}"),
                array_rows: n,
                array_cols: n,
                vector_pes: n,
                global_buffer_bytes: ((22_u64 << 20) as f64 * scale).ceil() as u64,
                ..base
            }
        }
    }
}

/// A declarative description of the space to sweep.
///
/// Knobs multiply: `array_dims × kinds × workloads × seq_lens ×
/// frequencies × buffer_scales × policies` design points. The builder
/// starts from the paper's Fig 12 defaults (the six array dimensions,
/// `+Binding`, all four models, 256K tokens, stock frequency and buffer,
/// the legacy whole-prompt scheduler) and every `with_*` method replaces
/// one axis.
///
/// # Example
///
/// ```
/// use fusemax_dse::DesignSpace;
/// use fusemax_model::ConfigKind;
///
/// let space = DesignSpace::new()
///     .with_array_dims([64, 128, 256])
///     .with_kinds([ConfigKind::Flat, ConfigKind::FuseMaxBinding])
///     .with_seq_lens([1 << 16]);
/// // 3 dims × 2 kinds × 4 models × 1 length = 24 points.
/// assert_eq!(space.len(), 24);
/// ```
#[derive(Debug, Clone)]
pub struct DesignSpace {
    array_dims: Vec<usize>,
    kinds: Vec<ConfigKind>,
    workloads: Vec<TransformerConfig>,
    seq_lens: Vec<usize>,
    frequencies_hz: Vec<Option<f64>>,
    buffer_scales: Vec<f64>,
    policies: Vec<SchedulerPolicy>,
    fleets: Vec<FleetSpec>,
}

impl Default for DesignSpace {
    fn default() -> Self {
        Self::new()
    }
}

impl DesignSpace {
    /// The Fig 12 default space: `ARRAY_DIMS × {+Binding} × all models ×
    /// {256K}` at stock frequency and buffer size.
    pub fn new() -> Self {
        DesignSpace {
            array_dims: crate::ARRAY_DIMS.to_vec(),
            kinds: vec![ConfigKind::FuseMaxBinding],
            workloads: TransformerConfig::all(),
            seq_lens: vec![1 << 18],
            frequencies_hz: vec![None],
            buffer_scales: vec![1.0],
            policies: vec![SchedulerPolicy::unbounded()],
            fleets: vec![FleetSpec::single()],
        }
    }

    /// Replaces the array-dimension axis (`n` for an `n×n` 2D array with
    /// `n` 1D PEs and a proportionally scaled buffer).
    pub fn with_array_dims(mut self, dims: impl IntoIterator<Item = usize>) -> Self {
        self.array_dims = dims.into_iter().collect();
        self
    }

    /// Replaces the configuration axis.
    pub fn with_kinds(mut self, kinds: impl IntoIterator<Item = ConfigKind>) -> Self {
        self.kinds = kinds.into_iter().collect();
        self
    }

    /// Replaces the workload axis.
    pub fn with_workloads(
        mut self,
        workloads: impl IntoIterator<Item = TransformerConfig>,
    ) -> Self {
        self.workloads = workloads.into_iter().collect();
        self
    }

    /// Replaces the sequence-length axis.
    pub fn with_seq_lens(mut self, seq_lens: impl IntoIterator<Item = usize>) -> Self {
        self.seq_lens = seq_lens.into_iter().collect();
        self
    }

    /// Replaces the clock-frequency axis (`None` keeps each family's stock
    /// clock; `Some(hz)` overrides it).
    pub fn with_frequencies_hz(mut self, freqs: impl IntoIterator<Item = Option<f64>>) -> Self {
        self.frequencies_hz = freqs.into_iter().collect();
        self
    }

    /// Replaces the global-buffer capacity axis (multipliers on each
    /// family's dimension-scaled buffer).
    pub fn with_buffer_scales(mut self, scales: impl IntoIterator<Item = f64>) -> Self {
        self.buffer_scales = scales.into_iter().collect();
        self
    }

    /// Replaces the serving-scheduler policy axis. The default is the
    /// singleton [`SchedulerPolicy::unbounded`] axis, which changes no
    /// existing results; adding policies lets `ServeObjective`-ranked
    /// searches co-design the scheduler with the hardware.
    pub fn with_policies(mut self, policies: impl IntoIterator<Item = SchedulerPolicy>) -> Self {
        self.policies = policies.into_iter().collect();
        self
    }

    /// Replaces the fleet-topology axis. The default is the singleton
    /// [`FleetSpec::single`] axis, which changes no existing results;
    /// adding fleets lets in-loop serving objectives search replica count
    /// and disaggregation ratio next to the hardware knobs.
    pub fn with_fleets(mut self, fleets: impl IntoIterator<Item = FleetSpec>) -> Self {
        self.fleets = fleets.into_iter().collect();
        self
    }

    /// The array-dimension axis values.
    pub fn array_dims(&self) -> &[usize] {
        &self.array_dims
    }

    /// The configuration axis values.
    pub fn kinds(&self) -> &[ConfigKind] {
        &self.kinds
    }

    /// The workload axis values.
    pub fn workloads(&self) -> &[TransformerConfig] {
        &self.workloads
    }

    /// The sequence-length axis values.
    pub fn seq_lens(&self) -> &[usize] {
        &self.seq_lens
    }

    /// The clock-frequency axis values.
    pub fn frequencies_hz(&self) -> &[Option<f64>] {
        &self.frequencies_hz
    }

    /// The buffer-scale axis values.
    pub fn buffer_scales(&self) -> &[f64] {
        &self.buffer_scales
    }

    /// The scheduler-policy axis values.
    pub fn policies(&self) -> &[SchedulerPolicy] {
        &self.policies
    }

    /// The fleet-topology axis values.
    pub fn fleets(&self) -> &[FleetSpec] {
        &self.fleets
    }

    /// Per-axis cardinalities in [`AxisIndex`] order: workloads, sequence
    /// lengths, kinds, array dimensions, frequencies, buffer scales,
    /// scheduler policies, fleets.
    pub fn axis_lens(&self) -> AxisIndex {
        [
            self.workloads.len(),
            self.seq_lens.len(),
            self.kinds.len(),
            self.array_dims.len(),
            self.frequencies_hz.len(),
            self.buffer_scales.len(),
            self.policies.len(),
            self.fleets.len(),
        ]
    }

    /// Materializes the design point addressed by per-axis indices — the
    /// random-access counterpart of [`DesignSpace::points`] the guided
    /// search strategies use (a genome *is* an [`AxisIndex`]).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range for its axis.
    pub fn point_at(&self, index: AxisIndex) -> DesignPoint {
        let [wi, si, ki, di, fi, bi, pi, gi] = index;
        let workload = &self.workloads[wi];
        let seq_len = self.seq_lens[si];
        let kind = self.kinds[ki];
        let n = self.array_dims[di];
        let freq = self.frequencies_hz[fi];
        let buf_scale = self.buffer_scales[bi];
        let policy = self.policies[pi];
        let fleet = self.fleets[gi];

        let mut arch = arch_for(kind, n);
        if let Some(hz) = freq {
            arch.frequency_hz = hz;
            arch.name = format!("{}@{:.0}MHz", arch.name, hz / 1e6);
        }
        if buf_scale != 1.0 {
            arch.global_buffer_bytes = (arch.global_buffer_bytes as f64 * buf_scale).ceil() as u64;
            arch.name = format!("{}-buf{buf_scale:.2}x", arch.name);
        }
        DesignPoint { arch, kind, workload: workload.clone(), seq_len, array_dim: n, policy, fleet }
    }

    /// Materializes either [`Candidate`] variant into a concrete
    /// [`DesignPoint`]: grid candidates defer to [`DesignSpace::point_at`];
    /// off-grid candidates build the family architecture at their concrete
    /// array dimension ([`arch_for`]), apply the indexed frequency
    /// override, and replace the global buffer with their explicit byte
    /// count.
    ///
    /// # Panics
    ///
    /// Panics if any categorical index is out of range for its axis, or if
    /// an off-grid candidate's `array_dim` or `buffer_bytes` is zero.
    pub fn materialize(&self, candidate: &Candidate) -> DesignPoint {
        match *candidate {
            Candidate::Grid(index) => self.point_at(index),
            Candidate::OffGrid {
                workload,
                seq_len,
                kind,
                frequency,
                array_dim,
                buffer_bytes,
                frequency_hz,
                dram_bw_bytes_per_sec,
                policy,
                fleet,
            } => {
                assert!(buffer_bytes > 0, "off-grid buffer must hold at least one byte");
                let kind = self.kinds[kind];
                let freq = self.frequencies_hz[frequency];
                let mut arch = arch_for(kind, array_dim);
                // A concrete clock override supersedes the indexed axis
                // value outright — applying both would stack two clock
                // suffixes onto the name.
                if let (Some(hz), None) = (freq, frequency_hz) {
                    arch.frequency_hz = hz;
                    arch.name = format!("{}@{:.0}MHz", arch.name, hz / 1e6);
                }
                if let Some(hz) = frequency_hz {
                    assert!(hz > 0.0 && hz.is_finite(), "off-grid clock must be positive");
                    if hz != arch.frequency_hz {
                        arch.frequency_hz = hz;
                        arch.name = format!("{}@{:.1}MHz", arch.name, hz / 1e6);
                    }
                }
                if let Some(bw) = dram_bw_bytes_per_sec {
                    assert!(bw > 0.0 && bw.is_finite(), "off-grid bandwidth must be positive");
                    if bw != arch.dram_bw_bytes_per_sec {
                        arch.dram_bw_bytes_per_sec = bw;
                        arch.name = format!("{}-bw{:.1}GBs", arch.name, bw / 1e9);
                    }
                }
                if buffer_bytes != arch.global_buffer_bytes {
                    arch.name = format!("{}-gb{buffer_bytes}", arch.name);
                    arch.global_buffer_bytes = buffer_bytes;
                }
                DesignPoint {
                    arch,
                    kind,
                    workload: self.workloads[workload].clone(),
                    seq_len: self.seq_lens[seq_len],
                    array_dim,
                    policy: self.policies[policy],
                    fleet: self.fleets[fleet],
                }
            }
        }
    }

    /// `true` when some grid index materializes a point with the same
    /// model-visible identity as `point` (architecture fields, kind,
    /// workload, sequence length — names are ignored, exactly as the
    /// evaluation-cache key ignores them). Off-grid points found by a
    /// [`crate::search::SnapPolicy::Continuous`] run return `false` —
    /// they are designs the grid cannot express.
    pub fn is_on_grid(&self, point: &DesignPoint) -> bool {
        let key = crate::cache::PointKey::of(point);
        let [nw, ns, nk, nd, nf, nb, np, ng] = self.axis_lens();
        for wi in 0..nw {
            if self.workloads[wi].name != point.workload.name {
                continue;
            }
            for si in 0..ns {
                if self.seq_lens[si] != point.seq_len {
                    continue;
                }
                for ki in 0..nk {
                    for di in 0..nd {
                        for fi in 0..nf {
                            for bi in 0..nb {
                                for pi in 0..np {
                                    for gi in 0..ng {
                                        let grid = self.point_at([wi, si, ki, di, fi, bi, pi, gi]);
                                        if crate::cache::PointKey::of(&grid) == key {
                                            return true;
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        false
    }

    /// Number of candidate points the space enumerates.
    pub fn len(&self) -> usize {
        self.array_dims.len()
            * self.kinds.len()
            * self.workloads.len()
            * self.seq_lens.len()
            * self.frequencies_hz.len()
            * self.buffer_scales.len()
            * self.policies.len()
            * self.fleets.len()
    }

    /// `true` when any axis is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enumerates every point, workload-major then sequence length, kind,
    /// array dimension, frequency, buffer scale, scheduler policy, fleet
    /// — a stable order the cache and the serial/parallel equivalence
    /// tests rely on. Each point is exactly what
    /// [`DesignSpace::point_at`] returns for its index.
    pub fn points(&self) -> Vec<DesignPoint> {
        let mut out = Vec::with_capacity(self.len());
        let [nw, ns, nk, nd, nf, nb, np, ng] = self.axis_lens();
        for wi in 0..nw {
            for si in 0..ns {
                for ki in 0..nk {
                    for di in 0..nd {
                        for fi in 0..nf {
                            for bi in 0..nb {
                                for pi in 0..np {
                                    for gi in 0..ng {
                                        out.push(self.point_at([wi, si, ki, di, fi, bi, pi, gi]));
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusemax_arch::PeKind;

    #[test]
    fn default_space_is_the_fig12_sweep() {
        let space = DesignSpace::new();
        assert_eq!(space.len(), 6 * 4);
        let pts = space.points();
        assert_eq!(pts.len(), 24);
        assert!(pts.iter().all(|p| p.kind == ConfigKind::FuseMaxBinding));
        assert!(pts.iter().all(|p| p.seq_len == 1 << 18));
    }

    #[test]
    fn arch_for_matches_the_family_split() {
        let fm = arch_for(ConfigKind::FuseMaxBinding, 256);
        assert_eq!(fm, ArchConfig::fusemax_scaled(256));
        assert_eq!(fm.pe_2d, PeKind::FuseMaxPe);

        let flat = arch_for(ConfigKind::Flat, 256);
        assert_eq!(flat.pe_2d, PeKind::FlatMacc);
        assert_eq!(flat.global_buffer_bytes, 22 << 20);
        let small = arch_for(ConfigKind::Flat, 128);
        assert_eq!(small.vector_pes, 128);
        assert_eq!(small.global_buffer_bytes, (22 << 20) / 4);
    }

    #[test]
    fn knob_axes_multiply() {
        let space = DesignSpace::new()
            .with_array_dims([32, 64])
            .with_kinds(ConfigKind::all())
            .with_seq_lens([1 << 12, 1 << 14, 1 << 16])
            .with_frequencies_hz([None, Some(470e6)])
            .with_buffer_scales([0.5, 1.0]);
        assert_eq!(space.len(), 2 * 5 * 4 * 3 * 2 * 2);
        assert_eq!(space.points().len(), space.len());
    }

    #[test]
    fn frequency_and_buffer_knobs_apply() {
        let space = DesignSpace::new()
            .with_array_dims([256])
            .with_workloads([TransformerConfig::bert()])
            .with_frequencies_hz([Some(470e6)])
            .with_buffer_scales([0.5]);
        let pts = space.points();
        assert_eq!(pts.len(), 1);
        assert_eq!(pts[0].arch.frequency_hz, 470e6);
        assert_eq!(pts[0].arch.global_buffer_bytes, 8 << 20);
        assert!(pts[0].arch.name.contains("470MHz"));
    }

    #[test]
    fn enumeration_order_is_stable() {
        let space = DesignSpace::new();
        assert_eq!(space.points(), space.points());
    }

    #[test]
    fn point_at_agrees_with_enumeration() {
        let space = DesignSpace::new()
            .with_array_dims([32, 128])
            .with_kinds([ConfigKind::Flat, ConfigKind::FuseMaxBinding])
            .with_seq_lens([1 << 12, 1 << 16])
            .with_frequencies_hz([None, Some(470e6)])
            .with_buffer_scales([0.5, 1.0]);
        let pts = space.points();
        let [nw, ns, nk, nd, nf, nb, np, ng] = space.axis_lens();
        let mut i = 0;
        for wi in 0..nw {
            for si in 0..ns {
                for ki in 0..nk {
                    for di in 0..nd {
                        for fi in 0..nf {
                            for bi in 0..nb {
                                for pi in 0..np {
                                    for gi in 0..ng {
                                        assert_eq!(
                                            space.point_at([wi, si, ki, di, fi, bi, pi, gi]),
                                            pts[i]
                                        );
                                        i += 1;
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        assert_eq!(i, space.len());
    }

    #[test]
    fn axis_accessors_expose_the_knobs() {
        let space = DesignSpace::new().with_array_dims([64]).with_buffer_scales([2.0]);
        assert_eq!(space.array_dims(), &[64]);
        assert_eq!(space.buffer_scales(), &[2.0]);
        assert_eq!(space.kinds(), &[ConfigKind::FuseMaxBinding]);
        assert_eq!(space.seq_lens(), &[1 << 18]);
        assert_eq!(space.frequencies_hz(), &[None]);
        assert_eq!(space.workloads().len(), 4);
        assert_eq!(space.policies(), &[SchedulerPolicy::unbounded()]);
        assert_eq!(space.fleets(), &[FleetSpec::single()]);
        assert_eq!(space.axis_lens(), [4, 1, 1, 1, 1, 1, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn point_at_rejects_out_of_range_indices() {
        let _ = DesignSpace::new().point_at([0, 0, 0, 99, 0, 0, 0, 0]);
    }

    #[test]
    fn fleet_axis_multiplies_and_materializes() {
        let space = DesignSpace::new().with_array_dims([128]).with_fleets([
            FleetSpec::single(),
            FleetSpec::replicated(4).with_router(RouterPolicy::LeastLoaded),
            FleetSpec::disaggregated(1, 3),
        ]);
        assert_eq!(space.len(), 4 * 3);
        let pts = space.points();
        assert_eq!(pts[0].fleet, FleetSpec::single());
        assert_eq!(pts[1].fleet.replicas, 4);
        assert_eq!(pts[1].fleet.router, RouterPolicy::LeastLoaded);
        assert_eq!(pts[2].fleet.prefill_decode, Some((1, 3)));
        assert_eq!(pts[2].fleet.chips(), 4);
        assert!(pts[0].fleet.is_single() && !pts[1].fleet.is_single());
    }

    #[test]
    fn fleet_spec_displays_compactly() {
        assert_eq!(FleetSpec::single().to_string(), "1x");
        assert_eq!(FleetSpec::replicated(4).to_string(), "4x/rr");
        assert_eq!(
            FleetSpec::replicated(2).with_router(RouterPolicy::ShortestPrompt).to_string(),
            "2x/sp"
        );
        assert_eq!(FleetSpec::disaggregated(2, 6).to_string(), "2p+6d/rr");
    }

    #[test]
    fn spec_validation_rejects_each_degenerate_shape() {
        // Scheduler: zero-token chunk.
        let zero_chunk = SchedulerPolicy { chunk_tokens: Some(0), ..SchedulerPolicy::default() };
        assert_eq!(zero_chunk.validate(), Err(SpecError::EmptyPrefillChunk));
        // Scheduler: non-finite / negative admission ratio.
        for bad in [f64::NAN, f64::INFINITY, -0.5] {
            let policy =
                SchedulerPolicy { waiting_served_ratio: bad, ..SchedulerPolicy::default() };
            assert_eq!(policy.validate(), Err(SpecError::BadAdmissionRatio), "{bad}");
        }
        // Fleet: zero replicas.
        let empty = FleetSpec { replicas: 0, ..FleetSpec::single() };
        assert_eq!(empty.validate(), Err(SpecError::NoReplicas));
        // Fleet: an empty disaggregated stage (either side).
        for pd in [(0, 2), (2, 0)] {
            let fleet = FleetSpec { prefill_decode: Some(pd), ..FleetSpec::single() };
            assert_eq!(fleet.validate(), Err(SpecError::EmptyDisaggregatedStage), "{pd:?}");
        }
        // Every constructor-built spec validates clean.
        assert_eq!(SchedulerPolicy::unbounded().validate(), Ok(()));
        assert_eq!(SchedulerPolicy::chunked(256).with_waiting_served_ratio(1.2).validate(), Ok(()));
        assert_eq!(FleetSpec::single().validate(), Ok(()));
        assert_eq!(FleetSpec::replicated(4).validate(), Ok(()));
        assert_eq!(FleetSpec::disaggregated(1, 3).validate(), Ok(()));
        // The errors render human-readable reasons for CLI surfaces.
        assert_eq!(SpecError::NoReplicas.to_string(), "a fleet needs at least one replica");
    }

    #[test]
    fn router_tokens_round_trip() {
        for router in
            [RouterPolicy::RoundRobin, RouterPolicy::LeastLoaded, RouterPolicy::ShortestPrompt]
        {
            assert_eq!(RouterPolicy::parse(router.token()), Some(router));
        }
        assert_eq!(RouterPolicy::parse("least-loaded"), Some(RouterPolicy::LeastLoaded));
        assert_eq!(RouterPolicy::parse("bogus"), None);
    }

    #[test]
    fn empty_axis_empties_the_space() {
        let space = DesignSpace::new().with_kinds([]);
        assert!(space.is_empty());
        assert!(space.points().is_empty());
    }

    #[test]
    fn grid_candidates_materialize_exactly_like_point_at() {
        let space = DesignSpace::new()
            .with_array_dims([64, 256])
            .with_kinds([ConfigKind::Flat, ConfigKind::FuseMaxBinding])
            .with_frequencies_hz([None, Some(470e6)])
            .with_buffer_scales([0.5, 1.0]);
        let index = [1, 0, 1, 1, 1, 0, 0, 0];
        assert_eq!(space.materialize(&Candidate::Grid(index)), space.point_at(index));
    }

    #[test]
    fn off_grid_candidates_carry_their_concrete_knobs() {
        let space = DesignSpace::new().with_kinds([ConfigKind::FuseMaxBinding]);
        let point = space.materialize(&Candidate::OffGrid {
            workload: 2,
            seq_len: 0,
            kind: 0,
            frequency: 0,
            array_dim: 200,
            buffer_bytes: 12_345_678,
            frequency_hz: None,
            dram_bw_bytes_per_sec: None,
            policy: 0,
            fleet: 0,
        });
        assert_eq!(point.array_dim, 200);
        assert_eq!(point.arch.array_rows, 200);
        assert_eq!(point.arch.vector_pes, 200);
        assert_eq!(point.arch.global_buffer_bytes, 12_345_678);
        assert_eq!(point.kind, ConfigKind::FuseMaxBinding);
        assert_eq!(point.workload.name, space.workloads()[2].name);
        assert!(point.arch.name.contains("gb12345678"), "{}", point.arch.name);
    }

    #[test]
    fn off_grid_clock_and_bandwidth_overrides_apply() {
        let space = DesignSpace::new().with_frequencies_hz([None, Some(470e6)]);
        let point = space.materialize(&Candidate::OffGrid {
            workload: 0,
            seq_len: 0,
            kind: 0,
            frequency: 1,
            array_dim: 200,
            buffer_bytes: 1 << 20,
            frequency_hz: Some(777.5e6),
            dram_bw_bytes_per_sec: Some(512e9),
            policy: 0,
            fleet: 0,
        });
        // The concrete overrides win over the indexed axis value, and the
        // name carries exactly one clock tag.
        assert_eq!(point.arch.frequency_hz, 777.5e6);
        assert_eq!(point.arch.dram_bw_bytes_per_sec, 512e9);
        assert!(point.arch.name.contains("777.5MHz"), "{}", point.arch.name);
        assert!(!point.arch.name.contains("470MHz"), "{}", point.arch.name);
        assert!(point.arch.name.contains("bw512.0GBs"), "{}", point.arch.name);
        assert!(!space.is_on_grid(&point));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_off_grid_clock_is_rejected() {
        let _ = DesignSpace::new().materialize(&Candidate::OffGrid {
            workload: 0,
            seq_len: 0,
            kind: 0,
            frequency: 0,
            array_dim: 64,
            buffer_bytes: 1 << 20,
            frequency_hz: Some(0.0),
            dram_bw_bytes_per_sec: None,
            policy: 0,
            fleet: 0,
        });
    }

    #[test]
    fn off_grid_candidate_matching_the_grid_is_recognized_on_grid() {
        // An off-grid candidate that *happens* to name a grid design has
        // the same model-visible identity, so is_on_grid sees through the
        // addressing difference.
        let space = DesignSpace::new().with_array_dims([64, 256]);
        let stock = arch_for(ConfigKind::FuseMaxBinding, 256).global_buffer_bytes;
        let aliased = space.materialize(&Candidate::OffGrid {
            workload: 0,
            seq_len: 0,
            kind: 0,
            frequency: 0,
            array_dim: 256,
            buffer_bytes: stock,
            frequency_hz: None,
            dram_bw_bytes_per_sec: None,
            policy: 0,
            fleet: 0,
        });
        assert!(space.is_on_grid(&aliased));
    }

    #[test]
    fn is_on_grid_separates_grid_from_off_grid_points() {
        let space = DesignSpace::new()
            .with_array_dims([64, 256])
            .with_kinds([ConfigKind::Flat, ConfigKind::FuseMaxBinding])
            .with_buffer_scales([0.5, 1.0]);
        for point in space.points() {
            assert!(space.is_on_grid(&point), "{} escaped its own grid", point.arch.name);
        }
        let off = space.materialize(&Candidate::OffGrid {
            workload: 0,
            seq_len: 0,
            kind: 1,
            frequency: 0,
            array_dim: 200,
            buffer_bytes: 1 << 20,
            frequency_hz: None,
            dram_bw_bytes_per_sec: None,
            policy: 0,
            fleet: 0,
        });
        assert!(!space.is_on_grid(&off));
        // Same dim as the grid but an off-grid buffer is still off-grid.
        let stock = arch_for(ConfigKind::FuseMaxBinding, 256).global_buffer_bytes;
        let off_buf = space.materialize(&Candidate::OffGrid {
            workload: 0,
            seq_len: 0,
            kind: 1,
            frequency: 0,
            array_dim: 256,
            buffer_bytes: stock - 1,
            frequency_hz: None,
            dram_bw_bytes_per_sec: None,
            policy: 0,
            fleet: 0,
        });
        assert!(!space.is_on_grid(&off_buf));
    }

    #[test]
    #[should_panic(expected = "at least one byte")]
    fn zero_byte_off_grid_buffers_are_rejected() {
        let _ = DesignSpace::new().materialize(&Candidate::OffGrid {
            workload: 0,
            seq_len: 0,
            kind: 0,
            frequency: 0,
            array_dim: 64,
            buffer_bytes: 0,
            frequency_hz: None,
            dram_bw_bytes_per_sec: None,
            policy: 0,
            fleet: 0,
        });
    }
}
