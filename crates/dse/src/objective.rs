//! Scalar merit objectives consulted *inside* the search loop.
//!
//! The Pareto machinery in [`crate::pareto`] optimizes the three raw
//! objectives (area, latency, energy) without ever collapsing them; an
//! [`Objective`] is the opposite contract: it folds one [`Evaluation`]
//! into a single [`MeritScore`] so a [`crate::SearchStrategy`] can climb
//! it directly. The canonical implementation is serving merit —
//! SLA-feasible goodput per total cm² of fleet silicon, provided by
//! `fusemax_serve::ServeObjective` — but anything pure and deterministic
//! fits.
//!
//! Scoring happens in `Session`'s serial fold (after the
//! parallel evaluation of a batch), so attaching an objective preserves
//! the parallel ≡ serial bit-identity contract: the score is a pure
//! function of the evaluation, and fold order is staging order either
//! way.

use crate::sweep::Evaluation;
use std::cmp::Ordering;

/// A scalar verdict on one design: whether it meets the hard constraint
/// (e.g. an SLA) and how much merit it earns.
///
/// Scores order feasible-before-infeasible, then by merit — so an
/// infeasible design with spectacular throughput never beats a feasible
/// one, and among infeasible designs "closer to feasible" (higher merit,
/// e.g. less-negative tail latency) still climbs toward the constraint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeritScore {
    /// Whether the design meets the objective's hard constraint.
    pub feasible: bool,
    /// The figure of merit (higher is better). Implementations should
    /// make this comparable *within* a feasibility class; comparisons
    /// never cross classes.
    pub merit: f64,
}

impl MeritScore {
    /// Total order: feasible beats infeasible, then higher merit wins
    /// (NaN-safe via `total_cmp`).
    pub fn total_cmp(&self, other: &MeritScore) -> Ordering {
        self.feasible.cmp(&other.feasible).then_with(|| self.merit.total_cmp(&other.merit))
    }

    /// `true` if `self` is strictly better than `other`.
    pub fn beats(&self, other: &MeritScore) -> bool {
        self.total_cmp(other) == Ordering::Greater
    }
}

/// A pure scalar objective over finished evaluations.
///
/// Implementations must be deterministic — identical evaluations score
/// identically — because scores participate in the replay contract:
/// a seeded search with an objective attached must reproduce the same
/// trajectory bit-for-bit, serially or in parallel. `Send + Sync` lets
/// the sweeper carry one across rayon scopes, even though scoring itself
/// always runs in the serial fold.
pub trait Objective: Send + Sync {
    /// A short stable name for reports and telemetry.
    fn name(&self) -> &str;

    /// Scores one evaluation. Must be pure.
    fn score(&self, evaluation: &Evaluation) -> MeritScore;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feasibility_dominates_merit() {
        let feasible_low = MeritScore { feasible: true, merit: 0.1 };
        let infeasible_high = MeritScore { feasible: false, merit: 1e9 };
        assert!(feasible_low.beats(&infeasible_high));
        assert!(!infeasible_high.beats(&feasible_low));
    }

    #[test]
    fn within_a_class_higher_merit_wins_and_ties_dont_beat() {
        let a = MeritScore { feasible: true, merit: 2.0 };
        let b = MeritScore { feasible: true, merit: 1.0 };
        assert!(a.beats(&b));
        assert!(!b.beats(&a));
        assert!(!a.beats(&a), "a tie is not a strict win");

        let c = MeritScore { feasible: false, merit: -0.5 };
        let d = MeritScore { feasible: false, merit: -0.9 };
        assert!(c.beats(&d), "less-negative merit climbs toward feasibility");
    }

    #[test]
    fn nan_merit_orders_deterministically() {
        let nan = MeritScore { feasible: true, merit: f64::NAN };
        let num = MeritScore { feasible: true, merit: 1.0 };
        // total_cmp puts NaN above every number; what matters is that the
        // order is deterministic, not where NaN lands.
        assert_eq!(nan.total_cmp(&num), Ordering::Greater);
        assert_eq!(num.total_cmp(&nan), Ordering::Less);
    }
}
