//! The [`SearchStrategy`] contract and the budgeted evaluation session
//! every guided strategy drives its exploration through.
//!
//! A strategy never talks to the analytical model directly: it proposes
//! [`AxisIndex`] genomes to a [`Session`], which materializes the design
//! point, charges the budget, and routes the evaluation through the owning
//! [`Sweeper`]'s shared [`crate::EvalCache`] — so guided and exhaustive
//! runs reuse each other's results, and a guided run over an
//! already-swept space performs zero new model evaluations.

use crate::cache::PointKey;
use crate::objective::MeritScore;
use crate::space::{AxisIndex, Candidate, DesignPoint, DesignSpace};
use crate::sweep::{group_index, Evaluation, FrontierGroup, Sweeper};
use fusemax_telemetry::{Event, SearchEvent};
use rand::Rng;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How much exploration a guided run may spend.
///
/// The budget counts **distinct design points requested** — whether the
/// shared cache already held them or the analytical model had to run.
/// Re-requesting a point the run has already seen is free (strategies
/// revisit neighborhoods constantly; charging them would punish the
/// search shape rather than the work).
///
/// `cheap` is the **separate multi-fidelity budget**: when a strategy
/// runs with screening enabled (`with_screening(true)`), candidates whose
/// closed-form [`Sweeper::lower_bound`] is already dominated by the
/// running frontier are rejected *without* a model evaluation and charged
/// here instead of against `evaluations` — the guided-order mirror of
/// [`Sweeper::sweep_pruned`]. Once `cheap` is spent the screen switches
/// off and candidates pay full price again, so a run can never stall on
/// free rejections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchBudget {
    /// Maximum number of distinct design points the run may request.
    pub evaluations: usize,
    /// Maximum number of candidates the lower-bound screen may reject
    /// for free (ignored when the strategy does not screen).
    pub cheap: usize,
}

impl SearchBudget {
    /// How many cheap lower-bound screenings each full evaluation buys by
    /// default. A bound is arithmetic on closed-form floors — orders of
    /// magnitude cheaper than the model — so the default is generous.
    const CHEAP_PER_EVALUATION: usize = 8;

    /// A budget of `n` distinct evaluations (and `8n` cheap screenings).
    pub fn evaluations(n: usize) -> Self {
        SearchBudget { evaluations: n, cheap: n.saturating_mul(Self::CHEAP_PER_EVALUATION) }
    }

    /// A budget covering `fraction` of `space` (rounded up, at least 1) —
    /// the acceptance suite's "25% of the exhaustive sweep" is
    /// `SearchBudget::fraction(&space, 0.25)`.
    pub fn fraction(space: &DesignSpace, fraction: f64) -> Self {
        let n = (space.len() as f64 * fraction).ceil().max(1.0) as usize;
        Self::evaluations(n)
    }

    /// Replaces the cheap screening budget.
    pub fn with_cheap(mut self, cheap: usize) -> Self {
        self.cheap = cheap;
        self
    }
}

/// Bookkeeping of one guided run.
#[derive(Debug, Clone, Default)]
pub struct SearchStats {
    /// Distinct design points requested (charged against the budget).
    pub requested: usize,
    /// Fresh analytical-model evaluations (shared-cache misses).
    pub evaluated: usize,
    /// Requests served by the shared [`crate::EvalCache`] without running
    /// the model — e.g. everything, after an exhaustive sweep warmed it.
    pub cache_hits: usize,
    /// Repeat requests for points this run had already seen (free).
    pub revisits: usize,
    /// Candidates rejected by the multi-fidelity lower-bound screen —
    /// their closed-form [`Sweeper::lower_bound`] was already dominated
    /// by the running frontier, so the model never ran. Charged against
    /// [`SearchBudget::cheap`], not against `evaluations`.
    pub screened: usize,
    /// Evaluation batches flushed (every flush, including single-point
    /// ones — the serial path is a sequence of 1-point batches).
    pub batches: usize,
    /// Flushes that evaluated ≥ 2 points at once — the batches that
    /// actually exploit the parallel workers. The batched genetic
    /// searcher issues at least one per generation (test-enforced).
    pub multi_point_batches: usize,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
}

impl SearchStats {
    /// Merges `other` into `self` (chain-parallel strategies combine
    /// per-chain stats in chain order; `elapsed` is kept by the caller,
    /// which owns the wall clock).
    pub(crate) fn absorb(&mut self, other: &SearchStats) {
        self.requested += other.requested;
        self.evaluated += other.evaluated;
        self.cache_hits += other.cache_hits;
        self.revisits += other.revisits;
        self.screened += other.screened;
        self.batches += other.batches;
        self.multi_point_batches += other.multi_point_batches;
    }
}

/// Everything a guided run returns: the evaluations in request order, the
/// per-`(workload, seq_len)` Pareto frontiers, and the stats.
#[derive(Debug)]
pub struct SearchOutcome {
    /// Which strategy produced this outcome.
    pub strategy: String,
    /// One evaluation per distinct requested point, in request order — so
    /// the prefix of length `k` is exactly what the strategy knew after
    /// spending `k` evaluations (the convergence harness relies on this).
    pub evaluations: Vec<Arc<Evaluation>>,
    /// Per-`(workload, seq_len)` Pareto frontiers, in first-seen order.
    pub frontiers: Vec<FrontierGroup>,
    /// Run bookkeeping.
    pub stats: SearchStats,
    /// The telemetry events this run emitted, in deterministic order
    /// (staging/fold order; chain-parallel strategies concatenate their
    /// chains' streams in chain order). Empty unless the sweeper carries
    /// an enabled [`fusemax_telemetry::Recorder`]. Ticks are each
    /// session's charged-evaluation count, so per-chain streams restart
    /// their clocks — the Perfetto exporter sorts by tick per track.
    pub events: Vec<Event>,
    /// The best design by the sweeper's in-loop [`crate::Objective`], if
    /// one was attached: scored in the serial fold as evaluations land,
    /// ties keeping the earlier design — so the winner is a deterministic
    /// function of the seed, bit-identical serially or in parallel.
    /// `None` when the sweeper carries no objective.
    pub objective_best: Option<(Arc<Evaluation>, MeritScore)>,
}

impl SearchOutcome {
    /// The frontier of one workload/length group, if the run touched it.
    pub fn frontier_for(&self, model: &str, seq_len: usize) -> Option<&FrontierGroup> {
        self.frontiers.iter().find(|g| g.model == model && g.seq_len == seq_len)
    }

    /// The union of all group frontiers.
    pub fn frontier_points(&self) -> Vec<&Arc<Evaluation>> {
        self.frontiers.iter().flat_map(|g| g.frontier.points()).collect()
    }
}

/// A guided exploration policy over a [`DesignSpace`].
///
/// Implementations are deterministic functions of their configuration
/// (including the seed): calling [`SearchStrategy::search`] twice with the
/// same sweeper state, space, and budget produces identical outcomes.
pub trait SearchStrategy {
    /// Short strategy name for reports (`"random"`, `"genetic"`, …).
    fn name(&self) -> &'static str;

    /// Explores `space` through `sweeper` until `budget` is spent (or the
    /// strategy converges), returning the evaluations and frontiers found.
    fn search(&self, sweeper: &Sweeper, space: &DesignSpace, budget: SearchBudget)
        -> SearchOutcome;
}

/// What a [`Session`] did with one proposed candidate.
#[derive(Debug)]
pub(crate) enum SessionEval {
    /// The candidate was evaluated (fresh, cached, or a free revisit).
    Evaluated(Arc<Evaluation>),
    /// The multi-fidelity screen rejected the candidate: its optimistic
    /// lower bound is already dominated by the running frontier, so it
    /// provably cannot join it. No model evaluation ran; the cheap budget
    /// was charged. The strategy should treat this like a rejected move.
    Screened,
    /// The evaluation budget is spent; no new points will be evaluated.
    Exhausted,
}

/// What a [`Session`] did with one *staged* candidate (the batched
/// counterpart of [`SessionEval`]): staging charges the budget and
/// classifies immediately — so a strategy's control flow (stall counters,
/// exhaustion checks, RNG consumption) is identical to the serial path —
/// but defers the model run to the next [`Session::flush`].
#[derive(Debug)]
pub(crate) enum StagedEval {
    /// Already evaluated this run (a free revisit); resolved immediately.
    Ready(Arc<Evaluation>),
    /// Charged and queued: `flush()` returns this batch's evaluations in
    /// staging order, and the wrapped index addresses this candidate's.
    Pending(usize),
    /// Rejected by the multi-fidelity screen (see
    /// [`SessionEval::Screened`]). Within a batch the screen tests
    /// against the frontier as of the last flush — deferred evaluations
    /// cannot tighten it mid-batch — which is the one documented
    /// divergence from the serial path's per-point frontier updates.
    Screened,
    /// The evaluation budget is spent.
    Exhausted,
}

/// The budgeted evaluation session shared by every strategy: deduplicates
/// requests, charges the budget, maintains running frontiers, screens
/// candidates through the closed-form lower bound when asked to, and
/// splits shared-cache reuse from fresh model evaluations in the stats.
pub(crate) struct Session<'a> {
    sweeper: &'a Sweeper,
    space: &'a DesignSpace,
    budget: usize,
    cheap_budget: usize,
    screening: bool,
    seen: HashMap<PointKey, Arc<Evaluation>>,
    rejected: HashSet<PointKey>,
    /// Charged-but-not-yet-evaluated points, in staging order.
    pending: Vec<DesignPoint>,
    /// Key → index into `pending`, so same-batch re-proposals dedup to
    /// one charge.
    pending_index: HashMap<PointKey, usize>,
    evaluations: Vec<Arc<Evaluation>>,
    frontiers: Vec<FrontierGroup>,
    /// Running in-loop objective winner (see
    /// [`SearchOutcome::objective_best`]).
    objective_best: Option<(Arc<Evaluation>, MeritScore)>,
    stats: SearchStats,
    start: Instant,
    /// Locally-buffered telemetry (empty when the sweeper's recorder is
    /// disabled). Buffering instead of emitting inline is what keeps the
    /// stream deterministic under chain parallelism: every session owns
    /// its own buffer, and streams merge in `absorb_outcome` call order.
    events: Vec<Event>,
    tracing: bool,
    /// Whether `finish` publishes the buffer to the sweeper's recorder.
    /// Chain sessions are buffered (`false`): only the root session
    /// publishes, once, after the deterministic merge.
    publish: bool,
}

impl<'a> Session<'a> {
    /// Opens a session. The effective budget is clamped to the space size
    /// (a space can never yield more distinct points than it holds).
    pub(crate) fn new(sweeper: &'a Sweeper, space: &'a DesignSpace, budget: SearchBudget) -> Self {
        Session {
            sweeper,
            space,
            budget: budget.evaluations.min(space.len()),
            cheap_budget: budget.cheap,
            screening: false,
            seen: HashMap::new(),
            rejected: HashSet::new(),
            pending: Vec::new(),
            pending_index: HashMap::new(),
            evaluations: Vec::new(),
            frontiers: Vec::new(),
            objective_best: None,
            stats: SearchStats::default(),
            start: Instant::now(),
            events: Vec::new(),
            tracing: sweeper.recorder().is_enabled(),
            publish: true,
        }
    }

    /// Marks this session as a *chain* session: its events stay buffered
    /// in the outcome and are **not** published to the recorder at
    /// finish — the root session absorbs and publishes them after the
    /// deterministic chain-order merge.
    pub(crate) fn buffered(mut self) -> Self {
        self.publish = false;
        self
    }

    /// Buffers a search event at the current charged-evaluation tick.
    fn trace(&mut self, kind: SearchEvent) {
        if self.tracing {
            self.events.push(Event::search(self.stats.requested as u64, kind));
        }
    }

    /// Marks this session's stream as belonging to annealing chain
    /// `chain`: chain streams merge in chain order, so the marker at the
    /// head of each buffer partitions the merged stream into per-chain
    /// segments deterministically.
    pub(crate) fn mark_chain(&mut self, chain: u64) {
        self.trace(SearchEvent::ChainStart { chain });
    }

    /// Lifts the space-size clamp on the evaluation budget. Off-grid
    /// ([`crate::search::SnapPolicy::Continuous`]) runs can evaluate more
    /// distinct designs than the grid enumerates, so for them the clamp
    /// is wrong, not conservative.
    pub(crate) fn without_space_clamp(mut self, budget: SearchBudget) -> Self {
        self.budget = budget.evaluations;
        self
    }

    /// Enables the multi-fidelity lower-bound screen (see
    /// [`SessionEval::Screened`]).
    pub(crate) fn with_screening(mut self, screening: bool) -> Self {
        self.screening = screening;
        self
    }

    /// The sweeper this session evaluates through (strategies reach its
    /// in-loop objective here).
    pub(crate) fn sweeper(&self) -> &'a Sweeper {
        self.sweeper
    }

    /// `true` once the budget is spent: further *new* points are refused.
    pub(crate) fn exhausted(&self) -> bool {
        self.stats.requested >= self.budget
    }

    /// Distinct evaluations still affordable.
    pub(crate) fn remaining(&self) -> usize {
        self.budget - self.stats.requested
    }

    /// Distinct evaluations charged so far.
    #[cfg(test)]
    pub(crate) fn requested(&self) -> usize {
        self.stats.requested
    }

    /// Evaluates the design point addressed by `genome` — the on-grid
    /// shorthand for [`Session::evaluate_candidate`]. Returns `None` when
    /// the budget is exhausted *or* the screen rejected the point (with
    /// screening off — every pre-screening caller — only exhaustion).
    #[cfg(test)]
    pub(crate) fn evaluate(&mut self, genome: AxisIndex) -> Option<Arc<Evaluation>> {
        match self.evaluate_candidate(&Candidate::Grid(genome)) {
            SessionEval::Evaluated(e) => Some(e),
            SessionEval::Screened | SessionEval::Exhausted => None,
        }
    }

    /// Evaluates `candidate` immediately: the serial path, equivalent to
    /// staging it and flushing a 1-point batch. Revisits are free and
    /// always served; a new point is screened if screening is on (cheap
    /// budget permitting), then evaluated through the shared cache and
    /// charged against the budget.
    ///
    /// Any candidates already staged are flushed along with this one (the
    /// session maintains one evaluation order, so an immediate request
    /// cannot jump the queue).
    pub(crate) fn evaluate_candidate(&mut self, candidate: &Candidate) -> SessionEval {
        match self.stage_candidate(candidate) {
            StagedEval::Ready(e) => SessionEval::Evaluated(e),
            StagedEval::Screened => SessionEval::Screened,
            StagedEval::Exhausted => SessionEval::Exhausted,
            StagedEval::Pending(i) => {
                let batch = self.flush();
                SessionEval::Evaluated(Arc::clone(&batch[i]))
            }
        }
    }

    /// Stages `candidate` for the next [`Session::flush`]: deduplicates
    /// against everything this run has seen (revisits are free), screens
    /// through the closed-form lower bound when enabled, and charges the
    /// budget — all immediately and in proposal order, so seeded control
    /// flow is independent of when the batch is flushed. Only the model
    /// run itself is deferred.
    pub(crate) fn stage_candidate(&mut self, candidate: &Candidate) -> StagedEval {
        let point = self.space.materialize(candidate);
        let key = PointKey::of(&point);
        if let Some(known) = self.seen.get(&key) {
            self.stats.revisits += 1;
            return StagedEval::Ready(Arc::clone(known));
        }
        if self.rejected.contains(&key) {
            // Re-proposing an already-screened point is free, like any
            // other revisit — and still a rejection.
            self.stats.revisits += 1;
            return StagedEval::Screened;
        }
        if let Some(&i) = self.pending_index.get(&key) {
            // Same-batch duplicate: one charge, one evaluation.
            self.stats.revisits += 1;
            return StagedEval::Pending(i);
        }
        if self.exhausted() {
            return StagedEval::Exhausted;
        }
        // Screen only points the model would actually run for: cache hits
        // are free anyway, and `sweep_pruned` orders its checks the same
        // way. Screening against the *running* frontier is sound exactly
        // as pruning is: a candidate whose optimistic bound is already
        // dominated can never enter the final frontier. (Evaluations
        // pending in this batch are not in the frontier yet; the screen
        // sees the state as of the last flush.)
        if self.screening
            && self.stats.screened < self.cheap_budget
            && !self.sweeper.cache().contains(&key)
        {
            let group = group_index(&mut self.frontiers, &point);
            if !self.frontiers[group].frontier.admits(&self.sweeper.lower_bound(&point)) {
                self.stats.screened += 1;
                self.rejected.insert(key);
                self.trace(SearchEvent::ScreenedOut);
                return StagedEval::Screened;
            }
        }
        self.stats.requested += 1;
        self.trace(SearchEvent::Staged);
        let i = self.pending.len();
        self.pending_index.insert(key, i);
        self.pending.push(point);
        StagedEval::Pending(i)
    }

    /// Evaluates everything staged since the last flush — cache misses on
    /// all the sweeper's cores — and folds the results into the session in
    /// staging order (seen set, per-group frontiers, the request-ordered
    /// evaluation list, fresh-vs-cached stats). Returns the batch's
    /// evaluations so callers can resolve their [`StagedEval::Pending`]
    /// indices. Deterministic by construction: classification and charging
    /// happened at staging time, evaluations are pure, and the rayon stub
    /// collects in input order — so thread count never leaks into results.
    pub(crate) fn flush(&mut self) -> Vec<Arc<Evaluation>> {
        if self.pending.is_empty() {
            return Vec::new();
        }
        let batch = std::mem::take(&mut self.pending);
        self.pending_index.clear();
        self.stats.batches += 1;
        if batch.len() >= 2 {
            self.stats.multi_point_batches += 1;
        }
        self.trace(SearchEvent::FlushBatch { size: batch.len() });
        let results = self.sweeper.evaluate_many(&batch);
        let mut out = Vec::with_capacity(results.len());
        // This fold runs serially in staging order whatever the worker
        // count, so the hit/miss classification (the `fresh` bit) and the
        // frontier-insert events below are deterministic — never emit
        // them from inside the concurrent cache.
        for (evaluation, fresh) in results {
            let key = PointKey::of(&evaluation.point);
            if fresh {
                self.stats.evaluated += 1;
                if self.tracing {
                    let shard = self.sweeper.cache().shard_of(&key);
                    self.trace(SearchEvent::CacheMiss { shard });
                }
            } else {
                self.stats.cache_hits += 1;
                if self.tracing {
                    let shard = self.sweeper.cache().shard_of(&key);
                    self.trace(SearchEvent::CacheHit { shard });
                }
            }
            self.seen.insert(key, Arc::clone(&evaluation));
            let group = group_index(&mut self.frontiers, &evaluation.point);
            let admitted = self.frontiers[group].frontier.insert(Arc::clone(&evaluation));
            if self.tracing {
                let frontier_len = self.frontiers[group].frontier.len();
                self.trace(SearchEvent::FrontierInsert { admitted, frontier_len });
            }
            // In-loop objective scoring lives here, in the serial fold:
            // the score is a pure function of the evaluation and the fold
            // runs in staging order whatever the worker count, so the
            // running best is part of the replay contract. Ties keep the
            // earlier design (strictly-better replaces).
            if let Some(objective) = self.sweeper.objective() {
                let score = objective.score(&evaluation);
                let better = match &self.objective_best {
                    Some((_, best)) => score.beats(best),
                    None => true,
                };
                if better {
                    self.objective_best = Some((Arc::clone(&evaluation), score));
                }
            }
            self.evaluations.push(Arc::clone(&evaluation));
            out.push(evaluation);
        }
        out
    }

    /// Evaluates `candidates` as one batch: stages each in input order
    /// (deduplicating keys, screening, charging the budget exactly as the
    /// serial path would), flushes the misses through the parallel
    /// workers, and returns one [`SessionEval`] per input candidate. This
    /// is the native entry point for population-at-a-time strategies and
    /// for future batch consumers (coordinate-descent refinement,
    /// serving-objective search).
    pub(crate) fn evaluate_batch(&mut self, candidates: &[Candidate]) -> Vec<SessionEval> {
        let staged: Vec<StagedEval> = candidates.iter().map(|c| self.stage_candidate(c)).collect();
        let batch = self.flush();
        staged
            .into_iter()
            .map(|s| match s {
                StagedEval::Ready(e) => SessionEval::Evaluated(e),
                StagedEval::Pending(i) => SessionEval::Evaluated(Arc::clone(&batch[i])),
                StagedEval::Screened => SessionEval::Screened,
                StagedEval::Exhausted => SessionEval::Exhausted,
            })
            .collect()
    }

    /// Closes the session into an outcome, flushing anything still
    /// staged. Root sessions publish their buffered event stream to the
    /// sweeper's recorder here — exactly once, after every merge — so
    /// the recorder sees one deterministic stream per run.
    pub(crate) fn finish(mut self, strategy: &str) -> SearchOutcome {
        self.flush();
        self.stats.elapsed = self.start.elapsed();
        if self.publish {
            self.sweeper.recorder().publish(self.events.iter().cloned());
        }
        SearchOutcome {
            strategy: strategy.to_string(),
            evaluations: self.evaluations,
            frontiers: self.frontiers,
            stats: self.stats,
            events: self.events,
            objective_best: self.objective_best,
        }
    }

    /// Folds a finished chain outcome into this session, in call order:
    /// the chain-parallel annealer runs one independent session per
    /// `(workload, seq_len)` group on pre-split budgets and RNG streams,
    /// then merges the outcomes back deterministically.
    pub(crate) fn absorb_outcome(&mut self, outcome: SearchOutcome) {
        self.stats.absorb(&outcome.stats);
        self.events.extend(outcome.events);
        // Chains merge in call order; a later chain's winner replaces
        // only on a strictly better score, mirroring the fold's tie rule.
        if let Some((evaluation, score)) = outcome.objective_best {
            let better = match &self.objective_best {
                Some((_, best)) => score.beats(best),
                None => true,
            };
            if better {
                self.objective_best = Some((evaluation, score));
            }
        }
        self.evaluations.extend(outcome.evaluations.iter().cloned());
        for group in outcome.frontiers {
            debug_assert!(
                !self
                    .frontiers
                    .iter()
                    .any(|g| g.model == group.model && g.seq_len == group.seq_len),
                "chains are per-group; merged groups must be disjoint"
            );
            self.frontiers.push(group);
        }
        for evaluation in outcome.evaluations {
            self.seen.insert(PointKey::of(&evaluation.point), evaluation);
        }
    }
}

/// A uniformly random genome over the space's axis cardinalities.
///
/// The policy axis (slot 6) and the fleet axis (slot 7) are drawn only
/// when they actually offer a choice: the seeded RNG consumes one step
/// per `gen_range` call even on a single-value axis, so an unconditional
/// draw would shift every downstream sample and change the pre-existing
/// seeded trajectories. Spaces with singleton policy/fleet axes
/// therefore reproduce the historical streams exactly.
pub(crate) fn random_genome(rng: &mut impl Rng, lens: &AxisIndex) -> AxisIndex {
    let mut genome = [0usize; 8];
    for (slot, &n) in genome.iter_mut().zip(lens.iter()).take(6) {
        *slot = rng.gen_range(0..n);
    }
    for axis in 6..8 {
        if lens[axis] > 1 {
            genome[axis] = rng.gen_range(0..lens[axis]);
        }
    }
    genome
}

/// A weighted log-scalarization of a (positive) objective vector:
/// `Σ wᵢ·ln(objᵢ)`. Monotone per objective, scale-free across objectives
/// (halving latency is worth the same wherever it happens), so it makes a
/// stable annealing energy and a reasonable rank tie-break.
pub(crate) fn weighted_log_cost(objectives: &[f64; 3], weights: &[f64; 3]) -> f64 {
    objectives.iter().zip(weights.iter()).map(|(o, w)| w * o.max(f64::MIN_POSITIVE).ln()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusemax_model::{ConfigKind, ModelParams};
    use fusemax_workloads::TransformerConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space() -> DesignSpace {
        DesignSpace::new()
            .with_array_dims([64, 128, 256])
            .with_kinds([ConfigKind::Flat, ConfigKind::FuseMaxBinding])
            .with_workloads([TransformerConfig::bert()])
            .with_seq_lens([1 << 14])
    }

    #[test]
    fn budget_fraction_rounds_up() {
        let s = space();
        assert_eq!(SearchBudget::fraction(&s, 0.25).evaluations, 2);
        assert_eq!(SearchBudget::fraction(&s, 1e-9).evaluations, 1);
        assert_eq!(SearchBudget::fraction(&s, 1.0).evaluations, 6);
    }

    #[test]
    fn budgets_carry_a_separate_cheap_allowance() {
        let b = SearchBudget::evaluations(10);
        assert_eq!(b.cheap, 80, "default: 8 cheap screenings per evaluation");
        assert_eq!(b.with_cheap(3).cheap, 3);
        assert_eq!(SearchBudget::fraction(&space(), 1.0).cheap, 48);
    }

    #[test]
    fn screening_rejects_dominated_candidates_without_charge() {
        let sweeper = Sweeper::new(ModelParams::default());
        let s = space();
        let mut session =
            Session::new(&sweeper, &s, SearchBudget::evaluations(6)).with_screening(true);
        // Evaluate the strongest design first: +Binding at 256 dominates
        // every FLAT candidate's optimistic bound at smaller-or-equal
        // area... establish the frontier, then propose a FLAT point whose
        // bound is dominated.
        assert!(session.evaluate([0, 0, 1, 0, 0, 0, 0, 0]).is_some(), "+Binding @ 64");
        assert!(session.evaluate([0, 0, 1, 1, 0, 0, 0, 0]).is_some(), "+Binding @ 128");
        let before = session.requested();
        let verdict = session.evaluate_candidate(&Candidate::Grid([0, 0, 0, 0, 0, 0, 0, 0]));
        match verdict {
            SessionEval::Screened => {
                assert_eq!(session.requested(), before, "screening must not charge the budget");
                // Re-proposing the rejected point is a free revisit.
                let again = session.evaluate_candidate(&Candidate::Grid([0, 0, 0, 0, 0, 0, 0, 0]));
                assert!(matches!(again, SessionEval::Screened));
                let outcome = session.finish("test");
                assert_eq!(outcome.stats.screened, 1);
                assert_eq!(outcome.stats.revisits, 1);
            }
            // The bound may legitimately admit the FLAT point (bounds are
            // optimistic); then it must have been evaluated and charged.
            SessionEval::Evaluated(_) => assert_eq!(session.requested(), before + 1),
            SessionEval::Exhausted => panic!("budget cannot be exhausted after 2 of 6"),
        }
    }

    #[test]
    fn exhausted_cheap_budget_turns_the_screen_off() {
        let sweeper = Sweeper::new(ModelParams::default());
        let s = space();
        let mut session = Session::new(&sweeper, &s, SearchBudget::evaluations(6).with_cheap(0))
            .with_screening(true);
        // cheap = 0: nothing can be screened, every candidate pays full
        // price exactly as with screening off.
        for di in 0..3 {
            for ki in 0..2 {
                assert!(session.evaluate([0, 0, ki, di, 0, 0, 0, 0]).is_some());
            }
        }
        let outcome = session.finish("test");
        assert_eq!(outcome.stats.screened, 0);
        assert_eq!(outcome.stats.requested, 6);
    }

    #[test]
    fn unclamped_sessions_accept_more_than_the_space_size() {
        let sweeper = Sweeper::new(ModelParams::default());
        let s = space();
        let budget = SearchBudget::evaluations(50);
        let session = Session::new(&sweeper, &s, budget).without_space_clamp(budget);
        assert_eq!(session.remaining(), 50, "off-grid runs may exceed the grid size");
    }

    #[test]
    fn session_charges_distinct_points_only() {
        let sweeper = Sweeper::new(ModelParams::default());
        let s = space();
        let mut session = Session::new(&sweeper, &s, SearchBudget::evaluations(3));
        assert!(session.evaluate([0, 0, 0, 0, 0, 0, 0, 0]).is_some());
        assert!(session.evaluate([0, 0, 0, 0, 0, 0, 0, 0]).is_some(), "revisits are free");
        assert!(session.evaluate([0, 0, 1, 1, 0, 0, 0, 0]).is_some());
        assert!(session.evaluate([0, 0, 1, 2, 0, 0, 0, 0]).is_some());
        assert!(session.exhausted());
        assert!(session.evaluate([0, 0, 0, 1, 0, 0, 0, 0]).is_none(), "budget refuses new points");
        assert!(session.evaluate([0, 0, 0, 0, 0, 0, 0, 0]).is_some(), "revisits still served");
        let outcome = session.finish("test");
        assert_eq!(outcome.stats.requested, 3);
        assert_eq!(outcome.stats.evaluated, 3);
        assert_eq!(outcome.stats.revisits, 2);
        assert_eq!(outcome.evaluations.len(), 3);
        assert_eq!(outcome.frontiers.len(), 1);
    }

    #[test]
    fn session_reuses_a_warm_shared_cache() {
        let sweeper = Sweeper::new(ModelParams::default());
        let s = space();
        sweeper.sweep(&s);
        let mut session = Session::new(&sweeper, &s, SearchBudget::evaluations(6));
        for ki in 0..2 {
            for di in 0..3 {
                session.evaluate([0, 0, ki, di, 0, 0, 0, 0]);
            }
        }
        let outcome = session.finish("test");
        assert_eq!(outcome.stats.requested, 6);
        assert_eq!(outcome.stats.evaluated, 0, "everything must come from the shared cache");
        assert_eq!(outcome.stats.cache_hits, 6);
    }

    #[test]
    fn budget_is_clamped_to_the_space() {
        let sweeper = Sweeper::new(ModelParams::default());
        let s = space();
        let session = Session::new(&sweeper, &s, SearchBudget::evaluations(1_000_000));
        assert_eq!(session.remaining(), 6);
    }

    #[test]
    fn random_genomes_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(11);
        let lens = space().axis_lens();
        for _ in 0..200 {
            let g = random_genome(&mut rng, &lens);
            for (i, &v) in g.iter().enumerate() {
                assert!(v < lens[i]);
            }
        }
    }

    #[test]
    fn log_cost_is_monotone_and_weighted() {
        let w = [1.0, 1.0, 1.0];
        assert!(weighted_log_cost(&[1.0, 2.0, 3.0], &w) < weighted_log_cost(&[1.0, 2.0, 4.0], &w));
        let latency_only = [0.0, 1.0, 0.0];
        assert_eq!(weighted_log_cost(&[9.0, 1.0, 9.0], &latency_only), 0.0);
    }
}
