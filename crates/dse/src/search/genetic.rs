//! Genetic / evolutionary search over the design-space axes: tournament
//! selection on Pareto-rank fitness, uniform crossover, and axis-aware
//! mutation (ordered knobs step to neighboring grid values, categorical
//! knobs resample).

use crate::objective::{MeritScore, Objective};
use crate::pareto::pareto_ranks;
use crate::search::relax::SnapPolicy;
use crate::search::strategy::{
    random_genome, weighted_log_cost, SearchBudget, SearchOutcome, SearchStrategy, Session,
    SessionEval, StagedEval,
};
use crate::space::{arch_for, AxisIndex, Candidate, DesignSpace};
use crate::sweep::{Evaluation, Sweeper};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Axes whose values are ordered (stepping ±1 is a meaningful "nudge"):
/// sequence length (1), array dimension (3), buffer scale (5). Workload
/// (0), kind (2), frequency (4), scheduler policy (6), and fleet shape
/// (7) are treated as categorical.
const ORDERED_AXES: [bool; 8] = [false, true, false, true, false, true, false, false];

/// Under [`SnapPolicy::Continuous`], the probability that a bred child is
/// jittered off-grid instead of evaluated at its grid genome.
const OFFGRID_RATE: f64 = 0.35;

/// Multi-objective genetic search with Pareto-rank fitness.
///
/// Each genome is an [`AxisIndex`] into the space's six axes. Fitness is
/// the genome's non-domination front *within its `(workload, seq_len)`
/// group* (dominance across groups is meaningless), with a balanced
/// log-scalarization as the tie-break. Selection is `tournament`-way,
/// crossover is uniform per axis, and mutation nudges ordered axes by ±1
/// while resampling categorical ones.
///
/// Deterministic per seed; all evaluations flow through the shared
/// [`crate::EvalCache`].
///
/// # Example
///
/// ```
/// use fusemax_dse::search::{GeneticSearch, SearchBudget, SearchStrategy};
/// use fusemax_dse::{DesignSpace, Sweeper};
/// use fusemax_model::{ConfigKind, ModelParams};
///
/// let space = DesignSpace::new().with_kinds(ConfigKind::all());
/// let sweeper = Sweeper::new(ModelParams::default());
/// let outcome =
///     GeneticSearch::new(7).search(&sweeper, &space, SearchBudget::fraction(&space, 0.25));
/// assert!(outcome.stats.requested <= 30);
/// assert!(!outcome.frontier_points().is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct GeneticSearch {
    seed: u64,
    population: usize,
    mutation_rate: f64,
    tournament: usize,
    snap: SnapPolicy,
    screening: bool,
}

impl GeneticSearch {
    /// A genetic searcher with the default knobs: population 16,
    /// mutation rate 0.25, binary tournaments, on-grid evaluation, no
    /// screening.
    pub fn new(seed: u64) -> Self {
        GeneticSearch {
            seed,
            population: 16,
            mutation_rate: 0.25,
            tournament: 2,
            snap: SnapPolicy::Grid,
            screening: false,
        }
    }

    /// Replaces the snap policy. Under [`SnapPolicy::Continuous`] the
    /// breeding loop jitters a fraction of children (35%) off-grid:
    /// the grid genome stays the crossover substrate,
    /// but the evaluated design perturbs the array dimension and buffer
    /// bytes geometrically within ±half an octave — so the population can
    /// hold (and select for) designs the grid cannot express.
    pub fn with_snap_policy(mut self, snap: SnapPolicy) -> Self {
        self.snap = snap;
        self
    }

    /// Enables the multi-fidelity lower-bound screen: provably-dominated
    /// children are rejected against [`SearchBudget::cheap`] instead of
    /// costing a model evaluation.
    pub fn with_screening(mut self, screening: bool) -> Self {
        self.screening = screening;
        self
    }

    /// Replaces the population size (clamped to ≥ 2 at search time).
    pub fn with_population(mut self, population: usize) -> Self {
        self.population = population;
        self
    }

    /// Replaces the per-axis mutation probability.
    pub fn with_mutation_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "mutation rate must be a probability");
        self.mutation_rate = rate;
        self
    }

    /// Replaces the tournament size (clamped to ≥ 2 at search time).
    pub fn with_tournament(mut self, tournament: usize) -> Self {
        self.tournament = tournament;
        self
    }
}

/// One population member: the grid genome it breeds through, the
/// candidate actually evaluated (equal to `Grid(genome)` unless the child
/// was jittered off-grid), and its evaluation.
#[derive(Clone)]
struct Member {
    genome: AxisIndex,
    candidate: Candidate,
    evaluation: Arc<Evaluation>,
}

/// A staged member-to-be: revisits resolve immediately, fresh points wait
/// for the generation's batch flush.
enum Slot {
    Ready(Arc<Evaluation>),
    Pending(usize),
}

/// A bred child awaiting its generation's batch evaluation.
struct ChildSlot {
    genome: AxisIndex,
    candidate: Candidate,
    slot: Slot,
}

/// Resolves staged children against the flushed batch, preserving
/// proposal order.
fn resolve(slots: Vec<ChildSlot>, batch: Vec<Arc<Evaluation>>) -> Vec<Member> {
    slots
        .into_iter()
        .map(|c| Member {
            genome: c.genome,
            candidate: c.candidate,
            evaluation: match c.slot {
                Slot::Ready(e) => e,
                Slot::Pending(i) => Arc::clone(&batch[i]),
            },
        })
        .collect()
}

/// Jitters a grid genome's hardware knobs off-grid: the array dimension
/// and buffer bytes move geometrically within ±half an octave of their
/// grid values (the categorical axes stay indexed). Half an octave is the
/// farthest any off-grid value sits from its nearest grid anchor on a
/// power-of-two grid, so jittered children blanket the gaps without
/// abandoning the neighborhood selection chose.
fn offgrid_jitter(rng: &mut StdRng, space: &DesignSpace, genome: &AxisIndex) -> Candidate {
    let [wi, si, ki, di, fi, bi, pi, gi] = *genome;
    let dim_base = space.array_dims()[di] as f64;
    let array_dim = (dim_base * 2f64.powf(rng.gen_range(-0.5..0.5))).round().max(1.0) as usize;
    let base = arch_for(space.kinds()[ki], array_dim).global_buffer_bytes as f64;
    let scale = space.buffer_scales()[bi];
    let buffer_bytes = (base * scale * 2f64.powf(rng.gen_range(-0.5..0.5))).ceil().max(1.0) as u64;
    Candidate::OffGrid {
        workload: wi,
        seq_len: si,
        kind: ki,
        frequency: fi,
        array_dim,
        buffer_bytes,
        frequency_hz: None,
        dram_bw_bytes_per_sec: None,
        policy: pi,
        fleet: gi,
    }
}

/// Per-member Pareto front index, computed *within* each member's
/// `(workload, seq_len)` group.
fn grouped_ranks(members: &[Member]) -> Vec<usize> {
    let mut ranks = vec![0usize; members.len()];
    let mut groups: Vec<(&str, usize, Vec<usize>)> = Vec::new();
    for (i, m) in members.iter().enumerate() {
        let key = (m.evaluation.point.workload.name, m.evaluation.point.seq_len);
        match groups.iter_mut().find(|(n, l, _)| *n == key.0 && *l == key.1) {
            Some((_, _, idxs)) => idxs.push(i),
            None => groups.push((key.0, key.1, vec![i])),
        }
    }
    for (_, _, idxs) in &groups {
        let objs: Vec<[f64; 3]> = idxs
            .iter()
            .map(|&i| {
                let e = &members[i].evaluation;
                [e.area_cm2, e.latency_s, e.energy_j]
            })
            .collect();
        for (&i, r) in idxs.iter().zip(pareto_ranks(&objs)) {
            ranks[i] = r;
        }
    }
    ranks
}

/// Balanced log-scalarization used as the rank tie-break.
fn scalar(e: &Evaluation) -> f64 {
    weighted_log_cost(&[e.area_cm2, e.latency_s, e.energy_j], &[1.0, 1.0, 1.0])
}

/// Per-member fitness ranks by the sweeper's in-loop objective: the best
/// [`MeritScore`] gets rank 0. The sort is stable, so tied scores keep
/// member order and rankings stay deterministic. (Objective
/// implementations memoize per design point, so re-ranking each
/// generation costs lookups, not simulations.)
fn objective_ranks(members: &[Member], objective: &dyn Objective) -> Vec<usize> {
    let scores: Vec<MeritScore> = members.iter().map(|m| objective.score(&m.evaluation)).collect();
    let mut order: Vec<usize> = (0..members.len()).collect();
    order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
    let mut ranks = vec![0usize; members.len()];
    for (rank, &i) in order.iter().enumerate() {
        ranks[i] = rank;
    }
    ranks
}

/// Picks the fitter of `k` random members: lowest front, then lowest
/// scalar cost.
fn tournament_pick(rng: &mut StdRng, members: &[Member], ranks: &[usize], k: usize) -> usize {
    let mut best = rng.gen_range(0..members.len());
    for _ in 1..k {
        let challenger = rng.gen_range(0..members.len());
        let better = ranks[challenger] < ranks[best]
            || (ranks[challenger] == ranks[best]
                && scalar(&members[challenger].evaluation) < scalar(&members[best].evaluation));
        if better {
            best = challenger;
        }
    }
    best
}

/// Uniform crossover: each axis comes from either parent with equal
/// probability. The policy (6) and fleet (7) axes only draw when they
/// have alternatives — a draw on a singleton axis would still consume
/// RNG state and shift the seeded trajectories of every pre-existing
/// space.
fn crossover(rng: &mut StdRng, a: &AxisIndex, b: &AxisIndex, lens: &AxisIndex) -> AxisIndex {
    let mut child = *a;
    for (axis, (slot, &gene)) in child.iter_mut().zip(b.iter()).enumerate() {
        if axis >= 6 && lens[axis] <= 1 {
            continue;
        }
        if rng.gen_bool(0.5) {
            *slot = gene;
        }
    }
    child
}

/// Mutates each axis with probability `rate`: ordered axes step ±1
/// (clamped), categorical axes resample uniformly.
fn mutate(rng: &mut StdRng, genome: &mut AxisIndex, lens: &AxisIndex, rate: f64) {
    for axis in 0..8 {
        if lens[axis] <= 1 || !rng.gen_bool(rate) {
            continue;
        }
        if ORDERED_AXES[axis] {
            let up = rng.gen_bool(0.5);
            genome[axis] = if up {
                (genome[axis] + 1).min(lens[axis] - 1)
            } else {
                genome[axis].saturating_sub(1)
            };
        } else {
            genome[axis] = rng.gen_range(0..lens[axis]);
        }
    }
}

impl SearchStrategy for GeneticSearch {
    fn name(&self) -> &'static str {
        "genetic"
    }

    fn search(
        &self,
        sweeper: &Sweeper,
        space: &DesignSpace,
        budget: SearchBudget,
    ) -> SearchOutcome {
        let mut session = Session::new(sweeper, space, budget).with_screening(self.screening);
        if self.snap == SnapPolicy::Continuous {
            // Off-grid children can outnumber the grid; the space-size
            // clamp would be wrong.
            session = session.without_space_clamp(budget);
        }
        if space.is_empty() {
            return session.finish(self.name());
        }
        let lens = space.axis_lens();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let pop_target = self.population.clamp(2, session.remaining().max(2));
        let tournament = self.tournament.max(2);

        // Seed generation: random distinct genomes, staged and evaluated
        // as one batch (staging charges the budget and consumes the RNG
        // exactly as per-point evaluation would; only the model runs are
        // deferred to the flush).
        let mut seeds: Vec<ChildSlot> = Vec::with_capacity(pop_target);
        let mut attempts = 0usize;
        while seeds.len() < pop_target && !session.exhausted() && attempts < pop_target * 64 + 256 {
            attempts += 1;
            let genome = random_genome(&mut rng, &lens);
            if seeds.iter().any(|s| s.genome == genome) {
                continue;
            }
            let candidate = Candidate::Grid(genome);
            match session.stage_candidate(&candidate) {
                StagedEval::Ready(evaluation) => {
                    seeds.push(ChildSlot { genome, candidate, slot: Slot::Ready(evaluation) })
                }
                StagedEval::Pending(i) => {
                    seeds.push(ChildSlot { genome, candidate, slot: Slot::Pending(i) })
                }
                StagedEval::Screened => {}
                StagedEval::Exhausted => break,
            }
        }
        let mut population: Vec<Member> = resolve(seeds, session.flush());

        // With an in-loop objective attached, selection pressure follows
        // the scalar merit instead of the Pareto fronts — the strategy
        // climbs SLA-feasible goodput per cm² (or whatever the objective
        // encodes) directly.
        let rank_members = |members: &[Member]| match sweeper.objective() {
            Some(objective) => objective_ranks(members, objective.as_ref()),
            None => grouped_ranks(members),
        };

        while !session.exhausted() && !population.is_empty() {
            let ranks = rank_members(&population);
            let mut children: Vec<ChildSlot> = Vec::with_capacity(pop_target);
            let mut stall = 0usize;
            while children.len() < pop_target && !session.exhausted() && stall < pop_target * 16 {
                let pa = tournament_pick(&mut rng, &population, &ranks, tournament);
                let pb = tournament_pick(&mut rng, &population, &ranks, tournament);
                let mut child =
                    crossover(&mut rng, &population[pa].genome, &population[pb].genome, &lens);
                mutate(&mut rng, &mut child, &lens, self.mutation_rate);
                let candidate = if self.snap == SnapPolicy::Continuous && rng.gen_bool(OFFGRID_RATE)
                {
                    offgrid_jitter(&mut rng, space, &child)
                } else {
                    Candidate::Grid(child)
                };
                let known = population.iter().any(|m| m.candidate == candidate)
                    || children.iter().any(|m| m.candidate == candidate);
                if known {
                    stall += 1;
                    continue;
                }
                match session.stage_candidate(&candidate) {
                    StagedEval::Ready(evaluation) => {
                        children.push(ChildSlot {
                            genome: child,
                            candidate,
                            slot: Slot::Ready(evaluation),
                        });
                        stall = 0;
                    }
                    StagedEval::Pending(i) => {
                        children.push(ChildSlot {
                            genome: child,
                            candidate,
                            slot: Slot::Pending(i),
                        });
                        stall = 0;
                    }
                    StagedEval::Screened => {
                        stall += 1;
                        continue;
                    }
                    StagedEval::Exhausted => break,
                }
            }
            // The generation's offspring evaluate as one parallel batch.
            let children = resolve(children, session.flush());
            if children.is_empty() {
                // Breeding stalled (everything nearby already explored):
                // inject a random immigrant to reopen the search, or stop
                // if even that fails.
                let mut injected = false;
                for _ in 0..64 {
                    if session.exhausted() {
                        break;
                    }
                    let genome = random_genome(&mut rng, &lens);
                    if population.iter().any(|m| m.genome == genome) {
                        continue;
                    }
                    let candidate = Candidate::Grid(genome);
                    if let SessionEval::Evaluated(evaluation) =
                        session.evaluate_candidate(&candidate)
                    {
                        population.push(Member { genome, candidate, evaluation });
                        injected = true;
                        break;
                    }
                }
                if !injected {
                    break;
                }
                continue;
            }
            population.extend(children);

            // Environmental selection: survivors by (front, scalar cost).
            let ranks = rank_members(&population);
            let mut order: Vec<usize> = (0..population.len()).collect();
            order.sort_by(|&a, &b| {
                ranks[a].cmp(&ranks[b]).then(
                    scalar(&population[a].evaluation).total_cmp(&scalar(&population[b].evaluation)),
                )
            });
            order.truncate(pop_target);
            population = order.into_iter().map(|i| population[i].clone()).collect();
        }
        session.finish(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusemax_model::{ConfigKind, ModelParams};
    use fusemax_workloads::TransformerConfig;

    fn space() -> DesignSpace {
        DesignSpace::new()
            .with_array_dims([16, 32, 64, 128, 256, 512])
            .with_kinds(ConfigKind::all())
            .with_workloads([TransformerConfig::bert()])
            .with_seq_lens([1 << 18])
            .with_buffer_scales([0.5, 1.0, 2.0])
    }

    #[test]
    fn respects_the_budget_exactly() {
        let sweeper = Sweeper::new(ModelParams::default());
        let outcome =
            GeneticSearch::new(3).search(&sweeper, &space(), SearchBudget::evaluations(20));
        assert_eq!(outcome.stats.requested, 20);
        assert_eq!(outcome.evaluations.len(), 20);
    }

    #[test]
    fn deterministic_per_seed() {
        let sweeper = Sweeper::new(ModelParams::default());
        let a = GeneticSearch::new(9).search(&sweeper, &space(), SearchBudget::evaluations(25));
        let b = GeneticSearch::new(9).search(&sweeper, &space(), SearchBudget::evaluations(25));
        for (x, y) in a.evaluations.iter().zip(&b.evaluations) {
            assert_eq!(x.point, y.point);
        }
    }

    #[test]
    fn mutation_respects_axis_bounds() {
        let mut rng = StdRng::seed_from_u64(17);
        let lens = space().axis_lens();
        let mut genome = [0usize; 8];
        for _ in 0..500 {
            mutate(&mut rng, &mut genome, &lens, 1.0);
            for (axis, &v) in genome.iter().enumerate() {
                assert!(v < lens[axis], "axis {axis} escaped its range");
            }
        }
    }

    #[test]
    fn evolution_concentrates_on_the_strong_kinds() {
        // With Pareto-rank selection pressure, late evaluations should be
        // dominated by FuseMax kinds (the baselines lose every tournament
        // at equal scale).
        let sweeper = Sweeper::new(ModelParams::default());
        let outcome =
            GeneticSearch::new(1).search(&sweeper, &space(), SearchBudget::evaluations(60));
        let late = &outcome.evaluations[outcome.evaluations.len() / 2..];
        let fusemax = late.iter().filter(|e| e.point.kind.is_fusemax()).count();
        assert!(
            fusemax * 2 > late.len(),
            "only {fusemax}/{} late evaluations explored FuseMax kinds",
            late.len()
        );
    }
}
