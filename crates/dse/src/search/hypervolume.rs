//! Exact hypervolume computation and the convergence harness that scores
//! guided strategies against the exhaustive Pareto frontier.
//!
//! The **hypervolume indicator** of a point set (under minimization) is
//! the volume of objective space the set dominates, measured against a
//! reference point that is worse than everything of interest. It is the
//! standard scalar summary of multi-objective search quality: a strategy
//! that recovers ≥90% of the exhaustive frontier's hypervolume has found
//! the shape of the frontier, not just one good point.

use crate::pareto::{Objectives, ParetoFrontier};
use crate::search::strategy::SearchOutcome;
use crate::sweep::{FrontierGroup, SweepOutcome};

/// Headroom applied when deriving a reference point from observed
/// objective values, so boundary points still enclose volume.
const REFERENCE_MARGIN: f64 = 1.05;

/// Exact hypervolume of `points` against `reference` (all objectives
/// minimized): the volume of the union of the boxes `[pᵢ, reference]`.
///
/// Computed by coordinate compression: the unique coordinate values split
/// objective space into a grid, and a grid cell is dominated iff some
/// point is ≤ its lower corner in every objective. Exact for any `N`;
/// `O(nᴺ⁺¹)` in the number of points, which is fine for frontier-sized
/// inputs (use it on frontiers, not raw sweeps).
///
/// Points not strictly better than `reference` in every objective
/// contribute nothing.
///
/// # Example
///
/// ```
/// use fusemax_dse::search::hypervolume;
///
/// let front = [[1.0, 3.0], [2.0, 2.0], [3.0, 1.0]];
/// // Union of the boxes to [4, 4]: 3 + 4 + 3, minus pairwise overlaps
/// // 2 + 1 + 2, plus the triple overlap 1 = 6.
/// assert_eq!(hypervolume(&front, &[4.0, 4.0]), 6.0);
/// ```
pub fn hypervolume<P: Objectives<N>, const N: usize>(points: &[P], reference: &[f64; N]) -> f64 {
    let contributing: Vec<[f64; N]> = points
        .iter()
        .map(|p| p.objectives())
        .filter(|o| o.iter().zip(reference.iter()).all(|(v, r)| v < r))
        .collect();
    if contributing.is_empty() {
        return 0.0;
    }

    // Unique sorted coordinates per axis, closed off by the reference.
    let mut coords: Vec<Vec<f64>> = Vec::with_capacity(N);
    for axis in 0..N {
        let mut values: Vec<f64> = contributing.iter().map(|o| o[axis]).collect();
        values.push(reference[axis]);
        values.sort_by(f64::total_cmp);
        values.dedup();
        coords.push(values);
    }

    // Mixed-radix walk over the grid cells.
    let radices: Vec<usize> = coords.iter().map(|c| c.len() - 1).collect();
    let cells: usize = radices.iter().product();
    let mut volume = 0.0;
    let mut lower = [0.0f64; N];
    for cell in 0..cells {
        let mut rest = cell;
        let mut width = 1.0;
        for axis in 0..N {
            let i = rest % radices[axis];
            rest /= radices[axis];
            lower[axis] = coords[axis][i];
            width *= coords[axis][i + 1] - coords[axis][i];
        }
        let dominated =
            contributing.iter().any(|p| p.iter().zip(lower.iter()).all(|(v, lo)| v <= lo));
        if dominated {
            volume += width;
        }
    }
    volume
}

/// A reference point enclosing every objective vector of `objectives`,
/// with 5% headroom per axis so boundary points still enclose volume.
/// Returns `None` for an empty iterator.
pub fn reference_point<const N: usize>(
    objectives: impl IntoIterator<Item = [f64; N]>,
) -> Option<[f64; N]> {
    let mut reference: Option<[f64; N]> = None;
    for o in objectives {
        let r = reference.get_or_insert(o);
        for axis in 0..N {
            r[axis] = r[axis].max(o[axis]);
        }
    }
    reference.map(|mut r| {
        for v in &mut r {
            // Headroom must *increase* the coordinate whatever its sign
            // (a plain multiply would shrink negative maxima), and a zero
            // maximum still needs to end up strictly above zero.
            if *v > 0.0 {
                *v *= REFERENCE_MARGIN;
            } else if *v < 0.0 {
                *v *= 2.0 - REFERENCE_MARGIN;
            } else {
                *v = f64::MIN_POSITIVE;
            }
        }
        r
    })
}

/// One sample of a convergence curve: the hypervolume fraction after
/// `evaluations` distinct evaluations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HvSample {
    /// Distinct evaluations spent at this sample.
    pub evaluations: usize,
    /// Mean (over `(workload, seq_len)` groups) fraction of the
    /// exhaustive frontier's hypervolume recovered so far. In `[0, 1]`
    /// for on-grid runs; off-grid
    /// ([`crate::search::SnapPolicy::Continuous`]) runs can exceed 1.0
    /// by dominating volume the grid frontier cannot reach (see
    /// [`hypervolume_fraction`]).
    pub fraction: f64,
}

/// Hypervolume-versus-evaluations for one guided run, measured against an
/// exhaustive sweep of the same space.
#[derive(Debug, Clone)]
pub struct ConvergenceCurve {
    /// Which strategy produced the run.
    pub strategy: String,
    /// Samples in increasing evaluation order; the last sample is the
    /// run's final state.
    pub samples: Vec<HvSample>,
}

impl ConvergenceCurve {
    /// The final hypervolume fraction (0.0 for an empty run).
    pub fn final_fraction(&self) -> f64 {
        self.samples.last().map_or(0.0, |s| s.fraction)
    }

    /// The smallest evaluation count at which the curve first reached
    /// `fraction`, if it ever did.
    pub fn evaluations_to_reach(&self, fraction: f64) -> Option<usize> {
        self.samples.iter().find(|s| s.fraction >= fraction).map(|s| s.evaluations)
    }
}

/// Per-group exhaustive baseline: group identity, reference point, and
/// exhaustive frontier hypervolume.
struct GroupBaseline {
    model: String,
    seq_len: usize,
    reference: [f64; 3],
    exhaustive_hv: f64,
}

/// Builds the per-group baselines from an exhaustive sweep. The reference
/// point spans **all** evaluated points of the group (not only frontier
/// members), so dominated-but-sane designs sit inside the measured box
/// and fractions are stable across strategies.
fn baselines(exhaustive: &SweepOutcome) -> Vec<GroupBaseline> {
    exhaustive
        .frontiers
        .iter()
        .map(|group| {
            let all = exhaustive
                .evaluations
                .iter()
                .filter(|e| {
                    e.point.workload.name == group.model && e.point.seq_len == group.seq_len
                })
                .map(|e| e.objectives());
            let reference =
                reference_point(all).expect("a frontier group always has at least one evaluation");
            let exhaustive_hv = hypervolume(group.frontier.points(), &reference);
            GroupBaseline {
                model: group.model.clone(),
                seq_len: group.seq_len,
                reference,
                exhaustive_hv,
            }
        })
        .collect()
}

/// The mean over `baselines` of each group's recovered fraction, where
/// `group_hv` yields the guided hypervolume for one baseline. This is
/// **the** scoring rule — [`hypervolume_fraction`] and [`convergence`]
/// must agree sample for sample, so both call through here.
fn mean_fraction(baselines: &[GroupBaseline], group_hv: impl Fn(&GroupBaseline) -> f64) -> f64 {
    if baselines.is_empty() {
        return 0.0;
    }
    let total: f64 = baselines
        .iter()
        .map(
            |base| {
                if base.exhaustive_hv > 0.0 {
                    group_hv(base) / base.exhaustive_hv
                } else {
                    1.0
                }
            },
        )
        .sum();
    total / baselines.len() as f64
}

/// Mean per-group fraction of the exhaustive hypervolume that `frontiers`
/// recovers. Groups the guided run never touched count as 0; the result
/// is 1.0 exactly when every group's frontier dominates the same volume
/// as the exhaustive one.
///
/// Off-grid runs ([`crate::search::SnapPolicy::Continuous`]) are scored
/// against the same exhaustive **grid** baseline: their reference point
/// and denominator come from the grid sweep, so the fraction can exceed
/// 1.0 — the signal that the run found designs dominating volume the
/// grid frontier cannot reach. [`convergence`] inherits the same
/// convention.
pub fn hypervolume_fraction(frontiers: &[FrontierGroup], exhaustive: &SweepOutcome) -> f64 {
    let baselines = baselines(exhaustive);
    mean_fraction(&baselines, |base| {
        frontiers
            .iter()
            .find(|g| g.model == base.model && g.seq_len == base.seq_len)
            .map_or(0.0, |g| hypervolume(g.frontier.points(), &base.reference))
    })
}

/// The convergence harness: replays a guided run's evaluations in request
/// order and samples the hypervolume fraction at (roughly) `samples`
/// evenly spaced budgets, always including the final state.
///
/// # Example
///
/// ```
/// use fusemax_dse::search::{convergence, RandomSearch, SearchBudget, SearchStrategy};
/// use fusemax_dse::{DesignSpace, Sweeper};
/// use fusemax_model::{ConfigKind, ModelParams};
///
/// let space = DesignSpace::new().with_kinds(ConfigKind::all());
/// let sweeper = Sweeper::new(ModelParams::default());
/// let exhaustive = sweeper.sweep(&space);
/// let run = RandomSearch::new(3).search(&sweeper, &space, SearchBudget::fraction(&space, 0.5));
/// let curve = convergence(&run, &exhaustive, 8);
/// assert!(curve.final_fraction() > 0.0);
/// // Hypervolume only grows as evaluations accumulate.
/// assert!(curve.samples.windows(2).all(|w| w[0].fraction <= w[1].fraction + 1e-12));
/// ```
pub fn convergence(
    outcome: &SearchOutcome,
    exhaustive: &SweepOutcome,
    samples: usize,
) -> ConvergenceCurve {
    let baselines = baselines(exhaustive);
    let total = outcome.evaluations.len();
    let stride = (total / samples.max(1)).max(1);

    // Running per-group frontiers over objective vectors only.
    let mut running: Vec<(String, usize, ParetoFrontier<[f64; 3], 3>)> = Vec::new();
    let mut curve = Vec::new();
    for (i, evaluation) in outcome.evaluations.iter().enumerate() {
        let model = evaluation.point.workload.name;
        let seq_len = evaluation.point.seq_len;
        let group = match running.iter().position(|(m, l, _)| m == model && *l == seq_len) {
            Some(idx) => idx,
            None => {
                running.push((model.to_string(), seq_len, ParetoFrontier::new()));
                running.len() - 1
            }
        };
        running[group].2.insert(evaluation.objectives());

        let spent = i + 1;
        if spent % stride == 0 || spent == total {
            let fraction = mean_fraction(&baselines, |base| {
                running
                    .iter()
                    .find(|(m, l, _)| *m == base.model && *l == base.seq_len)
                    .map_or(0.0, |(_, _, f)| hypervolume(f.points(), &base.reference))
            });
            curve.push(HvSample { evaluations: spent, fraction });
        }
    }
    ConvergenceCurve { strategy: outcome.strategy.clone(), samples: curve }
}

/// Emits one `HypervolumeSample` telemetry event per curve sample, at the
/// sample's evaluation-count tick — so a scored run's convergence joins
/// the same event stream (and Perfetto tracks) as the session events.
pub fn record_convergence(curve: &ConvergenceCurve, recorder: &fusemax_telemetry::Recorder) {
    for sample in &curve.samples {
        recorder.emit(|| {
            fusemax_telemetry::Event::search(
                sample.evaluations as u64,
                fusemax_telemetry::SearchEvent::HypervolumeSample { fraction: sample.fraction },
            )
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::{RandomSearch, SearchBudget, SearchStrategy};
    use crate::space::DesignSpace;
    use crate::sweep::Sweeper;
    use fusemax_model::{ConfigKind, ModelParams};
    use fusemax_workloads::TransformerConfig;

    #[test]
    fn unit_box_volumes() {
        // One point at the origin of a unit box dominates it all.
        assert_eq!(hypervolume(&[[0.0, 0.0]], &[1.0, 1.0]), 1.0);
        // A point on the reference contributes nothing.
        assert_eq!(hypervolume(&[[1.0, 1.0]], &[1.0, 1.0]), 0.0);
        // Empty set.
        assert_eq!(hypervolume::<[f64; 2], 2>(&[], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn overlapping_boxes_are_not_double_counted() {
        let hv = hypervolume(&[[0.0, 0.5], [0.5, 0.0]], &[1.0, 1.0]);
        // Each box is 0.5·1 = 0.5; the overlap [0.5,1]×[0.5,1] is 0.25.
        assert!((hv - 0.75).abs() < 1e-12);
    }

    #[test]
    fn dominated_points_do_not_change_the_volume() {
        let base = hypervolume(&[[1.0, 1.0, 1.0]], &[2.0, 2.0, 2.0]);
        let extra = hypervolume(&[[1.0, 1.0, 1.0], [1.5, 1.5, 1.5]], &[2.0, 2.0, 2.0]);
        assert_eq!(base, extra);
    }

    #[test]
    fn three_objective_volume_is_exact() {
        // Two disjoint-contribution points.
        let hv = hypervolume(&[[0.0, 0.0, 1.0], [1.0, 1.0, 0.0]], &[2.0, 2.0, 2.0]);
        // Box A: 2·2·1 = 4. Box B: 1·1·2 = 2. Overlap: 1·1·1 = 1.
        assert!((hv - 5.0).abs() < 1e-12);
    }

    #[test]
    fn reference_point_encloses_with_margin() {
        let r = reference_point([[1.0, 10.0], [2.0, 5.0]]).unwrap();
        assert!((r[0] - 2.0 * REFERENCE_MARGIN).abs() < 1e-12);
        assert!((r[1] - 10.0 * REFERENCE_MARGIN).abs() < 1e-12);
        assert!(reference_point(std::iter::empty::<[f64; 2]>()).is_none());
    }

    #[test]
    fn reference_point_headroom_works_for_any_sign() {
        // Negative and zero maxima must still end up strictly above every
        // input (a plain ×1.05 would move them the wrong way).
        let r = reference_point([[-2.0, 0.0, 3.0]]).unwrap();
        assert!(r[0] > -2.0);
        assert!(r[1] > 0.0);
        assert!(r[2] > 3.0);
        // The boundary point therefore contributes nonzero volume.
        assert!(hypervolume(&[[-2.0, 0.0, 3.0]], &r) > 0.0);
    }

    #[test]
    fn exhaustive_run_scores_fraction_one() {
        let space = DesignSpace::new()
            .with_array_dims([64, 128, 256])
            .with_kinds(ConfigKind::all())
            .with_workloads([TransformerConfig::bert()])
            .with_seq_lens([1 << 16]);
        let sweeper = Sweeper::new(ModelParams::default());
        let exhaustive = sweeper.sweep(&space);
        // A "guided" run that saw everything recovers 100%.
        let full = RandomSearch::new(1).search(&sweeper, &space, SearchBudget::evaluations(15));
        assert_eq!(full.stats.requested, 15);
        let fraction = hypervolume_fraction(&full.frontiers, &exhaustive);
        assert!((fraction - 1.0).abs() < 1e-9, "full coverage must score 1.0, got {fraction}");
    }

    #[test]
    fn convergence_curves_are_monotone_and_end_at_the_final_state() {
        let space = DesignSpace::new()
            .with_array_dims([16, 64, 256])
            .with_kinds(ConfigKind::all())
            .with_workloads([TransformerConfig::bert(), TransformerConfig::t5()])
            .with_seq_lens([1 << 14]);
        let sweeper = Sweeper::new(ModelParams::default());
        let exhaustive = sweeper.sweep(&space);
        let run = RandomSearch::new(4).search(&sweeper, &space, SearchBudget::evaluations(12));
        let curve = convergence(&run, &exhaustive, 6);
        assert!(!curve.samples.is_empty());
        assert_eq!(curve.samples.last().unwrap().evaluations, 12);
        for w in curve.samples.windows(2) {
            assert!(w[0].evaluations < w[1].evaluations);
            assert!(w[0].fraction <= w[1].fraction + 1e-12);
        }
        assert_eq!(curve.final_fraction(), hypervolume_fraction(&run.frontiers, &exhaustive));
        assert!(curve.evaluations_to_reach(0.0).is_some());
        assert!(curve.evaluations_to_reach(1.1).is_none());
    }
}
