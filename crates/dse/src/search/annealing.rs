//! Simulated annealing over the continuous-knob relaxation: a Metropolis
//! walker in log₂(array dim) × log₂(buffer scale) space (plus categorical
//! kind/frequency flips), snapping each proposal to the grid for
//! evaluation.

use crate::objective::Objective;
use crate::search::relax::{Relaxation, SnapPolicy};
use crate::search::strategy::{
    weighted_log_cost, SearchBudget, SearchOutcome, SearchStrategy, Session, SessionEval,
};
use crate::space::{arch_for, Candidate, DesignSpace};
use crate::sweep::{Evaluation, Sweeper};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Simulated annealing over the continuous-knob relaxation.
///
/// One independent chain runs per `(workload, seq_len)` group (objectives
/// are only comparable within a group), splitting the budget evenly. Each
/// chain walks the [`Relaxation`]'s continuous knobs with Gaussian-ish
/// steps, flips the categorical kind/frequency axes occasionally, and
/// accepts uphill moves with probability `exp(-Δ/T)` under a geometric
/// cooling schedule. The chain energy is a *randomly weighted*
/// log-scalarization, re-drawn on every restart, so successive restarts
/// pull the walker toward different corners of the Pareto surface instead
/// of repeatedly converging to one compromise point.
///
/// Under the default [`SnapPolicy::Grid`] every proposal snaps to the
/// nearest grid point before evaluation (the PR-2 behavior). Under
/// [`SnapPolicy::Continuous`] proposals are evaluated **off-grid** at
/// integer array-dimension / byte buffer resolution
/// ([`Candidate::OffGrid`]): the walker can refine *between* grid values
/// and routinely finds designs that dominate grid frontier points — e.g.
/// a buffer fractionally smaller than stock at identical latency.
/// [`SimulatedAnnealing::with_screening`] adds the multi-fidelity
/// lower-bound filter: proposals whose closed-form optimistic bound is
/// already dominated by the running frontier are rejected without paying
/// for the model, charged to [`SearchBudget::cheap`] instead.
///
/// Deterministic per seed; all evaluations flow through the shared
/// [`crate::EvalCache`].
///
/// # Example
///
/// ```
/// use fusemax_dse::search::{SearchBudget, SearchStrategy, SimulatedAnnealing};
/// use fusemax_dse::{DesignSpace, Sweeper};
/// use fusemax_model::{ConfigKind, ModelParams};
///
/// let space = DesignSpace::new().with_kinds(ConfigKind::all());
/// let sweeper = Sweeper::new(ModelParams::default());
/// let outcome =
///     SimulatedAnnealing::new(7).search(&sweeper, &space, SearchBudget::fraction(&space, 0.25));
/// assert!(!outcome.frontier_points().is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct SimulatedAnnealing {
    seed: u64,
    initial_temp: f64,
    cooling: f64,
    step_octaves: f64,
    snap: SnapPolicy,
    screening: bool,
    clock_bw: bool,
}

impl SimulatedAnnealing {
    /// An annealer with the default schedule: T₀ = 1.0, cooling 0.9 per
    /// accepted-or-rejected move, steps of up to ±1 octave per knob,
    /// snap-to-grid evaluation, no screening.
    pub fn new(seed: u64) -> Self {
        SimulatedAnnealing {
            seed,
            initial_temp: 1.0,
            cooling: 0.9,
            step_octaves: 1.0,
            snap: SnapPolicy::Grid,
            screening: false,
            clock_bw: false,
        }
    }

    /// Additionally relaxes the clock and DRAM-bandwidth knobs
    /// ([`Relaxation::freq_bounds`] / [`Relaxation::bw_bounds`]) under
    /// [`SnapPolicy::Continuous`]: the walker carries continuous
    /// log₂(Hz) and log₂(bytes/s) coordinates and proposes
    /// [`Candidate::OffGrid`] designs with concrete `frequency_hz` /
    /// `dram_bw_bytes_per_sec` overrides, so a continuous run can trade
    /// clock rate against memory bandwidth the way it already trades
    /// array size against buffer capacity. No effect under
    /// [`SnapPolicy::Grid`].
    pub fn with_clock_bw_relaxation(mut self, clock_bw: bool) -> Self {
        self.clock_bw = clock_bw;
        self
    }

    /// Replaces the snap policy: [`SnapPolicy::Continuous`] evaluates
    /// proposals off-grid instead of snapping them to the grid.
    pub fn with_snap_policy(mut self, snap: SnapPolicy) -> Self {
        self.snap = snap;
        self
    }

    /// Enables the multi-fidelity lower-bound screen: provably-dominated
    /// proposals are rejected against [`SearchBudget::cheap`] instead of
    /// costing a model evaluation.
    pub fn with_screening(mut self, screening: bool) -> Self {
        self.screening = screening;
        self
    }

    /// Replaces the initial temperature.
    pub fn with_initial_temp(mut self, temp: f64) -> Self {
        assert!(temp > 0.0, "temperature must be positive");
        self.initial_temp = temp;
        self
    }

    /// Replaces the geometric cooling factor (`0 < cooling < 1`).
    pub fn with_cooling(mut self, cooling: f64) -> Self {
        assert!((0.0..1.0).contains(&cooling) && cooling > 0.0, "cooling must be in (0, 1)");
        self.cooling = cooling;
        self
    }

    /// Replaces the maximum continuous step, in octaves.
    pub fn with_step_octaves(mut self, octaves: f64) -> Self {
        assert!(octaves > 0.0, "step size must be positive");
        self.step_octaves = octaves;
        self
    }
}

/// The walker's state: continuous coordinates plus categorical indices.
/// The clock/bandwidth coordinates are carried always but only drawn,
/// stepped, and emitted when the strategy's clock/bandwidth relaxation is
/// on — keeping the RNG stream (and therefore every seeded result) of
/// runs without it unchanged. The scheduler-policy index follows the same
/// rule: it is only drawn and flipped when the space carries more than
/// one policy, so singleton-policy runs reproduce the pre-policy
/// trajectories bit-for-bit — and the fleet index follows the policy
/// rule in turn.
#[derive(Debug, Clone, Copy)]
struct WalkerState {
    dim_log2: f64,
    buf_log2: f64,
    kind_idx: usize,
    freq_idx: usize,
    policy_idx: usize,
    fleet_idx: usize,
    freq_log2: f64,
    bw_log2: f64,
    clock_bw: bool,
}

impl WalkerState {
    /// The candidate this state proposes for fixed workload/length: the
    /// nearest grid point under [`SnapPolicy::Grid`], the off-grid design
    /// at integer/byte resolution under [`SnapPolicy::Continuous`].
    fn candidate(
        &self,
        space: &DesignSpace,
        relax: &Relaxation,
        snap: SnapPolicy,
        wi: usize,
        si: usize,
    ) -> Candidate {
        match snap {
            SnapPolicy::Grid => Candidate::Grid([
                wi,
                si,
                self.kind_idx,
                relax.snap_dim(self.dim_log2),
                self.freq_idx,
                relax.snap_buffer(self.buf_log2),
                self.policy_idx,
                self.fleet_idx,
            ]),
            SnapPolicy::Continuous => {
                let array_dim = relax.continuous_dim(self.dim_log2);
                let base = arch_for(space.kinds()[self.kind_idx], array_dim).global_buffer_bytes;
                let (frequency_hz, dram_bw_bytes_per_sec) = if self.clock_bw {
                    (
                        Some(relax.continuous_frequency_hz(self.freq_log2)),
                        Some(relax.continuous_dram_bw(self.bw_log2)),
                    )
                } else {
                    (None, None)
                };
                Candidate::OffGrid {
                    workload: wi,
                    seq_len: si,
                    kind: self.kind_idx,
                    frequency: self.freq_idx,
                    array_dim,
                    buffer_bytes: relax.continuous_buffer_bytes(base, self.buf_log2),
                    frequency_hz,
                    dram_bw_bytes_per_sec,
                    policy: self.policy_idx,
                    fleet: self.fleet_idx,
                }
            }
        }
    }
}

/// Random simplex weights: three positive weights summing to 3 (so the
/// balanced case is `[1, 1, 1]`), drawn per restart.
fn random_weights(rng: &mut StdRng) -> [f64; 3] {
    let mut w = [0.0f64; 3];
    let mut total = 0.0;
    for slot in &mut w {
        // Offset away from zero so no objective is ever fully ignored.
        *slot = 0.15 + rng.gen_range(0.0..1.0);
        total += *slot;
    }
    for slot in &mut w {
        *slot *= 3.0 / total;
    }
    w
}

/// The chain energy of one evaluation under `weights`.
fn energy(evaluation: &Evaluation, weights: &[f64; 3]) -> f64 {
    weighted_log_cost(&[evaluation.area_cm2, evaluation.latency_s, evaluation.energy_j], weights)
}

/// The chain energy under an in-loop [`Objective`]: minimizing energy
/// maximizes the merit, and every infeasible design sits a constant
/// plateau above every feasible one — so the walker first descends
/// *toward* feasibility (higher merit among the infeasible, e.g.
/// less-negative tail latency), then climbs merit inside the feasible
/// region.
fn objective_energy(objective: &dyn Objective, evaluation: &Evaluation) -> f64 {
    let score = objective.score(evaluation);
    if score.feasible {
        -score.merit
    } else {
        1e9 - score.merit
    }
}

impl SearchStrategy for SimulatedAnnealing {
    fn name(&self) -> &'static str {
        "annealing"
    }

    fn search(
        &self,
        sweeper: &Sweeper,
        space: &DesignSpace,
        budget: SearchBudget,
    ) -> SearchOutcome {
        let mut session = Session::new(sweeper, space, budget).with_screening(self.screening);
        if self.snap == SnapPolicy::Continuous {
            // Off-grid runs can evaluate more distinct designs than the
            // grid enumerates; the space-size clamp would be wrong.
            session = session.without_space_clamp(budget);
        }
        if space.is_empty() {
            return session.finish(self.name());
        }
        let relax = Relaxation::new(space);
        let [n_workloads, n_seq_lens, ..] = space.axis_lens();

        let groups: Vec<(usize, usize)> =
            (0..n_workloads).flat_map(|wi| (0..n_seq_lens).map(move |si| (wi, si))).collect();

        // Pre-split the budget (and the cheap screening budget) evenly
        // across the chains, and give every chain its own seeded RNG
        // stream — chain 0 keeps the strategy seed, so single-group runs
        // reproduce the serial-era trajectories bit-for-bit. Pre-splitting
        // is what lets the chains run on parallel workers while staying
        // bit-identical to running them one after another: no chain's
        // accepted-state sequence can depend on another chain's timing.
        let mut shares = Vec::with_capacity(groups.len());
        let mut remaining = session.remaining();
        let mut cheap_remaining = budget.cheap;
        for chain_no in 0..groups.len() {
            let share = remaining.div_ceil(groups.len() - chain_no);
            let cheap = cheap_remaining.div_ceil(groups.len() - chain_no);
            remaining -= share;
            cheap_remaining -= cheap;
            shares.push((share, cheap));
        }

        let run_chain = |chain_no: usize| -> SearchOutcome {
            let (wi, si) = groups[chain_no];
            let (share, cheap) = shares[chain_no];
            let chain_budget = SearchBudget { evaluations: share, cheap };
            // `.buffered()`: chain sessions keep their telemetry in the
            // outcome instead of publishing — the root session publishes
            // the chain-order merge, so the stream is identical whether
            // the chains ran on parallel workers or one after another.
            let mut chain_session = Session::new(sweeper, space, chain_budget)
                .without_space_clamp(chain_budget)
                .with_screening(self.screening)
                .buffered();
            // Head-of-stream marker: the chain-order merge turns these
            // into deterministic per-chain segment boundaries, which the
            // Perfetto exporter renders as per-chain counter tracks.
            chain_session.mark_chain(chain_no as u64);
            // SplitMix64-style stream pre-split: chain i starts where a
            // generator seeded with `seed` lands after i state steps.
            let chain_seed =
                self.seed.wrapping_add((chain_no as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            self.run_chain(chain_session, space, &relax, wi, si, chain_seed)
        };

        let outcomes: Vec<SearchOutcome> = if sweeper.is_parallel() && groups.len() > 1 {
            // Chains are ragged (budgets differ, proposal caps trip at
            // different times), so interleave them across workers.
            (0..groups.len())
                .into_par_iter()
                .map(run_chain)
                .with_chunking(rayon::Chunking::Strided)
                .collect()
        } else {
            (0..groups.len()).map(run_chain).collect()
        };
        for outcome in outcomes {
            session.absorb_outcome(outcome);
        }
        session.finish(self.name())
    }
}

impl SimulatedAnnealing {
    /// Runs one Metropolis chain over its `(workload, seq_len)` group,
    /// spending at most its session's pre-split budget share from its own
    /// pre-split RNG stream.
    fn run_chain(
        &self,
        mut session: Session<'_>,
        space: &DesignSpace,
        relax: &Relaxation,
        wi: usize,
        si: usize,
        chain_seed: u64,
    ) -> SearchOutcome {
        // The chain's budget share: the session was built with exactly
        // this chain's pre-split allowance, and nothing has been spent.
        let share = session.remaining();
        if share == 0 {
            return session.finish(self.name());
        }
        let [_, _, n_kinds, _, n_freqs, _, n_policies, n_fleets] = space.axis_lens();
        let mut rng = StdRng::seed_from_u64(chain_seed);
        let (dim_lo, dim_hi) = relax.dim_bounds();
        let (buf_lo, buf_hi) = relax.buf_bounds();
        let (freq_lo, freq_hi) = relax.freq_bounds();
        let (bw_lo, bw_hi) = relax.bw_bounds();
        let clock_bw = self.clock_bw && self.snap == SnapPolicy::Continuous;

        let random_state = |rng: &mut StdRng| WalkerState {
            dim_log2: rng.gen_range(dim_lo..dim_hi),
            buf_log2: rng.gen_range(buf_lo..buf_hi),
            kind_idx: rng.gen_range(0..n_kinds),
            freq_idx: rng.gen_range(0..n_freqs),
            policy_idx: if n_policies > 1 { rng.gen_range(0..n_policies) } else { 0 },
            fleet_idx: if n_fleets > 1 { rng.gen_range(0..n_fleets) } else { 0 },
            freq_log2: if clock_bw {
                rng.gen_range(freq_lo..freq_hi)
            } else {
                relax.freq_log2_of(0)
            },
            bw_log2: if clock_bw { rng.gen_range(bw_lo..bw_hi) } else { relax.bw_log2_stock() },
            clock_bw,
        };

        // With an in-loop objective attached, the walker descends the
        // objective's energy landscape instead of the weighted
        // log-scalarization (the random weights are still drawn, so the
        // RNG stream — and every objective-free trajectory — is
        // unchanged).
        let objective = session.sweeper().objective().cloned();
        let chain_energy = |evaluation: &Evaluation, weights: &[f64; 3]| match &objective {
            Some(o) => objective_energy(o.as_ref(), evaluation),
            None => energy(evaluation, weights),
        };

        let mut weights = random_weights(&mut rng);
        let mut state = random_state(&mut rng);
        let mut current = match session
            .evaluate_candidate(&state.candidate(space, relax, self.snap, wi, si))
        {
            SessionEval::Evaluated(e) => e,
            // Unreachable today: each chain is the first visitor of
            // its (workload, seq_len) group, and an empty group
            // frontier admits every bound. Skip the chain rather than
            // walk without an energy, should a future change let a
            // warm frontier precede the chain.
            SessionEval::Screened | SessionEval::Exhausted => return session.finish(self.name()),
        };
        let mut current_energy = chain_energy(&current, &weights);
        let mut temp = self.initial_temp;
        // Proposal cap: small per-group subspaces can be fully
        // explored long before the share is spent; don't spin.
        let mut proposals = 0usize;
        let proposal_cap = share * 32 + 64;

        // The chain session's whole budget is its share, so exhaustion is
        // exactly "share spent".
        while !session.exhausted() && proposals < proposal_cap {
            proposals += 1;
            let mut next = state;
            next.dim_log2 = (next.dim_log2 + rng.gen_range(-self.step_octaves..self.step_octaves))
                .clamp(dim_lo, dim_hi);
            next.buf_log2 = (next.buf_log2 + rng.gen_range(-self.step_octaves..self.step_octaves))
                .clamp(buf_lo, buf_hi);
            if clock_bw {
                // Clock and bandwidth live in half-octave-wide boxes,
                // so walk them at half the hardware-knob step.
                let half = self.step_octaves / 2.0;
                next.freq_log2 =
                    (next.freq_log2 + rng.gen_range(-half..half)).clamp(freq_lo, freq_hi);
                next.bw_log2 = (next.bw_log2 + rng.gen_range(-half..half)).clamp(bw_lo, bw_hi);
            }
            if n_kinds > 1 && rng.gen_bool(0.3) {
                next.kind_idx = rng.gen_range(0..n_kinds);
            }
            if n_freqs > 1 && rng.gen_bool(0.2) {
                next.freq_idx = rng.gen_range(0..n_freqs);
            }
            if n_policies > 1 && rng.gen_bool(0.2) {
                next.policy_idx = rng.gen_range(0..n_policies);
            }
            if n_fleets > 1 && rng.gen_bool(0.2) {
                next.fleet_idx = rng.gen_range(0..n_fleets);
            }
            let proposal = next.candidate(space, relax, self.snap, wi, si);
            let candidate = match session.evaluate_candidate(&proposal) {
                SessionEval::Evaluated(e) => e,
                // Provably dominated: reject the move without cooling
                // (no energy was compared) and keep walking.
                SessionEval::Screened => continue,
                SessionEval::Exhausted => break,
            };
            let candidate_energy = chain_energy(&candidate, &weights);
            let delta = candidate_energy - current_energy;
            let accept = delta <= 0.0 || rng.gen_range(0.0..1.0) < (-delta / temp).exp();
            if accept {
                state = next;
                current = candidate;
                current_energy = candidate_energy;
            }
            temp *= self.cooling;
            if temp < 1e-3 {
                // Frozen: restart toward a fresh Pareto corner.
                weights = random_weights(&mut rng);
                state = random_state(&mut rng);
                if let SessionEval::Evaluated(e) =
                    session.evaluate_candidate(&state.candidate(space, relax, self.snap, wi, si))
                {
                    current = e;
                    current_energy = chain_energy(&current, &weights);
                }
                temp = self.initial_temp;
            }
        }
        let _ = current;
        session.finish(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusemax_model::{ConfigKind, ModelParams};
    use fusemax_workloads::TransformerConfig;

    fn space() -> DesignSpace {
        DesignSpace::new()
            .with_array_dims([16, 32, 64, 128, 256, 512])
            .with_kinds(ConfigKind::all())
            .with_workloads([TransformerConfig::bert()])
            .with_seq_lens([1 << 18])
            .with_buffer_scales([0.5, 1.0, 2.0])
    }

    #[test]
    fn spends_at_most_the_budget() {
        let sweeper = Sweeper::new(ModelParams::default());
        let outcome =
            SimulatedAnnealing::new(2).search(&sweeper, &space(), SearchBudget::evaluations(30));
        assert!(outcome.stats.requested <= 30);
        assert!(outcome.stats.requested >= 10, "walker stalled early");
    }

    #[test]
    fn deterministic_per_seed() {
        let sweeper = Sweeper::new(ModelParams::default());
        let a =
            SimulatedAnnealing::new(5).search(&sweeper, &space(), SearchBudget::evaluations(20));
        let b =
            SimulatedAnnealing::new(5).search(&sweeper, &space(), SearchBudget::evaluations(20));
        for (x, y) in a.evaluations.iter().zip(&b.evaluations) {
            assert_eq!(x.point, y.point);
        }
    }

    #[test]
    fn clock_bw_relaxation_walks_off_the_stock_clock_and_bandwidth() {
        let sweeper = Sweeper::new(ModelParams::default());
        let outcome = SimulatedAnnealing::new(4)
            .with_snap_policy(SnapPolicy::Continuous)
            .with_clock_bw_relaxation(true)
            .search(&sweeper, &space(), SearchBudget::evaluations(30));
        let off_clock =
            outcome.evaluations.iter().filter(|e| e.point.arch.frequency_hz != 940e6).count();
        let off_bw = outcome
            .evaluations
            .iter()
            .filter(|e| e.point.arch.dram_bw_bytes_per_sec != 400e9)
            .count();
        assert!(off_clock > 0, "no evaluated design left the stock clock");
        assert!(off_bw > 0, "no evaluated design left the stock bandwidth");
        // The knobs stay inside the half-octave-padded boxes.
        for e in &outcome.evaluations {
            let f = e.point.arch.frequency_hz;
            let bw = e.point.arch.dram_bw_bytes_per_sec;
            assert!(f >= 940e6 / 2f64.sqrt() - 1.0 && f <= 940e6 * 2f64.sqrt() + 1.0, "{f}");
            assert!(bw >= 400e9 / 2f64.sqrt() - 1.0 && bw <= 400e9 * 2f64.sqrt() + 1.0, "{bw}");
        }
    }

    #[test]
    fn clock_bw_relaxation_is_deterministic_and_off_by_default() {
        let sweeper = Sweeper::new(ModelParams::default());
        let strat = || {
            SimulatedAnnealing::new(6)
                .with_snap_policy(SnapPolicy::Continuous)
                .with_clock_bw_relaxation(true)
        };
        let a = strat().search(&sweeper, &space(), SearchBudget::evaluations(20));
        let b = strat().search(&sweeper, &space(), SearchBudget::evaluations(20));
        for (x, y) in a.evaluations.iter().zip(&b.evaluations) {
            assert_eq!(x.point, y.point);
        }
        // Without the flag, continuous runs keep the stock clock/bandwidth.
        let plain = SimulatedAnnealing::new(6).with_snap_policy(SnapPolicy::Continuous).search(
            &sweeper,
            &space(),
            SearchBudget::evaluations(20),
        );
        for e in &plain.evaluations {
            assert_eq!(e.point.arch.frequency_hz, 940e6);
            assert_eq!(e.point.arch.dram_bw_bytes_per_sec, 400e9);
        }
    }

    #[test]
    fn splits_budget_across_groups() {
        let sweeper = Sweeper::new(ModelParams::default());
        let multi = space()
            .with_workloads([TransformerConfig::bert(), TransformerConfig::xlm()])
            .with_seq_lens([1 << 14, 1 << 18]);
        let outcome =
            SimulatedAnnealing::new(8).search(&sweeper, &multi, SearchBudget::evaluations(40));
        assert_eq!(outcome.frontiers.len(), 4, "every (workload, seq_len) group gets a chain");
    }
}
