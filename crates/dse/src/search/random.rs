//! Uniform random sampling — the baseline every guided strategy must
//! beat, and a surprisingly strong one when the budget is a sizable
//! fraction of the space.

use crate::search::strategy::{
    random_genome, SearchBudget, SearchOutcome, SearchStrategy, Session,
};
use crate::space::{Candidate, DesignSpace};
use crate::sweep::Sweeper;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// How many samples are staged between batch flushes by default: enough
/// to keep every worker of a wide machine busy, small enough that the
/// screening frontier (when enabled) still tightens several times per
/// run. Fixed — never derived from the core count — so results are
/// machine-independent.
const DEFAULT_BATCH: usize = 16;

/// Uniform random sampling without replacement (duplicates are retried,
/// not charged), deterministic per seed.
///
/// Samples are staged and evaluated in multi-point batches (16 by
/// default, [`RandomSearch::with_batch`]) so cache misses run on all the
/// sweeper's cores; seeded results are identical to the one-at-a-time
/// serial path because staging charges the budget and consumes the RNG in
/// exactly the per-sample order.
///
/// # Example
///
/// ```
/// use fusemax_dse::search::{RandomSearch, SearchBudget, SearchStrategy};
/// use fusemax_dse::{DesignSpace, Sweeper};
/// use fusemax_model::ModelParams;
///
/// let space = DesignSpace::new();
/// let sweeper = Sweeper::new(ModelParams::default());
/// let outcome = RandomSearch::new(7).search(&sweeper, &space, SearchBudget::evaluations(6));
/// assert_eq!(outcome.stats.requested, 6);
/// assert!(!outcome.frontier_points().is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct RandomSearch {
    seed: u64,
    screening: bool,
    batch: usize,
}

impl RandomSearch {
    /// A random searcher drawing its stream from `seed`.
    pub fn new(seed: u64) -> Self {
        RandomSearch { seed, screening: false, batch: DEFAULT_BATCH }
    }

    /// Enables the multi-fidelity lower-bound screen: samples whose
    /// closed-form bound is already dominated by the running frontier are
    /// rejected against [`SearchBudget::cheap`] instead of costing a
    /// model evaluation. Screening tests against the frontier as of the
    /// last flushed batch, so a smaller [`RandomSearch::with_batch`]
    /// tightens the screen at the cost of shallower parallelism.
    pub fn with_screening(mut self, screening: bool) -> Self {
        self.screening = screening;
        self
    }

    /// Replaces the number of samples staged per batch flush (clamped to
    /// ≥ 1). Without screening the batch size cannot change results —
    /// samples are drawn, charged, and recorded in the same order for any
    /// batch size (and parallel ≡ serial is test-enforced at every batch
    /// size). **With screening on, batch size is part of the
    /// configuration**: the screen tests against the frontier as of the
    /// last flush, so different batch sizes reject different samples —
    /// deterministically, but not identically.
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }
}

impl SearchStrategy for RandomSearch {
    fn name(&self) -> &'static str {
        "random"
    }

    fn search(
        &self,
        sweeper: &Sweeper,
        space: &DesignSpace,
        budget: SearchBudget,
    ) -> SearchOutcome {
        let mut session = Session::new(sweeper, space, budget).with_screening(self.screening);
        if space.is_empty() {
            return session.finish(self.name());
        }
        let lens = space.axis_lens();
        let mut rng = StdRng::seed_from_u64(self.seed);
        // Rejection-sample distinct points; the attempt cap bounds the
        // tail when the budget approaches the space size. Samples are
        // drawn in the serial order but evaluated as multi-point batches
        // (the batch charges the budget per sample, in draw order, so the
        // evaluated set is identical to the one-at-a-time path).
        let mut attempts = 0usize;
        let cap = session.remaining().saturating_mul(64) + 256;
        while !session.exhausted() && attempts < cap {
            let mut chunk = Vec::with_capacity(self.batch);
            while chunk.len() < self.batch && attempts < cap {
                attempts += 1;
                chunk.push(Candidate::Grid(random_genome(&mut rng, &lens)));
            }
            session.evaluate_batch(&chunk);
        }
        session.finish(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusemax_model::{ConfigKind, ModelParams};
    use fusemax_workloads::TransformerConfig;

    fn space() -> DesignSpace {
        DesignSpace::new()
            .with_array_dims([16, 32, 64, 128, 256, 512])
            .with_kinds(ConfigKind::all())
            .with_workloads([TransformerConfig::bert()])
            .with_seq_lens([1 << 16])
    }

    #[test]
    fn spends_exactly_the_budget() {
        let sweeper = Sweeper::new(ModelParams::default());
        let outcome = RandomSearch::new(1).search(&sweeper, &space(), SearchBudget::evaluations(8));
        assert_eq!(outcome.stats.requested, 8);
        assert_eq!(outcome.evaluations.len(), 8);
    }

    #[test]
    fn deterministic_per_seed() {
        let sweeper = Sweeper::new(ModelParams::default());
        let a = RandomSearch::new(42).search(&sweeper, &space(), SearchBudget::evaluations(10));
        let b = RandomSearch::new(42).search(&sweeper, &space(), SearchBudget::evaluations(10));
        assert_eq!(a.evaluations.len(), b.evaluations.len());
        for (x, y) in a.evaluations.iter().zip(&b.evaluations) {
            assert_eq!(x.point, y.point);
        }
        let c = RandomSearch::new(43).search(&sweeper, &space(), SearchBudget::evaluations(10));
        assert!(
            a.evaluations.iter().zip(&c.evaluations).any(|(x, y)| x.point != y.point),
            "different seeds should explore differently"
        );
    }

    #[test]
    fn saturates_small_spaces_without_spinning() {
        let sweeper = Sweeper::new(ModelParams::default());
        let tiny = space().with_array_dims([64]).with_kinds([ConfigKind::FuseMaxBinding]);
        let outcome = RandomSearch::new(5).search(&sweeper, &tiny, SearchBudget::evaluations(1000));
        assert_eq!(outcome.stats.requested, 1);
    }

    #[test]
    fn empty_space_yields_an_empty_outcome() {
        let sweeper = Sweeper::new(ModelParams::default());
        let empty = space().with_kinds([]);
        let outcome = RandomSearch::new(0).search(&sweeper, &empty, SearchBudget::evaluations(10));
        assert!(outcome.evaluations.is_empty());
        assert_eq!(outcome.stats.requested, 0);
    }
}
