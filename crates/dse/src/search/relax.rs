//! Continuous-knob relaxation of the ordered hardware axes — array
//! dimension and buffer capacity — with snap-to-grid evaluation.
//!
//! The analytical model only accepts concrete grid values (the
//! [`DesignSpace`] axes), but simulated annealing wants a *neighborhood*:
//! "a slightly bigger array", "half the buffer". The relaxation maps both
//! knobs into log₂-space, where steps are multiplicative (the natural
//! geometry for power-of-two-ish hardware sizing), lets the walker move
//! continuously, and snaps each proposal to the nearest grid index for
//! evaluation. Per the ROADMAP, this is the hook a gradient- or
//! neighborhood-based strategy needs without teaching the cost model
//! about non-grid designs.

use crate::space::DesignSpace;

/// Whether a continuous-knob proposal is forced back onto the grid for
/// evaluation, or evaluated as the genuinely off-grid design it names.
///
/// * [`SnapPolicy::Grid`] — the PR-2 behavior: every proposal snaps to
///   the nearest grid index ([`Relaxation::snap_dim`] /
///   [`Relaxation::snap_buffer`]) and only grid points are ever
///   evaluated. Budgets clamp to the space size.
/// * [`SnapPolicy::Continuous`] — proposals round to the nearest
///   *integer* array dimension and *byte* buffer capacity instead
///   ([`Relaxation::continuous_dim`] /
///   [`Relaxation::continuous_buffer_bytes`]) and are evaluated off-grid
///   via [`crate::Candidate::OffGrid`]. The analytical model accepts any
///   [`fusemax_arch::ArchConfig`], so the walker can land on designs the
///   grid cannot express — e.g. a 200×200 array, or a buffer 0.9× the
///   stock size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SnapPolicy {
    /// Snap every proposal to the nearest grid index (the default).
    #[default]
    Grid,
    /// Evaluate proposals off-grid at integer/byte resolution.
    Continuous,
}

/// The continuous view of a design space's ordered knobs.
///
/// # Example
///
/// ```
/// use fusemax_dse::search::Relaxation;
/// use fusemax_dse::DesignSpace;
///
/// let space = DesignSpace::new(); // array dims 16, 32, …, 512
/// let relax = Relaxation::new(&space);
/// // 100 is between 64 (2^6) and 128 (2^7), nearer 128 in log space.
/// assert_eq!(space.array_dims()[relax.snap_dim(100f64.log2())], 128);
/// ```
#[derive(Debug, Clone)]
pub struct Relaxation {
    dim_log2: Vec<f64>,
    buf_log2: Vec<f64>,
    freq_log2: Vec<f64>,
    bw_log2: f64,
}

/// Stock clock both configuration families run at (Fig 2): the anchor of
/// the continuous frequency knob when an axis entry is `None`.
const STOCK_FREQUENCY_HZ: f64 = 940e6;

/// Stock off-chip bandwidth of both families (Fig 2): the anchor of the
/// continuous DRAM-bandwidth knob (no grid axis exists for bandwidth).
const STOCK_DRAM_BW_BYTES_PER_SEC: f64 = 400e9;

impl Relaxation {
    /// Builds the relaxation of `space`'s array-dimension and
    /// buffer-scale axes.
    ///
    /// # Panics
    ///
    /// Panics if either axis is empty (an empty space has no geometry to
    /// relax).
    pub fn new(space: &DesignSpace) -> Self {
        assert!(
            !space.array_dims().is_empty()
                && !space.buffer_scales().is_empty()
                && !space.frequencies_hz().is_empty(),
            "cannot relax an empty axis"
        );
        Relaxation {
            dim_log2: space.array_dims().iter().map(|&d| (d as f64).log2()).collect(),
            buf_log2: space.buffer_scales().iter().map(|&s| s.log2()).collect(),
            freq_log2: space
                .frequencies_hz()
                .iter()
                .map(|f| f.unwrap_or(STOCK_FREQUENCY_HZ).log2())
                .collect(),
            bw_log2: STOCK_DRAM_BW_BYTES_PER_SEC.log2(),
        }
    }

    /// Inclusive log₂ bounds of the continuous array-dimension knob,
    /// padded by half an octave so the walker can probe past the grid
    /// edges (it snaps back).
    pub fn dim_bounds(&self) -> (f64, f64) {
        bounds(&self.dim_log2)
    }

    /// Inclusive log₂ bounds of the continuous buffer knob, padded the
    /// same way.
    pub fn buf_bounds(&self) -> (f64, f64) {
        bounds(&self.buf_log2)
    }

    /// The grid index whose array dimension is nearest `dim_log2` (in
    /// log space — i.e. by ratio, not by difference).
    pub fn snap_dim(&self, dim_log2: f64) -> usize {
        snap(&self.dim_log2, dim_log2)
    }

    /// The grid index whose buffer scale is nearest `buf_log2`.
    pub fn snap_buffer(&self, buf_log2: f64) -> usize {
        snap(&self.buf_log2, buf_log2)
    }

    /// The off-grid array dimension nearest the continuous coordinate
    /// `dim_log2`: `2^dim_log2` rounded to the nearest positive integer.
    /// This is the [`SnapPolicy::Continuous`] counterpart of
    /// [`Relaxation::snap_dim`] — integer resolution instead of grid
    /// resolution.
    pub fn continuous_dim(&self, dim_log2: f64) -> usize {
        (2f64.powf(dim_log2).round().max(1.0)) as usize
    }

    /// The off-grid buffer capacity at continuous coordinate `buf_log2`,
    /// scaled from `base_bytes` (the family's dimension-scaled default):
    /// `base_bytes · 2^buf_log2` rounded up to a whole, nonzero byte
    /// count.
    pub fn continuous_buffer_bytes(&self, base_bytes: u64, buf_log2: f64) -> u64 {
        ((base_bytes as f64 * 2f64.powf(buf_log2)).ceil().max(1.0)) as u64
    }

    /// Inclusive log₂(Hz) bounds of the continuous clock knob: the
    /// frequency axis's concrete values (stock 940 MHz standing in for
    /// `None`), padded by half an octave — so a continuous run can trade
    /// up to ~41 % of clock rate against bandwidth in either direction.
    pub fn freq_bounds(&self) -> (f64, f64) {
        bounds(&self.freq_log2)
    }

    /// Inclusive log₂(bytes/s) bounds of the continuous DRAM-bandwidth
    /// knob, half an octave around the stock 400 GB/s (no grid axis
    /// exists for bandwidth, so the stock value is the only anchor).
    pub fn bw_bounds(&self) -> (f64, f64) {
        (self.bw_log2 - 0.5, self.bw_log2 + 0.5)
    }

    /// The off-grid clock at continuous coordinate `freq_log2`, in hertz
    /// (`2^freq_log2`) — the [`SnapPolicy::Continuous`] frequency knob.
    pub fn continuous_frequency_hz(&self, freq_log2: f64) -> f64 {
        2f64.powf(freq_log2)
    }

    /// The off-grid DRAM bandwidth at continuous coordinate `bw_log2`,
    /// in bytes per second (`2^bw_log2`).
    pub fn continuous_dram_bw(&self, bw_log2: f64) -> f64 {
        2f64.powf(bw_log2)
    }

    /// The continuous coordinate of grid index `idx` on the frequency
    /// axis (stock 940 MHz standing in for `None`).
    pub fn freq_log2_of(&self, idx: usize) -> f64 {
        self.freq_log2[idx]
    }

    /// The continuous coordinate of the stock DRAM bandwidth.
    pub fn bw_log2_stock(&self) -> f64 {
        self.bw_log2
    }

    /// The continuous coordinate of grid index `idx` on the dimension
    /// axis.
    pub fn dim_log2_of(&self, idx: usize) -> f64 {
        self.dim_log2[idx]
    }

    /// The continuous coordinate of grid index `idx` on the buffer axis.
    pub fn buf_log2_of(&self, idx: usize) -> f64 {
        self.buf_log2[idx]
    }
}

/// Min/max of `values` padded by half an octave on each side.
fn bounds(values: &[f64]) -> (f64, f64) {
    let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    (lo - 0.5, hi + 0.5)
}

/// Index of the value nearest `x`; first wins on exact ties, so snapping
/// is deterministic even on unsorted axes.
fn snap(values: &[f64], x: f64) -> usize {
    let mut best = 0;
    let mut best_dist = f64::INFINITY;
    for (i, &v) in values.iter().enumerate() {
        let dist = (v - x).abs();
        if dist < best_dist {
            best = i;
            best_dist = dist;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusemax_model::ConfigKind;

    fn space() -> DesignSpace {
        DesignSpace::new()
            .with_array_dims([16, 32, 64, 128, 256, 512])
            .with_kinds([ConfigKind::FuseMaxBinding])
            .with_buffer_scales([0.5, 1.0, 2.0])
    }

    #[test]
    fn snapping_recovers_grid_points() {
        let relax = Relaxation::new(&space());
        for (i, &d) in space().array_dims().iter().enumerate() {
            assert_eq!(relax.snap_dim((d as f64).log2()), i);
        }
        for (i, &s) in space().buffer_scales().iter().enumerate() {
            assert_eq!(relax.snap_buffer(s.log2()), i);
        }
    }

    #[test]
    fn snapping_picks_the_log_nearest_neighbor() {
        let relax = Relaxation::new(&space());
        // 2^5.4 ≈ 42 → nearer 32 (2^5) than 64 (2^6).
        assert_eq!(relax.snap_dim(5.4), 1);
        assert_eq!(relax.snap_dim(5.6), 2);
        // Far out of range clamps to the nearest edge.
        assert_eq!(relax.snap_dim(-10.0), 0);
        assert_eq!(relax.snap_dim(99.0), 5);
    }

    #[test]
    fn bounds_pad_the_grid_by_half_an_octave() {
        let relax = Relaxation::new(&space());
        let (lo, hi) = relax.dim_bounds();
        assert_eq!(lo, 4.0 - 0.5);
        assert_eq!(hi, 9.0 + 0.5);
        let (blo, bhi) = relax.buf_bounds();
        assert_eq!(blo, -1.5);
        assert_eq!(bhi, 1.5);
    }

    #[test]
    fn roundtrip_through_indices() {
        let relax = Relaxation::new(&space());
        for i in 0..6 {
            assert_eq!(relax.snap_dim(relax.dim_log2_of(i)), i);
        }
        for i in 0..3 {
            assert_eq!(relax.snap_buffer(relax.buf_log2_of(i)), i);
        }
    }

    #[test]
    #[should_panic(expected = "empty axis")]
    fn empty_axis_panics() {
        let _ = Relaxation::new(&space().with_array_dims([]));
    }

    #[test]
    fn continuous_dim_rounds_to_the_nearest_integer() {
        let relax = Relaxation::new(&space());
        // 2^7.64 ≈ 199.5 → 199, a dimension no grid axis contains.
        assert_eq!(relax.continuous_dim(7.64), 199);
        // Exact grid coordinates recover the grid values.
        for &d in space().array_dims() {
            assert_eq!(relax.continuous_dim((d as f64).log2()), d);
        }
        // Far below the grid still yields a valid (≥1) dimension.
        assert_eq!(relax.continuous_dim(-20.0), 1);
    }

    #[test]
    fn continuous_buffer_scales_geometrically_and_stays_nonzero() {
        let relax = Relaxation::new(&space());
        let base = 22u64 << 20;
        assert_eq!(relax.continuous_buffer_bytes(base, 0.0), base);
        assert_eq!(relax.continuous_buffer_bytes(base, 1.0), base * 2);
        // A fractional octave lands strictly between the grid scales.
        let between = relax.continuous_buffer_bytes(base, -0.5);
        assert!(between > base / 2 && between < base);
        assert_eq!(relax.continuous_buffer_bytes(1, -40.0), 1, "never rounds to zero");
    }

    #[test]
    fn frequency_knob_anchors_on_the_axis_with_stock_for_none() {
        let relax = Relaxation::new(&space());
        // Default axis is [None] → stock 940 MHz, padded ±0.5 octave.
        let (lo, hi) = relax.freq_bounds();
        let stock = 940e6f64.log2();
        assert_eq!(lo, stock - 0.5);
        assert_eq!(hi, stock + 0.5);
        assert_eq!(relax.freq_log2_of(0), stock);
        let roundtrip = relax.continuous_frequency_hz(stock);
        assert!((roundtrip / 940e6 - 1.0).abs() < 1e-12, "{roundtrip}");

        // A concrete axis entry widens the anchored range.
        let wide = Relaxation::new(&space().with_frequencies_hz([None, Some(470e6)]));
        let (wlo, whi) = wide.freq_bounds();
        assert_eq!(wlo, 470e6f64.log2() - 0.5);
        assert_eq!(whi, stock + 0.5);
    }

    #[test]
    fn bandwidth_knob_anchors_on_the_stock_400gbs() {
        let relax = Relaxation::new(&space());
        let stock = 400e9f64.log2();
        assert_eq!(relax.bw_log2_stock(), stock);
        let (lo, hi) = relax.bw_bounds();
        assert_eq!((lo, hi), (stock - 0.5, stock + 0.5));
        let roundtrip = relax.continuous_dram_bw(stock);
        assert!((roundtrip / 400e9 - 1.0).abs() < 1e-12, "{roundtrip}");
        // Half an octave up is √2× the bandwidth.
        let up = relax.continuous_dram_bw(stock + 0.5);
        assert!((up / 400e9 - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn snap_policy_default_is_grid() {
        assert_eq!(SnapPolicy::default(), SnapPolicy::Grid);
        assert_ne!(SnapPolicy::Grid, SnapPolicy::Continuous);
    }
}
