//! Continuous-knob relaxation of the ordered hardware axes — array
//! dimension and buffer capacity — with snap-to-grid evaluation.
//!
//! The analytical model only accepts concrete grid values (the
//! [`DesignSpace`] axes), but simulated annealing wants a *neighborhood*:
//! "a slightly bigger array", "half the buffer". The relaxation maps both
//! knobs into log₂-space, where steps are multiplicative (the natural
//! geometry for power-of-two-ish hardware sizing), lets the walker move
//! continuously, and snaps each proposal to the nearest grid index for
//! evaluation. Per the ROADMAP, this is the hook a gradient- or
//! neighborhood-based strategy needs without teaching the cost model
//! about non-grid designs.

use crate::space::DesignSpace;

/// The continuous view of a design space's ordered knobs.
///
/// # Example
///
/// ```
/// use fusemax_dse::search::Relaxation;
/// use fusemax_dse::DesignSpace;
///
/// let space = DesignSpace::new(); // array dims 16, 32, …, 512
/// let relax = Relaxation::new(&space);
/// // 100 is between 64 (2^6) and 128 (2^7), nearer 128 in log space.
/// assert_eq!(space.array_dims()[relax.snap_dim(100f64.log2())], 128);
/// ```
#[derive(Debug, Clone)]
pub struct Relaxation {
    dim_log2: Vec<f64>,
    buf_log2: Vec<f64>,
}

impl Relaxation {
    /// Builds the relaxation of `space`'s array-dimension and
    /// buffer-scale axes.
    ///
    /// # Panics
    ///
    /// Panics if either axis is empty (an empty space has no geometry to
    /// relax).
    pub fn new(space: &DesignSpace) -> Self {
        assert!(
            !space.array_dims().is_empty() && !space.buffer_scales().is_empty(),
            "cannot relax an empty axis"
        );
        Relaxation {
            dim_log2: space.array_dims().iter().map(|&d| (d as f64).log2()).collect(),
            buf_log2: space.buffer_scales().iter().map(|&s| s.log2()).collect(),
        }
    }

    /// Inclusive log₂ bounds of the continuous array-dimension knob,
    /// padded by half an octave so the walker can probe past the grid
    /// edges (it snaps back).
    pub fn dim_bounds(&self) -> (f64, f64) {
        bounds(&self.dim_log2)
    }

    /// Inclusive log₂ bounds of the continuous buffer knob, padded the
    /// same way.
    pub fn buf_bounds(&self) -> (f64, f64) {
        bounds(&self.buf_log2)
    }

    /// The grid index whose array dimension is nearest `dim_log2` (in
    /// log space — i.e. by ratio, not by difference).
    pub fn snap_dim(&self, dim_log2: f64) -> usize {
        snap(&self.dim_log2, dim_log2)
    }

    /// The grid index whose buffer scale is nearest `buf_log2`.
    pub fn snap_buffer(&self, buf_log2: f64) -> usize {
        snap(&self.buf_log2, buf_log2)
    }

    /// The continuous coordinate of grid index `idx` on the dimension
    /// axis.
    pub fn dim_log2_of(&self, idx: usize) -> f64 {
        self.dim_log2[idx]
    }

    /// The continuous coordinate of grid index `idx` on the buffer axis.
    pub fn buf_log2_of(&self, idx: usize) -> f64 {
        self.buf_log2[idx]
    }
}

/// Min/max of `values` padded by half an octave on each side.
fn bounds(values: &[f64]) -> (f64, f64) {
    let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    (lo - 0.5, hi + 0.5)
}

/// Index of the value nearest `x`; first wins on exact ties, so snapping
/// is deterministic even on unsorted axes.
fn snap(values: &[f64], x: f64) -> usize {
    let mut best = 0;
    let mut best_dist = f64::INFINITY;
    for (i, &v) in values.iter().enumerate() {
        let dist = (v - x).abs();
        if dist < best_dist {
            best = i;
            best_dist = dist;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusemax_model::ConfigKind;

    fn space() -> DesignSpace {
        DesignSpace::new()
            .with_array_dims([16, 32, 64, 128, 256, 512])
            .with_kinds([ConfigKind::FuseMaxBinding])
            .with_buffer_scales([0.5, 1.0, 2.0])
    }

    #[test]
    fn snapping_recovers_grid_points() {
        let relax = Relaxation::new(&space());
        for (i, &d) in space().array_dims().iter().enumerate() {
            assert_eq!(relax.snap_dim((d as f64).log2()), i);
        }
        for (i, &s) in space().buffer_scales().iter().enumerate() {
            assert_eq!(relax.snap_buffer(s.log2()), i);
        }
    }

    #[test]
    fn snapping_picks_the_log_nearest_neighbor() {
        let relax = Relaxation::new(&space());
        // 2^5.4 ≈ 42 → nearer 32 (2^5) than 64 (2^6).
        assert_eq!(relax.snap_dim(5.4), 1);
        assert_eq!(relax.snap_dim(5.6), 2);
        // Far out of range clamps to the nearest edge.
        assert_eq!(relax.snap_dim(-10.0), 0);
        assert_eq!(relax.snap_dim(99.0), 5);
    }

    #[test]
    fn bounds_pad_the_grid_by_half_an_octave() {
        let relax = Relaxation::new(&space());
        let (lo, hi) = relax.dim_bounds();
        assert_eq!(lo, 4.0 - 0.5);
        assert_eq!(hi, 9.0 + 0.5);
        let (blo, bhi) = relax.buf_bounds();
        assert_eq!(blo, -1.5);
        assert_eq!(bhi, 1.5);
    }

    #[test]
    fn roundtrip_through_indices() {
        let relax = Relaxation::new(&space());
        for i in 0..6 {
            assert_eq!(relax.snap_dim(relax.dim_log2_of(i)), i);
        }
        for i in 0..3 {
            assert_eq!(relax.snap_buffer(relax.buf_log2_of(i)), i);
        }
    }

    #[test]
    #[should_panic(expected = "empty axis")]
    fn empty_axis_panics() {
        let _ = Relaxation::new(&space().with_array_dims([]));
    }
}
