//! Guided design-space search: budgeted strategies that find the Pareto
//! frontier without enumerating the whole space.
//!
//! The exhaustive [`crate::Sweeper`] is ground truth, but its cost is the
//! product of every axis cardinality; guided strategies spend a fixed
//! evaluation budget instead and are scored by how much of the exhaustive
//! frontier's **hypervolume** they recover ([`hypervolume_fraction`],
//! [`convergence`]). Three [`SearchStrategy`] implementations ship:
//!
//! * [`RandomSearch`] — uniform sampling, the baseline;
//! * [`GeneticSearch`] — tournament selection on Pareto-rank fitness,
//!   uniform crossover, axis-aware mutation;
//! * [`SimulatedAnnealing`] — a Metropolis walker over the
//!   continuous-knob [`Relaxation`] of array dims and buffer bytes, with
//!   snap-to-grid evaluation by default and genuinely **off-grid**
//!   evaluation under [`SnapPolicy::Continuous`].
//!
//! Two orthogonal extensions apply to the strategies:
//!
//! * **Off-grid search** ([`SnapPolicy::Continuous`], on the annealer
//!   and the genetic searcher): the analytical model accepts any
//!   architecture, so continuous runs evaluate
//!   [`crate::Candidate::OffGrid`] designs — non-power-of-two array
//!   dimensions, arbitrary buffer byte counts — that the paper's grid
//!   cannot express, and routinely find points dominating grid frontier
//!   members.
//! * **Multi-fidelity screening** (`with_screening(true)` on any
//!   strategy): every candidate is first tested through the zero-cost
//!   [`crate::Sweeper::lower_bound`] against the running frontier — the
//!   guided-order mirror of [`crate::Sweeper::sweep_pruned`] — and
//!   provably-dominated proposals are rejected against the separate
//!   [`SearchBudget::cheap`] budget instead of costing a model
//!   evaluation.
//!
//! All strategies are deterministic per seed and evaluate through the
//! owning sweeper's shared [`crate::EvalCache`], so guided and exhaustive
//! runs reuse each other's work — a guided run over an already-swept
//! space performs **zero** new model evaluations.
//!
//! # Example
//!
//! ```
//! use fusemax_dse::search::{
//!     hypervolume_fraction, GeneticSearch, SearchBudget, SearchStrategy,
//! };
//! use fusemax_dse::{DesignSpace, Sweeper};
//! use fusemax_model::{ConfigKind, ModelParams};
//!
//! let space = DesignSpace::new().with_kinds(ConfigKind::all());
//! let sweeper = Sweeper::new(ModelParams::default());
//!
//! // Ground truth, then a guided run at a quarter of the cost.
//! let exhaustive = sweeper.sweep(&space);
//! let guided = GeneticSearch::new(7).search(
//!     &sweeper,
//!     &space,
//!     SearchBudget::fraction(&space, 0.25),
//! );
//! let recovered = hypervolume_fraction(&guided.frontiers, &exhaustive);
//! assert!(recovered > 0.5);
//!
//! // The guided run reused the exhaustive sweep's evaluations.
//! assert_eq!(guided.stats.evaluated, 0);
//! ```

mod annealing;
mod genetic;
mod hypervolume;
mod random;
mod relax;
mod strategy;

pub use annealing::SimulatedAnnealing;
pub use genetic::GeneticSearch;
pub use hypervolume::{
    convergence, hypervolume, hypervolume_fraction, record_convergence, reference_point,
    ConvergenceCurve, HvSample,
};
pub use random::RandomSearch;
pub use relax::{Relaxation, SnapPolicy};
pub use strategy::{SearchBudget, SearchOutcome, SearchStats, SearchStrategy};
