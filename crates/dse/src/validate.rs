//! Replays the analytical winners on the cycle-level simulator.
//!
//! The sweep ranks designs with a closed-form model; before trusting a
//! winner, [`validate_top_k`] re-runs it (at toy scale) through
//! [`fusemax_spatial::simulate`], which executes the actual FuseMax task
//! graph — computing real attention numerics as a side effect — and checks
//! that the analytical choice is numerically and cycle-wise sane.

use crate::sweep::{Evaluation, SweepOutcome};
use fusemax_core::kernels::attention_reference;
use fusemax_model::ConfigKind;
use fusemax_spatial::{simulate, Binding, SpatialConfig};
use fusemax_tensor::{Shape, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// What the simulator replay concluded about one design.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationStatus {
    /// Simulated; numerics matched the reference and cycles were sane.
    Confirmed,
    /// Simulated; something disagreed (see `detail`).
    Failed,
    /// Not simulated: the configuration has no spatial-simulator binding
    /// (the unfused and FLAT baselines are analytical-only).
    AnalyticalOnly,
}

/// The outcome of replaying one frontier design on the simulator.
#[derive(Debug, Clone)]
pub struct Validation {
    /// Architecture name of the validated design.
    pub arch_name: String,
    /// Configuration kind of the validated design.
    pub kind: ConfigKind,
    /// Verdict.
    pub status: ValidationStatus,
    /// Simulated makespan in cycles (0 for analytical-only designs).
    pub sim_cycles: u64,
    /// Largest absolute element error of the simulated attention output
    /// against the reference kernel.
    pub max_abs_error: f64,
    /// Human-readable explanation.
    pub detail: String,
}

impl Validation {
    /// `true` unless the replay contradicted the analytical model.
    pub fn passed(&self) -> bool {
        self.status != ValidationStatus::Failed
    }
}

impl fmt::Display for Validation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<22} {:<14} {:?}: {}",
            self.arch_name,
            self.kind.label(),
            self.status,
            self.detail
        )
    }
}

/// The simulator binding a configuration maps to, if any.
fn binding_for(kind: ConfigKind) -> Option<Binding> {
    match kind {
        ConfigKind::FuseMaxArch => Some(Binding::Serialized),
        // +Binding is the pipelined schedule; +Cascade runs the same 1-pass
        // cascade, so the pipelined task graph is the faithful replay.
        ConfigKind::FuseMaxBinding | ConfigKind::FuseMaxCascade => Some(Binding::Pipelined),
        ConfigKind::Unfused | ConfigKind::Flat => None,
    }
}

/// Tolerance for simulator-vs-reference attention numerics.
const NUMERIC_TOL: f64 = 1e-9;

/// Replays one evaluation at toy scale. The toy problem keeps the
/// simulated design's *structure* (its binding and task graph) while
/// shrinking extents so the discrete-event simulation stays fast.
fn validate_one(evaluation: &Evaluation, seed: u64) -> Validation {
    let kind = evaluation.point.kind;
    let arch_name = evaluation.point.arch.name.clone();
    let Some(binding) = binding_for(kind) else {
        return Validation {
            arch_name,
            kind,
            status: ValidationStatus::AnalyticalOnly,
            sim_cycles: 0,
            max_abs_error: 0.0,
            detail: "no spatial binding; analytical model is the only source".into(),
        };
    };

    let (e, f, m, p) = (8usize, 8usize, 32usize, 8usize);
    let cfg = SpatialConfig::toy(4, 4);
    let mut rng = StdRng::seed_from_u64(seed);
    let q = Tensor::<f64>::random_uniform(Shape::of(&[("E", e), ("P", p)]), -1.0, 1.0, &mut rng);
    let k = Tensor::<f64>::random_uniform(Shape::of(&[("E", e), ("M", m)]), -1.0, 1.0, &mut rng);
    let v = Tensor::<f64>::random_uniform(Shape::of(&[("F", f), ("M", m)]), -1.0, 1.0, &mut rng);

    let sim = match simulate(&q, &k, &v, &cfg, binding) {
        Ok(sim) => sim,
        Err(err) => {
            return Validation {
                arch_name,
                kind,
                status: ValidationStatus::Failed,
                sim_cycles: 0,
                max_abs_error: f64::INFINITY,
                detail: format!("simulation error: {err}"),
            };
        }
    };
    let reference = attention_reference(&q, &k, &v).expect("reference on valid shapes");
    let max_abs_error = sim
        .av
        .data()
        .iter()
        .zip(reference.data())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);

    // Cycle sanity: the schedule must be work-conserving (busy ≤ makespan)
    // and at least as long as the ideal 2D-compute floor.
    let ideal_2d = (e * m * p + f * m * p) as u64 / (cfg.rows * cfg.cols) as u64;
    let cycles_sane =
        sim.busy_2d <= sim.cycles && sim.busy_1d <= sim.cycles && sim.cycles >= ideal_2d;

    // The pipelined binding must not lose to the serialized one — the
    // ordering the whole +Binding argument rests on.
    let ordering_sane = if binding == Binding::Pipelined {
        match simulate(&q, &k, &v, &cfg, Binding::Serialized) {
            Ok(serial) => sim.cycles <= serial.cycles,
            Err(_) => false,
        }
    } else {
        true
    };

    let numerics_ok = max_abs_error <= NUMERIC_TOL;
    let status = if numerics_ok && cycles_sane && ordering_sane {
        ValidationStatus::Confirmed
    } else {
        ValidationStatus::Failed
    };
    let detail = format!(
        "{} cycles, max |err| {:.2e}{}{}{}",
        sim.cycles,
        max_abs_error,
        if numerics_ok { "" } else { " [numerics BAD]" },
        if cycles_sane { "" } else { " [cycles BAD]" },
        if ordering_sane { "" } else { " [pipelined slower than serialized]" },
    );
    Validation { arch_name, kind, status, sim_cycles: sim.cycles, max_abs_error, detail }
}

/// Replays up to `k` top frontier designs of `outcome` on the spatial
/// simulator — each `(workload, seq_len)` group's lowest-latency winner
/// first, then the runners-up (see [`SweepOutcome::top_k`]).
///
/// # Example
///
/// ```
/// use fusemax_dse::{validate_top_k, DesignSpace, Sweeper, ValidationStatus};
/// use fusemax_model::ModelParams;
///
/// let outcome = Sweeper::new(ModelParams::default())
///     .sweep(&DesignSpace::new().with_array_dims([64, 128]));
/// let report = validate_top_k(&outcome, 2);
/// assert_eq!(report.len(), 2);
/// assert!(report.iter().all(|v| v.status == ValidationStatus::Confirmed));
/// ```
pub fn validate_top_k(outcome: &SweepOutcome, k: usize) -> Vec<Validation> {
    outcome
        .top_k(k)
        .into_iter()
        .enumerate()
        .map(|(i, evaluation)| validate_one(evaluation, 0x5EED + i as u64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::DesignSpace;
    use crate::sweep::Sweeper;
    use fusemax_model::ModelParams;
    use fusemax_workloads::TransformerConfig;

    fn outcome(kinds: [ConfigKind; 1]) -> SweepOutcome {
        Sweeper::new(ModelParams::default()).sweep(
            &DesignSpace::new()
                .with_array_dims([64, 128])
                .with_kinds(kinds)
                .with_workloads([TransformerConfig::bert()]),
        )
    }

    #[test]
    fn pipelined_winners_are_confirmed() {
        let report = validate_top_k(&outcome([ConfigKind::FuseMaxBinding]), 2);
        assert_eq!(report.len(), 2);
        for v in &report {
            assert_eq!(v.status, ValidationStatus::Confirmed, "{v}");
            assert!(v.passed());
            assert!(v.max_abs_error <= NUMERIC_TOL);
            assert!(v.sim_cycles > 0);
        }
    }

    #[test]
    fn serialized_winners_are_confirmed() {
        let report = validate_top_k(&outcome([ConfigKind::FuseMaxArch]), 1);
        assert_eq!(report[0].status, ValidationStatus::Confirmed, "{}", report[0]);
    }

    #[test]
    fn baselines_are_analytical_only() {
        let report = validate_top_k(&outcome([ConfigKind::Flat]), 1);
        assert_eq!(report[0].status, ValidationStatus::AnalyticalOnly);
        assert!(report[0].passed(), "analytical-only is not a failure");
    }

    #[test]
    fn asking_for_more_than_the_frontier_has_is_fine() {
        let report = validate_top_k(&outcome([ConfigKind::FuseMaxBinding]), 99);
        assert_eq!(report.len(), 2);
    }
}
