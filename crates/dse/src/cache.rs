//! The keyed evaluation cache: repeated sweeps and figure regeneration
//! reuse analytical-model results instead of recomputing them.

use crate::space::{DesignPoint, FleetSpec, QueueOrder};
use crate::sweep::Evaluation;
use fusemax_arch::ExpCost;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The full identity of a design point, hashed field-by-field (floating
/// knobs via their bit patterns) so two points collide exactly when every
/// model-visible input is identical.
///
/// [`fusemax_model::ModelParams`] is deliberately *not* part of the key:
/// a [`crate::Sweeper`] owns one immutable `ModelParams` alongside its
/// cache, so entries can never mix parameterizations.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PointKey {
    array_rows: usize,
    array_cols: usize,
    vector_pes: usize,
    global_buffer_bytes: u64,
    dram_bw_bits: u64,
    frequency_bits: u64,
    word_bytes: u64,
    pe_2d: fusemax_arch::PeKind,
    exp_cost: (u8, u32),
    kind: fusemax_model::ConfigKind,
    model_name: String,
    layers: usize,
    heads: usize,
    head_dim: usize,
    ffn_dim: usize,
    batch: usize,
    seq_len: usize,
    chunk_tokens: Option<usize>,
    waiting_ratio_bits: u64,
    queue_order: QueueOrder,
    fleet: FleetSpec,
}

impl PointKey {
    /// Builds the key for `point`.
    pub fn of(point: &DesignPoint) -> Self {
        let arch = &point.arch;
        let w = &point.workload;
        PointKey {
            array_rows: arch.array_rows,
            array_cols: arch.array_cols,
            vector_pes: arch.vector_pes,
            global_buffer_bytes: arch.global_buffer_bytes,
            dram_bw_bits: arch.dram_bw_bytes_per_sec.to_bits(),
            frequency_bits: arch.frequency_hz.to_bits(),
            word_bytes: arch.word_bytes,
            pe_2d: arch.pe_2d,
            exp_cost: match arch.exp_cost {
                ExpCost::SingleOp => (0, 0),
                ExpCost::ChainedMaccs(n) => (1, n),
            },
            kind: point.kind,
            model_name: w.name.to_string(),
            layers: w.layers,
            heads: w.heads,
            head_dim: w.head_dim,
            ffn_dim: w.ffn_dim,
            batch: w.batch,
            seq_len: point.seq_len,
            chunk_tokens: point.policy.chunk_tokens,
            waiting_ratio_bits: point.policy.waiting_served_ratio.to_bits(),
            queue_order: point.policy.queue_order,
            fleet: point.fleet,
        }
    }
}

/// How many ways [`EvalCache`] stripes its map by default: enough that a
/// full complement of sweep workers rarely collides on one lock, small
/// enough that `len`/`snapshot` stay cheap.
const DEFAULT_SHARDS: usize = 16;

/// One lock-striped shard of the cache map.
type Shard = Mutex<HashMap<PointKey, Arc<Evaluation>>>;

/// A thread-safe map from [`PointKey`] to finished [`Evaluation`]s, with
/// hit/miss counters.
///
/// Entries are [`Arc`]-shared: a second sweep over the same space returns
/// clones of the *same* allocation, so reports are bit-identical by
/// construction.
///
/// Internally the map is **lock-striped**: keys hash to one of N shards,
/// each behind its own mutex, so concurrent sweeps and guided searches
/// stop contending on a single lock. Sharding is invisible to observers —
/// hit/miss counters, `len`, and the sorted JSON serialization
/// ([`crate::cache_json`]) are identical for every shard count
/// (property-tested against the 1-shard cache).
#[derive(Debug)]
pub struct EvalCache {
    shards: Box<[Shard]>,
    hits: AtomicU64,
    misses: AtomicU64,
    // Per-shard splits of the aggregate counters above (same Relaxed
    // discipline); `shard_hits[i] + …` always sums to `hits()`.
    shard_hits: Box<[AtomicU64]>,
    shard_misses: Box<[AtomicU64]>,
}

impl Default for EvalCache {
    fn default() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }
}

impl EvalCache {
    /// An empty cache with the default shard count.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache striped `shards` ways (clamped to ≥ 1). Observable
    /// behavior is shard-count-independent; only lock contention changes.
    pub fn with_shards(shards: usize) -> Self {
        let shards = shards.max(1);
        EvalCache {
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            shard_hits: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            shard_misses: (0..shards).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// The index of the shard holding `key` — a pure function of the key
    /// and the shard count (`DefaultHasher::new()` hashes with fixed
    /// keys), so telemetry can attribute traffic to shards
    /// deterministically across runs.
    pub fn shard_of(&self, key: &PointKey) -> usize {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        (hasher.finish() as usize) % self.shards.len()
    }

    /// The shard holding `key`.
    fn shard(&self, key: &PointKey) -> &Shard {
        &self.shards[self.shard_of(key)]
    }

    /// Looks up `key`, bumping the aggregate and per-shard hit or miss
    /// counters.
    pub fn get(&self, key: &PointKey) -> Option<Arc<Evaluation>> {
        let shard = self.shard_of(key);
        let found = self.shards[shard].lock().expect("cache poisoned").get(key).cloned();
        match &found {
            Some(_) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.shard_hits[shard].fetch_add(1, Ordering::Relaxed)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.shard_misses[shard].fetch_add(1, Ordering::Relaxed)
            }
        };
        found
    }

    /// Stores `evaluation` under `key`. If another thread raced us to the
    /// same key, the first insertion wins and its entry is returned, so
    /// every caller observes one canonical `Arc` per key.
    pub fn insert(&self, key: PointKey, evaluation: Arc<Evaluation>) -> Arc<Evaluation> {
        let mut map = self.shard(&key).lock().expect("cache poisoned");
        Arc::clone(map.entry(key).or_insert(evaluation))
    }

    /// Single-lookup fetch-or-compute: one shard lock classifies the hit
    /// (bumping the hit/miss counters exactly as [`EvalCache::get`]);
    /// only on a miss does `compute` run — **outside** any lock — before
    /// a second lock round inserts the result. Returns the canonical
    /// `Arc` and whether *this call's* `compute` produced it (`false` on
    /// a hit or a lost insertion race), so callers classify shared-cache
    /// reuse versus fresh evaluation without a separate
    /// [`EvalCache::contains`] round.
    pub fn get_or_insert_with(
        &self,
        key: PointKey,
        compute: impl FnOnce() -> Evaluation,
    ) -> (Arc<Evaluation>, bool) {
        if let Some(hit) = self.get(&key) {
            return (hit, false);
        }
        let computed = Arc::new(compute());
        let mut map = self.shard(&key).lock().expect("cache poisoned");
        match map.entry(key) {
            std::collections::hash_map::Entry::Occupied(slot) => (Arc::clone(slot.get()), false),
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(Arc::clone(&computed));
                (computed, true)
            }
        }
    }

    /// `true` when `key` is cached, *without* bumping the hit/miss
    /// counters — the peek the search session's screening path uses to
    /// skip bound checks for points the model will not run anyway.
    pub fn contains(&self, key: &PointKey) -> bool {
        self.shard(key).lock().expect("cache poisoned").contains_key(key)
    }

    /// Cache hits since construction.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses since construction.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of lock stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Per-shard `(hits, misses)` splits of the aggregate counters, in
    /// shard order — the raw material for the shard-skew telemetry that
    /// makes lock-striping pathologies (hot shards) visible.
    pub fn shard_counters(&self) -> Vec<(u64, u64)> {
        self.shard_hits
            .iter()
            .zip(self.shard_misses.iter())
            .map(|(h, m)| (h.load(Ordering::Relaxed), m.load(Ordering::Relaxed)))
            .collect()
    }

    /// Number of cached evaluations.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().expect("cache poisoned").len()).sum()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every cached evaluation, in arbitrary order (the JSON layer sorts
    /// before writing, so serialized snapshots are still deterministic).
    pub fn snapshot(&self) -> Vec<Arc<Evaluation>> {
        self.shards
            .iter()
            .flat_map(|s| s.lock().expect("cache poisoned").values().cloned().collect::<Vec<_>>())
            .collect()
    }

    /// Inserts evaluations loaded from disk, keying each by its own
    /// design point. Keys already present keep their in-memory entry (the
    /// live `Arc` identity must not change under consumers). Returns how
    /// many entries were actually absorbed.
    pub fn absorb(&self, evaluations: impl IntoIterator<Item = Arc<Evaluation>>) -> usize {
        let mut added = 0;
        for evaluation in evaluations {
            let key = PointKey::of(&evaluation.point);
            let mut map = self.shard(&key).lock().expect("cache poisoned");
            if let std::collections::hash_map::Entry::Vacant(slot) = map.entry(key) {
                slot.insert(evaluation);
                added += 1;
            }
        }
        added
    }

    /// Drops every entry and zeroes the counters.
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            shard.lock().expect("cache poisoned").clear();
        }
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        for counter in self.shard_hits.iter().chain(self.shard_misses.iter()) {
            counter.store(0, Ordering::Relaxed);
        }
    }
}

/// Fold a cache's counters into a telemetry
/// [`Metrics`](fusemax_telemetry::Metrics) registry:
/// aggregate and per-shard hit/miss counters, the hit ratio, and the
/// shard-skew gauge (max shard traffic over mean shard traffic; 1.0 is
/// perfectly balanced striping, large values mean a hot shard).
pub fn record_cache_metrics(cache: &EvalCache, metrics: &mut fusemax_telemetry::Metrics) {
    let per_shard = cache.shard_counters();
    let (hits, misses) = (cache.hits(), cache.misses());
    metrics.inc("search.cache.hit", hits);
    metrics.inc("search.cache.miss", misses);
    for (shard, (h, m)) in per_shard.iter().enumerate() {
        metrics.inc(&format!("search.cache.shard.{shard:03}.hit"), *h);
        metrics.inc(&format!("search.cache.shard.{shard:03}.miss"), *m);
    }
    if hits + misses > 0 {
        metrics.set_gauge("search.cache.hit_ratio", hits as f64 / (hits + misses) as f64);
        let traffic: Vec<u64> = per_shard.iter().map(|(h, m)| h + m).collect();
        let mean = (hits + misses) as f64 / traffic.len() as f64;
        let max = traffic.iter().copied().max().unwrap_or(0) as f64;
        metrics.set_gauge("search.cache.shard_skew", max / mean);
    }
    metrics.set_gauge("search.cache.entries", cache.len() as f64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{arch_for, DesignPoint};
    use fusemax_model::ConfigKind;
    use fusemax_workloads::TransformerConfig;

    fn point(kind: ConfigKind, n: usize, seq_len: usize) -> DesignPoint {
        DesignPoint {
            arch: arch_for(kind, n),
            kind,
            workload: TransformerConfig::bert(),
            seq_len,
            array_dim: n,
            policy: Default::default(),
            fleet: Default::default(),
        }
    }

    #[test]
    fn identical_points_share_a_key() {
        let a = PointKey::of(&point(ConfigKind::Flat, 128, 1 << 14));
        let b = PointKey::of(&point(ConfigKind::Flat, 128, 1 << 14));
        assert_eq!(a, b);
    }

    #[test]
    fn every_axis_separates_keys() {
        let base = point(ConfigKind::Flat, 128, 1 << 14);
        let k = PointKey::of(&base);
        assert_ne!(k, PointKey::of(&point(ConfigKind::Flat, 256, 1 << 14)), "array dim");
        assert_ne!(k, PointKey::of(&point(ConfigKind::Unfused, 128, 1 << 14)), "kind");
        assert_ne!(k, PointKey::of(&point(ConfigKind::Flat, 128, 1 << 16)), "seq len");

        let mut other_model = base.clone();
        other_model.workload = TransformerConfig::xlm();
        assert_ne!(k, PointKey::of(&other_model), "workload");

        let mut other_freq = base.clone();
        other_freq.arch.frequency_hz = 470e6;
        assert_ne!(k, PointKey::of(&other_freq), "frequency");

        let mut other_policy = base.clone();
        other_policy.policy = crate::space::SchedulerPolicy::chunked(512);
        assert_ne!(k, PointKey::of(&other_policy), "scheduler policy");

        let mut other_order = base.clone();
        other_order.policy = crate::space::SchedulerPolicy::unbounded()
            .with_queue_order(QueueOrder::ShortestPromptFirst);
        assert_ne!(k, PointKey::of(&other_order), "queue order");

        let mut other_fleet = base.clone();
        other_fleet.fleet = crate::space::FleetSpec::replicated(4);
        assert_ne!(k, PointKey::of(&other_fleet), "fleet");

        let mut other_router = base.clone();
        other_router.fleet = crate::space::FleetSpec::replicated(4)
            .with_router(crate::space::RouterPolicy::LeastLoaded);
        assert_ne!(PointKey::of(&other_fleet), PointKey::of(&other_router), "router");

        let mut other_buf = base;
        other_buf.arch.global_buffer_bytes *= 2;
        assert_ne!(k, PointKey::of(&other_buf), "buffer");
    }

    #[test]
    fn arch_name_does_not_affect_the_key() {
        let a = point(ConfigKind::Flat, 128, 1 << 14);
        let mut b = a.clone();
        b.arch.name = "renamed".into();
        assert_eq!(PointKey::of(&a), PointKey::of(&b));
    }

    #[test]
    fn counters_track_hits_and_misses() {
        let cache = EvalCache::new();
        let key = PointKey::of(&point(ConfigKind::Flat, 64, 1 << 12));
        assert!(cache.get(&key).is_none());
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        assert!(cache.is_empty());
    }

    #[test]
    fn shard_counters_split_the_aggregates() {
        let cache = EvalCache::with_shards(4);
        let keys: Vec<PointKey> =
            (1..6).map(|i| PointKey::of(&point(ConfigKind::Flat, 32 * i, 1 << 12))).collect();
        for key in &keys {
            cache.get(key); // miss
        }
        let (hits, misses): (u64, u64) =
            cache.shard_counters().iter().fold((0, 0), |(h, m), (sh, sm)| (h + sh, m + sm));
        assert_eq!((hits, misses), (cache.hits(), cache.misses()));
        assert_eq!(misses, keys.len() as u64);
        // Every key's traffic landed on its deterministic shard.
        for key in &keys {
            assert!(cache.shard_of(key) < cache.shard_count());
            assert_eq!(cache.shard_of(key), cache.shard_of(key));
        }
    }

    #[test]
    fn record_cache_metrics_surfaces_ratio_and_skew() {
        let cache = EvalCache::with_shards(4);
        let key = PointKey::of(&point(ConfigKind::Flat, 64, 1 << 12));
        cache.get(&key); // miss
        let e = {
            use crate::sweep::Sweeper;
            use fusemax_model::ModelParams;
            Sweeper::new(ModelParams::default()).evaluate(&point(ConfigKind::Flat, 64, 1 << 12))
        };
        cache.insert(key.clone(), e);
        cache.get(&key); // hit
        let mut metrics = fusemax_telemetry::Metrics::new();
        record_cache_metrics(&cache, &mut metrics);
        assert_eq!(metrics.counter("search.cache.hit"), 1);
        assert_eq!(metrics.counter("search.cache.miss"), 1);
        assert_eq!(metrics.gauge("search.cache.hit_ratio"), Some(0.5));
        // Both touches hit one shard of four: skew = max/mean = 2/(2/4).
        assert_eq!(metrics.gauge("search.cache.shard_skew"), Some(4.0));
        let shard = cache.shard_of(&key);
        assert_eq!(metrics.counter(&format!("search.cache.shard.{shard:03}.hit")), 1);
    }

    #[test]
    fn get_or_insert_with_is_one_canonical_arc_per_key() {
        use crate::sweep::Sweeper;
        use fusemax_model::ModelParams;
        let sweeper = Sweeper::new(ModelParams::default());
        let p = point(ConfigKind::Flat, 64, 1 << 12);
        let cache = EvalCache::new();
        let (first, fresh) =
            cache.get_or_insert_with(PointKey::of(&p), || (*sweeper.evaluate(&p)).clone());
        assert!(fresh, "first call must compute");
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        let (second, fresh) =
            cache.get_or_insert_with(PointKey::of(&p), || panic!("hit must not compute"));
        assert!(!fresh);
        assert!(Arc::ptr_eq(&first, &second), "one canonical Arc per key");
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn shard_counts_do_not_change_observable_state() {
        use crate::sweep::Sweeper;
        use fusemax_model::ModelParams;
        let sweeper = Sweeper::new(ModelParams::default());
        let points: Vec<DesignPoint> = [(ConfigKind::Flat, 64), (ConfigKind::FuseMaxBinding, 128)]
            .iter()
            .map(|&(k, n)| point(k, n, 1 << 12))
            .collect();
        let evaluations: Vec<Arc<Evaluation>> =
            points.iter().map(|p| sweeper.evaluate(p)).collect();

        let caches = [EvalCache::with_shards(1), EvalCache::with_shards(4), EvalCache::new()];
        for cache in &caches {
            for (p, e) in points.iter().zip(&evaluations) {
                assert!(cache.get(&PointKey::of(p)).is_none());
                cache.insert(PointKey::of(p), Arc::clone(e));
                assert!(cache.get(&PointKey::of(p)).is_some());
            }
        }
        for cache in &caches[1..] {
            assert_eq!(cache.len(), caches[0].len());
            assert_eq!(cache.hits(), caches[0].hits());
            assert_eq!(cache.misses(), caches[0].misses());
            assert_eq!(crate::json::cache_json(cache), crate::json::cache_json(&caches[0]));
        }
    }

    #[test]
    fn off_grid_candidates_key_by_their_materialized_identity() {
        // The off-grid story: a grid candidate and the off-grid candidate
        // naming the same concrete design share one canonical key, while
        // any knob difference separates them.
        use crate::space::{Candidate, DesignSpace};
        let space = DesignSpace::new().with_array_dims([64, 256]);
        let stock = arch_for(ConfigKind::FuseMaxBinding, 256).global_buffer_bytes;
        let grid = space.materialize(&Candidate::Grid([0, 0, 0, 1, 0, 0, 0, 0]));
        let alias = space.materialize(&Candidate::OffGrid {
            workload: 0,
            seq_len: 0,
            kind: 0,
            frequency: 0,
            array_dim: 256,
            buffer_bytes: stock,
            frequency_hz: None,
            dram_bw_bytes_per_sec: None,
            policy: 0,
            fleet: 0,
        });
        assert_eq!(PointKey::of(&grid), PointKey::of(&alias));

        let shrunk = space.materialize(&Candidate::OffGrid {
            workload: 0,
            seq_len: 0,
            kind: 0,
            frequency: 0,
            array_dim: 256,
            buffer_bytes: stock - 1,
            frequency_hz: None,
            dram_bw_bytes_per_sec: None,
            policy: 0,
            fleet: 0,
        });
        assert_ne!(PointKey::of(&grid), PointKey::of(&shrunk));
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        /// A design point from raw off-grid knobs.
        fn off_grid_point(
            kind_idx: usize,
            dim: usize,
            buffer_bytes: u64,
            freq: f64,
            seq_len: usize,
        ) -> DesignPoint {
            let kind = ConfigKind::all()[kind_idx];
            let mut arch = arch_for(kind, dim);
            arch.global_buffer_bytes = buffer_bytes;
            arch.frequency_hz = freq;
            DesignPoint {
                arch,
                kind,
                workload: TransformerConfig::bert(),
                seq_len,
                array_dim: dim,
                policy: Default::default(),
                fleet: Default::default(),
            }
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Distinct architectures never collide: two off-grid points
            /// share a key exactly when every model-visible knob is
            /// identical.
            #[test]
            fn distinct_arch_configs_never_collide(
                kind_a in 0usize..5, kind_b in 0usize..5,
                dim_a in 1usize..600, dim_b in 1usize..600,
                buf_a in 1u64..(64 << 20), buf_b in 1u64..(64 << 20),
                freq_idx_a in 0usize..3, freq_idx_b in 0usize..3,
                seq_exp_a in 10u32..21, seq_exp_b in 10u32..21,
            ) {
                let freqs = [940e6, 470e6, 1.2e9];
                let a = off_grid_point(
                    kind_a, dim_a, buf_a, freqs[freq_idx_a], 1usize << seq_exp_a);
                let b = off_grid_point(
                    kind_b, dim_b, buf_b, freqs[freq_idx_b], 1usize << seq_exp_b);
                let same_inputs = kind_a == kind_b
                    && dim_a == dim_b
                    && buf_a == buf_b
                    && freq_idx_a == freq_idx_b
                    && seq_exp_a == seq_exp_b;
                prop_assert_eq!(PointKey::of(&a) == PointKey::of(&b), same_inputs);
            }

            /// Materialized off-grid candidates with continuous clock and
            /// bandwidth overrides still key canonically: two candidates
            /// collide exactly when every materialized knob agrees — the
            /// contract that lets the relaxed frequency/bandwidth walker
            /// share one cache with everything else.
            #[test]
            fn materialized_off_grid_keys_never_collide(
                kind_a in 0usize..2, kind_b in 0usize..2,
                dim_a in 1usize..600, dim_b in 1usize..600,
                buf_a in 1u64..(64 << 20), buf_b in 1u64..(64 << 20),
                freq_a in 300.0e6f64..2.0e9, freq_b in 300.0e6f64..2.0e9,
                bw_a in 100.0e9f64..800.0e9, bw_b in 100.0e9f64..800.0e9,
            ) {
                use crate::space::{Candidate, DesignSpace};
                let space = DesignSpace::new()
                    .with_kinds([ConfigKind::Flat, ConfigKind::FuseMaxBinding]);
                let candidate = |k, d, b, f, bw| Candidate::OffGrid {
                    workload: 0,
                    seq_len: 0,
                    kind: k,
                    frequency: 0,
                    array_dim: d,
                    buffer_bytes: b,
                    frequency_hz: Some(f),
                    dram_bw_bytes_per_sec: Some(bw),
                    policy: 0,
                    fleet: 0,
                };
                let a = space.materialize(&candidate(kind_a, dim_a, buf_a, freq_a, bw_a));
                let b = space.materialize(&candidate(kind_b, dim_b, buf_b, freq_b, bw_b));
                let same = kind_a == kind_b
                    && dim_a == dim_b
                    && buf_a == buf_b
                    && freq_a == freq_b
                    && bw_a == bw_b;
                prop_assert_eq!(PointKey::of(&a) == PointKey::of(&b), same);
            }

            /// Sharding is observationally invisible: the same operation
            /// sequence applied to 1-, 4-, and 16-shard caches yields the
            /// same hits, misses, and length, and the serialized JSON —
            /// including a save→load→save round trip — is byte-identical
            /// across shard counts.
            #[test]
            fn sharded_cache_is_observationally_identical_to_one_shard(
                dims in proptest::collection::vec(1usize..400, 1..6),
                kind_idx in 0usize..5,
                op_pattern in proptest::collection::vec(0u8..3, 4..16),
            ) {
                use crate::sweep::Sweeper;
                use fusemax_model::ModelParams;
                let sweeper = Sweeper::new(ModelParams::default());
                let kind = ConfigKind::all()[kind_idx];
                let points: Vec<DesignPoint> = dims
                    .iter()
                    .map(|&d| DesignPoint {
                        arch: arch_for(kind, d),
                        kind,
                        workload: TransformerConfig::bert(),
                        seq_len: 1 << 10,
                        array_dim: d,
                        policy: Default::default(),
            fleet: Default::default(),
                    })
                    .collect();
                let evaluations: Vec<Arc<Evaluation>> =
                    points.iter().map(|p| sweeper.evaluate(p)).collect();

                let caches =
                    [EvalCache::with_shards(1), EvalCache::with_shards(4), EvalCache::with_shards(16)];
                for cache in &caches {
                    for (i, op) in op_pattern.iter().enumerate() {
                        let j = i % points.len();
                        let key = PointKey::of(&points[j]);
                        match op {
                            0 => { cache.get(&key); }
                            1 => { cache.insert(key, Arc::clone(&evaluations[j])); }
                            _ => {
                                cache.get_or_insert_with(key, || (*evaluations[j]).clone());
                            }
                        }
                    }
                }
                let reference = &caches[0];
                let reference_json = crate::json::cache_json(reference);
                for cache in &caches[1..] {
                    prop_assert_eq!(cache.len(), reference.len());
                    prop_assert_eq!(cache.hits(), reference.hits());
                    prop_assert_eq!(cache.misses(), reference.misses());
                    prop_assert_eq!(&crate::json::cache_json(cache), &reference_json);
                }

                // save → load → save: absorbing the parsed JSON into a
                // fresh cache of any shard count reproduces the bytes.
                let parsed = crate::json::parse_cache_json(&reference_json).expect("parse");
                for shards in [1usize, 4, 16] {
                    let reloaded = EvalCache::with_shards(shards);
                    reloaded.absorb(parsed.iter().cloned().map(Arc::new));
                    prop_assert_eq!(&crate::json::cache_json(&reloaded), &reference_json);
                }
            }

            /// On-grid points keep their PR-2 keys: the key of a grid
            /// point is a pure function of the materialized design, never
            /// of how it was addressed — so caches written before the
            /// off-grid extension resolve to the same entries.
            #[test]
            fn grid_keys_are_stable_under_addressing(
                dim_idx in 0usize..3,
                kind_idx in 0usize..2,
                buf_idx in 0usize..2,
            ) {
                use crate::space::{Candidate, DesignSpace};
                let space = DesignSpace::new()
                    .with_array_dims([64, 128, 256])
                    .with_kinds([ConfigKind::Flat, ConfigKind::FuseMaxBinding])
                    .with_buffer_scales([0.5, 1.0]);
                let index = [0, 0, kind_idx, dim_idx, 0, buf_idx, 0, 0];
                let via_point_at = PointKey::of(&space.point_at(index));
                let via_candidate =
                    PointKey::of(&space.materialize(&Candidate::Grid(index)));
                prop_assert_eq!(via_point_at, via_candidate);
            }
        }
    }
}
