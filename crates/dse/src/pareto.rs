//! Generic multi-objective Pareto frontiers with dominance pruning.
//!
//! All objectives are **minimized**. A point `a` *dominates* `b` when `a`
//! is no worse than `b` in every objective and strictly better in at least
//! one — the standard (weak-)Pareto dominance relation, which is
//! irreflexive and transitive.

use std::sync::Arc;

/// A point comparable under `N`-objective minimization.
pub trait Objectives<const N: usize> {
    /// The objective vector; every component is minimized.
    fn objectives(&self) -> [f64; N];
}

impl<T: Objectives<N>, const N: usize> Objectives<N> for Arc<T> {
    fn objectives(&self) -> [f64; N] {
        (**self).objectives()
    }
}

impl<T: Objectives<N>, const N: usize> Objectives<N> for &T {
    fn objectives(&self) -> [f64; N] {
        (**self).objectives()
    }
}

impl<const N: usize> Objectives<N> for [f64; N] {
    fn objectives(&self) -> [f64; N] {
        *self
    }
}

/// `true` when `a` Pareto-dominates `b` (minimization): `a ≤ b` everywhere
/// and `a < b` somewhere.
pub fn dominates<const N: usize>(a: &[f64; N], b: &[f64; N]) -> bool {
    let mut strictly_better = false;
    for i in 0..N {
        if a[i] > b[i] {
            return false;
        }
        if a[i] < b[i] {
            strictly_better = true;
        }
    }
    strictly_better
}

/// Non-dominated sorting: returns each point's front index — `0` for the
/// Pareto frontier of the input set, `1` for the frontier once front 0 is
/// removed, and so on. Lower is fitter; this is the rank fitness the
/// genetic search strategy selects on.
///
/// Identical objective vectors land in the same front (they do not
/// dominate each other). `O(fronts · n²)` — fine for population-sized
/// inputs.
///
/// # Example
///
/// ```
/// use fusemax_dse::pareto_ranks;
///
/// let ranks = pareto_ranks(&[[1.0, 4.0], [4.0, 1.0], [5.0, 5.0], [6.0, 6.0]]);
/// assert_eq!(ranks, vec![0, 0, 1, 2]);
/// ```
pub fn pareto_ranks<const N: usize>(objectives: &[[f64; N]]) -> Vec<usize> {
    let n = objectives.len();
    let mut rank = vec![usize::MAX; n];
    let mut assigned = 0;
    let mut front = 0;
    while assigned < n {
        let members: Vec<usize> = (0..n)
            .filter(|&i| rank[i] == usize::MAX)
            .filter(|&i| {
                !(0..n).any(|j| {
                    j != i && rank[j] == usize::MAX && dominates(&objectives[j], &objectives[i])
                })
            })
            .collect();
        debug_assert!(!members.is_empty(), "strict partial orders always have minima");
        for &i in &members {
            rank[i] = front;
        }
        assigned += members.len();
        front += 1;
    }
    rank
}

/// The set of mutually non-dominated points seen so far.
///
/// Inserting a point that some member dominates is a no-op; inserting a
/// point that dominates members evicts them. Ties (identical objective
/// vectors) are kept, so distinct designs with equal cost all survive.
///
/// # Example
///
/// ```
/// use fusemax_dse::ParetoFrontier;
///
/// let mut front: ParetoFrontier<[f64; 2], 2> = ParetoFrontier::new();
/// assert!(front.insert([1.0, 4.0]));
/// assert!(front.insert([4.0, 1.0])); // trade-off: kept
/// assert!(!front.insert([5.0, 5.0])); // dominated: no-op
/// assert!(front.insert([0.5, 0.5])); // dominates both: evicts them
/// assert_eq!(front.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct ParetoFrontier<P: Objectives<N>, const N: usize> {
    points: Vec<P>,
}

impl<P: Objectives<N>, const N: usize> Default for ParetoFrontier<P, N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P: Objectives<N>, const N: usize> ParetoFrontier<P, N> {
    /// An empty frontier.
    pub fn new() -> Self {
        ParetoFrontier { points: Vec::new() }
    }

    /// Offers `candidate` to the frontier. Returns `true` when the
    /// candidate survives (and evicts any members it dominates); returns
    /// `false` — leaving the frontier untouched — when an existing member
    /// dominates it.
    pub fn insert(&mut self, candidate: P) -> bool {
        let c = candidate.objectives();
        if self.points.iter().any(|p| dominates(&p.objectives(), &c)) {
            return false;
        }
        self.points.retain(|p| !dominates(&c, &p.objectives()));
        self.points.push(candidate);
        true
    }

    /// Inserts every point of `iter`.
    pub fn extend(&mut self, iter: impl IntoIterator<Item = P>) {
        for p in iter {
            self.insert(p);
        }
    }

    /// `true` when `objective_bound` — an *optimistic* (component-wise
    /// lower) bound on some unevaluated point — could still enter the
    /// frontier. When this returns `false` the real point is provably
    /// dominated and need not be evaluated at all: the pruning test used
    /// by [`crate::Sweeper::sweep_pruned`].
    pub fn admits(&self, objective_bound: &[f64; N]) -> bool {
        !self.points.iter().any(|p| dominates(&p.objectives(), objective_bound))
    }

    /// The current non-dominated set, in insertion order of survivors.
    pub fn points(&self) -> &[P] {
        &self.points
    }

    /// Consumes the frontier, yielding its points.
    pub fn into_points(self) -> Vec<P> {
        self.points
    }

    /// Number of non-dominated points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when no point has been accepted yet.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The member minimizing objective `index`, if any.
    ///
    /// # Panics
    ///
    /// Panics if `index >= N`.
    pub fn best_by(&self, index: usize) -> Option<&P> {
        assert!(index < N, "objective index {index} out of range for {N} objectives");
        self.points.iter().min_by(|a, b| a.objectives()[index].total_cmp(&b.objectives()[index]))
    }

    /// Members sorted ascending by objective `index` (a convenient order
    /// for rendering area/latency curves or picking `top_k` designs).
    ///
    /// # Panics
    ///
    /// Panics if `index >= N`.
    pub fn sorted_by(&self, index: usize) -> Vec<&P> {
        assert!(index < N, "objective index {index} out of range for {N} objectives");
        let mut out: Vec<&P> = self.points.iter().collect();
        out.sort_by(|a, b| a.objectives()[index].total_cmp(&b.objectives()[index]));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_is_irreflexive() {
        let a = [1.0, 2.0, 3.0];
        assert!(!dominates(&a, &a), "a point must not dominate itself");
    }

    #[test]
    fn dominance_is_antisymmetric() {
        let a = [1.0, 2.0];
        let b = [2.0, 3.0];
        assert!(dominates(&a, &b));
        assert!(!dominates(&b, &a));
    }

    #[test]
    fn dominance_is_transitive() {
        let a = [1.0, 1.0, 1.0];
        let b = [1.0, 2.0, 1.0];
        let c = [2.0, 2.0, 2.0];
        assert!(dominates(&a, &b));
        assert!(dominates(&b, &c));
        assert!(dominates(&a, &c));
    }

    #[test]
    fn incomparable_points_coexist() {
        let mut f: ParetoFrontier<[f64; 2], 2> = ParetoFrontier::new();
        assert!(f.insert([1.0, 10.0]));
        assert!(f.insert([10.0, 1.0]));
        assert!(f.insert([5.0, 5.0]));
        assert_eq!(f.len(), 3);
    }

    #[test]
    fn dominated_insert_is_a_no_op() {
        let mut f: ParetoFrontier<[f64; 2], 2> = ParetoFrontier::new();
        f.insert([1.0, 1.0]);
        let before: Vec<[f64; 2]> = f.points().to_vec();
        assert!(!f.insert([2.0, 1.0]));
        assert_eq!(f.points(), &before[..], "frontier must be untouched");
    }

    #[test]
    fn dominating_insert_evicts_members() {
        let mut f: ParetoFrontier<[f64; 2], 2> = ParetoFrontier::new();
        f.insert([3.0, 3.0]);
        f.insert([4.0, 2.0]);
        f.insert([1.0, 9.0]);
        assert!(f.insert([2.0, 2.0])); // beats the first two, not the third
        let objs: Vec<[f64; 2]> = f.points().iter().map(|p| p.objectives()).collect();
        assert_eq!(objs.len(), 2);
        assert!(objs.contains(&[2.0, 2.0]));
        assert!(objs.contains(&[1.0, 9.0]));
    }

    #[test]
    fn ties_are_kept() {
        let mut f: ParetoFrontier<[f64; 2], 2> = ParetoFrontier::new();
        assert!(f.insert([1.0, 2.0]));
        assert!(f.insert([1.0, 2.0]));
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn admits_rejects_provably_dominated_bounds() {
        let mut f: ParetoFrontier<[f64; 3], 3> = ParetoFrontier::new();
        f.insert([1.0, 1.0, 1.0]);
        assert!(!f.admits(&[2.0, 2.0, 2.0]));
        assert!(f.admits(&[0.5, 3.0, 3.0]));
        assert!(f.admits(&[1.0, 1.0, 1.0]), "equal bound is not dominated");
    }

    #[test]
    fn best_by_and_sorted_by() {
        let mut f: ParetoFrontier<[f64; 2], 2> = ParetoFrontier::new();
        f.insert([1.0, 10.0]);
        f.insert([10.0, 1.0]);
        f.insert([5.0, 5.0]);
        assert_eq!(f.best_by(0).unwrap().objectives(), [1.0, 10.0]);
        assert_eq!(f.best_by(1).unwrap().objectives(), [10.0, 1.0]);
        let by_area: Vec<f64> = f.sorted_by(0).iter().map(|p| p.objectives()[0]).collect();
        assert_eq!(by_area, vec![1.0, 5.0, 10.0]);
    }

    #[test]
    fn ranks_peel_fronts_in_order() {
        let objs = [[1.0, 1.0], [2.0, 2.0], [3.0, 3.0], [0.5, 4.0], [2.0, 2.0]];
        let ranks = pareto_ranks(&objs);
        assert_eq!(ranks, vec![0, 1, 2, 0, 1]);
        assert!(pareto_ranks::<2>(&[]).is_empty());
        assert_eq!(pareto_ranks(&[[7.0, 7.0]]), vec![0]);
    }

    #[test]
    fn rank_zero_matches_the_frontier() {
        let mut state = 0x9E37_79B9u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        let objs: Vec<[f64; 3]> = (0..80).map(|_| [next(), next(), next()]).collect();
        let ranks = pareto_ranks(&objs);
        let mut frontier: ParetoFrontier<[f64; 3], 3> = ParetoFrontier::new();
        frontier.extend(objs.iter().copied());
        let rank0 = ranks.iter().filter(|&&r| r == 0).count();
        assert_eq!(rank0, frontier.len());
    }

    #[test]
    fn random_frontier_is_mutually_non_dominated() {
        // A deterministic pseudo-random stream (no external deps needed).
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut f: ParetoFrontier<[f64; 3], 3> = ParetoFrontier::new();
        for _ in 0..500 {
            f.insert([next(), next(), next()]);
        }
        assert!(!f.is_empty());
        let pts = f.points();
        for (i, a) in pts.iter().enumerate() {
            for (j, b) in pts.iter().enumerate() {
                if i != j {
                    assert!(
                        !dominates(&a.objectives(), &b.objectives()),
                        "frontier member {i} dominates member {j}"
                    );
                }
            }
        }
    }
}
