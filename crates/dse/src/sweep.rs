//! The sweep engine: evaluates design points through the analytical model
//! (serially or rayon-parallel), maintains per-workload Pareto frontiers,
//! and prunes provably-dominated points before paying for their evaluation.

use crate::cache::{EvalCache, PointKey};
use crate::objective::Objective;
use crate::pareto::{Objectives, ParetoFrontier};
use crate::space::{DesignPoint, DesignSpace};
use fusemax_arch::{AreaModel, EnergyTable};
use fusemax_model::{attention_report, AttentionReport, AttnWork, ModelParams};
use fusemax_telemetry::{Event, Recorder, SearchEvent};
use rayon::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A fully-evaluated design point: the three minimized objectives plus the
/// underlying analytical report.
///
/// `latency_s` and `energy_j` cover the *full model's* attention (all
/// layers at the workload's batch size), matching Fig 12's y-axis;
/// `area_cm2` is the chip area of [`DesignPoint::arch`] multiplied by
/// [`crate::FleetSpec::chips`] — the *total* silicon the design buys, so
/// a 4-replica fleet of small chips competes against one big chip at
/// equal area. Latency and energy stay per-chip: they describe one
/// replica running the workload, which is exactly what the serving layer
/// replicates.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// The design evaluated.
    pub point: DesignPoint,
    /// Total fleet silicon in cm² — per-chip area × replica count
    /// (objective 0).
    pub area_cm2: f64,
    /// Full-model attention latency in seconds (objective 1).
    pub latency_s: f64,
    /// Full-model attention energy in joules (objective 2).
    pub energy_j: f64,
    /// The per-layer analytical report behind the objectives.
    pub report: AttentionReport,
}

impl Objectives<3> for Evaluation {
    fn objectives(&self) -> [f64; 3] {
        [self.area_cm2, self.latency_s, self.energy_j]
    }
}

/// The Pareto frontier of one `(workload, seq_len)` group.
///
/// Frontiers are kept per workload/length pair because dominance across
/// *different* workloads is meaningless: a smaller model is cheaper to run
/// on every chip, which says nothing about which chip to build.
#[derive(Debug, Clone)]
pub struct FrontierGroup {
    /// Workload name (`BERT`, `TrXL`, `T5`, `XLM`, …).
    pub model: String,
    /// Sequence length of this group.
    pub seq_len: usize,
    /// The non-dominated (area, latency, energy) set.
    pub frontier: ParetoFrontier<Arc<Evaluation>, 3>,
}

/// Bookkeeping of one sweep.
#[derive(Debug, Clone, Default)]
pub struct SweepStats {
    /// Points the space enumerated.
    pub candidates: usize,
    /// Points actually run through the analytical model.
    pub evaluated: usize,
    /// Points skipped by dominance pruning (never evaluated).
    pub pruned: usize,
    /// Points served from the evaluation cache.
    pub cache_hits: usize,
    /// Wall-clock time of the sweep.
    pub elapsed: Duration,
}

impl SweepStats {
    /// Evaluated-point throughput (cached and pruned points excluded).
    pub fn points_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            f64::INFINITY
        } else {
            self.evaluated as f64 / secs
        }
    }
}

/// Everything a sweep returns: the evaluations, the per-group frontiers,
/// and the stats.
#[derive(Debug)]
pub struct SweepOutcome {
    /// One evaluation per *non-pruned* candidate. [`Sweeper::sweep`]
    /// evaluates everything and keeps [`DesignSpace::points`] order;
    /// [`Sweeper::sweep_pruned`] skips dominated candidates and yields
    /// survivors in its search order (strongest configurations first).
    pub evaluations: Vec<Arc<Evaluation>>,
    /// Per-`(workload, seq_len)` Pareto frontiers, in first-seen order.
    pub frontiers: Vec<FrontierGroup>,
    /// Sweep bookkeeping.
    pub stats: SweepStats,
}

impl SweepOutcome {
    /// The frontier of one workload/length group, if that group was swept.
    pub fn frontier_for(&self, model: &str, seq_len: usize) -> Option<&FrontierGroup> {
        self.frontiers.iter().find(|g| g.model == model && g.seq_len == seq_len)
    }

    /// The union of all group frontiers.
    pub fn frontier_points(&self) -> Vec<&Arc<Evaluation>> {
        self.frontiers.iter().flat_map(|g| g.frontier.points()).collect()
    }

    /// Up to `k` frontier designs worth replaying on the cycle-accurate
    /// simulator ([`crate::validate_top_k`]): every group's
    /// lowest-latency winner first, then every group's runner-up, and so
    /// on (latency is only comparable *within* a `(workload, seq_len)`
    /// group, so a plain global sort would hand all `k` slots to the
    /// cheapest workload's group).
    pub fn top_k(&self, k: usize) -> Vec<&Arc<Evaluation>> {
        let mut by_group: Vec<Vec<&Arc<Evaluation>>> = self
            .frontiers
            .iter()
            .map(|g| {
                let mut pts: Vec<&Arc<Evaluation>> = g.frontier.points().iter().collect();
                pts.sort_by(|a, b| a.latency_s.total_cmp(&b.latency_s));
                pts
            })
            .collect();
        let mut out = Vec::new();
        let mut rank = 0;
        while out.len() < k {
            let mut took_any = false;
            for group in &mut by_group {
                if let Some(&p) = group.get(rank) {
                    out.push(p);
                    took_any = true;
                    if out.len() == k {
                        break;
                    }
                }
            }
            if !took_any {
                break;
            }
            rank += 1;
        }
        out
    }
}

/// The sweep engine: owns the model parameterization, the cost models, and
/// the evaluation cache.
///
/// The cache is keyed by the full design-point identity ([`PointKey`]);
/// because a `Sweeper` owns exactly one immutable [`ModelParams`] /
/// [`AreaModel`], cached entries can never mix parameterizations.
///
/// # Example
///
/// ```
/// use fusemax_dse::{DesignSpace, Sweeper};
/// use fusemax_model::ModelParams;
///
/// let sweeper = Sweeper::new(ModelParams::default());
/// let outcome = sweeper.sweep(&DesignSpace::new()); // the Fig 12 space
/// assert_eq!(outcome.evaluations.len(), 24);
/// // Every curve point is Pareto-optimal: bigger chips are faster.
/// assert_eq!(outcome.frontier_points().len(), 24);
/// ```
pub struct Sweeper {
    params: ModelParams,
    area_model: AreaModel,
    energy_table: EnergyTable,
    cache: EvalCache,
    parallel: bool,
    recorder: Recorder,
    objective: Option<Arc<dyn Objective>>,
}

impl std::fmt::Debug for Sweeper {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sweeper")
            .field("params", &self.params)
            .field("area_model", &self.area_model)
            .field("cache", &self.cache)
            .field("parallel", &self.parallel)
            .field("objective", &self.objective.as_ref().map(|o| o.name()))
            .finish_non_exhaustive()
    }
}

impl Sweeper {
    /// A parallel sweeper with default cost models and an empty cache.
    pub fn new(params: ModelParams) -> Self {
        Sweeper {
            params,
            area_model: AreaModel::default(),
            energy_table: EnergyTable::default(),
            cache: EvalCache::new(),
            parallel: true,
            recorder: Recorder::disabled(),
            objective: None,
        }
    }

    /// Attaches a telemetry recorder. Instrumentation never changes
    /// results — frontiers, stats, and cache contents are bit-identical
    /// with or without a recorder; events are emitted only from serial,
    /// deterministically-ordered code paths (the sweep's space-order
    /// classification loop, the search session's staging/fold loops), so
    /// the stream itself replays byte-identically for a given seed.
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// The attached telemetry recorder (disabled by default).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Switches between rayon-parallel (`true`, the default) and serial
    /// evaluation. Results are identical either way; only wall-clock time
    /// changes.
    pub fn with_parallelism(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }

    /// Whether this sweeper evaluates cache misses on all cores (`true`,
    /// the default) or serially. The batched search session and the
    /// parallel annealing chains consult this, so a single switch flips
    /// the whole stack between the parallel path and its bit-identical
    /// serial reference.
    pub fn is_parallel(&self) -> bool {
        self.parallel
    }

    /// Replaces the area model (Fig 12 sensitivity studies).
    pub fn with_area_model(mut self, area_model: AreaModel) -> Self {
        self.area_model = area_model;
        self
    }

    /// Attaches a scalar [`Objective`] that the search `Session`
    /// scores every finished evaluation against, in its serial fold — so
    /// guided strategies climb the objective *in the loop* instead of
    /// re-ranking a finished frontier. The raw Pareto machinery is
    /// unaffected; without an objective, search behaves exactly as
    /// before (trajectory-preserving by construction).
    pub fn with_objective(mut self, objective: Arc<dyn Objective>) -> Self {
        self.objective = Some(objective);
        self
    }

    /// The attached in-loop objective, if any.
    pub fn objective(&self) -> Option<&Arc<dyn Objective>> {
        self.objective.as_ref()
    }

    /// The model parameterization this sweeper evaluates under.
    pub fn params(&self) -> &ModelParams {
        &self.params
    }

    /// The evaluation cache (hit/miss counters included).
    pub fn cache(&self) -> &EvalCache {
        &self.cache
    }

    /// Persists the evaluation cache to `path` (see [`crate::cache_json`]
    /// — sorted, bit-exact JSON), making figure regeneration free across
    /// *processes*, not just within one.
    pub fn save_cache(&self, path: impl AsRef<std::path::Path>) -> Result<(), crate::PersistError> {
        crate::json::save_cache_file(&self.cache, path.as_ref())
    }

    /// Loads a cache file previously written by [`Sweeper::save_cache`]
    /// into this sweeper's cache, returning how many entries were
    /// absorbed.
    ///
    /// The caller is responsible for pairing a cache file with the
    /// [`ModelParams`] that produced it — the file stores design-point
    /// keys, and a sweeper trusts its cache blindly (exactly as it trusts
    /// its in-memory entries).
    pub fn load_cache(
        &self,
        path: impl AsRef<std::path::Path>,
    ) -> Result<usize, crate::PersistError> {
        crate::json::load_cache_file(&self.cache, path.as_ref())
    }

    /// Evaluates one point through the analytical model, bypassing the
    /// cache. Pure: identical inputs give identical outputs.
    fn compute(&self, point: &DesignPoint) -> Evaluation {
        let report: AttentionReport = attention_report(
            point.kind,
            &point.workload,
            point.seq_len,
            Some(&point.arch),
            &self.params,
        );
        let layers = point.workload.layers as f64;
        Evaluation {
            area_cm2: self.area_model.chip_area_cm2(&point.arch) * point.fleet.chips() as f64,
            latency_s: point.arch.cycles_to_seconds(report.cycles * layers),
            energy_j: report.energy.total_pj() * layers * 1e-12,
            report,
            point: point.clone(),
        }
    }

    /// Evaluates one point through the cache: a hit returns the *same*
    /// [`Arc`] as the first evaluation (bit-identical by construction).
    pub fn evaluate(&self, point: &DesignPoint) -> Arc<Evaluation> {
        self.evaluate_classified(point).0
    }

    /// Like [`Sweeper::evaluate`], additionally reporting whether this
    /// call ran the analytical model (`true`) or was served from the
    /// cache (`false`) — one [`EvalCache::get_or_insert_with`] lock round
    /// instead of a separate `contains` peek.
    pub fn evaluate_classified(&self, point: &DesignPoint) -> (Arc<Evaluation>, bool) {
        self.cache.get_or_insert_with(PointKey::of(point), || self.compute(point))
    }

    /// Evaluates `points` through the cache — misses on all cores when
    /// parallelism is on — returning `(evaluation, fresh)` per point in
    /// input order. Results are independent of the thread count: every
    /// evaluation is a pure function of its point, and ordering is
    /// restored by the rayon stub's order-preserving collect.
    pub fn evaluate_many(&self, points: &[DesignPoint]) -> Vec<(Arc<Evaluation>, bool)> {
        if self.parallel && points.len() > 1 {
            points.par_iter().map(|p| self.evaluate_classified(p)).collect()
        } else {
            points.iter().map(|p| self.evaluate_classified(p)).collect()
        }
    }

    /// An optimistic component-wise lower bound on `point`'s objectives,
    /// computable *without* running the model:
    ///
    /// * **area** — exact (the area model is closed-form);
    /// * **latency** — the roofline floor over work no mapping of this
    ///   configuration can avoid: 2D PE-ops (tensor-product MACCs, plus the
    ///   chained-MACC exponentials the FuseMax kinds place on the 2D
    ///   array), the configuration's compulsory 1D softmax ops, and its
    ///   compulsory DRAM traffic (the unfused baseline *must* spill `QK`
    ///   and `A` between phases — 4 bytes per iteration-space point on top
    ///   of the Q/K/V/AV reads; FLAT *must* pay its buffer solver's
    ///   regime-aware traffic — re-streamed `K`/`V` or spilled fibers —
    ///   once the sequence no longer fits on chip, via
    ///   [`fusemax_model::flat_dram_floor_per_head`]);
    /// * **energy** — the same compulsory op and traffic counts priced by
    ///   the energy table.
    ///
    /// Every real evaluation satisfies `objectives()[i] >= lower_bound[i]`
    /// (the floors only count work each configuration's model provably
    /// charges), which is what makes frontier-based pruning sound
    /// ([`ParetoFrontier::admits`]).
    pub fn lower_bound(&self, point: &DesignPoint) -> [f64; 3] {
        use fusemax_model::ConfigKind::*;

        let arch = &point.arch;
        let et = &self.energy_table;
        let work = AttnWork::from_workload(&point.workload, point.seq_len);
        let layers = point.workload.layers as f64;
        let pts = work.points();
        let word = arch.word_bytes as f64;
        let maccs = work.matmul_maccs();
        let io_bytes = work.input_output_bytes(word);
        let sub_exp = self.params.sub_exp_cycles();
        let baseline_ops = self.params.baseline_softmax_ops_per_point;

        // Compulsory work by configuration (floors of the closed-form
        // models in `fusemax_model::{unfused, flat, fusemax}`).
        let (ops_2d, ops_1d, divs, spill_bytes) = match point.kind {
            // 3-pass softmax on the 1D array: `baseline_ops` per point, one
            // of them a division. Unfused additionally writes+reads QK and
            // A between phases.
            Unfused => (maccs, (baseline_ops - 1.0) * pts, pts, 4.0 * word * pts),
            // FLAT's buffer solver is closed-form, so its regime-aware
            // DRAM charge (K/V re-streams or fiber spills past the
            // resident regime) is itself a computable floor — much tighter
            // than compulsory traffic alone at long sequence lengths.
            Flat => {
                let solver_bytes = work.batch_heads
                    * fusemax_model::flat_dram_floor_per_head(&work, arch, &self.params);
                let restream_bytes = (solver_bytes - io_bytes).max(0.0);
                (maccs, (baseline_ops - 1.0) * pts, pts, restream_bytes)
            }
            // 1-pass cascade on FLAT PEs: ≥ LM+SLN+SLD per point on the 1D
            // array, divisions deferred to F per query.
            FuseMaxCascade => (maccs, 3.0 * pts, work.batch_heads * work.f * work.l, 0.0),
            // FuseMax PEs: max/sub-exp/add join the MACCs on the 2D array
            // (E + F + 2 + sub_exp PE-ops per point); the 1D array carries
            // the per-(m1, p) corrections, ≥ (3 + sub_exp + 2F)/M0 ops per
            // point, plus the deferred divisions.
            FuseMaxArch | FuseMaxBinding => (
                maccs + (2.0 + sub_exp) * pts,
                (3.0 + sub_exp + 2.0 * work.f) * pts / arch.array_rows as f64,
                work.batch_heads * work.f * work.l,
                0.0,
            ),
        };
        let dram_floor = io_bytes + spill_bytes;
        // Every model stages at least its DRAM traffic through the global
        // buffer; the baselines and +Cascade additionally pass QK and SN
        // through it (write + read each).
        let gbuf_floor = match point.kind {
            Unfused | Flat | FuseMaxCascade => dram_floor + 4.0 * word * pts,
            FuseMaxArch | FuseMaxBinding => dram_floor,
        };

        // +Binding hides the deferred divisions in 1D slack, so they count
        // toward its energy floor but not its cycle floor.
        let cycle_divs = if point.kind == FuseMaxBinding { 0.0 } else { divs };
        let cycle_floor = (ops_2d / arch.pe_count_2d() as f64)
            .max((ops_1d + cycle_divs) / arch.vector_pes as f64)
            .max(dram_floor / arch.dram_bytes_per_cycle());
        let latency_lb = arch.cycles_to_seconds(cycle_floor * layers);

        let energy_lb = (ops_2d * et.macc_pj
            + ops_1d * et.vector_op_pj
            + divs * et.div_pj
            + 2.0 * word * ops_2d * et.rf_pj_per_byte
            + gbuf_floor * et.gbuf_pj_per_byte
            + dram_floor * et.dram_pj_per_byte)
            * layers
            * 1e-12;

        [self.area_model.chip_area_cm2(arch) * point.fleet.chips() as f64, latency_lb, energy_lb]
    }

    /// Sweeps the whole space, evaluating **every** candidate (no pruning,
    /// so the result doubles as ground truth for figures like Fig 12 that
    /// plot dominated points too). Uncached points are evaluated on all
    /// cores when parallelism is on; results are assembled in space order
    /// and are independent of the thread count.
    pub fn sweep(&self, space: &DesignSpace) -> SweepOutcome {
        let start = Instant::now();
        let points = space.points();
        let candidates = points.len();

        // Serve cache hits first so only misses pay for evaluation. This
        // classification loop is serial and in space order, so the cache
        // events it emits are deterministic regardless of how the misses
        // are evaluated below.
        let mut slots: Vec<Option<Arc<Evaluation>>> = Vec::with_capacity(points.len());
        let mut missing: Vec<(usize, DesignPoint)> = Vec::new();
        for (i, point) in points.into_iter().enumerate() {
            let key = PointKey::of(&point);
            let tick = i as u64 + 1;
            match self.cache.get(&key) {
                Some(hit) => {
                    self.recorder.emit(|| {
                        Event::search(
                            tick,
                            SearchEvent::CacheHit { shard: self.cache.shard_of(&key) },
                        )
                    });
                    slots.push(Some(hit));
                }
                None => {
                    self.recorder.emit(|| {
                        Event::search(
                            tick,
                            SearchEvent::CacheMiss { shard: self.cache.shard_of(&key) },
                        )
                    });
                    slots.push(None);
                    missing.push((i, point));
                }
            }
        }
        let cache_hits = candidates - missing.len();
        let evaluated = missing.len();
        self.recorder
            .emit(|| Event::search(candidates as u64, SearchEvent::FlushBatch { size: evaluated }));

        let computed: Vec<(usize, Evaluation)> = if self.parallel {
            missing.into_par_iter().map(|(i, p)| (i, self.compute(&p))).collect()
        } else {
            missing.into_iter().map(|(i, p)| (i, self.compute(&p))).collect()
        };
        for (i, evaluation) in computed {
            let key = PointKey::of(&evaluation.point);
            slots[i] = Some(self.cache.insert(key, Arc::new(evaluation)));
        }

        let evaluations: Vec<Arc<Evaluation>> =
            slots.into_iter().map(|s| s.expect("every slot filled")).collect();
        let frontiers = group_frontiers(evaluations.iter().cloned(), &self.recorder);

        SweepOutcome {
            evaluations,
            frontiers,
            stats: SweepStats {
                candidates,
                evaluated,
                pruned: 0,
                cache_hits,
                elapsed: start.elapsed(),
            },
        }
    }

    /// Sweeps the space with dominance pruning: before evaluating a
    /// candidate, its [`Sweeper::lower_bound`] is tested against the
    /// group's running frontier, and provably-dominated candidates are
    /// skipped entirely. The returned frontiers are identical to
    /// [`Sweeper::sweep`]'s; `evaluations` contains only the points that
    /// survived the cutoff (pruning is what you want for *search*; use the
    /// full sweep when a figure needs dominated points plotted too).
    ///
    /// Pruning is sequential by nature (each decision depends on the
    /// frontier so far), so this path ignores the parallelism switch.
    pub fn sweep_pruned(&self, space: &DesignSpace) -> SweepOutcome {
        let start = Instant::now();
        let mut points = space.points();
        let candidates = points.len();
        // Evaluate the strongest configurations first (stable, so the
        // workload/dimension order is otherwise preserved): a +Binding
        // design evaluated early is what proves the dominated baselines
        // not worth evaluating at all.
        points.sort_by_key(|p| std::cmp::Reverse(p.kind));
        let mut evaluations = Vec::new();
        let mut frontiers: Vec<FrontierGroup> = Vec::new();
        let mut pruned = 0usize;
        let mut evaluated = 0usize;
        let mut cache_hits = 0usize;

        for point in points {
            let group = group_index(&mut frontiers, &point);
            let key = PointKey::of(&point);
            let tick = (evaluated + cache_hits) as u64 + 1;
            self.recorder.emit(|| Event::search(tick, SearchEvent::Staged));
            let evaluation = if let Some(hit) = self.cache.get(&key) {
                cache_hits += 1;
                self.recorder.emit(|| {
                    Event::search(tick, SearchEvent::CacheHit { shard: self.cache.shard_of(&key) })
                });
                hit
            } else {
                if !frontiers[group].frontier.admits(&self.lower_bound(&point)) {
                    pruned += 1;
                    self.recorder.emit(|| Event::search(tick, SearchEvent::ScreenedOut));
                    continue;
                }
                evaluated += 1;
                self.recorder.emit(|| {
                    Event::search(tick, SearchEvent::CacheMiss { shard: self.cache.shard_of(&key) })
                });
                self.cache.insert(key, Arc::new(self.compute(&point)))
            };
            let admitted = frontiers[group].frontier.insert(Arc::clone(&evaluation));
            self.recorder.emit(|| {
                Event::search(
                    tick,
                    SearchEvent::FrontierInsert {
                        admitted,
                        frontier_len: frontiers[group].frontier.len(),
                    },
                )
            });
            evaluations.push(evaluation);
        }

        SweepOutcome {
            evaluations,
            frontiers,
            stats: SweepStats {
                candidates,
                evaluated,
                pruned,
                cache_hits,
                elapsed: start.elapsed(),
            },
        }
    }
}

/// Finds or creates the frontier group of `point`'s `(workload, seq_len)`.
pub(crate) fn group_index(frontiers: &mut Vec<FrontierGroup>, point: &DesignPoint) -> usize {
    let model = point.workload.name;
    match frontiers.iter().position(|g| g.model == model && g.seq_len == point.seq_len) {
        Some(i) => i,
        None => {
            frontiers.push(FrontierGroup {
                model: model.to_string(),
                seq_len: point.seq_len,
                frontier: ParetoFrontier::new(),
            });
            frontiers.len() - 1
        }
    }
}

/// Builds per-group frontiers from finished evaluations, emitting one
/// `FrontierInsert` per offer (in evaluation order) when tracing.
fn group_frontiers(
    evaluations: impl Iterator<Item = Arc<Evaluation>>,
    recorder: &Recorder,
) -> Vec<FrontierGroup> {
    let mut frontiers: Vec<FrontierGroup> = Vec::new();
    for (n, evaluation) in evaluations.enumerate() {
        let i = group_index(&mut frontiers, &evaluation.point);
        let admitted = frontiers[i].frontier.insert(evaluation);
        recorder.emit(|| {
            Event::search(
                n as u64 + 1,
                SearchEvent::FrontierInsert { admitted, frontier_len: frontiers[i].frontier.len() },
            )
        });
    }
    frontiers
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{arch_for, DesignSpace};
    use fusemax_model::ConfigKind;
    use fusemax_workloads::TransformerConfig;
    use proptest::prelude::*;

    fn small_space() -> DesignSpace {
        DesignSpace::new()
            .with_array_dims([64, 128, 256])
            .with_kinds([ConfigKind::Flat, ConfigKind::FuseMaxBinding])
            .with_workloads([TransformerConfig::bert()])
            .with_seq_lens([1 << 14])
    }

    #[test]
    fn sweep_evaluates_every_point_once() {
        let sweeper = Sweeper::new(ModelParams::default());
        let outcome = sweeper.sweep(&small_space());
        assert_eq!(outcome.stats.candidates, 6);
        assert_eq!(outcome.stats.evaluated, 6);
        assert_eq!(outcome.stats.cache_hits, 0);
        assert_eq!(outcome.evaluations.len(), 6);
        assert_eq!(outcome.frontiers.len(), 1);
    }

    #[test]
    fn objectives_are_positive_and_bounded_below() {
        let sweeper = Sweeper::new(ModelParams::default());
        for evaluation in &sweeper.sweep(&small_space()).evaluations {
            let [area, latency, energy] = evaluation.objectives();
            assert!(area > 0.0 && latency > 0.0 && energy > 0.0);
            let lb = sweeper.lower_bound(&evaluation.point);
            assert!(area >= lb[0] * (1.0 - 1e-12), "area {} < bound {}", area, lb[0]);
            assert!(latency >= lb[1] * (1.0 - 1e-12), "latency {} < bound {}", latency, lb[1]);
            assert!(energy >= lb[2] * (1.0 - 1e-12), "energy {} < bound {}", energy, lb[2]);
        }
    }

    #[test]
    fn second_sweep_is_all_cache_hits_and_shares_allocations() {
        let sweeper = Sweeper::new(ModelParams::default());
        let first = sweeper.sweep(&small_space());
        let second = sweeper.sweep(&small_space());
        assert_eq!(second.stats.cache_hits, 6);
        assert_eq!(second.stats.evaluated, 0);
        for (a, b) in first.evaluations.iter().zip(&second.evaluations) {
            assert!(Arc::ptr_eq(a, b), "cache must return the same allocation");
        }
    }

    #[test]
    fn serial_and_parallel_sweeps_agree_exactly() {
        let space = small_space();
        let serial = Sweeper::new(ModelParams::default()).with_parallelism(false).sweep(&space);
        let parallel = Sweeper::new(ModelParams::default()).with_parallelism(true).sweep(&space);
        assert_eq!(serial.evaluations.len(), parallel.evaluations.len());
        for (a, b) in serial.evaluations.iter().zip(&parallel.evaluations) {
            assert_eq!(a.point, b.point);
            assert_eq!(a.objectives(), b.objectives());
            assert_eq!(a.report.cycles, b.report.cycles);
            assert_eq!(a.report.dram_bytes, b.report.dram_bytes);
        }
    }

    #[test]
    fn pruned_sweep_reproduces_the_full_frontier() {
        let space = DesignSpace::new()
            .with_array_dims([32, 64, 128, 256])
            .with_kinds(ConfigKind::all())
            .with_workloads([TransformerConfig::bert(), TransformerConfig::t5()])
            .with_seq_lens([1 << 14, 1 << 16]);
        let full = Sweeper::new(ModelParams::default()).sweep(&space);
        let pruned = Sweeper::new(ModelParams::default()).sweep_pruned(&space);
        assert_eq!(full.frontiers.len(), pruned.frontiers.len());
        for group in &full.frontiers {
            let other = pruned.frontier_for(&group.model, group.seq_len).unwrap();
            let mut a: Vec<[f64; 3]> =
                group.frontier.points().iter().map(|p| p.objectives()).collect();
            let mut b: Vec<[f64; 3]> =
                other.frontier.points().iter().map(|p| p.objectives()).collect();
            a.sort_by(|x, y| x.partial_cmp(y).unwrap());
            b.sort_by(|x, y| x.partial_cmp(y).unwrap());
            assert_eq!(a, b, "pruning changed the {} frontier", group.model);
        }
        assert_eq!(
            pruned.stats.evaluated + pruned.stats.pruned + pruned.stats.cache_hits,
            pruned.stats.candidates
        );
    }

    #[test]
    fn top_k_returns_the_fastest_frontier_designs() {
        let sweeper = Sweeper::new(ModelParams::default());
        let outcome = sweeper.sweep(&small_space());
        let top = outcome.top_k(2);
        assert_eq!(top.len(), 2);
        assert!(top[0].latency_s <= top[1].latency_s);
        let fastest =
            outcome.frontier_points().iter().map(|e| e.latency_s).fold(f64::INFINITY, f64::min);
        assert_eq!(top[0].latency_s, fastest);
    }

    #[test]
    fn top_k_takes_every_groups_winner_before_any_runner_up() {
        let space = DesignSpace::new()
            .with_array_dims([64, 256])
            .with_workloads([TransformerConfig::bert(), TransformerConfig::xlm()])
            .with_seq_lens([1 << 12, 1 << 18]);
        let outcome = Sweeper::new(ModelParams::default()).sweep(&space);
        assert_eq!(outcome.frontiers.len(), 4);

        // Latency is only comparable within a group; the top-4 must be the
        // four group winners, not four designs from the cheapest group.
        let top = outcome.top_k(4);
        let mut groups: Vec<(&str, usize)> =
            top.iter().map(|e| (e.point.workload.name, e.point.seq_len)).collect();
        groups.sort();
        groups.dedup();
        assert_eq!(groups.len(), 4, "each group contributes its winner");
        for e in &top {
            let group = outcome.frontier_for(e.point.workload.name, e.point.seq_len).unwrap();
            let fastest =
                group.frontier.points().iter().map(|p| p.latency_s).fold(f64::INFINITY, f64::min);
            assert_eq!(e.latency_s, fastest, "not the group winner");
        }

        // Asking for more than the frontier holds returns everything once.
        let all = outcome.top_k(usize::MAX);
        assert_eq!(all.len(), outcome.frontier_points().len());
    }

    #[test]
    fn flat_lower_bound_is_tight_in_the_restream_regime() {
        // At 1M tokens FLAT is memory bound, and the bound's DRAM floor is
        // the buffer solver's exact regime-aware charge — so the latency
        // and energy floors essentially coincide with the evaluated cost.
        let sweeper = Sweeper::new(ModelParams::default());
        let point = DesignPoint {
            arch: arch_for(ConfigKind::Flat, 256),
            kind: ConfigKind::Flat,
            workload: TransformerConfig::bert(),
            seq_len: 1 << 20,
            array_dim: 256,
            policy: Default::default(),
            fleet: Default::default(),
        };
        let evaluation = sweeper.evaluate(&point);
        let lb = sweeper.lower_bound(&point);
        assert!(lb[1] <= evaluation.latency_s * (1.0 + 1e-12));
        assert!(lb[2] <= evaluation.energy_j * (1.0 + 1e-12));
        assert!(lb[1] / evaluation.latency_s > 0.99, "latency floor is loose");
        assert!(lb[2] / evaluation.energy_j > 0.99, "energy floor is loose");
    }

    #[test]
    fn tight_flat_bound_prunes_long_sequence_flat_points() {
        // The ROADMAP item: dominance pruning must now skip long-sequence
        // FLAT candidates too, not only compulsory-traffic-bounded ones.
        let space = DesignSpace::new()
            .with_array_dims([16, 32, 64, 128, 256, 512])
            .with_kinds([ConfigKind::Flat, ConfigKind::FuseMaxBinding])
            .with_workloads([TransformerConfig::bert()])
            .with_seq_lens([1 << 20]);
        let pruned = Sweeper::new(ModelParams::default()).sweep_pruned(&space);
        let flat_pruned = pruned.stats.pruned;
        assert!(flat_pruned > 0, "no long-sequence FLAT candidate was pruned");
        // And pruning still reproduces the exhaustive frontier.
        let full = Sweeper::new(ModelParams::default()).sweep(&space);
        for group in &full.frontiers {
            let other = pruned.frontier_for(&group.model, group.seq_len).unwrap();
            assert_eq!(group.frontier.len(), other.frontier.len());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Property: the optimistic bound never exceeds the true evaluated
        /// cost — over random array dims (powers of two and not), kinds,
        /// workloads, sequence lengths, buffer scales, and frequencies.
        /// This is the soundness contract `sweep_pruned` relies on.
        #[test]
        fn lower_bound_never_exceeds_true_cost(
            dim in 16usize..512,
            kind_idx in 0usize..5,
            workload_idx in 0usize..4,
            seq_exp in 10u32..21,
            buf_scale in 0.25f64..4.0,
            freq_choice in 0usize..3,
        ) {
            let kind = ConfigKind::all()[kind_idx];
            let workload = TransformerConfig::all()[workload_idx].clone();
            let mut arch = arch_for(kind, dim);
            arch.global_buffer_bytes =
                (arch.global_buffer_bytes as f64 * buf_scale).ceil() as u64;
            if let Some(hz) = [None, Some(470e6), Some(1.2e9)][freq_choice] {
                arch.frequency_hz = hz;
            }
            let point = DesignPoint {
                arch,
                kind,
                workload,
                seq_len: 1usize << seq_exp,
                array_dim: dim,
                policy: Default::default(),
                fleet: Default::default(),
            };
            let sweeper = Sweeper::new(ModelParams::default());
            let evaluation = sweeper.evaluate(&point);
            let lb = sweeper.lower_bound(&point);
            let [area, latency, energy] = evaluation.objectives();
            prop_assert!(area >= lb[0] * (1.0 - 1e-12), "area {} < {}", area, lb[0]);
            prop_assert!(latency >= lb[1] * (1.0 - 1e-12), "latency {} < {}", latency, lb[1]);
            prop_assert!(energy >= lb[2] * (1.0 - 1e-12), "energy {} < {}", energy, lb[2]);
        }
    }

    #[test]
    fn fleet_area_is_per_chip_area_times_chip_count() {
        use crate::space::FleetSpec;
        let sweeper = Sweeper::new(ModelParams::default());
        let mut point = DesignPoint {
            arch: arch_for(ConfigKind::FuseMaxBinding, 128),
            kind: ConfigKind::FuseMaxBinding,
            workload: TransformerConfig::bert(),
            seq_len: 1 << 14,
            array_dim: 128,
            policy: Default::default(),
            fleet: FleetSpec::single(),
        };
        let single = sweeper.evaluate(&point);
        point.fleet = FleetSpec::replicated(4);
        let fleet = sweeper.evaluate(&point);
        assert_eq!(fleet.area_cm2, single.area_cm2 * 4.0);
        // Per-replica latency/energy are unchanged: a fleet buys
        // throughput with silicon, not faster single chips.
        assert_eq!(fleet.latency_s, single.latency_s);
        assert_eq!(fleet.energy_j, single.energy_j);
        // The lower bound tracks total silicon too (pruning soundness).
        assert_eq!(sweeper.lower_bound(&point)[0], fleet.area_cm2);
        point.fleet = FleetSpec::disaggregated(1, 3);
        assert_eq!(sweeper.evaluate(&point).area_cm2, single.area_cm2 * 4.0);
    }

    #[test]
    fn frontier_groups_split_by_workload_and_length() {
        let space = DesignSpace::new()
            .with_array_dims([64, 256])
            .with_workloads([TransformerConfig::bert(), TransformerConfig::xlm()])
            .with_seq_lens([1 << 12, 1 << 16]);
        let outcome = Sweeper::new(ModelParams::default()).sweep(&space);
        assert_eq!(outcome.frontiers.len(), 4);
        // Within each group the two dims trade area against latency, so
        // both survive.
        for group in &outcome.frontiers {
            assert_eq!(group.frontier.len(), 2, "{} @ {}", group.model, group.seq_len);
        }
    }
}
