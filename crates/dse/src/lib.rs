#![warn(missing_docs)]

//! Design-space exploration over the FuseMax analytical model: enumerate a
//! space of candidate accelerators, evaluate them in parallel through
//! [`fusemax_model`], keep multi-objective Pareto frontiers, prune
//! provably-dominated candidates before paying for them, and cache every
//! evaluation so repeated sweeps (figure regeneration, interactive
//! narrowing) are free.
//!
//! This is the searching counterpart to the paper's Fig 12: where the
//! evaluation section sweeps six hand-picked array sizes for one
//! configuration, this crate sweeps the cartesian space of architecture and
//! workload knobs and reports what is actually Pareto-optimal.
//!
//! # Search-space grammar
//!
//! A [`DesignSpace`] is the cartesian product of eight axes; each `with_*`
//! builder method replaces one axis and every combination becomes one
//! [`DesignPoint`]:
//!
//! ```text
//! space       := array_dims × kinds × workloads × seq_lens
//!                × frequencies × buffer_scales × policies × fleets
//! array_dim   := n                  -- n×n 2D PEs, n 1D PEs, buffer ∝ n²
//!                                      (Fig 12 default: 16, 32, …, 512)
//! kind        := Unfused | Flat | FuseMaxCascade
//!              | FuseMaxArch | FuseMaxBinding
//!                                   -- FuseMax kinds run on the FuseMax
//!                                      chip, the rest on the FLAT chip
//!                                      (see [`arch_for`])
//! workload    := TransformerConfig  -- BERT / TrXL / T5 / XLM or custom
//! seq_len     := tokens             -- paper sweep: 1K … 1M
//! frequency   := None | Some(hz)    -- None keeps the family's stock clock
//! buffer_scale:= ×f                 -- multiplier on the scaled buffer
//! policy      := SchedulerPolicy    -- serving-scheduler knobs (prefill
//!                                      chunk budget, admission ratio,
//!                                      queue order); default is the
//!                                      single legacy whole-prompt/FCFS
//!                                      policy, which changes nothing
//! fleet       := FleetSpec          -- how many replica chips serve the
//!                                      trace and how requests route to
//!                                      them (or a prefill/decode split);
//!                                      default is the 1-chip fleet, which
//!                                      changes nothing. Area becomes
//!                                      *total* fleet silicon.
//! ```
//!
//! Evaluating a point yields an [`Evaluation`] with three **minimized**
//! objectives — chip area (cm²), full-model attention latency (s), and
//! full-model attention energy (J) — compared by Pareto dominance in
//! [`ParetoFrontier`], one frontier per `(workload, seq_len)` group
//! (dominance across different workloads is meaningless).
//!
//! # Engine
//!
//! [`Sweeper::sweep`] evaluates every point — rayon-parallel across cores,
//! results identical to the serial path — and is the ground truth used by
//! `fusemax_eval::fig12`. [`Sweeper::sweep_pruned`] additionally tests each
//! candidate's closed-form optimistic bound ([`Sweeper::lower_bound`])
//! against the running frontier and skips candidates that provably cannot
//! be Pareto-optimal, so dominated subspaces are never evaluated at all.
//! Both paths share the keyed [`EvalCache`]; a second sweep over any
//! overlapping space returns the *same* [`std::sync::Arc`] allocations,
//! bit-identical by construction.
//!
//! Analytical winners should not be trusted blindly: [`validate_top_k`]
//! replays the best frontier designs through the discrete-event simulator
//! in [`fusemax_spatial`], confirming the schedule computes reference
//! attention numerics and that its cycle count is sane.
//!
//! # Guided search
//!
//! When the axes multiply past what exhaustive enumeration should pay
//! for, the [`search`] module explores on a budget: random sampling,
//! genetic search with Pareto-rank fitness, and simulated annealing over
//! a continuous-knob relaxation — all deterministic per seed, all
//! sharing the sweeper's [`EvalCache`] with exhaustive runs, and all
//! scored by the fraction of the exhaustive Pareto hypervolume they
//! recover ([`search::hypervolume_fraction`], [`search::convergence`]).
//!
//! Under [`search::SnapPolicy::Continuous`] the annealer and the genetic
//! searcher evaluate genuinely **off-grid** designs
//! ([`Candidate::OffGrid`]: any array dimension, any buffer byte count) —
//! the model accepts them, the cache keys them canonically, and they
//! routinely dominate grid frontier points. With `with_screening(true)`
//! any strategy additionally rejects candidates whose zero-cost
//! [`Sweeper::lower_bound`] is already dominated by the running frontier,
//! charged to a separate cheap budget ([`search::SearchBudget::cheap`])
//! instead of a model evaluation.
//!
//! # Objectives in the loop
//!
//! [`Sweeper::with_objective`] attaches a scalar [`Objective`] (e.g.
//! `fusemax_serve::ServeObjective`: SLA-feasible goodput per total cm²)
//! that the search session scores every landing evaluation against, in
//! its deterministic serial fold. Strategies then climb the objective
//! *inside* the loop — genetic selection ranks by [`MeritScore`],
//! annealing descends the objective's energy landscape — and the winner
//! comes back as [`search::SearchOutcome::objective_best`]. Without an
//! objective attached, nothing changes (trajectories are preserved
//! bit-for-bit).
//!
//! # Persistence
//!
//! The cache itself serializes to sorted, bit-exact JSON
//! ([`cache_json`], [`Sweeper::save_cache`] / [`Sweeper::load_cache`]),
//! so figure regeneration is free across *processes*, not just within
//! one.
//!
//! # Example
//!
//! ```
//! use fusemax_dse::{DesignSpace, Sweeper};
//! use fusemax_model::{ConfigKind, ModelParams};
//!
//! // All five configurations × three chip sizes on BERT at 64K tokens.
//! let space = DesignSpace::new()
//!     .with_array_dims([64, 128, 256])
//!     .with_kinds(ConfigKind::all())
//!     .with_workloads([fusemax_workloads::TransformerConfig::bert()])
//!     .with_seq_lens([1 << 16]);
//!
//! let sweeper = Sweeper::new(ModelParams::default());
//! let outcome = sweeper.sweep(&space);
//! assert_eq!(outcome.evaluations.len(), 15);
//!
//! // +Binding dominates the baselines at equal scale, so the frontier is
//! // thinner than the space.
//! let frontier = &outcome.frontiers[0].frontier;
//! assert!(!frontier.is_empty() && frontier.len() < 15);
//!
//! // A second sweep is pure cache hits.
//! let again = sweeper.sweep(&space);
//! assert_eq!(again.stats.cache_hits, 15);
//! ```

mod cache;
mod json;
mod objective;
mod pareto;
pub mod search;
mod space;
mod sweep;
mod validate;

pub use cache::{record_cache_metrics, EvalCache, PointKey};
pub use json::{
    cache_json, frontier_json, frontiers_only_json, load_cache_file, parse_cache_json,
    save_cache_file, PersistError,
};
pub use objective::{MeritScore, Objective};
pub use pareto::{dominates, pareto_ranks, Objectives, ParetoFrontier};
pub use space::{
    arch_for, AxisIndex, Candidate, DesignPoint, DesignSpace, FleetSpec, QueueOrder, RouterPolicy,
    SchedulerPolicy, SpecError,
};
pub use sweep::{Evaluation, FrontierGroup, SweepOutcome, SweepStats, Sweeper};
pub use validate::{validate_top_k, Validation, ValidationStatus};

/// The array dimensions of the paper's Fig 12 family (16×16 … 512×512) —
/// the default [`DesignSpace`] dimension axis.
pub const ARRAY_DIMS: [usize; 6] = [16, 32, 64, 128, 256, 512];
