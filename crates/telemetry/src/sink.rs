//! Sinks and the `Recorder` handle the instrumented crates carry.
//!
//! The `Recorder` is the only type `dse`/`serve` see: a cheap clonable
//! handle that is disabled by default. A disabled recorder's `emit` is a
//! single branch — the event closure never runs, so instrumentation
//! compiles to (almost) nothing on the uninstrumented path.

use crate::event::{event_json, Event};
use std::collections::VecDeque;
use std::io::Write;
use std::sync::{Arc, Mutex};

/// Receives telemetry events. Implementations must tolerate being called
/// from a single thread at a time (the instrumented code publishes
/// deterministically ordered streams from one call site).
pub trait TelemetrySink: Send + Sync {
    /// Record one event.
    fn record(&self, event: Event);
}

/// The handle instrumented code holds. Cloning shares the underlying
/// sink. `Recorder::default()` is the no-op recorder.
#[derive(Clone, Default)]
pub struct Recorder {
    sink: Option<Arc<dyn TelemetrySink>>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder").field("enabled", &self.is_enabled()).finish()
    }
}

impl Recorder {
    /// A recorder that forwards every event to `sink`.
    pub fn new(sink: Arc<dyn TelemetrySink>) -> Self {
        Recorder { sink: Some(sink) }
    }

    /// The no-op recorder: `emit` is a branch, nothing else.
    pub fn disabled() -> Self {
        Recorder::default()
    }

    /// Whether events will actually be recorded. Instrumented code uses
    /// this to skip event *buffering* entirely on the no-op path.
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Record the event produced by `make` — which only runs when a sink
    /// is attached, so the disabled path never constructs events.
    pub fn emit(&self, make: impl FnOnce() -> Event) {
        if let Some(sink) = &self.sink {
            sink.record(make());
        }
    }

    /// Publish a pre-buffered batch in order (used by search sessions,
    /// which buffer locally for determinism and publish once at finish).
    pub fn publish(&self, events: impl IntoIterator<Item = Event>) {
        if let Some(sink) = &self.sink {
            for event in events {
                sink.record(event);
            }
        }
    }
}

/// An unbounded in-memory sink: every event, in publish order.
#[derive(Default)]
pub struct VecSink {
    events: Mutex<Vec<Event>>,
}

impl VecSink {
    /// An empty sink.
    pub fn new() -> Self {
        VecSink::default()
    }

    /// A `(recorder, sink)` pair sharing the same buffer — the common
    /// setup for capturing a run's stream.
    pub fn recorder() -> (Recorder, Arc<VecSink>) {
        let sink = Arc::new(VecSink::new());
        (Recorder::new(sink.clone()), sink)
    }

    /// The events recorded so far, in order.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().expect("telemetry sink poisoned").clone()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().expect("telemetry sink poisoned").len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TelemetrySink for VecSink {
    fn record(&self, event: Event) {
        self.events.lock().expect("telemetry sink poisoned").push(event);
    }
}

/// A bounded ring buffer: keeps the most recent `capacity` events.
/// The right sink for always-on telemetry in long runs where only the
/// tail matters (e.g. "what led up to the SLA miss").
pub struct RingSink {
    capacity: usize,
    events: Mutex<VecDeque<Event>>,
}

impl RingSink {
    /// A ring keeping at most `capacity` events (capacity 0 keeps none).
    pub fn new(capacity: usize) -> Self {
        RingSink { capacity, events: Mutex::new(VecDeque::with_capacity(capacity.min(1024))) }
    }

    /// The retained tail, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().expect("telemetry sink poisoned").iter().cloned().collect()
    }
}

impl TelemetrySink for RingSink {
    fn record(&self, event: Event) {
        if self.capacity == 0 {
            return;
        }
        let mut events = self.events.lock().expect("telemetry sink poisoned");
        if events.len() == self.capacity {
            events.pop_front();
        }
        events.push_back(event);
    }
}

/// Streams each event as one JSON object per line to a writer. Lines use
/// the deterministic `event_json` encoding, so two replays of the same
/// seed produce byte-identical files.
pub struct JsonLinesSink<W: Write + Send> {
    writer: Mutex<W>,
}

impl<W: Write + Send> JsonLinesSink<W> {
    /// Wrap `writer`; each recorded event appends one line.
    pub fn new(writer: W) -> Self {
        JsonLinesSink { writer: Mutex::new(writer) }
    }

    /// Flush and return the inner writer.
    pub fn into_inner(self) -> W {
        let mut writer = self.writer.into_inner().expect("telemetry sink poisoned");
        let _ = writer.flush();
        writer
    }
}

impl<W: Write + Send> TelemetrySink for JsonLinesSink<W> {
    fn record(&self, event: Event) {
        let mut writer = self.writer.lock().expect("telemetry sink poisoned");
        let _ = writeln!(writer, "{}", event_json(&event));
    }
}

/// Forwards every event to all inner sinks, in order — e.g. a `VecSink`
/// for the Perfetto export plus a `MetricsSink` for the summary.
#[derive(Default)]
pub struct FanoutSink {
    sinks: Vec<Arc<dyn TelemetrySink>>,
}

impl FanoutSink {
    /// An empty fanout (records to nobody).
    pub fn new() -> Self {
        FanoutSink::default()
    }

    /// Add a downstream sink.
    pub fn with(mut self, sink: Arc<dyn TelemetrySink>) -> Self {
        self.sinks.push(sink);
        self
    }
}

impl TelemetrySink for FanoutSink {
    fn record(&self, event: Event) {
        for sink in &self.sinks {
            sink.record(event.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{SearchEvent, ServeEvent};

    #[test]
    fn disabled_recorder_never_constructs_events() {
        let recorder = Recorder::disabled();
        assert!(!recorder.is_enabled());
        recorder.emit(|| unreachable!("no sink, closure must not run"));
    }

    #[test]
    fn vec_sink_preserves_order() {
        let (recorder, sink) = VecSink::recorder();
        for tick in 0..4 {
            recorder.emit(|| Event::search(tick, SearchEvent::Staged));
        }
        let events = sink.events();
        assert_eq!(events.len(), 4);
        assert!(matches!(events[3], Event::Search { tick: 3, .. }));
    }

    #[test]
    fn ring_sink_keeps_the_tail() {
        let ring = Arc::new(RingSink::new(2));
        let recorder = Recorder::new(ring.clone());
        for tick in 0..5 {
            recorder.emit(|| Event::search(tick, SearchEvent::Staged));
        }
        let events = ring.events();
        assert_eq!(events.len(), 2);
        assert!(matches!(events[0], Event::Search { tick: 3, .. }));
        assert!(matches!(events[1], Event::Search { tick: 4, .. }));
    }

    #[test]
    fn json_lines_sink_writes_one_line_per_event() {
        let sink = JsonLinesSink::new(Vec::new());
        sink.record(Event::serve(0.0, ServeEvent::Arrive { req: 1 }));
        sink.record(Event::serve(0.25, ServeEvent::Admit { req: 1 }));
        let bytes = sink.into_inner();
        let text = String::from_utf8(bytes).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.lines().all(|l| l.starts_with("{\"type\":\"serve\"")));
    }

    #[test]
    fn fanout_reaches_every_sink() {
        let a = Arc::new(VecSink::new());
        let b = Arc::new(VecSink::new());
        let fan = FanoutSink::new().with(a.clone()).with(b.clone());
        fan.record(Event::search(0, SearchEvent::Staged));
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn publish_replays_a_buffered_stream_in_order() {
        let (recorder, sink) = VecSink::recorder();
        let buffered =
            vec![Event::search(1, SearchEvent::Staged), Event::search(2, SearchEvent::Staged)];
        recorder.publish(buffered.clone());
        assert_eq!(sink.events(), buffered);
    }
}
