//! Chrome-trace / Perfetto JSON export.
//!
//! The exported files load directly in `chrome://tracing` or
//! <https://ui.perfetto.dev>: a `ServeSim` run renders as one timeline
//! track per resident batch slot (request lifetime spans with nested
//! prefill spans) plus counter tracks (batch size, resident K/V bytes,
//! queue depth); a search run renders as per-strategy convergence tracks
//! (hypervolume fraction, frontier size, cumulative cache traffic)
//! against the evaluation-count clock.
//!
//! Timed events are stably sorted by timestamp before serialization, so
//! file-order timestamps are monotone — the property the CI validity
//! gate asserts — and the bytes are a pure function of the event stream.

use crate::event::{num, quoted, Event, SearchEvent, ServeEvent};

/// Incremental builder for a Chrome-trace JSON document.
///
/// Metadata records (process/thread names) serialize first; timed records
/// are stably sorted by timestamp, so ties keep insertion order and the
/// output is deterministic.
#[derive(Debug, Default)]
pub struct ChromeTrace {
    meta: Vec<String>,
    timed: Vec<(f64, String)>,
}

impl ChromeTrace {
    /// An empty trace.
    pub fn new() -> Self {
        ChromeTrace::default()
    }

    /// Name the process `pid`.
    pub fn process(&mut self, pid: u64, name: &str) {
        self.meta.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"args\":{{\"name\":{}}}}}",
            quoted(name)
        ));
    }

    /// Name thread `tid` of process `pid`.
    pub fn thread(&mut self, pid: u64, tid: u64, name: &str) {
        self.meta.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
             \"args\":{{\"name\":{}}}}}",
            quoted(name)
        ));
    }

    /// A complete ("X") span: `[ts_us, ts_us + dur_us]` on one track.
    /// `args` is a pre-rendered JSON object body (may be empty).
    pub fn complete(
        &mut self,
        name: &str,
        pid: u64,
        tid: u64,
        ts_us: f64,
        dur_us: f64,
        args: &str,
    ) {
        self.timed.push((
            ts_us,
            format!(
                "{{\"name\":{},\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{pid},\"tid\":{tid},\
                 \"args\":{{{args}}}}}",
                quoted(name),
                num(ts_us),
                num(dur_us.max(0.0))
            ),
        ));
    }

    /// An instant ("i") marker on one track.
    pub fn instant(&mut self, name: &str, pid: u64, tid: u64, ts_us: f64, args: &str) {
        self.timed.push((
            ts_us,
            format!(
                "{{\"name\":{},\"ph\":\"i\",\"ts\":{},\"pid\":{pid},\"tid\":{tid},\"s\":\"t\",\
                 \"args\":{{{args}}}}}",
                quoted(name),
                num(ts_us)
            ),
        ));
    }

    /// A counter ("C") sample: one series named `name` with value `value`.
    pub fn counter(&mut self, name: &str, pid: u64, ts_us: f64, value: f64) {
        self.timed.push((
            ts_us,
            format!(
                "{{\"name\":{},\"ph\":\"C\",\"ts\":{},\"pid\":{pid},\"args\":{{{}:{}}}}}",
                quoted(name),
                num(ts_us),
                quoted(name),
                num(value)
            ),
        ));
    }

    /// Serialize: metadata first, then timed events stably sorted by
    /// timestamp (ties keep insertion order).
    pub fn to_json(&self) -> String {
        let mut timed: Vec<&(f64, String)> = self.timed.iter().collect();
        timed.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite trace timestamps"));
        let records: Vec<&str> = self
            .meta
            .iter()
            .map(String::as_str)
            .chain(timed.iter().map(|(_, json)| json.as_str()))
            .collect();
        format!("{{\"traceEvents\":[{}]}}", records.join(","))
    }
}

const SERVE_PID: u64 = 1;
const ARRIVAL_TID: u64 = 1000;
const WAITING_TID: u64 = 1001;
const ROUTER_TID: u64 = 1002;
const FAULT_TID: u64 = 1003;

/// A prefill window mid-flight: `(start_ts, context_tokens, end_ts)`.
type PrefillWindow = (f64, usize, Option<f64>);
/// One occupied batch slot: `(req, admit_ts, prefill window)`.
type SlotState = (u64, f64, Option<PrefillWindow>);

/// Render a `ServeSim` event stream as a Chrome trace: one thread track
/// per resident batch slot (requests claim the lowest free slot on admit
/// and release it on completion), an arrivals track, a scheduler track
/// (waiting-queue enqueue/dequeue markers and prefill-chunk instants),
/// and counter tracks for batch size, resident K/V bytes, queue depth,
/// and waiting depth. Timestamps are simulated seconds scaled to trace
/// microseconds.
pub fn serve_trace_json(events: &[Event]) -> String {
    let mut trace = ChromeTrace::new();
    add_serve_stream(&mut trace, SERVE_PID, "serve", events);
    trace.to_json()
}

/// Render a fleet run as a Chrome trace: each named stream (the router's
/// `Route`/`KvTransfer` stream plus one serve stream per replica chip)
/// becomes its own trace process, so a disaggregated fleet shows prefill
/// chips, decode chips, and the K/V handoffs between them on one
/// timeline. Stream order fixes the process ids, so the bytes are a pure
/// function of the input.
pub fn fleet_trace_json(streams: &[(&str, &[Event])]) -> String {
    let mut trace = ChromeTrace::new();
    for (idx, (name, events)) in streams.iter().enumerate() {
        add_serve_stream(&mut trace, idx as u64 + 1, name, events);
    }
    trace.to_json()
}

/// One serve event stream rendered as one trace process (`pid`).
fn add_serve_stream(trace: &mut ChromeTrace, pid: u64, name: &str, events: &[Event]) {
    let us = |t_s: f64| t_s * 1e6;
    trace.process(pid, name);
    trace.thread(pid, ARRIVAL_TID, "arrivals");

    // slot -> (req, admit_ts, prefill window) for in-flight requests.
    let mut slots: Vec<Option<SlotState>> = Vec::new();
    let mut slot_of = std::collections::HashMap::new();
    let mut named_slots = 0usize;
    let mut named_scheduler = false;
    let mut named_router = false;
    let mut named_fault = false;
    let mut last_t = 0.0f64;

    for event in events {
        let Event::Serve { t_s, kind } = event else { continue };
        let t = us(*t_s);
        last_t = last_t.max(t);
        match kind {
            ServeEvent::Arrive { req } => {
                trace.instant("arrive", pid, ARRIVAL_TID, t, &format!("\"req\":{req}"));
            }
            ServeEvent::Admit { req } => {
                let slot = slots.iter().position(Option::is_none).unwrap_or_else(|| {
                    slots.push(None);
                    slots.len() - 1
                });
                while named_slots <= slot {
                    trace.thread(pid, named_slots as u64, &format!("slot {named_slots}"));
                    named_slots += 1;
                }
                slots[slot] = Some((*req, t, None));
                slot_of.insert(*req, slot);
            }
            ServeEvent::PrefillStart { req, context } => {
                if let Some(&slot) = slot_of.get(req) {
                    if let Some((_, _, prefill @ None)) = &mut slots[slot] {
                        *prefill = Some((t, *context, None));
                    }
                }
            }
            ServeEvent::PrefillEnd { req } => {
                if let Some(&slot) = slot_of.get(req) {
                    if let Some((_, _, Some((_, _, end @ None)))) = &mut slots[slot] {
                        *end = Some(t);
                    }
                }
            }
            ServeEvent::Complete { req } => {
                if let Some(slot) = slot_of.remove(req) {
                    if let Some((req, admit, prefill)) = slots[slot].take() {
                        close_request(trace, pid, slot as u64, req, admit, t, prefill);
                    }
                }
            }
            ServeEvent::DecodeIter { batch, resident_kv } => {
                trace.counter("batch", pid, t, *batch as f64);
                trace.counter("resident_kv", pid, t, *resident_kv as f64);
            }
            ServeEvent::QueueDepthSample { depth } => {
                trace.counter("queue_depth", pid, t, *depth as f64);
            }
            ServeEvent::PrefillChunk { req, tokens, remaining } => {
                if let Some(&slot) = slot_of.get(req) {
                    trace.instant(
                        &format!("chunk {req}"),
                        pid,
                        slot as u64,
                        t,
                        &format!("\"req\":{req},\"tokens\":{tokens},\"remaining\":{remaining}"),
                    );
                }
            }
            ServeEvent::Enqueue { req } => {
                if !named_scheduler {
                    trace.thread(pid, WAITING_TID, "scheduler");
                    named_scheduler = true;
                }
                trace.instant("enqueue", pid, WAITING_TID, t, &format!("\"req\":{req}"));
            }
            ServeEvent::Dequeue { req } => {
                if !named_scheduler {
                    trace.thread(pid, WAITING_TID, "scheduler");
                    named_scheduler = true;
                }
                trace.instant("dequeue", pid, WAITING_TID, t, &format!("\"req\":{req}"));
            }
            ServeEvent::WaitingDepth { depth } => {
                trace.counter("waiting_depth", pid, t, *depth as f64);
            }
            ServeEvent::Route { req, replica } => {
                if !named_router {
                    trace.thread(pid, ROUTER_TID, "router");
                    named_router = true;
                }
                trace.instant(
                    &format!("route {replica}"),
                    pid,
                    ROUTER_TID,
                    t,
                    &format!("\"req\":{req},\"replica\":{replica}"),
                );
            }
            ServeEvent::KvTransfer { req, bytes, seconds } => {
                if !named_router {
                    trace.thread(pid, ROUTER_TID, "router");
                    named_router = true;
                }
                trace.complete(
                    &format!("kv {req}"),
                    pid,
                    ROUTER_TID,
                    t,
                    us(*seconds),
                    &format!("\"req\":{req},\"bytes\":{bytes}"),
                );
            }
            ServeEvent::ReplicaDown { replica } => {
                if !named_fault {
                    trace.thread(pid, FAULT_TID, "faults");
                    named_fault = true;
                }
                trace.instant(
                    &format!("down {replica}"),
                    pid,
                    FAULT_TID,
                    t,
                    &format!("\"replica\":{replica}"),
                );
            }
            ServeEvent::ReplicaUp { replica } => {
                if !named_fault {
                    trace.thread(pid, FAULT_TID, "faults");
                    named_fault = true;
                }
                trace.instant(
                    &format!("up {replica}"),
                    pid,
                    FAULT_TID,
                    t,
                    &format!("\"replica\":{replica}"),
                );
            }
            ServeEvent::Degraded { replica, slowdown, dram } => {
                if !named_fault {
                    trace.thread(pid, FAULT_TID, "faults");
                    named_fault = true;
                }
                trace.instant(
                    &format!("degraded {replica}"),
                    pid,
                    FAULT_TID,
                    t,
                    &format!(
                        "\"replica\":{replica},\"slowdown\":{},\"dram\":{dram}",
                        num(*slowdown)
                    ),
                );
            }
            ServeEvent::Retry { req, attempt, delay_s } => {
                if !named_fault {
                    trace.thread(pid, FAULT_TID, "faults");
                    named_fault = true;
                }
                trace.complete(
                    &format!("retry {req}"),
                    pid,
                    FAULT_TID,
                    t,
                    us(*delay_s),
                    &format!("\"req\":{req},\"attempt\":{attempt}"),
                );
            }
            ServeEvent::Shed { req } => {
                if !named_fault {
                    trace.thread(pid, FAULT_TID, "faults");
                    named_fault = true;
                }
                trace.instant(&format!("shed {req}"), pid, FAULT_TID, t, &format!("\"req\":{req}"));
            }
        }
    }
    // Close any request still resident when the stream ends so its span
    // is visible rather than silently dropped.
    for (slot, state) in slots.iter_mut().enumerate() {
        if let Some((req, admit, prefill)) = state.take() {
            close_request(trace, pid, slot as u64, req, admit, last_t, prefill);
        }
    }
}

fn close_request(
    trace: &mut ChromeTrace,
    pid: u64,
    slot: u64,
    req: u64,
    admit_us: f64,
    end_us: f64,
    prefill: Option<(f64, usize, Option<f64>)>,
) {
    trace.complete(
        &format!("req {req}"),
        pid,
        slot,
        admit_us,
        end_us - admit_us,
        &format!("\"req\":{req}"),
    );
    if let Some((start, context, end)) = prefill {
        let end = end.unwrap_or(end_us);
        trace.complete(
            &format!("prefill {req}"),
            pid,
            slot,
            start,
            end - start,
            &format!("\"req\":{req},\"context\":{context}"),
        );
    }
}

/// Render one or more search strategies' event streams as per-strategy
/// convergence tracks: each strategy becomes a trace process with
/// counter tracks for hypervolume fraction, frontier size, and
/// cumulative cache hits/misses, all against the evaluation-count clock
/// (one evaluation = one trace microsecond).
///
/// Streams carrying [`SearchEvent::ChainStart`] markers (annealing runs)
/// additionally get per-chain cumulative cache tracks (`cache_hits c3`)
/// that reset at each chain boundary, plus a `chain` counter stepping
/// through chain indices — so chain-local cache behaviour is visible
/// next to the run-wide totals. Streams without markers render exactly
/// as before.
pub fn search_trace_json(streams: &[(&str, &[Event])]) -> String {
    let mut trace = ChromeTrace::new();
    for (idx, (strategy, events)) in streams.iter().enumerate() {
        let pid = idx as u64 + 1;
        trace.process(pid, strategy);
        let (mut hits, mut misses) = (0u64, 0u64);
        let mut chain: Option<u64> = None;
        let (mut chain_hits, mut chain_misses) = (0u64, 0u64);
        for event in *events {
            let Event::Search { tick, kind } = event else { continue };
            let t = *tick as f64;
            match kind {
                SearchEvent::HypervolumeSample { fraction } => {
                    trace.counter("hypervolume", pid, t, *fraction);
                }
                SearchEvent::FrontierInsert { frontier_len, .. } => {
                    trace.counter("frontier_len", pid, t, *frontier_len as f64);
                }
                SearchEvent::CacheHit { .. } => {
                    hits += 1;
                    trace.counter("cache_hits", pid, t, hits as f64);
                    if let Some(c) = chain {
                        chain_hits += 1;
                        trace.counter(&format!("cache_hits c{c}"), pid, t, chain_hits as f64);
                    }
                }
                SearchEvent::CacheMiss { .. } => {
                    misses += 1;
                    trace.counter("cache_misses", pid, t, misses as f64);
                    if let Some(c) = chain {
                        chain_misses += 1;
                        trace.counter(&format!("cache_misses c{c}"), pid, t, chain_misses as f64);
                    }
                }
                SearchEvent::FlushBatch { size } => {
                    trace.counter("flush_batch", pid, t, *size as f64);
                }
                SearchEvent::ChainStart { chain: c } => {
                    chain = Some(*c);
                    chain_hits = 0;
                    chain_misses = 0;
                    trace.counter("chain", pid, t, *c as f64);
                }
                SearchEvent::Staged | SearchEvent::ScreenedOut => {}
            }
        }
    }
    trace.to_json()
}

/// Validate an exported Chrome trace without a JSON parser: the document
/// must carry the `traceEvents` envelope, contain at least one timed
/// record, and list `"ts"` values in non-decreasing file order (the
/// exporter sorts, so any regression shows up here). Returns the number
/// of timed records.
pub fn validate_chrome_trace(json: &str) -> Result<usize, String> {
    if !json.starts_with("{\"traceEvents\":[") {
        return Err("missing {\"traceEvents\":[ envelope".into());
    }
    if !json.ends_with("]}") {
        return Err("unterminated traceEvents array".into());
    }
    let mut count = 0usize;
    let mut last = f64::NEG_INFINITY;
    let mut rest = json;
    while let Some(pos) = rest.find("\"ts\":") {
        rest = &rest[pos + 5..];
        let end = rest
            .find(|c: char| !matches!(c, '0'..='9' | '-' | '+' | '.' | 'e' | 'E'))
            .unwrap_or(rest.len());
        let ts: f64 =
            rest[..end].parse().map_err(|e| format!("unparseable ts {:?}: {e}", &rest[..end]))?;
        if !ts.is_finite() {
            return Err(format!("non-finite ts at record {count}"));
        }
        if ts < last {
            return Err(format!("ts went backwards at record {count}: {last} -> {ts}"));
        }
        last = ts;
        count += 1;
    }
    if count == 0 {
        return Err("trace has no timed events".into());
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn serve_stream() -> Vec<Event> {
        vec![
            Event::serve(0.0, ServeEvent::Arrive { req: 0 }),
            Event::serve(0.0, ServeEvent::Admit { req: 0 }),
            Event::serve(0.0, ServeEvent::PrefillStart { req: 0, context: 128 }),
            Event::serve(0.01, ServeEvent::PrefillEnd { req: 0 }),
            Event::serve(0.01, ServeEvent::DecodeIter { batch: 1, resident_kv: 4096 }),
            Event::serve(0.01, ServeEvent::QueueDepthSample { depth: 0 }),
            Event::serve(0.05, ServeEvent::Complete { req: 0 }),
        ]
    }

    #[test]
    fn serve_trace_is_valid_and_has_slot_tracks() {
        let json = serve_trace_json(&serve_stream());
        let timed = validate_chrome_trace(&json).expect("valid trace");
        assert!(timed >= 5);
        assert!(json.contains("\"slot 0\""));
        assert!(json.contains("\"req 0\""));
        assert!(json.contains("\"prefill 0\""));
        assert!(json.contains("\"queue_depth\""));
    }

    #[test]
    fn serve_trace_closes_unfinished_requests() {
        let mut events = serve_stream();
        events.pop(); // drop the Complete
        let json = serve_trace_json(&events);
        assert!(json.contains("\"req 0\""), "open request must still get a span");
        validate_chrome_trace(&json).expect("valid trace");
    }

    #[test]
    fn slots_are_reused_after_completion() {
        let mut events = serve_stream();
        events.push(Event::serve(0.06, ServeEvent::Admit { req: 1 }));
        events.push(Event::serve(0.09, ServeEvent::Complete { req: 1 }));
        let json = serve_trace_json(&events);
        assert!(json.contains("\"slot 0\""));
        assert!(!json.contains("\"slot 1\""), "second request should reuse the freed slot");
    }

    #[test]
    fn search_trace_tracks_convergence_per_strategy() {
        let a = vec![
            Event::search(1, SearchEvent::CacheMiss { shard: 0 }),
            Event::search(5, SearchEvent::HypervolumeSample { fraction: 0.5 }),
            Event::search(9, SearchEvent::HypervolumeSample { fraction: 0.9 }),
        ];
        let b =
            vec![Event::search(4, SearchEvent::FrontierInsert { admitted: true, frontier_len: 2 })];
        let json = search_trace_json(&[("random", &a), ("genetic", &b)]);
        validate_chrome_trace(&json).expect("valid trace");
        assert!(json.contains("\"random\""));
        assert!(json.contains("\"genetic\""));
        assert!(json.contains("\"hypervolume\""));
        assert!(json.contains("\"frontier_len\""));
    }

    #[test]
    fn search_trace_adds_per_chain_tracks_on_chain_markers() {
        let a = vec![
            Event::search(0, SearchEvent::ChainStart { chain: 0 }),
            Event::search(1, SearchEvent::CacheMiss { shard: 0 }),
            Event::search(2, SearchEvent::CacheHit { shard: 0 }),
            Event::search(2, SearchEvent::ChainStart { chain: 1 }),
            Event::search(3, SearchEvent::CacheHit { shard: 1 }),
        ];
        let json = search_trace_json(&[("annealing", &a)]);
        validate_chrome_trace(&json).expect("valid trace");
        assert!(json.contains("\"chain\""));
        assert!(json.contains("\"cache_hits c0\""));
        assert!(json.contains("\"cache_hits c1\""));
        assert!(json.contains("\"cache_misses c0\""));
        // Run-wide cumulative tracks are still present alongside.
        assert!(json.contains("\"cache_hits\""));
        // No markers -> no chain tracks (legacy streams unchanged).
        let b = vec![Event::search(1, SearchEvent::CacheHit { shard: 0 })];
        let json = search_trace_json(&[("random", &b)]);
        assert!(!json.contains(" c0\""));
        assert!(!json.contains("\"chain\""));
    }

    #[test]
    fn fleet_trace_renders_router_and_replica_processes() {
        let router = vec![
            Event::serve(0.0, ServeEvent::Route { req: 0, replica: 1 }),
            Event::serve(0.02, ServeEvent::KvTransfer { req: 0, bytes: 4096, seconds: 0.001 }),
        ];
        let replica = serve_stream();
        let json = fleet_trace_json(&[("router", &router), ("replica 0", &replica)]);
        validate_chrome_trace(&json).expect("valid trace");
        assert!(json.contains("\"router\""));
        assert!(json.contains("\"replica 0\""));
        assert!(json.contains("\"route 1\""));
        assert!(json.contains("\"kv 0\""));
        assert_eq!(json, fleet_trace_json(&[("router", &router), ("replica 0", &replica)]));
    }

    #[test]
    fn fault_events_render_on_a_dedicated_fault_track() {
        let router = vec![
            Event::serve(0.0, ServeEvent::Route { req: 0, replica: 1 }),
            Event::serve(0.5, ServeEvent::ReplicaDown { replica: 1 }),
            Event::serve(0.5, ServeEvent::Retry { req: 0, attempt: 1, delay_s: 0.05 }),
            Event::serve(0.5, ServeEvent::Shed { req: 3 }),
            Event::serve(0.6, ServeEvent::Degraded { replica: 0, slowdown: 2.0, dram: true }),
            Event::serve(0.9, ServeEvent::ReplicaUp { replica: 1 }),
        ];
        let json = fleet_trace_json(&[("router", &router)]);
        validate_chrome_trace(&json).expect("valid trace");
        assert!(json.contains("\"faults\""));
        assert!(json.contains("\"down 1\""));
        assert!(json.contains("\"up 1\""));
        assert!(json.contains("\"retry 0\""));
        assert!(json.contains("\"shed 3\""));
        assert!(json.contains("\"degraded 0\""));
        // Fault-free streams never name the track.
        let clean = serve_trace_json(&serve_stream());
        assert!(!clean.contains("\"faults\""));
    }

    #[test]
    fn exporter_output_is_deterministic() {
        let events = serve_stream();
        assert_eq!(serve_trace_json(&events), serve_trace_json(&events));
    }

    #[test]
    fn validator_rejects_malformed_traces() {
        assert!(validate_chrome_trace("[]").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":[]}").is_err(), "empty trace rejected");
        let backwards = "{\"traceEvents\":[{\"ts\":2,\"ph\":\"i\"},{\"ts\":1,\"ph\":\"i\"}]}";
        assert!(validate_chrome_trace(backwards).is_err(), "non-monotone ts rejected");
    }

    #[test]
    fn validator_accepts_exponent_timestamps() {
        let json = "{\"traceEvents\":[{\"ts\":5e-1,\"ph\":\"i\"},{\"ts\":1e4,\"ph\":\"i\"}]}";
        assert_eq!(validate_chrome_trace(json), Ok(2));
    }
}
