//! Profile-oriented exports: flamegraph folded stacks, roofline tables,
//! and search-budget attribution.
//!
//! Everything here is a pure function of deterministic inputs — cost
//! trees flattened to leaf paths, analytical roofline points, or the
//! telemetry event stream — so every export is byte-reproducible and can
//! be golden-gated like the Chrome traces.
//!
//! * [`folded_stack_text`] renders leaf-path weights in the *folded
//!   stacks* format consumed by `inferno-flamegraph` / `flamegraph.pl`
//!   (`frame;frame;frame COUNT`, one line per unique stack).
//! * [`validate_folded_stacks`] is the parser-free validity gate CI runs
//!   on exported folded output, mirroring
//!   [`validate_chrome_trace`](crate::validate_chrome_trace).
//! * [`RooflinePoint`] plus [`roofline_json`] / [`roofline_csv`] export
//!   per-kernel operational-intensity tables for roofline plotting.
//! * [`SearchBudgetAttribution`] accounts for where a search budget went
//!   (screened, cache-served, fully evaluated) per strategy stream.

use std::collections::BTreeMap;

use crate::event::{num, quoted, Event, SearchEvent};

/// Render `(stack-path, weight)` leaves as inferno-style folded stacks.
///
/// Stack paths are `;`-separated frame chains, exactly as produced by a
/// cost tree's leaf flattening. Duplicate paths merge by summing their
/// weights before rounding; weights round to integer counts (the format
/// carries integers); zero-count and non-finite leaves are dropped.
/// Lines are sorted lexicographically by path, so the output is a pure
/// function of the leaf multiset.
pub fn folded_stack_text(leaves: &[(String, f64)]) -> String {
    let mut merged: BTreeMap<&str, f64> = BTreeMap::new();
    for (path, weight) in leaves {
        if weight.is_finite() {
            *merged.entry(path.as_str()).or_insert(0.0) += weight;
        }
    }
    let mut out = String::new();
    for (path, weight) in merged {
        let count = weight.round();
        if count >= 1.0 {
            out.push_str(path);
            out.push(' ');
            out.push_str(&format!("{}", count as u64));
            out.push('\n');
        }
    }
    out
}

/// Validate folded-stack text without a parser: the document must be
/// non-empty, every line must be `stack COUNT` with a positive integer
/// count, every frame in the `;`-separated stack must be non-empty and
/// free of leading/trailing whitespace, and stacks must appear in
/// strictly increasing lexicographic order (the exporter sorts and
/// merges, so any duplicate or misordering is a regression). Returns
/// the number of stack lines.
pub fn validate_folded_stacks(text: &str) -> Result<usize, String> {
    let mut count = 0usize;
    let mut last_stack: Option<&str> = None;
    for (lineno, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let (stack, weight) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no count field: {line:?}", lineno + 1))?;
        let weight: u64 = weight
            .parse()
            .map_err(|e| format!("line {}: unparseable count {weight:?}: {e}", lineno + 1))?;
        if weight == 0 {
            return Err(format!("line {}: zero count (exporter drops zeros)", lineno + 1));
        }
        if stack.is_empty() {
            return Err(format!("line {}: empty stack", lineno + 1));
        }
        for frame in stack.split(';') {
            if frame.is_empty() || frame.trim() != frame {
                return Err(format!("line {}: malformed frame {frame:?}", lineno + 1));
            }
        }
        if let Some(prev) = last_stack {
            if stack <= prev {
                return Err(format!(
                    "line {}: stacks not strictly sorted: {prev:?} then {stack:?}",
                    lineno + 1
                ));
            }
        }
        last_stack = Some(stack);
        count += 1;
    }
    if count == 0 {
        return Err("folded output has no stack lines".into());
    }
    Ok(count)
}

/// One kernel on a roofline plot: work, traffic, and which side of the
/// machine-balance ridge it lands on.
#[derive(Debug, Clone, PartialEq)]
pub struct RooflinePoint {
    /// Kernel label (e.g. the einsum name).
    pub label: String,
    /// Floating-point operations (MACs counted as 2).
    pub flops: f64,
    /// Compulsory DRAM traffic in bytes.
    pub bytes: f64,
    /// Operational intensity, `flops / bytes`.
    pub intensity: f64,
    /// The machine's ridge point in flops per byte.
    pub machine_balance: f64,
    /// `true` when `intensity < machine_balance` (DRAM-limited).
    pub memory_bound: bool,
}

/// Roofline points as a deterministic JSON document
/// (`{"points":[{...},...]}`, shortest-round-trip floats, fixed field
/// order).
pub fn roofline_json(points: &[RooflinePoint]) -> String {
    let body: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "{{\"label\":{},\"flops\":{},\"bytes\":{},\"intensity\":{},\
                 \"machine_balance\":{},\"memory_bound\":{}}}",
                quoted(&p.label),
                num(p.flops),
                num(p.bytes),
                num(p.intensity),
                num(p.machine_balance),
                p.memory_bound
            )
        })
        .collect();
    format!("{{\"points\":[{}]}}", body.join(","))
}

/// Roofline points as CSV with a fixed header, one row per point.
pub fn roofline_csv(points: &[RooflinePoint]) -> String {
    let mut out = String::from("label,flops,bytes,intensity,machine_balance,memory_bound\n");
    for p in points {
        out.push_str(&format!(
            "{},{},{},{},{},{}\n",
            p.label,
            num(p.flops),
            num(p.bytes),
            num(p.intensity),
            num(p.machine_balance),
            p.memory_bound
        ));
    }
    out
}

/// Where a search strategy's evaluation budget went, derived entirely
/// from its telemetry stream: every staged candidate is accounted to
/// exactly one of the screen, the shared cache, or a full model run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SearchBudgetAttribution {
    /// Candidates staged for evaluation (charged against the budget).
    pub staged: u64,
    /// Candidates rejected by the multi-fidelity screen before staging.
    pub screened_out: u64,
    /// Staged candidates served from the shared evaluation cache.
    pub cache_hits: u64,
    /// Staged candidates that ran the full analytical model.
    pub full_evals: u64,
    /// Batches flushed to the evaluation workers.
    pub flushes: u64,
    /// Annealing chains observed (0 for non-annealing strategies).
    pub chains: u64,
}

impl SearchBudgetAttribution {
    /// Tally one strategy's event stream. Serve events are ignored.
    pub fn from_events(events: &[Event]) -> Self {
        let mut a = SearchBudgetAttribution::default();
        for event in events {
            let Event::Search { kind, .. } = event else { continue };
            match kind {
                SearchEvent::Staged => a.staged += 1,
                SearchEvent::ScreenedOut => a.screened_out += 1,
                SearchEvent::CacheHit { .. } => a.cache_hits += 1,
                SearchEvent::CacheMiss { .. } => a.full_evals += 1,
                SearchEvent::FlushBatch { .. } => a.flushes += 1,
                SearchEvent::ChainStart { .. } => a.chains += 1,
                SearchEvent::FrontierInsert { .. } | SearchEvent::HypervolumeSample { .. } => {}
            }
        }
        a
    }

    /// Staged candidates that resolved (cache hit or full evaluation).
    pub fn resolved(&self) -> u64 {
        self.cache_hits + self.full_evals
    }

    /// This attribution as a deterministic JSON object.
    pub fn json(&self) -> String {
        format!(
            "{{\"staged\":{},\"screened_out\":{},\"cache_hits\":{},\"full_evals\":{},\
             \"flushes\":{},\"chains\":{}}}",
            self.staged,
            self.screened_out,
            self.cache_hits,
            self.full_evals,
            self.flushes,
            self.chains
        )
    }
}

/// Per-strategy budget attribution for several streams as one JSON
/// document (`{"strategies":{"name":{...},...}}`, stream order kept).
pub fn search_budget_json(streams: &[(&str, &[Event])]) -> String {
    let body: Vec<String> = streams
        .iter()
        .map(|(name, events)| {
            format!("{}:{}", quoted(name), SearchBudgetAttribution::from_events(events).json())
        })
        .collect();
    format!("{{\"strategies\":{{{}}}}}", body.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folded_output_merges_sorts_and_validates() {
        let leaves = vec![
            ("e2e;attention;compute_2d;QK".to_string(), 100.4),
            ("e2e;linear".to_string(), 50.0),
            ("e2e;attention;compute_2d;QK".to_string(), 0.6),
            ("e2e;attention;drain".to_string(), 0.2),
        ];
        let text = folded_stack_text(&leaves);
        assert_eq!(text, "e2e;attention;compute_2d;QK 101\ne2e;linear 50\n");
        assert_eq!(validate_folded_stacks(&text), Ok(2));
        assert_eq!(folded_stack_text(&leaves), text);
    }

    #[test]
    fn folded_validator_rejects_malformed_output() {
        assert!(validate_folded_stacks("").is_err(), "empty rejected");
        assert!(validate_folded_stacks("a;b\n").is_err(), "missing count rejected");
        assert!(validate_folded_stacks("a;b 0\n").is_err(), "zero count rejected");
        assert!(validate_folded_stacks("a;;b 3\n").is_err(), "empty frame rejected");
        assert!(validate_folded_stacks("b 1\na 2\n").is_err(), "unsorted rejected");
        assert!(validate_folded_stacks("a 1\na 2\n").is_err(), "duplicate rejected");
        assert_eq!(validate_folded_stacks("a 1\nb;c 2\n"), Ok(2));
    }

    #[test]
    fn roofline_exports_are_deterministic() {
        let points = vec![
            RooflinePoint {
                label: "QK".into(),
                flops: 1024.0,
                bytes: 64.0,
                intensity: 16.0,
                machine_balance: 308.0,
                memory_bound: true,
            },
            RooflinePoint {
                label: "AV".into(),
                flops: 4096.0,
                bytes: 8.0,
                intensity: 512.0,
                machine_balance: 308.0,
                memory_bound: false,
            },
        ];
        let json = roofline_json(&points);
        assert!(json.starts_with("{\"points\":["));
        assert!(json.contains("\"label\":\"QK\""));
        assert!(json.contains("\"memory_bound\":true"));
        assert_eq!(json, roofline_json(&points));
        let csv = roofline_csv(&points);
        assert!(csv.starts_with("label,flops,bytes,intensity,machine_balance,memory_bound\n"));
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.contains("AV,"));
    }

    #[test]
    fn budget_attribution_tallies_the_stream() {
        let events = vec![
            Event::search(0, SearchEvent::ChainStart { chain: 0 }),
            Event::search(0, SearchEvent::ScreenedOut),
            Event::search(1, SearchEvent::Staged),
            Event::search(1, SearchEvent::CacheMiss { shard: 2 }),
            Event::search(2, SearchEvent::Staged),
            Event::search(2, SearchEvent::CacheHit { shard: 1 }),
            Event::search(2, SearchEvent::FlushBatch { size: 2 }),
        ];
        let a = SearchBudgetAttribution::from_events(&events);
        assert_eq!(a.staged, 2);
        assert_eq!(a.screened_out, 1);
        assert_eq!(a.cache_hits, 1);
        assert_eq!(a.full_evals, 1);
        assert_eq!(a.flushes, 1);
        assert_eq!(a.chains, 1);
        assert_eq!(a.resolved(), a.staged);
        let json = search_budget_json(&[("annealing", &events)]);
        assert_eq!(
            json,
            "{\"strategies\":{\"annealing\":{\"staged\":2,\"screened_out\":1,\"cache_hits\":1,\
             \"full_evals\":1,\"flushes\":1,\"chains\":1}}}"
        );
    }
}
