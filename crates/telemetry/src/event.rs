//! The typed event vocabulary: everything the search and serving stacks
//! can say about themselves, keyed by **deterministic** clocks.
//!
//! Search events are keyed by *evaluation count* (how many distinct design
//! points the run had charged when the event fired) and serve events by
//! *simulated seconds* — never by wall clock — so an instrumented run
//! replayed with the same seed emits a byte-identical stream, and the
//! stream itself can be golden-gated like any other artifact.

use std::fmt::Write as _;

/// One telemetry event from either instrumented subsystem.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A design-space-search event at `tick` distinct evaluations charged.
    Search {
        /// Distinct design points the session had charged when the event
        /// fired (the search-side deterministic clock).
        tick: u64,
        /// What happened.
        kind: SearchEvent,
    },
    /// A serving-simulator event at `t_s` simulated seconds.
    Serve {
        /// Simulated time in seconds (the serve-side deterministic clock).
        t_s: f64,
        /// What happened.
        kind: ServeEvent,
    },
}

impl Event {
    /// A search event at `tick` charged evaluations.
    pub fn search(tick: u64, kind: SearchEvent) -> Self {
        Event::Search { tick, kind }
    }

    /// A serve event at `t_s` simulated seconds.
    pub fn serve(t_s: f64, kind: ServeEvent) -> Self {
        Event::Serve { t_s, kind }
    }
}

/// What a guided search or sweep can report. Emitted in proposal/staging
/// order by the session, which is serial by construction — so the stream
/// is identical across thread counts.
#[derive(Debug, Clone, PartialEq)]
pub enum SearchEvent {
    /// A candidate was staged for evaluation (charged against the budget).
    Staged,
    /// The multi-fidelity lower-bound screen rejected a candidate before
    /// the model ran.
    ScreenedOut,
    /// A staged point resolved from the shared evaluation cache.
    CacheHit {
        /// Which lock-striped cache shard held the entry.
        shard: usize,
    },
    /// A staged point missed the shared cache and ran the model.
    CacheMiss {
        /// Which lock-striped cache shard absorbed the fresh entry.
        shard: usize,
    },
    /// A staged batch was flushed to the (possibly parallel) workers.
    FlushBatch {
        /// Number of design points evaluated in the batch.
        size: usize,
    },
    /// An evaluation was offered to its group's Pareto frontier.
    FrontierInsert {
        /// `true` when the point joined the frontier (possibly evicting
        /// dominated members), `false` when it was dominated on arrival.
        admitted: bool,
        /// Frontier size after the insertion.
        frontier_len: usize,
    },
    /// One sample of a hypervolume convergence curve.
    HypervolumeSample {
        /// Fraction of the exhaustive reference hypervolume recovered.
        fraction: f64,
    },
    /// An annealing chain started walking its `(workload, seq_len)`
    /// group. Chain sessions are buffered and merged in chain order, so
    /// the marker partitions the merged stream into per-chain segments
    /// deterministically.
    ChainStart {
        /// Chain index (group order: workloads-major, seq-lens-minor).
        chain: u64,
    },
}

/// What the serving simulator can report, all at simulated timestamps.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeEvent {
    /// A request arrived (timestamped with its trace arrival time).
    Arrive {
        /// Trace request id.
        req: u64,
    },
    /// A request was admitted into the resident batch.
    Admit {
        /// Trace request id.
        req: u64,
    },
    /// A request's prefill phase entered the current engine iteration.
    PrefillStart {
        /// Trace request id.
        req: u64,
        /// Context length (prompt tokens) being prefilled.
        context: usize,
    },
    /// A request's prefill phase completed (first token produced).
    PrefillEnd {
        /// Trace request id.
        req: u64,
    },
    /// One engine iteration completed.
    DecodeIter {
        /// Resident requests processed this iteration.
        batch: usize,
        /// Bytes of K/V state resident in the global buffer.
        resident_kv: u64,
    },
    /// A request finished its last output token and retired.
    Complete {
        /// Trace request id.
        req: u64,
    },
    /// Waiting-queue depth after this iteration's admissions.
    QueueDepthSample {
        /// Requests waiting for admission.
        depth: usize,
    },
    /// A partial prefill chunk ran in the current engine iteration.
    /// Only chunked-prefill scheduler policies emit this; whole-prompt
    /// prefill describes itself with `PrefillStart`/`PrefillEnd` alone,
    /// so default-policy streams are byte-identical to the pre-scheduler
    /// traces.
    PrefillChunk {
        /// Trace request id.
        req: u64,
        /// Prompt tokens prefilled by this chunk.
        tokens: usize,
        /// Prompt tokens still unprefilled after this chunk.
        remaining: usize,
    },
    /// A request entered the policy-ordered waiting queue (non-default
    /// scheduler policies only).
    Enqueue {
        /// Trace request id.
        req: u64,
    },
    /// A request left the waiting queue for admission (non-default
    /// scheduler policies only).
    Dequeue {
        /// Trace request id.
        req: u64,
    },
    /// Policy-ordered waiting-queue depth after this iteration's
    /// admissions (non-default scheduler policies only).
    WaitingDepth {
        /// Requests held in the waiting queue.
        depth: usize,
    },
    /// The fleet router assigned a request to a replica (fleet runs
    /// only; single-chip streams never carry this, so their traces stay
    /// byte-identical to the pre-fleet goldens).
    Route {
        /// Trace request id.
        req: u64,
        /// Replica index the request was routed to.
        replica: usize,
    },
    /// A prefill chip handed a request's K/V cache to a decode chip
    /// (disaggregated fleets only), charged at DRAM bandwidth.
    KvTransfer {
        /// Trace request id.
        req: u64,
        /// Bytes of K/V state moved.
        bytes: u64,
        /// Wire time of the transfer in seconds.
        seconds: f64,
    },
    /// A replica chip failed stop (fault-injected runs only; fault-free
    /// streams never carry any of the fault events, so legacy traces stay
    /// byte-identical).
    ReplicaDown {
        /// Fleet chip index that died.
        replica: usize,
    },
    /// A failed replica chip recovered and rejoined the fleet
    /// (fault-injected runs only).
    ReplicaUp {
        /// Fleet chip index that recovered.
        replica: usize,
    },
    /// A replica chip entered a degraded mode — clock throttle or
    /// DRAM-bandwidth brownout (fault-injected runs only).
    Degraded {
        /// Fleet chip index degraded.
        replica: usize,
        /// Service-time multiplier (`>= 1.0`; `1.0` clears the mode).
        slowdown: f64,
        /// `true` for a DRAM-bandwidth brownout, `false` for a clock
        /// throttle.
        dram: bool,
    },
    /// A request lost to a replica failure re-entered the router's queue
    /// after its exponential-backoff delay (fault-injected runs only).
    Retry {
        /// Trace request id.
        req: u64,
        /// Attempt number this retry starts (the first retry is 1).
        attempt: usize,
        /// Backoff delay before re-admission, in seconds.
        delay_s: f64,
    },
    /// A request was shed — dropped without completing — because its
    /// retry budget ran out or surviving capacity fell below the
    /// load-shedding watermark (fault-injected runs only).
    Shed {
        /// Trace request id.
        req: u64,
    },
}

/// A finite `f64` as a JSON number (`null` for non-finite values, which
/// JSON cannot represent). Shortest-round-trip formatting, so identical
/// values always serialize to identical bytes.
pub(crate) fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:e}")
    } else {
        "null".into()
    }
}

/// A string as a JSON string literal.
pub(crate) fn quoted(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// One event as a single JSON object (the JSON-lines sink's line format).
/// Field order is fixed, floats use shortest-round-trip formatting: two
/// identical events always serialize to identical bytes.
pub fn event_json(event: &Event) -> String {
    match event {
        Event::Search { tick, kind } => {
            let body = match kind {
                SearchEvent::Staged => "\"kind\":\"staged\"".to_string(),
                SearchEvent::ScreenedOut => "\"kind\":\"screened_out\"".to_string(),
                SearchEvent::CacheHit { shard } => {
                    format!("\"kind\":\"cache_hit\",\"shard\":{shard}")
                }
                SearchEvent::CacheMiss { shard } => {
                    format!("\"kind\":\"cache_miss\",\"shard\":{shard}")
                }
                SearchEvent::FlushBatch { size } => {
                    format!("\"kind\":\"flush_batch\",\"size\":{size}")
                }
                SearchEvent::FrontierInsert { admitted, frontier_len } => format!(
                    "\"kind\":\"frontier_insert\",\"admitted\":{admitted},\"frontier_len\":{frontier_len}"
                ),
                SearchEvent::HypervolumeSample { fraction } => {
                    format!("\"kind\":\"hypervolume_sample\",\"fraction\":{}", num(*fraction))
                }
                SearchEvent::ChainStart { chain } => {
                    format!("\"kind\":\"chain_start\",\"chain\":{chain}")
                }
            };
            format!("{{\"type\":\"search\",\"tick\":{tick},{body}}}")
        }
        Event::Serve { t_s, kind } => {
            let body = match kind {
                ServeEvent::Arrive { req } => format!("\"kind\":\"arrive\",\"req\":{req}"),
                ServeEvent::Admit { req } => format!("\"kind\":\"admit\",\"req\":{req}"),
                ServeEvent::PrefillStart { req, context } => {
                    format!("\"kind\":\"prefill_start\",\"req\":{req},\"context\":{context}")
                }
                ServeEvent::PrefillEnd { req } => {
                    format!("\"kind\":\"prefill_end\",\"req\":{req}")
                }
                ServeEvent::DecodeIter { batch, resident_kv } => {
                    format!(
                        "\"kind\":\"decode_iter\",\"batch\":{batch},\"resident_kv\":{resident_kv}"
                    )
                }
                ServeEvent::Complete { req } => format!("\"kind\":\"complete\",\"req\":{req}"),
                ServeEvent::QueueDepthSample { depth } => {
                    format!("\"kind\":\"queue_depth\",\"depth\":{depth}")
                }
                ServeEvent::PrefillChunk { req, tokens, remaining } => {
                    format!(
                        "\"kind\":\"prefill_chunk\",\"req\":{req},\"tokens\":{tokens},\
                         \"remaining\":{remaining}"
                    )
                }
                ServeEvent::Enqueue { req } => format!("\"kind\":\"enqueue\",\"req\":{req}"),
                ServeEvent::Dequeue { req } => format!("\"kind\":\"dequeue\",\"req\":{req}"),
                ServeEvent::WaitingDepth { depth } => {
                    format!("\"kind\":\"waiting_depth\",\"depth\":{depth}")
                }
                ServeEvent::Route { req, replica } => {
                    format!("\"kind\":\"route\",\"req\":{req},\"replica\":{replica}")
                }
                ServeEvent::KvTransfer { req, bytes, seconds } => {
                    format!(
                        "\"kind\":\"kv_transfer\",\"req\":{req},\"bytes\":{bytes},\"seconds\":{}",
                        num(*seconds)
                    )
                }
                ServeEvent::ReplicaDown { replica } => {
                    format!("\"kind\":\"replica_down\",\"replica\":{replica}")
                }
                ServeEvent::ReplicaUp { replica } => {
                    format!("\"kind\":\"replica_up\",\"replica\":{replica}")
                }
                ServeEvent::Degraded { replica, slowdown, dram } => {
                    format!(
                        "\"kind\":\"degraded\",\"replica\":{replica},\"slowdown\":{},\
                         \"dram\":{dram}",
                        num(*slowdown)
                    )
                }
                ServeEvent::Retry { req, attempt, delay_s } => {
                    format!(
                        "\"kind\":\"retry\",\"req\":{req},\"attempt\":{attempt},\"delay_s\":{}",
                        num(*delay_s)
                    )
                }
                ServeEvent::Shed { req } => format!("\"kind\":\"shed\",\"req\":{req}"),
            };
            format!("{{\"type\":\"serve\",\"t_s\":{},{body}}}", num(*t_s))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_json_is_stable_and_typed() {
        let e = Event::search(3, SearchEvent::CacheHit { shard: 5 });
        assert_eq!(
            event_json(&e),
            "{\"type\":\"search\",\"tick\":3,\"kind\":\"cache_hit\",\"shard\":5}"
        );
        let e = Event::serve(0.5, ServeEvent::DecodeIter { batch: 4, resident_kv: 1024 });
        assert_eq!(
            event_json(&e),
            "{\"type\":\"serve\",\"t_s\":5e-1,\"kind\":\"decode_iter\",\"batch\":4,\"resident_kv\":1024}"
        );
    }

    #[test]
    fn identical_events_serialize_identically() {
        let a = Event::serve(1.0 / 3.0, ServeEvent::QueueDepthSample { depth: 2 });
        let b = Event::serve(1.0 / 3.0, ServeEvent::QueueDepthSample { depth: 2 });
        assert_eq!(a, b);
        assert_eq!(event_json(&a), event_json(&b));
    }

    #[test]
    fn fault_events_serialize_with_fixed_field_order() {
        let cases = [
            (
                ServeEvent::ReplicaDown { replica: 2 },
                "{\"type\":\"serve\",\"t_s\":5e-1,\"kind\":\"replica_down\",\"replica\":2}",
            ),
            (
                ServeEvent::ReplicaUp { replica: 2 },
                "{\"type\":\"serve\",\"t_s\":5e-1,\"kind\":\"replica_up\",\"replica\":2}",
            ),
            (
                ServeEvent::Degraded { replica: 1, slowdown: 2.0, dram: true },
                "{\"type\":\"serve\",\"t_s\":5e-1,\"kind\":\"degraded\",\"replica\":1,\
                 \"slowdown\":2e0,\"dram\":true}",
            ),
            (
                ServeEvent::Retry { req: 7, attempt: 1, delay_s: 0.05 },
                "{\"type\":\"serve\",\"t_s\":5e-1,\"kind\":\"retry\",\"req\":7,\"attempt\":1,\
                 \"delay_s\":5e-2}",
            ),
            (
                ServeEvent::Shed { req: 9 },
                "{\"type\":\"serve\",\"t_s\":5e-1,\"kind\":\"shed\",\"req\":9}",
            ),
        ];
        for (kind, expected) in cases {
            assert_eq!(event_json(&Event::serve(0.5, kind)), expected);
        }
    }

    #[test]
    fn non_finite_timestamps_become_null() {
        let e = Event::serve(f64::NAN, ServeEvent::Arrive { req: 0 });
        assert!(event_json(&e).contains("\"t_s\":null"));
    }

    #[test]
    fn quoting_escapes_json_specials() {
        assert_eq!(quoted("a\"b\\c\n"), "\"a\\\"b\\\\c\\u000a\"");
    }
}
