//! The metrics registry: monotonic counters, gauges, and fixed-bucket
//! histograms, snapshotted into a deterministic JSON summary
//! (`target/telemetry_summary.json` in the examples and CI).
//!
//! Names are free-form dotted strings (`"search.cache.hit"`,
//! `"serve.queue_depth"`); the registry stores them in sorted order so
//! the snapshot is byte-stable across runs of the same seed.

use crate::event::{num, quoted, Event, SearchEvent, ServeEvent};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// A fixed-bucket histogram: `bounds[i]` is the inclusive upper edge of
/// bucket `i`, with one extra overflow bucket at the end. Bounds are set
/// at creation and never change, so two runs observing the same samples
/// produce identical snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    sum: f64,
    total: u64,
}

impl Histogram {
    /// A histogram with the given inclusive upper bucket edges (must be
    /// sorted ascending) plus an implicit overflow bucket.
    pub fn with_bounds(bounds: &[f64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must be ascending");
        Histogram { bounds: bounds.to_vec(), counts: vec![0; bounds.len() + 1], sum: 0.0, total: 0 }
    }

    /// Power-of-two edges up to `max` — the default shape for counts
    /// (batch sizes, queue depths).
    pub fn pow2(max: u64) -> Self {
        let mut bounds = Vec::new();
        let mut edge = 1u64;
        while edge <= max {
            bounds.push(edge as f64);
            edge *= 2;
        }
        Histogram::with_bounds(&bounds)
    }

    /// Record one sample.
    pub fn observe(&mut self, x: f64) {
        let idx = self.bounds.iter().position(|&b| x <= b).unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += x;
        self.total += 1;
    }

    /// Number of samples observed.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean of observed samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// `(upper_edge, count)` per bucket; the final edge is `+inf`.
    pub fn buckets(&self) -> Vec<(f64, u64)> {
        self.bounds
            .iter()
            .copied()
            .chain(std::iter::once(f64::INFINITY))
            .zip(self.counts.iter().copied())
            .collect()
    }

    fn json(&self) -> String {
        let buckets: Vec<String> = self
            .buckets()
            .iter()
            .map(|(edge, count)| {
                let le = if edge.is_finite() { num(*edge) } else { "\"+inf\"".into() };
                format!("{{\"le\":{le},\"count\":{count}}}")
            })
            .collect();
        format!(
            "{{\"count\":{},\"mean\":{},\"buckets\":[{}]}}",
            self.total,
            num(self.mean()),
            buckets.join(",")
        )
    }
}

/// The registry: named counters, gauges, and histograms.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
    /// `Enqueue` timestamps awaiting their `Dequeue` — the pairing state
    /// behind the `serve.queue_wait_s` histogram.
    pending_enqueue: BTreeMap<u64, f64>,
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Add `by` to the named monotonic counter (created at 0).
    pub fn inc(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Set the named gauge to `value`.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Record `x` into the named histogram, creating it with `make` on
    /// first touch.
    pub fn observe_with(&mut self, name: &str, x: f64, make: impl FnOnce() -> Histogram) {
        self.histograms.entry(name.to_string()).or_insert_with(make).observe(x);
    }

    /// The named counter's value (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The named gauge, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The named histogram, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Fold one event into the registry. `from_events` is this in a loop;
    /// `MetricsSink` is this behind a mutex.
    pub fn accumulate(&mut self, event: &Event) {
        match event {
            Event::Search { kind, .. } => match kind {
                SearchEvent::Staged => self.inc("search.staged", 1),
                SearchEvent::ScreenedOut => self.inc("search.screened_out", 1),
                SearchEvent::CacheHit { shard } => {
                    self.inc("search.cache.hit", 1);
                    self.inc(&format!("search.cache.shard.{shard:03}.hit"), 1);
                }
                SearchEvent::CacheMiss { shard } => {
                    self.inc("search.cache.miss", 1);
                    self.inc(&format!("search.cache.shard.{shard:03}.miss"), 1);
                }
                SearchEvent::FlushBatch { size } => {
                    self.inc("search.flushes", 1);
                    self.observe_with("search.flush_batch", *size as f64, || Histogram::pow2(4096));
                }
                SearchEvent::FrontierInsert { admitted, .. } => {
                    self.inc("search.frontier.offered", 1);
                    if *admitted {
                        self.inc("search.frontier.admitted", 1);
                    }
                }
                SearchEvent::HypervolumeSample { .. } => self.inc("search.hv_samples", 1),
                SearchEvent::ChainStart { .. } => self.inc("search.chains", 1),
            },
            Event::Serve { t_s, kind } => match kind {
                ServeEvent::Arrive { .. } => self.inc("serve.arrivals", 1),
                ServeEvent::Admit { .. } => self.inc("serve.admissions", 1),
                ServeEvent::PrefillStart { context, .. } => {
                    self.inc("serve.prefills", 1);
                    self.inc("serve.prefill_tokens", *context as u64);
                }
                ServeEvent::PrefillEnd { .. } => {}
                ServeEvent::DecodeIter { batch, resident_kv } => {
                    self.inc("serve.iterations", 1);
                    self.inc("serve.tokens", *batch as u64);
                    self.observe_with("serve.batch", *batch as f64, || Histogram::pow2(4096));
                    let peak = self.gauge("serve.resident_kv_peak").unwrap_or(0.0);
                    if *resident_kv as f64 > peak {
                        self.set_gauge("serve.resident_kv_peak", *resident_kv as f64);
                    }
                }
                ServeEvent::Complete { .. } => self.inc("serve.completions", 1),
                ServeEvent::QueueDepthSample { depth } => {
                    self.observe_with("serve.queue_depth", *depth as f64, || Histogram::pow2(4096));
                }
                ServeEvent::PrefillChunk { tokens, .. } => {
                    self.inc("serve.prefill_chunks", 1);
                    self.observe_with("serve.chunk_tokens", *tokens as f64, || {
                        Histogram::pow2(1 << 20)
                    });
                }
                ServeEvent::Enqueue { req } => {
                    self.inc("serve.enqueued", 1);
                    self.pending_enqueue.insert(*req, *t_s);
                }
                ServeEvent::Dequeue { req } => {
                    self.inc("serve.dequeued", 1);
                    // The ROADMAP-named queueing-delay histogram: the
                    // exact Enqueue → Dequeue wait at simulated time.
                    if let Some(enqueued_at) = self.pending_enqueue.remove(req) {
                        self.observe_with("serve.queue_wait_s", t_s - enqueued_at, || {
                            Histogram::with_bounds(&[1e-4, 1e-3, 1e-2, 1e-1, 1.0])
                        });
                    }
                }
                ServeEvent::WaitingDepth { depth } => {
                    self.observe_with("serve.waiting_depth", *depth as f64, || {
                        Histogram::pow2(4096)
                    });
                }
                ServeEvent::Route { replica, .. } => {
                    self.inc("serve.routed", 1);
                    self.inc(&format!("serve.replica.{replica:02}.routed"), 1);
                }
                ServeEvent::KvTransfer { bytes, seconds, .. } => {
                    self.inc("serve.kv_transfers", 1);
                    self.inc("serve.kv_transfer_bytes", *bytes);
                    self.observe_with("serve.kv_transfer_s", *seconds, || {
                        Histogram::with_bounds(&[1e-4, 1e-3, 1e-2, 1e-1, 1.0])
                    });
                }
                ServeEvent::ReplicaDown { replica } => {
                    self.inc("serve.replica_downs", 1);
                    self.inc(&format!("serve.replica.{replica:02}.downs"), 1);
                }
                ServeEvent::ReplicaUp { .. } => self.inc("serve.replica_ups", 1),
                ServeEvent::Degraded { .. } => self.inc("serve.degraded", 1),
                ServeEvent::Retry { delay_s, .. } => {
                    self.inc("serve.retries", 1);
                    self.observe_with("serve.retry_delay_s", *delay_s, || {
                        Histogram::with_bounds(&[1e-4, 1e-3, 1e-2, 1e-1, 1.0])
                    });
                }
                ServeEvent::Shed { .. } => self.inc("serve.sheds", 1),
            },
        }
    }

    /// Build a registry from a recorded event stream and derive the
    /// headline ratio gauges (cache hit ratio, screen-reject rate, mean
    /// batch, tokens/step).
    pub fn from_events(events: &[Event]) -> Self {
        let mut metrics = Metrics::new();
        for event in events {
            metrics.accumulate(event);
        }
        metrics.derive_gauges();
        metrics
    }

    /// Recompute the derived ratio gauges from the raw counters.
    pub fn derive_gauges(&mut self) {
        let ratio = |num: u64, den: u64| if den == 0 { 0.0 } else { num as f64 / den as f64 };
        let hits = self.counter("search.cache.hit");
        let misses = self.counter("search.cache.miss");
        if hits + misses > 0 {
            self.set_gauge("search.cache.hit_ratio", ratio(hits, hits + misses));
        }
        let staged = self.counter("search.staged");
        let screened = self.counter("search.screened_out");
        if staged + screened > 0 {
            self.set_gauge("search.screen_reject_rate", ratio(screened, staged + screened));
        }
        if let Some(batch) = self.histogram("serve.batch") {
            self.set_gauge("serve.batch_mean", batch.mean());
        }
        let iters = self.counter("serve.iterations");
        if iters > 0 {
            self.set_gauge("serve.tokens_per_step", ratio(self.counter("serve.tokens"), iters));
        }
    }

    /// The snapshot as deterministic JSON: sorted names, fixed field
    /// order, shortest-round-trip floats.
    pub fn summary_json(&self) -> String {
        let counters: Vec<String> =
            self.counters.iter().map(|(name, v)| format!("{}:{v}", quoted(name))).collect();
        let gauges: Vec<String> =
            self.gauges.iter().map(|(name, v)| format!("{}:{}", quoted(name), num(*v))).collect();
        let histograms: Vec<String> = self
            .histograms
            .iter()
            .map(|(name, h)| format!("{}:{}", quoted(name), h.json()))
            .collect();
        format!(
            "{{\"counters\":{{{}}},\"gauges\":{{{}}},\"histograms\":{{{}}}}}",
            counters.join(","),
            gauges.join(","),
            histograms.join(",")
        )
    }
}

/// A sink that folds events straight into a `Metrics` registry — the
/// always-on companion to a trace sink via `FanoutSink`.
#[derive(Debug, Default)]
pub struct MetricsSink {
    metrics: Mutex<Metrics>,
}

impl MetricsSink {
    /// An empty metrics sink.
    pub fn new() -> Self {
        MetricsSink::default()
    }

    /// Snapshot the accumulated registry (derived gauges recomputed).
    pub fn snapshot(&self) -> Metrics {
        let mut metrics = self.metrics.lock().expect("telemetry sink poisoned").clone();
        metrics.derive_gauges();
        metrics
    }
}

impl crate::sink::TelemetrySink for MetricsSink {
    fn record(&self, event: Event) {
        self.metrics.lock().expect("telemetry sink poisoned").accumulate(&event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::with_bounds(&[1.0, 2.0, 4.0]);
        for x in [0.5, 1.0, 3.0, 100.0] {
            h.observe(x);
        }
        let buckets = h.buckets();
        assert_eq!(buckets.len(), 4);
        assert_eq!(buckets[0], (1.0, 2)); // 0.5 and the inclusive 1.0
        assert_eq!(buckets[2], (4.0, 1)); // 3.0
        assert_eq!(buckets[3].1, 1); // 100.0 overflows
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn from_events_derives_headline_gauges() {
        let events = vec![
            Event::search(1, SearchEvent::Staged),
            Event::search(1, SearchEvent::CacheMiss { shard: 0 }),
            Event::search(2, SearchEvent::Staged),
            Event::search(2, SearchEvent::CacheHit { shard: 3 }),
            Event::search(2, SearchEvent::ScreenedOut),
            Event::serve(0.1, ServeEvent::DecodeIter { batch: 4, resident_kv: 64 }),
            Event::serve(0.2, ServeEvent::DecodeIter { batch: 2, resident_kv: 32 }),
        ];
        let m = Metrics::from_events(&events);
        assert_eq!(m.counter("search.cache.shard.003.hit"), 1);
        assert_eq!(m.gauge("search.cache.hit_ratio"), Some(0.5));
        assert_eq!(m.gauge("search.screen_reject_rate"), Some(1.0 / 3.0));
        assert_eq!(m.gauge("serve.batch_mean"), Some(3.0));
        assert_eq!(m.gauge("serve.tokens_per_step"), Some(3.0));
        assert_eq!(m.gauge("serve.resident_kv_peak"), Some(64.0));
    }

    #[test]
    fn fault_events_feed_retry_and_shed_counters() {
        let events = vec![
            Event::serve(1.0, ServeEvent::ReplicaDown { replica: 1 }),
            Event::serve(1.0, ServeEvent::Retry { req: 3, attempt: 1, delay_s: 0.05 }),
            Event::serve(1.0, ServeEvent::Retry { req: 4, attempt: 1, delay_s: 0.05 }),
            Event::serve(1.0, ServeEvent::Shed { req: 5 }),
            Event::serve(1.2, ServeEvent::Degraded { replica: 0, slowdown: 2.0, dram: false }),
            Event::serve(2.0, ServeEvent::ReplicaUp { replica: 1 }),
        ];
        let m = Metrics::from_events(&events);
        assert_eq!(m.counter("serve.replica_downs"), 1);
        assert_eq!(m.counter("serve.replica.01.downs"), 1);
        assert_eq!(m.counter("serve.replica_ups"), 1);
        assert_eq!(m.counter("serve.degraded"), 1);
        assert_eq!(m.counter("serve.retries"), 2);
        assert_eq!(m.counter("serve.sheds"), 1);
        assert_eq!(m.histogram("serve.retry_delay_s").map(Histogram::count), Some(2));
    }

    #[test]
    fn summary_json_is_sorted_and_stable() {
        let mut m = Metrics::new();
        m.inc("zeta", 1);
        m.inc("alpha", 2);
        m.set_gauge("mid", 0.5);
        let json = m.summary_json();
        assert!(json.find("\"alpha\"").unwrap() < json.find("\"zeta\"").unwrap());
        assert_eq!(json, m.clone().summary_json());
        assert!(json.starts_with("{\"counters\":{"));
    }

    #[test]
    fn metrics_sink_accumulates_like_from_events() {
        use crate::sink::TelemetrySink;
        let events = vec![
            Event::search(1, SearchEvent::Staged),
            Event::serve(0.0, ServeEvent::Arrive { req: 0 }),
        ];
        let sink = MetricsSink::new();
        for e in &events {
            sink.record(e.clone());
        }
        assert_eq!(sink.snapshot(), Metrics::from_events(&events));
    }
}
