//! `fusemax-telemetry`: deterministic tracing, metrics, and Perfetto
//! timeline export for the FuseMax search and serving stack.
//!
//! The crate is deliberately zero-dependency and wall-clock-free: search
//! events are keyed by evaluation count and serve events by simulated
//! time, so an instrumented run replayed with the same seed emits a
//! byte-identical event stream — the stream is an artifact like any
//! other, golden-gated and diffable in CI.
//!
//! The three layers:
//!
//! - [`Event`] / [`SearchEvent`] / [`ServeEvent`] — the typed vocabulary,
//!   recorded through a [`Recorder`] into any [`TelemetrySink`]
//!   ([`VecSink`], [`RingSink`], [`JsonLinesSink`], [`FanoutSink`]).
//!   The default recorder is disabled: `emit` is a single branch and the
//!   event closure never runs.
//! - [`Metrics`] — monotonic counters, gauges, and fixed-bucket
//!   [`Histogram`]s (per-shard cache traffic, screen-reject rate, batch
//!   and queue-depth distributions), built from a stream with
//!   [`Metrics::from_events`] or accumulated live via [`MetricsSink`],
//!   and snapshotted as deterministic JSON with
//!   [`Metrics::summary_json`].
//! - [`serve_trace_json`] / [`fleet_trace_json`] / [`search_trace_json`]
//!   — Chrome-trace JSON for `chrome://tracing` /
//!   <https://ui.perfetto.dev> (fleet runs render one process per
//!   replica chip plus a router process with `Route`/`KvTransfer`
//!   spans), with [`validate_chrome_trace`] as the parser-free validity
//!   gate CI runs on every exported trace.
//! - [`folded_stack_text`] / [`roofline_json`] / [`roofline_csv`] /
//!   [`SearchBudgetAttribution`] — profile exports: inferno-format
//!   flamegraph stacks (gated by [`validate_folded_stacks`]), roofline
//!   tables, and per-strategy search-budget accounting, all pure
//!   functions of deterministic inputs.

#![warn(missing_docs)]

mod event;
mod metrics;
mod perfetto;
mod profile;
mod sink;

pub use event::{event_json, Event, SearchEvent, ServeEvent};
pub use metrics::{Histogram, Metrics, MetricsSink};
pub use perfetto::{
    fleet_trace_json, search_trace_json, serve_trace_json, validate_chrome_trace, ChromeTrace,
};
pub use profile::{
    folded_stack_text, roofline_csv, roofline_json, search_budget_json, validate_folded_stacks,
    RooflinePoint, SearchBudgetAttribution,
};
pub use sink::{FanoutSink, JsonLinesSink, Recorder, RingSink, TelemetrySink, VecSink};
