#![warn(missing_docs)]

//! Dense, named-rank tensors and fibertree views.
//!
//! This crate is the data substrate shared by the FuseMax reproduction: the
//! extended-Einsum evaluator, the attention kernels, and the spatial-array
//! simulator all operate on [`Tensor`] values.
//!
//! Terminology follows the paper (§II-A): a tensor's *rank* is a named
//! dimension, its *shape* is the set of valid coordinates per rank, and an
//! *N-tensor* has N ranks. The [`fiber`](Tensor::fiber) and
//! [`subview`](Tensor::subview) accessors expose the format-agnostic
//! fibertree decomposition: a fiber is the set of coordinates of one rank
//! with all higher (preceding) ranks fixed.
//!
//! # Example
//!
//! ```
//! use fusemax_tensor::{Shape, Tensor};
//!
//! // K is an E×M 2-tensor (embedding × key-sequence).
//! let shape = Shape::of(&[("E", 4), ("M", 6)]);
//! let k: Tensor<f64> = Tensor::from_fn(shape, |c| (c[0] * 10 + c[1]) as f64);
//! assert_eq!(k.get(&[2, 3]), 23.0);
//!
//! // The M fiber at e = 2 (fibertree view).
//! let fiber: Vec<f64> = k.fiber("M", &[("E", 2)]).unwrap().values().collect();
//! assert_eq!(fiber, vec![20.0, 21.0, 22.0, 23.0, 24.0, 25.0]);
//! ```

mod approx;
mod dense;
mod element;
mod error;
mod fiber;
mod random;
mod shape;

pub use approx::{assert_tensors_close, max_abs_diff, max_rel_diff};
pub use dense::{Tensor, TensorView};
pub use element::Element;
pub use error::ShapeError;
pub use fiber::Fiber;
pub use shape::{CoordIter, RankDim, Shape};
