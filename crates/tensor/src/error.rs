//! Error types for shape and rank mismatches.

use std::error::Error;
use std::fmt;

/// An error produced when tensor shapes, ranks, or coordinates disagree.
///
/// # Example
///
/// ```
/// use fusemax_tensor::{Shape, Tensor, ShapeError};
///
/// let t: Tensor<f64> = Tensor::zeros(Shape::of(&[("M", 2)]));
/// let err = t.try_get(&[5]).unwrap_err();
/// assert!(matches!(err, ShapeError::CoordOutOfBounds { .. }));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShapeError {
    /// A rank name was not found in the tensor's shape.
    UnknownRank {
        /// The requested rank name.
        rank: String,
        /// The ranks that exist on the tensor.
        available: Vec<String>,
    },
    /// A coordinate exceeded the extent of its rank.
    CoordOutOfBounds {
        /// The rank whose bound was violated.
        rank: String,
        /// The offending coordinate.
        coord: usize,
        /// The extent of that rank.
        extent: usize,
    },
    /// The number of coordinates did not match the number of ranks.
    CoordArity {
        /// Coordinates supplied.
        got: usize,
        /// Ranks expected.
        expected: usize,
    },
    /// Two shapes that had to agree did not.
    Mismatch {
        /// Human-readable description of the two shapes.
        detail: String,
    },
    /// The provided buffer length did not match the shape volume.
    DataLength {
        /// Elements supplied.
        got: usize,
        /// Elements required by the shape.
        expected: usize,
    },
    /// A duplicate rank name was supplied when building a shape.
    DuplicateRank {
        /// The repeated rank name.
        rank: String,
    },
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShapeError::UnknownRank { rank, available } => {
                write!(f, "unknown rank `{rank}` (available: {available:?})")
            }
            ShapeError::CoordOutOfBounds { rank, coord, extent } => {
                write!(f, "coordinate {coord} out of bounds for rank `{rank}` of extent {extent}")
            }
            ShapeError::CoordArity { got, expected } => {
                write!(f, "expected {expected} coordinates, got {got}")
            }
            ShapeError::Mismatch { detail } => write!(f, "shape mismatch: {detail}"),
            ShapeError::DataLength { got, expected } => {
                write!(f, "data length {got} does not match shape volume {expected}")
            }
            ShapeError::DuplicateRank { rank } => {
                write!(f, "duplicate rank name `{rank}` in shape")
            }
        }
    }
}

impl Error for ShapeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = ShapeError::UnknownRank { rank: "Q".into(), available: vec!["M".into()] };
        let s = e.to_string();
        assert!(s.contains("unknown rank"));
        assert!(s.contains('Q'));

        let e = ShapeError::CoordOutOfBounds { rank: "M".into(), coord: 9, extent: 4 };
        assert!(e.to_string().contains("out of bounds"));

        let e = ShapeError::DataLength { got: 3, expected: 6 };
        assert!(e.to_string().contains("does not match"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn Error> = Box::new(ShapeError::CoordArity { got: 1, expected: 2 });
        assert!(e.to_string().contains("coordinates"));
    }
}
