//! Scalar element trait implemented by `f32` and `f64`.

use std::fmt::{Debug, Display};
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A scalar type usable as a tensor element.
///
/// The trait is sealed in spirit (only `f32`/`f64` make sense for this
/// reproduction) but kept open so tests can instantiate both widths. All
/// operations required by the attention cascades — arithmetic, `exp`, `max`,
/// and the `-inf` identity used to initialize running maxima (Cascade 5,
/// Einsum 41) — are available through this trait.
///
/// # Example
///
/// ```
/// use fusemax_tensor::Element;
///
/// fn softmax_denominator<T: Element>(xs: &[T]) -> T {
///     let m = xs.iter().fold(T::neg_infinity(), |a, &b| a.max_of(b));
///     xs.iter().fold(T::ZERO, |a, &b| a + (b - m).exp())
/// }
/// assert!((softmax_denominator(&[0.0_f64, 0.0]) - 2.0).abs() < 1e-12);
/// ```
pub trait Element:
    Copy
    + PartialOrd
    + Debug
    + Display
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + Send
    + Sync
    + 'static
{
    /// Additive identity (also the reduction identity for `+`).
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;

    /// The reduction identity for `max` (negative infinity).
    fn neg_infinity() -> Self;
    /// Positive infinity, used by overflow tests.
    fn infinity() -> Self;
    /// Natural exponential.
    fn exp(self) -> Self;
    /// Binary maximum (the paper's `max(∪)` compute operator).
    fn max_of(self, other: Self) -> Self;
    /// Binary minimum.
    fn min_of(self, other: Self) -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Square root (used by the 1/√E scale in Einsum 22).
    fn sqrt(self) -> Self;
    /// Lossy conversion from `f64`.
    fn from_f64(v: f64) -> Self;
    /// Lossless widening to `f64`.
    fn to_f64(self) -> f64;
    /// `true` when neither infinite nor NaN.
    fn is_finite(self) -> bool;
    /// `true` when NaN.
    fn is_nan(self) -> bool;
}

macro_rules! impl_element {
    ($t:ty) => {
        impl Element for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;

            fn neg_infinity() -> Self {
                <$t>::NEG_INFINITY
            }
            fn infinity() -> Self {
                <$t>::INFINITY
            }
            fn exp(self) -> Self {
                self.exp()
            }
            fn max_of(self, other: Self) -> Self {
                self.max(other)
            }
            fn min_of(self, other: Self) -> Self {
                self.min(other)
            }
            fn abs(self) -> Self {
                self.abs()
            }
            fn sqrt(self) -> Self {
                self.sqrt()
            }
            fn from_f64(v: f64) -> Self {
                v as $t
            }
            fn to_f64(self) -> f64 {
                self as f64
            }
            fn is_finite(self) -> bool {
                self.is_finite()
            }
            fn is_nan(self) -> bool {
                self.is_nan()
            }
        }
    };
}

impl_element!(f32);
impl_element!(f64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identities() {
        assert_eq!(f64::ZERO, 0.0);
        assert_eq!(f32::ONE, 1.0);
        assert!(f64::neg_infinity() < -1e300);
        assert!(f32::infinity() > 1e30);
    }

    #[test]
    fn max_min_abs() {
        assert_eq!(2.0_f64.max_of(3.0), 3.0);
        assert_eq!(2.0_f64.min_of(3.0), 2.0);
        assert_eq!((-2.5_f32).abs(), 2.5);
    }

    #[test]
    fn conversions_round_trip() {
        let x = 1.5_f32;
        assert_eq!(f32::from_f64(x.to_f64()), x);
    }

    #[test]
    fn finiteness() {
        assert!(1.0_f64.is_finite());
        assert!(!f64::infinity().is_finite());
        assert!((f64::infinity() - f64::infinity()).is_nan());
    }

    #[test]
    fn exp_of_neg_infinity_is_zero() {
        // The 1-pass cascade relies on e^{-inf} = 0 for the very first
        // correction factor PRM (Cascade 5, Einsum 50 at m1 = 0).
        assert_eq!(f64::neg_infinity().exp(), 0.0);
        assert_eq!(f32::neg_infinity().exp(), 0.0);
    }
}
