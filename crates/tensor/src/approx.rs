//! Approximate-equality helpers for comparing kernel outputs.

use crate::element::Element;
use crate::Tensor;

/// The maximum absolute elementwise difference between two tensors.
///
/// # Panics
///
/// Panics if the shapes differ.
///
/// # Example
///
/// ```
/// use fusemax_tensor::{max_abs_diff, Shape, Tensor};
///
/// let s = Shape::of(&[("M", 2)]);
/// let a = Tensor::from_vec(s.clone(), vec![1.0_f64, 2.0]).unwrap();
/// let b = Tensor::from_vec(s, vec![1.0_f64, 2.5]).unwrap();
/// assert_eq!(max_abs_diff(&a, &b), 0.5);
/// ```
pub fn max_abs_diff<T: Element>(a: &Tensor<T>, b: &Tensor<T>) -> f64 {
    assert_eq!(a.shape(), b.shape(), "shape mismatch in max_abs_diff");
    a.data()
        .iter()
        .zip(b.data())
        .map(|(&x, &y)| (x.to_f64() - y.to_f64()).abs())
        .fold(0.0, f64::max)
}

/// The maximum relative elementwise difference, with denominators clamped to
/// at least 1 to avoid division blow-up near zero.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn max_rel_diff<T: Element>(a: &Tensor<T>, b: &Tensor<T>) -> f64 {
    assert_eq!(a.shape(), b.shape(), "shape mismatch in max_rel_diff");
    a.data()
        .iter()
        .zip(b.data())
        .map(|(&x, &y)| {
            let (x, y) = (x.to_f64(), y.to_f64());
            (x - y).abs() / x.abs().max(y.abs()).max(1.0)
        })
        .fold(0.0, f64::max)
}

/// Asserts two tensors agree elementwise within `tol` (absolute).
///
/// # Panics
///
/// Panics with a diagnostic naming the first offending coordinate when the
/// tensors disagree or their shapes differ.
pub fn assert_tensors_close<T: Element>(a: &Tensor<T>, b: &Tensor<T>, tol: f64) {
    assert_eq!(a.shape(), b.shape(), "shape mismatch");
    for (i, (&x, &y)) in a.data().iter().zip(b.data()).enumerate() {
        let d = (x.to_f64() - y.to_f64()).abs();
        // NaN differences must fail, so compare in the negated direction.
        if d > tol || d.is_nan() {
            let coords = a.shape().coords_of(i);
            panic!("tensors differ at {coords:?}: {x} vs {y} (|Δ| = {d:.3e} > {tol:.3e})");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::Shape;

    #[test]
    fn rel_diff_clamps_denominator() {
        let s = Shape::of(&[("M", 1)]);
        let a = Tensor::from_vec(s.clone(), vec![1e-12_f64]).unwrap();
        let b = Tensor::from_vec(s, vec![0.0_f64]).unwrap();
        assert!(max_rel_diff(&a, &b) < 1e-11);
    }

    #[test]
    fn close_tensors_pass() {
        let s = Shape::of(&[("M", 3)]);
        let a = Tensor::from_vec(s.clone(), vec![1.0_f64, 2.0, 3.0]).unwrap();
        let b = a.map(|x| x + 1e-12);
        assert_tensors_close(&a, &b, 1e-9);
    }

    #[test]
    #[should_panic(expected = "tensors differ")]
    fn distant_tensors_panic() {
        let s = Shape::of(&[("M", 2)]);
        let a = Tensor::from_vec(s.clone(), vec![1.0_f64, 2.0]).unwrap();
        let b = Tensor::from_vec(s, vec![1.0_f64, 9.0]).unwrap();
        assert_tensors_close(&a, &b, 1e-9);
    }

    #[test]
    #[should_panic(expected = "tensors differ")]
    fn nan_fails_closeness() {
        let s = Shape::of(&[("M", 1)]);
        let a = Tensor::from_vec(s.clone(), vec![f64::NAN]).unwrap();
        let b = Tensor::from_vec(s, vec![0.0_f64]).unwrap();
        assert_tensors_close(&a, &b, 1.0);
    }
}
