//! Random tensor generation for tests, examples, and workload synthesis.

use crate::element::Element;
use crate::shape::Shape;
use crate::Tensor;
use rand::Rng;

impl<T: Element> Tensor<T> {
    /// Creates a tensor with elements drawn uniformly from `[lo, hi)`.
    ///
    /// # Example
    ///
    /// ```
    /// use fusemax_tensor::{Shape, Tensor};
    /// use rand::{rngs::StdRng, SeedableRng};
    ///
    /// let mut rng = StdRng::seed_from_u64(7);
    /// let q: Tensor<f32> = Tensor::random_uniform(
    ///     Shape::of(&[("E", 8), ("P", 16)]), -1.0, 1.0, &mut rng);
    /// assert!(q.data().iter().all(|x| (-1.0..1.0).contains(x)));
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn random_uniform(shape: Shape, lo: f64, hi: f64, rng: &mut impl Rng) -> Self {
        assert!(lo < hi, "empty uniform range");
        Tensor::from_fn(shape, |_| T::from_f64(rng.gen_range(lo..hi)))
    }

    /// Creates a tensor with approximately standard-normal elements
    /// (Box–Muller transform), scaled by `std` and shifted by `mean`.
    pub fn random_normal(shape: Shape, mean: f64, std: f64, rng: &mut impl Rng) -> Self {
        Tensor::from_fn(shape, |_| {
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            T::from_f64(mean + std * z)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let t: Tensor<f64> =
            Tensor::random_uniform(Shape::of(&[("M", 64), ("P", 8)]), -2.0, 3.0, &mut rng);
        assert!(t.data().iter().all(|&x| (-2.0..3.0).contains(&x)));
    }

    #[test]
    fn uniform_is_deterministic_per_seed() {
        let shape = Shape::of(&[("M", 16)]);
        let a: Tensor<f64> =
            Tensor::random_uniform(shape.clone(), 0.0, 1.0, &mut StdRng::seed_from_u64(42));
        let b: Tensor<f64> =
            Tensor::random_uniform(shape, 0.0, 1.0, &mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
    }

    #[test]
    fn normal_has_plausible_moments() {
        let mut rng = StdRng::seed_from_u64(9);
        let t: Tensor<f64> = Tensor::random_normal(Shape::of(&[("M", 4096)]), 1.0, 2.0, &mut rng);
        let n = t.data().len() as f64;
        let mean = t.sum() / n;
        let var = t.data().iter().map(|&x| (x - mean) * (x - mean)).sum::<f64>() / n;
        assert!((mean - 1.0).abs() < 0.2, "mean {mean}");
        assert!((var - 4.0).abs() < 0.8, "var {var}");
    }

    #[test]
    #[should_panic(expected = "empty uniform range")]
    fn uniform_rejects_empty_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let _: Tensor<f64> = Tensor::random_uniform(Shape::of(&[("M", 1)]), 1.0, 1.0, &mut rng);
    }
}
