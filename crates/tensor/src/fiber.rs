//! Fibers: single-rank slices of a tensor (the fibertree abstraction).

use crate::element::Element;
use crate::error::ShapeError;
use crate::shape::Shape;
use crate::Tensor;

/// A fiber: the coordinates of one rank with all other ranks fixed (§II-A).
///
/// In the fibertree abstraction each coordinate of a fiber carries a
/// payload; for a leaf rank the payload is the data value, which is what
/// this dense implementation exposes.
///
/// # Example
///
/// ```
/// use fusemax_tensor::{Shape, Tensor};
///
/// let qk: Tensor<f64> = Tensor::from_fn(
///     Shape::of(&[("M", 4), ("P", 2)]),
///     |c| (c[0] * 2 + c[1]) as f64,
/// );
/// // The M fiber of QK at p = 1 — what the softmax reduces over.
/// let fiber = qk.fiber("M", &[("P", 1)]).unwrap();
/// assert_eq!(fiber.len(), 4);
/// let denominator: f64 = fiber.values().map(f64::exp).sum();
/// assert!(denominator > 0.0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Fiber<'a, T> {
    tensor: &'a Tensor<T>,
    base: usize,
    stride: usize,
    len: usize,
}

impl<'a, T: Element> Fiber<'a, T> {
    pub(crate) fn new(
        tensor: &'a Tensor<T>,
        rank: &str,
        fixed: &[(&str, usize)],
    ) -> Result<Self, ShapeError> {
        let shape: &Shape = tensor.shape();
        let pos = shape.position(rank).ok_or_else(|| ShapeError::UnknownRank {
            rank: rank.to_string(),
            available: shape.rank_names().iter().map(|s| s.to_string()).collect(),
        })?;
        let strides = shape.strides();
        let mut base = 0usize;
        for r in shape.ranks() {
            if r.name() == rank {
                continue;
            }
            let (_, coord) = fixed.iter().find(|(name, _)| *name == r.name()).ok_or_else(|| {
                ShapeError::UnknownRank {
                    rank: r.name().to_string(),
                    available: fixed.iter().map(|(n, _)| n.to_string()).collect(),
                }
            })?;
            if *coord >= r.extent() {
                return Err(ShapeError::CoordOutOfBounds {
                    rank: r.name().to_string(),
                    coord: *coord,
                    extent: r.extent(),
                });
            }
            base += coord * strides[shape.position(r.name()).unwrap()];
        }
        Ok(Self { tensor, base, stride: strides[pos], len: shape.ranks()[pos].extent() })
    }

    /// The number of coordinates in the fiber (the rank's extent).
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the fiber has no coordinates.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The payload at coordinate `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.len()`.
    pub fn payload(&self, c: usize) -> T {
        assert!(c < self.len, "fiber coordinate out of bounds");
        self.tensor.data()[self.base + c * self.stride]
    }

    /// Iterates over `(coordinate, payload)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, T)> + '_ {
        (0..self.len).map(move |c| (c, self.payload(c)))
    }

    /// Iterates over payloads only.
    pub fn values(&self) -> impl Iterator<Item = T> + '_ {
        (0..self.len).map(move |c| self.payload(c))
    }

    /// The maximum payload in the fiber (`-inf` when empty) — the per-fiber
    /// `GM` reduction of Einsum 29.
    pub fn max(&self) -> T {
        self.values().fold(T::neg_infinity(), |a, b| a.max_of(b))
    }

    /// The sum of payloads — the per-fiber `SD` reduction of Einsum 27.
    pub fn sum(&self) -> T {
        self.values().fold(T::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::Shape;

    fn sample() -> Tensor<f64> {
        Tensor::from_fn(Shape::of(&[("E", 2), ("M", 3), ("P", 4)]), |c| {
            (c[0] * 100 + c[1] * 10 + c[2]) as f64
        })
    }

    #[test]
    fn fiber_along_inner_rank() {
        let t = sample();
        let f = t.fiber("P", &[("E", 1), ("M", 2)]).unwrap();
        assert_eq!(f.len(), 4);
        let vals: Vec<f64> = f.values().collect();
        assert_eq!(vals, vec![120.0, 121.0, 122.0, 123.0]);
    }

    #[test]
    fn fiber_along_middle_rank() {
        let t = sample();
        let f = t.fiber("M", &[("E", 1), ("P", 3)]).unwrap();
        let vals: Vec<f64> = f.values().collect();
        assert_eq!(vals, vec![103.0, 113.0, 123.0]);
    }

    #[test]
    fn fiber_along_outer_rank() {
        let t = sample();
        let f = t.fiber("E", &[("M", 0), ("P", 0)]).unwrap();
        let vals: Vec<f64> = f.values().collect();
        assert_eq!(vals, vec![0.0, 100.0]);
    }

    #[test]
    fn fiber_reductions() {
        let t = sample();
        let f = t.fiber("M", &[("E", 0), ("P", 0)]).unwrap();
        assert_eq!(f.max(), 20.0);
        assert_eq!(f.sum(), 30.0);
    }

    #[test]
    fn iter_yields_coordinates() {
        let t = sample();
        let f = t.fiber("M", &[("E", 0), ("P", 1)]).unwrap();
        let pairs: Vec<(usize, f64)> = f.iter().collect();
        assert_eq!(pairs, vec![(0, 1.0), (1, 11.0), (2, 21.0)]);
        assert!(!f.is_empty());
    }

    #[test]
    fn unknown_rank_is_error() {
        let t = sample();
        assert!(t.fiber("Z", &[]).is_err());
    }

    #[test]
    fn missing_fixed_rank_is_error() {
        let t = sample();
        assert!(t.fiber("M", &[("E", 0)]).is_err());
    }

    #[test]
    fn out_of_bounds_fixed_coord_is_error() {
        let t = sample();
        assert!(t.fiber("M", &[("E", 9), ("P", 0)]).is_err());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn payload_bounds_checked() {
        let t = sample();
        let f = t.fiber("M", &[("E", 0), ("P", 0)]).unwrap();
        let _ = f.payload(99);
    }
}
