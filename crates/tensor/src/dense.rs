//! Dense row-major tensor storage.

use crate::element::Element;
use crate::error::ShapeError;
use crate::fiber::Fiber;
use crate::shape::Shape;
use std::fmt;

/// A dense tensor with named ranks, stored row-major.
///
/// # Example
///
/// ```
/// use fusemax_tensor::{Shape, Tensor};
///
/// let mut t: Tensor<f64> = Tensor::zeros(Shape::of(&[("M", 2), ("P", 3)]));
/// t.set(&[1, 2], 5.0);
/// assert_eq!(t.get(&[1, 2]), 5.0);
/// assert_eq!(t.sum(), 5.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor<T = f64> {
    shape: Shape,
    data: Vec<T>,
}

impl<T: Element> Tensor<T> {
    /// Creates a tensor filled with zeros.
    pub fn zeros(shape: Shape) -> Self {
        let volume = shape.volume();
        Self { shape, data: vec![T::ZERO; volume] }
    }

    /// Creates a tensor with every element set to `value`.
    pub fn full(shape: Shape, value: T) -> Self {
        let volume = shape.volume();
        Self { shape, data: vec![value; volume] }
    }

    /// Creates a tensor by evaluating `f` at every coordinate.
    pub fn from_fn(shape: Shape, mut f: impl FnMut(&[usize]) -> T) -> Self {
        let mut data = Vec::with_capacity(shape.volume());
        for coords in shape.coords_iter() {
            data.push(f(&coords));
        }
        Self { shape, data }
    }

    /// Creates a tensor from a row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError::DataLength`] when the buffer length does not
    /// match the shape volume.
    pub fn from_vec(shape: Shape, data: Vec<T>) -> Result<Self, ShapeError> {
        if data.len() != shape.volume() {
            return Err(ShapeError::DataLength { got: data.len(), expected: shape.volume() });
        }
        Ok(Self { shape, data })
    }

    /// Creates a 0-tensor (scalar).
    pub fn scalar(value: T) -> Self {
        Self { shape: Shape::scalar(), data: vec![value] }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The raw row-major data.
    pub fn data(&self) -> &[T] {
        &self.data
    }

    /// Mutable access to the raw row-major data.
    pub fn data_mut(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Reads the element at `coords` (in rank order).
    ///
    /// # Panics
    ///
    /// Panics when the coordinates are invalid; see [`Tensor::try_get`].
    pub fn get(&self, coords: &[usize]) -> T {
        self.try_get(coords).expect("invalid coordinates")
    }

    /// Reads the element at `coords`.
    ///
    /// # Errors
    ///
    /// Returns an error when arity or bounds are violated.
    pub fn try_get(&self, coords: &[usize]) -> Result<T, ShapeError> {
        Ok(self.data[self.shape.index_of(coords)?])
    }

    /// Writes the element at `coords`.
    ///
    /// # Panics
    ///
    /// Panics when the coordinates are invalid; see [`Tensor::try_set`].
    pub fn set(&mut self, coords: &[usize], value: T) {
        self.try_set(coords, value).expect("invalid coordinates");
    }

    /// Writes the element at `coords`.
    ///
    /// # Errors
    ///
    /// Returns an error when arity or bounds are violated.
    pub fn try_set(&mut self, coords: &[usize], value: T) -> Result<(), ShapeError> {
        let idx = self.shape.index_of(coords)?;
        self.data[idx] = value;
        Ok(())
    }

    /// The scalar value of a 0-tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not a scalar.
    pub fn item(&self) -> T {
        assert_eq!(self.shape.num_ranks(), 0, "item() requires a 0-tensor");
        self.data[0]
    }

    /// Applies `f` elementwise, producing a new tensor of the same shape.
    pub fn map(&self, mut f: impl FnMut(T) -> T) -> Self {
        Self { shape: self.shape.clone(), data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// Combines two same-shaped tensors elementwise.
    ///
    /// # Errors
    ///
    /// Returns an error when the shapes differ.
    pub fn zip_with(&self, other: &Self, mut f: impl FnMut(T, T) -> T) -> Result<Self, ShapeError> {
        if self.shape != other.shape {
            return Err(ShapeError::Mismatch {
                detail: format!("{} vs {}", self.shape, other.shape),
            });
        }
        let data = self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)).collect();
        Ok(Self { shape: self.shape.clone(), data })
    }

    /// Sum of all elements.
    pub fn sum(&self) -> T {
        self.data.iter().fold(T::ZERO, |acc, &x| acc + x)
    }

    /// Maximum of all elements (`-inf` for an empty tensor).
    pub fn max(&self) -> T {
        self.data.iter().fold(T::neg_infinity(), |acc, &x| acc.max_of(x))
    }

    /// `true` when every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// A [`Fiber`] along `rank`, with every *other* rank fixed by `fixed`.
    ///
    /// This is the fibertree accessor: the returned fiber enumerates
    /// `(coordinate, payload)` pairs for the chosen rank.
    ///
    /// # Errors
    ///
    /// Returns an error when `rank` is unknown, a fixed rank is unknown, or
    /// a fixed coordinate is out of bounds.
    pub fn fiber(&self, rank: &str, fixed: &[(&str, usize)]) -> Result<Fiber<'_, T>, ShapeError> {
        Fiber::new(self, rank, fixed)
    }

    /// A view with the first `leading.len()` ranks fixed to `leading`.
    ///
    /// For a tensor with shape `[A, B, C]`, `subview(&[a])` is the `B×C`
    /// slice at `A = a` — the payload of coordinate `a` in the top fiber of
    /// the fibertree.
    ///
    /// # Errors
    ///
    /// Returns an error when too many coordinates are given or any is out of
    /// bounds.
    pub fn subview(&self, leading: &[usize]) -> Result<TensorView<'_, T>, ShapeError> {
        TensorView::new(self, leading)
    }

    /// Returns a new tensor with ranks reordered to `order` (data permuted
    /// accordingly).
    ///
    /// # Errors
    ///
    /// Returns an error if `order` is not a permutation of the rank names.
    pub fn permuted(&self, order: &[&str]) -> Result<Self, ShapeError> {
        let new_shape = self.shape.permuted(order)?;
        let positions: Vec<usize> =
            order.iter().map(|name| self.shape.position(name).unwrap()).collect();
        let mut out = Tensor::zeros(new_shape.clone());
        let mut old_coords = vec![0usize; positions.len()];
        for new_coords in new_shape.coords_iter() {
            for (new_axis, &old_axis) in positions.iter().enumerate() {
                old_coords[old_axis] = new_coords[new_axis];
            }
            let v = self.get(&old_coords);
            out.set(&new_coords, v);
        }
        Ok(out)
    }
}

impl<T: Element> fmt::Display for Tensor<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} {{", self.shape)?;
        let limit = 8.min(self.data.len());
        for (i, v) in self.data.iter().take(limit).enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, " {v}")?;
        }
        if self.data.len() > limit {
            write!(f, ", …")?;
        }
        write!(f, " }}")
    }
}

/// An immutable view of a tensor with leading ranks fixed.
///
/// Produced by [`Tensor::subview`]; behaves like a lower-rank tensor over
/// the remaining ranks.
#[derive(Debug, Clone, Copy)]
pub struct TensorView<'a, T> {
    tensor: &'a Tensor<T>,
    offset: usize,
    fixed: usize,
}

impl<'a, T: Element> TensorView<'a, T> {
    fn new(tensor: &'a Tensor<T>, leading: &[usize]) -> Result<Self, ShapeError> {
        let ranks = tensor.shape().ranks();
        if leading.len() > ranks.len() {
            return Err(ShapeError::CoordArity { got: leading.len(), expected: ranks.len() });
        }
        let strides = tensor.shape().strides();
        let mut offset = 0usize;
        for (i, &c) in leading.iter().enumerate() {
            if c >= ranks[i].extent() {
                return Err(ShapeError::CoordOutOfBounds {
                    rank: ranks[i].name().to_string(),
                    coord: c,
                    extent: ranks[i].extent(),
                });
            }
            offset += c * strides[i];
        }
        Ok(Self { tensor, offset, fixed: leading.len() })
    }

    /// The shape of the remaining (un-fixed) ranks.
    pub fn shape(&self) -> Shape {
        let rest: Vec<(&str, usize)> = self
            .tensor
            .shape()
            .ranks()
            .iter()
            .skip(self.fixed)
            .map(|r| (r.name(), r.extent()))
            .collect();
        Shape::of(&rest)
    }

    /// Reads the element at `coords` over the remaining ranks.
    ///
    /// # Errors
    ///
    /// Returns an error when arity or bounds are violated.
    pub fn try_get(&self, coords: &[usize]) -> Result<T, ShapeError> {
        let idx = self.shape().index_of(coords)?;
        Ok(self.tensor.data()[self.offset + idx])
    }

    /// Reads the element at `coords` over the remaining ranks.
    ///
    /// # Panics
    ///
    /// Panics when the coordinates are invalid.
    pub fn get(&self, coords: &[usize]) -> T {
        self.try_get(coords).expect("invalid coordinates")
    }

    /// Copies this view into an owned tensor.
    pub fn to_tensor(&self) -> Tensor<T> {
        let shape = self.shape();
        Tensor::from_fn(shape, |c| self.get(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iota(shape: Shape) -> Tensor<f64> {
        let mut i = -1.0;
        Tensor::from_fn(shape, |_| {
            i += 1.0;
            i
        })
    }

    #[test]
    fn zeros_full_from_fn() {
        let s = Shape::of(&[("M", 2), ("P", 2)]);
        assert_eq!(Tensor::<f64>::zeros(s.clone()).sum(), 0.0);
        assert_eq!(Tensor::full(s.clone(), 2.0).sum(), 8.0);
        let t = iota(s);
        assert_eq!(t.get(&[0, 0]), 0.0);
        assert_eq!(t.get(&[1, 1]), 3.0);
    }

    #[test]
    fn from_vec_checks_length() {
        let s = Shape::of(&[("M", 2)]);
        assert!(Tensor::from_vec(s.clone(), vec![1.0_f64]).is_err());
        assert!(Tensor::from_vec(s, vec![1.0_f64, 2.0]).is_ok());
    }

    #[test]
    fn get_set_round_trip() {
        let s = Shape::of(&[("A", 3), ("B", 4)]);
        let mut t: Tensor<f64> = Tensor::zeros(s.clone());
        for coords in s.coords_iter() {
            t.set(&coords, (coords[0] * 10 + coords[1]) as f64);
        }
        for coords in s.coords_iter() {
            assert_eq!(t.get(&coords), (coords[0] * 10 + coords[1]) as f64);
        }
    }

    #[test]
    fn map_and_zip() {
        let s = Shape::of(&[("M", 2)]);
        let a = Tensor::from_vec(s.clone(), vec![1.0_f64, 2.0]).unwrap();
        let b = Tensor::from_vec(s.clone(), vec![10.0_f64, 20.0]).unwrap();
        assert_eq!(a.map(|x| x * 2.0).data(), &[2.0, 4.0]);
        assert_eq!(a.zip_with(&b, |x, y| x + y).unwrap().data(), &[11.0, 22.0]);
        let c: Tensor<f64> = Tensor::zeros(Shape::of(&[("M", 3)]));
        assert!(a.zip_with(&c, |x, _| x).is_err());
    }

    #[test]
    fn reductions() {
        let s = Shape::of(&[("M", 3)]);
        let t = Tensor::from_vec(s, vec![1.0_f64, -5.0, 3.0]).unwrap();
        assert_eq!(t.sum(), -1.0);
        assert_eq!(t.max(), 3.0);
        assert!(t.all_finite());
    }

    #[test]
    fn scalar_tensor() {
        let t = Tensor::scalar(7.0_f64);
        assert_eq!(t.item(), 7.0);
        assert_eq!(t.shape().num_ranks(), 0);
    }

    #[test]
    #[should_panic(expected = "0-tensor")]
    fn item_panics_on_non_scalar() {
        let t: Tensor<f64> = Tensor::zeros(Shape::of(&[("M", 2)]));
        let _ = t.item();
    }

    #[test]
    fn subview_matches_manual_slice() {
        let s = Shape::of(&[("A", 2), ("B", 3), ("C", 4)]);
        let t = iota(s);
        let v = t.subview(&[1]).unwrap();
        assert_eq!(v.shape().rank_names(), vec!["B", "C"]);
        for b in 0..3 {
            for c in 0..4 {
                assert_eq!(v.get(&[b, c]), t.get(&[1, b, c]));
            }
        }
        let owned = v.to_tensor();
        assert_eq!(owned.get(&[2, 3]), t.get(&[1, 2, 3]));
    }

    #[test]
    fn subview_errors() {
        let t: Tensor<f64> = Tensor::zeros(Shape::of(&[("A", 2)]));
        assert!(t.subview(&[0, 0]).is_err());
        assert!(t.subview(&[5]).is_err());
    }

    #[test]
    fn permuted_transposes_data() {
        let s = Shape::of(&[("E", 2), ("M", 3)]);
        let t = iota(s);
        let p = t.permuted(&["M", "E"]).unwrap();
        for e in 0..2 {
            for m in 0..3 {
                assert_eq!(p.get(&[m, e]), t.get(&[e, m]));
            }
        }
    }

    #[test]
    fn display_truncates() {
        let t: Tensor<f64> = Tensor::zeros(Shape::of(&[("M", 100)]));
        let s = t.to_string();
        assert!(s.contains('…'));
        assert!(!s.is_empty());
    }
}
