//! Shapes: ordered lists of named ranks with extents.

use crate::error::ShapeError;
use std::fmt;

/// One rank of a shape: a name (e.g. `"M"`) and an extent.
///
/// Following the paper's convention (§II-B), the same symbol is used for the
/// name of a rank and its shape: rank `M` has extent `M`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RankDim {
    name: String,
    extent: usize,
}

impl RankDim {
    /// Creates a rank with the given name and extent.
    pub fn new(name: impl Into<String>, extent: usize) -> Self {
        Self { name: name.into(), extent }
    }

    /// The rank's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The rank's extent (number of valid coordinates).
    pub fn extent(&self) -> usize {
        self.extent
    }
}

impl fmt::Display for RankDim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.name, self.extent)
    }
}

/// An ordered collection of named ranks; the type of a tensor's index space.
///
/// Rank order matters: it fixes the row-major layout and the fibertree
/// decomposition order (the first rank is the top of the fibertree).
///
/// # Example
///
/// ```
/// use fusemax_tensor::Shape;
///
/// let s = Shape::of(&[("E", 64), ("M", 1024)]);
/// assert_eq!(s.num_ranks(), 2);
/// assert_eq!(s.extent("M"), Some(1024));
/// assert_eq!(s.volume(), 64 * 1024);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Shape {
    ranks: Vec<RankDim>,
}

impl Shape {
    /// Creates a shape from `(name, extent)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if a rank name repeats; use [`Shape::try_of`] for a fallible
    /// variant.
    pub fn of(ranks: &[(&str, usize)]) -> Self {
        Self::try_of(ranks).expect("invalid shape")
    }

    /// Creates a shape from `(name, extent)` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError::DuplicateRank`] if a rank name repeats.
    pub fn try_of(ranks: &[(&str, usize)]) -> Result<Self, ShapeError> {
        let mut out = Vec::with_capacity(ranks.len());
        for (name, extent) in ranks {
            if out.iter().any(|r: &RankDim| r.name() == *name) {
                return Err(ShapeError::DuplicateRank { rank: (*name).to_string() });
            }
            out.push(RankDim::new(*name, *extent));
        }
        Ok(Self { ranks: out })
    }

    /// A scalar (0-tensor) shape.
    pub fn scalar() -> Self {
        Self { ranks: Vec::new() }
    }

    /// The number of ranks (`N` for an N-tensor).
    pub fn num_ranks(&self) -> usize {
        self.ranks.len()
    }

    /// The ranks in order.
    pub fn ranks(&self) -> &[RankDim] {
        &self.ranks
    }

    /// Rank names in order.
    pub fn rank_names(&self) -> Vec<&str> {
        self.ranks.iter().map(|r| r.name()).collect()
    }

    /// The extent of the named rank, if present.
    pub fn extent(&self, rank: &str) -> Option<usize> {
        self.ranks.iter().find(|r| r.name() == rank).map(|r| r.extent())
    }

    /// The position of the named rank, if present.
    pub fn position(&self, rank: &str) -> Option<usize> {
        self.ranks.iter().position(|r| r.name() == rank)
    }

    /// The total number of points in the index space (1 for a scalar).
    pub fn volume(&self) -> usize {
        self.ranks.iter().map(|r| r.extent()).product()
    }

    /// Row-major strides, in rank order.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.ranks.len()];
        for i in (0..self.ranks.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.ranks[i + 1].extent();
        }
        strides
    }

    /// Converts coordinates (in rank order) to a linear row-major index.
    ///
    /// # Errors
    ///
    /// Returns an error if the arity or any coordinate is out of bounds.
    pub fn index_of(&self, coords: &[usize]) -> Result<usize, ShapeError> {
        if coords.len() != self.ranks.len() {
            return Err(ShapeError::CoordArity { got: coords.len(), expected: self.ranks.len() });
        }
        let mut idx = 0usize;
        for (rank, &c) in self.ranks.iter().zip(coords) {
            if c >= rank.extent() {
                return Err(ShapeError::CoordOutOfBounds {
                    rank: rank.name().to_string(),
                    coord: c,
                    extent: rank.extent(),
                });
            }
            idx = idx * rank.extent() + c;
        }
        Ok(idx)
    }

    /// Converts a linear row-major index back to coordinates.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.volume()`.
    pub fn coords_of(&self, index: usize) -> Vec<usize> {
        assert!(index < self.volume().max(1), "linear index out of bounds");
        let mut rem = index;
        let mut coords = vec![0usize; self.ranks.len()];
        for (i, stride) in self.strides().iter().enumerate() {
            coords[i] = rem / stride;
            rem %= stride;
        }
        coords
    }

    /// Iterates over every coordinate tuple in row-major order.
    pub fn coords_iter(&self) -> CoordIter {
        CoordIter { shape: self.clone(), next: 0 }
    }

    /// Returns a new shape with the ranks permuted into `order`.
    ///
    /// # Errors
    ///
    /// Returns an error if `order` is not a permutation of the rank names.
    pub fn permuted(&self, order: &[&str]) -> Result<Shape, ShapeError> {
        if order.len() != self.ranks.len() {
            return Err(ShapeError::CoordArity { got: order.len(), expected: self.ranks.len() });
        }
        let mut ranks = Vec::with_capacity(order.len());
        for name in order {
            let rank = self.ranks.iter().find(|r| r.name() == *name).ok_or_else(|| {
                ShapeError::UnknownRank {
                    rank: (*name).to_string(),
                    available: self.rank_names().iter().map(|s| s.to_string()).collect(),
                }
            })?;
            ranks.push(rank.clone());
        }
        Shape::try_of(&ranks.iter().map(|r| (r.name(), r.extent())).collect::<Vec<_>>())
    }

    /// `true` when both shapes have identical rank names and extents in the
    /// same order.
    pub fn same_as(&self, other: &Shape) -> bool {
        self == other
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, r) in self.ranks.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{r}")?;
        }
        write!(f, "]")
    }
}

/// Iterator over all coordinate tuples of a [`Shape`] in row-major order.
///
/// Produced by [`Shape::coords_iter`].
#[derive(Debug, Clone)]
pub struct CoordIter {
    shape: Shape,
    next: usize,
}

impl Iterator for CoordIter {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.next >= self.shape.volume() {
            return None;
        }
        let coords = self.shape.coords_of(self.next);
        self.next += 1;
        Some(coords)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.shape.volume() - self.next;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for CoordIter {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let s = Shape::of(&[("E", 4), ("M", 6), ("P", 3)]);
        assert_eq!(s.num_ranks(), 3);
        assert_eq!(s.extent("M"), Some(6));
        assert_eq!(s.extent("Z"), None);
        assert_eq!(s.position("P"), Some(2));
        assert_eq!(s.volume(), 72);
        assert_eq!(s.rank_names(), vec!["E", "M", "P"]);
    }

    #[test]
    fn duplicate_rank_rejected() {
        assert!(matches!(
            Shape::try_of(&[("M", 2), ("M", 3)]),
            Err(ShapeError::DuplicateRank { .. })
        ));
    }

    #[test]
    fn strides_row_major() {
        let s = Shape::of(&[("A", 2), ("B", 3), ("C", 4)]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
    }

    #[test]
    fn index_coord_round_trip() {
        let s = Shape::of(&[("A", 2), ("B", 3), ("C", 4)]);
        for i in 0..s.volume() {
            let c = s.coords_of(i);
            assert_eq!(s.index_of(&c).unwrap(), i);
        }
    }

    #[test]
    fn index_errors() {
        let s = Shape::of(&[("A", 2), ("B", 3)]);
        assert!(matches!(s.index_of(&[0]), Err(ShapeError::CoordArity { .. })));
        assert!(matches!(s.index_of(&[0, 5]), Err(ShapeError::CoordOutOfBounds { .. })));
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::scalar();
        assert_eq!(s.volume(), 1);
        assert_eq!(s.index_of(&[]).unwrap(), 0);
        assert_eq!(s.coords_iter().count(), 1);
    }

    #[test]
    fn coords_iter_order() {
        let s = Shape::of(&[("A", 2), ("B", 2)]);
        let all: Vec<_> = s.coords_iter().collect();
        assert_eq!(all, vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]]);
        assert_eq!(s.coords_iter().len(), 4);
    }

    #[test]
    fn permuted() {
        let s = Shape::of(&[("E", 4), ("M", 6)]);
        let p = s.permuted(&["M", "E"]).unwrap();
        assert_eq!(p.rank_names(), vec!["M", "E"]);
        assert_eq!(p.extent("E"), Some(4));
        assert!(s.permuted(&["M", "Z"]).is_err());
        assert!(s.permuted(&["M"]).is_err());
    }

    #[test]
    fn display() {
        let s = Shape::of(&[("E", 4), ("M", 6)]);
        assert_eq!(s.to_string(), "[E:4, M:6]");
    }
}
