#![warn(missing_docs)]

//! Shared helpers for the figure-regeneration bench harnesses.
//!
//! Each bench target in `benches/` regenerates one table or figure from
//! the paper's evaluation (§VI) and prints the same rows/series the paper
//! reports; `cargo bench` therefore reproduces the entire evaluation. The
//! `criterion_*` targets are conventional wall-clock micro-benchmarks of
//! the library itself.

/// Prints a banner naming the experiment and its paper anchor.
///
/// # Example
///
/// ```
/// fusemax_bench::banner("Fig 8", "speedup of attention over the unfused baseline");
/// ```
pub fn banner(figure: &str, description: &str) {
    println!("{}", "=".repeat(72));
    println!("{figure}: {description}");
    println!("{}", "=".repeat(72));
}

/// Prints a paper-vs-measured footnote line.
pub fn paper_note(note: &str) {
    println!("\n[paper] {note}\n");
}

/// A [`fusemax_dse::Sweeper`] warm-started from the cache file named by
/// `FUSEMAX_DSE_CACHE`, when the variable is set and the file is readable
/// — cold otherwise. The CI `bench smoke` job restores the `figures`
/// job's evaluation-cache artifact this way, so benches share the figure
/// regeneration's evaluations instead of recomputing them.
pub fn sweeper_from_env(params: fusemax_model::ModelParams) -> fusemax_dse::Sweeper {
    let sweeper = fusemax_dse::Sweeper::new(params);
    if let Some(path) = std::env::var_os("FUSEMAX_DSE_CACHE") {
        // Bench binaries run with the package directory as CWD, so
        // resolve relative paths against the workspace root (two levels
        // up from crates/bench) when nothing exists at the literal path.
        let mut path = std::path::PathBuf::from(path);
        if path.is_relative() && !path.exists() {
            let from_root =
                std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").join(&path);
            if from_root.exists() {
                path = from_root;
            }
        }
        match sweeper.load_cache(&path) {
            Ok(n) => {
                println!("[cache] warm-started with {n} evaluations from {}", path.display())
            }
            Err(e) => println!("[cache] could not load {}: {e}", path.display()),
        }
    }
    sweeper
}

#[cfg(test)]
mod tests {
    #[test]
    fn helpers_do_not_panic() {
        super::banner("Fig X", "demo");
        super::paper_note("demo");
    }
}
