#![warn(missing_docs)]

//! Shared helpers for the figure-regeneration bench harnesses.
//!
//! Each bench target in `benches/` regenerates one table or figure from
//! the paper's evaluation (§VI) and prints the same rows/series the paper
//! reports; `cargo bench` therefore reproduces the entire evaluation. The
//! `criterion_*` targets are conventional wall-clock micro-benchmarks of
//! the library itself.

/// Prints a banner naming the experiment and its paper anchor.
///
/// # Example
///
/// ```
/// fusemax_bench::banner("Fig 8", "speedup of attention over the unfused baseline");
/// ```
pub fn banner(figure: &str, description: &str) {
    println!("{}", "=".repeat(72));
    println!("{figure}: {description}");
    println!("{}", "=".repeat(72));
}

/// Prints a paper-vs-measured footnote line.
pub fn paper_note(note: &str) {
    println!("\n[paper] {note}\n");
}

#[cfg(test)]
mod tests {
    #[test]
    fn helpers_do_not_panic() {
        super::banner("Fig X", "demo");
        super::paper_note("demo");
    }
}
