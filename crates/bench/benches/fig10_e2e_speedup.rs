//! Regenerates Fig 10: end-to-end transformer inference speedup.

use fusemax_eval::fig8_9::{figure, Metric, Scope};
use fusemax_model::ModelParams;

fn main() {
    fusemax_bench::banner("Fig 10", "speedup of end-to-end inference over the unfused baseline");
    for panel in figure(Scope::EndToEnd, Metric::Speedup, &ModelParams::default()) {
        print!("{}", panel.render(2));
        println!();
    }
    fusemax_bench::paper_note(
        "paper averages: 7.6x over unfused and 5.3x over FLAT, rising with L as \
         attention dominates (10x/7.5x at 1M tokens).",
    );
}
