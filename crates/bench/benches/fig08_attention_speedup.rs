//! Regenerates Fig 8: attention speedup over the unfused baseline.

use fusemax_eval::fig8_9::{figure, Metric, Scope};
use fusemax_model::ModelParams;

fn main() {
    fusemax_bench::banner("Fig 8", "speedup of attention over the unfused baseline");
    for panel in figure(Scope::Attention, Metric::Speedup, &ModelParams::default()) {
        print!("{}", panel.render(2));
        println!();
    }
    fusemax_bench::paper_note(
        "paper averages: FuseMax 10x over unfused, 6.7x over FLAT; lower on XLM \
         because the baselines utilize the 2D array better at E=128.",
    );
}
