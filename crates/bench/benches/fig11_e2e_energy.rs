//! Regenerates Fig 11: end-to-end inference energy.

use fusemax_eval::fig8_9::{figure, Metric, Scope};
use fusemax_model::ModelParams;

fn main() {
    fusemax_bench::banner("Fig 11", "energy of end-to-end inference relative to unfused");
    for panel in figure(Scope::EndToEnd, Metric::EnergyUse, &ModelParams::default()) {
        print!("{}", panel.render(2));
        println!();
    }
    fusemax_bench::paper_note(
        "paper averages: FuseMax uses 82% of the unfused baseline's energy and 83% \
         of FLAT's end to end; the reduction grows with sequence length.",
    );
}
