//! Regenerates Fig 12: area-vs-latency Pareto curves at 256K tokens.

use fusemax_eval::fig12::{fig12, render};
use fusemax_model::ModelParams;

fn main() {
    fusemax_bench::banner("Fig 12", "Pareto-optimal area/latency family at sequence length 256K");
    print!("{}", render(&fig12(&ModelParams::default())));
    fusemax_bench::paper_note(
        "a straight line of slope ~-1 in log-log space per model (compute bound at \
         every size), spanning ~0.1-10 cm^2 and ~10^2-10^5 seconds.",
    );
}
