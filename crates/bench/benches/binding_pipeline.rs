//! Fig 4/5 companion: measured utilization of the serialized vs pipelined
//! bindings on the discrete-event spatial simulator (toy scale), with the
//! analytical model's +Architecture/+Binding predictions alongside.

use fusemax_model::{attention_report, ConfigKind, ModelParams};
use fusemax_spatial::interleave::{run_streams, InterleaveMode, Stream};
use fusemax_spatial::{simulate, Binding, SpatialConfig};
use fusemax_tensor::{Shape, Tensor};
use fusemax_workloads::TransformerConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    fusemax_bench::banner("Binding", "serialized vs pipelined binding (simulator + model)");
    let mut rng = StdRng::seed_from_u64(1);
    let (e, f, p) = (8usize, 8usize, 8usize);
    println!("simulated toy 4x4 array (E=F=8):");
    println!(
        "{:<8} {:>10} {:>10} {:>8} {:>8} {:>8}",
        "M", "serial", "pipelined", "speedup", "u2D", "u1D"
    );
    for m in [16usize, 64, 256, 1024] {
        let q =
            Tensor::<f64>::random_uniform(Shape::of(&[("E", e), ("P", p)]), -1.0, 1.0, &mut rng);
        let k =
            Tensor::<f64>::random_uniform(Shape::of(&[("E", e), ("M", m)]), -1.0, 1.0, &mut rng);
        let v =
            Tensor::<f64>::random_uniform(Shape::of(&[("F", f), ("M", m)]), -1.0, 1.0, &mut rng);
        let cfg = SpatialConfig::toy(4, 4);
        let s = simulate(&q, &k, &v, &cfg, Binding::Serialized).expect("sim");
        let pl = simulate(&q, &k, &v, &cfg, Binding::Pipelined).expect("sim");
        println!(
            "{:<8} {:>10} {:>10} {:>7.2}x {:>8.2} {:>8.2}",
            m,
            s.cycles,
            pl.cycles,
            s.cycles as f64 / pl.cycles as f64,
            pl.util_2d(),
            pl.util_1d()
        );
    }

    println!("\nanalytical model (cloud scale, BERT):");
    let params = ModelParams::default();
    let bert = TransformerConfig::bert();
    for &l in &[1usize << 14, 1 << 18] {
        let a = attention_report(ConfigKind::FuseMaxArch, &bert, l, None, &params);
        let b = attention_report(ConfigKind::FuseMaxBinding, &bert, l, None, &params);
        println!(
            "  L={:<8} +Architecture util2D={:.2}  +Binding util2D={:.2}  binding speedup {:.2}x",
            l,
            a.util_2d(),
            b.util_2d(),
            a.cycles / b.cycles
        );
    }
    // Fig 5's cycle-level mechanism: two weight-stationary streams share
    // the array, one stream's fill chasing the other's drain.
    println!("\ncycle-accurate systolic interleave (Fig 5, 8x8 array, T=8 per stream):");
    let mk = |seed: u64| {
        let mut r = StdRng::seed_from_u64(seed);
        let w = Tensor::<f64>::random_uniform(Shape::of(&[("I", 8), ("J", 8)]), -1.0, 1.0, &mut r);
        let x = Tensor::<f64>::random_uniform(Shape::of(&[("I", 8), ("T", 8)]), -1.0, 1.0, &mut r);
        Stream::new(&w, &x).expect("stream")
    };
    let (a, b) = (mk(100), mk(101));
    for mode in [InterleaveMode::Serial, InterleaveMode::Interleaved] {
        let r = run_streams(&a, &b, 8, 8, mode).expect("interleave sim");
        println!(
            "  {:<12} {:>4} cycles, PE utilization {:.2}",
            mode.to_string(),
            r.cycles,
            r.utilization
        );
    }
    fusemax_bench::paper_note(
        "the pipelined/interleaved binding alone recovers ~3x over the serialized \
         one and pushes both arrays to ~full utilization (Fig 6's +Binding bars); \
         at cycle level, interleaving hides one full fill/drain skew per tile pair.",
    );
}
