//! Design-space sweep throughput: serial vs. rayon-parallel evaluation of
//! the full `ARRAY_DIMS × 4 kinds × 4 models × SEQ_LENGTHS` space
//! (576 points), plus cache-served re-sweeps — and the frontier JSON
//! emitted for the `BENCH_*.json` trajectory files.

use criterion::Criterion;
use fusemax_dse::{frontier_json, DesignSpace, Sweeper, ARRAY_DIMS};
use fusemax_model::{ConfigKind, ModelParams};
use fusemax_workloads::{TransformerConfig, SEQ_LENGTHS};
use std::hint::black_box;
use std::time::Duration;

fn full_space() -> DesignSpace {
    DesignSpace::new()
        .with_array_dims(ARRAY_DIMS)
        .with_kinds([
            ConfigKind::Unfused,
            ConfigKind::Flat,
            ConfigKind::FuseMaxArch,
            ConfigKind::FuseMaxBinding,
        ])
        .with_workloads(TransformerConfig::all())
        .with_seq_lens(SEQ_LENGTHS)
}

fn bench_sweep_modes(c: &mut Criterion) {
    let space = full_space();
    let mut group = c.benchmark_group(format!("dse_sweep_{}pts", space.len()));
    group.measurement_time(Duration::from_secs(3)).sample_size(20);
    // Fresh sweeper per iteration: every point is really evaluated.
    group.bench_function("serial", |b| {
        b.iter(|| {
            let sweeper = Sweeper::new(ModelParams::default()).with_parallelism(false);
            black_box(sweeper.sweep(&space))
        })
    });
    group.bench_function("parallel", |b| {
        b.iter(|| {
            let sweeper = Sweeper::new(ModelParams::default()).with_parallelism(true);
            black_box(sweeper.sweep(&space))
        })
    });
    group.bench_function("pruned", |b| {
        b.iter(|| {
            let sweeper = Sweeper::new(ModelParams::default());
            black_box(sweeper.sweep_pruned(&space))
        })
    });
    // Warm cache: the figure-regeneration path after the first sweep.
    // Warm-starts from FUSEMAX_DSE_CACHE when CI restored the figures
    // job's evaluation-cache artifact.
    let warm = fusemax_bench::sweeper_from_env(ModelParams::default());
    let _ = warm.sweep(&space);
    group.bench_function("cached_resweep", |b| b.iter(|| black_box(warm.sweep(&space))));
    group.finish();
}

fn main() {
    fusemax_bench::banner(
        "DSE sweep",
        "serial vs parallel design-space throughput + frontier export",
    );

    // Headline throughput comparison, printed in points/sec for the bench
    // trajectory.
    let space = full_space();
    let serial_outcome = Sweeper::new(ModelParams::default()).with_parallelism(false).sweep(&space);
    let parallel_outcome =
        Sweeper::new(ModelParams::default()).with_parallelism(true).sweep(&space);
    let pruned_outcome = Sweeper::new(ModelParams::default()).sweep_pruned(&space);
    println!(
        "space: {} points | serial {:.0} pts/s | parallel {:.0} pts/s ({:.1}x, {} threads) | \
         pruned search evaluates {} ({} skipped)",
        space.len(),
        serial_outcome.stats.points_per_sec(),
        parallel_outcome.stats.points_per_sec(),
        parallel_outcome.stats.points_per_sec() / serial_outcome.stats.points_per_sec(),
        rayon::current_num_threads(),
        pruned_outcome.stats.evaluated,
        pruned_outcome.stats.pruned,
    );
    println!(
        "frontier: {} Pareto-optimal designs across {} (model, seq_len) groups",
        parallel_outcome.frontier_points().len(),
        parallel_outcome.frontiers.len(),
    );

    // Emit the frontier JSON consumed by the BENCH_*.json trajectories.
    // `cargo bench` runs with the package dir as CWD, so resolve the
    // workspace target dir explicitly.
    let json = frontier_json(&parallel_outcome);
    let target = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target");
    let path = target.join("dse_frontier.json");
    match std::fs::create_dir_all(&target).and_then(|_| std::fs::write(&path, &json)) {
        Ok(()) => println!("frontier JSON ({} bytes) -> {}", json.len(), path.display()),
        Err(err) => println!("frontier JSON not written ({err}); {} bytes generated", json.len()),
    }

    let mut criterion = Criterion::default();
    bench_sweep_modes(&mut criterion);

    fusemax_bench::paper_note(
        "the engine generalizes Fig 12: the paper sweeps 6 hand-picked FuseMax arrays at 256K; \
         this sweeps 576 designs over four configurations, four models, and six lengths, \
         and prunes provably-dominated candidates before evaluation.",
    );
}
