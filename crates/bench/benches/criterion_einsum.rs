//! Criterion micro-benchmarks of the extended-Einsum layer: parsing,
//! pass analysis, and cascade evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use fusemax_core::cascades::attention;
use fusemax_core::passes::analyze_passes;
use fusemax_einsum::{Cascade, Evaluator};
use fusemax_tensor::{Shape, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;

fn bench_parse(c: &mut Criterion) {
    let text = attention::one_pass().to_string();
    c.bench_function("parse_one_pass_cascade", |b| {
        b.iter(|| black_box(Cascade::parse(&text).unwrap()))
    });
}

fn bench_analysis(c: &mut Criterion) {
    let cascades = [attention::three_pass(), attention::two_pass(), attention::one_pass()];
    c.bench_function("pass_analysis_all_attention_cascades", |b| {
        b.iter(|| {
            for cascade in &cascades {
                black_box(analyze_passes(cascade, "M").unwrap());
            }
        })
    });
}

fn bench_evaluate(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(23);
    let (e, f, m, p) = (16usize, 16usize, 64usize, 16usize);
    let q = Tensor::<f64>::random_uniform(Shape::of(&[("E", e), ("P", p)]), -1.0, 1.0, &mut rng);
    let k = Tensor::<f64>::random_uniform(Shape::of(&[("E", e), ("M", m)]), -1.0, 1.0, &mut rng);
    let v = Tensor::<f64>::random_uniform(Shape::of(&[("F", f), ("M", m)]), -1.0, 1.0, &mut rng);
    let cascade = attention::one_pass();
    let evaluator = Evaluator::new();
    let mut group = c.benchmark_group("einsum_evaluator");
    group.measurement_time(Duration::from_secs(4)).sample_size(20);
    group.bench_function("one_pass_E16_M64_P16", |b| {
        b.iter(|| {
            black_box(
                evaluator
                    .evaluate(
                        &cascade,
                        &[("Q", q.clone()), ("K", k.clone()), ("V", v.clone())],
                        &[("M0", 8)],
                    )
                    .unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_parse, bench_analysis, bench_evaluate);
criterion_main!(benches);
