//! Regenerates Fig 1b: proportion of compute by layer type vs length.

use fusemax_eval::fig1b::fig1b;
use fusemax_workloads::TransformerConfig;

fn main() {
    fusemax_bench::banner("Fig 1b", "proportion of required compute (attention/linear/other)");
    for cfg in TransformerConfig::all() {
        print!("{}", fig1b(&cfg).render(3));
        println!();
    }
    fusemax_bench::paper_note(
        "attention's share grows with L, crossing the linear layers between 1K \
         and 16K and dominating (>90%) at 1M tokens.",
    );
}
