//! The Section VI headline numbers, averaged over all models and lengths.

use fusemax_eval::summary::{headline, serving_headline};
use fusemax_model::ModelParams;

fn main() {
    fusemax_bench::banner("Headline", "average speedups/energy across 4 models x 6 lengths");
    println!("{}", headline(&ModelParams::default()));
    println!("{}", serving_headline(&ModelParams::default()));
    fusemax_bench::paper_note(
        "paper: attention 6.7x vs FLAT (79% energy), 10x vs unfused (77%); \
         end-to-end 5.3x vs FLAT (83%), 7.6x vs unfused (82%). See EXPERIMENTS.md \
         for the measured-vs-paper discussion.",
    );
}
