//! Regenerates Fig 6: 1D (a) and 2D (b) PE-array utilization for the five
//! configurations across models and sequence lengths.

use fusemax_eval::fig6::{fig6, Array};
use fusemax_model::ModelParams;

fn main() {
    let params = ModelParams::default();
    fusemax_bench::banner("Fig 6a", "1D PE array utilization");
    for panel in fig6(Array::OneD, &params) {
        print!("{}", panel.render(2));
        println!();
    }
    fusemax_bench::banner("Fig 6b", "2D PE array utilization");
    for panel in fig6(Array::TwoD, &params) {
        print!("{}", panel.render(2));
        println!();
    }
    fusemax_bench::paper_note(
        "FLAT saturates the 1D array until its memory cliff at >=256K; +Cascade is \
         length-independent; +Binding holds ~100% on both arrays at long L \
         (slightly lower at 1K from pipeline warm-up).",
    );
}
