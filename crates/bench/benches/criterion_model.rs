//! Criterion micro-benchmarks of the analytical model and the spatial
//! simulator: cost of regenerating the full evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use fusemax_eval::summary::headline;
use fusemax_model::{attention_report, ConfigKind, ModelParams};
use fusemax_spatial::{simulate, Binding, SpatialConfig};
use fusemax_tensor::{Shape, Tensor};
use fusemax_workloads::{TransformerConfig, SEQ_LENGTHS};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_full_sweep(c: &mut Criterion) {
    let params = ModelParams::default();
    c.bench_function("model_full_sweep_5cfg_4models_6lengths", |b| {
        b.iter(|| {
            for cfg in TransformerConfig::all() {
                for &l in &SEQ_LENGTHS {
                    for kind in ConfigKind::all() {
                        black_box(attention_report(kind, &cfg, l, None, &params));
                    }
                }
            }
        })
    });
}

fn bench_headline(c: &mut Criterion) {
    let params = ModelParams::default();
    c.bench_function("headline_summary", |b| b.iter(|| black_box(headline(&params))));
}

fn bench_spatial_sim(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(29);
    let q = Tensor::<f64>::random_uniform(Shape::of(&[("E", 8), ("P", 8)]), -1.0, 1.0, &mut rng);
    let k = Tensor::<f64>::random_uniform(Shape::of(&[("E", 8), ("M", 256)]), -1.0, 1.0, &mut rng);
    let v = Tensor::<f64>::random_uniform(Shape::of(&[("F", 8), ("M", 256)]), -1.0, 1.0, &mut rng);
    let cfg = SpatialConfig::toy(4, 4);
    c.bench_function("spatial_sim_pipelined_M256", |b| {
        b.iter(|| black_box(simulate(&q, &k, &v, &cfg, Binding::Pipelined).unwrap()))
    });
}

criterion_group!(benches, bench_full_sweep, bench_headline, bench_spatial_sim);
criterion_main!(benches);
