//! Serving-simulator throughput: trace generation, single-design
//! simulation at several chip sizes, and the full SLA-aware re-ranking of
//! the Fig 12 family — the serving counterpart of the DSE benches.

use criterion::{BenchmarkId, Criterion};
use fusemax_dse::DesignSpace;
use fusemax_model::{ConfigKind, ModelParams};
use fusemax_serve::{Arrivals, LengthMix, ServeObjective, ServeSim, Sla, Trace, TrafficSpec};
use fusemax_workloads::TransformerConfig;
use std::hint::black_box;
use std::time::Duration;

fn trace(requests: usize) -> Trace {
    TrafficSpec {
        arrivals: Arrivals::Poisson { rate_per_s: 150.0 },
        prompt_mix: LengthMix::new([(512, 3.0), (4096, 1.0)]),
        output_mix: LengthMix::uniform([8, 32]),
        requests,
    }
    .generate(7)
}

fn bench_trace_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_trace_gen");
    group.measurement_time(Duration::from_secs(2)).sample_size(20);
    for requests in [100usize, 1000] {
        group.bench_function(BenchmarkId::from_parameter(requests), |b| {
            b.iter(|| black_box(trace(requests)))
        });
    }
    group.finish();
}

fn bench_simulation(c: &mut Criterion) {
    let t = trace(200);
    let bert = TransformerConfig::bert();
    let params = ModelParams::default();
    let mut group = c.benchmark_group("serve_sim_200req");
    group.measurement_time(Duration::from_secs(3)).sample_size(15);
    for dim in [64usize, 256] {
        let space = DesignSpace::new().with_array_dims([dim]).with_workloads([bert.clone()]);
        let point = space.points().remove(0);
        let sim = ServeSim::for_point(&point, &params);
        group.bench_function(BenchmarkId::new("binding", format!("{dim}x{dim}")), |b| {
            b.iter(|| black_box(sim.run(&t)))
        });
    }
    let flat = ServeSim::builder(
        ConfigKind::Flat,
        ConfigKind::Flat.default_arch(),
        bert.clone(),
        params.clone(),
    )
    .build();
    group.bench_function(BenchmarkId::new("flat", "256x256"), |b| {
        b.iter(|| black_box(flat.run(&t)))
    });
    group.finish();
}

fn bench_objective_ranking(c: &mut Criterion) {
    let params = ModelParams::default();
    let space = DesignSpace::new().with_workloads([TransformerConfig::bert()]);
    let sweeper = fusemax_bench::sweeper_from_env(params.clone());
    let outcome = sweeper.sweep(&space);
    let objective = ServeObjective::new(trace(60), Sla::p99_ttft(0.25));
    let mut group = c.benchmark_group("serve_rank_fig12");
    group.measurement_time(Duration::from_secs(3)).sample_size(10);
    group.bench_function("rank_6_designs", |b| {
        b.iter(|| black_box(objective.rank(&outcome.evaluations[..6], &params)))
    });
    group.finish();

    // Headline lines for the bench log.
    let ranked = objective.rank(&outcome.evaluations[..6], &params);
    let (best, score) = &ranked[0];
    println!(
        "[headline] serving winner: {} ({:.1} req/s, p99 TTFT {:.3}s, SLA {})",
        best.point.arch.name,
        score.report.goodput_rps,
        score.report.ttft.p99,
        if score.meets_sla { "met" } else { "missed" },
    );
}

fn all(c: &mut Criterion) {
    fusemax_bench::banner("serve", "traffic-driven serving simulator throughput");
    bench_trace_generation(c);
    bench_simulation(c);
    bench_objective_ranking(c);
}

criterion::criterion_group!(benches, all);
criterion::criterion_main!(benches);
