//! Parallel-evaluation throughput and parity: the ISSUE-5 hot path.
//!
//! Three comparisons, each timed serial-vs-parallel **and** gated on
//! correctness parity (identical result hashes — the bench aborts on any
//! mismatch, which is what the CI smoke step relies on):
//!
//! 1. genetic generations evaluated one point at a time (serial sweeper)
//!    vs as multi-point batches on all cores;
//! 2. annealing chains run one after another vs on parallel workers
//!    (pre-split RNG streams, so the outcomes are bit-identical);
//! 3. serve replays paying a fresh `ServiceTimeTable` per run (cold) vs
//!    replaying through one prebuilt table (warm), plus serial vs
//!    parallel `ServeObjective` ranking.
//!
//! Writes `target/bench_summary.json` (workspace root) with the measured
//! times and parity verdicts — the first `BENCH_*` trajectory artifact.

use criterion::Criterion;
use fusemax_dse::search::{
    GeneticSearch, SearchBudget, SearchOutcome, SearchStrategy, SimulatedAnnealing,
};
use fusemax_dse::{DesignSpace, Objectives, Sweeper};
use fusemax_model::{ConfigKind, ModelParams};
use fusemax_serve::{
    Arrivals, FaultSpec, Fleet, FleetSpec, LengthMix, ServeObjective, ServeSim, Sla, Trace,
    TrafficSpec,
};
use fusemax_telemetry::{Metrics, SearchBudgetAttribution, VecSink};
use fusemax_workloads::TransformerConfig;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// FNV-1a over a stream of u64s — enough to certify two result streams
/// identical.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn push(&mut self, x: u64) {
        for byte in x.to_le_bytes() {
            self.0 ^= byte as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }
}

/// Order-sensitive hash of a guided run: every evaluation's identity and
/// objective bits, then the frontier sizes.
fn outcome_hash(outcome: &SearchOutcome) -> u64 {
    let mut h = Fnv::new();
    h.push(outcome.stats.requested as u64);
    for e in &outcome.evaluations {
        h.push(e.point.array_dim as u64);
        h.push(e.point.arch.global_buffer_bytes);
        h.push(e.point.seq_len as u64);
        for o in e.objectives() {
            h.push(o.to_bits());
        }
    }
    for g in &outcome.frontiers {
        h.push(g.frontier.len() as u64);
    }
    h.0
}

/// Hash of a serve report (exact quantile bits included).
fn report_hash(report: &fusemax_serve::ServeReport) -> u64 {
    let mut h = Fnv::new();
    h.push(report.completed as u64);
    h.push(report.iterations as u64);
    h.push(report.makespan_s.to_bits());
    h.push(report.goodput_rps.to_bits());
    for stats in [&report.ttft, &report.tpot, &report.e2e] {
        h.push(stats.p50.to_bits());
        h.push(stats.p95.to_bits());
        h.push(stats.p99.to_bits());
    }
    h.0
}

fn genetic_space() -> DesignSpace {
    DesignSpace::new()
        .with_kinds(ConfigKind::all())
        .with_workloads([TransformerConfig::bert()])
        .with_frequencies_hz([None, Some(470e6)])
        .with_buffer_scales([0.5, 1.0, 2.0])
}

fn annealing_space() -> DesignSpace {
    DesignSpace::new()
        .with_kinds(ConfigKind::all())
        .with_workloads([TransformerConfig::bert(), TransformerConfig::xlm()])
        .with_seq_lens([1 << 14, 1 << 18])
}

fn serve_trace(requests: usize) -> Trace {
    TrafficSpec {
        arrivals: Arrivals::Poisson { rate_per_s: 150.0 },
        prompt_mix: LengthMix::new([(512, 3.0), (4096, 1.0)]),
        output_mix: LengthMix::uniform([8, 32]),
        requests,
    }
    .generate(7)
}

/// One timed closure call (fresh state per call, so caches can't leak
/// between the serial and parallel arms).
fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

struct Comparison {
    name: &'static str,
    serial: Duration,
    parallel: Duration,
    parity: bool,
}

fn run_genetic() -> Comparison {
    let space = genetic_space();
    let budget = SearchBudget::evaluations(90);
    let (serial_outcome, serial) = time(|| {
        let sweeper = Sweeper::new(ModelParams::default()).with_parallelism(false);
        GeneticSearch::new(7).search(&sweeper, &space, budget)
    });
    let (parallel_outcome, parallel) = time(|| {
        let sweeper = Sweeper::new(ModelParams::default());
        GeneticSearch::new(7).search(&sweeper, &space, budget)
    });
    Comparison {
        name: "genetic_generation_batches",
        serial,
        parallel,
        parity: outcome_hash(&serial_outcome) == outcome_hash(&parallel_outcome),
    }
}

fn run_annealing() -> Comparison {
    let space = annealing_space();
    let budget = SearchBudget::evaluations(80);
    let (serial_outcome, serial) = time(|| {
        let sweeper = Sweeper::new(ModelParams::default()).with_parallelism(false);
        SimulatedAnnealing::new(7).search(&sweeper, &space, budget)
    });
    let (parallel_outcome, parallel) = time(|| {
        let sweeper = Sweeper::new(ModelParams::default());
        SimulatedAnnealing::new(7).search(&sweeper, &space, budget)
    });
    Comparison {
        name: "annealing_parallel_chains",
        serial,
        parallel,
        parity: outcome_hash(&serial_outcome) == outcome_hash(&parallel_outcome),
    }
}

fn run_serve_table() -> Comparison {
    let params = ModelParams::default();
    let trace = serve_trace(120);
    let space = DesignSpace::new().with_workloads([TransformerConfig::bert()]);
    let point = space.points().remove(4); // 256x256, mid-family
    let sim = ServeSim::for_point(&point, &params);
    let replays = 8;
    let (cold_hash, cold) = time(|| {
        let mut h = Fnv::new();
        for _ in 0..replays {
            h.push(report_hash(&sim.run(&trace)));
        }
        h.0
    });
    let (warm_hash, warm) = time(|| {
        let table = sim.service_times(&trace);
        let mut h = Fnv::new();
        for _ in 0..replays {
            h.push(report_hash(&sim.run_with(&table, &trace)));
        }
        assert_eq!(table.misses(), 0, "warm replay must not fall back to the model");
        h.0
    });
    Comparison {
        name: "serve_table_replay_x8",
        serial: cold,
        parallel: warm,
        parity: cold_hash == warm_hash,
    }
}

fn run_serve_rank() -> Comparison {
    let params = ModelParams::default();
    let space = DesignSpace::new().with_workloads([TransformerConfig::bert()]);
    let outcome = Sweeper::new(params.clone()).sweep(&space);
    let objective = ServeObjective::new(serve_trace(60), Sla::p99_ttft(0.25));
    let rank_hash =
        |ranked: &[(std::sync::Arc<fusemax_dse::Evaluation>, fusemax_serve::ServeScore)]| {
            let mut h = Fnv::new();
            for (e, s) in ranked {
                h.push(e.point.array_dim as u64);
                h.push(report_hash(&s.report));
            }
            h.0
        };
    let serial_objective = objective.clone().with_parallelism(false);
    let (serial_hash, serial) =
        time(|| rank_hash(&serial_objective.rank(&outcome.evaluations, &params)));
    let (parallel_hash, parallel) =
        time(|| rank_hash(&objective.rank(&outcome.evaluations, &params)));
    Comparison {
        name: "serve_objective_rank_fig12",
        serial,
        parallel,
        parity: serial_hash == parallel_hash,
    }
}

/// Replays the genetic arm (cold then warm-cache) and one serve replay
/// with telemetry attached and condenses the event streams into the
/// search-efficiency numbers the `BENCH_*` trajectory tracks — cache hit
/// ratio and batch shape, not just wall time.
fn telemetry_json() -> String {
    let space = genetic_space();
    let (recorder, sink) = VecSink::recorder();
    let sweeper = Sweeper::new(ModelParams::default()).with_recorder(recorder);
    let budget = SearchBudget::evaluations(90);
    GeneticSearch::new(7).search(&sweeper, &space, budget);
    // A second seed over the warm cache, so the hit ratio measures reuse.
    GeneticSearch::new(9).search(&sweeper, &space, budget);

    let trace = serve_trace(120);
    let point = DesignSpace::new().with_workloads([TransformerConfig::bert()]).points().remove(4);
    let (serve_recorder, serve_sink) = VecSink::recorder();
    ServeSim::builder_for_point(&point, &ModelParams::default())
        .recorder(serve_recorder)
        .build()
        .run(&trace);

    // A seeded fault-injected 4-replica fleet run: two mid-trace
    // fail-stops (one recovers) under a load-shed watermark, so the
    // retry and shed counters are exercised. Both are event-derived and
    // seeded — deterministic keys the baseline diff gates on.
    let fleet_trace = TrafficSpec {
        arrivals: Arrivals::Poisson { rate_per_s: 2000.0 },
        prompt_mix: LengthMix::new([(512, 3.0), (4096, 1.0)]),
        output_mix: LengthMix::uniform([8, 32]),
        requests: 80,
    }
    .generate(11);
    let horizon_s = fleet_trace.last_arrival_s();
    let faults = FaultSpec::none()
        .down(0.25 * horizon_s, 1)
        .down(0.45 * horizon_s, 2)
        .up(0.7 * horizon_s, 2)
        .with_shed_watermark(0.6);
    let (fleet_recorder, fleet_sink) = VecSink::recorder();
    Fleet::new(FleetSpec::replicated(4), ServeSim::for_point(&point, &ModelParams::default()))
        .with_recorder(fleet_recorder)
        .with_faults(faults)
        .run_detailed(&fleet_trace);

    let mut events = sink.events();
    events.extend(serve_sink.events());
    events.extend(fleet_sink.events());
    let metrics = Metrics::from_events(&events);
    // The budget-attribution block: where the two genetic runs' staged
    // candidates went (screen / cache / full model). Event-derived and
    // seeded, so every field is deterministic — exactly what the
    // baseline diff (`examples/bench_diff.rs`) gates on.
    let attribution = SearchBudgetAttribution::from_events(&events);
    format!(
        concat!(
            "{{\"search_cache_hit_ratio\":{:.4},\"search_flush_batch_mean\":{:.3},",
            "\"serve_batch_mean\":{:.3},\"serve_retries\":{},\"serve_sheds\":{},",
            "\"events\":{},\"attribution\":{}}}"
        ),
        metrics.gauge("search.cache.hit_ratio").unwrap_or(0.0),
        metrics.histogram("search.flush_batch").map_or(0.0, |h| h.mean()),
        metrics.gauge("serve.batch_mean").unwrap_or(0.0),
        metrics.counter("serve.retries"),
        metrics.counter("serve.sheds"),
        events.len(),
        attribution.json(),
    )
}

/// Serializes the comparisons as the `target/bench_summary.json`
/// trajectory artifact (dependency-free, stable field order).
fn write_summary(comparisons: &[Comparison]) {
    let entries: Vec<String> = comparisons
        .iter()
        .map(|c| {
            format!(
                concat!(
                    "{{\"bench\":\"{}\",\"serial_ns\":{},\"parallel_ns\":{},",
                    "\"speedup\":{:.3},\"parity\":{}}}"
                ),
                c.name,
                c.serial.as_nanos(),
                c.parallel.as_nanos(),
                c.serial.as_secs_f64() / c.parallel.as_secs_f64().max(1e-12),
                c.parity,
            )
        })
        .collect();
    let json = format!(
        "{{\"threads\":{},\"comparisons\":[{}],\"telemetry\":{}}}\n",
        rayon::current_num_threads(),
        entries.join(","),
        telemetry_json(),
    );
    // Bench binaries run with the package directory as CWD; the summary
    // belongs in the workspace-root target/ where CI uploads it.
    let target = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target");
    let _ = std::fs::create_dir_all(&target);
    let path = target.join("bench_summary.json");
    std::fs::write(&path, json).expect("write bench summary");
    println!("[summary] wrote {}", path.display());
}

fn criterion_groups(c: &mut Criterion) {
    // Conventional criterion timings for the same hot paths (the summary
    // above is single-shot; these carry the statistics).
    let mut group = c.benchmark_group("par_eval");
    group.measurement_time(Duration::from_secs(3)).sample_size(10);
    let space = genetic_space();
    group.bench_function("genetic_serial", |b| {
        b.iter(|| {
            let sweeper = Sweeper::new(ModelParams::default()).with_parallelism(false);
            black_box(GeneticSearch::new(7).search(&sweeper, &space, SearchBudget::evaluations(45)))
        })
    });
    group.bench_function("genetic_batched", |b| {
        b.iter(|| {
            let sweeper = Sweeper::new(ModelParams::default());
            black_box(GeneticSearch::new(7).search(&sweeper, &space, SearchBudget::evaluations(45)))
        })
    });
    let trace = serve_trace(120);
    let params = ModelParams::default();
    let point = DesignSpace::new().with_workloads([TransformerConfig::bert()]).points().remove(4);
    let sim = ServeSim::for_point(&point, &params);
    let table = sim.service_times(&trace);
    group.bench_function("serve_replay_cold", |b| b.iter(|| black_box(sim.run(&trace))));
    group.bench_function("serve_replay_warm_table", |b| {
        b.iter(|| black_box(sim.run_with(&table, &trace)))
    });
    group.finish();
}

fn all(c: &mut Criterion) {
    fusemax_bench::banner(
        "par_eval",
        "batched/parallel evaluation vs the serial reference (parity-gated)",
    );
    let comparisons = vec![run_genetic(), run_annealing(), run_serve_table(), run_serve_rank()];
    for c in &comparisons {
        println!(
            "[parity] {:<30} serial {:>10.3?}  parallel {:>10.3?}  speedup {:>5.2}x  parity {}",
            c.name,
            c.serial,
            c.parallel,
            c.serial.as_secs_f64() / c.parallel.as_secs_f64().max(1e-12),
            if c.parity { "OK" } else { "MISMATCH" },
        );
    }
    write_summary(&comparisons);
    // The CI gate: any serial/parallel divergence fails the bench run.
    assert!(
        comparisons.iter().all(|c| c.parity),
        "serial and parallel paths disagreed — determinism contract broken"
    );
    criterion_groups(c);
}

criterion::criterion_group!(benches, all);
criterion::criterion_main!(benches);
