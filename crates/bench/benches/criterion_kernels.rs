//! Criterion micro-benchmarks of the attention kernels: wall-clock time of
//! the 3-/2-/1-pass algorithms and the tile-size sweep for the 1-pass
//! kernel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fusemax_core::kernels::Algorithm;
use fusemax_tensor::{Shape, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;

fn qkv(e: usize, f: usize, m: usize, p: usize) -> [Tensor<f32>; 3] {
    let mut rng = StdRng::seed_from_u64(17);
    [
        Tensor::random_uniform(Shape::of(&[("E", e), ("P", p)]), -1.0, 1.0, &mut rng),
        Tensor::random_uniform(Shape::of(&[("E", e), ("M", m)]), -1.0, 1.0, &mut rng),
        Tensor::random_uniform(Shape::of(&[("F", f), ("M", m)]), -1.0, 1.0, &mut rng),
    ]
}

fn bench_algorithms(c: &mut Criterion) {
    let [q, k, v] = qkv(64, 64, 1024, 64);
    let mut group = c.benchmark_group("attention_kernels_f32_E64_M1024_P64");
    group.measurement_time(Duration::from_secs(3)).sample_size(30);
    for alg in [
        Algorithm::NaiveUnstable,
        Algorithm::ThreePass { deferred_div: false },
        Algorithm::ThreePass { deferred_div: true },
        Algorithm::TwoPass { tile_m0: 128, deferred_div: false },
        Algorithm::OnePass { tile_m0: 128 },
    ] {
        group.bench_function(alg.name(), |bencher| {
            bencher.iter(|| black_box(alg.run(&q, &k, &v).unwrap()))
        });
    }
    group.finish();
}

fn bench_tile_sweep(c: &mut Criterion) {
    let [q, k, v] = qkv(64, 64, 1024, 32);
    let mut group = c.benchmark_group("one_pass_tile_sweep");
    group.measurement_time(Duration::from_secs(3)).sample_size(30);
    for m0 in [16usize, 64, 256, 1024] {
        group.bench_with_input(BenchmarkId::from_parameter(m0), &m0, |bencher, &m0| {
            let alg = Algorithm::OnePass { tile_m0: m0 };
            bencher.iter(|| black_box(alg.run(&q, &k, &v).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_algorithms, bench_tile_sweep);
criterion_main!(benches);
