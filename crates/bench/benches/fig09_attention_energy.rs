//! Regenerates Fig 9: attention energy relative to the unfused baseline.

use fusemax_eval::fig8_9::{figure, Metric, Scope};
use fusemax_model::ModelParams;

fn main() {
    fusemax_bench::banner("Fig 9", "energy consumption of attention relative to unfused");
    for panel in figure(Scope::Attention, Metric::EnergyUse, &ModelParams::default()) {
        print!("{}", panel.render(2));
        println!();
    }
    fusemax_bench::paper_note(
        "paper averages: FuseMax uses 77% of the unfused baseline's energy and 79% \
         of FLAT's; savings come from eliminated DRAM/global-buffer traffic.",
    );
}
