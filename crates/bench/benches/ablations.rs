//! Ablations called out in DESIGN.md: pass-count vs compute trade-offs
//! (Cascades 1-3), the division-deferral optimization (IV-D), and the
//! exponential-cost sensitivity of the FuseMax design point.

use fusemax_core::cascades::pedagogical;
use fusemax_core::kernels::Algorithm;
use fusemax_core::passes::analyze_passes;
use fusemax_einsum::Evaluator;
use fusemax_model::{attention_report, ConfigKind, ModelParams};
use fusemax_tensor::{Shape, Tensor};
use fusemax_workloads::TransformerConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // --- Ablation 1: pass reduction vs compute (Section III-C) ---
    fusemax_bench::banner("Ablation 1", "passes vs compute for Cascades 1-3 (K = 1024)");
    let k = 1024usize;
    let a = Tensor::<f64>::from_fn(Shape::of(&[("K", k)]), |c| 0.25 + (c[0] % 7) as f64 * 0.125);
    let b = Tensor::<f64>::from_fn(Shape::of(&[("K", k)]), |c| 1.0 - (c[0] % 5) as f64 * 0.0625);
    let a_i = Tensor::from_vec(Shape::of(&[("I", k)]), a.data().to_vec()).unwrap();
    let b_i = Tensor::from_vec(Shape::of(&[("I", k)]), b.data().to_vec()).unwrap();
    let ev = Evaluator::new();
    println!("{:<20} {:>6} {:>10}", "cascade", "passes", "total ops");
    for (cascade, family, inputs) in [
        (pedagogical::cascade1(), "K", [("A", a.clone()), ("B", b.clone())]),
        (pedagogical::cascade2(), "K", [("A", a.clone()), ("B", b.clone())]),
        (pedagogical::cascade3(), "I", [("A", a_i), ("B", b_i)]),
    ] {
        let passes = analyze_passes(&cascade, family).unwrap().num_passes;
        let ops = ev.evaluate(&cascade, &inputs, &[]).unwrap().total_counts().total();
        println!("{:<20} {:>6} {:>10}", cascade.name, passes, ops);
    }

    // --- Ablation 2: division deferral (Section IV-D) ---
    fusemax_bench::banner("Ablation 2", "division deferral (M=2048, P=64, E=F=64)");
    let mut rng = StdRng::seed_from_u64(5);
    let (e, f, m, p) = (64usize, 64usize, 2048usize, 64usize);
    let q = Tensor::<f64>::random_uniform(Shape::of(&[("E", e), ("P", p)]), -1.0, 1.0, &mut rng);
    let kk = Tensor::<f64>::random_uniform(Shape::of(&[("E", e), ("M", m)]), -1.0, 1.0, &mut rng);
    let v = Tensor::<f64>::random_uniform(Shape::of(&[("F", f), ("M", m)]), -1.0, 1.0, &mut rng);
    println!("{:<26} {:>10} {:>10}", "kernel", "divisions", "exps");
    for alg in [
        Algorithm::ThreePass { deferred_div: false },
        Algorithm::ThreePass { deferred_div: true },
        Algorithm::TwoPass { tile_m0: 256, deferred_div: false },
        Algorithm::TwoPass { tile_m0: 256, deferred_div: true },
        Algorithm::OnePass { tile_m0: 256 },
    ] {
        let run = alg.run(&q, &kk, &v).unwrap();
        println!("{:<26} {:>10} {:>10}", alg.name(), run.ops.div, run.ops.exp);
    }
    println!("(paper: deferral reduces divisions by M/F = {}x)", m / f);

    // --- Ablation 3: exponential cost sensitivity ---
    fusemax_bench::banner("Ablation 3", "exp cost (MACCs per exp) vs FuseMax speedup over FLAT");
    let bert = TransformerConfig::bert();
    println!(
        "{:<10} {:>14} {:>12} {:>12}",
        "exp MACCs", "t2d/t1d ratio", "speedup@64K", "util2D@64K"
    );
    for exp_maccs in [1.0, 2.0, 4.0, 6.0, 8.0, 12.0] {
        let params = ModelParams { exp_maccs, ..ModelParams::default() };
        let flat = attention_report(ConfigKind::Flat, &bert, 1 << 16, None, &params);
        let fm = attention_report(ConfigKind::FuseMaxBinding, &bert, 1 << 16, None, &params);
        let ratio = fm.busy_2d / fm.busy_1d;
        println!(
            "{:<10} {:>14.3} {:>11.2}x {:>12.2}",
            exp_maccs,
            ratio,
            flat.cycles / fm.cycles,
            fm.util_2d()
        );
    }
    fusemax_bench::paper_note(
        "the 6-MACC exponential [36] is the design point where 2D and 1D tile work \
         balance almost exactly (the 'green and blue periods' of Fig 4).",
    );
}
