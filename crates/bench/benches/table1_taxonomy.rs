//! Regenerates Table I: the pass-count classification of prior attention
//! algorithms, computed by the §III analysis.

use fusemax_eval::table1::{render, table1};

fn main() {
    fusemax_bench::banner("Table I", "classifying prior attention algorithms by pass count");
    let rows = table1().expect("analysis");
    print!("{}", render(&rows));
    println!("\nper-row verification (computed vs paper):");
    for r in &rows {
        let mark = if r.computed == r.expected { "ok" } else { "MISMATCH" };
        println!("  {:<18} computed {} expected {} [{mark}]", r.name, r.computed, r.expected);
    }
    fusemax_bench::paper_note(
        "PyTorch/TensorFlow/FLAT/E.T. are 3-pass; TileFlow/Choi are 2-pass; \
         FlashAttention/-2 and Rabe-Staats are 1-pass.",
    );
}
