//! Guided-search throughput and quality: random vs genetic vs annealing
//! over the extended Fig 12 space at a 25% evaluation budget, against the
//! exhaustive sweep as ground truth — plus warm-cache reruns, the path a
//! second figure regeneration takes.

use criterion::Criterion;
use fusemax_dse::search::{
    convergence, hypervolume_fraction, GeneticSearch, RandomSearch, SearchBudget, SearchStrategy,
    SimulatedAnnealing, SnapPolicy,
};
use fusemax_dse::{DesignSpace, Sweeper};
use fusemax_model::{ConfigKind, ModelParams};
use fusemax_workloads::TransformerConfig;
use std::hint::black_box;
use std::time::Duration;

/// The extended Fig 12 search space (180 points, one frontier group).
fn search_space() -> DesignSpace {
    DesignSpace::new()
        .with_kinds(ConfigKind::all())
        .with_workloads([TransformerConfig::bert()])
        .with_frequencies_hz([None, Some(470e6)])
        .with_buffer_scales([0.5, 1.0, 2.0])
}

fn strategies(seed: u64) -> Vec<Box<dyn SearchStrategy>> {
    vec![
        Box::new(RandomSearch::new(seed)),
        Box::new(GeneticSearch::new(seed)),
        Box::new(SimulatedAnnealing::new(seed)),
    ]
}

fn bench_strategies(c: &mut Criterion) {
    let space = search_space();
    let budget = SearchBudget::fraction(&space, 0.25);
    let mut group =
        c.benchmark_group(format!("dse_search_{}of{}", budget.evaluations, space.len()));
    group.measurement_time(Duration::from_secs(3)).sample_size(20);
    for strategy in strategies(7) {
        // Cold: every run pays for its own evaluations.
        group.bench_function(format!("{}_cold", strategy.name()), |b| {
            b.iter(|| {
                let sweeper = Sweeper::new(ModelParams::default());
                black_box(strategy.search(&sweeper, &space, budget))
            })
        });
    }
    // Warm: the shared cache already holds the whole space, so a guided
    // run is pure bookkeeping (the figure-regeneration path). Warm-starts
    // from FUSEMAX_DSE_CACHE when CI restored the figures job's cache.
    let warm = fusemax_bench::sweeper_from_env(ModelParams::default());
    let _ = warm.sweep(&space);
    for strategy in strategies(7) {
        group.bench_function(format!("{}_warm", strategy.name()), |b| {
            b.iter(|| black_box(strategy.search(&warm, &space, budget)))
        });
    }
    group.finish();
}

/// Continuous (off-grid) vs snap-to-grid annealing, plus the
/// multi-fidelity screened variant — the cost side of the tentpole's
/// quality claims (honors `FUSEMAX_BENCH_SMOKE` via the criterion stub
/// like every other case).
fn bench_continuous_vs_grid(c: &mut Criterion) {
    let space = search_space();
    let budget = SearchBudget::fraction(&space, 0.25);
    let mut group = c.benchmark_group("dse_annealing_offgrid");
    group.measurement_time(Duration::from_secs(3)).sample_size(20);
    for (label, annealer) in [
        ("grid_cold", SimulatedAnnealing::new(7)),
        ("continuous_cold", SimulatedAnnealing::new(7).with_snap_policy(SnapPolicy::Continuous)),
        (
            "continuous_screened_cold",
            SimulatedAnnealing::new(7)
                .with_snap_policy(SnapPolicy::Continuous)
                .with_screening(true),
        ),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let sweeper = Sweeper::new(ModelParams::default());
                black_box(annealer.search(&sweeper, &space, budget))
            })
        });
    }
    group.finish();
}

fn main() {
    fusemax_bench::banner(
        "DSE guided search",
        "random / genetic / annealing vs the exhaustive frontier at a 25% budget",
    );

    // Headline quality numbers for the bench trajectory. The exhaustive
    // baseline warm-starts from FUSEMAX_DSE_CACHE when CI restored the
    // figures job's evaluation cache.
    let space = search_space();
    let budget = SearchBudget::fraction(&space, 0.25);
    let sweeper = fusemax_bench::sweeper_from_env(ModelParams::default());
    let exhaustive = sweeper.sweep(&space);
    println!(
        "space: {} points | budget: {} evaluations | exhaustive frontier: {} designs",
        space.len(),
        budget.evaluations,
        exhaustive.frontier_points().len(),
    );
    for strategy in strategies(7) {
        let cold = Sweeper::new(ModelParams::default());
        let outcome = strategy.search(&cold, &space, budget);
        let fraction = hypervolume_fraction(&outcome.frontiers, &exhaustive);
        let curve = convergence(&outcome, &exhaustive, 9);
        let to_90 =
            curve.evaluations_to_reach(0.9).map_or_else(|| "never".to_string(), |n| n.to_string());
        println!(
            "{:>10}: {:5.1}% of exhaustive hypervolume in {} evaluations \
             (90% after {} evals, frontier {})",
            strategy.name(),
            fraction * 100.0,
            outcome.stats.requested,
            to_90,
            outcome.frontier_points().len(),
        );
    }

    // Off-grid and screened headline: what the continuous relaxation and
    // the lower-bound filter buy at the same seed and budget.
    let continuous = SimulatedAnnealing::new(7).with_snap_policy(SnapPolicy::Continuous);
    let cold = Sweeper::new(ModelParams::default());
    let outcome = continuous.search(&cold, &space, budget);
    let off_grid = outcome.evaluations.iter().filter(|e| !space.is_on_grid(&e.point)).count();
    println!(
        "continuous: {:5.1}% of the grid hypervolume, {} of {} evaluations off-grid",
        hypervolume_fraction(&outcome.frontiers, &exhaustive) * 100.0,
        off_grid,
        outcome.stats.requested,
    );
    let screened_strategy = SimulatedAnnealing::new(7).with_screening(true);
    let cold = Sweeper::new(ModelParams::default());
    let screened = screened_strategy.search(&cold, &space, budget);
    println!(
        "screened:   {:5.1}% of the grid hypervolume, {} full evaluations, {} rejected by bound",
        hypervolume_fraction(&screened.frontiers, &exhaustive) * 100.0,
        screened.stats.evaluated,
        screened.stats.screened,
    );

    let mut criterion = Criterion::default();
    bench_strategies(&mut criterion);
    bench_continuous_vs_grid(&mut criterion);

    fusemax_bench::paper_note(
        "the paper's Fig 12 sweeps 6 hand-picked arrays exhaustively; the guided strategies \
         recover ≥90% of the extended space's Pareto hypervolume from a quarter of the \
         evaluations (off-grid annealing routinely dominates grid frontier points), and the \
         lower-bound screen rejects provably-dominated candidates before the model runs.",
    );
}
