//! Guided-search throughput and quality: random vs genetic vs annealing
//! over the extended Fig 12 space at a 25% evaluation budget, against the
//! exhaustive sweep as ground truth — plus warm-cache reruns, the path a
//! second figure regeneration takes.

use criterion::Criterion;
use fusemax_dse::search::{
    convergence, hypervolume_fraction, GeneticSearch, RandomSearch, SearchBudget, SearchStrategy,
    SimulatedAnnealing,
};
use fusemax_dse::{DesignSpace, Sweeper};
use fusemax_model::{ConfigKind, ModelParams};
use fusemax_workloads::TransformerConfig;
use std::hint::black_box;
use std::time::Duration;

/// The extended Fig 12 search space (180 points, one frontier group).
fn search_space() -> DesignSpace {
    DesignSpace::new()
        .with_kinds(ConfigKind::all())
        .with_workloads([TransformerConfig::bert()])
        .with_frequencies_hz([None, Some(470e6)])
        .with_buffer_scales([0.5, 1.0, 2.0])
}

fn strategies(seed: u64) -> Vec<Box<dyn SearchStrategy>> {
    vec![
        Box::new(RandomSearch::new(seed)),
        Box::new(GeneticSearch::new(seed)),
        Box::new(SimulatedAnnealing::new(seed)),
    ]
}

fn bench_strategies(c: &mut Criterion) {
    let space = search_space();
    let budget = SearchBudget::fraction(&space, 0.25);
    let mut group =
        c.benchmark_group(format!("dse_search_{}of{}", budget.evaluations, space.len()));
    group.measurement_time(Duration::from_secs(3)).sample_size(20);
    for strategy in strategies(7) {
        // Cold: every run pays for its own evaluations.
        group.bench_function(format!("{}_cold", strategy.name()), |b| {
            b.iter(|| {
                let sweeper = Sweeper::new(ModelParams::default());
                black_box(strategy.search(&sweeper, &space, budget))
            })
        });
    }
    // Warm: the shared cache already holds the whole space, so a guided
    // run is pure bookkeeping (the figure-regeneration path).
    let warm = Sweeper::new(ModelParams::default());
    let _ = warm.sweep(&space);
    for strategy in strategies(7) {
        group.bench_function(format!("{}_warm", strategy.name()), |b| {
            b.iter(|| black_box(strategy.search(&warm, &space, budget)))
        });
    }
    group.finish();
}

fn main() {
    fusemax_bench::banner(
        "DSE guided search",
        "random / genetic / annealing vs the exhaustive frontier at a 25% budget",
    );

    // Headline quality numbers for the bench trajectory.
    let space = search_space();
    let budget = SearchBudget::fraction(&space, 0.25);
    let sweeper = Sweeper::new(ModelParams::default());
    let exhaustive = sweeper.sweep(&space);
    println!(
        "space: {} points | budget: {} evaluations | exhaustive frontier: {} designs",
        space.len(),
        budget.evaluations,
        exhaustive.frontier_points().len(),
    );
    for strategy in strategies(7) {
        let cold = Sweeper::new(ModelParams::default());
        let outcome = strategy.search(&cold, &space, budget);
        let fraction = hypervolume_fraction(&outcome.frontiers, &exhaustive);
        let curve = convergence(&outcome, &exhaustive, 9);
        let to_90 =
            curve.evaluations_to_reach(0.9).map_or_else(|| "never".to_string(), |n| n.to_string());
        println!(
            "{:>10}: {:5.1}% of exhaustive hypervolume in {} evaluations \
             (90% after {} evals, frontier {})",
            strategy.name(),
            fraction * 100.0,
            outcome.stats.requested,
            to_90,
            outcome.frontier_points().len(),
        );
    }

    let mut criterion = Criterion::default();
    bench_strategies(&mut criterion);

    fusemax_bench::paper_note(
        "the paper's Fig 12 sweeps 6 hand-picked arrays exhaustively; the guided strategies \
         recover ≥90% of the extended space's Pareto hypervolume from a quarter of the \
         evaluations, and reuse the exhaustive sweep's cache when one ran first.",
    );
}
