//! Regenerates Fig 7: 2D-array active share by Einsum on BERT.

use fusemax_eval::fig7::fig7;
use fusemax_model::ModelParams;

fn main() {
    fusemax_bench::banner("Fig 7", "2D array utilization by Einsum (BERT)");
    for panel in fig7(&ModelParams::default()) {
        print!("{}", panel.render(3));
        println!();
    }
    fusemax_bench::paper_note(
        "FuseMax (+B) spends most active cycles on the tensor products (QK and \
         SLNV/AV) with a small SLN (exp) slice, hiding softmax and memory costs.",
    );
}
