//! Architecture configurations (Fig 2 parameters and Fig 12 scaling).

use crate::pe::{ExpCost, PeKind};

/// A spatial-array accelerator configuration.
///
/// # Example
///
/// ```
/// use fusemax_arch::ArchConfig;
///
/// let cfg = ArchConfig::fusemax_cloud();
/// assert_eq!(cfg.pe_count_2d(), 256 * 256);
/// // 400 GB/s at 940 MHz ≈ 425 bytes per cycle.
/// assert!((cfg.dram_bytes_per_cycle() - 425.5).abs() < 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ArchConfig {
    /// Configuration name for reports.
    pub name: String,
    /// 2D PE array rows.
    pub array_rows: usize,
    /// 2D PE array columns.
    pub array_cols: usize,
    /// Number of 1D (vector) PEs.
    pub vector_pes: usize,
    /// Global buffer capacity in bytes.
    pub global_buffer_bytes: u64,
    /// Off-chip bandwidth in bytes per second.
    pub dram_bw_bytes_per_sec: f64,
    /// Clock frequency in hertz.
    pub frequency_hz: f64,
    /// Datatype width in bytes (2 for fp16).
    pub word_bytes: u64,
    /// The 2D-array PE variant.
    pub pe_2d: PeKind,
    /// How exponentiation is charged on this architecture's arrays.
    pub exp_cost: ExpCost,
}

impl ArchConfig {
    /// The paper's FuseMax cloud configuration (Fig 2): 256×256 2D array
    /// with FuseMax PEs, 256 1D PEs, 16 MB global buffer, 400 GB/s DRAM,
    /// 940 MHz, fp16 words, exponentiation as 6 chained MACCs.
    pub fn fusemax_cloud() -> Self {
        Self {
            name: "fusemax-cloud".into(),
            array_rows: 256,
            array_cols: 256,
            vector_pes: 256,
            global_buffer_bytes: 16 << 20,
            dram_bw_bytes_per_sec: 400e9,
            frequency_hz: 940e6,
            word_bytes: 2,
            pe_2d: PeKind::FuseMaxPe,
            exp_cost: ExpCost::FUSEMAX,
        }
    }

    /// The FLAT cloud baseline: same arrays and memory system, plain MACC
    /// PEs, and a 22 MB global buffer — sized so that FuseMax's total chip
    /// area comes out 6.4 % smaller, matching the paper's iso-area setup
    /// (§VI-A chose FuseMax's buffer "so that the overall chip area was as
    /// close to FLAT's as possible"). Baseline softmax Einsums are charged
    /// one 1D op each (see DESIGN.md §1.9 note 1), hence
    /// [`ExpCost::SingleOp`].
    pub fn flat_cloud() -> Self {
        Self {
            name: "flat-cloud".into(),
            array_rows: 256,
            array_cols: 256,
            vector_pes: 256,
            global_buffer_bytes: 22 << 20,
            dram_bw_bytes_per_sec: 400e9,
            frequency_hz: 940e6,
            word_bytes: 2,
            pe_2d: PeKind::FlatMacc,
            exp_cost: ExpCost::SingleOp,
        }
    }

    /// A FuseMax configuration scaled to an `n×n` 2D array, `n` 1D PEs, and
    /// a proportionally scaled global buffer — the Fig 12 design family
    /// ("varying the size of the PE array between 16×16 and 512×512 and
    /// setting the global and per-PE buffers to accommodate the resulting
    /// pipelined/interleaved binding").
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn fusemax_scaled(n: usize) -> Self {
        assert!(n > 0, "array dimension must be positive");
        let base = Self::fusemax_cloud();
        let scale = (n as f64 / 256.0).powi(2);
        Self {
            name: format!("fusemax-{n}x{n}"),
            array_rows: n,
            array_cols: n,
            vector_pes: n,
            global_buffer_bytes: ((16_u64 << 20) as f64 * scale).ceil() as u64,
            ..base
        }
    }

    /// Total 2D-array PEs.
    pub fn pe_count_2d(&self) -> usize {
        self.array_rows * self.array_cols
    }

    /// DRAM bandwidth in bytes per clock cycle.
    pub fn dram_bytes_per_cycle(&self) -> f64 {
        self.dram_bw_bytes_per_sec / self.frequency_hz
    }

    /// Converts a cycle count to seconds at this configuration's clock.
    pub fn cycles_to_seconds(&self, cycles: f64) -> f64 {
        cycles / self.frequency_hz
    }

    /// Elements of the configured word size fitting in the global buffer.
    pub fn buffer_capacity_words(&self) -> u64 {
        self.global_buffer_bytes / self.word_bytes
    }

    /// How many serving requests of `bytes_each` on-chip state (K/V cache
    /// plus activations) fit in the global buffer simultaneously — the
    /// batch-size ceiling a continuous-batching scheduler must respect.
    /// At least 1: a request larger than the buffer streams through DRAM
    /// instead of being unservable.
    pub fn max_resident_requests(&self, bytes_each: u64) -> usize {
        if bytes_each == 0 {
            return usize::MAX;
        }
        ((self.global_buffer_bytes / bytes_each) as usize).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pe::PeOp;

    #[test]
    fn cloud_matches_figure_2() {
        let c = ArchConfig::fusemax_cloud();
        assert_eq!(c.array_rows, 256);
        assert_eq!(c.array_cols, 256);
        assert_eq!(c.vector_pes, 256);
        assert_eq!(c.global_buffer_bytes, 16 * 1024 * 1024);
        assert_eq!(c.frequency_hz, 940e6);
        assert_eq!(c.pe_count_2d(), 65536);
    }

    #[test]
    fn fusemax_2d_array_supports_softmax_ops() {
        let c = ArchConfig::fusemax_cloud();
        assert!(c.pe_2d.supports(PeOp::Max));
        assert!(c.pe_2d.supports(PeOp::Exp));
        let f = ArchConfig::flat_cloud();
        assert!(!f.pe_2d.supports(PeOp::Max));
    }

    #[test]
    fn scaled_configs_scale_quadratically() {
        let half = ArchConfig::fusemax_scaled(128);
        assert_eq!(half.pe_count_2d(), 128 * 128);
        assert_eq!(half.vector_pes, 128);
        let full = ArchConfig::fusemax_scaled(256);
        assert_eq!(full.global_buffer_bytes, 16 << 20);
        assert!(
            (half.global_buffer_bytes as f64 / full.global_buffer_bytes as f64 - 0.25).abs() < 1e-6
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_panics() {
        let _ = ArchConfig::fusemax_scaled(0);
    }

    #[test]
    fn resident_request_capacity_floors_at_one() {
        let c = ArchConfig::fusemax_cloud();
        assert_eq!(c.max_resident_requests(1 << 20), 16);
        assert_eq!(c.max_resident_requests(64 << 20), 1, "oversized requests still run");
        assert_eq!(c.max_resident_requests(0), usize::MAX);
    }

    #[test]
    fn unit_conversions() {
        let c = ArchConfig::fusemax_cloud();
        assert!((c.cycles_to_seconds(940e6) - 1.0).abs() < 1e-12);
        assert_eq!(c.buffer_capacity_words(), (16 << 20) / 2);
    }
}
