//! Chip-area model for the iso-area comparison and the Fig 12 sweep.

use crate::config::ArchConfig;
use crate::pe::PeKind;

/// Component areas, 45 nm-flavored.
///
/// Calibrated so the paper's iso-area setup holds: with FLAT's 22 MB buffer
/// and plain MACC PEs versus FuseMax's 16 MB buffer and larger PEs
/// (10-entry RF + max unit), FuseMax's chip comes out ~6.4 % smaller
/// (§VI-A).
#[derive(Debug, Clone, PartialEq)]
pub struct AreaModel {
    /// A plain multiply–accumulate 2D PE (TPU/FLAT style), µm².
    pub pe_macc_um2: f64,
    /// A FuseMax 2D PE (MACC + max + 10-entry RF), µm².
    pub pe_fusemax_um2: f64,
    /// A 1D vector PE including the fp divider, µm².
    pub pe_vector_um2: f64,
    /// SRAM density, mm² per MB (bit cell plus array overheads).
    pub sram_mm2_per_mb: f64,
    /// Fixed overhead (NoC, control, IO), mm².
    pub fixed_mm2: f64,
}

impl Default for AreaModel {
    fn default() -> Self {
        Self {
            pe_macc_um2: 1500.0,
            pe_fusemax_um2: 1800.0,
            pe_vector_um2: 6000.0,
            sram_mm2_per_mb: 5.9,
            fixed_mm2: 20.0,
        }
    }
}

impl AreaModel {
    /// Total chip area of a configuration in mm².
    pub fn chip_area_mm2(&self, config: &ArchConfig) -> f64 {
        let pe2 = match config.pe_2d {
            PeKind::FuseMaxPe => self.pe_fusemax_um2,
            _ => self.pe_macc_um2,
        };
        let array_2d = config.pe_count_2d() as f64 * pe2 * 1e-6;
        let array_1d = config.vector_pes as f64 * self.pe_vector_um2 * 1e-6;
        let buffer = config.global_buffer_bytes as f64 / (1024.0 * 1024.0) * self.sram_mm2_per_mb;
        array_2d + array_1d + buffer + self.fixed_mm2
    }

    /// Total chip area in cm² (Fig 12's x-axis unit).
    pub fn chip_area_cm2(&self, config: &ArchConfig) -> f64 {
        self.chip_area_mm2(config) / 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fusemax_cloud_is_about_6_percent_smaller_than_flat() {
        let area = AreaModel::default();
        let fusemax = area.chip_area_mm2(&ArchConfig::fusemax_cloud());
        let flat = area.chip_area_mm2(&ArchConfig::flat_cloud());
        let ratio = fusemax / flat;
        assert!(
            (ratio - 0.936).abs() < 0.01,
            "expected ≈6.4% smaller, got ratio {ratio:.3} ({fusemax:.1} vs {flat:.1} mm²)"
        );
    }

    #[test]
    fn cloud_chip_lands_in_figure_12_range() {
        // Fig 12's x-axis spans roughly 0.1–10 cm²; the cloud design sits
        // in the middle of the band.
        let area = AreaModel::default().chip_area_cm2(&ArchConfig::fusemax_cloud());
        assert!((1.0..5.0).contains(&area), "cloud area {area} cm²");
    }

    #[test]
    fn area_grows_monotonically_with_array_size() {
        let model = AreaModel::default();
        let mut last = 0.0;
        for n in [16, 32, 64, 128, 256, 512] {
            let a = model.chip_area_mm2(&ArchConfig::fusemax_scaled(n));
            assert!(a > last, "area must grow with array size");
            last = a;
        }
    }

    #[test]
    fn small_designs_are_dominated_by_fixed_overhead() {
        let model = AreaModel::default();
        let tiny = model.chip_area_mm2(&ArchConfig::fusemax_scaled(16));
        assert!(tiny < 25.0, "16x16 design should be tiny: {tiny} mm²");
        assert!(tiny > model.fixed_mm2);
    }
}
