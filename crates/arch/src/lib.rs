#![warn(missing_docs)]

//! Spatial-array architecture descriptions, energy tables, and area models
//! for the FuseMax reproduction (§V, Figures 2–3; the Accelergy substitute).
//!
//! The accelerator template is the paper's TPUv2/v3-style spatial
//! architecture: DRAM feeding a global buffer feeding a 2D PE array (tensor
//! products) and a 1D PE array (vector operations). [`ArchConfig`] carries
//! the paper's cloud parameters (Fig 2: 256×256 2D PEs, 256 1D PEs, 16 MB
//! buffer, 400 GB/s, 940 MHz), [`EnergyTable`] the per-action energies, and
//! [`AreaModel`] the component areas used for the iso-area comparison and
//! the Fig 12 Pareto sweep.
//!
//! # Example
//!
//! ```
//! use fusemax_arch::{ArchConfig, AreaModel};
//!
//! let fusemax = ArchConfig::fusemax_cloud();
//! let flat = ArchConfig::flat_cloud();
//! let area = AreaModel::default();
//!
//! // §VI-A: "we find that FuseMax is 6.4% smaller" (iso-area comparison).
//! let ratio = area.chip_area_mm2(&fusemax) / area.chip_area_mm2(&flat);
//! assert!((ratio - 0.936).abs() < 0.01, "area ratio {ratio}");
//! ```

mod area;
mod config;
mod energy;
mod pe;

pub use area::AreaModel;
pub use config::ArchConfig;
pub use energy::{EnergyBreakdown, EnergyTable};
pub use pe::{ExpCost, PeKind, PeOp};
