//! Processing-element capabilities (Fig 3's PE evolution).

use std::fmt;

/// Scalar operations a PE might execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PeOp {
    /// Multiply.
    Mul,
    /// Add.
    Add,
    /// Fused multiply–accumulate.
    Macc,
    /// Two-input maximum.
    Max,
    /// Division.
    Div,
    /// Exponential.
    Exp,
}

impl fmt::Display for PeOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PeOp::Mul => "mul",
            PeOp::Add => "add",
            PeOp::Macc => "macc",
            PeOp::Max => "max",
            PeOp::Div => "div",
            PeOp::Exp => "exp",
        })
    }
}

/// How an architecture realizes exponentiation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExpCost {
    /// A dedicated/assumed single-cycle unit (how the baselines' Timeloop
    /// models charge softmax Einsums — see DESIGN.md §1.9 calibration
    /// note 1).
    SingleOp,
    /// Chained multiply–accumulates (the paper implements exponentiation
    /// with 6 sequential MACCs on both FuseMax arrays, citing a Taylor
    /// series design \[36\], \[53\]).
    ChainedMaccs(u32),
}

impl ExpCost {
    /// Cycles one exponential occupies a PE.
    pub fn cycles(self) -> u64 {
        match self {
            ExpCost::SingleOp => 1,
            ExpCost::ChainedMaccs(n) => n as u64,
        }
    }

    /// The paper's 6-MACC exponential.
    pub const FUSEMAX: ExpCost = ExpCost::ChainedMaccs(6);
}

/// The 2D-array PE variants of Fig 3, plus the shared 1D vector PE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PeKind {
    /// Fig 3a: the TPU's fixed-dataflow multiply–accumulate PE.
    TpuMacc,
    /// Fig 3b: FLAT's flexible-dataflow multiply–accumulate PE.
    FlatMacc,
    /// Fig 3c: the FuseMax PE — MACC plus `max`, with a 10-entry register
    /// file; exponentiation via 6 chained MACCs.
    FuseMaxPe,
    /// The 1D vector PE (`+, ×, max, ÷` per Fig 2).
    Vector1D,
}

impl PeKind {
    /// Whether the PE can execute `op` natively (exponentiation "natively"
    /// means via its MACC chain for [`PeKind::FuseMaxPe`]).
    pub fn supports(self, op: PeOp) -> bool {
        match self {
            PeKind::TpuMacc | PeKind::FlatMacc => {
                matches!(op, PeOp::Mul | PeOp::Add | PeOp::Macc)
            }
            PeKind::FuseMaxPe => {
                matches!(op, PeOp::Mul | PeOp::Add | PeOp::Macc | PeOp::Max | PeOp::Exp)
            }
            PeKind::Vector1D => !matches!(op, PeOp::Exp),
        }
    }

    /// Register-file entries per PE (Fig 3c gives the FuseMax PE 10).
    pub fn rf_entries(self) -> usize {
        match self {
            PeKind::TpuMacc => 2,
            PeKind::FlatMacc => 4,
            PeKind::FuseMaxPe => 10,
            PeKind::Vector1D => 8,
        }
    }
}

impl fmt::Display for PeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PeKind::TpuMacc => "TPU MACC PE",
            PeKind::FlatMacc => "FLAT MACC PE",
            PeKind::FuseMaxPe => "FuseMax PE",
            PeKind::Vector1D => "1D vector PE",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tpu_and_flat_pes_cannot_max_or_divide() {
        for pe in [PeKind::TpuMacc, PeKind::FlatMacc] {
            assert!(pe.supports(PeOp::Macc));
            assert!(!pe.supports(PeOp::Max));
            assert!(!pe.supports(PeOp::Div));
            assert!(!pe.supports(PeOp::Exp));
        }
    }

    #[test]
    fn fusemax_pe_adds_max_and_exp_but_not_div() {
        let pe = PeKind::FuseMaxPe;
        assert!(pe.supports(PeOp::Max));
        assert!(pe.supports(PeOp::Exp)); // via 6 chained MACCs
        assert!(!pe.supports(PeOp::Div)); // division stays on the 1D array
    }

    #[test]
    fn vector_pe_divides_but_has_no_exp_unit() {
        assert!(PeKind::Vector1D.supports(PeOp::Div));
        assert!(!PeKind::Vector1D.supports(PeOp::Exp));
    }

    #[test]
    fn exp_cost_cycles() {
        assert_eq!(ExpCost::SingleOp.cycles(), 1);
        assert_eq!(ExpCost::FUSEMAX.cycles(), 6);
    }

    #[test]
    fn fusemax_pe_has_the_ten_entry_rf() {
        assert_eq!(PeKind::FuseMaxPe.rf_entries(), 10);
        assert!(PeKind::TpuMacc.rf_entries() < PeKind::FuseMaxPe.rf_entries());
    }

    #[test]
    fn display_is_nonempty() {
        for pe in [PeKind::TpuMacc, PeKind::FlatMacc, PeKind::FuseMaxPe, PeKind::Vector1D] {
            assert!(!pe.to_string().is_empty());
        }
        assert_eq!(PeOp::Macc.to_string(), "macc");
    }
}
