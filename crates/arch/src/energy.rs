//! Per-action energy table and energy breakdowns (the Accelergy substitute).
//!
//! The constants are 45 nm-flavored values chosen so the paper's
//! qualitative energy statements hold (FuseMax energy ≥ 95 % MACC compute;
//! baseline energy dominated by DRAM/global-buffer traffic plus QK/AV
//! compute). They are *not* calibrated against SPICE data — see DESIGN.md
//! §1.9 note 2.

use std::iter::Sum;
use std::ops::{Add, AddAssign};

/// Per-action energies in picojoules.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyTable {
    /// One fp16 MACC on a 2D-array PE.
    pub macc_pj: f64,
    /// One ALU op (add/mul/max) on a 1D vector PE.
    pub vector_op_pj: f64,
    /// One fp division (Xia et al.'s pipelined divider, scaled to 45 nm).
    pub div_pj: f64,
    /// Register-file access per byte.
    pub rf_pj_per_byte: f64,
    /// Global-buffer access per byte (16–22 MB SRAM).
    pub gbuf_pj_per_byte: f64,
    /// DRAM access per byte (HBM-class).
    pub dram_pj_per_byte: f64,
}

impl Default for EnergyTable {
    fn default() -> Self {
        Self {
            macc_pj: 2.2,
            vector_op_pj: 2.2,
            div_pj: 9.0,
            rf_pj_per_byte: 0.03,
            gbuf_pj_per_byte: 6.0,
            dram_pj_per_byte: 16.0,
        }
    }
}

impl EnergyTable {
    /// Energy of one exponential realized as `n` chained MACCs.
    pub fn exp_chained_pj(&self, maccs: u32) -> f64 {
        self.macc_pj * maccs as f64
    }
}

/// An energy total split by component, in picojoules.
///
/// # Example
///
/// ```
/// use fusemax_arch::EnergyBreakdown;
///
/// let e = EnergyBreakdown { macc_2d_pj: 90.0, dram_pj: 10.0, ..Default::default() };
/// assert_eq!(e.total_pj(), 100.0);
/// assert_eq!(e.compute_fraction(), 0.9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// 2D-array MACC (and MACC-realized exp) energy.
    pub macc_2d_pj: f64,
    /// 1D-array ALU/divider energy.
    pub vector_1d_pj: f64,
    /// Register-file traffic energy.
    pub rf_pj: f64,
    /// Global-buffer traffic energy.
    pub gbuf_pj: f64,
    /// DRAM traffic energy.
    pub dram_pj: f64,
}

impl EnergyBreakdown {
    /// Total energy.
    pub fn total_pj(&self) -> f64 {
        self.macc_2d_pj + self.vector_1d_pj + self.rf_pj + self.gbuf_pj + self.dram_pj
    }

    /// Fraction of total energy spent on compute (2D + 1D).
    pub fn compute_fraction(&self) -> f64 {
        let t = self.total_pj();
        if t == 0.0 {
            0.0
        } else {
            (self.macc_2d_pj + self.vector_1d_pj) / t
        }
    }

    /// Fraction of total energy spent moving data (RF + buffer + DRAM).
    pub fn movement_fraction(&self) -> f64 {
        let t = self.total_pj();
        if t == 0.0 {
            0.0
        } else {
            (self.rf_pj + self.gbuf_pj + self.dram_pj) / t
        }
    }

    /// Scales every component (e.g. by batch × heads × layers).
    pub fn scaled(&self, factor: f64) -> Self {
        Self {
            macc_2d_pj: self.macc_2d_pj * factor,
            vector_1d_pj: self.vector_1d_pj * factor,
            rf_pj: self.rf_pj * factor,
            gbuf_pj: self.gbuf_pj * factor,
            dram_pj: self.dram_pj * factor,
        }
    }
}

impl Add for EnergyBreakdown {
    type Output = EnergyBreakdown;

    fn add(self, rhs: EnergyBreakdown) -> EnergyBreakdown {
        EnergyBreakdown {
            macc_2d_pj: self.macc_2d_pj + rhs.macc_2d_pj,
            vector_1d_pj: self.vector_1d_pj + rhs.vector_1d_pj,
            rf_pj: self.rf_pj + rhs.rf_pj,
            gbuf_pj: self.gbuf_pj + rhs.gbuf_pj,
            dram_pj: self.dram_pj + rhs.dram_pj,
        }
    }
}

impl AddAssign for EnergyBreakdown {
    fn add_assign(&mut self, rhs: EnergyBreakdown) {
        *self = *self + rhs;
    }
}

impl Sum for EnergyBreakdown {
    fn sum<I: Iterator<Item = EnergyBreakdown>>(iter: I) -> EnergyBreakdown {
        iter.fold(EnergyBreakdown::default(), |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_order_sensibly() {
        let t = EnergyTable::default();
        // Data movement up the hierarchy costs strictly more per byte.
        assert!(t.rf_pj_per_byte < t.gbuf_pj_per_byte);
        assert!(t.gbuf_pj_per_byte < t.dram_pj_per_byte);
        // A divider costs more than a MACC.
        assert!(t.div_pj > t.macc_pj);
    }

    #[test]
    fn exp_as_six_maccs() {
        let t = EnergyTable::default();
        assert_eq!(t.exp_chained_pj(6), 6.0 * t.macc_pj);
    }

    #[test]
    fn breakdown_arithmetic() {
        let a = EnergyBreakdown { macc_2d_pj: 1.0, dram_pj: 2.0, ..Default::default() };
        let b = EnergyBreakdown { vector_1d_pj: 3.0, ..Default::default() };
        let mut c = a;
        c += b;
        assert_eq!(c.total_pj(), 6.0);
        let s: EnergyBreakdown = [a, b].into_iter().sum();
        assert_eq!(s.total_pj(), 6.0);
        assert_eq!(a.scaled(2.0).dram_pj, 4.0);
    }

    #[test]
    fn fractions_partition_unity() {
        let e = EnergyBreakdown {
            macc_2d_pj: 50.0,
            vector_1d_pj: 10.0,
            rf_pj: 5.0,
            gbuf_pj: 15.0,
            dram_pj: 20.0,
        };
        assert!((e.compute_fraction() + e.movement_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_breakdown_has_zero_fractions() {
        let e = EnergyBreakdown::default();
        assert_eq!(e.compute_fraction(), 0.0);
        assert_eq!(e.movement_fraction(), 0.0);
    }
}
