//! The extended-Einsum abstract syntax: index expressions, tensor
//! references, map/reduce expressions, Einsums, and cascades.

use crate::error::ParseError;
use crate::ops::{MapOp, ReduceOp, UnaryOp};
use crate::parse;
use std::fmt;

/// The rank name of an index variable: `m` ↔ rank `M`, `m1` ↔ rank `M1`.
///
/// This mirrors the paper's convention of using the same symbol for a rank
/// and its shape (§II-B).
///
/// # Example
///
/// ```
/// assert_eq!(fusemax_einsum::rank_of_var("m1"), "M1");
/// ```
pub fn rank_of_var(var: &str) -> String {
    var.to_uppercase()
}

/// The rank *family* of a (possibly partitioned) rank: `M1` and `M0` both
/// belong to family `M` (Einsums 39–40 partition `M` into `M1×M0`).
///
/// # Example
///
/// ```
/// assert_eq!(fusemax_einsum::family_of_rank("M0"), "M");
/// assert_eq!(fusemax_einsum::family_of_rank("P"), "P");
/// ```
pub fn family_of_rank(rank: &str) -> String {
    rank.trim_end_matches(|c: char| c.is_ascii_digit()).to_string()
}

/// Comparison operator in a filtering rank expression (§II-C3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `k <= bound`.
    Le,
    /// `k < bound`.
    Lt,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Le => "<=",
            CmpOp::Lt => "<",
        })
    }
}

/// The bound of a filtering rank expression: a variable plus an offset
/// (`k <= i`, `k <= i-1`) or a constant.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Bound {
    /// The bounding variable, if any.
    pub var: Option<String>,
    /// A constant offset added to the variable (or the bound itself).
    pub offset: i64,
}

impl fmt::Display for Bound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.var, self.offset) {
            (Some(v), 0) => write!(f, "{v}"),
            (Some(v), o) if o > 0 => write!(f, "{v}+{o}"),
            (Some(v), o) => write!(f, "{v}{o}"),
            (None, o) => write!(f, "{o}"),
        }
    }
}

/// One index position of a tensor reference.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum IndexExpr {
    /// A plain rank variable: `m`.
    Var(String),
    /// A shifted variable: `m1+1` (used by iterative ranks, Einsum 46).
    Shifted {
        /// The variable.
        var: String,
        /// The (non-negative) shift.
        offset: i64,
    },
    /// A fixed coordinate: `RM[0, p]` (Einsum 41's `m1: m1 = 0`).
    Const(i64),
    /// The extent of a rank used as a coordinate: `RNV[f, M1, p]`
    /// (Einsum 55 reads the final iterate).
    Extent(String),
    /// An affine partition `outer*|inner_rank| + inner`: `K[e, m1*M0+m0]`
    /// (Einsum 39). Declares that the underlying rank is split.
    Split {
        /// The outer (chunk) variable, e.g. `m1`.
        outer: String,
        /// The inner (offset) variable, e.g. `m0`.
        inner: String,
        /// The rank whose extent scales the outer variable, e.g. `M0`.
        inner_rank: String,
    },
    /// A filtered variable `k: k <= i` (§II-C3 prefix sums).
    Filtered {
        /// The filtered variable.
        var: String,
        /// The comparison.
        cmp: CmpOp,
        /// The bound.
        bound: Bound,
    },
}

impl IndexExpr {
    /// All variables mentioned by this index expression.
    pub fn vars(&self) -> Vec<&str> {
        match self {
            IndexExpr::Var(v) | IndexExpr::Shifted { var: v, .. } => vec![v],
            IndexExpr::Const(_) | IndexExpr::Extent(_) => vec![],
            IndexExpr::Split { outer, inner, .. } => vec![outer, inner],
            IndexExpr::Filtered { var, bound, .. } => {
                let mut vs = vec![var.as_str()];
                if let Some(b) = &bound.var {
                    vs.push(b);
                }
                vs
            }
        }
    }

    /// The rank name this index projects into, when derivable from the
    /// expression alone (`Var`/`Shifted`/`Filtered` project into the rank of
    /// their variable; `Split` projects into the family of the outer
    /// variable; `Extent(R)` projects into `R`'s rank).
    pub fn rank(&self) -> Option<String> {
        match self {
            IndexExpr::Var(v) | IndexExpr::Shifted { var: v, .. } => Some(rank_of_var(v)),
            IndexExpr::Filtered { var, .. } => Some(rank_of_var(var)),
            IndexExpr::Split { outer, .. } => Some(family_of_rank(&rank_of_var(outer))),
            IndexExpr::Extent(r) => Some(r.clone()),
            IndexExpr::Const(_) => None,
        }
    }
}

impl fmt::Display for IndexExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexExpr::Var(v) => write!(f, "{v}"),
            IndexExpr::Shifted { var, offset } if *offset >= 0 => write!(f, "{var}+{offset}"),
            IndexExpr::Shifted { var, offset } => write!(f, "{var}{offset}"),
            IndexExpr::Const(c) => write!(f, "{c}"),
            IndexExpr::Extent(r) => write!(f, "{r}"),
            IndexExpr::Split { outer, inner, inner_rank } => {
                write!(f, "{outer}*{inner_rank}+{inner}")
            }
            IndexExpr::Filtered { var, cmp, bound } => write!(f, "{var} : {var} {cmp} {bound}"),
        }
    }
}

/// A tensor name plus its index expressions: `QK[m,p]`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TensorRef {
    /// The tensor's name.
    pub name: String,
    /// Index expressions, one per rank.
    pub indices: Vec<IndexExpr>,
}

impl TensorRef {
    /// Creates a reference from a name and indices.
    pub fn new(name: impl Into<String>, indices: Vec<IndexExpr>) -> Self {
        Self { name: name.into(), indices }
    }

    /// Parses a reference such as `Q[e,p]`.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] for malformed input.
    pub fn parse(text: &str) -> Result<Self, ParseError> {
        parse::parse_tensor_ref(text)
    }

    /// All variables mentioned in the indices.
    pub fn vars(&self) -> Vec<&str> {
        self.indices.iter().flat_map(|i| i.vars()).collect()
    }

    /// `true` when the reference indexes rank variable `var` anywhere.
    pub fn mentions_var(&self, var: &str) -> bool {
        self.vars().contains(&var)
    }
}

impl fmt::Display for TensorRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)?;
        if !self.indices.is_empty() {
            write!(f, "[")?;
            for (i, idx) in self.indices.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{idx}")?;
            }
            write!(f, "]")?;
        }
        Ok(())
    }
}

/// The right-hand side of an Einsum: a tree of map actions, unary operators,
/// tensor references, and literals.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A tensor operand.
    Tensor(TensorRef),
    /// A scalar literal (`0`, `-inf`).
    Literal(f64),
    /// A binary map action.
    Map {
        /// The compute operator.
        op: MapOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// A unary operator application.
    Unary {
        /// The operator.
        op: UnaryOp,
        /// The operand.
        arg: Box<Expr>,
    },
}

impl Expr {
    /// All tensor references in the expression, left to right.
    pub fn tensor_refs(&self) -> Vec<&TensorRef> {
        match self {
            Expr::Tensor(t) => vec![t],
            Expr::Literal(_) => vec![],
            Expr::Map { lhs, rhs, .. } => {
                let mut v = lhs.tensor_refs();
                v.extend(rhs.tensor_refs());
                v
            }
            Expr::Unary { arg, .. } => arg.tensor_refs(),
        }
    }

    /// All index variables used anywhere in the expression.
    pub fn vars(&self) -> Vec<&str> {
        self.tensor_refs().into_iter().flat_map(|t| t.vars()).collect()
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Tensor(t) => write!(f, "{t}"),
            Expr::Literal(x) if *x == f64::NEG_INFINITY => write!(f, "-inf"),
            Expr::Literal(x) => write!(f, "{x}"),
            Expr::Map { op: MapOp::Max, lhs, rhs } => write!(f, "max({lhs}, {rhs})"),
            Expr::Map { op: MapOp::Min, lhs, rhs } => write!(f, "min({lhs}, {rhs})"),
            Expr::Map { op: MapOp::SubThenExp, lhs, rhs } => write!(f, "exp({lhs} - {rhs})"),
            Expr::Map { op, lhs, rhs } => write!(f, "({lhs} {op} {rhs})"),
            Expr::Unary { op: UnaryOp::Neg, arg } => write!(f, "-({arg})"),
            Expr::Unary { op, arg } => write!(f, "{op}({arg})"),
        }
    }
}

/// A single (extended) Einsum: `output = expr`, with reduce actions.
///
/// Reductions over right-hand-side variables that do not appear on the
/// left-hand side default to `+(∪)` per the paper's shorthand; `max`
/// reductions are written explicitly (`GM[p] = max[m](QK[m,p])`).
#[derive(Debug, Clone, PartialEq)]
pub struct Einsum {
    /// The output tensor reference.
    pub output: TensorRef,
    /// The right-hand side.
    pub expr: Expr,
    /// Explicit (non-default) reductions: `(variable, operator)` pairs.
    pub reductions: Vec<(String, ReduceOp)>,
}

impl Einsum {
    /// Parses a single Einsum line, e.g. `QK[m,p] = Q[e,p] * K[e,m]`.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] for malformed input.
    pub fn parse(text: &str) -> Result<Self, ParseError> {
        parse::parse_einsum(text)
    }

    /// Variables appearing in the output indices.
    pub fn output_vars(&self) -> Vec<&str> {
        self.output.vars()
    }

    /// The full reduction list: explicit reductions first, then the inferred
    /// default `+` reductions (RHS variables absent from the output and not
    /// explicitly reduced), in first-appearance order.
    pub fn all_reductions(&self) -> Vec<(String, ReduceOp)> {
        let mut out = self.reductions.clone();
        let output_vars = self.output_vars();
        for v in self.expr.vars() {
            let known = output_vars.contains(&v) || out.iter().any(|(rv, _)| rv == v);
            if !known {
                out.push((v.to_string(), ReduceOp::Add));
            }
        }
        out
    }

    /// The iteration-space variables: output variables plus reductions.
    pub fn iteration_vars(&self) -> Vec<String> {
        let mut vars: Vec<String> = Vec::new();
        for v in self.output_vars() {
            if !vars.iter().any(|x| x == v) {
                vars.push(v.to_string());
            }
        }
        for (v, _) in self.all_reductions() {
            if !vars.contains(&v) {
                vars.push(v);
            }
        }
        vars
    }

    /// Input tensor references (the RHS operands).
    pub fn inputs(&self) -> Vec<&TensorRef> {
        self.expr.tensor_refs()
    }
}

impl fmt::Display for Einsum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} = ", self.output)?;
        if let Some((var, op)) = self.reductions.first() {
            // Render an explicit leading reduction in `max[m](...)` form.
            if self.reductions.len() == 1 && *op != ReduceOp::Add {
                return write!(f, "{op}[{var}]({})", self.expr);
            }
        }
        write!(f, "{}", self.expr)
    }
}

/// A cascade of Einsums (§II-C5): initialization, an optionally-iterative
/// body, and a finale evaluated after the iteration completes.
#[derive(Debug, Clone, PartialEq)]
pub struct Cascade {
    /// The cascade's name.
    pub name: String,
    /// Declared input tensors with their rank variables (e.g. `Q[e,p]`).
    pub inputs: Vec<TensorRef>,
    /// Initialization Einsums, evaluated once before the body.
    pub inits: Vec<Einsum>,
    /// The body. With [`Cascade::loop_var`] set these are the paper's
    /// *extended Einsums*, re-evaluated per iteration.
    pub body: Vec<Einsum>,
    /// The generative/iterative rank variable, if any. The stopping
    /// condition is the paper's `⋄ : var ≥ extent(rank(var))`.
    pub loop_var: Option<String>,
    /// Einsums evaluated once after the loop (e.g. Cascade 5's Einsum 55).
    pub finale: Vec<Einsum>,
}

impl Cascade {
    /// Parses the crate's cascade text format. See the crate-level example;
    /// sections are `name:`, `inputs:`, `init:`, `loop <var>:`, `body:`, and
    /// `finally:`. Einsums before any section marker belong to the body.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] describing the offending line.
    pub fn parse(text: &str) -> Result<Self, ParseError> {
        parse::parse_cascade(text)
    }

    /// All Einsums in evaluation order (inits, body, finale).
    pub fn all_einsums(&self) -> impl Iterator<Item = &Einsum> {
        self.inits.iter().chain(self.body.iter()).chain(self.finale.iter())
    }

    /// The Einsum producing `tensor`, if any (the *last* producer wins,
    /// matching evaluation order).
    pub fn producer_of(&self, tensor: &str) -> Option<&Einsum> {
        self.all_einsums().filter(|e| e.output.name == tensor).last()
    }

    /// Names of declared input tensors.
    pub fn input_names(&self) -> Vec<&str> {
        self.inputs.iter().map(|t| t.name.as_str()).collect()
    }

    /// `true` when the cascade has a generative/iterative rank.
    pub fn is_iterative(&self) -> bool {
        self.loop_var.is_some()
    }

    /// Tensors that are read somewhere but never produced by any Einsum
    /// and not declared as inputs — almost always a typo in the cascade.
    ///
    /// Iterative cascades may read a running tensor "before" its producing
    /// Einsum in body order (the value comes from the previous iteration),
    /// so this check is order-insensitive by design.
    ///
    /// # Example
    ///
    /// ```
    /// use fusemax_einsum::Cascade;
    ///
    /// let c = Cascade::parse("inputs: A[k]\nZ = A[k] * W[k]\n")?;
    /// assert_eq!(c.undefined_reads(), vec!["W".to_string()]);
    /// # Ok::<(), fusemax_einsum::ParseError>(())
    /// ```
    pub fn undefined_reads(&self) -> Vec<String> {
        let mut defined: Vec<&str> = self.inputs.iter().map(|t| t.name.as_str()).collect();
        defined.extend(self.all_einsums().map(|e| e.output.name.as_str()));
        let mut missing: Vec<String> = Vec::new();
        for einsum in self.all_einsums() {
            for input in einsum.inputs() {
                if !defined.contains(&input.name.as_str()) && !missing.contains(&input.name) {
                    missing.push(input.name.clone());
                }
            }
        }
        missing.sort();
        missing
    }
}

impl fmt::Display for Cascade {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "name: {}", self.name)?;
        if !self.inputs.is_empty() {
            write!(f, "inputs: ")?;
            for (i, t) in self.inputs.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{t}")?;
            }
            writeln!(f)?;
        }
        if !self.inits.is_empty() {
            writeln!(f, "init:")?;
            for e in &self.inits {
                writeln!(f, "  {e}")?;
            }
        }
        match &self.loop_var {
            Some(v) => writeln!(f, "loop {v}:")?,
            None => writeln!(f, "body:")?,
        }
        for e in &self.body {
            writeln!(f, "  {e}")?;
        }
        if !self.finale.is_empty() {
            writeln!(f, "finally:")?;
            for e in &self.finale {
                writeln!(f, "  {e}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_naming() {
        assert_eq!(rank_of_var("m"), "M");
        assert_eq!(rank_of_var("m0"), "M0");
        assert_eq!(family_of_rank("M1"), "M");
        assert_eq!(family_of_rank("P0"), "P");
        assert_eq!(family_of_rank("E"), "E");
    }

    #[test]
    fn index_expr_vars_and_ranks() {
        let e =
            IndexExpr::Split { outer: "m1".into(), inner: "m0".into(), inner_rank: "M0".into() };
        assert_eq!(e.vars(), vec!["m1", "m0"]);
        assert_eq!(e.rank().unwrap(), "M");

        let f = IndexExpr::Filtered {
            var: "k".into(),
            cmp: CmpOp::Le,
            bound: Bound { var: Some("i".into()), offset: -1 },
        };
        assert_eq!(f.vars(), vec!["k", "i"]);
        assert_eq!(f.rank().unwrap(), "K");

        assert_eq!(IndexExpr::Const(0).rank(), None);
        assert_eq!(IndexExpr::Extent("M1".into()).rank().unwrap(), "M1");
    }

    #[test]
    fn einsum_reduction_inference() {
        let e = Einsum::parse("Z[m,n] = A[k,m] * B[k,n]").unwrap();
        assert_eq!(e.all_reductions(), vec![("k".to_string(), ReduceOp::Add)]);
        assert_eq!(e.iteration_vars(), vec!["m", "n", "k"]);
    }

    #[test]
    fn explicit_max_reduction_not_duplicated() {
        let e = Einsum::parse("GM[p] = max[m](QK[m,p])").unwrap();
        assert_eq!(e.all_reductions(), vec![("m".to_string(), ReduceOp::Max)]);
    }

    #[test]
    fn display_round_trips_through_parser() {
        let lines = [
            "QK[m,p] = Q[e,p] * K[e,m]",
            "GM[p] = max[m](QK[m,p])",
            "SN[m,p] = exp(QK[m,p] - GM[p])",
            "A[m,p] = SN[m,p] / SD[p]",
            "RM[m1+1,p] = max(RM[m1,p], LM[m1,p])",
            "BK[e,m1,m0] = K[e,m1*M0+m0]",
            "AV[f,p] = RNV[f,M1,p] / RD[M1,p]",
        ];
        for line in lines {
            let e = Einsum::parse(line).unwrap();
            let shown = e.to_string();
            let reparsed = Einsum::parse(&shown).unwrap();
            assert_eq!(e, reparsed, "display `{shown}` did not round-trip for `{line}`");
        }
    }

    #[test]
    fn undefined_reads_finds_typos() {
        let c = Cascade::parse("inputs: A[k]\nY = A[k] * B[k]\nZ = Y * C[k]\n").unwrap();
        assert_eq!(c.undefined_reads(), vec!["B".to_string(), "C".to_string()]);

        let ok = crate::Cascade::parse("inputs: A[k], B[k]\nY = A[k] * B[k]\n").unwrap();
        assert!(ok.undefined_reads().is_empty());
    }

    #[test]
    fn running_tensors_are_not_undefined() {
        let c = Cascade::parse("inputs: A[i]\ninit:\n S[0] = 0\nloop i:\n S[i+1] = S[i] + A[i]\n")
            .unwrap();
        assert!(c.undefined_reads().is_empty());
    }

    #[test]
    fn cascade_accessors() {
        let c = Cascade::parse("name: demo\ninputs: A[k], B[k]\nY = A[k] * B[k]\nZ = Y * A[k]\n")
            .unwrap();
        assert_eq!(c.name, "demo");
        assert_eq!(c.input_names(), vec!["A", "B"]);
        assert!(!c.is_iterative());
        assert_eq!(c.all_einsums().count(), 2);
        assert_eq!(c.producer_of("Z").unwrap().output.name, "Z");
        assert!(c.producer_of("W").is_none());
    }
}
