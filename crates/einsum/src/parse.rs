//! A small recursive-descent parser for the cascade text format.
//!
//! The syntax mirrors the paper's shorthand (§II-C2): infix map actions,
//! inferred `+` reductions, explicit `max[m](...)` reductions, `exp(a - b)`
//! for `sub-then-exp`, affine splits `m1*M0+m0`, shifted indices `m1+1`,
//! extent coordinates `M1`, and filtered ranks `k : k <= i`.

use crate::ast::{Bound, Cascade, CmpOp, Einsum, Expr, IndexExpr, TensorRef};
use crate::error::ParseError;
use crate::ops::{MapOp, ReduceOp, UnaryOp};

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Int(i64),
    Float(f64),
    Symbol(char),
    Le, // <=
}

fn tokenize(text: &str) -> Result<Vec<Token>, ParseError> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
        } else if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            tokens.push(Token::Ident(chars[start..i].iter().collect()));
        } else if c.is_ascii_digit() {
            let start = i;
            let mut is_float = false;
            while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '.') {
                if chars[i] == '.' {
                    is_float = true;
                }
                i += 1;
            }
            // Scientific notation: 1e-3.
            if i < chars.len() && (chars[i] == 'e' || chars[i] == 'E') {
                let mut j = i + 1;
                if j < chars.len() && (chars[j] == '+' || chars[j] == '-') {
                    j += 1;
                }
                if j < chars.len() && chars[j].is_ascii_digit() {
                    is_float = true;
                    i = j;
                    while i < chars.len() && chars[i].is_ascii_digit() {
                        i += 1;
                    }
                }
            }
            let s: String = chars[start..i].iter().collect();
            if is_float {
                let v = s
                    .parse::<f64>()
                    .map_err(|_| ParseError::new(text, format!("bad float literal `{s}`")))?;
                tokens.push(Token::Float(v));
            } else {
                let v = s
                    .parse::<i64>()
                    .map_err(|_| ParseError::new(text, format!("bad integer literal `{s}`")))?;
                tokens.push(Token::Int(v));
            }
        } else if c == '<' && i + 1 < chars.len() && chars[i + 1] == '=' {
            tokens.push(Token::Le);
            i += 2;
        } else if "[](),=+-*/:<".contains(c) {
            tokens.push(Token::Symbol(c));
            i += 1;
        } else {
            return Err(ParseError::new(text, format!("unexpected character `{c}`")));
        }
    }
    Ok(tokens)
}

struct Parser<'a> {
    tokens: Vec<Token>,
    pos: usize,
    line: &'a str,
}

impl<'a> Parser<'a> {
    fn new(line: &'a str) -> Result<Self, ParseError> {
        Ok(Self { tokens: tokenize(line)?, pos: 0, line })
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError::new(self.line, message)
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_at(&self, off: usize) -> Option<&Token> {
        self.tokens.get(self.pos + off)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_symbol(&mut self, c: char) -> Result<(), ParseError> {
        match self.next() {
            Some(Token::Symbol(s)) if s == c => Ok(()),
            other => Err(self.err(format!("expected `{c}`, found {other:?}"))),
        }
    }

    fn eat_symbol(&mut self, c: char) -> bool {
        if matches!(self.peek(), Some(Token::Symbol(s)) if *s == c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    // ---- index expressions -------------------------------------------------

    fn parse_index_expr(&mut self) -> Result<IndexExpr, ParseError> {
        match self.next() {
            Some(Token::Int(c)) => Ok(IndexExpr::Const(c)),
            Some(Token::Ident(name)) => {
                let lowercase = name.chars().next().is_some_and(|c| c.is_lowercase());
                if !lowercase {
                    // Uppercase ident in index position: extent coordinate.
                    return Ok(IndexExpr::Extent(name));
                }
                // var [: filter] | var + int | var - int | var * RANK + var
                match self.peek() {
                    Some(Token::Symbol(':')) => {
                        self.next();
                        let v2 = self.expect_ident()?;
                        if v2 != name {
                            return Err(self.err(format!(
                                "filter must constrain the same variable (`{name}` vs `{v2}`)"
                            )));
                        }
                        let cmp = match self.next() {
                            Some(Token::Le) => CmpOp::Le,
                            Some(Token::Symbol('<')) => CmpOp::Lt,
                            other => {
                                return Err(self.err(format!(
                                    "expected `<=` or `<` in filter, found {other:?}"
                                )))
                            }
                        };
                        let bound = self.parse_bound()?;
                        Ok(IndexExpr::Filtered { var: name, cmp, bound })
                    }
                    Some(Token::Symbol('+')) => {
                        self.next();
                        match self.next() {
                            Some(Token::Int(o)) => Ok(IndexExpr::Shifted { var: name, offset: o }),
                            other => {
                                Err(self.err(format!("expected integer offset, found {other:?}")))
                            }
                        }
                    }
                    Some(Token::Symbol('-')) => {
                        self.next();
                        match self.next() {
                            Some(Token::Int(o)) => Ok(IndexExpr::Shifted { var: name, offset: -o }),
                            other => {
                                Err(self.err(format!("expected integer offset, found {other:?}")))
                            }
                        }
                    }
                    Some(Token::Symbol('*')) => {
                        self.next();
                        let inner_rank = self.expect_ident()?;
                        self.expect_symbol('+')?;
                        let inner = self.expect_ident()?;
                        Ok(IndexExpr::Split { outer: name, inner, inner_rank })
                    }
                    _ => Ok(IndexExpr::Var(name)),
                }
            }
            other => Err(self.err(format!("expected index expression, found {other:?}"))),
        }
    }

    fn parse_bound(&mut self) -> Result<Bound, ParseError> {
        match self.next() {
            Some(Token::Int(c)) => Ok(Bound { var: None, offset: c }),
            Some(Token::Ident(v)) => {
                let mut offset = 0;
                if self.eat_symbol('+') {
                    match self.next() {
                        Some(Token::Int(o)) => offset = o,
                        other => return Err(self.err(format!("expected offset, found {other:?}"))),
                    }
                } else if self.eat_symbol('-') {
                    match self.next() {
                        Some(Token::Int(o)) => offset = -o,
                        other => return Err(self.err(format!("expected offset, found {other:?}"))),
                    }
                }
                Ok(Bound { var: Some(v), offset })
            }
            other => Err(self.err(format!("expected bound, found {other:?}"))),
        }
    }

    fn parse_tensor_ref_inner(&mut self, name: String) -> Result<TensorRef, ParseError> {
        let mut indices = Vec::new();
        if self.eat_symbol('[') {
            loop {
                indices.push(self.parse_index_expr()?);
                if self.eat_symbol(']') {
                    break;
                }
                self.expect_symbol(',')?;
            }
        }
        Ok(TensorRef { name, indices })
    }

    // ---- expressions -------------------------------------------------------

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_term()?;
        loop {
            if self.eat_symbol('+') {
                let rhs = self.parse_term()?;
                lhs = Expr::Map { op: MapOp::Add, lhs: Box::new(lhs), rhs: Box::new(rhs) };
            } else if matches!(self.peek(), Some(Token::Symbol('-'))) {
                self.next();
                let rhs = self.parse_term()?;
                lhs = Expr::Map { op: MapOp::Sub, lhs: Box::new(lhs), rhs: Box::new(rhs) };
            } else {
                return Ok(lhs);
            }
        }
    }

    fn parse_term(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_unary()?;
        loop {
            if self.eat_symbol('*') {
                let rhs = self.parse_unary()?;
                lhs = Expr::Map { op: MapOp::Mul, lhs: Box::new(lhs), rhs: Box::new(rhs) };
            } else if self.eat_symbol('/') {
                let rhs = self.parse_unary()?;
                lhs = Expr::Map { op: MapOp::Div, lhs: Box::new(lhs), rhs: Box::new(rhs) };
            } else {
                return Ok(lhs);
            }
        }
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        if self.eat_symbol('-') {
            // `-inf` literal or negation.
            if matches!(self.peek(), Some(Token::Ident(s)) if s == "inf") {
                self.next();
                return Ok(Expr::Literal(f64::NEG_INFINITY));
            }
            let arg = self.parse_unary()?;
            return Ok(Expr::Unary { op: UnaryOp::Neg, arg: Box::new(arg) });
        }
        self.parse_atom()
    }

    fn parse_atom(&mut self) -> Result<Expr, ParseError> {
        match self.next() {
            Some(Token::Int(v)) => Ok(Expr::Literal(v as f64)),
            Some(Token::Float(v)) => Ok(Expr::Literal(v)),
            Some(Token::Symbol('(')) => {
                let e = self.parse_expr()?;
                self.expect_symbol(')')?;
                Ok(e)
            }
            Some(Token::Ident(name)) => match name.as_str() {
                "inf" => Ok(Expr::Literal(f64::INFINITY)),
                "exp" if matches!(self.peek(), Some(Token::Symbol('('))) => {
                    self.expect_symbol('(')?;
                    let inner = self.parse_expr()?;
                    self.expect_symbol(')')?;
                    // Canonicalize exp(a - b) to the paper's sub-then-exp.
                    if let Expr::Map { op: MapOp::Sub, lhs, rhs } = inner {
                        Ok(Expr::Map { op: MapOp::SubThenExp, lhs, rhs })
                    } else {
                        Ok(Expr::Unary { op: UnaryOp::Exp, arg: Box::new(inner) })
                    }
                }
                "recip" if matches!(self.peek(), Some(Token::Symbol('('))) => {
                    self.expect_symbol('(')?;
                    let inner = self.parse_expr()?;
                    self.expect_symbol(')')?;
                    Ok(Expr::Unary { op: UnaryOp::Recip, arg: Box::new(inner) })
                }
                "max" | "min" if matches!(self.peek(), Some(Token::Symbol('('))) => {
                    let op = if name == "max" { MapOp::Max } else { MapOp::Min };
                    self.expect_symbol('(')?;
                    let lhs = self.parse_expr()?;
                    self.expect_symbol(',')?;
                    let rhs = self.parse_expr()?;
                    self.expect_symbol(')')?;
                    Ok(Expr::Map { op, lhs: Box::new(lhs), rhs: Box::new(rhs) })
                }
                _ => Ok(Expr::Tensor(self.parse_tensor_ref_inner(name)?)),
            },
            other => Err(self.err(format!("expected expression, found {other:?}"))),
        }
    }

    // ---- einsums -----------------------------------------------------------

    fn parse_einsum(&mut self) -> Result<Einsum, ParseError> {
        let name = self.expect_ident()?;
        let output = self.parse_tensor_ref_inner(name)?;
        self.expect_symbol('=')?;

        // Optional explicit reduction wrapper: `max[m](...)`, `sum[k](...)`.
        if let (Some(Token::Ident(f)), Some(Token::Symbol('['))) = (self.peek(), self.peek_at(1)) {
            let op = match f.as_str() {
                "max" => Some(ReduceOp::Max),
                "min" => Some(ReduceOp::Min),
                "sum" => Some(ReduceOp::Add),
                _ => None,
            };
            if let Some(op) = op {
                let mut reductions: Vec<(String, ReduceOp)> = Vec::new();
                self.next(); // function name
                self.next(); // '['
                loop {
                    let v = self.expect_ident()?;
                    reductions.push((v, op));
                    if self.eat_symbol(']') {
                        break;
                    }
                    self.expect_symbol(',')?;
                }
                self.expect_symbol('(')?;
                let expr = self.parse_expr()?;
                self.expect_symbol(')')?;
                if !self.at_end() {
                    return Err(self.err("trailing tokens after reduction expression"));
                }
                return Ok(Einsum { output, expr, reductions });
            }
        }

        let expr = self.parse_expr()?;
        let reductions: Vec<(String, ReduceOp)> = Vec::new();
        if !self.at_end() {
            return Err(self.err("trailing tokens after expression"));
        }
        Ok(Einsum { output, expr, reductions })
    }
}

/// Parses one Einsum line.
pub(crate) fn parse_einsum(line: &str) -> Result<Einsum, ParseError> {
    Parser::new(line)?.parse_einsum()
}

/// Parses a tensor reference such as `Q[e,p]`.
pub(crate) fn parse_tensor_ref(text: &str) -> Result<TensorRef, ParseError> {
    let mut p = Parser::new(text)?;
    let name = p.expect_ident()?;
    let t = p.parse_tensor_ref_inner(name)?;
    if !p.at_end() {
        return Err(p.err("trailing tokens after tensor reference"));
    }
    Ok(t)
}

#[derive(PartialEq, Clone, Copy)]
enum Section {
    Init,
    Body,
    Finale,
}

/// Parses the cascade text format (see [`Cascade::parse`]).
pub(crate) fn parse_cascade(text: &str) -> Result<Cascade, ParseError> {
    let mut cascade = Cascade {
        name: "cascade".to_string(),
        inputs: Vec::new(),
        inits: Vec::new(),
        body: Vec::new(),
        loop_var: None,
        finale: Vec::new(),
    };
    let mut section = Section::Body;
    for raw in text.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("name:") {
            cascade.name = rest.trim().to_string();
            if cascade.name.is_empty() {
                return Err(ParseError::new(line, "empty cascade name"));
            }
        } else if let Some(rest) = line.strip_prefix("inputs:") {
            cascade.inputs = parse_input_list(rest)?;
        } else if line == "init:" {
            section = Section::Init;
        } else if line == "body:" {
            section = Section::Body;
        } else if line == "finally:" {
            section = Section::Finale;
        } else if let Some(rest) = line.strip_prefix("loop") {
            let var = rest.trim_end_matches(':').trim();
            if var.is_empty() || !var.chars().all(|c| c.is_alphanumeric() || c == '_') {
                return Err(ParseError::new(line, "expected `loop <var>:`"));
            }
            cascade.loop_var = Some(var.to_string());
            section = Section::Body;
        } else {
            let einsum = parse_einsum(line)?;
            match section {
                Section::Init => cascade.inits.push(einsum),
                Section::Body => cascade.body.push(einsum),
                Section::Finale => cascade.finale.push(einsum),
            }
        }
    }
    Ok(cascade)
}

fn parse_input_list(text: &str) -> Result<Vec<TensorRef>, ParseError> {
    let mut p = Parser::new(text)?;
    let mut out = Vec::new();
    while !p.at_end() {
        let name = p.expect_ident()?;
        out.push(p.parse_tensor_ref_inner(name)?);
        if !p.at_end() {
            p.expect_symbol(',')?;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::IndexExpr;

    #[test]
    fn tokenizes_all_symbol_kinds() {
        let toks = tokenize("Z[m1+1] = max(A[k], 1.5e-3) / 2 : k <= i").unwrap();
        assert!(toks.contains(&Token::Le));
        assert!(toks.contains(&Token::Float(1.5e-3)));
        assert!(toks.contains(&Token::Int(2)));
    }

    #[test]
    fn rejects_unknown_characters() {
        assert!(tokenize("Z = A @ B").is_err());
    }

    #[test]
    fn parses_gemm() {
        let e = parse_einsum("Z[m,n] = A[k,m] * B[k,n]").unwrap();
        assert_eq!(e.output.name, "Z");
        assert_eq!(e.output.indices.len(), 2);
        assert_eq!(e.inputs().len(), 2);
        assert!(e.reductions.is_empty());
    }

    #[test]
    fn parses_max_reduction() {
        let e = parse_einsum("GM[p] = max[m](QK[m,p])").unwrap();
        assert_eq!(e.reductions, vec![("m".to_string(), ReduceOp::Max)]);
    }

    #[test]
    fn parses_sub_then_exp() {
        let e = parse_einsum("SN[m,p] = exp(QK[m,p] - GM[p])").unwrap();
        assert!(matches!(e.expr, Expr::Map { op: MapOp::SubThenExp, .. }));
    }

    #[test]
    fn parses_plain_exp() {
        let e = parse_einsum("SN[m,p] = exp(QK[m,p])").unwrap();
        assert!(matches!(e.expr, Expr::Unary { op: UnaryOp::Exp, .. }));
    }

    #[test]
    fn parses_binary_max_map() {
        let e = parse_einsum("RM[m1+1,p] = max(RM[m1,p], LM[m1,p])").unwrap();
        assert!(matches!(e.expr, Expr::Map { op: MapOp::Max, .. }));
        assert_eq!(e.output.indices[0], IndexExpr::Shifted { var: "m1".into(), offset: 1 });
    }

    #[test]
    fn parses_split_index() {
        let e = parse_einsum("BK[e,m1,m0] = K[e,m1*M0+m0]").unwrap();
        let k = &e.inputs()[0];
        assert_eq!(
            k.indices[1],
            IndexExpr::Split { outer: "m1".into(), inner: "m0".into(), inner_rank: "M0".into() }
        );
    }

    #[test]
    fn parses_extent_and_const_indices() {
        let e = parse_einsum("AV[f,p] = RNV[f,M1,p] / RD[M1,p]").unwrap();
        let rnv = &e.inputs()[0];
        assert_eq!(rnv.indices[1], IndexExpr::Extent("M1".into()));

        let e = parse_einsum("RM[0,p] = -inf").unwrap();
        assert_eq!(e.output.indices[0], IndexExpr::Const(0));
        assert_eq!(e.expr, Expr::Literal(f64::NEG_INFINITY));
    }

    #[test]
    fn parses_filtered_index() {
        let e = parse_einsum("S[i+1] = A[k : k <= i]").unwrap();
        match &e.inputs()[0].indices[0] {
            IndexExpr::Filtered { var, cmp, bound } => {
                assert_eq!(var, "k");
                assert_eq!(*cmp, CmpOp::Le);
                assert_eq!(bound.var.as_deref(), Some("i"));
                assert_eq!(bound.offset, 0);
            }
            other => panic!("expected filter, got {other:?}"),
        }
    }

    #[test]
    fn parses_filtered_index_with_offset_bound() {
        let e = parse_einsum("S[i] = A[k : k <= i - 1]").unwrap();
        match &e.inputs()[0].indices[0] {
            IndexExpr::Filtered { bound, .. } => assert_eq!(bound.offset, -1),
            other => panic!("expected filter, got {other:?}"),
        }
    }

    #[test]
    fn filter_variable_mismatch_is_error() {
        assert!(parse_einsum("S[i] = A[k : j <= i]").is_err());
    }

    #[test]
    fn precedence_mul_before_add() {
        let e = parse_einsum("Z = A * B + C * D").unwrap();
        match &e.expr {
            Expr::Map { op: MapOp::Add, lhs, rhs } => {
                assert!(matches!(**lhs, Expr::Map { op: MapOp::Mul, .. }));
                assert!(matches!(**rhs, Expr::Map { op: MapOp::Mul, .. }));
            }
            other => panic!("bad tree {other:?}"),
        }
    }

    #[test]
    fn left_associative_division() {
        // RZ[i] * RY[i+1] / RY[i] must parse as (RZ * RY) / RY.
        let e = parse_einsum("Z = A * B / C").unwrap();
        match &e.expr {
            Expr::Map { op: MapOp::Div, lhs, .. } => {
                assert!(matches!(**lhs, Expr::Map { op: MapOp::Mul, .. }));
            }
            other => panic!("bad tree {other:?}"),
        }
    }

    #[test]
    fn trailing_tokens_are_rejected() {
        assert!(parse_einsum("Z = A B").is_err());
        assert!(parse_einsum("Z = A[k] extra").is_err());
    }

    #[test]
    fn parses_full_cascade_sections() {
        let c = parse_cascade(
            "# a comment\n\
             name: one_pass\n\
             inputs: Q[e,p], K[e,m], V[f,m]\n\
             init:\n\
             RM[0,p] = -inf\n\
             loop m1:\n\
             BQK[m1,m0,p] = Q[e,p] * BK[e,m1,m0]\n\
             finally:\n\
             AV[f,p] = RNV[f,M1,p] / RD[M1,p]\n",
        )
        .unwrap();
        assert_eq!(c.name, "one_pass");
        assert_eq!(c.inputs.len(), 3);
        assert_eq!(c.inits.len(), 1);
        assert_eq!(c.body.len(), 1);
        assert_eq!(c.finale.len(), 1);
        assert_eq!(c.loop_var.as_deref(), Some("m1"));
    }

    #[test]
    fn cascade_errors_carry_the_line() {
        let err = parse_cascade("name: x\nZ[m] = \n").unwrap_err();
        assert!(err.to_string().contains("Z[m]"));
        assert!(parse_cascade("loop :\n").is_err());
        assert!(parse_cascade("name:\n").is_err());
    }

    #[test]
    fn input_list_handles_brackets_with_commas() {
        let c = parse_cascade("inputs: A[k,m], B[k,n]\nZ[m,n] = A[k,m] * B[k,n]\n").unwrap();
        assert_eq!(c.inputs.len(), 2);
        assert_eq!(c.inputs[0].indices.len(), 2);
    }
}
