//! Dense evaluation of cascades of extended Einsums.
//!
//! The evaluator is the reproduction's *functional reference*: it executes a
//! cascade exactly as specified — walking every point of each Einsum's
//! iteration space, projecting into operand data spaces, applying map and
//! reduce actions, and unrolling iterative ranks — while counting every
//! scalar operation. It makes no scheduling decisions (§II-D: mapping and
//! binding are separate concerns, modeled in `fusemax-model`).

use crate::ast::{family_of_rank, rank_of_var, Bound, Cascade, CmpOp, Einsum, Expr, IndexExpr};
use crate::error::EinsumError;
use crate::ops::{OpCounts, ReduceOp};
use fusemax_tensor::{Shape, Tensor};
use std::collections::{BTreeMap, HashMap};

/// Evaluates cascades of extended Einsums over dense `f64` tensors.
///
/// # Example
///
/// ```
/// use fusemax_einsum::{Cascade, Evaluator};
/// use fusemax_tensor::{Shape, Tensor};
///
/// // Iterative prefix sum (paper Einsums 3–4): S[i+1] = S[i] + A[i].
/// let cascade = Cascade::parse(
///     "name: prefix_sum\n\
///      inputs: A[i]\n\
///      init:\n  S[0] = 0\n\
///      loop i:\n  S[i+1] = S[i] + A[i]\n",
/// )?;
/// let a = Tensor::from_vec(Shape::of(&[("I", 4)]), vec![1.0, 2.0, 3.0, 4.0])?;
/// let result = Evaluator::new().evaluate(&cascade, &[("A", a)], &[])?;
/// let s = result.tensor("S")?;
/// assert_eq!(s.data(), &[0.0, 1.0, 3.0, 6.0, 10.0]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Evaluator {
    _private: (),
}

/// The outcome of evaluating a cascade: all produced tensors plus measured
/// operation counts.
#[derive(Debug, Clone)]
pub struct EvalResult {
    tensors: BTreeMap<String, Tensor<f64>>,
    per_einsum: BTreeMap<String, OpCounts>,
    total: OpCounts,
    extents: BTreeMap<String, usize>,
}

impl EvalResult {
    /// The tensor named `name` (an input or any produced intermediate).
    ///
    /// # Errors
    ///
    /// Returns [`EinsumError::UnknownTensor`] when absent.
    pub fn tensor(&self, name: &str) -> Result<&Tensor<f64>, EinsumError> {
        self.tensors.get(name).ok_or_else(|| EinsumError::UnknownTensor { name: name.into() })
    }

    /// All tensors by name.
    pub fn tensors(&self) -> &BTreeMap<String, Tensor<f64>> {
        &self.tensors
    }

    /// Consumes the result, returning the tensor environment.
    pub fn into_tensors(self) -> BTreeMap<String, Tensor<f64>> {
        self.tensors
    }

    /// Measured operation counts for the Einsum(s) producing `name`,
    /// accumulated over all iterations.
    pub fn counts_for(&self, name: &str) -> Option<OpCounts> {
        self.per_einsum.get(name).copied()
    }

    /// Per-output-tensor operation counts.
    pub fn per_einsum_counts(&self) -> &BTreeMap<String, OpCounts> {
        &self.per_einsum
    }

    /// Total operation counts for the whole cascade.
    pub fn total_counts(&self) -> OpCounts {
        self.total
    }

    /// The resolved extent of a rank (explicit, bound from inputs, or
    /// inferred from splits).
    pub fn extent(&self, rank: &str) -> Option<usize> {
        self.extents.get(rank).copied()
    }
}

impl Evaluator {
    /// Creates an evaluator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Evaluates `cascade` on the given inputs.
    ///
    /// `shapes` supplies extents that cannot be derived from the inputs
    /// (e.g. the tile size `M0` for Cascade 5); extents of partitioned
    /// counterparts (`M1`) are inferred when the family extent is known.
    ///
    /// # Errors
    ///
    /// Returns an error when a tensor is read before definition, rank
    /// extents conflict, or an extent cannot be resolved.
    pub fn evaluate(
        &self,
        cascade: &Cascade,
        inputs: &[(&str, Tensor<f64>)],
        shapes: &[(&str, usize)],
    ) -> Result<EvalResult, EinsumError> {
        let mut extents: BTreeMap<String, usize> = BTreeMap::new();
        for (rank, ext) in shapes {
            extents.insert((*rank).to_string(), *ext);
        }
        bind_input_extents(cascade, inputs, &mut extents)?;
        infer_split_extents(cascade, &mut extents)?;

        let mut env: BTreeMap<String, Tensor<f64>> = BTreeMap::new();
        for (name, tensor) in inputs {
            env.insert((*name).to_string(), tensor.clone());
        }

        let out_shapes = output_shapes(cascade, &extents, &env)?;
        for (name, shape) in &out_shapes {
            env.entry(name.clone()).or_insert_with(|| Tensor::zeros(shape.clone()));
        }

        let mut per_einsum: BTreeMap<String, OpCounts> = BTreeMap::new();
        let mut total = OpCounts::default();
        let mut run = |einsum: &Einsum,
                       binding: &HashMap<String, usize>,
                       env: &mut BTreeMap<String, Tensor<f64>>|
         -> Result<(), EinsumError> {
            let counts = eval_einsum(einsum, binding, env, &extents)?;
            *per_einsum.entry(einsum.output.name.clone()).or_default() += counts;
            total += counts;
            Ok(())
        };

        let empty = HashMap::new();
        for einsum in &cascade.inits {
            run(einsum, &empty, &mut env)?;
        }
        if let Some(loop_var) = &cascade.loop_var {
            let rank = rank_of_var(loop_var);
            let end = *extents.get(&rank).ok_or_else(|| EinsumError::UnknownRank {
                rank: rank.clone(),
                context: format!("iterative rank of loop variable `{loop_var}`"),
            })?;
            // The paper's stopping condition: ⋄ : loop_var ≥ extent.
            for i in 0..end {
                let mut binding = HashMap::new();
                binding.insert(loop_var.clone(), i);
                for einsum in &cascade.body {
                    run(einsum, &binding, &mut env)?;
                }
            }
        } else {
            for einsum in &cascade.body {
                run(einsum, &empty, &mut env)?;
            }
        }
        for einsum in &cascade.finale {
            run(einsum, &empty, &mut env)?;
        }

        Ok(EvalResult { tensors: env, per_einsum, total, extents })
    }
}

/// Binds rank extents from the supplied input tensors using the cascade's
/// `inputs:` declarations.
fn bind_input_extents(
    cascade: &Cascade,
    inputs: &[(&str, Tensor<f64>)],
    extents: &mut BTreeMap<String, usize>,
) -> Result<(), EinsumError> {
    for decl in &cascade.inputs {
        let Some((_, tensor)) = inputs.iter().find(|(n, _)| *n == decl.name) else {
            return Err(EinsumError::UnknownTensor { name: decl.name.clone() });
        };
        if tensor.shape().num_ranks() != decl.indices.len() {
            return Err(EinsumError::ArityMismatch {
                tensor: decl.name.clone(),
                got: tensor.shape().num_ranks(),
                expected: decl.indices.len(),
            });
        }
        for (idx, rank_dim) in decl.indices.iter().zip(tensor.shape().ranks()) {
            let IndexExpr::Var(v) = idx else {
                return Err(EinsumError::Unsupported {
                    detail: format!("input declaration `{decl}` must use plain rank variables"),
                });
            };
            let rank = rank_of_var(v);
            let ext = rank_dim.extent();
            if let Some(&prev) = extents.get(&rank) {
                if prev != ext {
                    return Err(EinsumError::ExtentMismatch {
                        rank,
                        got: ext,
                        expected: prev,
                        context: format!("input `{}`", decl.name),
                    });
                }
            } else {
                extents.insert(rank, ext);
            }
        }
    }
    Ok(())
}

/// Resolves split-rank extents: for each `outer*INNER+inner` expression, the
/// family extent must equal `extent(outer_rank) × extent(inner_rank)`;
/// unknown pieces are inferred when the other two are known.
fn infer_split_extents(
    cascade: &Cascade,
    extents: &mut BTreeMap<String, usize>,
) -> Result<(), EinsumError> {
    let mut splits: Vec<(String, String, String)> = Vec::new(); // (family, outer_rank, inner_rank)
    for einsum in cascade.all_einsums() {
        for tref in einsum.inputs().into_iter().chain([&einsum.output]) {
            for idx in &tref.indices {
                if let IndexExpr::Split { outer, inner_rank, .. } = idx {
                    let outer_rank = rank_of_var(outer);
                    let family = family_of_rank(&outer_rank);
                    splits.push((family, outer_rank, inner_rank.clone()));
                }
            }
        }
    }
    // Fixpoint over the (tiny) split set.
    for _ in 0..=splits.len() {
        for (family, outer, inner) in &splits {
            let f = extents.get(family).copied();
            let o = extents.get(outer).copied();
            let i = extents.get(inner).copied();
            match (f, o, i) {
                (Some(f), Some(o), Some(i)) if o * i != f => {
                    return Err(EinsumError::ExtentMismatch {
                        rank: family.clone(),
                        got: o * i,
                        expected: f,
                        context: format!("split {outer}×{inner}"),
                    });
                }
                (Some(_), Some(_), Some(_)) => {}
                (Some(f), None, Some(i)) => {
                    if f % i != 0 {
                        return Err(EinsumError::ExtentMismatch {
                            rank: family.clone(),
                            got: f,
                            expected: (f / i) * i,
                            context: format!("{family} not divisible by {inner}={i}"),
                        });
                    }
                    extents.insert(outer.clone(), f / i);
                }
                (Some(f), Some(o), None) => {
                    if f % o != 0 {
                        return Err(EinsumError::ExtentMismatch {
                            rank: family.clone(),
                            got: f,
                            expected: (f / o) * o,
                            context: format!("{family} not divisible by {outer}={o}"),
                        });
                    }
                    extents.insert(inner.clone(), f / o);
                }
                (None, Some(o), Some(i)) => {
                    extents.insert(family.clone(), o * i);
                }
                _ => {}
            }
        }
    }
    Ok(())
}

/// Computes the allocation shape of every produced tensor by taking, per
/// index position, the maximum coordinate requirement over all appearances.
fn output_shapes(
    cascade: &Cascade,
    extents: &BTreeMap<String, usize>,
    env: &BTreeMap<String, Tensor<f64>>,
) -> Result<BTreeMap<String, Shape>, EinsumError> {
    // name -> per-position (rank name candidate, required extent)
    let mut reqs: BTreeMap<String, Vec<(Option<String>, usize)>> = BTreeMap::new();
    let mut visit = |tref: &crate::ast::TensorRef| -> Result<(), EinsumError> {
        if env.contains_key(&tref.name) {
            return Ok(()); // inputs are pre-allocated
        }
        let entry =
            reqs.entry(tref.name.clone()).or_insert_with(|| vec![(None, 0); tref.indices.len()]);
        if entry.len() != tref.indices.len() {
            return Err(EinsumError::ArityMismatch {
                tensor: tref.name.clone(),
                got: tref.indices.len(),
                expected: entry.len(),
            });
        }
        for (pos, idx) in tref.indices.iter().enumerate() {
            let (name, req) = index_requirement(idx, extents)?;
            if let Some(n) = name {
                if entry[pos].0.is_none() {
                    entry[pos].0 = Some(n);
                }
            }
            entry[pos].1 = entry[pos].1.max(req);
        }
        Ok(())
    };
    for einsum in cascade.all_einsums() {
        visit(&einsum.output)?;
        for input in einsum.inputs() {
            visit(input)?;
        }
    }
    let mut out = BTreeMap::new();
    for (name, positions) in reqs {
        let mut dims: Vec<(String, usize)> = Vec::with_capacity(positions.len());
        for (pos, (rank, req)) in positions.into_iter().enumerate() {
            let rank = rank.unwrap_or_else(|| format!("D{pos}"));
            // Duplicate rank names within one tensor (e.g. an output indexed
            // by both `m1` and `m1+1` across Einsums) keep the larger extent
            // and get disambiguated positionally.
            let unique =
                if dims.iter().any(|(r, _)| *r == rank) { format!("{rank}@{pos}") } else { rank };
            dims.push((unique, req));
        }
        let dims_ref: Vec<(&str, usize)> = dims.iter().map(|(r, e)| (r.as_str(), *e)).collect();
        out.insert(name, Shape::of(&dims_ref));
    }
    Ok(out)
}

/// The (rank name, minimum extent) demanded by one index expression.
fn index_requirement(
    idx: &IndexExpr,
    extents: &BTreeMap<String, usize>,
) -> Result<(Option<String>, usize), EinsumError> {
    let get = |rank: &str, ctx: &str| -> Result<usize, EinsumError> {
        extents.get(rank).copied().ok_or_else(|| EinsumError::UnknownRank {
            rank: rank.to_string(),
            context: ctx.to_string(),
        })
    };
    match idx {
        IndexExpr::Var(v) => {
            let rank = rank_of_var(v);
            let e = get(&rank, "plain index")?;
            Ok((Some(rank), e))
        }
        IndexExpr::Shifted { var, offset } => {
            let rank = rank_of_var(var);
            let e = get(&rank, "shifted index")?;
            let req = (e as i64 + offset.max(&0)).max(0) as usize;
            Ok((Some(rank), req))
        }
        IndexExpr::Const(c) => Ok((None, (*c as usize) + 1)),
        IndexExpr::Extent(r) => {
            let e = get(r, "extent coordinate")?;
            Ok((Some(r.clone()), e + 1))
        }
        IndexExpr::Split { outer, inner, inner_rank } => {
            let outer_rank = rank_of_var(outer);
            let family = family_of_rank(&outer_rank);
            let o = get(&outer_rank, "split outer")?;
            let i = get(inner_rank, "split inner")?;
            let _ = rank_of_var(inner);
            Ok((Some(family), o * i))
        }
        IndexExpr::Filtered { var, .. } => {
            let rank = rank_of_var(var);
            let e = get(&rank, "filtered index")?;
            Ok((Some(rank), e))
        }
    }
}

/// Evaluates one Einsum under `binding` (the iterative-rank binding, if
/// any), writing results into `env`.
fn eval_einsum(
    einsum: &Einsum,
    binding: &HashMap<String, usize>,
    env: &mut BTreeMap<String, Tensor<f64>>,
    extents: &BTreeMap<String, usize>,
) -> Result<OpCounts, EinsumError> {
    let mut counts = OpCounts::default();

    // Free output variables (not bound by the loop).
    let out_vars: Vec<String> = einsum
        .output_vars()
        .iter()
        .filter(|v| !binding.contains_key(**v))
        .map(|v| v.to_string())
        .collect();
    let reductions: Vec<(String, ReduceOp)> =
        einsum.all_reductions().into_iter().filter(|(v, _)| !binding.contains_key(v)).collect();

    let var_extent = |v: &str| -> Result<usize, EinsumError> {
        let rank = rank_of_var(v);
        extents.get(&rank).copied().ok_or_else(|| EinsumError::UnknownRank {
            rank,
            context: format!("iteration variable `{v}` in `{einsum}`"),
        })
    };

    // Collect filter constraints: var -> (cmp, bound) list.
    let mut filters: HashMap<String, Vec<(CmpOp, Bound)>> = HashMap::new();
    for tref in einsum.inputs() {
        for idx in &tref.indices {
            if let IndexExpr::Filtered { var, cmp, bound } = idx {
                filters.entry(var.clone()).or_default().push((*cmp, bound.clone()));
            }
        }
    }

    // Capture the output tensor separately so expression reads can borrow
    // the rest of the environment; the cascades never read-and-write the
    // same coordinates within one Einsum, but iterative Einsums (e.g.
    // RM[m1+1] = max(RM[m1], …)) do read earlier coordinates of the output.
    let mut output = env
        .remove(&einsum.output.name)
        .ok_or_else(|| EinsumError::UnknownTensor { name: einsum.output.name.clone() })?;
    // Re-insert a clone for self-referential reads.
    env.insert(einsum.output.name.clone(), output.clone());

    let mut assignment: HashMap<String, usize> = binding.clone();
    let result = walk_outputs(
        einsum,
        &out_vars,
        0,
        &mut assignment,
        &reductions,
        &filters,
        env,
        extents,
        &var_extent,
        &mut output,
        &mut counts,
    );
    // Publish the updated output tensor.
    env.insert(einsum.output.name.clone(), output);
    result?;
    Ok(counts)
}

/// Recursively enumerates the free output coordinates.
#[allow(clippy::too_many_arguments)]
fn walk_outputs(
    einsum: &Einsum,
    out_vars: &[String],
    depth: usize,
    assignment: &mut HashMap<String, usize>,
    reductions: &[(String, ReduceOp)],
    filters: &HashMap<String, Vec<(CmpOp, Bound)>>,
    env: &BTreeMap<String, Tensor<f64>>,
    extents: &BTreeMap<String, usize>,
    var_extent: &dyn Fn(&str) -> Result<usize, EinsumError>,
    output: &mut Tensor<f64>,
    counts: &mut OpCounts,
) -> Result<(), EinsumError> {
    if depth == out_vars.len() {
        let value = reduce_value(
            einsum, reductions, 0, assignment, filters, env, extents, var_extent, counts,
        )?;
        let coords = resolve_coords(&einsum.output.indices, assignment, extents, einsum)?;
        output.try_set(&coords, value).map_err(|e| EinsumError::Unsupported {
            detail: format!("output write failed for `{einsum}`: {e}"),
        })?;
        return Ok(());
    }
    let var = &out_vars[depth];
    let ext = var_extent(var)?;
    for c in 0..ext {
        assignment.insert(var.clone(), c);
        walk_outputs(
            einsum,
            out_vars,
            depth + 1,
            assignment,
            reductions,
            filters,
            env,
            extents,
            var_extent,
            output,
            counts,
        )?;
    }
    assignment.remove(var);
    Ok(())
}

/// Recursively folds the reduction variables (nested, so mixed reduce
/// operators compose correctly), evaluating the expression at the leaves.
#[allow(clippy::too_many_arguments)]
fn reduce_value(
    einsum: &Einsum,
    reductions: &[(String, ReduceOp)],
    depth: usize,
    assignment: &mut HashMap<String, usize>,
    filters: &HashMap<String, Vec<(CmpOp, Bound)>>,
    env: &BTreeMap<String, Tensor<f64>>,
    extents: &BTreeMap<String, usize>,
    var_extent: &dyn Fn(&str) -> Result<usize, EinsumError>,
    counts: &mut OpCounts,
) -> Result<f64, EinsumError> {
    if depth == reductions.len() {
        return eval_expr(&einsum.expr, assignment, env, extents, einsum, counts);
    }
    let (var, op) = &reductions[depth];
    let mut hi = var_extent(var)? as i64 - 1; // inclusive upper bound
    if let Some(constraints) = filters.get(var) {
        for (cmp, bound) in constraints {
            let b = match &bound.var {
                Some(v) => {
                    let val = *assignment.get(v).ok_or_else(|| EinsumError::Unsupported {
                        detail: format!("filter bound `{v}` unbound in `{einsum}`"),
                    })? as i64;
                    val + bound.offset
                }
                None => bound.offset,
            };
            let limit = match cmp {
                CmpOp::Le => b,
                CmpOp::Lt => b - 1,
            };
            hi = hi.min(limit);
        }
    }
    let mut acc = op.identity();
    let mut c = 0i64;
    while c <= hi {
        assignment.insert(var.clone(), c as usize);
        let v = reduce_value(
            einsum,
            reductions,
            depth + 1,
            assignment,
            filters,
            env,
            extents,
            var_extent,
            counts,
        )?;
        acc = op.combine(acc, v, counts);
        c += 1;
    }
    assignment.remove(var);
    Ok(acc)
}

/// Evaluates the expression tree at one iteration-space point.
fn eval_expr(
    expr: &Expr,
    assignment: &HashMap<String, usize>,
    env: &BTreeMap<String, Tensor<f64>>,
    extents: &BTreeMap<String, usize>,
    einsum: &Einsum,
    counts: &mut OpCounts,
) -> Result<f64, EinsumError> {
    match expr {
        Expr::Literal(v) => Ok(*v),
        Expr::Tensor(tref) => {
            let tensor = env
                .get(&tref.name)
                .ok_or_else(|| EinsumError::UnknownTensor { name: tref.name.clone() })?;
            let coords = resolve_coords(&tref.indices, assignment, extents, einsum)?;
            tensor.try_get(&coords).map_err(|e| EinsumError::Unsupported {
                detail: format!("read of `{tref}` failed in `{einsum}`: {e}"),
            })
        }
        Expr::Map { op, lhs, rhs } => {
            let a = eval_expr(lhs, assignment, env, extents, einsum, counts)?;
            let b = eval_expr(rhs, assignment, env, extents, einsum, counts)?;
            Ok(op.apply(a, b, counts))
        }
        Expr::Unary { op, arg } => {
            let x = eval_expr(arg, assignment, env, extents, einsum, counts)?;
            Ok(op.apply(x, counts))
        }
    }
}

/// Resolves index expressions to concrete coordinates under an assignment.
fn resolve_coords(
    indices: &[IndexExpr],
    assignment: &HashMap<String, usize>,
    extents: &BTreeMap<String, usize>,
    einsum: &Einsum,
) -> Result<Vec<usize>, EinsumError> {
    let lookup = |v: &str| -> Result<usize, EinsumError> {
        assignment.get(v).copied().ok_or_else(|| EinsumError::Unsupported {
            detail: format!("variable `{v}` unbound in `{einsum}`"),
        })
    };
    indices
        .iter()
        .map(|idx| match idx {
            IndexExpr::Var(v) | IndexExpr::Filtered { var: v, .. } => lookup(v),
            IndexExpr::Shifted { var, offset } => {
                let base = lookup(var)? as i64 + offset;
                if base < 0 {
                    return Err(EinsumError::Unsupported {
                        detail: format!("negative coordinate `{var}{offset:+}` in `{einsum}`"),
                    });
                }
                Ok(base as usize)
            }
            IndexExpr::Const(c) => Ok(*c as usize),
            IndexExpr::Extent(r) => {
                extents.get(r).copied().ok_or_else(|| EinsumError::UnknownRank {
                    rank: r.clone(),
                    context: format!("extent coordinate in `{einsum}`"),
                })
            }
            IndexExpr::Split { outer, inner, inner_rank } => {
                let o = lookup(outer)?;
                let i = lookup(inner)?;
                let stride =
                    extents.get(inner_rank).copied().ok_or_else(|| EinsumError::UnknownRank {
                        rank: inner_rank.clone(),
                        context: format!("split stride in `{einsum}`"),
                    })?;
                Ok(o * stride + i)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Cascade;

    fn iota(shape: Shape) -> Tensor<f64> {
        let mut i = -1.0;
        Tensor::from_fn(shape, |_| {
            i += 1.0;
            i
        })
    }

    #[test]
    fn gemm_matches_manual() {
        let c = Cascade::parse("inputs: A[k,m], B[k,n]\nZ[m,n] = A[k,m] * B[k,n]\n").unwrap();
        let a = iota(Shape::of(&[("K", 3), ("M", 2)]));
        let b = iota(Shape::of(&[("K", 3), ("N", 4)]));
        let r = Evaluator::new().evaluate(&c, &[("A", a.clone()), ("B", b.clone())], &[]).unwrap();
        let z = r.tensor("Z").unwrap();
        for m in 0..2 {
            for n in 0..4 {
                let want: f64 = (0..3).map(|k| a.get(&[k, m]) * b.get(&[k, n])).sum();
                assert_eq!(z.get(&[m, n]), want);
            }
        }
        let counts = r.counts_for("Z").unwrap();
        assert_eq!(counts.mul, 3 * 2 * 4);
        assert_eq!(counts.add, 3 * 2 * 4);
    }

    #[test]
    fn max_reduction() {
        let c = Cascade::parse("inputs: QK[m,p]\nGM[p] = max[m](QK[m,p])\n").unwrap();
        let qk =
            Tensor::from_vec(Shape::of(&[("M", 3), ("P", 2)]), vec![1.0, -8.0, 5.0, 2.0, 3.0, 0.5])
                .unwrap();
        let r = Evaluator::new().evaluate(&c, &[("QK", qk)], &[]).unwrap();
        let gm = r.tensor("GM").unwrap();
        assert_eq!(gm.data(), &[5.0, 2.0]);
        assert_eq!(r.counts_for("GM").unwrap().max, 6);
    }

    #[test]
    fn scalar_dot_product() {
        let c = Cascade::parse("inputs: A[k], B[k]\nY = A[k] * B[k]\n").unwrap();
        let a = Tensor::from_vec(Shape::of(&[("K", 3)]), vec![1.0, 2.0, 3.0]).unwrap();
        let b = Tensor::from_vec(Shape::of(&[("K", 3)]), vec![4.0, 5.0, 6.0]).unwrap();
        let r = Evaluator::new().evaluate(&c, &[("A", a), ("B", b)], &[]).unwrap();
        assert_eq!(r.tensor("Y").unwrap().item(), 32.0);
    }

    #[test]
    fn filtered_prefix_sum_without_iteration() {
        // S[i+1] = A[k : k <= i]  (§II-C3, the non-iterative prefix sum)
        let c = Cascade::parse("inputs: A[k]\nS[i+1] = A[k : k <= i]\n").unwrap();
        let a = Tensor::from_vec(Shape::of(&[("K", 4)]), vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let r = Evaluator::new().evaluate(&c, &[("A", a)], &[("I", 4)]).unwrap();
        let s = r.tensor("S").unwrap();
        // S[0] untouched (0); S[i+1] = sum of A[0..=i].
        assert_eq!(s.data(), &[0.0, 1.0, 3.0, 6.0, 10.0]);
        // Quadratic work: 1+2+3+4 adds.
        assert_eq!(r.counts_for("S").unwrap().add, 10);
    }

    #[test]
    fn iterative_prefix_sum_is_linear_work() {
        let c = Cascade::parse("inputs: A[i]\ninit:\n S[0] = 0\nloop i:\n S[i+1] = S[i] + A[i]\n")
            .unwrap();
        let a = Tensor::from_vec(Shape::of(&[("I", 4)]), vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let r = Evaluator::new().evaluate(&c, &[("A", a)], &[]).unwrap();
        assert_eq!(r.tensor("S").unwrap().data(), &[0.0, 1.0, 3.0, 6.0, 10.0]);
        // Linear work: one add per iteration.
        assert_eq!(r.counts_for("S").unwrap().add, 4);
    }

    #[test]
    fn split_init_partitions_input() {
        let c = Cascade::parse(
            "inputs: K[e,m]\ninit:\n BK[e,m1,m0] = K[e,m1*M0+m0]\nbody:\n Z[e,m1,m0] = BK[e,m1,m0]\n",
        )
        .unwrap();
        let k = iota(Shape::of(&[("E", 2), ("M", 6)]));
        let r = Evaluator::new().evaluate(&c, &[("K", k.clone())], &[("M0", 3)]).unwrap();
        assert_eq!(r.extent("M1"), Some(2));
        let bk = r.tensor("BK").unwrap();
        for e in 0..2 {
            for m1 in 0..2 {
                for m0 in 0..3 {
                    assert_eq!(bk.get(&[e, m1, m0]), k.get(&[e, m1 * 3 + m0]));
                }
            }
        }
    }

    #[test]
    fn split_extent_mismatch_is_error() {
        let c = Cascade::parse("inputs: K[e,m]\ninit:\n BK[e,m1,m0] = K[e,m1*M0+m0]\n").unwrap();
        let k = iota(Shape::of(&[("E", 2), ("M", 7)]));
        let err = Evaluator::new().evaluate(&c, &[("K", k)], &[("M0", 3)]).unwrap_err();
        assert!(matches!(err, EinsumError::ExtentMismatch { .. }));
    }

    #[test]
    fn missing_input_is_error() {
        let c = Cascade::parse("inputs: A[k]\nY = A[k]\n").unwrap();
        let err = Evaluator::new().evaluate(&c, &[], &[]).unwrap_err();
        assert!(matches!(err, EinsumError::UnknownTensor { .. }));
    }

    #[test]
    fn unknown_rank_is_error() {
        // Output var `j` has no extent anywhere.
        let c = Cascade::parse("inputs: A[k]\nZ[j] = A[k]\n").unwrap();
        let err = Evaluator::new().evaluate(
            &c,
            &[("A", Tensor::from_vec(Shape::of(&[("K", 2)]), vec![1.0, 2.0]).unwrap())],
            &[],
        );
        assert!(err.is_err());
    }

    #[test]
    fn arity_mismatch_is_error() {
        let c = Cascade::parse("inputs: A[k]\nY = A[k]\n").unwrap();
        let a = iota(Shape::of(&[("K", 2), ("X", 2)]));
        let err = Evaluator::new().evaluate(&c, &[("A", a)], &[]).unwrap_err();
        assert!(matches!(err, EinsumError::ArityMismatch { .. }));
    }

    #[test]
    fn literal_initialization_with_neg_inf() {
        let c =
            Cascade::parse("inputs: X[p]\ninit:\n RM[0,p] = -inf\nbody:\n Z[p] = RM[0,p] + X[p]\n")
                .unwrap();
        let x = Tensor::from_vec(Shape::of(&[("P", 2)]), vec![1.0, 2.0]).unwrap();
        let r = Evaluator::new().evaluate(&c, &[("X", x)], &[("M1", 1)]).unwrap();
        assert!(r.tensor("Z").unwrap().data().iter().all(|v| *v == f64::NEG_INFINITY));
    }

    #[test]
    fn division_by_zero_is_culled_to_zero() {
        let c = Cascade::parse("inputs: A[m], B[m]\nZ[m] = A[m] / B[m]\n").unwrap();
        let a = Tensor::from_vec(Shape::of(&[("M", 2)]), vec![3.0, 4.0]).unwrap();
        let b = Tensor::from_vec(Shape::of(&[("M", 2)]), vec![0.0, 2.0]).unwrap();
        let r = Evaluator::new().evaluate(&c, &[("A", a), ("B", b)], &[]).unwrap();
        assert_eq!(r.tensor("Z").unwrap().data(), &[0.0, 2.0]);
    }

    #[test]
    fn total_counts_accumulate() {
        let c =
            Cascade::parse("inputs: A[k], B[k]\nY = A[k] * B[k]\nX = A[k]\nZ = Y * X\n").unwrap();
        let a = Tensor::from_vec(Shape::of(&[("K", 4)]), vec![1.0; 4]).unwrap();
        let b = Tensor::from_vec(Shape::of(&[("K", 4)]), vec![2.0; 4]).unwrap();
        let r = Evaluator::new().evaluate(&c, &[("A", a), ("B", b)], &[]).unwrap();
        // Cascade 2 of the paper: Z = Y × X with a single multiply.
        assert_eq!(r.tensor("Z").unwrap().item(), 8.0 * 4.0);
        assert_eq!(r.counts_for("Z").unwrap().mul, 1);
        let totals = r.total_counts();
        assert_eq!(totals.mul, 4 + 1);
        assert_eq!(totals.add, 4 + 4);
    }
}
