#![warn(missing_docs)]

//! Extended Einsums (EDGE) for the FuseMax reproduction.
//!
//! This crate implements the subset of the Extended General Einsums (EDGE)
//! notation [Odemuyiwa et al.] used by the FuseMax paper (§II-B/§II-C):
//!
//! * **Einsums** — an output tensor, an expression over input tensors built
//!   from *map* actions (`×`, `+`, `max(·,·)`, `÷`, `sub-then-exp`) and unary
//!   operators, and *reduce* actions (`+`, `max`) over named ranks;
//! * **index expressions** — plain rank variables (`m`), shifted variables
//!   (`m1+1`, iterative ranks), fixed coordinates (`0`, rank extents like
//!   `M1`), affine partitions (`m1*M0+m0`, Einsums 39–40), and filtered
//!   ranks (`k: k <= i`, §II-C3);
//! * **cascades** — initialization Einsums, a body (optionally iterated over
//!   a generative rank with the paper's `⋄ : i ≥ K` stopping condition), and
//!   a finale evaluated after iteration (Cascade 5's Einsum 55);
//! * a **text parser** so cascades read like the paper;
//! * a **dense evaluator** that walks each Einsum's iteration space,
//!   unrolls iterative ranks, and counts every scalar operation by kind.
//!
//! # Example: GEMM as an Einsum (paper Einsum 1)
//!
//! ```
//! use fusemax_einsum::{Cascade, Evaluator};
//! use fusemax_tensor::{Shape, Tensor};
//!
//! let cascade = Cascade::parse(
//!     "name: gemm\n\
//!      inputs: A[k,m], B[k,n]\n\
//!      Z[m,n] = A[k,m] * B[k,n]\n",
//! )?;
//!
//! let a = Tensor::from_fn(Shape::of(&[("K", 2), ("M", 3)]), |c| (c[0] + c[1]) as f64);
//! let b = Tensor::from_fn(Shape::of(&[("K", 2), ("N", 2)]), |c| (c[0] * c[1]) as f64);
//! let result = Evaluator::new().evaluate(&cascade, &[("A", a), ("B", b)], &[])?;
//!
//! let z = result.tensor("Z")?;
//! assert_eq!(z.get(&[0, 1]), 1.0); // sum_k A[k,0] * B[k,1]
//! // The evaluator also measured the work: K*M*N multiplies.
//! assert_eq!(result.counts_for("Z").unwrap().mul, 2 * 3 * 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod ast;
mod error;
mod eval;
mod ops;
mod parse;

pub use ast::{
    family_of_rank, rank_of_var, Bound, Cascade, CmpOp, Einsum, Expr, IndexExpr, TensorRef,
};
pub use error::{EinsumError, ParseError};
pub use eval::{EvalResult, Evaluator};
pub use ops::{MapOp, OpCounts, ReduceOp, UnaryOp};
