//! Compute operators (map, reduce, unary) and operation counting.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign};

/// Binary map-action compute operators (§II-C1).
///
/// Each corresponds to an EDGE map action `⋀ op(merge)`; the merge operator
/// relevant to dense evaluation is only observable for [`MapOp::Div`], whose
/// `←` merge touches only points with a non-zero divisor (divide-by-zero
/// points are culled and contribute the output's initial value, i.e. zero).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MapOp {
    /// Multiplication with intersection merge: `×(∩)`.
    Mul,
    /// Addition with union merge: `+(∪)`.
    Add,
    /// Subtraction (pass-through merge).
    Sub,
    /// Division with the `←` merge: culls points where the divisor is zero.
    Div,
    /// Binary maximum with union merge: `max(∪)`.
    Max,
    /// Binary minimum with union merge.
    Min,
    /// The paper's fused `sub-then-exp(1)` operator: `e^(a-b)` (Einsum 30).
    SubThenExp,
}

impl MapOp {
    /// Applies the operator to two scalars, counting work in `counts`.
    pub fn apply(self, a: f64, b: f64, counts: &mut OpCounts) -> f64 {
        match self {
            MapOp::Mul => {
                counts.mul += 1;
                a * b
            }
            MapOp::Add => {
                counts.add += 1;
                a + b
            }
            MapOp::Sub => {
                counts.sub += 1;
                a - b
            }
            MapOp::Div => {
                counts.div += 1;
                // `←` merge: points with a zero divisor are culled, leaving
                // the populate default (0). This is load-bearing for
                // Cascade 3, whose first iteration divides by RY[0] = 0.
                if b == 0.0 {
                    0.0
                } else {
                    a / b
                }
            }
            MapOp::Max => {
                counts.max += 1;
                a.max(b)
            }
            MapOp::Min => {
                counts.min += 1;
                a.min(b)
            }
            MapOp::SubThenExp => {
                counts.sub += 1;
                counts.exp += 1;
                (a - b).exp()
            }
        }
    }
}

impl fmt::Display for MapOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MapOp::Mul => "*",
            MapOp::Add => "+",
            MapOp::Sub => "-",
            MapOp::Div => "/",
            MapOp::Max => "max",
            MapOp::Min => "min",
            MapOp::SubThenExp => "sub-then-exp",
        };
        f.write_str(s)
    }
}

/// Reduce-action compute operators (§II-C1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceOp {
    /// Sum reduction `⋁ +(∪)` — the shorthand default.
    Add,
    /// Maximum reduction `⋁ max(∪)` (Einsum 29).
    Max,
    /// Minimum reduction.
    Min,
}

impl ReduceOp {
    /// The reduction identity (0 for `+`, −∞ for `max`, +∞ for `min`).
    pub fn identity(self) -> f64 {
        match self {
            ReduceOp::Add => 0.0,
            ReduceOp::Max => f64::NEG_INFINITY,
            ReduceOp::Min => f64::INFINITY,
        }
    }

    /// Folds `value` into `acc`, counting work in `counts`.
    pub fn combine(self, acc: f64, value: f64, counts: &mut OpCounts) -> f64 {
        match self {
            ReduceOp::Add => {
                counts.add += 1;
                acc + value
            }
            ReduceOp::Max => {
                counts.max += 1;
                acc.max(value)
            }
            ReduceOp::Min => {
                counts.min += 1;
                acc.min(value)
            }
        }
    }
}

impl fmt::Display for ReduceOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ReduceOp::Add => "+",
            ReduceOp::Max => "max",
            ReduceOp::Min => "min",
        };
        f.write_str(s)
    }
}

/// Unary user-defined operators on tensors (§II-C1, e.g. `σ(A_m)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// Natural exponential `e^x` (Einsum 26).
    Exp,
    /// Negation `-x`.
    Neg,
    /// Reciprocal `1/x` (counted as a division).
    Recip,
}

impl UnaryOp {
    /// Applies the operator, counting work in `counts`.
    pub fn apply(self, x: f64, counts: &mut OpCounts) -> f64 {
        match self {
            UnaryOp::Exp => {
                counts.exp += 1;
                x.exp()
            }
            UnaryOp::Neg => {
                counts.sub += 1;
                -x
            }
            UnaryOp::Recip => {
                counts.div += 1;
                if x == 0.0 {
                    0.0
                } else {
                    1.0 / x
                }
            }
        }
    }
}

impl fmt::Display for UnaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            UnaryOp::Exp => "exp",
            UnaryOp::Neg => "-",
            UnaryOp::Recip => "recip",
        };
        f.write_str(s)
    }
}

/// Scalar-operation counts by kind, measured by the evaluator.
///
/// Counts are *logical* operations: one `exp` is one exponential (the
/// hardware cost of an exponential — e.g. the paper's 6 chained MACCs — is a
/// modeling decision applied later by `fusemax-model`). Reductions count one
/// combine per element folded (starting from the identity), so a length-K
/// sum contributes K `add`s.
///
/// # Example
///
/// ```
/// use fusemax_einsum::OpCounts;
///
/// let a = OpCounts { mul: 2, ..OpCounts::default() };
/// let b = OpCounts { mul: 3, div: 1, ..OpCounts::default() };
/// let c = a + b;
/// assert_eq!(c.mul, 5);
/// assert_eq!(c.total(), 6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct OpCounts {
    /// Multiplications.
    pub mul: u64,
    /// Additions.
    pub add: u64,
    /// Subtractions.
    pub sub: u64,
    /// Divisions.
    pub div: u64,
    /// Binary maxima.
    pub max: u64,
    /// Binary minima.
    pub min: u64,
    /// Exponentials.
    pub exp: u64,
}

impl OpCounts {
    /// Total scalar operations of all kinds.
    pub fn total(&self) -> u64 {
        self.mul + self.add + self.sub + self.div + self.max + self.min + self.exp
    }

    /// Multiply–accumulate-class operations (`mul + add + sub`).
    pub fn macc_class(&self) -> u64 {
        self.mul + self.add + self.sub
    }

    /// `true` when no operations were recorded.
    pub fn is_empty(&self) -> bool {
        self.total() == 0
    }
}

impl Add for OpCounts {
    type Output = OpCounts;

    fn add(self, rhs: OpCounts) -> OpCounts {
        OpCounts {
            mul: self.mul + rhs.mul,
            add: self.add + rhs.add,
            sub: self.sub + rhs.sub,
            div: self.div + rhs.div,
            max: self.max + rhs.max,
            min: self.min + rhs.min,
            exp: self.exp + rhs.exp,
        }
    }
}

impl AddAssign for OpCounts {
    fn add_assign(&mut self, rhs: OpCounts) {
        *self = *self + rhs;
    }
}

impl Sum for OpCounts {
    fn sum<I: Iterator<Item = OpCounts>>(iter: I) -> OpCounts {
        iter.fold(OpCounts::default(), |a, b| a + b)
    }
}

impl fmt::Display for OpCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mul={} add={} sub={} div={} max={} min={} exp={}",
            self.mul, self.add, self.sub, self.div, self.max, self.min, self.exp
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_ops_compute_and_count() {
        let mut c = OpCounts::default();
        assert_eq!(MapOp::Mul.apply(3.0, 4.0, &mut c), 12.0);
        assert_eq!(MapOp::Add.apply(3.0, 4.0, &mut c), 7.0);
        assert_eq!(MapOp::Sub.apply(3.0, 4.0, &mut c), -1.0);
        assert_eq!(MapOp::Div.apply(8.0, 4.0, &mut c), 2.0);
        assert_eq!(MapOp::Max.apply(3.0, 4.0, &mut c), 4.0);
        assert_eq!(MapOp::Min.apply(3.0, 4.0, &mut c), 3.0);
        let e = MapOp::SubThenExp.apply(1.0, 1.0, &mut c);
        assert!((e - 1.0).abs() < 1e-15);
        assert_eq!(c.mul, 1);
        assert_eq!(c.add, 1);
        assert_eq!(c.sub, 2); // Sub + SubThenExp
        assert_eq!(c.div, 1);
        assert_eq!(c.max, 1);
        assert_eq!(c.min, 1);
        assert_eq!(c.exp, 1);
    }

    #[test]
    fn divide_by_zero_is_culled() {
        let mut c = OpCounts::default();
        assert_eq!(MapOp::Div.apply(5.0, 0.0, &mut c), 0.0);
        assert_eq!(UnaryOp::Recip.apply(0.0, &mut c), 0.0);
    }

    #[test]
    fn reduce_identities() {
        assert_eq!(ReduceOp::Add.identity(), 0.0);
        assert_eq!(ReduceOp::Max.identity(), f64::NEG_INFINITY);
        assert_eq!(ReduceOp::Min.identity(), f64::INFINITY);
    }

    #[test]
    fn reduce_combines() {
        let mut c = OpCounts::default();
        let s = [1.0, 5.0, 2.0]
            .iter()
            .fold(ReduceOp::Max.identity(), |a, &x| ReduceOp::Max.combine(a, x, &mut c));
        assert_eq!(s, 5.0);
        assert_eq!(c.max, 3);
    }

    #[test]
    fn counts_arithmetic() {
        let a = OpCounts { mul: 1, add: 2, ..Default::default() };
        let b = OpCounts { mul: 10, exp: 1, ..Default::default() };
        let mut s = a;
        s += b;
        assert_eq!(s.mul, 11);
        assert_eq!(s.total(), 14);
        assert_eq!(s.macc_class(), 13);
        let total: OpCounts = [a, b].into_iter().sum();
        assert_eq!(total, s);
        assert!(!s.is_empty());
        assert!(OpCounts::default().is_empty());
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!OpCounts::default().to_string().is_empty());
        assert_eq!(MapOp::Mul.to_string(), "*");
        assert_eq!(ReduceOp::Max.to_string(), "max");
        assert_eq!(UnaryOp::Exp.to_string(), "exp");
    }
}
