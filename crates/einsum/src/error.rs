//! Error types for parsing and evaluating extended Einsums.

use std::error::Error;
use std::fmt;

/// A parse failure, with the offending line and a description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// The text being parsed when the error occurred.
    pub line: String,
    /// What went wrong.
    pub message: String,
}

impl ParseError {
    pub(crate) fn new(line: impl Into<String>, message: impl Into<String>) -> Self {
        Self { line: line.into(), message: message.into() }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error in `{}`: {}", self.line, self.message)
    }
}

impl Error for ParseError {}

/// An evaluation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum EinsumError {
    /// A tensor was read before being written and is not a declared input.
    UnknownTensor {
        /// The missing tensor's name.
        name: String,
    },
    /// A rank extent could not be determined from inputs or explicit shapes.
    UnknownRank {
        /// The rank whose extent is missing.
        rank: String,
        /// The context in which it was needed.
        context: String,
    },
    /// Extents disagreed between uses of a rank.
    ExtentMismatch {
        /// The rank in question.
        rank: String,
        /// One observed extent.
        got: usize,
        /// The conflicting extent.
        expected: usize,
        /// The context of the conflict.
        context: String,
    },
    /// An input tensor had the wrong number of ranks.
    ArityMismatch {
        /// The tensor's name.
        tensor: String,
        /// Ranks in the supplied tensor.
        got: usize,
        /// Ranks expected from the cascade.
        expected: usize,
    },
    /// A cascade construct is unsupported in the current context (e.g. a
    /// filtered index on an output).
    Unsupported {
        /// Description of the unsupported construct.
        detail: String,
    },
}

impl fmt::Display for EinsumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EinsumError::UnknownTensor { name } => {
                write!(f, "tensor `{name}` read before any write and not a declared input")
            }
            EinsumError::UnknownRank { rank, context } => {
                write!(f, "extent of rank `{rank}` unknown ({context})")
            }
            EinsumError::ExtentMismatch { rank, got, expected, context } => {
                write!(f, "rank `{rank}` extent mismatch: {got} vs {expected} ({context})")
            }
            EinsumError::ArityMismatch { tensor, got, expected } => {
                write!(f, "tensor `{tensor}` has {got} ranks, cascade expects {expected}")
            }
            EinsumError::Unsupported { detail } => write!(f, "unsupported construct: {detail}"),
        }
    }
}

impl Error for EinsumError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_context() {
        let e = ParseError::new("Z[m] =", "missing right-hand side");
        assert!(e.to_string().contains("Z[m]"));

        let e = EinsumError::UnknownRank { rank: "M0".into(), context: "split".into() };
        assert!(e.to_string().contains("M0"));

        let e = EinsumError::ExtentMismatch {
            rank: "M".into(),
            got: 8,
            expected: 16,
            context: "input K".into(),
        };
        assert!(e.to_string().contains("8 vs 16"));
    }

    #[test]
    fn errors_are_std_errors() {
        fn takes_err<E: Error>(_: E) {}
        takes_err(ParseError::new("x", "y"));
        takes_err(EinsumError::UnknownTensor { name: "T".into() });
    }
}
