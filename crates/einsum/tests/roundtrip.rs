//! Property tests: randomly generated Einsum ASTs survive a
//! `Display → parse` round trip, so the text format is a faithful
//! serialization of the IR.

use fusemax_einsum::{Bound, CmpOp, Einsum, Expr, IndexExpr, MapOp, ReduceOp, TensorRef, UnaryOp};
use proptest::prelude::*;

fn var_name() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("m".to_string()),
        Just("p".to_string()),
        Just("e".to_string()),
        Just("k".to_string()),
        Just("m1".to_string()),
        Just("m0".to_string()),
    ]
}

fn tensor_name() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("A".to_string()),
        Just("QK".to_string()),
        Just("SN".to_string()),
        Just("RM".to_string()),
        Just("V".to_string()),
    ]
}

fn index_expr() -> impl Strategy<Value = IndexExpr> {
    prop_oneof![
        var_name().prop_map(IndexExpr::Var),
        (var_name(), 1i64..3).prop_map(|(var, offset)| IndexExpr::Shifted { var, offset }),
        (0i64..4).prop_map(IndexExpr::Const),
        Just(IndexExpr::Extent("M1".to_string())),
        Just(IndexExpr::Split {
            outer: "m1".to_string(),
            inner: "m0".to_string(),
            inner_rank: "M0".to_string(),
        }),
        (var_name(), prop_oneof![Just(CmpOp::Le), Just(CmpOp::Lt)], -2i64..3).prop_map(
            |(var, cmp, offset)| IndexExpr::Filtered {
                var,
                cmp,
                bound: Bound { var: Some("i".to_string()), offset },
            }
        ),
    ]
}

fn tensor_ref() -> impl Strategy<Value = TensorRef> {
    (tensor_name(), prop::collection::vec(index_expr(), 0..3))
        .prop_map(|(name, indices)| TensorRef { name, indices })
}

fn leaf_expr() -> impl Strategy<Value = Expr> {
    prop_oneof![
        tensor_ref().prop_map(Expr::Tensor),
        (0u32..100).prop_map(|v| Expr::Literal(v as f64)),
        Just(Expr::Literal(f64::NEG_INFINITY)),
    ]
}

fn expr() -> impl Strategy<Value = Expr> {
    leaf_expr().prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (
                prop_oneof![
                    Just(MapOp::Mul),
                    Just(MapOp::Add),
                    Just(MapOp::Sub),
                    Just(MapOp::Div),
                    Just(MapOp::Max),
                    Just(MapOp::Min),
                    Just(MapOp::SubThenExp),
                ],
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, lhs, rhs)| Expr::Map {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs)
                }),
            (prop_oneof![Just(UnaryOp::Exp), Just(UnaryOp::Neg), Just(UnaryOp::Recip)], inner)
                .prop_map(|(op, arg)| Expr::Unary { op, arg: Box::new(arg) }),
        ]
    })
}

/// The parser canonicalizes `exp(a - b)` to the fused sub-then-exp map, so
/// compare ASTs after applying the same canonicalization.
fn canonicalize(e: &Expr) -> Expr {
    match e {
        Expr::Tensor(t) => Expr::Tensor(t.clone()),
        Expr::Literal(v) => Expr::Literal(*v),
        Expr::Map { op, lhs, rhs } => Expr::Map {
            op: *op,
            lhs: Box::new(canonicalize(lhs)),
            rhs: Box::new(canonicalize(rhs)),
        },
        Expr::Unary { op: UnaryOp::Exp, arg } => {
            let arg = canonicalize(arg);
            if let Expr::Map { op: MapOp::Sub, lhs, rhs } = arg {
                Expr::Map { op: MapOp::SubThenExp, lhs, rhs }
            } else {
                Expr::Unary { op: UnaryOp::Exp, arg: Box::new(arg) }
            }
        }
        Expr::Unary { op, arg } => Expr::Unary { op: *op, arg: Box::new(canonicalize(arg)) },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn einsum_display_round_trips(output in tensor_ref(), rhs in expr()) {
        let einsum = Einsum { output, expr: rhs, reductions: vec![] };
        let text = einsum.to_string();
        let reparsed = Einsum::parse(&text)
            .unwrap_or_else(|e| panic!("`{text}` failed to parse: {e}"));
        prop_assert_eq!(reparsed.output, einsum.output.clone());
        prop_assert_eq!(reparsed.expr, canonicalize(&einsum.expr));
    }

    #[test]
    fn explicit_reduction_round_trips(
        output in tensor_ref(),
        operand in tensor_ref(),
        var in var_name(),
        op in prop_oneof![Just(ReduceOp::Max), Just(ReduceOp::Min)],
    ) {
        let einsum = Einsum {
            output,
            expr: Expr::Tensor(operand),
            reductions: vec![(var, op)],
        };
        let text = einsum.to_string();
        let reparsed = Einsum::parse(&text)
            .unwrap_or_else(|e| panic!("`{text}` failed to parse: {e}"));
        prop_assert_eq!(&reparsed.reductions, &einsum.reductions);
        prop_assert_eq!(reparsed.output, einsum.output);
    }

    #[test]
    fn index_expressions_round_trip(idx in index_expr()) {
        let tref = TensorRef { name: "T".to_string(), indices: vec![idx] };
        let text = tref.to_string();
        let reparsed = TensorRef::parse(&text)
            .unwrap_or_else(|e| panic!("`{text}` failed to parse: {e}"));
        prop_assert_eq!(reparsed, tref);
    }
}
