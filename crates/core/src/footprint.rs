//! Algorithmic-minimum live-footprint analysis (§III-B).
//!
//! The pass analysis bounds how much of each tensor must be simultaneously
//! live: a tensor produced in one pass and consumed by a fiber traversal in
//! a *later* pass must keep an entire fiber live (size `O(M)`), whereas a
//! tensor consumed within its producing pass can be streamed a tile
//! (`O(M0)`) or an element at a time. These bounds are mapping-independent:
//! an architecture must either buffer the footprint on-chip or spill it,
//! incurring memory traffic proportional to the fiber shape — exactly the
//! dilemma that drives FLAT's buffering requirements (§V).

use crate::passes::{analyze_passes, AnalysisError, PassAnalysis, RankClass};
use fusemax_einsum::Cascade;
use std::collections::BTreeMap;
use std::fmt;

/// The minimum live footprint of one tensor with respect to a rank family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Footprint {
    /// No family involvement — footprint governed by other ranks only.
    Unrelated,
    /// A single element at a time can stream through.
    Element,
    /// One tile of the inner partition (`O(M0)`) must be live.
    Tile,
    /// An entire fiber (`O(M)`) must be live across a pass boundary.
    FullFiber,
}

impl fmt::Display for Footprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Footprint::Unrelated => "unrelated",
            Footprint::Element => "O(1) element",
            Footprint::Tile => "O(M0) tile",
            Footprint::FullFiber => "O(M) full fiber",
        })
    }
}

/// Per-tensor live footprints for a cascade, with respect to one family.
#[derive(Debug, Clone)]
pub struct FootprintReport {
    /// The analyzed rank family.
    pub family: String,
    /// Footprint per tensor.
    pub per_tensor: BTreeMap<String, Footprint>,
    /// The underlying pass analysis.
    pub passes: PassAnalysis,
}

impl FootprintReport {
    /// The footprint of `tensor` (unknown tensors are `Unrelated`).
    pub fn of(&self, tensor: &str) -> Footprint {
        self.per_tensor.get(tensor).copied().unwrap_or(Footprint::Unrelated)
    }

    /// `true` when some tensor needs a full fiber live — i.e. on-chip
    /// requirements grow with the sequence length (the paper's complaint
    /// about FLAT).
    pub fn any_full_fiber(&self) -> bool {
        self.per_tensor.values().any(|f| *f == Footprint::FullFiber)
    }
}

impl fmt::Display for FootprintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "live footprints over rank family {}", self.family)?;
        for (tensor, footprint) in &self.per_tensor {
            writeln!(f, "  {tensor:<6} {footprint}")?;
        }
        Ok(())
    }
}

/// Computes the algorithmic-minimum live footprint of every tensor in
/// `cascade` with respect to rank family `family`.
///
/// # Errors
///
/// Propagates [`AnalysisError`] from the underlying pass analysis.
///
/// # Example
///
/// ```
/// use fusemax_core::cascades::attention;
/// use fusemax_core::footprint::{live_footprints, Footprint};
///
/// // The 3-pass cascade must keep whole QK fibers live (O(M), growing with
/// // sequence length); the 1-pass cascade streams O(M0) tiles.
/// let three = live_footprints(&attention::three_pass(), "M")?;
/// assert_eq!(three.of("QK"), Footprint::FullFiber);
///
/// let one = live_footprints(&attention::one_pass(), "M")?;
/// assert!(!one.any_full_fiber());
/// # Ok::<(), fusemax_core::passes::AnalysisError>(())
/// ```
pub fn live_footprints(cascade: &Cascade, family: &str) -> Result<FootprintReport, AnalysisError> {
    let passes = analyze_passes(cascade, family)?;
    let tiled = passes.ranks.iter().any(|r| r != family);
    let mut per_tensor: BTreeMap<String, Footprint> = BTreeMap::new();

    // Last pass in which each tensor is consumed by a fiber-traversing
    // Einsum.
    let mut last_fiber_use: BTreeMap<String, usize> = BTreeMap::new();
    for (einsum, info) in cascade.all_einsums().zip(&passes.einsums) {
        if let Some(p) = info.pass {
            for input in einsum.inputs() {
                let e = last_fiber_use.entry(input.name.clone()).or_insert(p);
                *e = (*e).max(p);
            }
        }
    }

    for (tensor, class) in &passes.classes {
        let fp = match class {
            RankClass::Unrelated => Footprint::Unrelated,
            RankClass::FullSummary { .. }
            | RankClass::TileSummary { .. }
            | RankClass::PrefixSummary { .. } => Footprint::Element,
            RankClass::FiberData { born_pass } => {
                let last = last_fiber_use.get(tensor).copied().unwrap_or(*born_pass);
                if last > *born_pass {
                    // Consumed after its producing pass: the whole fiber
                    // must survive the boundary (buffer or spill).
                    Footprint::FullFiber
                } else if tiled {
                    Footprint::Tile
                } else {
                    Footprint::Element
                }
            }
        };
        per_tensor.insert(tensor.clone(), fp);
    }

    Ok(FootprintReport { family: family.to_string(), per_tensor, passes })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cascades::{attention, pedagogical};

    #[test]
    fn three_pass_intermediates_need_full_fibers() {
        let r = live_footprints(&attention::three_pass(), "M").unwrap();
        // QK is produced in pass 1 and re-read in pass 2; SN in pass 2 and
        // re-read in pass 3 (§IV-E1).
        assert_eq!(r.of("QK"), Footprint::FullFiber);
        assert_eq!(r.of("SN"), Footprint::FullFiber);
        // A streams straight into AV within pass 3.
        assert_eq!(r.of("A"), Footprint::Element);
        assert!(r.any_full_fiber());
    }

    #[test]
    fn naive_softmax_still_needs_a_full_fiber() {
        let r = live_footprints(&attention::naive_unstable(), "M").unwrap();
        assert_eq!(r.of("SN"), Footprint::FullFiber);
    }

    #[test]
    fn one_pass_footprints_are_sequence_length_independent() {
        let r = live_footprints(&attention::one_pass(), "M").unwrap();
        assert!(!r.any_full_fiber(), "{r}");
        assert_eq!(r.of("BQK"), Footprint::Tile);
        assert_eq!(r.of("SLN"), Footprint::Tile);
        assert_eq!(r.of("RM"), Footprint::Element);
    }

    #[test]
    fn two_pass_keeps_local_numerators_live() {
        let r = live_footprints(&attention::two_pass(), "M").unwrap();
        // SLN is produced in pass 1 and corrected in pass 2.
        assert_eq!(r.of("SLN"), Footprint::FullFiber);
        // BQK is consumed within pass 1.
        assert_eq!(r.of("BQK"), Footprint::Tile);
    }

    #[test]
    fn cascade1_input_needs_full_fiber() {
        // §III-B: A's algorithmic minimum live footprint is a whole K fiber.
        let r = live_footprints(&pedagogical::cascade1(), "K").unwrap();
        assert_eq!(r.of("A"), Footprint::FullFiber);
        assert_eq!(r.of("B"), Footprint::Element);
    }

    #[test]
    fn cascade2_streams_inputs() {
        let r = live_footprints(&pedagogical::cascade2(), "K").unwrap();
        assert_eq!(r.of("A"), Footprint::Element);
        assert!(!r.any_full_fiber());
    }

    #[test]
    fn unrelated_tensors_are_marked() {
        let r = live_footprints(&attention::three_pass(), "M").unwrap();
        assert_eq!(r.of("Q"), Footprint::Unrelated);
        assert_eq!(r.of("NOPE"), Footprint::Unrelated);
    }

    #[test]
    fn display_mentions_family_and_tensors() {
        let r = live_footprints(&attention::three_pass(), "M").unwrap();
        let text = r.to_string();
        assert!(text.contains("family M"));
        assert!(text.contains("QK"));
    }

    #[test]
    fn footprint_ordering_is_by_severity() {
        assert!(Footprint::FullFiber > Footprint::Tile);
        assert!(Footprint::Tile > Footprint::Element);
        assert!(Footprint::Element > Footprint::Unrelated);
    }
}
