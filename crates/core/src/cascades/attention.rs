//! The attention cascades of §IV.
//!
//! Rank conventions follow Einsum 22: `Q: E×P`, `K: E×M`, `V: F×M`,
//! `AV: F×P`; the softmax normalizes over `M` (the key sequence) for each
//! query `p`. The numerically stable variants omit the `1/√E` scale, as the
//! paper notes practical implementations do (§IV-C1, footnote 4).

use super::builtin;
use fusemax_einsum::Cascade;

/// The naive (numerically *unstable*) attention cascade (Einsums 22–24 with
/// the softmax of Einsums 26–28).
///
/// ```text
/// QK[m,p] = Q[e,p] * K[e,m]
/// SN[m,p] = exp(QK[m,p])
/// SD[p]   = SN[m,p]
/// A[m,p]  = SN[m,p] / SD[p]
/// AV[f,p] = A[m,p] * V[f,m]
/// ```
///
/// `e^{QK}` overflows once `QK` exceeds ~88 in `f32` (§IV-C1) — the kernel
/// tests demonstrate this. Two passes over `M`: `SD` must complete before
/// `A` revisits `SN`.
pub fn naive_unstable() -> Cascade {
    builtin(
        "name: attention_naive_unstable\n\
         inputs: Q[e,p], K[e,m], V[f,m]\n\
         QK[m,p] = Q[e,p] * K[e,m]\n\
         SN[m,p] = exp(QK[m,p])\n\
         SD[p] = SN[m,p]\n\
         A[m,p] = SN[m,p] / SD[p]\n\
         AV[f,p] = A[m,p] * V[f,m]\n",
    )
}

/// Cascade 4: the 3-pass numerically stable cascade (Einsums 33–38) —
/// what PyTorch, TensorFlow, FLAT, and E.T. implement (Table I).
///
/// ```text
/// QK[m,p] = Q[e,p] * K[e,m]          # pass 1
/// GM[p]   = max[m](QK[m,p])
/// SN[m,p] = exp(QK[m,p] - GM[p])     # pass 2
/// SD[p]   = SN[m,p]
/// A[m,p]  = SN[m,p] / SD[p]          # pass 3
/// AV[f,p] = A[m,p] * V[f,m]
/// ```
pub fn three_pass() -> Cascade {
    builtin(
        "name: attention_three_pass\n\
         inputs: Q[e,p], K[e,m], V[f,m]\n\
         QK[m,p] = Q[e,p] * K[e,m]\n\
         GM[p] = max[m](QK[m,p])\n\
         SN[m,p] = exp(QK[m,p] - GM[p])\n\
         SD[p] = SN[m,p]\n\
         A[m,p] = SN[m,p] / SD[p]\n\
         AV[f,p] = A[m,p] * V[f,m]\n",
    )
}

/// Cascade 4 with the §IV-D division-deferral optimization (Einsums 31–32):
/// multiply the numerator by `V` first, reduce over `M`, then divide once.
///
/// ```text
/// QK[m,p]  = Q[e,p] * K[e,m]
/// GM[p]    = max[m](QK[m,p])
/// SN[m,p]  = exp(QK[m,p] - GM[p])
/// SD[p]    = SN[m,p]
/// SNV[f,p] = SN[m,p] * V[f,m]
/// AV[f,p]  = SNV[f,p] / SD[p]
/// ```
///
/// Two effects, both verified by tests: divisions drop from `M×P` to `F×P`,
/// and — because the old pass 3 no longer traverses `M` — the cascade needs
/// only **two** passes (§IV-E3: "this reassociation combines the second and
/// third passes of Cascade 4").
pub fn three_pass_deferred_div() -> Cascade {
    builtin(
        "name: attention_three_pass_deferred_div\n\
         inputs: Q[e,p], K[e,m], V[f,m]\n\
         QK[m,p] = Q[e,p] * K[e,m]\n\
         GM[p] = max[m](QK[m,p])\n\
         SN[m,p] = exp(QK[m,p] - GM[p])\n\
         SD[p] = SN[m,p]\n\
         SNV[f,p] = SN[m,p] * V[f,m]\n\
         AV[f,p] = SNV[f,p] / SD[p]\n",
    )
}

/// The 2-pass cascade (§IV-E2) — TileFlow and Choi et al. (Table I).
///
/// The input is partitioned into `M1` chunks of `M0`. Pass 1 computes
/// per-chunk local maxima `LM`, local numerators `SLN`, and local
/// denominators `SLD`, while the global max `GM` is built from the local
/// maxima. Pass 2 corrects numerators and denominators to the global max
/// (`PLM = e^{LM-GM}`) and produces the output.
///
/// ```text
/// init:
///   BK[e,m1,m0] = K[e,m1*M0+m0]
///   BV[f,m1,m0] = V[f,m1*M0+m0]
/// body:
///   BQK[m1,m0,p] = Q[e,p] * BK[e,m1,m0]      # pass 1
///   LM[m1,p]     = max[m0](BQK[m1,m0,p])
///   SLN[m1,m0,p] = exp(BQK[m1,m0,p] - LM[m1,p])
///   SLD[m1,p]    = SLN[m1,m0,p]
///   GM[p]        = max[m1](LM[m1,p])
///   PLM[m1,p]    = exp(LM[m1,p] - GM[p])
///   SD[p]        = SLD[m1,p] * PLM[m1,p]
///   SN[m1,m0,p]  = SLN[m1,m0,p] * PLM[m1,p]  # pass 2
///   A[m1,m0,p]   = SN[m1,m0,p] / SD[p]
///   AV[f,p]      = A[m1,m0,p] * BV[f,m1,m0]
/// ```
pub fn two_pass() -> Cascade {
    builtin(
        "name: attention_two_pass\n\
         inputs: Q[e,p], K[e,m], V[f,m]\n\
         init:\n\
         BK[e,m1,m0] = K[e,m1*M0+m0]\n\
         BV[f,m1,m0] = V[f,m1*M0+m0]\n\
         body:\n\
         BQK[m1,m0,p] = Q[e,p] * BK[e,m1,m0]\n\
         LM[m1,p] = max[m0](BQK[m1,m0,p])\n\
         SLN[m1,m0,p] = exp(BQK[m1,m0,p] - LM[m1,p])\n\
         SLD[m1,p] = SLN[m1,m0,p]\n\
         GM[p] = max[m1](LM[m1,p])\n\
         PLM[m1,p] = exp(LM[m1,p] - GM[p])\n\
         SD[p] = SLD[m1,p] * PLM[m1,p]\n\
         SN[m1,m0,p] = SLN[m1,m0,p] * PLM[m1,p]\n\
         A[m1,m0,p] = SN[m1,m0,p] / SD[p]\n\
         AV[f,p] = A[m1,m0,p] * BV[f,m1,m0]\n",
    )
}

/// The 2-pass cascade with the §IV-D division deferral (the paper notes
/// the optimization "can be applied to 2- and 3-pass cascades as well"):
/// pass 2 folds the corrected numerators into `SNV[f,p]` and divides once
/// per `(f, p)`.
///
/// ```text
/// ... pass 1 as in [`two_pass`] ...
/// SN[m1,m0,p] = SLN[m1,m0,p] * PLM[m1,p]  # pass 2
/// SNV[f,p]    = SN[m1,m0,p] * BV[f,m1,m0]
/// AV[f,p]     = SNV[f,p] / SD[p]
/// ```
pub fn two_pass_deferred_div() -> Cascade {
    builtin(
        "name: attention_two_pass_deferred_div\n\
         inputs: Q[e,p], K[e,m], V[f,m]\n\
         init:\n\
         BK[e,m1,m0] = K[e,m1*M0+m0]\n\
         BV[f,m1,m0] = V[f,m1*M0+m0]\n\
         body:\n\
         BQK[m1,m0,p] = Q[e,p] * BK[e,m1,m0]\n\
         LM[m1,p] = max[m0](BQK[m1,m0,p])\n\
         SLN[m1,m0,p] = exp(BQK[m1,m0,p] - LM[m1,p])\n\
         SLD[m1,p] = SLN[m1,m0,p]\n\
         GM[p] = max[m1](LM[m1,p])\n\
         PLM[m1,p] = exp(LM[m1,p] - GM[p])\n\
         SD[p] = SLD[m1,p] * PLM[m1,p]\n\
         SN[m1,m0,p] = SLN[m1,m0,p] * PLM[m1,p]\n\
         SNV[f,p] = SN[m1,m0,p] * BV[f,m1,m0]\n\
         AV[f,p] = SNV[f,p] / SD[p]\n",
    )
}

/// The 3-pass cascade with explicit batch and head ranks (§IV-B): adding
/// `B` and `H` to every tensor turns the matrix multiplications into many
/// independent per-`(b, h)` instances, with no cross-batch data sharing —
/// and, as the tests verify, without changing the pass structure over `M`.
pub fn batched_three_pass() -> Cascade {
    builtin(
        "name: attention_batched_three_pass\n\
         inputs: Q[b,h,e,p], K[b,h,e,m], V[b,h,f,m]\n\
         QK[b,h,m,p] = Q[b,h,e,p] * K[b,h,e,m]\n\
         GM[b,h,p] = max[m](QK[b,h,m,p])\n\
         SN[b,h,m,p] = exp(QK[b,h,m,p] - GM[b,h,p])\n\
         SD[b,h,p] = SN[b,h,m,p]\n\
         A[b,h,m,p] = SN[b,h,m,p] / SD[b,h,p]\n\
         AV[b,h,f,p] = A[b,h,m,p] * V[b,h,f,m]\n",
    )
}

/// Cascade 5: the 1-pass cascade (Einsums 39–56) used by FlashAttention-2
/// and adopted by FuseMax.
///
/// `M1` is both a standard rank (indexing `BQK`) and an iterative rank
/// (indexing the running tensors `RM`, `RD`, `RNV`); the stopping condition
/// is `⋄ : m1 ≥ M1` (Statement 56).
///
/// ```text
/// init:
///   BK[e,m1,m0] = K[e,m1*M0+m0]                 # Einsum 39
///   BV[f,m1,m0] = V[f,m1*M0+m0]                 # Einsum 40
///   RM[0,p]     = -inf                          # Einsum 41
///   RD[0,p]     = 0                             # Einsum 42
///   RNV[f,0,p]  = 0                             # Einsum 43
/// loop m1:
///   BQK[m1,m0,p]  = Q[e,p] * BK[e,m1,m0]        # Einsum 44
///   LM[m1,p]      = max[m0](BQK[m1,m0,p])       # Einsum 45
///   RM[m1+1,p]    = max(RM[m1,p], LM[m1,p])     # Einsum 46
///   SLN[m1,m0,p]  = exp(BQK[m1,m0,p] - RM[m1+1,p])  # Einsum 47
///   SLD[m1,p]     = SLN[m1,m0,p]                # Einsum 48
///   SLNV[f,m1,p]  = SLN[m1,m0,p] * BV[f,m1,m0]  # Einsum 49
///   PRM[m1,p]     = exp(RM[m1,p] - RM[m1+1,p])  # Einsum 50
///   SPD[m1,p]     = RD[m1,p] * PRM[m1,p]        # Einsum 51
///   RD[m1+1,p]    = SLD[m1,p] + SPD[m1,p]       # Einsum 52
///   SPNV[f,m1,p]  = RNV[f,m1,p] * PRM[m1,p]     # Einsum 53
///   RNV[f,m1+1,p] = SLNV[f,m1,p] + SPNV[f,m1,p] # Einsum 54
/// finally:
///   AV[f,p] = RNV[f,M1,p] / RD[M1,p]            # Einsum 55
/// ```
pub fn one_pass() -> Cascade {
    builtin(
        "name: attention_one_pass\n\
         inputs: Q[e,p], K[e,m], V[f,m]\n\
         init:\n\
         BK[e,m1,m0] = K[e,m1*M0+m0]\n\
         BV[f,m1,m0] = V[f,m1*M0+m0]\n\
         RM[0,p] = -inf\n\
         RD[0,p] = 0\n\
         RNV[f,0,p] = 0\n\
         loop m1:\n\
         BQK[m1,m0,p] = Q[e,p] * BK[e,m1,m0]\n\
         LM[m1,p] = max[m0](BQK[m1,m0,p])\n\
         RM[m1+1,p] = max(RM[m1,p], LM[m1,p])\n\
         SLN[m1,m0,p] = exp(BQK[m1,m0,p] - RM[m1+1,p])\n\
         SLD[m1,p] = SLN[m1,m0,p]\n\
         SLNV[f,m1,p] = SLN[m1,m0,p] * BV[f,m1,m0]\n\
         PRM[m1,p] = exp(RM[m1,p] - RM[m1+1,p])\n\
         SPD[m1,p] = RD[m1,p] * PRM[m1,p]\n\
         RD[m1+1,p] = SLD[m1,p] + SPD[m1,p]\n\
         SPNV[f,m1,p] = RNV[f,m1,p] * PRM[m1,p]\n\
         RNV[f,m1+1,p] = SLNV[f,m1,p] + SPNV[f,m1,p]\n\
         finally:\n\
         AV[f,p] = RNV[f,M1,p] / RD[M1,p]\n",
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusemax_einsum::Evaluator;
    use fusemax_tensor::{assert_tensors_close, Shape, Tensor};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const E: usize = 4;
    const F: usize = 5;
    const M: usize = 12;
    const P: usize = 6;
    const M0: usize = 3;

    fn qkv(seed: u64) -> (Tensor<f64>, Tensor<f64>, Tensor<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let q = Tensor::random_uniform(Shape::of(&[("E", E), ("P", P)]), -1.0, 1.0, &mut rng);
        let k = Tensor::random_uniform(Shape::of(&[("E", E), ("M", M)]), -1.0, 1.0, &mut rng);
        let v = Tensor::random_uniform(Shape::of(&[("F", F), ("M", M)]), -1.0, 1.0, &mut rng);
        (q, k, v)
    }

    /// Straight-line stable softmax attention, the numeric oracle.
    fn oracle(q: &Tensor<f64>, k: &Tensor<f64>, v: &Tensor<f64>) -> Tensor<f64> {
        let mut av = Tensor::zeros(Shape::of(&[("F", F), ("P", P)]));
        for p in 0..P {
            let mut qk = [0.0; M];
            for (m, qk_m) in qk.iter_mut().enumerate() {
                for e in 0..E {
                    *qk_m += q.get(&[e, p]) * k.get(&[e, m]);
                }
            }
            let gm = qk.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let sn: Vec<f64> = qk.iter().map(|x| (x - gm).exp()).collect();
            let sd: f64 = sn.iter().sum();
            for f in 0..F {
                let mut acc = 0.0;
                for (m, &n) in sn.iter().enumerate() {
                    acc += n / sd * v.get(&[f, m]);
                }
                av.set(&[f, p], acc);
            }
        }
        av
    }

    fn run(cascade: &Cascade, seed: u64) -> (Tensor<f64>, Tensor<f64>) {
        let (q, k, v) = qkv(seed);
        let want = oracle(&q, &k, &v);
        let r = Evaluator::new()
            .evaluate(cascade, &[("Q", q), ("K", k), ("V", v)], &[("M0", M0)])
            .unwrap();
        (r.tensor("AV").unwrap().clone(), want)
    }

    #[test]
    fn naive_matches_oracle_on_small_values() {
        let (got, want) = run(&naive_unstable(), 1);
        assert_tensors_close(&got, &want, 1e-9);
    }

    #[test]
    fn three_pass_matches_oracle() {
        let (got, want) = run(&three_pass(), 2);
        assert_tensors_close(&got, &want, 1e-9);
    }

    #[test]
    fn three_pass_deferred_div_matches_oracle() {
        let (got, want) = run(&three_pass_deferred_div(), 3);
        assert_tensors_close(&got, &want, 1e-9);
    }

    #[test]
    fn two_pass_matches_oracle() {
        let (got, want) = run(&two_pass(), 4);
        assert_tensors_close(&got, &want, 1e-9);
    }

    #[test]
    fn two_pass_deferred_div_matches_oracle() {
        let (got, want) = run(&two_pass_deferred_div(), 14);
        assert_tensors_close(&got, &want, 1e-9);
    }

    #[test]
    fn two_pass_deferral_reduces_divisions() {
        let (q, k, v) = qkv(15);
        let ev = Evaluator::new();
        let plain = ev
            .evaluate(
                &two_pass(),
                &[("Q", q.clone()), ("K", k.clone()), ("V", v.clone())],
                &[("M0", M0)],
            )
            .unwrap();
        let deferred = ev
            .evaluate(&two_pass_deferred_div(), &[("Q", q), ("K", k), ("V", v)], &[("M0", M0)])
            .unwrap();
        assert_eq!(plain.total_counts().div, (M * P) as u64);
        assert_eq!(deferred.total_counts().div, (F * P) as u64);
    }

    #[test]
    fn one_pass_matches_oracle() {
        let (got, want) = run(&one_pass(), 5);
        assert_tensors_close(&got, &want, 1e-9);
    }

    #[test]
    fn deferred_div_reduces_divisions_by_m_over_f() {
        // §IV-D: M×P divisions become F×P.
        let (q, k, v) = qkv(6);
        let ev = Evaluator::new();
        let plain = ev
            .evaluate(&three_pass(), &[("Q", q.clone()), ("K", k.clone()), ("V", v.clone())], &[])
            .unwrap();
        let deferred =
            ev.evaluate(&three_pass_deferred_div(), &[("Q", q), ("K", k), ("V", v)], &[]).unwrap();
        assert_eq!(plain.total_counts().div, (M * P) as u64);
        assert_eq!(deferred.total_counts().div, (F * P) as u64);
    }

    #[test]
    fn one_pass_division_count_matches_deferred_div() {
        let (q, k, v) = qkv(7);
        let r = Evaluator::new()
            .evaluate(&one_pass(), &[("Q", q), ("K", k), ("V", v)], &[("M0", M0)])
            .unwrap();
        assert_eq!(r.total_counts().div, (F * P) as u64);
    }

    #[test]
    fn one_pass_costs_extra_exponentials() {
        // The running-max corrections (PRM) add M1×P exponentials over the
        // 3-pass cascade's M×P (§IV-E3 "evidently increased compute").
        let (q, k, v) = qkv(8);
        let ev = Evaluator::new();
        let three = ev
            .evaluate(&three_pass(), &[("Q", q.clone()), ("K", k.clone()), ("V", v.clone())], &[])
            .unwrap();
        let one = ev.evaluate(&one_pass(), &[("Q", q), ("K", k), ("V", v)], &[("M0", M0)]).unwrap();
        let m1 = M / M0;
        assert_eq!(three.total_counts().exp, (M * P) as u64);
        assert_eq!(one.total_counts().exp, (M * P + m1 * P) as u64);
    }

    #[test]
    fn batched_cascade_matches_per_head_oracle() {
        // §IV-B: the batched form is many independent attention instances.
        let mut rng = StdRng::seed_from_u64(21);
        let (b, h) = (2usize, 2usize);
        let q = Tensor::random_uniform(
            Shape::of(&[("B", b), ("H", h), ("E", E), ("P", P)]),
            -1.0,
            1.0,
            &mut rng,
        );
        let k = Tensor::random_uniform(
            Shape::of(&[("B", b), ("H", h), ("E", E), ("M", M)]),
            -1.0,
            1.0,
            &mut rng,
        );
        let v = Tensor::random_uniform(
            Shape::of(&[("B", b), ("H", h), ("F", F), ("M", M)]),
            -1.0,
            1.0,
            &mut rng,
        );
        let r = Evaluator::new()
            .evaluate(
                &batched_three_pass(),
                &[("Q", q.clone()), ("K", k.clone()), ("V", v.clone())],
                &[],
            )
            .unwrap();
        let av = r.tensor("AV").unwrap();
        for bi in 0..b {
            for hi in 0..h {
                let qh = Tensor::from_fn(Shape::of(&[("E", E), ("P", P)]), |c| {
                    q.get(&[bi, hi, c[0], c[1]])
                });
                let kh = Tensor::from_fn(Shape::of(&[("E", E), ("M", M)]), |c| {
                    k.get(&[bi, hi, c[0], c[1]])
                });
                let vh = Tensor::from_fn(Shape::of(&[("F", F), ("M", M)]), |c| {
                    v.get(&[bi, hi, c[0], c[1]])
                });
                let want = oracle(&qh, &kh, &vh);
                let got = Tensor::from_fn(Shape::of(&[("F", F), ("P", P)]), |c| {
                    av.get(&[bi, hi, c[0], c[1]])
                });
                assert_tensors_close(&got, &want, 1e-9);
            }
        }
    }

    #[test]
    fn intermediate_shapes_are_as_specified() {
        let (q, k, v) = qkv(9);
        let r = Evaluator::new()
            .evaluate(&one_pass(), &[("Q", q), ("K", k), ("V", v)], &[("M0", M0)])
            .unwrap();
        let m1 = M / M0;
        assert_eq!(r.extent("M1"), Some(m1));
        // Running tensors have M1+1 coordinates (0..=M1).
        let rm = r.tensor("RM").unwrap();
        assert_eq!(rm.shape().ranks()[0].extent(), m1 + 1);
        let rnv = r.tensor("RNV").unwrap();
        assert_eq!(rnv.shape().ranks()[1].extent(), m1 + 1);
    }
}
