//! The pedagogical cascades of §III (Cascades 1–3).
//!
//! These three cascades compute the same `Z = (Σ_k A_k·B_k) · (Σ_k A_k)`
//! but differ in how many passes they make over the `K` rank of `A` and in
//! how much compute they use — the trade-off §III-C explores.

use super::builtin;
use fusemax_einsum::Cascade;

/// Cascade 1: the example 2-pass cascade (Einsums 5–6).
///
/// ```text
/// Y = A[k] * B[k]
/// Z = Y * A[k]
/// ```
///
/// Every element of `A`'s `K` fiber must be visited to produce `Y` before
/// any element can be revisited to produce `Z`, so this is a 2-pass cascade
/// over `K` for any mapping.
pub fn cascade1() -> Cascade {
    builtin(
        "name: cascade1_two_pass\n\
         inputs: A[k], B[k]\n\
         Y = A[k] * B[k]\n\
         Z = Y * A[k]\n",
    )
}

/// Cascade 2: the deferred-multiplication reassociation (Einsums 7–9).
///
/// ```text
/// Y = A[k] * B[k]
/// X = A[k]
/// Z = Y * X
/// ```
///
/// By the distributive property, `Σ_k (Y·A_k) = Y · Σ_k A_k`; both sums can
/// be built in the same pass, and `Z` needs a single multiply instead of K
/// multiplies (§III-C1).
pub fn cascade2() -> Cascade {
    builtin(
        "name: cascade2_deferred\n\
         inputs: A[k], B[k]\n\
         Y = A[k] * B[k]\n\
         X = A[k]\n\
         Z = Y * X\n",
    )
}

/// Cascade 3: the iterative construction (Einsums 10–15).
///
/// ```text
/// init:
///   RY[0] = 0
///   RZ[0] = 0
/// loop i:
///   RY[i+1] = RY[i] + A[i] * B[i]
///   RZ[i+1] = RZ[i] * RY[i+1] / RY[i] + RY[i+1] * A[i]
/// finally:
///   Z = RZ[K]
/// ```
///
/// Also 1-pass, but with extra compute per element (the running rescale of
/// `RZ`) — the same shape of trade-off the 1-pass attention cascade makes.
/// The division by `RY[0] = 0` on the first iteration is culled by the `←`
/// merge semantics of division (§II-C1).
pub fn cascade3() -> Cascade {
    builtin(
        "name: cascade3_iterative\n\
         inputs: A[i], B[i]\n\
         init:\n\
         RY[0] = 0\n\
         RZ[0] = 0\n\
         loop i:\n\
         RY[i+1] = RY[i] + A[i] * B[i]\n\
         RZ[i+1] = RZ[i] * RY[i+1] / RY[i] + RY[i+1] * A[i]\n\
         finally:\n\
         Z = RZ[I]\n",
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusemax_einsum::Evaluator;
    use fusemax_tensor::{Shape, Tensor};

    fn inputs(k: usize) -> (Tensor<f64>, Tensor<f64>) {
        let a = Tensor::from_fn(Shape::of(&[("K", k)]), |c| 0.5 + c[0] as f64);
        let b = Tensor::from_fn(Shape::of(&[("K", k)]), |c| 1.0 - 0.25 * c[0] as f64);
        (a, b)
    }

    fn expected_z(a: &Tensor<f64>, b: &Tensor<f64>) -> f64 {
        let y: f64 = a.data().iter().zip(b.data()).map(|(x, y)| x * y).sum();
        let x: f64 = a.sum();
        y * x
    }

    #[test]
    fn cascade1_computes_z() {
        let (a, b) = inputs(5);
        let want = expected_z(&a, &b);
        let r = Evaluator::new().evaluate(&cascade1(), &[("A", a), ("B", b)], &[]).unwrap();
        assert!((r.tensor("Z").unwrap().item() - want).abs() < 1e-12);
    }

    #[test]
    fn cascade2_is_functionally_equivalent_to_cascade1() {
        let (a, b) = inputs(7);
        let want = expected_z(&a, &b);
        let r = Evaluator::new().evaluate(&cascade2(), &[("A", a), ("B", b)], &[]).unwrap();
        assert!((r.tensor("Z").unwrap().item() - want).abs() < 1e-12);
    }

    #[test]
    fn cascade3_is_functionally_equivalent_to_cascade1() {
        let (a, b) = inputs(6);
        // Rank is named I in Cascade 3.
        let a = Tensor::from_vec(Shape::of(&[("I", 6)]), a.data().to_vec()).unwrap();
        let b = Tensor::from_vec(Shape::of(&[("I", 6)]), b.data().to_vec()).unwrap();
        let want = expected_z(&a, &b);
        let r = Evaluator::new().evaluate(&cascade3(), &[("A", a), ("B", b)], &[]).unwrap();
        assert!((r.tensor("Z").unwrap().item() - want).abs() < 1e-9);
    }

    #[test]
    fn cascade2_reduces_multiplications() {
        // §III-C1: Einsum 9 needs one multiply instead of K.
        let (a, b) = inputs(8);
        let r1 = Evaluator::new()
            .evaluate(&cascade1(), &[("A", a.clone()), ("B", b.clone())], &[])
            .unwrap();
        let r2 = Evaluator::new().evaluate(&cascade2(), &[("A", a), ("B", b)], &[]).unwrap();
        assert_eq!(r1.counts_for("Z").unwrap().mul, 8);
        assert_eq!(r2.counts_for("Z").unwrap().mul, 1);
    }

    #[test]
    fn cascade3_requires_extra_compute() {
        // §III-C2: the iterative form trades compute for the saved pass.
        let (a, b) = inputs(8);
        let r2 = Evaluator::new()
            .evaluate(&cascade2(), &[("A", a.clone()), ("B", b.clone())], &[])
            .unwrap();
        let a3 = Tensor::from_vec(Shape::of(&[("I", 8)]), a.data().to_vec()).unwrap();
        let b3 = Tensor::from_vec(Shape::of(&[("I", 8)]), b.data().to_vec()).unwrap();
        let r3 = Evaluator::new().evaluate(&cascade3(), &[("A", a3), ("B", b3)], &[]).unwrap();
        assert!(
            r3.total_counts().total() > r2.total_counts().total(),
            "iterative cascade should cost more compute: {} vs {}",
            r3.total_counts().total(),
            r2.total_counts().total()
        );
    }
}
