//! The paper's cascades of Einsums, built programmatically.
//!
//! Every cascade here parses from the text form in its doc comment, so the
//! Rust source doubles as a faithful transcription of the paper's Einsums.

pub mod attention;
pub mod pedagogical;

use fusemax_einsum::Cascade;

/// Parses a cascade that is known-good at compile time.
///
/// # Panics
///
/// Panics if the embedded text fails to parse — a bug in this crate, caught
/// by the unit tests of each builder.
pub(crate) fn builtin(text: &str) -> Cascade {
    Cascade::parse(text).expect("builtin cascade must parse")
}
