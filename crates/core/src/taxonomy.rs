//! The attention-algorithm taxonomy of Table I.
//!
//! The paper's second contribution: prior numerically stable attention
//! implementations fall into exactly three categories by the number of
//! passes their cascade makes over the softmax input's `M` fibers. Here the
//! classification is *computed* — each literature entry names the cascade it
//! implements, and [`classify`] runs the §III pass analysis on it.

use crate::cascades::attention;
use crate::passes::{analyze_passes, AnalysisError};
use fusemax_einsum::Cascade;
use std::fmt;

/// The three pass classes of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PassClass {
    /// One pass over each `M` fiber (FlashAttention family).
    OnePass,
    /// Two passes (local-max partitioning).
    TwoPass,
    /// Three passes (the straightforward stable cascade).
    ThreePass,
}

impl PassClass {
    /// The number of passes.
    pub fn passes(self) -> usize {
        match self {
            PassClass::OnePass => 1,
            PassClass::TwoPass => 2,
            PassClass::ThreePass => 3,
        }
    }

    /// Builds a class from a pass count.
    ///
    /// # Errors
    ///
    /// Returns the count back when it is not 1, 2, or 3.
    pub fn from_passes(n: usize) -> Result<Self, usize> {
        match n {
            1 => Ok(PassClass::OnePass),
            2 => Ok(PassClass::TwoPass),
            3 => Ok(PassClass::ThreePass),
            other => Err(other),
        }
    }
}

impl fmt::Display for PassClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-pass", self.passes())
    }
}

/// One row of Table I: a published attention implementation, the cascade it
/// realizes, and its (computed) class.
#[derive(Debug, Clone)]
pub struct AlgorithmEntry {
    /// The implementation's name as the paper cites it.
    pub name: &'static str,
    /// The venue/citation shorthand.
    pub citation: &'static str,
    /// The cascade this implementation realizes.
    pub cascade: Cascade,
    /// The class Table I assigns (checked against [`classify`] by tests).
    pub expected: PassClass,
}

/// Classifies a numerically stable attention cascade by its pass count over
/// the `M` (key-sequence) rank family.
///
/// # Errors
///
/// Returns [`AnalysisError::Unsupported`] when the cascade's pass count is
/// not 1–3 (it is then not one of Table I's classes), or propagates errors
/// from the pass analysis.
///
/// # Example
///
/// ```
/// use fusemax_core::cascades::attention;
/// use fusemax_core::taxonomy::{classify, PassClass};
///
/// assert_eq!(classify(&attention::one_pass())?, PassClass::OnePass);
/// assert_eq!(classify(&attention::three_pass())?, PassClass::ThreePass);
/// # Ok::<(), fusemax_core::passes::AnalysisError>(())
/// ```
pub fn classify(cascade: &Cascade) -> Result<PassClass, AnalysisError> {
    let analysis = analyze_passes(cascade, "M")?;
    PassClass::from_passes(analysis.num_passes).map_err(|n| AnalysisError::Unsupported {
        detail: format!("cascade `{}` makes {n} passes, outside Table I's classes", cascade.name),
    })
}

/// The literature rows of Table I, with the cascade each implements.
pub fn literature() -> Vec<AlgorithmEntry> {
    vec![
        AlgorithmEntry {
            name: "PyTorch",
            citation: "Paszke et al., NeurIPS'19",
            cascade: attention::three_pass(),
            expected: PassClass::ThreePass,
        },
        AlgorithmEntry {
            name: "TensorFlow",
            citation: "Abadi et al., OSDI'16",
            cascade: attention::three_pass(),
            expected: PassClass::ThreePass,
        },
        AlgorithmEntry {
            name: "FLAT",
            citation: "Kao et al., ASPLOS'23",
            cascade: attention::three_pass(),
            expected: PassClass::ThreePass,
        },
        AlgorithmEntry {
            name: "E.T.",
            citation: "Chen et al., SC'21",
            cascade: attention::three_pass(),
            expected: PassClass::ThreePass,
        },
        AlgorithmEntry {
            name: "TileFlow",
            citation: "Zheng et al., MICRO'23",
            cascade: attention::two_pass(),
            expected: PassClass::TwoPass,
        },
        AlgorithmEntry {
            name: "Choi et al.",
            citation: "IISWC'22",
            cascade: attention::two_pass(),
            expected: PassClass::TwoPass,
        },
        AlgorithmEntry {
            name: "FlashAttention",
            citation: "Dao et al., 2022",
            cascade: attention::one_pass(),
            expected: PassClass::OnePass,
        },
        AlgorithmEntry {
            name: "FlashAttention-2",
            citation: "Dao, 2023",
            cascade: attention::one_pass(),
            expected: PassClass::OnePass,
        },
        AlgorithmEntry {
            name: "Rabe and Staats",
            citation: "2022",
            cascade: attention::one_pass(),
            expected: PassClass::OnePass,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_literature_entry_classifies_as_table_one_says() {
        for entry in literature() {
            let got = classify(&entry.cascade).unwrap();
            assert_eq!(
                got, entry.expected,
                "{} should be {} per Table I",
                entry.name, entry.expected
            );
        }
    }

    #[test]
    fn table_has_three_of_each_camp() {
        let rows = literature();
        let count = |c: PassClass| rows.iter().filter(|r| r.expected == c).count();
        assert_eq!(count(PassClass::ThreePass), 4);
        assert_eq!(count(PassClass::TwoPass), 2);
        assert_eq!(count(PassClass::OnePass), 3);
    }

    #[test]
    fn pass_class_round_trips() {
        for c in [PassClass::OnePass, PassClass::TwoPass, PassClass::ThreePass] {
            assert_eq!(PassClass::from_passes(c.passes()).unwrap(), c);
        }
        assert_eq!(PassClass::from_passes(7), Err(7));
    }

    #[test]
    fn display_names_the_count() {
        assert_eq!(PassClass::OnePass.to_string(), "1-pass");
        assert_eq!(PassClass::ThreePass.to_string(), "3-pass");
    }

    #[test]
    fn ordering_matches_pass_count() {
        assert!(PassClass::OnePass < PassClass::TwoPass);
        assert!(PassClass::TwoPass < PassClass::ThreePass);
    }
}
