//! Batched multi-head attention (§IV-B).
//!
//! The paper notes that Einsums 22–24 extend to full batched multi-head
//! self-attention by adding batch (`B`) and head (`H`) ranks to all
//! tensors, and that this makes every matrix multiplication unique to its
//! batch element — there is no cross-batch data sharing to exploit. This
//! module provides that form: `Q: B×H×E×P`, `K: B×H×E×M`, `V: B×H×F×M` →
//! `AV: B×H×F×P`, running any [`Algorithm`] independently per `(b, h)`.

use super::{Algorithm, AttentionRun, KernelError};
use fusemax_einsum::OpCounts;
use fusemax_tensor::{Element, Shape, Tensor};

/// Batched multi-head attention dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchedDims {
    /// Batch size.
    pub b: usize,
    /// Heads.
    pub h: usize,
    /// Query/key embedding per head.
    pub e: usize,
    /// Key/value sequence length.
    pub m: usize,
    /// Query sequence length.
    pub p: usize,
    /// Value embedding per head.
    pub f: usize,
}

/// Validates `Q: B×H×E×P`, `K: B×H×E×M`, `V: B×H×F×M`.
///
/// # Errors
///
/// Returns [`KernelError::ShapeMismatch`] when rank counts or shared
/// extents disagree.
pub fn batched_dims<T: Element>(
    q: &Tensor<T>,
    k: &Tensor<T>,
    v: &Tensor<T>,
) -> Result<BatchedDims, KernelError> {
    let need_4d = |name: &str, t: &Tensor<T>| -> Result<[usize; 4], KernelError> {
        let ranks = t.shape().ranks();
        if ranks.len() != 4 {
            return Err(KernelError::ShapeMismatch {
                detail: format!("{name} must be a 4-tensor (B,H,·,·), got {} ranks", ranks.len()),
            });
        }
        Ok([ranks[0].extent(), ranks[1].extent(), ranks[2].extent(), ranks[3].extent()])
    };
    let [bq, hq, e, p] = need_4d("Q", q)?;
    let [bk, hk, e_k, m] = need_4d("K", k)?;
    let [bv, hv, f, m_v] = need_4d("V", v)?;
    if bq != bk || bq != bv || hq != hk || hq != hv {
        return Err(KernelError::ShapeMismatch {
            detail: format!("batch/head ranks disagree: Q {bq}x{hq}, K {bk}x{hk}, V {bv}x{hv}"),
        });
    }
    if e != e_k {
        return Err(KernelError::ShapeMismatch {
            detail: format!("Q and K embedding ranks differ: {e} vs {e_k}"),
        });
    }
    if m != m_v {
        return Err(KernelError::ShapeMismatch {
            detail: format!("K and V sequence ranks differ: {m} vs {m_v}"),
        });
    }
    Ok(BatchedDims { b: bq, h: hq, e, m, p, f })
}

/// Runs `algorithm` independently for every `(batch, head)` pair.
///
/// Per §IV-B, the per-head computations are fully independent: the result
/// and the operation counts are exactly `B×H` single-head runs.
///
/// # Errors
///
/// Returns [`KernelError`] on malformed shapes or tile sizes.
///
/// # Example
///
/// ```
/// use fusemax_core::kernels::{batched_attention, Algorithm};
/// use fusemax_tensor::{Shape, Tensor};
///
/// let q = Tensor::full(Shape::of(&[("B", 2), ("H", 3), ("E", 4), ("P", 5)]), 0.1_f64);
/// let k = Tensor::full(Shape::of(&[("B", 2), ("H", 3), ("E", 4), ("M", 8)]), 0.2_f64);
/// let v = Tensor::full(Shape::of(&[("B", 2), ("H", 3), ("F", 4), ("M", 8)]), 0.3_f64);
/// let run = batched_attention(Algorithm::OnePass { tile_m0: 4 }, &q, &k, &v)?;
/// assert_eq!(run.av.shape().rank_names(), vec!["B", "H", "F", "P"]);
/// # Ok::<(), fusemax_core::kernels::KernelError>(())
/// ```
pub fn batched_attention<T: Element>(
    algorithm: Algorithm,
    q: &Tensor<T>,
    k: &Tensor<T>,
    v: &Tensor<T>,
) -> Result<AttentionRun<T>, KernelError> {
    let dims = batched_dims(q, k, v)?;
    let BatchedDims { b, h, e, m, p, f } = dims;
    let mut av = Tensor::zeros(Shape::of(&[("B", b), ("H", h), ("F", f), ("P", p)]));
    let mut ops = OpCounts::default();
    let to_head =
        |t: &Tensor<T>, bi: usize, hi: usize, names: (&str, &str), d0: usize, d1: usize| {
            let view = t.subview(&[bi, hi]).expect("validated batch/head coordinates");
            Tensor::from_fn(Shape::of(&[(names.0, d0), (names.1, d1)]), |c| view.get(c))
        };
    for bi in 0..b {
        for hi in 0..h {
            let qh = to_head(q, bi, hi, ("E", "P"), e, p);
            let kh = to_head(k, bi, hi, ("E", "M"), e, m);
            let vh = to_head(v, bi, hi, ("F", "M"), f, m);
            let run = algorithm.run(&qh, &kh, &vh)?;
            for fi in 0..f {
                for pi in 0..p {
                    av.set(&[bi, hi, fi, pi], run.av.get(&[fi, pi]));
                }
            }
            ops += run.ops;
        }
    }
    Ok(AttentionRun { av, ops })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::attention_reference;
    use fusemax_tensor::assert_tensors_close;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const B: usize = 2;
    const H: usize = 3;
    const E: usize = 4;
    const F: usize = 4;
    const M: usize = 8;
    const P: usize = 5;

    fn batched_qkv(seed: u64) -> [Tensor<f64>; 3] {
        let mut rng = StdRng::seed_from_u64(seed);
        [
            Tensor::random_uniform(
                Shape::of(&[("B", B), ("H", H), ("E", E), ("P", P)]),
                -1.0,
                1.0,
                &mut rng,
            ),
            Tensor::random_uniform(
                Shape::of(&[("B", B), ("H", H), ("E", E), ("M", M)]),
                -1.0,
                1.0,
                &mut rng,
            ),
            Tensor::random_uniform(
                Shape::of(&[("B", B), ("H", H), ("F", F), ("M", M)]),
                -1.0,
                1.0,
                &mut rng,
            ),
        ]
    }

    #[test]
    fn every_head_matches_the_single_head_reference() {
        let [q, k, v] = batched_qkv(1);
        let run = batched_attention(Algorithm::OnePass { tile_m0: 4 }, &q, &k, &v).unwrap();
        for bi in 0..B {
            for hi in 0..H {
                let qh = Tensor::from_fn(Shape::of(&[("E", E), ("P", P)]), |c| {
                    q.get(&[bi, hi, c[0], c[1]])
                });
                let kh = Tensor::from_fn(Shape::of(&[("E", E), ("M", M)]), |c| {
                    k.get(&[bi, hi, c[0], c[1]])
                });
                let vh = Tensor::from_fn(Shape::of(&[("F", F), ("M", M)]), |c| {
                    v.get(&[bi, hi, c[0], c[1]])
                });
                let want = attention_reference(&qh, &kh, &vh).unwrap();
                let got = Tensor::from_fn(Shape::of(&[("F", F), ("P", P)]), |c| {
                    run.av.get(&[bi, hi, c[0], c[1]])
                });
                assert_tensors_close(&got, &want, 1e-9);
            }
        }
    }

    #[test]
    fn op_counts_scale_with_batch_times_heads() {
        // §IV-B: no cross-batch sharing — work is exactly B·H single heads.
        let [q, k, v] = batched_qkv(2);
        let batched =
            batched_attention(Algorithm::ThreePass { deferred_div: false }, &q, &k, &v).unwrap();
        let qh = Tensor::from_fn(Shape::of(&[("E", E), ("P", P)]), |c| q.get(&[0, 0, c[0], c[1]]));
        let kh = Tensor::from_fn(Shape::of(&[("E", E), ("M", M)]), |c| k.get(&[0, 0, c[0], c[1]]));
        let vh = Tensor::from_fn(Shape::of(&[("F", F), ("M", M)]), |c| v.get(&[0, 0, c[0], c[1]]));
        let single = Algorithm::ThreePass { deferred_div: false }.run(&qh, &kh, &vh).unwrap();
        let scale = (B * H) as u64;
        assert_eq!(batched.ops.mul, single.ops.mul * scale);
        assert_eq!(batched.ops.div, single.ops.div * scale);
        assert_eq!(batched.ops.exp, single.ops.exp * scale);
    }

    #[test]
    fn all_algorithms_agree_batched() {
        let [q, k, v] = batched_qkv(3);
        let reference =
            batched_attention(Algorithm::ThreePass { deferred_div: false }, &q, &k, &v).unwrap();
        for alg in [
            Algorithm::ThreePass { deferred_div: true },
            Algorithm::TwoPass { tile_m0: 4, deferred_div: false },
            Algorithm::OnePass { tile_m0: 2 },
        ] {
            let run = batched_attention(alg, &q, &k, &v).unwrap();
            assert_tensors_close(&run.av, &reference.av, 1e-9);
        }
    }

    #[test]
    fn shape_validation_errors() {
        let [q, k, v] = batched_qkv(4);
        // Wrong arity.
        let q3: Tensor<f64> = Tensor::zeros(Shape::of(&[("H", H), ("E", E), ("P", P)]));
        assert!(batched_dims(&q3, &k, &v).is_err());
        // Mismatched heads.
        let k_bad: Tensor<f64> =
            Tensor::zeros(Shape::of(&[("B", B), ("H", H + 1), ("E", E), ("M", M)]));
        let err = batched_dims(&q, &k_bad, &v).unwrap_err();
        assert!(err.to_string().contains("batch/head"));
        // Mismatched sequence.
        let v_bad: Tensor<f64> =
            Tensor::zeros(Shape::of(&[("B", B), ("H", H), ("F", F), ("M", M + 1)]));
        assert!(batched_dims(&q, &k, &v_bad).is_err());
    }
}
