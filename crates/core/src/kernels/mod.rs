//! Executable, operation-counted attention kernels.
//!
//! Each kernel implements one of the §IV cascades directly over dense
//! tensors (`f32` or `f64`), counting every scalar operation so the counts
//! can be cross-checked against the Einsum evaluator and fed to the cost
//! model. Tensors follow the paper's rank conventions: `Q: E×P`, `K: E×M`,
//! `V: F×M`, output `AV: F×P`.
//!
//! # Example
//!
//! ```
//! use fusemax_core::kernels::{Algorithm, attention_dims};
//! use fusemax_tensor::{Shape, Tensor, assert_tensors_close};
//!
//! let q = Tensor::full(Shape::of(&[("E", 2), ("P", 3)]), 0.1_f64);
//! let k = Tensor::full(Shape::of(&[("E", 2), ("M", 8)]), 0.2_f64);
//! let v = Tensor::full(Shape::of(&[("F", 4), ("M", 8)]), 0.3_f64);
//!
//! let three = Algorithm::ThreePass { deferred_div: false }.run(&q, &k, &v)?;
//! let one = Algorithm::OnePass { tile_m0: 4 }.run(&q, &k, &v)?;
//! assert_tensors_close(&three.av, &one.av, 1e-12);
//!
//! // §IV-D: deferring the division shrinks it from M×P to F×P.
//! let dims = attention_dims(&q, &k, &v)?;
//! assert_eq!(three.ops.div, (dims.m * dims.p) as u64);
//! assert_eq!(one.ops.div, (dims.f * dims.p) as u64);
//! # Ok::<(), fusemax_core::kernels::KernelError>(())
//! ```

mod batched;
mod one_pass;
mod reference;
mod three_pass;
mod two_pass;

pub use batched::{batched_attention, batched_dims, BatchedDims};
pub use reference::attention_reference;

use fusemax_einsum::OpCounts;
use fusemax_tensor::{Element, Tensor};
use std::error::Error;
use std::fmt;

/// Attention problem dimensions (Einsum 22's rank names).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttentionDims {
    /// Query/key embedding.
    pub e: usize,
    /// Key/value sequence length (the softmax rank).
    pub m: usize,
    /// Query sequence length.
    pub p: usize,
    /// Value embedding.
    pub f: usize,
}

/// The result of running an attention kernel: the output and the measured
/// operation counts.
#[derive(Debug, Clone)]
pub struct AttentionRun<T> {
    /// The attention output `AV: F×P`.
    pub av: Tensor<T>,
    /// Scalar operations performed, by kind.
    pub ops: OpCounts,
}

/// Errors from attention kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelError {
    /// Input tensor shapes disagree with the `Q:E×P / K:E×M / V:F×M`
    /// convention.
    ShapeMismatch {
        /// Description of the disagreement.
        detail: String,
    },
    /// A tile size does not divide the corresponding rank.
    BadTile {
        /// Description of the bad tiling.
        detail: String,
    },
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::ShapeMismatch { detail } => write!(f, "shape mismatch: {detail}"),
            KernelError::BadTile { detail } => write!(f, "bad tile size: {detail}"),
        }
    }
}

impl Error for KernelError {}

/// Validates `Q: E×P`, `K: E×M`, `V: F×M` and returns the dimensions.
///
/// # Errors
///
/// Returns [`KernelError::ShapeMismatch`] when rank counts or shared
/// extents disagree.
pub fn attention_dims<T: Element>(
    q: &Tensor<T>,
    k: &Tensor<T>,
    v: &Tensor<T>,
) -> Result<AttentionDims, KernelError> {
    let need_2d = |name: &str, t: &Tensor<T>| -> Result<(usize, usize), KernelError> {
        let ranks = t.shape().ranks();
        if ranks.len() != 2 {
            return Err(KernelError::ShapeMismatch {
                detail: format!("{name} must be a 2-tensor, got {} ranks", ranks.len()),
            });
        }
        Ok((ranks[0].extent(), ranks[1].extent()))
    };
    let (e_q, p) = need_2d("Q", q)?;
    let (e_k, m) = need_2d("K", k)?;
    let (f, m_v) = need_2d("V", v)?;
    if e_q != e_k {
        return Err(KernelError::ShapeMismatch {
            detail: format!("Q and K embedding ranks differ: {e_q} vs {e_k}"),
        });
    }
    if m != m_v {
        return Err(KernelError::ShapeMismatch {
            detail: format!("K and V sequence ranks differ: {m} vs {m_v}"),
        });
    }
    Ok(AttentionDims { e: e_q, m, p, f })
}

/// An attention algorithm from the §IV taxonomy, runnable as a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// The unstable cascade (no max subtraction) — overflows on large
    /// logits; kept for the §IV-C1 stability demonstration.
    NaiveUnstable,
    /// Cascade 4 (3-pass), optionally with the §IV-D division deferral.
    ThreePass {
        /// Apply the §IV-D reassociation (`SNV` then one division per
        /// `(f,p)`).
        deferred_div: bool,
    },
    /// The 2-pass local-max cascade (§IV-E2) with `M0`-sized tiles,
    /// optionally with the §IV-D division deferral (which the paper notes
    /// "can be applied to 2- and 3-pass cascades as well").
    TwoPass {
        /// The inner partition size (`M0`); must divide `M`.
        tile_m0: usize,
        /// Apply the §IV-D reassociation.
        deferred_div: bool,
    },
    /// Cascade 5 (1-pass, FlashAttention-2) with `M0`-sized tiles.
    OnePass {
        /// The inner partition size (`M0`); must divide `M`.
        tile_m0: usize,
    },
}

impl Algorithm {
    /// A short human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::NaiveUnstable => "naive-unstable",
            Algorithm::ThreePass { deferred_div: false } => "three-pass",
            Algorithm::ThreePass { deferred_div: true } => "three-pass-deferred-div",
            Algorithm::TwoPass { deferred_div: false, .. } => "two-pass",
            Algorithm::TwoPass { deferred_div: true, .. } => "two-pass-deferred-div",
            Algorithm::OnePass { .. } => "one-pass",
        }
    }

    /// Runs the kernel.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError`] on malformed shapes or tile sizes.
    pub fn run<T: Element>(
        &self,
        q: &Tensor<T>,
        k: &Tensor<T>,
        v: &Tensor<T>,
    ) -> Result<AttentionRun<T>, KernelError> {
        let dims = attention_dims(q, k, v)?;
        match self {
            Algorithm::NaiveUnstable => reference::naive_unstable(q, k, v, dims),
            Algorithm::ThreePass { deferred_div } => three_pass::run(q, k, v, dims, *deferred_div),
            Algorithm::TwoPass { tile_m0, deferred_div } => {
                check_tile(*tile_m0, dims.m)?;
                two_pass::run(q, k, v, dims, *tile_m0, *deferred_div)
            }
            Algorithm::OnePass { tile_m0 } => {
                check_tile(*tile_m0, dims.m)?;
                one_pass::run(q, k, v, dims, *tile_m0)
            }
        }
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

fn check_tile(m0: usize, m: usize) -> Result<(), KernelError> {
    if m0 == 0 || !m.is_multiple_of(m0) {
        return Err(KernelError::BadTile {
            detail: format!("tile M0={m0} must be a nonzero divisor of M={m}"),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusemax_tensor::{assert_tensors_close, Shape};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const E: usize = 6;
    const F: usize = 5;
    const M: usize = 24;
    const P: usize = 7;

    fn qkv_f64(seed: u64, scale: f64) -> (Tensor<f64>, Tensor<f64>, Tensor<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        (
            Tensor::random_uniform(Shape::of(&[("E", E), ("P", P)]), -scale, scale, &mut rng),
            Tensor::random_uniform(Shape::of(&[("E", E), ("M", M)]), -scale, scale, &mut rng),
            Tensor::random_uniform(Shape::of(&[("F", F), ("M", M)]), -scale, scale, &mut rng),
        )
    }

    #[test]
    fn all_stable_kernels_agree_with_the_reference() {
        let (q, k, v) = qkv_f64(11, 1.0);
        let want = attention_reference(&q, &k, &v).unwrap();
        for alg in [
            Algorithm::ThreePass { deferred_div: false },
            Algorithm::ThreePass { deferred_div: true },
            Algorithm::TwoPass { tile_m0: 8, deferred_div: false },
            Algorithm::TwoPass { tile_m0: 8, deferred_div: true },
            Algorithm::OnePass { tile_m0: 8 },
            Algorithm::OnePass { tile_m0: 1 },
            Algorithm::OnePass { tile_m0: M },
        ] {
            let run = alg.run(&q, &k, &v).unwrap();
            assert_tensors_close(&run.av, &want, 1e-10);
        }
    }

    #[test]
    fn naive_kernel_agrees_on_small_logits() {
        let (q, k, v) = qkv_f64(12, 0.5);
        let want = attention_reference(&q, &k, &v).unwrap();
        let run = Algorithm::NaiveUnstable.run(&q, &k, &v).unwrap();
        assert_tensors_close(&run.av, &want, 1e-10);
    }

    #[test]
    fn naive_kernel_overflows_in_f32_where_stable_kernels_survive() {
        // Logits around E·25 ≈ 150 > ln(f32::MAX) ≈ 88.7 (§IV-C1).
        let mut rng = StdRng::seed_from_u64(13);
        let q: Tensor<f32> =
            Tensor::random_uniform(Shape::of(&[("E", E), ("P", P)]), 4.0, 5.0, &mut rng);
        let k: Tensor<f32> =
            Tensor::random_uniform(Shape::of(&[("E", E), ("M", M)]), 4.0, 5.0, &mut rng);
        let v: Tensor<f32> =
            Tensor::random_uniform(Shape::of(&[("F", F), ("M", M)]), -1.0, 1.0, &mut rng);

        let naive = Algorithm::NaiveUnstable.run(&q, &k, &v).unwrap();
        assert!(!naive.av.all_finite(), "naive softmax should overflow f32");

        for alg in [
            Algorithm::ThreePass { deferred_div: false },
            Algorithm::TwoPass { tile_m0: 8, deferred_div: false },
            Algorithm::OnePass { tile_m0: 8 },
        ] {
            let run = alg.run(&q, &k, &v).unwrap();
            assert!(run.av.all_finite(), "{alg} should be numerically stable");
        }
    }

    #[test]
    fn division_counts_follow_section_iv_d() {
        let (q, k, v) = qkv_f64(14, 1.0);
        let plain = Algorithm::ThreePass { deferred_div: false }.run(&q, &k, &v).unwrap();
        let deferred = Algorithm::ThreePass { deferred_div: true }.run(&q, &k, &v).unwrap();
        let one = Algorithm::OnePass { tile_m0: 8 }.run(&q, &k, &v).unwrap();
        assert_eq!(plain.ops.div, (M * P) as u64);
        assert_eq!(deferred.ops.div, (F * P) as u64);
        assert_eq!(one.ops.div, (F * P) as u64);
    }

    #[test]
    fn one_pass_exp_overhead_shrinks_with_larger_tiles() {
        let (q, k, v) = qkv_f64(15, 1.0);
        let small = Algorithm::OnePass { tile_m0: 2 }.run(&q, &k, &v).unwrap();
        let large = Algorithm::OnePass { tile_m0: 12 }.run(&q, &k, &v).unwrap();
        // exp count = M·P + M1·P; smaller tiles mean more corrections.
        assert_eq!(small.ops.exp, ((M + M / 2) * P) as u64);
        assert_eq!(large.ops.exp, ((M + M / 12) * P) as u64);
        assert!(small.ops.exp > large.ops.exp);
    }

    #[test]
    fn shape_validation_errors() {
        let q: Tensor<f64> = Tensor::zeros(Shape::of(&[("E", 2), ("P", 3)]));
        let k: Tensor<f64> = Tensor::zeros(Shape::of(&[("E", 4), ("M", 8)]));
        let v: Tensor<f64> = Tensor::zeros(Shape::of(&[("F", 5), ("M", 8)]));
        let err = attention_dims(&q, &k, &v).unwrap_err();
        assert!(err.to_string().contains("embedding ranks differ"));

        let k2: Tensor<f64> = Tensor::zeros(Shape::of(&[("E", 2), ("M", 6)]));
        let err = attention_dims(&q, &k2, &v).unwrap_err();
        assert!(err.to_string().contains("sequence ranks differ"));

        let q1: Tensor<f64> = Tensor::zeros(Shape::of(&[("E", 2)]));
        assert!(attention_dims(&q1, &k2, &v).is_err());
    }

    #[test]
    fn bad_tile_is_rejected() {
        let (q, k, v) = qkv_f64(16, 1.0);
        for bad in [0, 5, 7] {
            let err = Algorithm::OnePass { tile_m0: bad }.run(&q, &k, &v).unwrap_err();
            assert!(matches!(err, KernelError::BadTile { .. }), "tile {bad}");
        }
    }

    #[test]
    fn algorithm_names_are_distinct() {
        let names: Vec<&str> = [
            Algorithm::NaiveUnstable,
            Algorithm::ThreePass { deferred_div: false },
            Algorithm::ThreePass { deferred_div: true },
            Algorithm::TwoPass { tile_m0: 4, deferred_div: false },
            Algorithm::TwoPass { tile_m0: 4, deferred_div: true },
            Algorithm::OnePass { tile_m0: 4 },
        ]
        .iter()
        .map(|a| a.name())
        .collect();
        let mut unique = names.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), names.len());
    }
}
