//! The 3-pass kernel (Cascade 4), with optional §IV-D division deferral.

use super::{AttentionDims, AttentionRun, KernelError};
use fusemax_einsum::OpCounts;
use fusemax_tensor::{Element, Shape, Tensor};

/// Runs Cascade 4 per query fiber: pass 1 builds `QK` and the global max,
/// pass 2 builds `SN` and the denominator, pass 3 divides (or, deferred,
/// multiplies by `V` first and divides `F×P` times).
pub(super) fn run<T: Element>(
    q: &Tensor<T>,
    k: &Tensor<T>,
    v: &Tensor<T>,
    dims: AttentionDims,
    deferred_div: bool,
) -> Result<AttentionRun<T>, KernelError> {
    let AttentionDims { e, m, p, f } = dims;
    let (qd, kd, vd) = (q.data(), k.data(), v.data());
    let mut ops = OpCounts::default();
    let mut av = Tensor::zeros(Shape::of(&[("F", f), ("P", p)]));
    let avd = av.data_mut();
    let mut qk = vec![T::ZERO; m];
    let mut sn = vec![T::ZERO; m];

    for pi in 0..p {
        // Pass 1: QK[m,p] = Q[e,p]·K[e,m]; GM[p] = max_m QK[m,p].
        let mut gm = T::neg_infinity();
        for (mi, qk_m) in qk.iter_mut().enumerate() {
            let mut acc = T::ZERO;
            for ei in 0..e {
                acc = acc + qd[ei * p + pi] * kd[ei * m + mi];
            }
            ops.mul += e as u64;
            ops.add += e as u64;
            *qk_m = acc;
            gm = gm.max_of(acc);
            ops.max += 1;
        }

        // Pass 2: SN[m,p] = e^{QK-GM}; SD[p] = Σ_m SN.
        let mut sd = T::ZERO;
        for (mi, &x) in qk.iter().enumerate() {
            sn[mi] = (x - gm).exp();
            ops.sub += 1;
            ops.exp += 1;
            sd = sd + sn[mi];
            ops.add += 1;
        }

        // Pass 3.
        if deferred_div {
            // SNV[f,p] = Σ_m SN·V; AV[f,p] = SNV/SD  (Einsums 31–32).
            for fi in 0..f {
                let mut acc = T::ZERO;
                for (mi, &n) in sn.iter().enumerate() {
                    acc = acc + n * vd[fi * m + mi];
                    ops.mul += 1;
                    ops.add += 1;
                }
                avd[fi * p + pi] = acc / sd;
                ops.div += 1;
            }
        } else {
            // A[m,p] = SN/SD; AV[f,p] = Σ_m A·V  (Einsums 37–38).
            for sn_m in sn.iter_mut() {
                *sn_m = *sn_m / sd;
                ops.div += 1;
            }
            for fi in 0..f {
                let mut acc = T::ZERO;
                for (mi, &a) in sn.iter().enumerate() {
                    acc = acc + a * vd[fi * m + mi];
                    ops.mul += 1;
                    ops.add += 1;
                }
                avd[fi * p + pi] = acc;
            }
        }
    }
    Ok(AttentionRun { av, ops })
}
