//! The 1-pass kernel (Cascade 5, FlashAttention-2 style): running max,
//! running denominator, and running numerator-times-V.

use super::{AttentionDims, AttentionRun, KernelError};
use fusemax_einsum::OpCounts;
use fusemax_tensor::{Element, Shape, Tensor};

/// Runs Cascade 5 with `M1 = M/M0` iterations per query fiber.
///
/// Per iteration `m1` (Einsums 44–54): compute the `BQK` tile and its local
/// max `LM`; advance the running max `RM`; form the tile numerator `SLN`,
/// tile denominator `SLD`, and tile numerator-times-V `SLNV` against the
/// *new* running max; rescale the previous running denominator and
/// numerator-times-V by `PRM = e^{RM_old − RM_new}` and accumulate. The
/// output divides once per `(f, p)` (Einsum 55) — the §IV-D optimization is
/// built into this cascade.
pub(super) fn run<T: Element>(
    q: &Tensor<T>,
    k: &Tensor<T>,
    v: &Tensor<T>,
    dims: AttentionDims,
    m0: usize,
) -> Result<AttentionRun<T>, KernelError> {
    let AttentionDims { e, m, p, f } = dims;
    let m1 = m / m0;
    let (qd, kd, vd) = (q.data(), k.data(), v.data());
    let mut ops = OpCounts::default();
    let mut av = Tensor::zeros(Shape::of(&[("F", f), ("P", p)]));
    let avd = av.data_mut();

    let mut bqk = vec![T::ZERO; m0];
    let mut sln = vec![T::ZERO; m0];
    let mut rnv = vec![T::ZERO; f];

    for pi in 0..p {
        // Initialization (Einsums 41–43).
        let mut rm = T::neg_infinity();
        let mut rd = T::ZERO;
        rnv.iter_mut().for_each(|x| *x = T::ZERO);

        for t in 0..m1 {
            // BQK tile (Einsum 44) and local max LM (Einsum 45).
            let mut lm = T::neg_infinity();
            for (i, b) in bqk.iter_mut().enumerate() {
                let mi = t * m0 + i;
                let mut acc = T::ZERO;
                for ei in 0..e {
                    acc = acc + qd[ei * p + pi] * kd[ei * m + mi];
                }
                ops.mul += e as u64;
                ops.add += e as u64;
                *b = acc;
                lm = lm.max_of(acc);
                ops.max += 1;
            }

            // Running max update (Einsum 46).
            let rm_new = rm.max_of(lm);
            ops.max += 1;

            // Tile numerator and denominator against RM_new (Einsums 47–48).
            let mut sld = T::ZERO;
            for (i, b) in bqk.iter().enumerate() {
                sln[i] = (*b - rm_new).exp();
                ops.sub += 1;
                ops.exp += 1;
                sld = sld + sln[i];
                ops.add += 1;
            }

            // Correction factor PRM = e^{RM_old − RM_new} (Einsum 50); this
            // is 0 on the first iteration because RM_old = −∞.
            let prm = (rm - rm_new).exp();
            ops.sub += 1;
            ops.exp += 1;

            // Running denominator (Einsums 51–52).
            rd = sld + rd * prm;
            ops.mul += 1;
            ops.add += 1;

            // Tile numerator-times-V and running accumulation
            // (Einsums 49, 53–54).
            for (fi, r) in rnv.iter_mut().enumerate() {
                let mut slnv = T::ZERO;
                for (i, &n) in sln.iter().enumerate() {
                    let mi = t * m0 + i;
                    slnv = slnv + n * vd[fi * m + mi];
                }
                ops.mul += m0 as u64;
                ops.add += m0 as u64;
                *r = slnv + *r * prm;
                ops.mul += 1;
                ops.add += 1;
            }

            rm = rm_new;
        }

        // Final division (Einsum 55): F divisions per query.
        for (fi, &r) in rnv.iter().enumerate() {
            avd[fi * p + pi] = r / rd;
            ops.div += 1;
        }
    }
    Ok(AttentionRun { av, ops })
}
