//! Reference (oracle) attention and the naive unstable kernel.

use super::{AttentionDims, AttentionRun, KernelError};
use fusemax_einsum::OpCounts;
use fusemax_tensor::{Element, Shape, Tensor};

/// Numerically stable softmax attention, computed straightforwardly.
///
/// This is the numeric oracle all other kernels are tested against; it
/// performs no operation counting. `Q: E×P`, `K: E×M`, `V: F×M` → `AV: F×P`.
/// No `1/√E` scaling is applied (§IV-C1 footnote 4).
///
/// # Errors
///
/// Returns [`KernelError::ShapeMismatch`] for malformed inputs.
///
/// # Example
///
/// ```
/// use fusemax_core::kernels::attention_reference;
/// use fusemax_tensor::{Shape, Tensor};
///
/// let q = Tensor::full(Shape::of(&[("E", 2), ("P", 1)]), 0.0_f64);
/// let k = Tensor::full(Shape::of(&[("E", 2), ("M", 4)]), 0.0_f64);
/// let v = Tensor::from_fn(Shape::of(&[("F", 1), ("M", 4)]), |c| c[1] as f64);
/// // Uniform attention averages V along M: (0+1+2+3)/4.
/// let av = attention_reference(&q, &k, &v)?;
/// assert!((av.get(&[0, 0]) - 1.5).abs() < 1e-12);
/// # Ok::<(), fusemax_core::kernels::KernelError>(())
/// ```
pub fn attention_reference<T: Element>(
    q: &Tensor<T>,
    k: &Tensor<T>,
    v: &Tensor<T>,
) -> Result<Tensor<T>, KernelError> {
    let dims = super::attention_dims(q, k, v)?;
    let AttentionDims { e, m, p, f } = dims;
    let (qd, kd, vd) = (q.data(), k.data(), v.data());
    let mut av = Tensor::zeros(Shape::of(&[("F", f), ("P", p)]));
    let avd = av.data_mut();
    let mut qk = vec![T::ZERO; m];
    let mut sn = vec![T::ZERO; m];
    for pi in 0..p {
        for (mi, qk_m) in qk.iter_mut().enumerate() {
            let mut acc = T::ZERO;
            for ei in 0..e {
                acc = acc + qd[ei * p + pi] * kd[ei * m + mi];
            }
            *qk_m = acc;
        }
        let gm = qk.iter().fold(T::neg_infinity(), |a, &b| a.max_of(b));
        let mut sd = T::ZERO;
        for (mi, &x) in qk.iter().enumerate() {
            sn[mi] = (x - gm).exp();
            sd = sd + sn[mi];
        }
        for fi in 0..f {
            let mut acc = T::ZERO;
            for (mi, &n) in sn.iter().enumerate() {
                acc = acc + n / sd * vd[fi * m + mi];
            }
            avd[fi * p + pi] = acc;
        }
    }
    Ok(av)
}

/// The naive, numerically *unstable* cascade (Einsums 26–28): exponentiates
/// raw logits, so it overflows once `QK` exceeds ~88 in `f32`.
pub(super) fn naive_unstable<T: Element>(
    q: &Tensor<T>,
    k: &Tensor<T>,
    v: &Tensor<T>,
    dims: AttentionDims,
) -> Result<AttentionRun<T>, KernelError> {
    let AttentionDims { e, m, p, f } = dims;
    let (qd, kd, vd) = (q.data(), k.data(), v.data());
    let mut ops = OpCounts::default();
    let mut av = Tensor::zeros(Shape::of(&[("F", f), ("P", p)]));
    let avd = av.data_mut();
    let mut sn = vec![T::ZERO; m];
    for pi in 0..p {
        // SN[m,p] = exp(QK[m,p]); SD[p] = Σ_m SN[m,p].
        let mut sd = T::ZERO;
        for (mi, sn_m) in sn.iter_mut().enumerate() {
            let mut acc = T::ZERO;
            for ei in 0..e {
                acc = acc + qd[ei * p + pi] * kd[ei * m + mi];
            }
            ops.mul += e as u64;
            ops.add += e as u64;
            *sn_m = acc.exp();
            ops.exp += 1;
            sd = sd + *sn_m;
            ops.add += 1;
        }
        // A[m,p] = SN/SD, computed once per (m,p) and reused across f.
        for sn_m in sn.iter_mut() {
            *sn_m = *sn_m / sd;
            ops.div += 1;
        }
        // AV[f,p] = Σ_m A·V.
        for fi in 0..f {
            let mut acc = T::ZERO;
            for (mi, &a) in sn.iter().enumerate() {
                acc = acc + a * vd[fi * m + mi];
                ops.mul += 1;
                ops.add += 1;
            }
            avd[fi * p + pi] = acc;
        }
    }
    Ok(AttentionRun { av, ops })
}
