//! The 2-pass kernel (§IV-E2): per-partition local maxima, then a global
//! correction pass.

use super::{AttentionDims, AttentionRun, KernelError};
use fusemax_einsum::OpCounts;
use fusemax_tensor::{Element, Shape, Tensor};

/// Runs the 2-pass cascade with `M1 = M/M0` partitions per query fiber.
///
/// Pass 1 (per partition): `BQK`, local max `LM`, local numerator `SLN`
/// (adjusted by `LM`), local denominator `SLD`; the global max `GM` is built
/// from the `LM`s while this is occurring. Between the passes the
/// corrections `PLM = e^{LM-GM}` and the global denominator are formed.
/// Pass 2 corrects the numerators and produces the output.
///
/// With `deferred_div` the §IV-D reassociation applies here too (the paper:
/// "it can be applied to 2- and 3-pass cascades as well"): pass 2 folds the
/// corrected numerators straight into `SNV[f,p]` and divides once per
/// `(f, p)` instead of once per `(m, p)`.
pub(super) fn run<T: Element>(
    q: &Tensor<T>,
    k: &Tensor<T>,
    v: &Tensor<T>,
    dims: AttentionDims,
    m0: usize,
    deferred_div: bool,
) -> Result<AttentionRun<T>, KernelError> {
    let AttentionDims { e, m, p, f } = dims;
    let m1 = m / m0;
    let (qd, kd, vd) = (q.data(), k.data(), v.data());
    let mut ops = OpCounts::default();
    let mut av = Tensor::zeros(Shape::of(&[("F", f), ("P", p)]));
    let avd = av.data_mut();

    let mut sln = vec![T::ZERO; m]; // SLN[m1,m0] flattened along m
    let mut lm = vec![T::ZERO; m1];
    let mut sld = vec![T::ZERO; m1];
    let mut plm = vec![T::ZERO; m1];

    for pi in 0..p {
        // ---- Pass 1 ----------------------------------------------------
        let mut gm = T::neg_infinity();
        for t in 0..m1 {
            // BQK tile and local max.
            let mut local_max = T::neg_infinity();
            for i in 0..m0 {
                let mi = t * m0 + i;
                let mut acc = T::ZERO;
                for ei in 0..e {
                    acc = acc + qd[ei * p + pi] * kd[ei * m + mi];
                }
                ops.mul += e as u64;
                ops.add += e as u64;
                sln[mi] = acc; // temporarily holds BQK
                local_max = local_max.max_of(acc);
                ops.max += 1;
            }
            lm[t] = local_max;
            // Build the global max from local maxima as pass 1 proceeds.
            gm = gm.max_of(local_max);
            ops.max += 1;

            // Local numerator and denominator, adjusted by the local max.
            let mut local_den = T::ZERO;
            for i in 0..m0 {
                let mi = t * m0 + i;
                sln[mi] = (sln[mi] - local_max).exp();
                ops.sub += 1;
                ops.exp += 1;
                local_den = local_den + sln[mi];
                ops.add += 1;
            }
            sld[t] = local_den;
        }

        // ---- Between passes: corrections in summary-land ---------------
        let mut sd = T::ZERO;
        for t in 0..m1 {
            plm[t] = (lm[t] - gm).exp();
            ops.sub += 1;
            ops.exp += 1;
            sd = sd + sld[t] * plm[t];
            ops.mul += 1;
            ops.add += 1;
        }

        // ---- Pass 2: correct numerators and combine with V ----
        if deferred_div {
            // SN[m,p] = SLN·PLM; SNV[f,p] = Σ_m SN·V; AV = SNV/SD.
            for (t, &correction) in plm.iter().enumerate() {
                for i in 0..m0 {
                    let mi = t * m0 + i;
                    sln[mi] = sln[mi] * correction;
                    ops.mul += 1;
                }
            }
            for fi in 0..f {
                let mut acc = T::ZERO;
                for (mi, &n) in sln.iter().enumerate() {
                    acc = acc + n * vd[fi * m + mi];
                    ops.mul += 1;
                    ops.add += 1;
                }
                avd[fi * p + pi] = acc / sd;
                ops.div += 1;
            }
        } else {
            // A[m,p] = SLN·PLM/SD; AV[f,p] = Σ_m A·V.
            for (t, &correction) in plm.iter().enumerate() {
                for i in 0..m0 {
                    let mi = t * m0 + i;
                    sln[mi] = sln[mi] * correction / sd;
                    ops.mul += 1;
                    ops.div += 1;
                }
            }
            for fi in 0..f {
                let mut acc = T::ZERO;
                for (mi, &a) in sln.iter().enumerate() {
                    acc = acc + a * vd[fi * m + mi];
                    ops.mul += 1;
                    ops.add += 1;
                }
                avd[fi * p + pi] = acc;
            }
        }
    }
    Ok(AttentionRun { av, ops })
}
