#![warn(missing_docs)]

//! The FuseMax paper's primary contribution, as a library.
//!
//! Three pieces (paper §III–§IV):
//!
//! 1. [`cascades`] — the paper's cascades of extended Einsums, built
//!    programmatically: the pedagogical Cascades 1–3 (§III), the naive and
//!    numerically stable softmax/attention cascades (§IV-C), the 3-pass
//!    cascade (Cascade 4), the 2-pass cascade (§IV-E2), and
//!    FlashAttention-2's 1-pass cascade (Cascade 5), plus the §IV-D
//!    division-deferral optimization.
//! 2. [`passes`] and [`footprint`] — the mapping-agnostic analysis: given a
//!    cascade and a rank family, compute the minimum number of *passes* any
//!    implementation must make over that family's fibers, and each tensor's
//!    algorithmic-minimum live footprint. [`taxonomy`] applies this to the
//!    attention literature (Table I).
//! 3. [`kernels`] — executable, operation-counted CPU implementations of
//!    every attention algorithm, used to validate numerics (all stable
//!    variants agree; the naive cascade overflows) and to cross-check the
//!    analytical cost model against measured op counts.
//!
//! # Example
//!
//! ```
//! use fusemax_core::cascades::attention;
//! use fusemax_core::passes::analyze_passes;
//!
//! // FLAT's cascade needs 3 passes over the M fibers; FlashAttention-2's
//! // needs only 1 — for *any* mapping (§III).
//! let three = analyze_passes(&attention::three_pass(), "M")?;
//! let one = analyze_passes(&attention::one_pass(), "M")?;
//! assert_eq!(three.num_passes, 3);
//! assert_eq!(one.num_passes, 1);
//! # Ok::<(), fusemax_core::passes::AnalysisError>(())
//! ```

pub mod cascades;
pub mod footprint;
pub mod kernels;
pub mod passes;
pub mod taxonomy;
