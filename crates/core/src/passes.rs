//! Pass-counting analysis over cascades of Einsums (§III).
//!
//! A *pass* over a fiber of a rank is a traversal of every element of that
//! fiber; each time an element must be revisited after visiting every other
//! element, there is an additional pass (§III-A). Because the analysis
//! operates on the cascade of Einsums — which fixes only *what* is computed,
//! not the schedule — the resulting pass count is a lower bound that holds
//! for **any** mapping and binding, including all fusion choices (§III-B).
//!
//! # How the analysis works
//!
//! For a chosen rank *family* (e.g. `M`, covering its partitions `M1`/`M0`),
//! every tensor is classified by how its data relates to the family's
//! fibers:
//!
//! * **fiber data** — carries the full rank (`QK[m,p]`, `BQK[m1,m0,p]`):
//!   element `m` depends only on element `m` of upstream fiber data;
//! * **tile summary** — reduced over the inner partition only (`LM[m1,p]`):
//!   available per-tile as a pass progresses (*fiber-coupled*), or derived
//!   purely from other summaries (*summary-derived*, e.g. `PLM`);
//! * **prefix summary** — iteratively accumulated over tiles seen so far
//!   (`RM[m1+1,p]`): never forces a new pass, because tile `m1` needs only
//!   tiles `≤ m1`;
//! * **full summary** — reduced over the entire rank (`GM[p]`, `SD[p]`):
//!   only available after the producing pass completes.
//!
//! An Einsum whose iteration space covers the full family *performs a pass*;
//! its pass index is forced up by any full summary it consumes. The
//! cascade's pass count is one plus the largest pass index.
//!
//! Partition structure is inferred from affine index expressions
//! (`m1*M0+m0`) and iterative structure from `var+1` outputs, so the
//! analysis needs nothing beyond the cascade itself — the paper's claim
//! that the cascade "makes dependencies explicit".
//!
//! # Example
//!
//! ```
//! use fusemax_core::cascades::pedagogical;
//! use fusemax_core::passes::analyze_passes;
//!
//! // Cascade 1 re-reads A's K fiber after the full dot product: 2 passes.
//! // Cascade 2 reassociates to share the pass; Cascade 3 iterates: 1 pass.
//! assert_eq!(analyze_passes(&pedagogical::cascade1(), "K")?.num_passes, 2);
//! assert_eq!(analyze_passes(&pedagogical::cascade2(), "K")?.num_passes, 1);
//! assert_eq!(analyze_passes(&pedagogical::cascade3(), "I")?.num_passes, 1);
//! # Ok::<(), fusemax_core::passes::AnalysisError>(())
//! ```

use fusemax_einsum::{family_of_rank, rank_of_var, Cascade, Einsum, IndexExpr};
use std::collections::{BTreeMap, BTreeSet};
use std::error::Error;
use std::fmt;

/// How a tensor's data relates to the fibers of the analyzed rank family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankClass {
    /// Independent of the family.
    Unrelated,
    /// Carries the full rank; element `m` is elementwise in `m`.
    FiberData {
        /// The pass during which the tensor's fibers are produced.
        born_pass: usize,
    },
    /// Reduced over the inner partition; one value per tile.
    TileSummary {
        /// The pass during which tile values become usable *same-tile*.
        source_pass: usize,
        /// The pass index from which *all* tiles are available.
        avail_all: usize,
    },
    /// Iteratively accumulated over tiles seen so far (running tensors).
    PrefixSummary {
        /// The pass during which the running values are produced.
        source_pass: usize,
    },
    /// Reduced over the entire rank (or derived from such a reduction).
    FullSummary {
        /// The pass index from which the value is available.
        avail_pass: usize,
    },
}

/// Per-Einsum result: the output tensor and, when the Einsum traverses the
/// family's fibers, the pass it must execute in (0-indexed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EinsumPass {
    /// The Einsum's output tensor name.
    pub output: String,
    /// `Some(k)` when the Einsum performs (part of) pass `k`.
    pub pass: Option<usize>,
}

/// The result of [`analyze_passes`].
#[derive(Debug, Clone)]
pub struct PassAnalysis {
    /// The analyzed rank family (e.g. `"M"`).
    pub family: String,
    /// Family ranks observed in the cascade (e.g. `["M", "M0", "M1"]`).
    pub ranks: Vec<String>,
    /// The minimum number of passes over the family's fibers required by
    /// any mapping of the cascade.
    pub num_passes: usize,
    /// Pass placement per Einsum, in cascade order.
    pub einsums: Vec<EinsumPass>,
    /// Final classification of every tensor.
    pub classes: BTreeMap<String, RankClass>,
}

impl PassAnalysis {
    /// The pass index assigned to the Einsum producing `tensor`, if that
    /// Einsum traverses the family's fibers.
    pub fn pass_of(&self, tensor: &str) -> Option<usize> {
        self.einsums.iter().rev().find(|e| e.output == tensor).and_then(|e| e.pass)
    }

    /// The classification of `tensor`.
    pub fn class_of(&self, tensor: &str) -> RankClass {
        self.classes.get(tensor).copied().unwrap_or(RankClass::Unrelated)
    }
}

impl fmt::Display for PassAnalysis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}-pass cascade over rank family {}", self.num_passes, self.family)?;
        for e in &self.einsums {
            match e.pass {
                Some(p) => writeln!(f, "  {:<6} pass {}", e.output, p + 1)?,
                None => writeln!(f, "  {:<6} (between passes)", e.output)?,
            }
        }
        Ok(())
    }
}

/// Errors produced by the pass analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalysisError {
    /// A tensor was read before any Einsum produced it and it is not a
    /// declared input.
    UnknownTensor {
        /// The tensor's name.
        name: String,
    },
    /// The cascade uses a construct the analysis does not model.
    Unsupported {
        /// Description of the construct.
        detail: String,
    },
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::UnknownTensor { name } => {
                write!(f, "tensor `{name}` read before definition and not a declared input")
            }
            AnalysisError::Unsupported { detail } => write!(f, "unsupported construct: {detail}"),
        }
    }
}

impl Error for AnalysisError {}

/// Where an Einsum sits in the cascade (affects prefix detection).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    Init,
    Body,
    Finale,
}

/// Analyzes the number of passes `cascade` must make over the fibers of
/// rank family `family` (e.g. `"M"` for the attention cascades).
///
/// # Errors
///
/// Returns [`AnalysisError::UnknownTensor`] when the cascade reads an
/// undeclared tensor.
pub fn analyze_passes(cascade: &Cascade, family: &str) -> Result<PassAnalysis, AnalysisError> {
    let ranks = family_ranks(cascade, family);
    let full_sets = full_coverage_sets(family, &ranks);

    let mut classes: BTreeMap<String, RankClass> = BTreeMap::new();
    for input in &cascade.inputs {
        let carries =
            input.indices.iter().filter_map(|i| i.rank()).any(|r| family_of_rank(&r) == family);
        classes.insert(
            input.name.clone(),
            if carries { RankClass::FiberData { born_pass: 0 } } else { RankClass::Unrelated },
        );
    }

    // Pre-classify running tensors (written as `loop_var+1` in the body) as
    // prefix summaries so reads that precede the producing Einsum in body
    // order are already treated as prefixes. The paper's iterative cascades
    // run their whole body in a single pass, so source_pass = 0.
    if let Some(loop_var) = &cascade.loop_var {
        for einsum in &cascade.body {
            if output_is_prefix(einsum, loop_var, family) {
                classes.insert(
                    einsum.output.name.clone(),
                    RankClass::PrefixSummary { source_pass: 0 },
                );
            }
        }
    }

    let mut einsums_out: Vec<EinsumPass> = Vec::new();
    let mut max_pass: Option<usize> = None;

    let sections = cascade
        .inits
        .iter()
        .map(|e| (e, Section::Init))
        .chain(cascade.body.iter().map(|e| (e, Section::Body)))
        .chain(cascade.finale.iter().map(|e| (e, Section::Finale)));

    for (einsum, section) in sections {
        let iter_ranks: BTreeSet<String> = einsum
            .iteration_vars()
            .iter()
            .map(|v| rank_of_var(v))
            .filter(|r| family_of_rank(r) == family)
            .collect();
        let traversing = full_sets.iter().any(|s| s.is_subset(&iter_ranks));
        let reduced_vars: BTreeSet<String> =
            einsum.all_reductions().into_iter().map(|(v, _)| v).collect();

        // Lower bound on this Einsum's pass (traversing) or availability
        // (summary-land) from its inputs.
        let mut floor = 0usize;
        for input in einsum.inputs() {
            let class = match classes.get(&input.name) {
                Some(c) => *c,
                None => {
                    return Err(AnalysisError::UnknownTensor { name: input.name.clone() });
                }
            };
            let read_at_extent = input
                .indices
                .iter()
                .any(|i| matches!(i, IndexExpr::Extent(r) if family_of_rank(r) == family));
            let tile_reduced = input.indices.iter().any(|i| {
                i.rank().is_some_and(|r| family_of_rank(&r) == family)
                    && i.vars().iter().any(|v| reduced_vars.contains(*v))
            });
            let contribution = match class {
                RankClass::Unrelated => 0,
                RankClass::FiberData { born_pass } => born_pass,
                RankClass::TileSummary { source_pass, avail_all } => {
                    if tile_reduced || read_at_extent {
                        avail_all
                    } else {
                        source_pass
                    }
                }
                RankClass::PrefixSummary { source_pass } => {
                    if read_at_extent {
                        source_pass + 1
                    } else {
                        source_pass
                    }
                }
                RankClass::FullSummary { avail_pass } => avail_pass,
            };
            floor = floor.max(contribution);
        }

        let pass = if traversing {
            max_pass = Some(max_pass.map_or(floor, |m| m.max(floor)));
            Some(floor)
        } else {
            None
        };
        einsums_out.push(EinsumPass { output: einsum.output.name.clone(), pass });

        // Classify the output.
        let out_class = classify_output(
            einsum,
            section,
            cascade.loop_var.as_deref(),
            family,
            &full_sets,
            traversing,
            floor,
        );
        match (classes.get(&einsum.output.name), out_class) {
            // Keep a prefix pre-classification over an init's re-write
            // (e.g. `RM[0,p] = -inf` must not demote RM).
            (Some(RankClass::PrefixSummary { .. }), RankClass::FullSummary { .. })
                if section == Section::Init => {}
            _ => {
                classes.insert(einsum.output.name.clone(), out_class);
            }
        }
    }

    Ok(PassAnalysis {
        family: family.to_string(),
        ranks: ranks.into_iter().collect(),
        num_passes: max_pass.map_or(0, |m| m + 1),
        einsums: einsums_out,
        classes,
    })
}

/// `true` when the Einsum writes `output[..., loop_var+1, ...]` on a
/// family rank — the iterative running-tensor pattern (Einsums 46/52/54).
fn output_is_prefix(einsum: &Einsum, loop_var: &str, family: &str) -> bool {
    family_of_rank(&rank_of_var(loop_var)) == family
        && einsum.output.indices.iter().any(
            |i| matches!(i, IndexExpr::Shifted { var, offset } if var == loop_var && *offset > 0),
        )
}

fn classify_output(
    einsum: &Einsum,
    section: Section,
    loop_var: Option<&str>,
    family: &str,
    full_sets: &[BTreeSet<String>],
    traversing: bool,
    floor: usize,
) -> RankClass {
    // Prefix pattern first.
    if section == Section::Body {
        if let Some(lv) = loop_var {
            if output_is_prefix(einsum, lv, family) {
                return RankClass::PrefixSummary { source_pass: floor };
            }
        }
    }
    let out_ranks: BTreeSet<String> = einsum
        .output
        .indices
        .iter()
        .filter_map(|i| i.rank())
        .filter(|r| family_of_rank(r) == family)
        .collect();
    if !out_ranks.is_empty() && full_sets.iter().any(|s| s.is_subset(&out_ranks)) {
        // Output carries the full rank: fiber data.
        return RankClass::FiberData { born_pass: floor };
    }
    if !out_ranks.is_empty() {
        // Partial coverage: a per-tile summary. Fiber-coupled tiles (made by
        // a traversing Einsum) only complete with the pass; summary-derived
        // tiles are all available as soon as their inputs are.
        let avail_all = if traversing { floor + 1 } else { floor };
        return RankClass::TileSummary { source_pass: floor, avail_all };
    }
    if traversing {
        // Reduced over the entire rank by a fiber traversal: a full summary
        // available only once the pass completes.
        return RankClass::FullSummary { avail_pass: floor + 1 };
    }
    // Summary-land output with no family ranks: a full summary if anything
    // upstream relates to the family, otherwise unrelated.
    let family_derived = floor > 0
        || einsum.inputs().iter().any(|t| {
            t.indices.iter().filter_map(|i| i.rank()).any(|r| family_of_rank(&r) == family)
        });
    if family_derived {
        RankClass::FullSummary { avail_pass: floor }
    } else {
        RankClass::Unrelated
    }
}

/// Ranks of the family appearing anywhere in the cascade.
fn family_ranks(cascade: &Cascade, family: &str) -> BTreeSet<String> {
    let mut ranks = BTreeSet::new();
    let mut add = |r: String| {
        if family_of_rank(&r) == family {
            ranks.insert(r);
        }
    };
    for einsum in cascade.all_einsums() {
        for tref in einsum.inputs().into_iter().chain([&einsum.output]) {
            for idx in &tref.indices {
                for v in idx.vars() {
                    add(rank_of_var(v));
                }
                if let IndexExpr::Split { inner_rank, .. } = idx {
                    add(inner_rank.clone());
                }
                if let IndexExpr::Extent(r) = idx {
                    add(r.clone());
                }
            }
        }
    }
    for input in &cascade.inputs {
        for idx in &input.indices {
            for v in idx.vars() {
                add(rank_of_var(v));
            }
        }
    }
    ranks
}

/// The variable-rank sets that constitute full coverage of the family: the
/// unsplit rank itself, and/or the complete set of partition levels.
fn full_coverage_sets(family: &str, ranks: &BTreeSet<String>) -> Vec<BTreeSet<String>> {
    let mut sets = Vec::new();
    if ranks.contains(family) {
        sets.push(BTreeSet::from([family.to_string()]));
    }
    let partitions: BTreeSet<String> = ranks.iter().filter(|r| *r != family).cloned().collect();
    if !partitions.is_empty() {
        sets.push(partitions);
    }
    if sets.is_empty() {
        sets.push(BTreeSet::from([family.to_string()]));
    }
    sets
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cascades::{attention, pedagogical};

    #[test]
    fn cascade1_is_two_pass_over_k() {
        let a = analyze_passes(&pedagogical::cascade1(), "K").unwrap();
        assert_eq!(a.num_passes, 2);
        assert_eq!(a.pass_of("Y"), Some(0));
        assert_eq!(a.pass_of("Z"), Some(1));
        assert_eq!(a.class_of("Y"), RankClass::FullSummary { avail_pass: 1 });
    }

    #[test]
    fn cascade2_is_one_pass_over_k() {
        let a = analyze_passes(&pedagogical::cascade2(), "K").unwrap();
        assert_eq!(a.num_passes, 1);
        // Z = Y × X happens between/after passes, traversing nothing.
        assert_eq!(a.pass_of("Z"), None);
    }

    #[test]
    fn cascade3_is_one_pass_over_i() {
        let a = analyze_passes(&pedagogical::cascade3(), "I").unwrap();
        assert_eq!(a.num_passes, 1);
        assert!(matches!(a.class_of("RY"), RankClass::PrefixSummary { .. }));
        assert!(matches!(a.class_of("RZ"), RankClass::PrefixSummary { .. }));
    }

    #[test]
    fn naive_attention_is_two_pass() {
        let a = analyze_passes(&attention::naive_unstable(), "M").unwrap();
        assert_eq!(a.num_passes, 2);
    }

    #[test]
    fn stable_attention_is_three_pass() {
        let a = analyze_passes(&attention::three_pass(), "M").unwrap();
        assert_eq!(a.num_passes, 3, "{a}");
        assert_eq!(a.pass_of("QK"), Some(0));
        assert_eq!(a.pass_of("GM"), Some(0));
        assert_eq!(a.pass_of("SN"), Some(1));
        assert_eq!(a.pass_of("SD"), Some(1));
        assert_eq!(a.pass_of("A"), Some(2));
        assert_eq!(a.pass_of("AV"), Some(2));
    }

    #[test]
    fn deferred_division_merges_passes_two_and_three() {
        // §IV-E3: the §IV-D reassociation combines Cascade 4's second and
        // third passes.
        let a = analyze_passes(&attention::three_pass_deferred_div(), "M").unwrap();
        assert_eq!(a.num_passes, 2, "{a}");
        assert_eq!(a.pass_of("SNV"), Some(1));
        assert_eq!(a.pass_of("AV"), None); // F×P work, no fiber traversal
    }

    #[test]
    fn two_pass_attention_is_two_pass() {
        let a = analyze_passes(&attention::two_pass(), "M").unwrap();
        assert_eq!(a.num_passes, 2, "{a}");
        assert_eq!(a.pass_of("BQK"), Some(0));
        assert_eq!(a.pass_of("SLN"), Some(0));
        assert_eq!(a.pass_of("SN"), Some(1));
        assert_eq!(a.pass_of("AV"), Some(1));
        // The global max is built from local maxima between the passes.
        assert_eq!(a.pass_of("GM"), None);
        assert_eq!(a.class_of("GM"), RankClass::FullSummary { avail_pass: 1 });
    }

    #[test]
    fn two_pass_deferred_div_is_still_two_pass() {
        // The deferral cannot merge the 2-pass cascade further: pass 2's
        // SN correction still traverses fibers and needs the global max.
        let a = analyze_passes(&attention::two_pass_deferred_div(), "M").unwrap();
        assert_eq!(a.num_passes, 2, "{a}");
        assert_eq!(a.pass_of("SNV"), Some(1));
        assert_eq!(a.pass_of("AV"), None);
    }

    #[test]
    fn one_pass_attention_is_one_pass() {
        let a = analyze_passes(&attention::one_pass(), "M").unwrap();
        assert_eq!(a.num_passes, 1, "{a}");
        for t in ["RM", "RD", "RNV"] {
            assert!(
                matches!(a.class_of(t), RankClass::PrefixSummary { .. }),
                "{t} should be a prefix summary"
            );
        }
        assert_eq!(a.pass_of("AV"), None);
    }

    #[test]
    fn attention_is_single_pass_over_query_rank() {
        // Over P (the query sequence) even the 3-pass cascade is 1-pass:
        // nothing reduces over P.
        let a = analyze_passes(&attention::three_pass(), "P").unwrap();
        assert_eq!(a.num_passes, 1);
    }

    #[test]
    fn unrelated_family_reports_zero_passes() {
        let a = analyze_passes(&pedagogical::cascade1(), "W").unwrap();
        assert_eq!(a.num_passes, 0);
    }

    #[test]
    fn unknown_tensor_is_an_error() {
        let c = fusemax_einsum::Cascade::parse("inputs: A[k]\nZ = A[k] * W[k]\n").unwrap();
        let err = analyze_passes(&c, "K").unwrap_err();
        assert!(matches!(err, AnalysisError::UnknownTensor { .. }));
        assert!(err.to_string().contains('W'));
    }

    #[test]
    fn display_lists_every_einsum() {
        let a = analyze_passes(&attention::three_pass(), "M").unwrap();
        let text = a.to_string();
        for name in ["QK", "GM", "SN", "SD", "A", "AV"] {
            assert!(text.contains(name), "missing {name} in:\n{text}");
        }
    }

    #[test]
    fn batch_and_head_ranks_do_not_change_the_pass_structure() {
        // §IV-B: adding B and H ranks leaves the per-fiber dependency
        // structure over M untouched.
        let a = analyze_passes(&attention::batched_three_pass(), "M").unwrap();
        assert_eq!(a.num_passes, 3, "{a}");
        // And the batched cascade is 1-pass over B and H (visited once).
        assert_eq!(analyze_passes(&attention::batched_three_pass(), "B").unwrap().num_passes, 1);
        assert_eq!(analyze_passes(&attention::batched_three_pass(), "H").unwrap().num_passes, 1);
    }

    /// Builds a synthetic cascade with `n` chained full reductions:
    /// `S1 = A[m]; B1[m] = A[m]*S1; S2 = B1[m]; B2[m] = B1[m]*S2; ...`
    /// Each stage re-reads fiber data against a summary of the previous
    /// stage, so the cascade needs exactly `n + 1` passes.
    fn reduction_chain(n: usize) -> fusemax_einsum::Cascade {
        let mut text = String::from("name: chain\ninputs: A[m]\nS1 = A[m]\n");
        let mut prev = "A".to_string();
        for i in 1..=n {
            text.push_str(&format!("B{i}[m] = {prev}[m] * S{i}\n"));
            if i < n {
                text.push_str(&format!("S{} = B{i}[m]\n", i + 1));
            }
            prev = format!("B{i}");
        }
        fusemax_einsum::Cascade::parse(&text).unwrap()
    }

    #[test]
    fn reduction_chains_need_one_pass_per_stage() {
        for n in 1..=5 {
            let c = reduction_chain(n);
            let a = analyze_passes(&c, "M").unwrap();
            assert_eq!(a.num_passes, n + 1, "chain of {n} summaries:\n{a}");
        }
    }

    #[test]
    fn pass_counts_cover_the_taxonomy() {
        for (cascade, family, want) in [
            (attention::three_pass(), "M", 3),
            (attention::two_pass(), "M", 2),
            (attention::one_pass(), "M", 1),
        ] {
            let a = analyze_passes(&cascade, family).unwrap();
            assert_eq!(a.num_passes, want);
        }
    }
}
