#![warn(missing_docs)]

//! Experiment harness: regenerates every table and figure in the paper's
//! evaluation (§VI).
//!
//! Each `figN` module produces the same rows/series the paper reports as
//! plain data ([`Grid`]s), plus text renderers, so the bench targets in
//! `crates/bench` can print them. The per-experiment index lives in
//! DESIGN.md §2; paper-vs-measured comparisons live in EXPERIMENTS.md.
//!
//! # Example
//!
//! ```
//! use fusemax_eval::summary::headline;
//! use fusemax_model::ModelParams;
//!
//! // The §VI headline: FuseMax vs FLAT on attention, averaged over all
//! // four models and six sequence lengths (paper: 6.7× at 79% energy).
//! let h = headline(&ModelParams::default());
//! assert!(h.attention_speedup_vs_flat > 4.0);
//! assert!(h.attention_energy_vs_flat < 1.0);
//! ```

pub mod explain;
pub mod fig12;
pub mod fig1b;
pub mod fig6;
pub mod fig7;
pub mod fig8_9;
pub mod render;
pub mod summary;
pub mod table1;

pub use render::Grid;
