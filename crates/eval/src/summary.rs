//! The §VI headline numbers: averages of Figs 8–11 across all models and
//! sequence lengths.

use fusemax_model::{attention_report, e2e_report, ConfigKind, ModelParams};
use fusemax_workloads::{TransformerConfig, SEQ_LENGTHS};
use std::fmt;

/// FuseMax's headline comparison (paper §I/§VI: 6.7× at 79 % energy on
/// attention and 5.3× at 83 % on end-to-end inference vs FLAT; 10× / 77 %
/// and 7.6× / 82 % vs the unfused baseline).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Headline {
    /// Mean attention speedup of +Binding over FLAT.
    pub attention_speedup_vs_flat: f64,
    /// Mean attention speedup of +Binding over the unfused baseline.
    pub attention_speedup_vs_unfused: f64,
    /// Mean attention energy of +Binding relative to FLAT.
    pub attention_energy_vs_flat: f64,
    /// Mean attention energy of +Binding relative to the unfused baseline.
    pub attention_energy_vs_unfused: f64,
    /// Mean end-to-end speedup over FLAT.
    pub e2e_speedup_vs_flat: f64,
    /// Mean end-to-end speedup over the unfused baseline.
    pub e2e_speedup_vs_unfused: f64,
    /// Mean end-to-end energy relative to FLAT.
    pub e2e_energy_vs_flat: f64,
    /// Mean end-to-end energy relative to the unfused baseline.
    pub e2e_energy_vs_unfused: f64,
}

impl fmt::Display for Headline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "attention: {:.1}x speedup vs FLAT ({:.0}% energy), {:.1}x vs unfused ({:.0}% energy)",
            self.attention_speedup_vs_flat,
            100.0 * self.attention_energy_vs_flat,
            self.attention_speedup_vs_unfused,
            100.0 * self.attention_energy_vs_unfused,
        )?;
        write!(
            f,
            "end-to-end: {:.1}x speedup vs FLAT ({:.0}% energy), {:.1}x vs unfused ({:.0}% energy)",
            self.e2e_speedup_vs_flat,
            100.0 * self.e2e_energy_vs_flat,
            self.e2e_speedup_vs_unfused,
            100.0 * self.e2e_energy_vs_unfused,
        )
    }
}

/// Computes the headline averages over all four models and six lengths.
pub fn headline(params: &ModelParams) -> Headline {
    let mut acc = [0.0f64; 8];
    let mut n = 0.0;
    for cfg in TransformerConfig::all() {
        for &l in &SEQ_LENGTHS {
            let a_unf = attention_report(ConfigKind::Unfused, &cfg, l, None, params);
            let a_flat = attention_report(ConfigKind::Flat, &cfg, l, None, params);
            let a_fm = attention_report(ConfigKind::FuseMaxBinding, &cfg, l, None, params);
            let e_unf = e2e_report(ConfigKind::Unfused, &cfg, l, params);
            let e_flat = e2e_report(ConfigKind::Flat, &cfg, l, params);
            let e_fm = e2e_report(ConfigKind::FuseMaxBinding, &cfg, l, params);
            acc[0] += a_flat.cycles / a_fm.cycles;
            acc[1] += a_unf.cycles / a_fm.cycles;
            acc[2] += a_fm.energy.total_pj() / a_flat.energy.total_pj();
            acc[3] += a_fm.energy.total_pj() / a_unf.energy.total_pj();
            acc[4] += e_flat.cycles / e_fm.cycles;
            acc[5] += e_unf.cycles / e_fm.cycles;
            acc[6] += e_fm.energy.total_pj() / e_flat.energy.total_pj();
            acc[7] += e_fm.energy.total_pj() / e_unf.energy.total_pj();
            n += 1.0;
        }
    }
    Headline {
        attention_speedup_vs_flat: acc[0] / n,
        attention_speedup_vs_unfused: acc[1] / n,
        attention_energy_vs_flat: acc[2] / n,
        attention_energy_vs_unfused: acc[3] / n,
        e2e_speedup_vs_flat: acc[4] / n,
        e2e_speedup_vs_unfused: acc[5] / n,
        e2e_energy_vs_flat: acc[6] / n,
        e2e_energy_vs_unfused: acc[7] / n,
    }
}

/// The serving headline: FuseMax+Binding versus FLAT under the canonical
/// mixed prefill/decode trace (a scenario the paper's fixed-sequence-length
/// figures cannot measure; see `crates/serve`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServingHeadline {
    /// +Binding goodput relative to FLAT (higher is better).
    pub goodput_vs_flat: f64,
    /// +Binding p99 time-to-first-token relative to FLAT (lower is
    /// better).
    pub p99_ttft_vs_flat: f64,
    /// +Binding absolute p99 TTFT in seconds on the canonical trace.
    pub p99_ttft_s: f64,
}

impl fmt::Display for ServingHeadline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "serving: {:.1}x goodput vs FLAT at {:.0}% of its p99 TTFT \
             (p99 {:.3}s on the canonical mixed trace)",
            self.goodput_vs_flat,
            100.0 * self.p99_ttft_vs_flat,
            self.p99_ttft_s,
        )
    }
}

/// The canonical mixed trace behind [`serving_headline`]: Poisson
/// arrivals, a 3:1 short/long prompt mix, short decode phases — enough
/// offered load to queue on FLAT without drowning either design.
pub fn canonical_trace() -> fusemax_serve::Trace {
    fusemax_serve::TrafficSpec {
        arrivals: fusemax_serve::Arrivals::Poisson { rate_per_s: 200.0 },
        prompt_mix: fusemax_serve::LengthMix::new([(512, 3.0), (4096, 1.0)]),
        output_mix: fusemax_serve::LengthMix::uniform([8, 32]),
        requests: 60,
    }
    .generate(2024)
}

/// Computes the serving headline: BERT on the iso-area cloud chips, FLAT
/// versus +Binding, over [`canonical_trace`].
pub fn serving_headline(params: &ModelParams) -> ServingHeadline {
    use fusemax_serve::ServeSim;
    let trace = canonical_trace();
    let bert = TransformerConfig::bert();
    let run = |kind: ConfigKind| {
        ServeSim::builder(kind, kind.default_arch(), bert.clone(), params.clone())
            .build()
            .run(&trace)
    };
    let flat = run(ConfigKind::Flat);
    let fusemax = run(ConfigKind::FuseMaxBinding);
    ServingHeadline {
        goodput_vs_flat: fusemax.goodput_rps / flat.goodput_rps,
        p99_ttft_vs_flat: fusemax.ttft.p99 / flat.ttft.p99,
        p99_ttft_s: fusemax.ttft.p99,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serving_headline_favors_fusemax() {
        let h = serving_headline(&ModelParams::default());
        assert!(h.goodput_vs_flat >= 1.0, "goodput ratio {}", h.goodput_vs_flat);
        assert!(
            h.p99_ttft_vs_flat < 1.0,
            "+Binding must cut FLAT's p99 TTFT, got {}",
            h.p99_ttft_vs_flat
        );
        assert!(h.p99_ttft_s > 0.0);
        let text = h.to_string();
        assert!(text.contains("serving:"), "{text}");
    }

    #[test]
    fn canonical_trace_is_stable() {
        assert_eq!(canonical_trace(), canonical_trace());
        assert_eq!(canonical_trace().len(), 60);
    }

    #[test]
    fn headline_shapes_match_the_paper() {
        // Paper: 6.7×/79% (attention) and 5.3×/83% (e2e) vs FLAT; 10×/77%
        // and 7.6×/82% vs unfused. Our substrate is an analytical model of
        // our own construction, so we check bands, not exact values (see
        // EXPERIMENTS.md for the measured numbers).
        let h = headline(&ModelParams::default());
        assert!(
            (4.0..14.0).contains(&h.attention_speedup_vs_flat),
            "attention vs FLAT = {}",
            h.attention_speedup_vs_flat
        );
        assert!(
            (6.0..16.0).contains(&h.attention_speedup_vs_unfused),
            "attention vs unfused = {}",
            h.attention_speedup_vs_unfused
        );
        assert!(
            (0.5..0.95).contains(&h.attention_energy_vs_flat),
            "attention energy vs FLAT = {}",
            h.attention_energy_vs_flat
        );
        assert!(
            (0.4..0.95).contains(&h.attention_energy_vs_unfused),
            "attention energy vs unfused = {}",
            h.attention_energy_vs_unfused
        );
        assert!(h.e2e_speedup_vs_flat > 2.0);
        assert!(h.e2e_speedup_vs_unfused > 2.0);
        assert!(h.e2e_energy_vs_flat < 1.0);
        assert!(h.e2e_energy_vs_unfused < 1.0);
    }

    #[test]
    fn e2e_gains_are_smaller_than_attention_gains() {
        // Linear layers are identical across configs, diluting the ratio.
        let h = headline(&ModelParams::default());
        assert!(h.e2e_speedup_vs_unfused < h.attention_speedup_vs_unfused);
    }

    #[test]
    fn display_mentions_both_scopes() {
        let text = headline(&ModelParams::default()).to_string();
        assert!(text.contains("attention:"));
        assert!(text.contains("end-to-end:"));
    }
}
