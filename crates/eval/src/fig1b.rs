//! Figure 1b: proportion of required compute (attention / linear / other)
//! versus sequence length.

use crate::render::Grid;
use fusemax_workloads::{seq_label, TransformerConfig, SEQ_LENGTHS};

/// Generates Fig 1b's stacked proportions for one model.
///
/// # Example
///
/// ```
/// use fusemax_eval::fig1b::fig1b;
/// use fusemax_workloads::TransformerConfig;
///
/// let g = fig1b(&TransformerConfig::bert());
/// // Attention dominates at 1M tokens.
/// assert!(g.get("Attn", "1M").unwrap() > 0.9);
/// ```
pub fn fig1b(cfg: &TransformerConfig) -> Grid {
    let rows = vec!["Attn".to_string(), "Linear".to_string(), "Other".to_string()];
    let cols: Vec<String> = SEQ_LENGTHS.iter().map(|&l| seq_label(l)).collect();
    let mut values = vec![Vec::new(), Vec::new(), Vec::new()];
    for &l in &SEQ_LENGTHS {
        let ops = cfg.layer_ops(l);
        values[0].push(ops.attention_fraction());
        values[1].push(ops.linear_fraction());
        values[2].push(ops.other_fraction());
    }
    Grid::new(format!("Fig 1b: proportion of compute ({})", cfg.name), rows, cols, values)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proportions_sum_to_one_per_column() {
        let g = fig1b(&TransformerConfig::bert());
        for c in 0..g.cols.len() {
            let s: f64 = (0..3).map(|r| g.values[r][c]).sum();
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn linear_dominates_short_attention_dominates_long() {
        let g = fig1b(&TransformerConfig::bert());
        assert!(g.get("Linear", "1K").unwrap() > g.get("Attn", "1K").unwrap());
        assert!(g.get("Attn", "1M").unwrap() > g.get("Linear", "1M").unwrap());
    }

    #[test]
    fn renders_with_all_lengths() {
        let text = fig1b(&TransformerConfig::xlm()).render(3);
        for label in ["1K", "4K", "16K", "64K", "256K", "1M"] {
            assert!(text.contains(label));
        }
    }
}
