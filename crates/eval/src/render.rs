//! Tabular data and text rendering shared by all figure generators.

use std::fmt;

/// A labeled 2-D grid of values — one figure panel.
#[derive(Debug, Clone, PartialEq)]
pub struct Grid {
    /// Panel title (e.g. the model name).
    pub title: String,
    /// Row labels (e.g. configurations).
    pub rows: Vec<String>,
    /// Column labels (e.g. sequence lengths).
    pub cols: Vec<String>,
    /// `rows × cols` values.
    pub values: Vec<Vec<f64>>,
}

impl Grid {
    /// Creates a grid, checking dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `values` is not `rows.len() × cols.len()` — generator bugs
    /// should fail loudly.
    pub fn new(
        title: impl Into<String>,
        rows: Vec<String>,
        cols: Vec<String>,
        values: Vec<Vec<f64>>,
    ) -> Self {
        assert_eq!(values.len(), rows.len(), "row count mismatch");
        for row in &values {
            assert_eq!(row.len(), cols.len(), "column count mismatch");
        }
        Self { title: title.into(), rows, cols, values }
    }

    /// The value at `(row_label, col_label)`, if present.
    pub fn get(&self, row: &str, col: &str) -> Option<f64> {
        let r = self.rows.iter().position(|x| x == row)?;
        let c = self.cols.iter().position(|x| x == col)?;
        Some(self.values[r][c])
    }

    /// Renders as an aligned text table with `decimals` fraction digits.
    pub fn render(&self, decimals: usize) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let label_w = self.rows.iter().map(|r| r.len()).max().unwrap_or(0).max(8);
        let col_w = self.cols.iter().map(|c| c.len()).max().unwrap_or(0).max(decimals + 4);
        out.push_str(&format!("{:<label_w$}", ""));
        for c in &self.cols {
            out.push_str(&format!(" {c:>col_w$}"));
        }
        out.push('\n');
        for (r, row) in self.rows.iter().zip(&self.values) {
            out.push_str(&format!("{r:<label_w$}"));
            for v in row {
                out.push_str(&format!(" {v:>col_w$.decimals$}"));
            }
            out.push('\n');
        }
        out
    }

    /// Renders as CSV (`title` becomes a comment line).
    pub fn to_csv(&self) -> String {
        let mut out = format!("# {}\n", self.title);
        out.push_str(&format!(",{}\n", self.cols.join(",")));
        for (r, row) in self.rows.iter().zip(&self.values) {
            let vals: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
            out.push_str(&format!("{r},{}\n", vals.join(",")));
        }
        out
    }
}

impl fmt::Display for Grid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render(3))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Grid {
        Grid::new(
            "demo",
            vec!["a".into(), "bb".into()],
            vec!["x".into(), "y".into()],
            vec![vec![1.0, 2.5], vec![3.25, 4.0]],
        )
    }

    #[test]
    fn get_by_labels() {
        let g = grid();
        assert_eq!(g.get("bb", "x"), Some(3.25));
        assert_eq!(g.get("zz", "x"), None);
        assert_eq!(g.get("a", "zz"), None);
    }

    #[test]
    fn render_contains_everything() {
        let text = grid().render(2);
        for needle in ["demo", "a", "bb", "x", "y", "2.50", "3.25"] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }

    #[test]
    fn csv_round_trip_values() {
        let csv = grid().to_csv();
        assert!(csv.starts_with("# demo"));
        assert!(csv.contains("bb,3.25,4"));
    }

    #[test]
    #[should_panic(expected = "row count")]
    fn dimension_mismatch_panics() {
        let _ = Grid::new("bad", vec!["a".into()], vec!["x".into()], vec![]);
    }
}
