//! Figure 6: 1D (a) and 2D (b) PE-array utilization across configurations,
//! models, and sequence lengths.

use crate::render::Grid;
use fusemax_model::{attention_report, ConfigKind, ModelParams};
use fusemax_workloads::{seq_label, TransformerConfig, SEQ_LENGTHS};

/// Which PE array Fig 6 reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Array {
    /// Fig 6a.
    OneD,
    /// Fig 6b.
    TwoD,
}

/// Generates one model's panel of Fig 6a/6b: rows are the five
/// configurations, columns the six sequence lengths, values utilizations.
pub fn fig6_panel(cfg: &TransformerConfig, array: Array, params: &ModelParams) -> Grid {
    let rows: Vec<String> = ConfigKind::all().iter().map(|c| c.label().to_string()).collect();
    let cols: Vec<String> = SEQ_LENGTHS.iter().map(|&l| seq_label(l)).collect();
    let values = ConfigKind::all()
        .iter()
        .map(|&kind| {
            SEQ_LENGTHS
                .iter()
                .map(|&l| {
                    let r = attention_report(kind, cfg, l, None, params);
                    match array {
                        Array::OneD => r.util_1d(),
                        Array::TwoD => r.util_2d(),
                    }
                })
                .collect()
        })
        .collect();
    let which = match array {
        Array::OneD => "6a: 1D",
        Array::TwoD => "6b: 2D",
    };
    Grid::new(format!("Fig {which} PE array utilization ({})", cfg.name), rows, cols, values)
}

/// All four models' panels.
pub fn fig6(array: Array, params: &ModelParams) -> Vec<Grid> {
    TransformerConfig::all().iter().map(|cfg| fig6_panel(cfg, array, params)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bert_panel(array: Array) -> Grid {
        fig6_panel(&TransformerConfig::bert(), array, &ModelParams::default())
    }

    #[test]
    fn utilizations_are_probabilities() {
        for array in [Array::OneD, Array::TwoD] {
            for g in fig6(array, &ModelParams::default()) {
                for row in &g.values {
                    for &v in row {
                        assert!((0.0..=1.0 + 1e-9).contains(&v), "{v} out of range in {}", g.title);
                    }
                }
            }
        }
    }

    #[test]
    fn flat_1d_cliff_at_256k() {
        let g = bert_panel(Array::OneD);
        assert!(g.get("FLAT", "64K").unwrap() > 0.9);
        assert!(g.get("FLAT", "256K").unwrap() < 0.7);
    }

    #[test]
    fn plus_cascade_is_length_independent() {
        let g = bert_panel(Array::OneD);
        let a = g.get("+Cascade", "1K").unwrap();
        let b = g.get("+Cascade", "1M").unwrap();
        assert!((a - b).abs() < 0.05);
    }

    #[test]
    fn binding_recovers_2d_utilization() {
        // Fig 6b: +Binding ≫ +Architecture ≫ FLAT at long lengths.
        let g = bert_panel(Array::TwoD);
        let binding = g.get("+Binding", "1M").unwrap();
        let arch = g.get("+Architecture", "1M").unwrap();
        let flat = g.get("FLAT", "1M").unwrap();
        assert!(binding > 0.9, "+Binding 2D util = {binding}");
        assert!(binding > arch && arch > flat);
    }

    #[test]
    fn cascade_2d_util_below_flat_at_short_lengths() {
        // §VI-B: the 1-pass cascade's extra compute lowers 2D utilization.
        let g = bert_panel(Array::TwoD);
        assert!(g.get("+Cascade", "1K").unwrap() < g.get("FLAT", "1K").unwrap());
    }

    #[test]
    fn xlm_baselines_use_the_2d_array_better() {
        let params = ModelParams::default();
        let bert = fig6_panel(&TransformerConfig::bert(), Array::TwoD, &params);
        let xlm = fig6_panel(&TransformerConfig::xlm(), Array::TwoD, &params);
        assert!(xlm.get("FLAT", "4K").unwrap() > bert.get("FLAT", "4K").unwrap());
    }

    #[test]
    fn four_panels() {
        assert_eq!(fig6(Array::OneD, &ModelParams::default()).len(), 4);
    }
}
