//! Table I: the computed classification of prior attention algorithms.

use fusemax_core::passes::AnalysisError;
use fusemax_core::taxonomy::{classify, literature, PassClass};

/// One computed row of Table I.
#[derive(Debug, Clone)]
pub struct TableRow {
    /// The algorithm's name.
    pub name: &'static str,
    /// Citation shorthand.
    pub citation: &'static str,
    /// The class Table I claims.
    pub expected: PassClass,
    /// The class the §III pass analysis computes from the cascade.
    pub computed: PassClass,
}

/// Computes every row of Table I by running the pass analysis on each
/// algorithm's cascade.
///
/// # Errors
///
/// Propagates analysis failures (none occur for the built-in cascades).
pub fn table1() -> Result<Vec<TableRow>, AnalysisError> {
    literature()
        .into_iter()
        .map(|entry| {
            Ok(TableRow {
                name: entry.name,
                citation: entry.citation,
                expected: entry.expected,
                computed: classify(&entry.cascade)?,
            })
        })
        .collect()
}

/// Renders Table I in the paper's three-column layout.
pub fn render(rows: &[TableRow]) -> String {
    let mut out = String::from("== Table I: classifying prior attention algorithms ==\n");
    for class in [PassClass::ThreePass, PassClass::TwoPass, PassClass::OnePass] {
        let members: Vec<String> = rows
            .iter()
            .filter(|r| r.computed == class)
            .map(|r| format!("{} [{}]", r.name, r.citation))
            .collect();
        out.push_str(&format!("{class}: {}\n", members.join("; ")));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn computed_classes_match_the_paper() {
        for row in table1().unwrap() {
            assert_eq!(row.computed, row.expected, "{} misclassified", row.name);
        }
    }

    #[test]
    fn render_groups_by_class() {
        let text = render(&table1().unwrap());
        assert!(text.contains("3-pass: PyTorch"));
        assert!(text.contains("FlashAttention-2"));
        assert!(text.contains("2-pass: TileFlow"));
    }
}
