//! Figure 7: 2D-array active-cycle share by Einsum, on BERT, across the
//! FLAT / +Cascade / +Architecture / +Binding configurations.

use crate::render::Grid;
use fusemax_model::{attention_report, ConfigKind, ModelParams};
use fusemax_workloads::{seq_label, TransformerConfig};

/// The configurations Fig 7 compares, with the paper's abbreviations.
pub const FIG7_CONFIGS: [(ConfigKind, &str); 4] = [
    (ConfigKind::Flat, "FL"),
    (ConfigKind::FuseMaxCascade, "+C"),
    (ConfigKind::FuseMaxArch, "+A"),
    (ConfigKind::FuseMaxBinding, "+B"),
];

/// Generates one sequence length's panel: rows are Einsum groups plus
/// `idle`, columns the four configurations, values the proportion of total
/// cycles the 2D array spends on each.
pub fn fig7_panel(cfg: &TransformerConfig, seq_len: usize, params: &ModelParams) -> Grid {
    let einsums = ["QK", "LM", "SLN", "SLD", "SLNV/AV"];
    let mut rows: Vec<String> = einsums.iter().map(|s| s.to_string()).collect();
    rows.push("idle".to_string());
    let cols: Vec<String> = FIG7_CONFIGS.iter().map(|(_, s)| s.to_string()).collect();

    let mut values = vec![Vec::new(); rows.len()];
    for (kind, _) in FIG7_CONFIGS {
        let r = attention_report(kind, cfg, seq_len, None, params);
        let mut active = 0.0;
        for (i, name) in einsums.iter().enumerate() {
            let cycles =
                r.einsum_2d.iter().find(|(n, _)| n == name).map(|(_, c)| *c).unwrap_or(0.0);
            let share = cycles / r.cycles;
            values[i].push(share);
            active += share;
        }
        values[einsums.len()].push((1.0 - active).max(0.0));
    }
    Grid::new(
        format!("Fig 7: 2D active share by Einsum ({} @ {})", cfg.name, seq_label(seq_len)),
        rows,
        cols,
        values,
    )
}

/// All six sequence lengths' panels for BERT (the paper's Fig 7 subject).
pub fn fig7(params: &ModelParams) -> Vec<Grid> {
    let bert = TransformerConfig::bert();
    fusemax_workloads::SEQ_LENGTHS.iter().map(|&l| fig7_panel(&bert, l, params)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn panel(l: usize) -> Grid {
        fig7_panel(&TransformerConfig::bert(), l, &ModelParams::default())
    }

    #[test]
    fn shares_sum_to_one() {
        let g = panel(1 << 16);
        for c in 0..g.cols.len() {
            let s: f64 = (0..g.rows.len()).map(|r| g.values[r][c]).sum();
            assert!((s - 1.0).abs() < 1e-9, "column {c} sums to {s}");
        }
    }

    #[test]
    fn flat_spends_most_cycles_idle() {
        let g = panel(1 << 14);
        assert!(g.get("idle", "FL").unwrap() > 0.8);
        // FLAT's softmax Einsums never touch the 2D array.
        assert_eq!(g.get("SLN", "FL").unwrap(), 0.0);
        assert_eq!(g.get("LM", "FL").unwrap(), 0.0);
    }

    #[test]
    fn binding_fills_the_array_with_tensor_products() {
        // §VI-B: FuseMax spends most cycles on the tensor products.
        let g = panel(1 << 18);
        let qk = g.get("QK", "+B").unwrap();
        let slnv = g.get("SLNV/AV", "+B").unwrap();
        assert!(qk + slnv > 0.8, "QK+SLNV share = {}", qk + slnv);
        assert!(g.get("idle", "+B").unwrap() < 0.1);
        // The softmax's exp now occupies a visible slice of the 2D array.
        assert!(g.get("SLN", "+B").unwrap() > 0.02);
    }

    #[test]
    fn idle_share_decreases_left_to_right() {
        // FL → +C is allowed to regress (the 1-pass cascade adds compute);
        // the architecture and binding steps must each help.
        let g = panel(1 << 16);
        let idle = |c: &str| g.get("idle", c).unwrap();
        assert!(idle("+A") < idle("+C"));
        assert!(idle("+B") < idle("+A"));
    }

    #[test]
    fn six_panels_for_bert() {
        assert_eq!(fig7(&ModelParams::default()).len(), 6);
    }
}
