//! Figure 12: area-versus-latency Pareto curves for the FuseMax design
//! family at sequence length 256K.
//!
//! Since the `fusemax-dse` subsystem landed, this module is a thin client
//! of [`fusemax_dse::Sweeper`]: the curve is the `(workload, 256K,
//! +Binding)` slice of the general design-space sweep, and one shared
//! evaluation cache serves all four models' curves.

use fusemax_dse::{DesignSpace, Sweeper};
use fusemax_model::ModelParams;
use fusemax_workloads::TransformerConfig;

/// One design point: chip area and end-to-end attention latency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParetoPoint {
    /// 2D array dimension (`n×n`).
    pub array_dim: usize,
    /// Chip area in cm².
    pub area_cm2: f64,
    /// Attention latency for the full model (all layers, batch 64) in
    /// seconds.
    pub latency_s: f64,
}

/// The array dimensions the paper sweeps (16×16 … 512×512).
pub const ARRAY_DIMS: [usize; 6] = fusemax_dse::ARRAY_DIMS;

/// The Fig 12 slice of the design space: `ARRAY_DIMS × {+Binding} ×
/// {cfg} × {seq_len}`.
fn fig12_space(cfg: &TransformerConfig, seq_len: usize) -> DesignSpace {
    DesignSpace::new().with_workloads([cfg.clone()]).with_seq_lens([seq_len])
}

/// One model's curve evaluated through an existing sweeper (so a caller
/// regenerating several figures shares one evaluation cache).
pub fn fig12_curve_with(
    sweeper: &Sweeper,
    cfg: &TransformerConfig,
    seq_len: usize,
) -> Vec<ParetoPoint> {
    sweeper
        .sweep(&fig12_space(cfg, seq_len))
        .evaluations
        .iter()
        .map(|e| ParetoPoint {
            array_dim: e.point.array_dim,
            area_cm2: e.area_cm2,
            latency_s: e.latency_s,
        })
        .collect()
}

/// Generates one model's Pareto curve at `seq_len` (the paper uses 256K).
pub fn fig12_curve(
    cfg: &TransformerConfig,
    seq_len: usize,
    params: &ModelParams,
) -> Vec<ParetoPoint> {
    fig12_curve_with(&Sweeper::new(params.clone()), cfg, seq_len)
}

/// All four models' curves at 256K.
pub fn fig12(params: &ModelParams) -> Vec<(String, Vec<ParetoPoint>)> {
    let sweeper = Sweeper::new(params.clone());
    TransformerConfig::all()
        .iter()
        .map(|cfg| (cfg.name.to_string(), fig12_curve_with(&sweeper, cfg, 1 << 18)))
        .collect()
}

/// Renders curves as aligned text rows.
pub fn render(curves: &[(String, Vec<ParetoPoint>)]) -> String {
    let mut out = String::from("== Fig 12: area vs attention latency @ 256K ==\n");
    out.push_str("model  array      area(cm2)   latency(s)\n");
    for (name, points) in curves {
        for p in points {
            out.push_str(&format!(
                "{name:<6} {dim:>3}x{dim:<3} {area:>10.3} {lat:>12.3e}\n",
                dim = p.array_dim,
                area = p.area_cm2,
                lat = p.latency_s
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusemax_arch::{ArchConfig, AreaModel};
    use fusemax_model::{attention_report, ConfigKind};

    fn bert_curve() -> Vec<ParetoPoint> {
        fig12_curve(&TransformerConfig::bert(), 1 << 18, &ModelParams::default())
    }

    #[test]
    fn latency_decreases_as_area_increases() {
        let curve = bert_curve();
        for w in curve.windows(2) {
            assert!(w[1].area_cm2 > w[0].area_cm2);
            assert!(w[1].latency_s < w[0].latency_s, "{w:?}");
        }
    }

    #[test]
    fn cloud_point_lands_in_figure_ranges() {
        // Fig 12's axes: ~0.1–10 cm² and ~10²–10⁵ s.
        let curve = bert_curve();
        let cloud = curve.iter().find(|p| p.array_dim == 256).unwrap();
        assert!((0.5..10.0).contains(&cloud.area_cm2), "{}", cloud.area_cm2);
        assert!((1e2..1e5).contains(&cloud.latency_s), "{}", cloud.latency_s);
    }

    #[test]
    fn scaling_is_roughly_inverse_quadratic() {
        // Compute-bound: 4× the PEs ≈ 4× faster (log-log slope ≈ −1 against
        // area, which is dominated by the PE array + buffer).
        let curve = bert_curve();
        let at = |n: usize| curve.iter().find(|p| p.array_dim == n).unwrap().latency_s;
        let ratio = at(128) / at(256);
        assert!((3.0..5.5).contains(&ratio), "latency ratio 128→256 = {ratio}");
    }

    #[test]
    fn xlm_is_the_slowest_model() {
        // Larger E/F and D: more attention work per layer at equal L.
        let curves = fig12(&ModelParams::default());
        let lat = |name: &str| curves.iter().find(|(n, _)| n == name).unwrap().1[4].latency_s;
        assert!(lat("XLM") > lat("T5"));
    }

    #[test]
    fn render_lists_all_points() {
        let text = render(&fig12(&ModelParams::default()));
        assert_eq!(text.lines().count(), 2 + 4 * ARRAY_DIMS.len());
        assert!(text.contains("512x512"));
    }

    #[test]
    fn dse_slice_matches_the_direct_model_exactly() {
        // The thin client must reproduce the pre-DSE implementation
        // bit-for-bit: same arch construction, same report, same unit
        // conversions.
        let params = ModelParams::default();
        let cfg = TransformerConfig::bert();
        let seq_len = 1 << 18;
        let area_model = AreaModel::default();
        let legacy: Vec<ParetoPoint> = ARRAY_DIMS
            .iter()
            .map(|&n| {
                let arch = ArchConfig::fusemax_scaled(n);
                let report = attention_report(
                    ConfigKind::FuseMaxBinding,
                    &cfg,
                    seq_len,
                    Some(&arch),
                    &params,
                );
                ParetoPoint {
                    array_dim: n,
                    area_cm2: area_model.chip_area_cm2(&arch),
                    latency_s: arch.cycles_to_seconds(report.cycles * cfg.layers as f64),
                }
            })
            .collect();
        assert_eq!(fig12_curve(&cfg, seq_len, &params), legacy);
    }

    #[test]
    fn shared_sweeper_reuses_the_cache_across_models() {
        let sweeper = Sweeper::new(ModelParams::default());
        for cfg in TransformerConfig::all() {
            let _ = fig12_curve_with(&sweeper, &cfg, 1 << 18);
        }
        assert_eq!(sweeper.cache().hits(), 0);
        // Regenerating every curve is now free.
        for cfg in TransformerConfig::all() {
            let _ = fig12_curve_with(&sweeper, &cfg, 1 << 18);
        }
        assert_eq!(sweeper.cache().hits(), 24);
    }
}
