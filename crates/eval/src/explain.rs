//! The `explain` report: exact cost attribution for the canonical
//! workload — where every cycle of the modeled design, every second of
//! served-request latency, and every unit of search budget went.
//!
//! Everything here is a pure function of [`ModelParams`] and fixed
//! seeds: the text render is golden-gated byte for byte
//! (`tests/golden/explain.txt`), the folded flamegraph stacks pass
//! [`fusemax_telemetry::validate_folded_stacks`], and the roofline
//! points feed [`fusemax_telemetry::roofline_json`] /
//! [`fusemax_telemetry::roofline_csv`]. No wall clock anywhere.

use fusemax_dse::search::{SearchBudget, SearchStrategy, SimulatedAnnealing};
use fusemax_dse::{DesignSpace, Sweeper};
use fusemax_model::{attention_roofline, e2e_report, AttnWork, ConfigKind, CostNode, ModelParams};
use fusemax_serve::{ServeSim, SlaForensics, LATENCY_BUCKETS};
use fusemax_telemetry::{folded_stack_text, RooflinePoint, SearchBudgetAttribution, VecSink};
use fusemax_workloads::TransformerConfig;
use std::fmt::Write as _;

/// The canonical attribution scope: BERT at the paper's headline 16K
/// sequence length on the +Binding cloud chip.
pub const SEQ_LEN: usize = 1 << 14;

/// The p99-TTFT SLA the forensics section judges violators against.
pub const SLA_TTFT_S: f64 = 0.25;

/// Everything the explain CLI emits, precomputed as plain data.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplainArtifacts {
    /// The human-readable report (golden-gated byte for byte).
    pub text: String,
    /// The e2e cost tree as inferno folded stacks (cycles as counts).
    pub folded: String,
    /// Per-einsum roofline points for the attention cascade.
    pub roofline: Vec<RooflinePoint>,
}

/// One cost-tree node rendered as an indented line with its share of the
/// root total.
fn render_tree(out: &mut String, node: &CostNode, indent: usize, root_total: f64) {
    let share = if root_total > 0.0 { 100.0 * node.total / root_total } else { 0.0 };
    let label = format!("{:indent$}{}", "", node.label, indent = 2 * indent);
    let _ = writeln!(out, "{label:<28} {:>14.6e} cycles  {share:>6.2}%", node.total);
    for child in &node.children {
        render_tree(out, child, indent + 1, root_total);
    }
}

/// Builds the full explain report for `params`.
pub fn explain(params: &ModelParams) -> ExplainArtifacts {
    let kind = ConfigKind::FuseMaxBinding;
    let cfg = TransformerConfig::bert();
    let arch = kind.default_arch();
    let mut text = String::new();
    let _ = writeln!(
        text,
        "fusemax explain — exact cost attribution\n\
         scope: {} @ seq_len {SEQ_LEN}, {} ({})\n",
        cfg.name,
        kind.label(),
        arch.name,
    );

    // -- 1. Where every modeled cycle went (bit-exact tree). --
    let report = e2e_report(kind, &cfg, SEQ_LEN, params);
    let tree = report.cost_breakdown(&arch);
    tree.validate().expect("cost tree sums bit-exactly by construction");
    let _ = writeln!(text, "== e2e cycle attribution (children fold bit-exactly) ==");
    render_tree(&mut text, &tree, 0, tree.total);
    let folded = folded_stack_text(&tree.folded());

    // -- 2. Roofline classification of the attention cascade. --
    let work = AttnWork::from_workload(&cfg, SEQ_LEN);
    let roofline: Vec<RooflinePoint> = attention_roofline(&work, &arch)
        .into_iter()
        .map(|e| RooflinePoint {
            label: e.label.to_string(),
            flops: e.flops,
            bytes: e.bytes,
            intensity: e.intensity,
            machine_balance: e.machine_balance,
            memory_bound: e.memory_bound,
        })
        .collect();
    let balance = roofline.first().map_or(0.0, |p| p.machine_balance);
    let _ = writeln!(text, "\n== attention roofline (machine balance {balance:.6e} flops/byte) ==");
    for p in &roofline {
        let _ = writeln!(
            text,
            "{:<8} {:>14.6e} flops  {:>14.6e} bytes  intensity {:>12.6e}  {}",
            p.label,
            p.flops,
            p.bytes,
            p.intensity,
            if p.memory_bound { "memory-bound" } else { "compute-bound" },
        );
    }

    // -- 3. Where every second of served-request latency went. --
    let trace = crate::summary::canonical_trace();
    let _ = writeln!(
        text,
        "\n== serving latency attribution (canonical mixed trace, {} requests) ==",
        trace.len()
    );
    for kind in [ConfigKind::Flat, ConfigKind::FuseMaxBinding] {
        let sim = ServeSim::builder(kind, kind.default_arch(), cfg.clone(), params.clone()).build();
        let (report, samples) = sim.run_sampled_with(&sim.service_times(&trace), &trace);
        let n = samples.attributions.len().max(1) as f64;
        let mut means = [0.0f64; LATENCY_BUCKETS.len()];
        for a in &samples.attributions {
            for (slot, (_, seconds)) in means.iter_mut().zip(a.e2e_components()) {
                *slot += seconds;
            }
        }
        let _ = writeln!(
            text,
            "[{}] p99 TTFT {:.6}s, mean bucket seconds:",
            kind.label(),
            report.ttft.p99
        );
        for (name, sum) in LATENCY_BUCKETS.iter().zip(means) {
            let _ = writeln!(text, "  {name:<12} {:>12.6}s", sum / n);
        }
        let forensics = SlaForensics::over_ttft(&samples.attributions, SLA_TTFT_S);
        for line in forensics.render().lines() {
            let _ = writeln!(text, "  {line}");
        }
    }

    // -- 4. Where the search budget went (annealing, fixed seed). --
    let space = DesignSpace::new().with_kinds(ConfigKind::all()).with_workloads([cfg.clone()]);
    let budget = SearchBudget::fraction(&space, 0.5);
    let (recorder, _sink) = VecSink::recorder();
    let strategy = SimulatedAnnealing::new(7).with_screening(true);
    let outcome =
        strategy.search(&Sweeper::new(params.clone()).with_recorder(recorder), &space, budget);
    let attribution = SearchBudgetAttribution::from_events(&outcome.events);
    let _ = writeln!(
        text,
        "\n== search budget attribution (annealing, seed 7, budget {}) ==",
        budget.evaluations
    );
    let _ = writeln!(text, "{}", attribution.json());

    ExplainArtifacts { text, folded, roofline }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusemax_telemetry::validate_folded_stacks;

    #[test]
    fn explain_is_deterministic_and_complete() {
        let params = ModelParams::default();
        let a = explain(&params);
        assert_eq!(a, explain(&params), "explain must be a pure function of params");
        assert!(a.text.contains("e2e cycle attribution"));
        assert!(a.text.contains("attention roofline"));
        assert!(a.text.contains("serving latency attribution"));
        assert!(a.text.contains("search budget attribution"));
        assert!(validate_folded_stacks(&a.folded).expect("valid folded stacks") >= 2);
        assert_eq!(a.roofline.len(), 5, "one point per cascade einsum");
    }
}
