//! Figures 8–11: attention speedup (8) and energy (9) plus end-to-end
//! inference speedup (10) and energy (11), all relative to the unfused
//! baseline.

use crate::render::Grid;
use fusemax_model::{attention_report, e2e_report, ConfigKind, ModelParams};
use fusemax_workloads::{seq_label, TransformerConfig, SEQ_LENGTHS};

/// What a panel reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Figs 8/10: `unfused_cycles / config_cycles` (higher is better).
    Speedup,
    /// Figs 9/11: `config_energy / unfused_energy` (lower is better).
    EnergyUse,
}

/// What scope a panel covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// Figs 8/9: the attention kernel only.
    Attention,
    /// Figs 10/11: full end-to-end encoder inference.
    EndToEnd,
}

/// The non-baseline configurations plotted against the unfused baseline.
const PLOTTED: [ConfigKind; 4] = [
    ConfigKind::Flat,
    ConfigKind::FuseMaxCascade,
    ConfigKind::FuseMaxArch,
    ConfigKind::FuseMaxBinding,
];

/// Generates one model's panel of Figs 8/9/10/11.
pub fn panel(cfg: &TransformerConfig, scope: Scope, metric: Metric, params: &ModelParams) -> Grid {
    let rows: Vec<String> = PLOTTED.iter().map(|c| c.label().to_string()).collect();
    let cols: Vec<String> = SEQ_LENGTHS.iter().map(|&l| seq_label(l)).collect();
    let measure = |kind: ConfigKind, l: usize| -> (f64, f64) {
        match scope {
            Scope::Attention => {
                let r = attention_report(kind, cfg, l, None, params);
                (r.cycles, r.energy.total_pj())
            }
            Scope::EndToEnd => {
                let r = e2e_report(kind, cfg, l, params);
                (r.cycles, r.energy.total_pj())
            }
        }
    };
    let values = PLOTTED
        .iter()
        .map(|&kind| {
            SEQ_LENGTHS
                .iter()
                .map(|&l| {
                    let (base_cycles, base_energy) = measure(ConfigKind::Unfused, l);
                    let (cycles, energy) = measure(kind, l);
                    match metric {
                        Metric::Speedup => base_cycles / cycles,
                        Metric::EnergyUse => energy / base_energy,
                    }
                })
                .collect()
        })
        .collect();
    let fig = match (scope, metric) {
        (Scope::Attention, Metric::Speedup) => "Fig 8: attention speedup",
        (Scope::Attention, Metric::EnergyUse) => "Fig 9: attention energy use",
        (Scope::EndToEnd, Metric::Speedup) => "Fig 10: end-to-end speedup",
        (Scope::EndToEnd, Metric::EnergyUse) => "Fig 11: end-to-end energy use",
    };
    Grid::new(format!("{fig} vs unfused ({})", cfg.name), rows, cols, values)
}

/// All four models' panels for one figure.
pub fn figure(scope: Scope, metric: Metric, params: &ModelParams) -> Vec<Grid> {
    TransformerConfig::all().iter().map(|cfg| panel(cfg, scope, metric, params)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bert(scope: Scope, metric: Metric) -> Grid {
        panel(&TransformerConfig::bert(), scope, metric, &ModelParams::default())
    }

    #[test]
    fn fusemax_attention_speedup_is_multiple_fold() {
        let g = bert(Scope::Attention, Metric::Speedup);
        for col in &g.cols {
            let s = g.get("+Binding", col).unwrap();
            assert!(s > 5.0, "speedup at {col} = {s}");
        }
    }

    #[test]
    fn configuration_steps_compound() {
        // Fig 8: +Binding ≥ +Architecture ≥ +Cascade at long lengths.
        let g = bert(Scope::Attention, Metric::Speedup);
        for col in ["256K", "1M"] {
            let b = g.get("+Binding", col).unwrap();
            let a = g.get("+Architecture", col).unwrap();
            let c = g.get("+Cascade", col).unwrap();
            assert!(b > a && a > c, "at {col}: {b} > {a} > {c}");
        }
    }

    #[test]
    fn fusemax_energy_is_below_unfused_and_flat() {
        let g = bert(Scope::Attention, Metric::EnergyUse);
        for col in &g.cols {
            let fm = g.get("+Binding", col).unwrap();
            assert!(fm < 1.0, "energy at {col} = {fm}");
        }
        // FLAT's energy blows up past the cliff.
        assert!(g.get("FLAT", "1M").unwrap() > g.get("FLAT", "16K").unwrap());
    }

    #[test]
    fn e2e_speedup_grows_with_length() {
        // Fig 10: attention dominates at long L, so gains grow.
        let g = bert(Scope::EndToEnd, Metric::Speedup);
        let short = g.get("+Binding", "1K").unwrap();
        let long = g.get("+Binding", "1M").unwrap();
        assert!(long > 2.0 * short, "{short} → {long}");
    }

    #[test]
    fn e2e_speedups_are_diluted_at_short_lengths() {
        let attn = bert(Scope::Attention, Metric::Speedup);
        let e2e = bert(Scope::EndToEnd, Metric::Speedup);
        assert!(e2e.get("+Binding", "1K").unwrap() < attn.get("+Binding", "1K").unwrap());
    }

    #[test]
    fn four_panels_per_figure() {
        let f = figure(Scope::Attention, Metric::Speedup, &ModelParams::default());
        assert_eq!(f.len(), 4);
        assert!(f[3].title.contains("XLM"));
    }
}
