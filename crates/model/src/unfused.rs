//! The unfused baseline: QK, 3-pass softmax, and AV as sequential phases
//! (§VI-A "Unfused Baseline").

use crate::common::{rf_bytes, roofline, Machine};
use crate::config::ConfigKind;
use crate::params::ModelParams;
use crate::report::{AttentionReport, AttnWork};
use fusemax_arch::{ArchConfig, EnergyBreakdown, EnergyTable};

/// Models one layer of attention on the unfused baseline.
///
/// Each phase is scheduled independently (Timeloop-style optimal mappings
/// for QK and AV), proceeding sequentially with outputs written to memory
/// between phases. The softmax phase loads `M` fibers of the input on chip
/// one by one (§VI-A) — they fit in the global buffer at every evaluated
/// sequence length — so its DRAM traffic is one read of `QK` plus one write
/// of `A`.
pub(crate) fn model(work: &AttnWork, arch: &ArchConfig, params: &ModelParams) -> AttentionReport {
    let m = Machine::of(arch);
    let AttnWork { batch_heads: bh, e, f, l } = *work;
    let pts = work.points();
    let w = m.w;

    // Phase 1: QK[m,p] = Q·K. Reads Q and K, writes QK to DRAM.
    let c2d_qk = bh * e * l * l / m.pe2;
    let dram_qk = w * pts + bh * w * 2.0 * e * l;
    let t_qk = roofline(c2d_qk, 0.0, dram_qk / m.bpc);

    // Phase 2: 3-pass softmax on the 1D array, one op per Einsum point
    // (max, sub-exp, add, divide).
    let c1d = params.baseline_softmax_ops_per_point * pts / m.pe1;
    let dram_sm = 2.0 * w * pts; // read QK, write A
    let gbuf_sm = 4.0 * w * pts; // staged fiber + SN write/read + A staging
    let t_sm = roofline(0.0, c1d, dram_sm / m.bpc);

    // Phase 3: AV[f,p] = A·V. Reads A and V, writes AV.
    let c2d_av = bh * f * l * l / m.pe2;
    let dram_av = w * pts + bh * w * 2.0 * f * l;
    let t_av = roofline(c2d_av, 0.0, dram_av / m.bpc);

    let cycles = t_qk + t_sm + t_av;
    let dram_bytes = dram_qk + dram_sm + dram_av;
    let gbuf_bytes = dram_bytes + gbuf_sm;

    let et = EnergyTable::default();
    let macc_ops = (e + f) * pts;
    let softmax_div = pts;
    let softmax_ops = (params.baseline_softmax_ops_per_point - 1.0) * pts;
    let energy = EnergyBreakdown {
        macc_2d_pj: macc_ops * et.macc_pj,
        vector_1d_pj: softmax_ops * et.vector_op_pj + softmax_div * et.div_pj,
        rf_pj: rf_bytes(macc_ops, w) * et.rf_pj_per_byte,
        gbuf_pj: gbuf_bytes * et.gbuf_pj_per_byte,
        dram_pj: dram_bytes * et.dram_pj_per_byte,
    };

    AttentionReport {
        kind: ConfigKind::Unfused,
        cycles,
        busy_2d: c2d_qk + c2d_av,
        busy_1d: c1d,
        dram_bytes,
        gbuf_bytes,
        energy,
        einsum_2d: vec![
            ("QK", c2d_qk),
            ("LM", 0.0),
            ("SLN", 0.0),
            ("SLD", 0.0),
            ("SLNV/AV", c2d_av),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusemax_workloads::TransformerConfig;

    fn report(l: usize) -> AttentionReport {
        let bert = TransformerConfig::bert();
        let work = AttnWork::from_workload(&bert, l);
        model(&work, &ArchConfig::flat_cloud(), &ModelParams::default())
    }

    #[test]
    fn softmax_phase_dominates() {
        let r = report(1 << 16);
        // 1D softmax compute (4/256 cycles per point) exceeds both matmul
        // phases' memory time (~2B/425 per point each).
        assert!(r.busy_1d > r.busy_2d);
        assert!(r.util_1d() > 0.5, "util1d = {}", r.util_1d());
        assert!(r.util_2d() < 0.2, "util2d = {}", r.util_2d());
    }

    #[test]
    fn matmul_phases_are_memory_bound() {
        // Writing QK (2 bytes/point at 425 B/cycle) outweighs the 2D
        // compute (64 MACCs/point on 65536 PEs).
        let bert = TransformerConfig::bert();
        let work = AttnWork::from_workload(&bert, 1 << 16);
        let m = Machine::of(&ArchConfig::flat_cloud());
        let c2d_qk = work.batch_heads * work.e * work.l * work.l / m.pe2;
        let mem_qk = m.w * work.points() / m.bpc;
        assert!(mem_qk > c2d_qk);
    }

    #[test]
    fn cycles_scale_quadratically_with_length() {
        let a = report(1 << 12).cycles;
        let b = report(1 << 14).cycles;
        let ratio = b / a;
        assert!((ratio - 16.0).abs() < 1.0, "quadratic scaling, got {ratio}");
    }

    #[test]
    fn dram_traffic_includes_intermediate_spills() {
        let r = report(1 << 12);
        let bert = TransformerConfig::bert();
        let work = AttnWork::from_workload(&bert, 1 << 12);
        // At least QK written+read and A written+read: 4 bytes per point.
        assert!(r.dram_bytes >= 4.0 * work.points());
    }

    #[test]
    fn utilizations_bounded() {
        for l in [1 << 10, 1 << 14, 1 << 20] {
            let r = report(l);
            assert!(r.util_2d() > 0.0 && r.util_2d() <= 1.0);
            assert!(r.util_1d() > 0.0 && r.util_1d() <= 1.0);
        }
    }
}
