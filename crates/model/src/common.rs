//! Shared machine-parameter helpers for the per-configuration models.

use fusemax_arch::ArchConfig;

/// Machine parameters extracted once per evaluation.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Machine {
    /// 2D-array MACC throughput (PEs).
    pub pe2: f64,
    /// 1D-array op throughput (PEs).
    pub pe1: f64,
    /// DRAM bytes per cycle.
    pub bpc: f64,
    /// Word size in bytes.
    pub w: f64,
    /// Global buffer bytes.
    pub buf: f64,
}

impl Machine {
    pub(crate) fn of(arch: &ArchConfig) -> Self {
        Self {
            pe2: arch.pe_count_2d() as f64,
            pe1: arch.vector_pes as f64,
            bpc: arch.dram_bytes_per_cycle(),
            w: arch.word_bytes as f64,
            buf: arch.global_buffer_bytes as f64,
        }
    }
}

/// Register-file bytes moved for `ops` two-operand operations.
pub(crate) fn rf_bytes(ops: f64, word: f64) -> f64 {
    2.0 * word * ops
}

/// Three-way roofline maximum.
pub(crate) fn roofline(compute_2d: f64, compute_1d: f64, mem: f64) -> f64 {
    compute_2d.max(compute_1d).max(mem)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_extraction() {
        let m = Machine::of(&ArchConfig::fusemax_cloud());
        assert_eq!(m.pe2, 65536.0);
        assert_eq!(m.pe1, 256.0);
        assert_eq!(m.w, 2.0);
        assert!((m.bpc - 425.5).abs() < 1.0);
    }

    #[test]
    fn roofline_takes_the_max() {
        assert_eq!(roofline(1.0, 5.0, 3.0), 5.0);
        assert_eq!(rf_bytes(10.0, 2.0), 40.0);
    }
}
