//! End-to-end transformer inference: attention plus linear layers (§VI-C).

use crate::config::ConfigKind;
use crate::linear::{linear_report, LinearReport};
use crate::params::ModelParams;
use crate::report::AttentionReport;
use fusemax_arch::{ArchConfig, EnergyBreakdown};
use fusemax_workloads::TransformerConfig;

/// Modeled end-to-end inference of a full encoder.
#[derive(Debug, Clone)]
pub struct E2eReport {
    /// The configuration.
    pub kind: ConfigKind,
    /// Total cycles over all layers.
    pub cycles: f64,
    /// Total energy over all layers.
    pub energy: EnergyBreakdown,
    /// The per-layer attention report.
    pub attention: AttentionReport,
    /// The per-layer linear report.
    pub linear: LinearReport,
    /// Number of encoder layers.
    pub layers: usize,
}

impl E2eReport {
    /// Attention's share of end-to-end cycles.
    pub fn attention_cycle_fraction(&self) -> f64 {
        self.attention.cycles / (self.attention.cycles + self.linear.cycles)
    }

    /// Wall-clock seconds at the architecture's frequency.
    pub fn seconds(&self, arch: &ArchConfig) -> f64 {
        arch.cycles_to_seconds(self.cycles)
    }
}

/// Models full encoder inference on one configuration.
///
/// The linear layers use the same mapping for every configuration (§VI-C);
/// only the attention model differs.
pub fn e2e_report(
    kind: ConfigKind,
    workload: &TransformerConfig,
    seq_len: usize,
    params: &ModelParams,
) -> E2eReport {
    e2e_report_on(kind, workload, seq_len, &kind.default_arch(), params)
}

/// [`e2e_report`] on an explicit architecture instead of the
/// configuration family's stock cloud chip — what design-space and
/// serving-simulation clients need, where the chip under evaluation is
/// precisely what varies.
pub fn e2e_report_on(
    kind: ConfigKind,
    workload: &TransformerConfig,
    seq_len: usize,
    arch: &ArchConfig,
    params: &ModelParams,
) -> E2eReport {
    let attention = crate::attention_report(kind, workload, seq_len, Some(arch), params);
    let linear = linear_report(workload, seq_len, arch, params);
    let layers = workload.layers;
    let cycles = (attention.cycles + linear.cycles) * layers as f64;
    let energy = (attention.energy + linear.energy).scaled(layers as f64);
    E2eReport { kind, cycles, energy, attention, linear, layers }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e2e(kind: ConfigKind, l: usize) -> E2eReport {
        e2e_report(kind, &TransformerConfig::bert(), l, &ModelParams::default())
    }

    #[test]
    fn e2e_speedup_is_smaller_than_attention_speedup_at_short_lengths() {
        // §VI-C: linear layers dilute attention gains at short L.
        let l = 1 << 12;
        let unfused = e2e(ConfigKind::Unfused, l);
        let fusemax = e2e(ConfigKind::FuseMaxBinding, l);
        let e2e_speedup = unfused.cycles / fusemax.cycles;
        let attn_speedup = unfused.attention.cycles / fusemax.attention.cycles;
        assert!(e2e_speedup < attn_speedup);
        assert!(e2e_speedup > 1.0);
    }

    #[test]
    fn e2e_speedup_approaches_attention_speedup_at_1m() {
        // §VI-C: at 1M tokens attention dominates end-to-end time.
        let l = 1 << 20;
        let unfused = e2e(ConfigKind::Unfused, l);
        let fusemax = e2e(ConfigKind::FuseMaxBinding, l);
        let e2e_speedup = unfused.cycles / fusemax.cycles;
        let attn_speedup = unfused.attention.cycles / fusemax.attention.cycles;
        assert!(e2e_speedup / attn_speedup > 0.8, "{e2e_speedup} vs {attn_speedup}");
    }

    #[test]
    fn attention_fraction_grows_with_length() {
        let short = e2e(ConfigKind::FuseMaxBinding, 1 << 10);
        let long = e2e(ConfigKind::FuseMaxBinding, 1 << 20);
        assert!(short.attention_cycle_fraction() < long.attention_cycle_fraction());
    }

    #[test]
    fn energy_and_cycles_scale_with_layers() {
        let r = e2e(ConfigKind::Flat, 1 << 12);
        let per_layer = r.attention.cycles + r.linear.cycles;
        assert!((r.cycles - per_layer * r.layers as f64).abs() < 1.0);
        assert_eq!(r.layers, 12);
        assert!(r.energy.total_pj() > 0.0);
    }

    #[test]
    fn explicit_stock_arch_reproduces_the_default_report() {
        let kind = ConfigKind::FuseMaxBinding;
        let bert = TransformerConfig::bert();
        let params = ModelParams::default();
        let default = e2e_report(kind, &bert, 1 << 14, &params);
        let explicit = e2e_report_on(kind, &bert, 1 << 14, &kind.default_arch(), &params);
        assert_eq!(default.cycles, explicit.cycles);
        assert_eq!(default.energy.total_pj(), explicit.energy.total_pj());
    }

    #[test]
    fn smaller_archs_are_slower_end_to_end() {
        let kind = ConfigKind::FuseMaxBinding;
        let bert = TransformerConfig::bert();
        let params = ModelParams::default();
        let big = e2e_report_on(kind, &bert, 1 << 14, &ArchConfig::fusemax_scaled(256), &params);
        let small = e2e_report_on(kind, &bert, 1 << 14, &ArchConfig::fusemax_scaled(64), &params);
        assert!(small.cycles > big.cycles);
    }

    #[test]
    fn seconds_conversion_uses_the_clock() {
        let r = e2e(ConfigKind::FuseMaxBinding, 1 << 12);
        let arch = ArchConfig::fusemax_cloud();
        assert!((r.seconds(&arch) - r.cycles / 940e6).abs() < 1e-9);
    }
}
