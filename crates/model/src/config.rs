//! The five evaluated accelerator configurations.

use fusemax_arch::ArchConfig;
use std::fmt;

/// One of the paper's evaluated configurations (Figs 6–11 legend order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ConfigKind {
    /// The unfused baseline: QK, softmax, and AV as sequential phases.
    Unfused,
    /// The FLAT baseline (corrected model, 3-pass softmax on 256 1D PEs).
    Flat,
    /// +Cascade: the 1-pass cascade on the FLAT architecture.
    FuseMaxCascade,
    /// +Architecture: FuseMax PEs, tile-serialized binding.
    FuseMaxArch,
    /// +Binding: full FuseMax (pipelined/interleaved binding).
    FuseMaxBinding,
}

impl ConfigKind {
    /// All configurations in figure order.
    pub fn all() -> [ConfigKind; 5] {
        [
            ConfigKind::Unfused,
            ConfigKind::Flat,
            ConfigKind::FuseMaxCascade,
            ConfigKind::FuseMaxArch,
            ConfigKind::FuseMaxBinding,
        ]
    }

    /// The figure-legend label.
    pub fn label(&self) -> &'static str {
        match self {
            ConfigKind::Unfused => "Unfused",
            ConfigKind::Flat => "FLAT",
            ConfigKind::FuseMaxCascade => "+Cascade",
            ConfigKind::FuseMaxArch => "+Architecture",
            ConfigKind::FuseMaxBinding => "+Binding",
        }
    }

    /// The architecture this configuration runs on by default: the FLAT
    /// cloud chip for the baselines and +Cascade, the FuseMax cloud chip
    /// once the +Architecture change is applied.
    pub fn default_arch(&self) -> ArchConfig {
        match self {
            ConfigKind::Unfused | ConfigKind::Flat | ConfigKind::FuseMaxCascade => {
                ArchConfig::flat_cloud()
            }
            ConfigKind::FuseMaxArch | ConfigKind::FuseMaxBinding => ArchConfig::fusemax_cloud(),
        }
    }

    /// `true` for the three configurations that build up FuseMax.
    pub fn is_fusemax(&self) -> bool {
        matches!(
            self,
            ConfigKind::FuseMaxCascade | ConfigKind::FuseMaxArch | ConfigKind::FuseMaxBinding
        )
    }
}

impl fmt::Display for ConfigKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusemax_arch::PeKind;

    #[test]
    fn five_configs_in_figure_order() {
        let labels: Vec<&str> = ConfigKind::all().iter().map(|c| c.label()).collect();
        assert_eq!(labels, vec!["Unfused", "FLAT", "+Cascade", "+Architecture", "+Binding"]);
    }

    #[test]
    fn architecture_switches_at_plus_architecture() {
        assert_eq!(ConfigKind::FuseMaxCascade.default_arch().pe_2d, PeKind::FlatMacc);
        assert_eq!(ConfigKind::FuseMaxArch.default_arch().pe_2d, PeKind::FuseMaxPe);
    }

    #[test]
    fn fusemax_family_flag() {
        assert!(!ConfigKind::Unfused.is_fusemax());
        assert!(!ConfigKind::Flat.is_fusemax());
        assert!(ConfigKind::FuseMaxBinding.is_fusemax());
    }
}
