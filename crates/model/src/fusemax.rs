//! The three configurations that build up FuseMax (§VI-A): +Cascade,
//! +Architecture, and +Binding.

use crate::common::{rf_bytes, roofline, Machine};
use crate::config::ConfigKind;
use crate::params::ModelParams;
use crate::report::{AttentionReport, AttnWork};
use fusemax_arch::{ArchConfig, EnergyBreakdown, EnergyTable};

/// +Cascade: the 1-pass cascade mapped onto the FLAT architecture.
///
/// All softmax-side Einsums stay on the 1D array (the FLAT 2D PEs cannot
/// execute `max`/`exp`): per point `LM + SLN + SLD`, plus the per-tile
/// running corrections (`RM`, `PRM`, `SPD`, `RD`) and the
/// `F`-wide numerator rescales (`SPNV`, `RNV`) every `M0 = 64` rows — more
/// 1D work than FLAT's 3-pass softmax (hence the *lower* 2D utilization at
/// short L, Fig 6b), but the footprint no longer grows with `L`, so there
/// is no memory cliff.
pub(crate) fn cascade_on_flat(
    work: &AttnWork,
    arch: &ArchConfig,
    params: &ModelParams,
) -> AttentionReport {
    let m = Machine::of(arch);
    let AttnWork { batch_heads: bh, e, f, l } = *work;
    let pts = work.points();
    let w = m.w;
    let m0 = params.cascade_tile_m0 as f64;

    let c2d_qk = bh * e * l * l / m.pe2;
    let c2d_av = bh * f * l * l / m.pe2;
    let c2d = c2d_qk + c2d_av;

    // 1D ops (single-cycle ops on the FLAT vector PEs, like the baselines):
    // per point LM(1) + SLN(1) + SLD(1); per (m1, p) tile boundary
    // RM(1) + PRM(1) + SPD(1) + RD(1) + SPNV(F) + RNV(F); final divisions.
    let per_point = 3.0 * pts;
    let per_tile = (4.0 + 2.0 * f) * pts / m0;
    let divs = bh * f * l;
    let c1d = (per_point + per_tile + divs) / m.pe1;

    // One pass: inputs read once, output written once. Tiles stream
    // through the global buffer (the FLAT PEs lack register files for the
    // running tensors).
    let dram_bytes = work.input_output_bytes(w);
    let gbuf_bytes = dram_bytes + 4.0 * w * pts;

    let cycles = roofline(c2d, c1d, dram_bytes / m.bpc);

    let et = EnergyTable::default();
    let macc_ops = (e + f) * pts;
    let energy = EnergyBreakdown {
        macc_2d_pj: macc_ops * et.macc_pj,
        vector_1d_pj: (per_point + per_tile) * et.vector_op_pj + divs * et.div_pj,
        rf_pj: rf_bytes(macc_ops, w) * et.rf_pj_per_byte,
        gbuf_pj: gbuf_bytes * et.gbuf_pj_per_byte,
        dram_pj: dram_bytes * et.dram_pj_per_byte,
    };

    AttentionReport {
        kind: ConfigKind::FuseMaxCascade,
        cycles,
        busy_2d: c2d,
        busy_1d: c1d,
        dram_bytes,
        gbuf_bytes,
        energy,
        einsum_2d: vec![
            ("QK", c2d_qk),
            ("LM", 0.0),
            ("SLN", 0.0),
            ("SLD", 0.0),
            ("SLNV/AV", c2d_av),
        ],
    }
}

/// Tile-level costs shared by +Architecture and +Binding.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TileCosts {
    /// Tiles per attention head: `ceil(L/M0)·ceil(L/P0)`.
    pub tiles_per_head: f64,
    /// 2D-array cycles per tile.
    pub t2d: f64,
    /// 1D-array cycles per tile.
    pub t1d: f64,
    /// 2D per-tile cycles by Einsum: QK, LM, SLN, SLD, SLNV.
    pub split_2d: [f64; 5],
    /// 1D single-cycle-op count per tile (energy accounting).
    pub ops_1d_per_tile: f64,
}

/// Computes per-tile costs of the FuseMax mapping (`M0 = rows`,
/// `P0 = cols`, `M0×P0` = the 2D array, per Mapping 1).
pub(crate) fn tile_costs(work: &AttnWork, arch: &ArchConfig, params: &ModelParams) -> TileCosts {
    let m = Machine::of(arch);
    let AttnWork { e, f, l, .. } = *work;
    let m0 = arch.array_rows as f64;
    let p0 = arch.array_cols as f64;
    let tile_pts = m0 * p0;

    // 2D per-point costs (Einsums 44–49 mapped to the array): BQK (E
    // MACCs), LM (1 max, reduced spatially), SLN (sub + 6-MACC exp), SLD
    // (1 add, reduced spatially), SLNV (F MACCs).
    let sub_exp = params.sub_exp_cycles();
    let split = [e, 1.0, sub_exp, 1.0, f];
    let ops2d_pt: f64 = split.iter().sum();
    let t2d = ops2d_pt * tile_pts / m.pe2;

    // 1D per-(m1, p) costs (Einsums 46, 50–54 plus Einsum 55's divisions,
    // folded in): RM (1 max) + PRM (sub-exp) + SPD (1) + RD (1) +
    // SPNV (F) + RNV (F), for P0 values per tile.
    let ops1d_per_mp = 3.0 + sub_exp + 2.0 * f;
    let ops_1d_per_tile = ops1d_per_mp * p0;
    let t1d = ops_1d_per_tile / m.pe1;

    let tiles_per_head = (l / m0).ceil() * (l / p0).ceil();
    let scale = tile_pts / m.pe2; // 1 when the tile exactly covers the array
    TileCosts { tiles_per_head, t2d, t1d, split_2d: split.map(|s| s * scale), ops_1d_per_tile }
}

/// +Architecture: FuseMax PEs with a *serialized* binding — each `BQK` tile
/// is fully produced and consumed before the next starts (§VI-A), so every
/// tile pays the 2D work, then the 1D work, then the array fill/drain.
pub(crate) fn serialized(
    work: &AttnWork,
    arch: &ArchConfig,
    params: &ModelParams,
) -> AttentionReport {
    let tc = tile_costs(work, arch, params);
    let fill_drain = params.fill_drain_factor * (arch.array_rows + arch.array_cols) as f64;
    let epoch = tc.t2d + tc.t1d + fill_drain;
    build_report(ConfigKind::FuseMaxArch, work, arch, &tc, epoch, 0.0)
}

/// +Binding: the full FuseMax pipelined/interleaved binding (Fig 4). Fills
/// and drains hide behind the next tile's compute; each epoch costs the
/// *max* of the two arrays' tile work (they are nearly equal by design)
/// plus a small interleave overhead, and each head pays a pipeline warm-up.
pub(crate) fn pipelined(
    work: &AttnWork,
    arch: &ArchConfig,
    params: &ModelParams,
) -> AttentionReport {
    let tc = tile_costs(work, arch, params);
    let epoch = tc.t2d.max(tc.t1d) + params.interleave_overhead_cycles;
    build_report(ConfigKind::FuseMaxBinding, work, arch, &tc, epoch, params.pipeline_warmup_epochs)
}

fn build_report(
    kind: ConfigKind,
    work: &AttnWork,
    arch: &ArchConfig,
    tc: &TileCosts,
    epoch: f64,
    warmup_epochs: f64,
) -> AttentionReport {
    let m = Machine::of(arch);
    let AttnWork { batch_heads: bh, e, f, l } = *work;
    let pts = work.points();
    let w = m.w;

    let tiles = bh * tc.tiles_per_head;
    let mut cycles = bh * (tc.tiles_per_head + warmup_epochs) * epoch;

    // Einsum 55's divisions on the 1D array (F per query); they slot into
    // 1D slack under the pipelined binding and serialize otherwise.
    let div_cycles = bh * f * l / m.pe1;
    if kind == ConfigKind::FuseMaxArch {
        cycles += div_cycles;
    }

    // Inputs are read exactly once (the 1-pass cascade's footprint is
    // sequence-length independent) — FuseMax never spills intermediates.
    let dram_bytes = work.input_output_bytes(w);
    cycles = roofline(cycles, 0.0, dram_bytes / m.bpc);

    let busy_2d = tiles * tc.t2d;
    let busy_1d = (tiles * tc.t1d + div_cycles).min(cycles);

    // Q/K/V tiles staged through the global buffer per tile.
    let m0 = arch.array_rows as f64;
    let p0 = arch.array_cols as f64;
    let gbuf_bytes = dram_bytes + tiles * w * (e * p0 + (e + f) * m0);

    let et = EnergyTable::default();
    let ops2d = tiles * tc.t2d * m.pe2; // PE-ops, exp chained as MACCs
    let ops1d = tiles * tc.ops_1d_per_tile;
    let divs = bh * f * l;
    let energy = EnergyBreakdown {
        macc_2d_pj: ops2d * et.macc_pj,
        vector_1d_pj: ops1d * et.vector_op_pj + divs * et.div_pj,
        rf_pj: rf_bytes(ops2d + 2.0 * pts, w) * et.rf_pj_per_byte,
        gbuf_pj: gbuf_bytes * et.gbuf_pj_per_byte,
        dram_pj: dram_bytes * et.dram_pj_per_byte,
    };

    let split = tc.split_2d;
    AttentionReport {
        kind,
        cycles,
        busy_2d,
        busy_1d,
        dram_bytes,
        gbuf_bytes,
        energy,
        einsum_2d: vec![
            ("QK", tiles * split[0]),
            ("LM", tiles * split[1]),
            ("SLN", tiles * split[2]),
            ("SLD", tiles * split[3]),
            ("SLNV/AV", tiles * split[4]),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusemax_workloads::TransformerConfig;

    fn work(l: usize) -> AttnWork {
        AttnWork::from_workload(&TransformerConfig::bert(), l)
    }

    fn params() -> ModelParams {
        ModelParams::default()
    }

    #[test]
    fn tile_work_is_balanced_between_arrays() {
        // §V: "the green and blue time periods making up an epoch take
        // almost the same number of cycles" — E+F+9 ≈ (10+2F)·P0/PE1.
        for cfg in TransformerConfig::all() {
            let w = AttnWork::from_workload(&cfg, 1 << 16);
            let tc = tile_costs(&w, &ArchConfig::fusemax_cloud(), &params());
            let ratio = tc.t2d / tc.t1d;
            assert!((0.9..1.1).contains(&ratio), "{}: t2d/t1d = {ratio}", cfg.name);
        }
    }

    #[test]
    fn pipelined_reaches_high_utilization_at_long_lengths() {
        let r = pipelined(&work(1 << 20), &ArchConfig::fusemax_cloud(), &params());
        assert!(r.util_2d() > 0.95, "util2d = {}", r.util_2d());
        assert!(r.util_1d() > 0.9, "util1d = {}", r.util_1d());
    }

    #[test]
    fn pipelined_utilization_rises_with_length() {
        // Warm-up epochs are amortized as M1 grows (Fig 6b's +Binding
        // trend).
        let short = pipelined(&work(1 << 10), &ArchConfig::fusemax_cloud(), &params());
        let long = pipelined(&work(1 << 18), &ArchConfig::fusemax_cloud(), &params());
        assert!(short.util_2d() < long.util_2d());
        assert!(short.util_2d() > 0.5);
    }

    #[test]
    fn serialized_binding_stalls_both_arrays() {
        // Fig 6: +Architecture alone leaves both arrays under-utilized.
        let r = serialized(&work(1 << 16), &ArchConfig::fusemax_cloud(), &params());
        assert!(r.util_2d() < 0.4, "util2d = {}", r.util_2d());
        assert!(r.util_1d() < 0.4, "util1d = {}", r.util_1d());
        let p = pipelined(&work(1 << 16), &ArchConfig::fusemax_cloud(), &params());
        assert!(p.cycles < r.cycles, "binding must help");
    }

    #[test]
    fn cascade_on_flat_is_slower_than_flat_at_short_lengths() {
        // §VI-B: "+Cascade's 2D array utilization is lower than FLAT's at
        // short sequence lengths" because the 1-pass cascade adds compute.
        let c = cascade_on_flat(&work(1 << 12), &ArchConfig::flat_cloud(), &params());
        let f = crate::flat::model(&work(1 << 12), &ArchConfig::flat_cloud(), &params());
        assert!(c.cycles > f.cycles);
        assert!(c.util_2d() < f.util_2d());
    }

    #[test]
    fn cascade_on_flat_has_no_memory_cliff() {
        let short = cascade_on_flat(&work(1 << 14), &ArchConfig::flat_cloud(), &params());
        let long = cascade_on_flat(&work(1 << 20), &ArchConfig::flat_cloud(), &params());
        // Utilization is sequence-length independent (Fig 6a's +Cascade).
        assert!((short.util_1d() - long.util_1d()).abs() < 0.05);
        assert!(long.util_1d() > 0.95);
    }

    #[test]
    fn fusemax_dram_traffic_is_inputs_only() {
        let r = pipelined(&work(1 << 18), &ArchConfig::fusemax_cloud(), &params());
        let w = work(1 << 18);
        assert_eq!(r.dram_bytes, w.input_output_bytes(2.0));
    }

    #[test]
    fn fusemax_energy_is_dominated_by_2d_compute() {
        // §VI-B: "≥95% of the energy used by FuseMax ... goes to the MACC
        // functional units in the 2D array."
        let r = pipelined(&work(1 << 16), &ArchConfig::fusemax_cloud(), &params());
        let frac = r.energy.macc_2d_pj / r.energy.total_pj();
        assert!(frac > 0.9, "2D MACC fraction = {frac}");
    }

    #[test]
    fn einsum_breakdown_is_dominated_by_tensor_products() {
        // Fig 7: QK and SLNV/AV dominate the 2D array's active cycles.
        let r = pipelined(&work(1 << 16), &ArchConfig::fusemax_cloud(), &params());
        let total: f64 = r.einsum_2d.iter().map(|(_, c)| c).sum();
        let qk = r.einsum_2d.iter().find(|(n, _)| *n == "QK").unwrap().1;
        let slnv = r.einsum_2d.iter().find(|(n, _)| *n == "SLNV/AV").unwrap().1;
        assert!((qk + slnv) / total > 0.9);
        assert!((total - r.busy_2d).abs() / r.busy_2d < 1e-9);
    }

    #[test]
    fn scaled_arrays_stay_balanced() {
        // Fig 12's design family keeps the 2D/1D balance at every size.
        for n in [16, 64, 512] {
            let arch = ArchConfig::fusemax_scaled(n);
            let tc = tile_costs(&work(1 << 18), &arch, &params());
            let ratio = tc.t2d / tc.t1d;
            assert!((0.9..1.1).contains(&ratio), "n={n}: {ratio}");
        }
    }
}
