//! The FLAT baseline: row-granularity fusion of QK → softmax → AV
//! (Kao et al., corrected per §VI-A).
//!
//! FLAT keeps a block of `R` query rows' `QK`/`SN` fibers resident on chip
//! (the 3-pass cascade's `O(M)` live footprint — see
//! `fusemax_core::footprint`) while streaming `K`/`V`. A buffer solver
//! chooses among three regimes:
//!
//! 1. **Resident** — `K`/`V` fit on chip alongside the rows: inputs are
//!    read once; compute bound.
//! 2. **Restream** — `K`/`V` no longer fit and are re-read once per row
//!    block; blocks shrink as `L` grows (`R ∝ buffer/L`), so traffic per
//!    point grows ∝ `L` — the memory-bandwidth cliff at ≥256K.
//! 3. **Spill** — alternatively spill the `QK`/`SN`/`A` fibers to DRAM and
//!    keep large row blocks. The solver picks whichever moves fewer bytes,
//!    which bounds how deep the cliff gets.

use crate::common::{rf_bytes, roofline, Machine};
use crate::config::ConfigKind;
use crate::params::ModelParams;
use crate::report::{AttentionReport, AttnWork};
use fusemax_arch::{ArchConfig, EnergyBreakdown, EnergyTable};

/// The buffer solver's outcome for one head.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct FlatPlan {
    /// DRAM bytes per head.
    pub dram_per_head: f64,
    /// Which regime won.
    pub regime: FlatRegime,
}

/// FLAT's operating regime at a given sequence length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FlatRegime {
    Resident,
    Restream,
    Spill,
}

/// Solves FLAT's buffer allocation for one head.
pub(crate) fn solve(work: &AttnWork, m: &Machine, params: &ModelParams) -> FlatPlan {
    let AttnWork { e, f, l, .. } = *work;
    let w = m.w;
    let usable = params.buffer_usable_frac * m.buf;
    let io_once = w * (3.0 * e * l + f * l); // Q, K, V in; AV out
    let kv = (e + f) * l * w;
    let rows_bytes = 2.0 * l * w; // one query row's QK + SN fibers

    // Regime 1: K/V resident next to at least flat_min_rows row blocks.
    if kv + params.flat_min_rows as f64 * rows_bytes <= usable {
        return FlatPlan { dram_per_head: io_once, regime: FlatRegime::Resident };
    }

    // Regime 2: re-stream K/V once per row block.
    let margin = (2.0 * 1024.0 * 1024.0_f64).min(0.25 * usable);
    let r_restream = ((usable - margin) / rows_bytes).floor().max(1.0);
    let blocks = (l / r_restream).ceil();
    let restream = io_once + (blocks - 1.0).max(0.0) * kv;

    // Regime 3: spill QK, SN, and A (write + read each) with K/V streamed
    // once per large block (rows bounded only by Q/AV residency).
    let r_spill = ((usable - margin) / ((e + f + 2.0) * w)).floor().max(1.0);
    let spill_blocks = (l / r_spill).ceil();
    let spill = io_once + 6.0 * w * l * l + (spill_blocks - 1.0).max(0.0) * kv;

    if restream <= spill {
        FlatPlan { dram_per_head: restream, regime: FlatRegime::Restream }
    } else {
        FlatPlan { dram_per_head: spill, regime: FlatRegime::Spill }
    }
}

/// The DRAM bytes per attention head FLAT's buffer solver charges on
/// `arch` — exactly the regime-aware minimum of the resident, re-stream,
/// and spill strategies computed by the module-level solver.
///
/// Exposed so search lower bounds (`fusemax_dse::Sweeper::lower_bound`)
/// can use the true re-streaming floor for long sequences instead of the
/// loose compulsory-traffic floor, without running the full model.
pub fn flat_dram_floor_per_head(work: &AttnWork, arch: &ArchConfig, params: &ModelParams) -> f64 {
    solve(work, &Machine::of(arch), params).dram_per_head
}

/// Models one layer of attention on FLAT.
pub(crate) fn model(work: &AttnWork, arch: &ArchConfig, params: &ModelParams) -> AttentionReport {
    let m = Machine::of(arch);
    let AttnWork { batch_heads: bh, e, f, l } = *work;
    let pts = work.points();
    let w = m.w;

    let c2d_qk = bh * e * l * l / m.pe2;
    let c2d_av = bh * f * l * l / m.pe2;
    let c2d = c2d_qk + c2d_av;
    let c1d = params.baseline_softmax_ops_per_point * pts / m.pe1;

    let plan = solve(work, &m, params);
    let dram_bytes = bh * plan.dram_per_head;
    // QK and SN pass through the global buffer (write + read each).
    let gbuf_bytes = dram_bytes + 4.0 * w * pts;

    let cycles = roofline(c2d, c1d, dram_bytes / m.bpc);

    let et = EnergyTable::default();
    let macc_ops = (e + f) * pts;
    let energy = EnergyBreakdown {
        macc_2d_pj: macc_ops * et.macc_pj,
        vector_1d_pj: (params.baseline_softmax_ops_per_point - 1.0) * pts * et.vector_op_pj
            + pts * et.div_pj,
        rf_pj: rf_bytes(macc_ops, w) * et.rf_pj_per_byte,
        gbuf_pj: gbuf_bytes * et.gbuf_pj_per_byte,
        dram_pj: dram_bytes * et.dram_pj_per_byte,
    };

    AttentionReport {
        kind: ConfigKind::Flat,
        cycles,
        busy_2d: c2d,
        busy_1d: c1d,
        dram_bytes,
        gbuf_bytes,
        energy,
        einsum_2d: vec![
            ("QK", c2d_qk),
            ("LM", 0.0),
            ("SLN", 0.0),
            ("SLD", 0.0),
            ("SLNV/AV", c2d_av),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusemax_workloads::TransformerConfig;

    fn machine() -> Machine {
        Machine::of(&ArchConfig::flat_cloud())
    }

    fn work(l: usize) -> AttnWork {
        AttnWork::from_workload(&TransformerConfig::bert(), l)
    }

    fn report(l: usize) -> AttentionReport {
        model(&work(l), &ArchConfig::flat_cloud(), &ModelParams::default())
    }

    #[test]
    fn short_sequences_keep_kv_resident() {
        let p = solve(&work(1 << 10), &machine(), &ModelParams::default());
        assert_eq!(p.regime, FlatRegime::Resident);
        let p = solve(&work(1 << 14), &machine(), &ModelParams::default());
        assert_eq!(p.regime, FlatRegime::Resident);
    }

    #[test]
    fn long_sequences_leave_the_resident_regime() {
        // (E+F)·L·2B = 256K·... exceeds the 22 MB buffer beyond ~64K.
        let p = solve(&work(1 << 18), &machine(), &ModelParams::default());
        assert_ne!(p.regime, FlatRegime::Resident);
        let p = solve(&work(1 << 20), &machine(), &ModelParams::default());
        assert_ne!(p.regime, FlatRegime::Resident);
    }

    #[test]
    fn flat_is_1d_bound_at_short_lengths() {
        // Fig 6: FLAT's 1D array saturates while the 2D array idles.
        let r = report(1 << 12);
        assert!(r.util_1d() > 0.95, "util1d = {}", r.util_1d());
        assert!(r.util_2d() < 0.2, "util2d = {}", r.util_2d());
    }

    #[test]
    fn flat_2d_utilization_is_about_an_eighth_for_e64() {
        // (E+F)/PE2 compute vs 4 ops/point on 256 1D PEs → 128·256/(4·65536).
        let r = report(1 << 12);
        let expect = (128.0 * 256.0) / (4.0 * 65536.0);
        assert!((r.util_2d() - expect).abs() < 0.01, "{} vs {expect}", r.util_2d());
    }

    #[test]
    fn memory_cliff_appears_at_256k() {
        // Fig 6a: utilization drops for L ≥ 256K.
        let at_64k = report(1 << 16);
        let at_256k = report(1 << 18);
        assert!(at_64k.util_1d() > 0.9, "64K still compute bound: {}", at_64k.util_1d());
        assert!(at_256k.util_1d() < 0.7, "256K should be memory bound: {}", at_256k.util_1d());
    }

    #[test]
    fn dram_traffic_grows_superlinearly_past_the_cliff() {
        let a = report(1 << 16);
        let b = report(1 << 18);
        // Points grow 16×; traffic must grow faster than that.
        assert!(b.dram_bytes / a.dram_bytes > 16.0);
    }

    #[test]
    fn xlm_utilizes_the_2d_array_better() {
        // §VI-B: higher E/F gives the baselines higher intensity.
        let bert = report(1 << 12);
        let xlm_work = AttnWork::from_workload(&TransformerConfig::xlm(), 1 << 12);
        let xlm = model(&xlm_work, &ArchConfig::flat_cloud(), &ModelParams::default());
        assert!(xlm.util_2d() > 1.9 * bert.util_2d());
    }

    #[test]
    fn dram_floor_matches_the_model_exactly() {
        // The exported floor is the model's own DRAM charge, per head, in
        // every regime — resident, re-stream, and spill.
        for l in [1 << 12, 1 << 16, 1 << 18, 1 << 20] {
            let wk = work(l);
            let r = report(l);
            let floor =
                flat_dram_floor_per_head(&wk, &ArchConfig::flat_cloud(), &ModelParams::default());
            assert!((floor * wk.batch_heads - r.dram_bytes).abs() < 1.0, "L = {l}");
        }
    }

    #[test]
    fn solver_prefers_cheaper_strategy() {
        let m = machine();
        let p = ModelParams::default();
        for l in [1 << 18, 1 << 20] {
            let plan = solve(&work(l), &m, &p);
            // Recompute both strategies and confirm minimality.
            let wk = work(l);
            let usable = p.buffer_usable_frac * m.buf;
            let margin = (2.0 * 1024.0 * 1024.0_f64).min(0.25 * usable);
            let kv = (wk.e + wk.f) * wk.l * m.w;
            let io = m.w * (3.0 * wk.e + wk.f) * wk.l;
            let r_re = ((usable - margin) / (2.0 * wk.l * m.w)).floor().max(1.0);
            let restream = io + ((wk.l / r_re).ceil() - 1.0) * kv;
            let r_sp = ((usable - margin) / ((wk.e + wk.f + 2.0) * m.w)).floor().max(1.0);
            let spill = io + 6.0 * m.w * wk.l * wk.l + ((wk.l / r_sp).ceil() - 1.0) * kv;
            assert!((plan.dram_per_head - restream.min(spill)).abs() < 1.0);
        }
    }
}
